// Quickstart: stream one short video over XLINK on Wi-Fi + LTE.
//
// Shows the minimal public-API path: describe the two wireless paths,
// pick the transport scheme, run the session, read the QoE metrics.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "harness/scenario.h"
#include "trace/synthetic.h"

using namespace xlink;

int main() {
  harness::SessionConfig cfg;
  cfg.scheme = core::Scheme::kXlink;  // the paper's full system
  cfg.seed = 42;

  // A 12-second, 2.5 Mbps product short video at 30 fps.
  cfg.video.duration = sim::seconds(12);
  cfg.video.bitrate_bps = 2'500'000;
  cfg.video.fps = 30;

  // The phone's two interfaces: a fast-varying walking Wi-Fi link and a
  // steadier LTE link with a higher path delay. The harness applies
  // wireless-aware primary path selection automatically.
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kWifi, trace::campus_walk_wifi(7, sim::seconds(30)),
      sim::millis(40)));
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kLte, trace::stable_lte(8, sim::seconds(30)),
      sim::millis(110)));

  harness::Session session(std::move(cfg));
  const harness::SessionResult result = session.run();

  std::printf("video downloaded: %s, played to the end: %s\n",
              result.download_finished ? "yes" : "no",
              result.video_finished ? "yes" : "no");
  std::printf("first video frame: %.0f ms\n",
              result.first_frame_seconds.value_or(0) * 1000);
  std::printf("rebuffering:       %u events, %.2f s total (rate %.2f%%)\n",
              result.rebuffer_count, result.rebuffer_seconds,
              result.rebuffer_rate * 100);
  std::printf("chunk RCTs (s):    ");
  for (double t : result.chunk_rct_seconds) std::printf("%.2f ", t);
  std::printf("\nredundant traffic: %.1f%% of payload (%.0f KB re-injected)\n",
              result.redundancy_ratio * 100,
              static_cast<double>(result.reinjected_bytes) / 1000);
  std::printf("bytes per path:    WiFi %.0f KB, LTE %.0f KB\n",
              static_cast<double>(result.path_down_bytes[0]) / 1000,
              static_cast<double>(result.path_down_bytes[1]) / 1000);
  return 0;
}
