// Scenario: tuning the double thresholds -- the cost/QoE dial.
//
// Replays the paper's Fig. 6 situation (the primary path suffers a
// multi-second outage while the secondary can just about carry the video)
// under several (Tth1, Tth2) settings and prints smoothness vs redundancy,
// the trade-off of paper §5.2.2/Fig. 10. Use this to pick thresholds for
// your own buffer distribution.
//
//   $ ./examples/threshold_tuning
#include <cstdio>

#include "harness/scenario.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "trace/trace.h"

using namespace xlink;

namespace {

trace::LinkTrace piecewise(
    const std::vector<std::pair<double, sim::Duration>>& segs) {
  std::vector<std::uint32_t> ms;
  double credit = 0;
  std::uint64_t t = 0;
  for (const auto& [mbps, dur] : segs) {
    for (std::uint64_t i = 0; i < dur / sim::kMillisecond; ++i) {
      ++t;
      credit += mbps * 1e6 / 8 / trace::kDeliveryMtu / 1000;
      while (credit >= 1) {
        ms.push_back(static_cast<std::uint32_t>(t));
        credit -= 1;
      }
    }
  }
  return trace::LinkTrace(ms);
}

struct Outcome {
  double rebuffer_s = 0;
  double cost_pct = 0;
  double first_frame_ms = 0;
};

Outcome run_with(core::ControlMode mode, sim::Duration tth1,
                 sim::Duration tth2) {
  Outcome out;
  std::uint64_t payload = 0, dup = 0;
  for (int i = 0; i < 4; ++i) {
    harness::SessionConfig cfg;
    cfg.scheme = core::Scheme::kXlink;
    cfg.options.control.mode = mode;
    cfg.options.control.tth1 = tth1;
    cfg.options.control.tth2 = tth2;
    cfg.seed = 300 + i;
    cfg.video.duration = sim::seconds(14);
    cfg.video.bitrate_bps = 3'500'000;
    cfg.client.chunk_bytes = 384 * 1024;
    cfg.wireless_aware_primary = false;
    // Primary dies for 3.5s at a per-run offset; secondary barely copes.
    cfg.paths.push_back(harness::make_path_spec(
        net::Wireless::kWifi,
        piecewise({{8.0, sim::millis(600 + 400 * i)},
                   {0.05, sim::millis(3500)},
                   {8.0, sim::seconds(28)}}),
        sim::millis(40)));
    cfg.paths.push_back(harness::make_path_spec(
        net::Wireless::kLte, piecewise({{5.5, sim::seconds(33)}}),
        sim::millis(90)));
    harness::Session session(std::move(cfg));
    const auto r = session.run();
    out.rebuffer_s += r.rebuffer_seconds;
    out.first_frame_ms += r.first_frame_seconds.value_or(0) * 250;  // avg/4
    payload += r.stream_payload_bytes;
    dup += r.reinjected_bytes;
  }
  out.cost_pct = payload ? 100.0 * static_cast<double>(dup) / payload : 0;
  return out;
}

}  // namespace

int main() {
  std::printf(
      "Double-threshold tuning: primary-path outage, secondary barely "
      "adequate\n\n");
  stats::Table table({"Setting", "total rebuffer (s)", "redundancy (%)"});
  struct Row {
    const char* label;
    core::ControlMode mode;
    sim::Duration t1, t2;
  };
  const Row rows[] = {
      {"re-injection off", core::ControlMode::kAlwaysOff, 0, 0},
      {"Tth=(100ms, 300ms)", core::ControlMode::kDoubleThreshold,
       sim::millis(100), sim::millis(300)},
      {"Tth=(400ms, 1.2s)", core::ControlMode::kDoubleThreshold,
       sim::millis(400), sim::millis(1200)},
      {"Tth=(700ms, 2.5s)", core::ControlMode::kDoubleThreshold,
       sim::millis(700), sim::millis(2500)},
      {"always on", core::ControlMode::kAlwaysOn, 0, 0},
  };
  for (const auto& row : rows) {
    const Outcome o = run_with(row.mode, row.t1, row.t2);
    table.add_row({row.label, stats::Table::fmt(o.rebuffer_s, 2),
                   stats::Table::fmt(o.cost_pct, 1)});
  }
  table.print();
  std::printf(
      "\nRe-injection off stalls through the outage; always-on pays the\n"
      "most duplicate traffic; the double thresholds buy nearly the same\n"
      "smoothness for a fraction of the cost.\n");
  return 0;
}
