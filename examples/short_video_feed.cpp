// Scenario: a product short-video feed -- several videos watched in a row,
// as in the Taobao workload that motivates the paper.
//
// Plays five consecutive short videos over the same pair of wireless paths
// and compares three transports (single-path QUIC, vanilla multipath,
// XLINK) on the per-video QoE metrics the paper reports: first-frame
// latency, rebuffer rate, and the CDN-side redundancy cost.
//
//   $ ./examples/short_video_feed
#include <cstdio>

#include "harness/scenario.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "trace/synthetic.h"

using namespace xlink;

namespace {

struct FeedTotals {
  stats::Summary first_frame_ms;
  double rebuffer_s = 0;
  double play_s = 0;
  double redundancy_sum = 0;
  int videos = 0;
};

FeedTotals watch_feed(core::Scheme scheme) {
  FeedTotals totals;
  for (int video = 0; video < 5; ++video) {
    harness::SessionConfig cfg;
    cfg.scheme = scheme;
    cfg.seed = 1000 + video;
    // Feed videos: 9-16 s, 2-3.5 Mbps.
    cfg.video.duration = sim::seconds(9 + video * 2);
    cfg.video.bitrate_bps = 3'200'000 + video * 300'000;
    cfg.video.seed = 40 + video;
    // Each video replays a different stretch of the commute: Wi-Fi varies,
    // cellular fades now and then.
    cfg.paths.push_back(harness::make_path_spec(
        net::Wireless::kWifi,
        trace::onboard_wifi(7000 + video, sim::seconds(40)),
        sim::millis(40)));
    cfg.paths.push_back(harness::make_path_spec(
        net::Wireless::kLte,
        trace::hsr_cellular(8000 + video, sim::seconds(40)),
        sim::millis(120)));

    harness::Session session(std::move(cfg));
    const auto r = session.run();
    if (r.first_frame_seconds)
      totals.first_frame_ms.add(*r.first_frame_seconds * 1000);
    totals.rebuffer_s += r.rebuffer_seconds;
    totals.play_s += r.play_seconds;
    totals.redundancy_sum += r.redundancy_ratio * 100;
    ++totals.videos;
  }
  return totals;
}

}  // namespace

int main() {
  std::printf("Short-video feed: 5 videos on a commute (Wi-Fi + cellular)\n\n");
  stats::Table table({"Transport", "median first frame (ms)",
                      "rebuffer rate (%)", "redundancy (%)"});
  for (auto scheme : {core::Scheme::kSinglePath, core::Scheme::kVanillaMp,
                      core::Scheme::kXlink}) {
    const FeedTotals t = watch_feed(scheme);
    table.add_row({core::to_string(scheme),
                   stats::Table::fmt(t.first_frame_ms.median(), 0),
                   stats::Table::fmt(
                       t.play_s > 0 ? 100 * t.rebuffer_s / t.play_s : 0, 2),
                   stats::Table::fmt(t.redundancy_sum / t.videos, 1)});
  }
  table.print();
  std::printf(
      "\nXLINK should match or beat SP on smoothness while keeping the\n"
      "redundancy cost low -- the paper's headline trade-off.\n");
  return 0;
}
