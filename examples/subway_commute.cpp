// Scenario: extreme-mobility handoff on a subway ride.
//
// Both interfaces blink in and out as the train moves through tunnels.
// Compares how single-path QUIC, connection migration, and XLINK survive,
// printing a coarse timeline of download progress per transport -- the
// interactive cousin of bench_fig13_mobility.
//
//   $ ./examples/subway_commute
#include <cstdio>

#include "harness/scenario.h"
#include "trace/synthetic.h"

using namespace xlink;

namespace {

void ride(core::Scheme scheme) {
  harness::SessionConfig cfg;
  cfg.scheme = scheme;
  cfg.seed = 77;
  cfg.time_limit = sim::seconds(60);
  cfg.video.duration = sim::seconds(15);
  cfg.video.bitrate_bps = 2'500'000;
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kWifi, trace::onboard_wifi(4242, sim::seconds(60)),
      sim::millis(60)));
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kLte, trace::subway_cellular(4243, sim::seconds(60)),
      sim::millis(110)));

  harness::Session session(std::move(cfg));
  std::printf("%-8s progress: ", core::to_string(scheme).c_str());
  session.sample_period = sim::seconds(2);
  const std::uint64_t total = session.video_model().total_bytes();
  session.on_sample = [total](harness::Session& s) {
    const double frac =
        static_cast<double>(s.media_client().contiguous_bytes()) /
        static_cast<double>(total);
    std::putchar(frac >= 0.999 ? '#' : '0' + static_cast<int>(frac * 9.99));
  };
  const auto r = session.run();
  std::printf("  downloaded=%s rebuffer=%.1fs first_frame=%.0fms\n",
              r.download_finished ? "yes" : "NO", r.rebuffer_seconds,
              r.first_frame_seconds.value_or(0) * 1000);
}

}  // namespace

int main() {
  std::printf(
      "Subway commute: onboard Wi-Fi + tunnel-prone cellular.\n"
      "Each character is 2 seconds; digits are download progress 0-9, #"
      " is complete.\n\n");
  ride(core::Scheme::kSinglePath);
  ride(core::Scheme::kConnMigration);
  ride(core::Scheme::kVanillaMp);
  ride(core::Scheme::kXlink);
  std::printf(
      "\nXLINK should reach '#' first: it spreads packets across whichever\n"
      "link currently works and re-injects what the dead one swallowed.\n");
  return 0;
}
