// xlink_qlog: analyzer CLI for qlog traces produced by the telemetry
// subsystem. Prints per-path timelines, re-injection efficiency, the
// failover timeline (injected faults + path-health transitions), and
// stall attribution for one trace file.
//
//   xlink_qlog trace.qlog            analyze an existing trace
//   xlink_qlog --window 500 t.qlog   use a 500ms stall-attribution window
//   xlink_qlog --demo                run a built-in traced exemplar
//                                    session, write demo.qlog, analyze it
//
// --demo doubles as the subsystem's end-to-end smoke test (wired into
// ctest): session -> TraceSink -> qlog file -> parser -> analyzer.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/scenario.h"
#include "telemetry/analyzer.h"
#include "telemetry/qlog.h"
#include "trace/synthetic.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--window MS] <trace.qlog>\n"
               "       %s --demo [out.qlog]\n",
               argv0, argv0);
  return 2;
}

// Runs a traced XLINK session over a subway cellular + onboard Wi-Fi
// scenario (lossy enough to exercise loss, PTO, and re-injection events,
// plus a scripted Wi-Fi blackout so the failover timeline has content)
// and writes its qlog to `path`.
bool write_demo_trace(const std::string& path) {
  using namespace xlink;
  harness::SessionConfig cfg;
  cfg.scheme = core::Scheme::kXlink;
  cfg.seed = 4001;
  cfg.time_limit = sim::seconds(60);
  cfg.video.duration = sim::seconds(12);
  cfg.video.bitrate_bps = 2'500'000;
  cfg.client.chunk_bytes = 512 * 1024;
  cfg.client.max_concurrent = 2;
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kWifi, trace::onboard_wifi(9018, sim::seconds(60)),
      sim::millis(60)));
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kLte, trace::subway_cellular(9017, sim::seconds(60)),
      sim::millis(110)));
  // Mid-session Wi-Fi outage: drives path-health transitions so the demo
  // report includes a populated failover timeline.
  cfg.paths[0].fault_plan.blackout(sim::seconds(3), sim::seconds(2));
  cfg.trace.enabled = true;
  cfg.trace.qlog_path = path;
  cfg.trace.label = "demo_subway";

  harness::Session session(std::move(cfg));
  const auto result = session.run();
  std::printf("demo session: %zu/%zu chunks, %u rebuffer(s), wrote %s\n",
              result.chunks_completed, result.chunks_total,
              result.rebuffer_count, path.c_str());
  return result.chunks_completed > 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xlink;
  bool demo = false;
  sim::Duration window = sim::seconds(1);
  std::string file;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--demo") == 0) {
      demo = true;
    } else if (std::strcmp(arg, "--window") == 0) {
      if (i + 1 >= argc) return usage(argv[0]);
      window = sim::millis(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      return usage(argv[0]);
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg);
      return usage(argv[0]);
    } else {
      file = arg;
    }
  }

  if (demo) {
    if (file.empty()) file = "xlink_qlog_demo.qlog";
    if (!write_demo_trace(file)) {
      std::fprintf(stderr, "demo session failed to make progress\n");
      return 1;
    }
  } else if (file.empty()) {
    return usage(argv[0]);
  }

  const auto trace = telemetry::parse_qlog_file(file);
  if (!trace) {
    std::fprintf(stderr, "failed to parse %s as an xlink qlog trace\n",
                 file.c_str());
    return 1;
  }
  if (trace->events.empty()) {
    std::fprintf(stderr, "%s contains no events\n", file.c_str());
    return 1;
  }
  const auto report = telemetry::analyze(*trace, window);
  std::fputs(telemetry::render_report(report).c_str(), stdout);
  return 0;
}
