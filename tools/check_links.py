#!/usr/bin/env python3
"""Markdown reference checker for the repo's documentation.

Two classes of reference are validated, over every tracked *.md file:

  1. Relative markdown links: [text](path) and [text](path#anchor) must
     point at a file or directory that exists. http(s)/mailto links are
     skipped (CI must not depend on the network).
  2. Backtick code references: `src/...`, `tests/...`, `bench/...`,
     `tools/...` paths named in prose must exist, so the docs cannot
     drift from a rename. `path:line` suffixes and `{a,b}` brace groups
     (e.g. src/video/abr.{h,cpp}) are understood; globs are skipped.

Exit status is the number of broken references (0 = docs are clean).
"""
import itertools
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
CODE_PREFIXES = ("src/", "tests/", "bench/", "tools/", "examples/")

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_REF = re.compile(r"`([^`\n]+)`")


def expand_braces(ref: str):
    """src/video/abr.{h,cpp} -> [src/video/abr.h, src/video/abr.cpp]."""
    m = re.search(r"\{([^{}]+)\}", ref)
    if not m:
        return [ref]
    head, tail = ref[: m.start()], ref[m.end():]
    out = []
    for alt in m.group(1).split(","):
        out.extend(expand_braces(head + alt.strip() + tail))
    return out


def check_md_link(md: Path, target: str):
    target = target.split("#", 1)[0]
    if not target or "://" in target or target.startswith("mailto:"):
        return []
    path = (md.parent / target).resolve()
    if not path.exists():
        return [f"{md.relative_to(ROOT)}: broken link -> {target}"]
    return []


def check_code_ref(md: Path, ref: str):
    # Strip :line / :line-range suffixes and surrounding punctuation.
    ref = re.sub(r":\d+(-\d+)?$", "", ref.strip())
    if not ref.startswith(CODE_PREFIXES) or "*" in ref:
        return []
    # Prose like `tools/xlink_grid run fig10` names a command, not a path:
    # validate only the first whitespace-separated token.
    ref = ref.split()[0]
    errors = []
    for candidate in expand_braces(ref):
        path = ROOT / candidate
        # Binaries referenced by their target name (tools/xlink_grid)
        # exist as <name>.cpp in the tree.
        if not (path.exists() or path.with_suffix(".cpp").exists()):
            errors.append(f"{md.relative_to(ROOT)}: missing path -> "
                          f"{candidate}")
    return errors


def main() -> int:
    errors = []
    docs = sorted(
        p for p in ROOT.rglob("*.md")
        if not any(part.startswith((".", "build")) for part in p.parts))
    for md in docs:
        text = md.read_text(encoding="utf-8")
        # Drop fenced code blocks: shell samples name files that may not
        # exist yet (output paths, /tmp spools).
        text = re.sub(r"```.*?```", "", text, flags=re.S)
        for m in MD_LINK.finditer(text):
            errors.extend(check_md_link(md, m.group(1)))
        for m in CODE_REF.finditer(text):
            errors.extend(check_code_ref(md, m.group(1)))
    for e in errors:
        print(e)
    print(f"checked {len(docs)} markdown files: "
          f"{len(errors)} broken reference(s)")
    return min(len(errors), 127)


if __name__ == "__main__":
    sys.exit(main())
