// xlink_grid: cross-process experiment grid runner.
//
//   xlink_grid plan  <grid> <spool-dir>      enumerate a grid into a spool
//   xlink_grid work  <spool-dir> [--jobs N]  claim and run cells until dry
//   xlink_grid merge <spool-dir> [-o FILE]   fold shards in manifest order
//   xlink_grid run   <grid> [-o FILE]        in-process sweep (baseline)
//   xlink_grid status <spool-dir>            one line per cell
//
// `plan` once, then any number of `work` processes — on one machine or on
// several sharing the spool over a filesystem — race for cells via atomic
// rename; a killed worker's claim is re-spooled on the next claim attempt.
// `merge` refuses to emit until every shard exists, and its output is
// byte-identical to `run` of the same grid at any worker count and any
// XLINK_JOBS value (see harness/shard.h for the contract).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/grids.h"
#include "harness/shard.h"

using namespace xlink;
using harness::shard::Spool;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: xlink_grid plan <grid> <spool-dir>\n"
               "       xlink_grid work <spool-dir> [--jobs N]\n"
               "       xlink_grid merge <spool-dir> [-o FILE]\n"
               "       xlink_grid run <grid> [-o FILE] [--jobs N]\n"
               "       xlink_grid status <spool-dir>\n"
               "grids:");
  for (const std::string& name : harness::grids::grid_names())
    std::fprintf(stderr, " %s", name.c_str());
  std::fprintf(stderr, "\n");
  return 2;
}

struct Args {
  std::vector<std::string> positional;
  std::string out;      // -o FILE ("" = stdout)
  unsigned jobs = 0;    // --jobs N (0 = XLINK_JOBS default)
};

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-o" || a == "--out") {
      if (++i >= argc) return false;
      args.out = argv[i];
    } else if (a == "--jobs" || a == "-j") {
      if (++i >= argc) return false;
      args.jobs = static_cast<unsigned>(std::strtoul(argv[i], nullptr, 10));
    } else if (!a.empty() && a[0] == '-') {
      return false;
    } else {
      args.positional.push_back(a);
    }
  }
  return true;
}

/// Writes `emit`'s output to args.out (atomically enough for CI: whole
/// string at once) or to stdout when no -o was given.
int write_output(const Args& args,
                 const std::function<void(std::ostream&)>& emit) {
  if (args.out.empty()) {
    emit(std::cout);
    return 0;
  }
  std::ostringstream os;
  emit(os);
  std::ofstream out(args.out, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "xlink_grid: cannot write %s\n", args.out.c_str());
    return 1;
  }
  out << os.str();
  return 0;
}

int cmd_plan(const Args& args) {
  if (args.positional.size() != 2) return usage();
  const auto planned = harness::grids::build_grid(args.positional[0]);
  Spool spool =
      Spool::plan(planned.spec, args.positional[1], planned.precomputed);
  std::printf("planned %s: %zu cells (%zu precomputed) in %s\n",
              planned.spec.name.c_str(), spool.spec().cells.size(),
              planned.precomputed.size(), spool.dir().c_str());
  return 0;
}

int cmd_work(const Args& args) {
  if (args.positional.size() != 1) return usage();
  Spool spool(args.positional[0]);
  const auto report = harness::shard::run_worker(spool, args.jobs);
  for (const auto& [index, seconds] : report.cell_wall_seconds)
    std::printf("cell %zu (%s): %.2fs\n", index,
                spool.spec().cells[index].label.c_str(), seconds);
  std::printf("worker done: %zu cell(s) in %.2fs; spool %zu/%zu complete\n",
              report.cell_wall_seconds.size(), report.total_wall_seconds,
              spool.completed(), spool.spec().cells.size());
  return 0;
}

int cmd_merge(const Args& args) {
  if (args.positional.size() != 1) return usage();
  Spool spool(args.positional[0]);
  std::vector<std::size_t> missing;
  const auto results = spool.collect(&missing);
  if (!missing.empty()) {
    std::fprintf(stderr, "xlink_grid: %zu cell(s) incomplete:", missing.size());
    for (std::size_t i : missing)
      std::fprintf(stderr, " %zu(%s)", i, spool.spec().cells[i].label.c_str());
    std::fprintf(stderr, "\nrun more workers, then merge again.\n");
    return 1;
  }
  return write_output(args, [&](std::ostream& os) {
    harness::shard::write_grid_results(spool.spec(), results, os);
  });
}

int cmd_run(const Args& args) {
  if (args.positional.size() != 1) return usage();
  const auto planned = harness::grids::build_grid(args.positional[0], args.jobs);
  auto results = harness::shard::run_grid_inprocess(planned.spec, args.jobs);
  return write_output(args, [&](std::ostream& os) {
    harness::shard::write_grid_results(planned.spec, results, os);
  });
}

int cmd_status(const Args& args) {
  if (args.positional.size() != 1) return usage();
  Spool spool(args.positional[0]);
  std::size_t done = 0;
  for (std::size_t i = 0; i < spool.spec().cells.size(); ++i) {
    const char* state = "todo";
    if (spool.has_result(i)) {
      state = "done";
      ++done;
    } else if (std::ifstream(spool.claim_path(i)).good()) {
      state = "claimed";
    }
    std::printf("cell %zu %-12s %s\n", i, spool.spec().cells[i].label.c_str(),
                state);
  }
  std::printf("%zu/%zu complete\n", done, spool.spec().cells.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  Args args;
  if (!parse_args(argc, argv, args)) return usage();
  try {
    if (cmd == "plan") return cmd_plan(args);
    if (cmd == "work") return cmd_work(args);
    if (cmd == "merge") return cmd_merge(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "status") return cmd_status(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "xlink_grid: %s\n", e.what());
    return 1;
  }
  return usage();
}
