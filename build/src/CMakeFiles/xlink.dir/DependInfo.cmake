
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/double_threshold.cpp" "src/CMakeFiles/xlink.dir/core/double_threshold.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/core/double_threshold.cpp.o.d"
  "/root/repo/src/core/primary_path.cpp" "src/CMakeFiles/xlink.dir/core/primary_path.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/core/primary_path.cpp.o.d"
  "/root/repo/src/core/qoe_feedback.cpp" "src/CMakeFiles/xlink.dir/core/qoe_feedback.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/core/qoe_feedback.cpp.o.d"
  "/root/repo/src/core/qoe_signals.cpp" "src/CMakeFiles/xlink.dir/core/qoe_signals.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/core/qoe_signals.cpp.o.d"
  "/root/repo/src/core/reinjection.cpp" "src/CMakeFiles/xlink.dir/core/reinjection.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/core/reinjection.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/CMakeFiles/xlink.dir/core/session.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/core/session.cpp.o.d"
  "/root/repo/src/core/xlink_scheduler.cpp" "src/CMakeFiles/xlink.dir/core/xlink_scheduler.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/core/xlink_scheduler.cpp.o.d"
  "/root/repo/src/energy/energy_model.cpp" "src/CMakeFiles/xlink.dir/energy/energy_model.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/energy/energy_model.cpp.o.d"
  "/root/repo/src/harness/ab_test.cpp" "src/CMakeFiles/xlink.dir/harness/ab_test.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/harness/ab_test.cpp.o.d"
  "/root/repo/src/harness/endpoint.cpp" "src/CMakeFiles/xlink.dir/harness/endpoint.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/harness/endpoint.cpp.o.d"
  "/root/repo/src/harness/scenario.cpp" "src/CMakeFiles/xlink.dir/harness/scenario.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/harness/scenario.cpp.o.d"
  "/root/repo/src/http/media_client.cpp" "src/CMakeFiles/xlink.dir/http/media_client.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/http/media_client.cpp.o.d"
  "/root/repo/src/http/media_server.cpp" "src/CMakeFiles/xlink.dir/http/media_server.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/http/media_server.cpp.o.d"
  "/root/repo/src/http/range_protocol.cpp" "src/CMakeFiles/xlink.dir/http/range_protocol.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/http/range_protocol.cpp.o.d"
  "/root/repo/src/lb/quic_lb.cpp" "src/CMakeFiles/xlink.dir/lb/quic_lb.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/lb/quic_lb.cpp.o.d"
  "/root/repo/src/mpquic/scheduler_blest.cpp" "src/CMakeFiles/xlink.dir/mpquic/scheduler_blest.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/mpquic/scheduler_blest.cpp.o.d"
  "/root/repo/src/mpquic/scheduler_ecf.cpp" "src/CMakeFiles/xlink.dir/mpquic/scheduler_ecf.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/mpquic/scheduler_ecf.cpp.o.d"
  "/root/repo/src/mpquic/scheduler_minrtt.cpp" "src/CMakeFiles/xlink.dir/mpquic/scheduler_minrtt.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/mpquic/scheduler_minrtt.cpp.o.d"
  "/root/repo/src/mpquic/scheduler_redundant.cpp" "src/CMakeFiles/xlink.dir/mpquic/scheduler_redundant.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/mpquic/scheduler_redundant.cpp.o.d"
  "/root/repo/src/mpquic/scheduler_rr.cpp" "src/CMakeFiles/xlink.dir/mpquic/scheduler_rr.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/mpquic/scheduler_rr.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/CMakeFiles/xlink.dir/net/link.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/net/link.cpp.o.d"
  "/root/repo/src/net/loss_model.cpp" "src/CMakeFiles/xlink.dir/net/loss_model.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/net/loss_model.cpp.o.d"
  "/root/repo/src/net/path.cpp" "src/CMakeFiles/xlink.dir/net/path.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/net/path.cpp.o.d"
  "/root/repo/src/quic/cc_coupled.cpp" "src/CMakeFiles/xlink.dir/quic/cc_coupled.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/quic/cc_coupled.cpp.o.d"
  "/root/repo/src/quic/cc_cubic.cpp" "src/CMakeFiles/xlink.dir/quic/cc_cubic.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/quic/cc_cubic.cpp.o.d"
  "/root/repo/src/quic/cc_newreno.cpp" "src/CMakeFiles/xlink.dir/quic/cc_newreno.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/quic/cc_newreno.cpp.o.d"
  "/root/repo/src/quic/connection.cpp" "src/CMakeFiles/xlink.dir/quic/connection.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/quic/connection.cpp.o.d"
  "/root/repo/src/quic/crypto.cpp" "src/CMakeFiles/xlink.dir/quic/crypto.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/quic/crypto.cpp.o.d"
  "/root/repo/src/quic/frame.cpp" "src/CMakeFiles/xlink.dir/quic/frame.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/quic/frame.cpp.o.d"
  "/root/repo/src/quic/loss_detection.cpp" "src/CMakeFiles/xlink.dir/quic/loss_detection.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/quic/loss_detection.cpp.o.d"
  "/root/repo/src/quic/packet.cpp" "src/CMakeFiles/xlink.dir/quic/packet.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/quic/packet.cpp.o.d"
  "/root/repo/src/quic/rtt.cpp" "src/CMakeFiles/xlink.dir/quic/rtt.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/quic/rtt.cpp.o.d"
  "/root/repo/src/quic/stream.cpp" "src/CMakeFiles/xlink.dir/quic/stream.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/quic/stream.cpp.o.d"
  "/root/repo/src/quic/varint.cpp" "src/CMakeFiles/xlink.dir/quic/varint.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/quic/varint.cpp.o.d"
  "/root/repo/src/sim/event_loop.cpp" "src/CMakeFiles/xlink.dir/sim/event_loop.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/sim/event_loop.cpp.o.d"
  "/root/repo/src/sim/rng.cpp" "src/CMakeFiles/xlink.dir/sim/rng.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/sim/rng.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/CMakeFiles/xlink.dir/stats/summary.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/stats/summary.cpp.o.d"
  "/root/repo/src/stats/table.cpp" "src/CMakeFiles/xlink.dir/stats/table.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/stats/table.cpp.o.d"
  "/root/repo/src/trace/synthetic.cpp" "src/CMakeFiles/xlink.dir/trace/synthetic.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/trace/synthetic.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/xlink.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/trace/trace.cpp.o.d"
  "/root/repo/src/video/player.cpp" "src/CMakeFiles/xlink.dir/video/player.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/video/player.cpp.o.d"
  "/root/repo/src/video/qoe_capture.cpp" "src/CMakeFiles/xlink.dir/video/qoe_capture.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/video/qoe_capture.cpp.o.d"
  "/root/repo/src/video/video_model.cpp" "src/CMakeFiles/xlink.dir/video/video_model.cpp.o" "gcc" "src/CMakeFiles/xlink.dir/video/video_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
