# Empty dependencies file for xlink.
# This may be replaced when dependencies are built.
