file(REMOVE_RECURSE
  "libxlink.a"
)
