file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_first_frame.dir/bench_fig12_first_frame.cpp.o"
  "CMakeFiles/bench_fig12_first_frame.dir/bench_fig12_first_frame.cpp.o.d"
  "bench_fig12_first_frame"
  "bench_fig12_first_frame.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_first_frame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
