# Empty dependencies file for bench_fig12_first_frame.
# This may be replaced when dependencies are built.
