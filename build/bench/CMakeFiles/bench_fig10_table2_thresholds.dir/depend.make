# Empty dependencies file for bench_fig10_table2_thresholds.
# This may be replaced when dependencies are built.
