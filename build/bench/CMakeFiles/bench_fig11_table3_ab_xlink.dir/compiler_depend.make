# Empty compiler generated dependencies file for bench_fig11_table3_ab_xlink.
# This may be replaced when dependencies are built.
