file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_table3_ab_xlink.dir/bench_fig11_table3_ab_xlink.cpp.o"
  "CMakeFiles/bench_fig11_table3_ab_xlink.dir/bench_fig11_table3_ab_xlink.cpp.o.d"
  "bench_fig11_table3_ab_xlink"
  "bench_fig11_table3_ab_xlink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_table3_ab_xlink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
