file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1c_table1_ab_vanilla.dir/bench_fig1c_table1_ab_vanilla.cpp.o"
  "CMakeFiles/bench_fig1c_table1_ab_vanilla.dir/bench_fig1c_table1_ab_vanilla.cpp.o.d"
  "bench_fig1c_table1_ab_vanilla"
  "bench_fig1c_table1_ab_vanilla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1c_table1_ab_vanilla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
