# Empty compiler generated dependencies file for bench_fig1c_table1_ab_vanilla.
# This may be replaced when dependencies are built.
