# Empty dependencies file for bench_fig15_traces.
# This may be replaced when dependencies are built.
