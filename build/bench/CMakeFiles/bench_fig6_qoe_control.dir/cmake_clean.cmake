file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_qoe_control.dir/bench_fig6_qoe_control.cpp.o"
  "CMakeFiles/bench_fig6_qoe_control.dir/bench_fig6_qoe_control.cpp.o.d"
  "bench_fig6_qoe_control"
  "bench_fig6_qoe_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_qoe_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
