# Empty compiler generated dependencies file for bench_fig6_qoe_control.
# This may be replaced when dependencies are built.
