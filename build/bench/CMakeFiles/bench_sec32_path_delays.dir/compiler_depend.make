# Empty compiler generated dependencies file for bench_sec32_path_delays.
# This may be replaced when dependencies are built.
