# Empty dependencies file for subway_commute.
# This may be replaced when dependencies are built.
