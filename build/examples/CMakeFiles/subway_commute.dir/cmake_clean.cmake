file(REMOVE_RECURSE
  "CMakeFiles/subway_commute.dir/subway_commute.cpp.o"
  "CMakeFiles/subway_commute.dir/subway_commute.cpp.o.d"
  "subway_commute"
  "subway_commute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subway_commute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
