file(REMOVE_RECURSE
  "CMakeFiles/short_video_feed.dir/short_video_feed.cpp.o"
  "CMakeFiles/short_video_feed.dir/short_video_feed.cpp.o.d"
  "short_video_feed"
  "short_video_feed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/short_video_feed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
