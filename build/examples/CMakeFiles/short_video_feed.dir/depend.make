# Empty dependencies file for short_video_feed.
# This may be replaced when dependencies are built.
