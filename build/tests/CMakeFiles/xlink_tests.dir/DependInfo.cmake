
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_connection.cpp" "tests/CMakeFiles/xlink_tests.dir/test_connection.cpp.o" "gcc" "tests/CMakeFiles/xlink_tests.dir/test_connection.cpp.o.d"
  "/root/repo/tests/test_connection_edge.cpp" "tests/CMakeFiles/xlink_tests.dir/test_connection_edge.cpp.o" "gcc" "tests/CMakeFiles/xlink_tests.dir/test_connection_edge.cpp.o.d"
  "/root/repo/tests/test_crypto_packet.cpp" "tests/CMakeFiles/xlink_tests.dir/test_crypto_packet.cpp.o" "gcc" "tests/CMakeFiles/xlink_tests.dir/test_crypto_packet.cpp.o.d"
  "/root/repo/tests/test_e2e_properties.cpp" "tests/CMakeFiles/xlink_tests.dir/test_e2e_properties.cpp.o" "gcc" "tests/CMakeFiles/xlink_tests.dir/test_e2e_properties.cpp.o.d"
  "/root/repo/tests/test_energy_harness.cpp" "tests/CMakeFiles/xlink_tests.dir/test_energy_harness.cpp.o" "gcc" "tests/CMakeFiles/xlink_tests.dir/test_energy_harness.cpp.o.d"
  "/root/repo/tests/test_frame.cpp" "tests/CMakeFiles/xlink_tests.dir/test_frame.cpp.o" "gcc" "tests/CMakeFiles/xlink_tests.dir/test_frame.cpp.o.d"
  "/root/repo/tests/test_http.cpp" "tests/CMakeFiles/xlink_tests.dir/test_http.cpp.o" "gcc" "tests/CMakeFiles/xlink_tests.dir/test_http.cpp.o.d"
  "/root/repo/tests/test_interval_stream.cpp" "tests/CMakeFiles/xlink_tests.dir/test_interval_stream.cpp.o" "gcc" "tests/CMakeFiles/xlink_tests.dir/test_interval_stream.cpp.o.d"
  "/root/repo/tests/test_lb_coupled.cpp" "tests/CMakeFiles/xlink_tests.dir/test_lb_coupled.cpp.o" "gcc" "tests/CMakeFiles/xlink_tests.dir/test_lb_coupled.cpp.o.d"
  "/root/repo/tests/test_loss_detection.cpp" "tests/CMakeFiles/xlink_tests.dir/test_loss_detection.cpp.o" "gcc" "tests/CMakeFiles/xlink_tests.dir/test_loss_detection.cpp.o.d"
  "/root/repo/tests/test_misc_edge.cpp" "tests/CMakeFiles/xlink_tests.dir/test_misc_edge.cpp.o" "gcc" "tests/CMakeFiles/xlink_tests.dir/test_misc_edge.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/xlink_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/xlink_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_qoe_feedback.cpp" "tests/CMakeFiles/xlink_tests.dir/test_qoe_feedback.cpp.o" "gcc" "tests/CMakeFiles/xlink_tests.dir/test_qoe_feedback.cpp.o.d"
  "/root/repo/tests/test_rtt_cc.cpp" "tests/CMakeFiles/xlink_tests.dir/test_rtt_cc.cpp.o" "gcc" "tests/CMakeFiles/xlink_tests.dir/test_rtt_cc.cpp.o.d"
  "/root/repo/tests/test_schedulers.cpp" "tests/CMakeFiles/xlink_tests.dir/test_schedulers.cpp.o" "gcc" "tests/CMakeFiles/xlink_tests.dir/test_schedulers.cpp.o.d"
  "/root/repo/tests/test_scheme_catalogue.cpp" "tests/CMakeFiles/xlink_tests.dir/test_scheme_catalogue.cpp.o" "gcc" "tests/CMakeFiles/xlink_tests.dir/test_scheme_catalogue.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/xlink_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/xlink_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/xlink_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/xlink_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/xlink_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/xlink_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/xlink_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/xlink_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_varint.cpp" "tests/CMakeFiles/xlink_tests.dir/test_varint.cpp.o" "gcc" "tests/CMakeFiles/xlink_tests.dir/test_varint.cpp.o.d"
  "/root/repo/tests/test_video.cpp" "tests/CMakeFiles/xlink_tests.dir/test_video.cpp.o" "gcc" "tests/CMakeFiles/xlink_tests.dir/test_video.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xlink.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
