# Empty compiler generated dependencies file for xlink_tests.
# This may be replaced when dependencies are built.
