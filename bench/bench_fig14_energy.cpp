// Fig. 14: normalized communication energy per bit vs throughput for
// single radios (WiFi, LTE, NR) and XLINK radio pairs (WiFi-LTE, WiFi-NR).
//
// Per the paper's method, each link is capped at 30 Mbps (the regime where
// 5G cannot reach its peak rate and multipath is interesting), and
// downloads of 10-50 MB run over each configuration. Dual radios raise
// instantaneous power but finish sooner; the paper's observation is that
// the pairs land in the top-left (higher throughput, competitive energy
// per bit vs their cellular member).
#include "bench_util.h"
#include "energy/energy_model.h"
#include "trace/synthetic.h"

using namespace xlink;

namespace {

struct RunOutcome {
  double throughput_mbps = 0.0;
  double energy_per_bit_nj = 0.0;
};

bench::TraceExemplar g_exemplar;

RunOutcome run_download(const std::vector<net::Wireless>& radios,
                        std::uint64_t megabytes, std::uint64_t seed) {
  harness::SessionConfig cfg;
  cfg.scheme = radios.size() > 1 ? core::Scheme::kXlink
                                 : core::Scheme::kSinglePath;
  cfg.with_player = false;
  cfg.seed = seed;
  cfg.time_limit = sim::seconds(120);
  cfg.video.duration = sim::seconds(megabytes);  // ~1 MB/s of content
  cfg.video.bitrate_bps = 8'000'000;
  cfg.client.chunk_bytes = 4 * 1024 * 1024;
  cfg.client.max_concurrent = 3;
  cfg.wireless_aware_primary = false;

  for (net::Wireless tech : radios) {
    const double cap = 30.0;
    // Every link runs near the 30 Mbps cap (the paper's setup: understand
    // the regime where 5G cannot reach its peak rate).
    trace::LinkTrace t =
        tech == net::Wireless::kWifi
            ? trace::nr_5g(seed * 7 + 1, sim::seconds(60), cap)
            : trace::nr_5g(seed * 7 + 2, sim::seconds(60), cap);
    sim::Duration rtt = tech == net::Wireless::kWifi  ? sim::millis(24)
                        : tech == net::Wireless::kLte ? sim::millis(60)
                                                      : sim::millis(30);
    cfg.paths.push_back(harness::make_path_spec(tech, std::move(t), rtt));
  }

  // Trace the first multipath download when asked.
  if (radios.size() > 1) g_exemplar.apply(cfg, "fig14_energy");
  harness::Session session(std::move(cfg));
  const auto result = session.run();

  std::vector<energy::RadioUsage> usage;
  std::uint64_t total = 0;
  const auto duration =
      static_cast<sim::Duration>(result.download_seconds * sim::kSecond);
  for (std::size_t i = 0; i < radios.size(); ++i) {
    energy::RadioUsage u;
    u.tech = radios[i];
    u.bytes_transferred =
        i < result.path_down_bytes.size() ? result.path_down_bytes[i] : 0;
    u.active_time = duration;  // attached for the whole transfer
    total += u.bytes_transferred;
    usage.push_back(u);
  }
  const auto report = energy::compute_energy(usage, total, duration);
  return {report.throughput_mbps, report.energy_per_bit_nj};
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Reproduction of paper Fig. 14 (energy per bit)\n");
  g_exemplar = bench::TraceExemplar::parse(argc, argv);

  struct Config {
    const char* label;
    std::vector<net::Wireless> radios;
  };
  const Config configs[] = {
      {"WiFi", {net::Wireless::kWifi}},
      {"LTE", {net::Wireless::kLte}},
      {"NR", {net::Wireless::k5gNsa}},
      {"WiFi-LTE", {net::Wireless::kWifi, net::Wireless::kLte}},
      {"WiFi-NR", {net::Wireless::kWifi, net::Wireless::k5gNsa}},
  };

  std::map<std::string, RunOutcome> outcomes;
  double max_tput = 0, max_epb = 0;
  for (const auto& c : configs) {
    RunOutcome avg;
    int n = 0;
    for (std::uint64_t mb : {10, 30, 50}) {
      const auto r = run_download(c.radios, mb, 11 + mb);
      avg.throughput_mbps += r.throughput_mbps;
      avg.energy_per_bit_nj += r.energy_per_bit_nj;
      ++n;
    }
    avg.throughput_mbps /= n;
    avg.energy_per_bit_nj /= n;
    outcomes[c.label] = avg;
    max_tput = std::max(max_tput, avg.throughput_mbps);
    max_epb = std::max(max_epb, avg.energy_per_bit_nj);
  }

  bench::heading("Normalized down-link throughput vs energy per bit");
  stats::Table table({"Radios", "throughput(Mbps)", "energy/bit(nJ)",
                      "norm tput", "norm energy/bit"});
  for (const auto& c : configs) {
    const auto& r = outcomes[c.label];
    table.add_row({c.label, bench::fmt(r.throughput_mbps, 1),
                   bench::fmt(r.energy_per_bit_nj, 1),
                   bench::fmt(r.throughput_mbps / max_tput),
                   bench::fmt(r.energy_per_bit_nj / max_epb)});
  }
  table.print();
  std::printf(
      "\nExpected shape: WiFi-LTE and WiFi-NR reach the highest throughput;"
      "\ntheir energy/bit beats LTE and NR alone (transfer finishes "
      "sooner); WiFi alone\nis the most energy-frugal but much slower.\n");
  return 0;
}
