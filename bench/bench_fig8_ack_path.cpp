// Fig. 8: ACK_MP return-path policy (min-RTT path vs original path) with
// Cubic congestion control.
//
// A 4 MB load over two equal-bandwidth paths while the RTT ratio between
// them sweeps 1:1 .. 8:1. Faster ACK return lets Cubic's window grow
// faster on the slow path, so the min-RTT ACK policy should pull ahead as
// the ratio grows.
#include "bench_util.h"

using namespace xlink;

namespace {

bench::TraceExemplar g_exemplar;

double download_once(int rtt_ratio, quic::AckPathPolicy policy,
                     std::uint64_t load_bytes);

/// Averages over slightly different load sizes: a single run is fully
/// deterministic and its completion time aliases with the cwnd oscillation
/// phase; the paper's testbed runs average over real-world noise instead.
double download_seconds(int rtt_ratio, quic::AckPathPolicy policy) {
  double sum = 0.0;
  int n = 0;
  for (std::uint64_t load = 3'000'000; load <= 5'000'000; load += 125'000) {
    sum += download_once(rtt_ratio, policy, load);
    ++n;
  }
  return sum / n;
}

double download_once(int rtt_ratio, quic::AckPathPolicy policy,
                     std::uint64_t load_bytes) {
  harness::SessionConfig cfg;
  cfg.scheme = core::Scheme::kXlink;
  cfg.options.xlink_ack_policy = policy;
  cfg.options.cc = quic::CcAlgorithm::kCubic;
  // Plain 4 MB download: no player, one chunk, no re-injection pressure.
  cfg.with_player = false;
  cfg.options.control.mode = core::ControlMode::kAlwaysOff;
  cfg.seed = 31;
  cfg.time_limit = sim::seconds(60);
  cfg.video.duration = sim::seconds(8);
  cfg.video.bitrate_bps = load_bytes;  // 8s at load_bytes bps ~= load bytes
  cfg.client.chunk_bytes = 64 * 1024 * 1024;  // single request
  cfg.client.max_concurrent = 1;
  cfg.wireless_aware_primary = false;

  auto fast = harness::make_path_spec(net::Wireless::kWifi, {},
                                      sim::millis(30));
  fast.fixed_rate_mbps = 10.0;
  fast.down_trace.reset();
  auto slow = harness::make_path_spec(net::Wireless::kLte, {},
                                      sim::millis(30 * rtt_ratio / 2) * 2);
  slow.fixed_rate_mbps = 10.0;
  slow.down_trace.reset();
  slow.one_way_delay = sim::millis(15) * rtt_ratio;
  cfg.paths.push_back(std::move(fast));
  cfg.paths.push_back(std::move(slow));

  g_exemplar.apply(cfg, "fig8_ack_path");
  harness::Session session(std::move(cfg));
  return session.run().download_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Reproduction of paper Fig. 8 (ACK_MP path selection)\n");
  g_exemplar = bench::TraceExemplar::parse(argc, argv);
  bench::heading("4MB request completion time (s), Cubic");
  stats::Table table({"RTT ratio", "minRTT-path ACK", "original-path ACK"});
  for (int ratio = 1; ratio <= 8; ++ratio) {
    table.add_row(
        {std::to_string(ratio) + ":1",
         bench::fmt(download_seconds(ratio, quic::AckPathPolicy::kFastestPath)),
         bench::fmt(download_seconds(ratio,
                                     quic::AckPathPolicy::kOriginalPath))});
  }
  table.print();
  std::printf(
      "\nExpected shape: similar at 1:1, min-RTT ACK increasingly faster "
      "as the RTT ratio grows.\n");
  return 0;
}
