// Fig. 1a/1b: vanilla-MP in fast-varying wireless environments.
//
// Replays a campus-walk Wi-Fi trace (fast variation, near-outage) and a
// stable LTE trace under vanilla-MP while a video downloads, and prints
// per-100ms link capacity, in-flight bytes, and CWND for each path. The
// paper's observation to reproduce: when the Wi-Fi trace collapses, the
// CWND cannot follow, the scheduler keeps the path loaded, and in-flight
// bytes on the dying path stay high (the raw material of MP-HoL blocking).
#include "bench_util.h"
#include "trace/synthetic.h"

using namespace xlink;

int main(int argc, char** argv) {
  std::printf("Reproduction of paper Fig. 1a/1b (vanilla-MP dynamics)\n");
  auto exemplar = bench::TraceExemplar::parse(argc, argv);

  trace::LinkTrace wifi = trace::campus_walk_wifi(2024, sim::seconds(10));
  trace::LinkTrace lte = trace::stable_lte(7, sim::seconds(10));
  // Keep copies for capacity plotting.
  const trace::LinkTrace wifi_copy = wifi;
  const trace::LinkTrace lte_copy = lte;

  harness::SessionConfig cfg;
  cfg.scheme = core::Scheme::kVanillaMp;
  cfg.seed = 5;
  cfg.time_limit = sim::seconds(10);
  cfg.video.duration = sim::seconds(30);  // keep downloading the whole time
  cfg.video.bitrate_bps = 8'000'000;
  cfg.client.chunk_bytes = 1024 * 1024;
  cfg.client.max_concurrent = 3;
  cfg.wireless_aware_primary = false;
  cfg.paths.push_back(harness::make_path_spec(net::Wireless::kWifi,
                                              std::move(wifi),
                                              sim::millis(40)));
  cfg.paths.push_back(harness::make_path_spec(net::Wireless::kLte,
                                              std::move(lte),
                                              sim::millis(90)));

  exemplar.apply(cfg, "fig1_dynamics");
  auto [result, timeline] =
      bench::run_with_timeline(std::move(cfg), sim::millis(100));
  (void)result;

  bench::heading("Fig. 1a (Wi-Fi path) and 1b (LTE path)");
  stats::Table table({"t(s)", "wifi cap(Mbps)", "wifi inflight(KB)",
                      "wifi cwnd(KB)", "lte cap(Mbps)", "lte inflight(KB)",
                      "lte cwnd(KB)"});
  for (const auto& s : timeline) {
    if (s.t_seconds > 6.0) break;
    const auto at = static_cast<sim::Time>(s.t_seconds * sim::kSecond);
    table.add_row({bench::fmt(s.t_seconds, 1),
                   bench::fmt(wifi_copy.window_bps(at, sim::millis(300)) / 1e6, 1),
                   bench::fmt(s.inflight_kb_path0, 0),
                   bench::fmt(s.cwnd_kb_path0, 0),
                   bench::fmt(lte_copy.window_bps(at, sim::millis(300)) / 1e6, 1),
                   bench::fmt(s.inflight_kb_path1, 0),
                   bench::fmt(s.cwnd_kb_path1, 0)});
  }
  table.print();
  std::printf(
      "\nExpected shape: Wi-Fi capacity collapses during its outage while "
      "Wi-Fi in-flight/CWND stay high\n(the scheduler keeps the path "
      "loaded); LTE stays steady.\n");
  return 0;
}
