// Microbenchmarks of the transport primitives (google-benchmark).
//
// These guard the per-packet costs that determine how many emulated
// sessions per second the evaluation harness can run: varint codec, frame
// serialization, packet protection, interval bookkeeping, the event loop,
// and a complete small video session per scheme.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <functional>
#include <vector>

#include "harness/scenario.h"
#include "quic/crypto.h"
#include "quic/frame.h"
#include "quic/interval_set.h"
#include "quic/packet.h"
#include "sim/event_loop.h"
#include "trace/synthetic.h"

using namespace xlink;

namespace {

void BM_VarintRoundtrip(benchmark::State& state) {
  const std::uint64_t values[] = {7, 300, 70000, 5'000'000'000ULL};
  for (auto _ : state) {
    quic::Writer w;
    for (std::uint64_t v : values) w.varint(v);
    quic::Reader r(w.data());
    for (int i = 0; i < 4; ++i) benchmark::DoNotOptimize(r.varint());
  }
}
BENCHMARK(BM_VarintRoundtrip);

void BM_StreamFrameRoundtrip(benchmark::State& state) {
  quic::StreamFrame f;
  f.stream_id = 4;
  f.offset = 123456;
  f.data.assign(static_cast<std::size_t>(state.range(0)), 0xab);
  const quic::Frame frame{f};
  for (auto _ : state) {
    quic::Writer w;
    quic::encode_frame(frame, w);
    quic::Reader r(w.data());
    benchmark::DoNotOptimize(quic::parse_frame(r));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StreamFrameRoundtrip)->Arg(256)->Arg(1400);

void BM_AckMpRoundtrip(benchmark::State& state) {
  quic::AckMpFrame f;
  f.path_id = 1;
  for (int i = 0; i < 8; ++i)
    f.info.ranges.push_back({static_cast<quic::PacketNumber>(100 - i * 10),
                             static_cast<quic::PacketNumber>(104 - i * 10)});
  f.qoe = quic::QoeSignal{1'000'000, 120, 2'000'000, 30};
  const quic::Frame frame{f};
  for (auto _ : state) {
    quic::Writer w;
    quic::encode_frame(frame, w);
    quic::Reader r(w.data());
    benchmark::DoNotOptimize(quic::parse_frame(r));
  }
}
BENCHMARK(BM_AckMpRoundtrip);

void BM_PacketSealOpen(benchmark::State& state) {
  quic::PacketProtection aead(0x1234);
  quic::PacketHeader header;
  header.cid_sequence = 1;
  std::vector<quic::Frame> frames;
  quic::StreamFrame f;
  f.data.assign(1400, 0x55);
  frames.emplace_back(std::move(f));
  quic::PacketNumber pn = 0;
  for (auto _ : state) {
    header.packet_number = pn++;
    const auto wire = quic::seal_packet(aead, header, frames);
    const auto pkt = quic::parse_packet(wire);
    benchmark::DoNotOptimize(quic::open_packet(aead, *pkt));
  }
  state.SetBytesProcessed(state.iterations() * 1400);
}
BENCHMARK(BM_PacketSealOpen);

void BM_IntervalSetAdd(benchmark::State& state) {
  for (auto _ : state) {
    quic::IntervalSet set;
    // Out-of-order arrival pattern: evens then odds (forces merges).
    for (std::uint64_t i = 0; i < 200; i += 2) set.add(i * 100, i * 100 + 100);
    for (std::uint64_t i = 1; i < 200; i += 2) set.add(i * 100, i * 100 + 100);
    benchmark::DoNotOptimize(set.interval_count());
  }
}
BENCHMARK(BM_IntervalSetAdd);

void BM_EventLoopChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    int fired = 0;
    for (int i = 0; i < 1000; ++i)
      loop.schedule_in(static_cast<sim::Duration>(i % 97), [&fired] {
        ++fired;
      });
    loop.run();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_EventLoopChurn);

// Schedule+cancel churn: the retransmission-timer pattern (almost every
// armed timer is disarmed before it fires). Exercises the slab free-list,
// generation-tag liveness check, and lazy-deletion compaction.
void BM_EventLoopScheduleCancel(benchmark::State& state) {
  sim::EventLoop loop;
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      const sim::EventId id =
          loop.schedule_in(static_cast<sim::Duration>(i % 97 + 1), [] {});
      loop.cancel(id);
    }
    benchmark::DoNotOptimize(loop.pending());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopScheduleCancel);

// Steady-state timer mix: a live population of timers where each firing
// schedules a replacement and cancels a neighbour — the event loop's
// session hot path without any transport logic.
void BM_EventLoopTimerMix(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    std::vector<sim::EventId> ids(256, 0);
    std::uint64_t fired = 0;
    std::function<void(std::size_t)> arm = [&](std::size_t slot) {
      ids[slot] = loop.schedule_in(1 + slot % 61, [&, slot] {
        ++fired;
        loop.cancel(ids[(slot + 1) % ids.size()]);
        if (fired < 20000) arm(slot);
      });
    };
    for (std::size_t s = 0; s < ids.size(); ++s) arm(s);
    loop.run();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_EventLoopTimerMix)->Unit(benchmark::kMillisecond);

void BM_FullSession(benchmark::State& state) {
  const auto scheme = static_cast<core::Scheme>(state.range(0));
  for (auto _ : state) {
    harness::SessionConfig cfg;
    cfg.scheme = scheme;
    cfg.video.duration = sim::seconds(3);
    cfg.video.bitrate_bps = 2'000'000;
    cfg.seed = 3;
    cfg.paths.push_back(harness::make_path_spec(
        net::Wireless::kWifi, trace::stable_lte(1, sim::seconds(10)),
        sim::millis(30)));
    cfg.paths.push_back(harness::make_path_spec(
        net::Wireless::kLte, trace::stable_lte(2, sim::seconds(10)),
        sim::millis(80)));
    harness::Session session(std::move(cfg));
    benchmark::DoNotOptimize(session.run().download_finished);
  }
}
BENCHMARK(BM_FullSession)
    ->Arg(static_cast<int>(core::Scheme::kSinglePath))
    ->Arg(static_cast<int>(core::Scheme::kVanillaMp))
    ->Arg(static_cast<int>(core::Scheme::kXlink))
    ->Unit(benchmark::kMillisecond);

}  // namespace
