// Fig. 1c + Table 1: large-scale A/B test of vanilla-MP against SP.
//
// Seven "days" of paired populations. The paper's finding to reproduce:
// vanilla-MP is inconsistent at the median, and consistently WORSE at the
// 99th percentile RCT; its rebuffer rate is worse than SP's every day
// (negative improvement in Table 1).
#include "bench_util.h"
#include "harness/ab_test.h"
#include "harness/parallel.h"

using namespace xlink;

int main(int argc, char** argv) {
  std::printf("Reproduction of paper Fig. 1c + Table 1 (vanilla-MP vs SP)\n");
  std::printf("parallel engine: %u worker(s) (set XLINK_JOBS to override)\n",
              harness::default_jobs());

  harness::PopulationConfig pop;
  pop.sessions_per_day = 45;
  core::SchemeOptions opts;

  // --trace-exemplar: record day 1's first vanilla-MP session (same seed
  // formula as run_ab_day) for the xlink_qlog analyzer.
  if (auto exemplar = bench::TraceExemplar::parse(argc, argv);
      exemplar.on()) {
    auto cfg = harness::draw_session_conditions(pop, 1001 * 1000003ULL);
    cfg.scheme = core::Scheme::kVanillaMp;
    exemplar.apply(cfg, "fig1c_ab_vanilla");
    harness::Session(std::move(cfg)).run();
  }

  stats::Table rct({"Day", "SP p50", "MP p50", "SP p95", "MP p95", "SP p99",
                    "MP p99"});
  stats::Table table1({"Day", "rebuffer improv. (%)"});

  for (int day = 1; day <= 7; ++day) {
    const std::uint64_t seed = 1000 + day;
    // Both arms of the day run as one parallel batch (bit-identical to the
    // serial pair of run_day calls).
    const auto ab = harness::run_ab_day(core::Scheme::kSinglePath, opts,
                                        core::Scheme::kVanillaMp, opts, pop,
                                        seed);
    const auto& sp = ab.arm_a;
    const auto& mp = ab.arm_b;
    rct.add_row({std::to_string(day), bench::fmt(sp.rct.percentile(50)),
                 bench::fmt(mp.rct.percentile(50)),
                 bench::fmt(sp.rct.percentile(95)),
                 bench::fmt(mp.rct.percentile(95)),
                 bench::fmt(sp.rct.percentile(99)),
                 bench::fmt(mp.rct.percentile(99))});
    table1.add_row({std::to_string(day),
                    bench::fmt(stats::improvement_pct(sp.rebuffer_rate,
                                                      mp.rebuffer_rate),
                               1)});
  }
  bench::heading("Fig. 1c: request completion time (s), SP vs vanilla-MP");
  rct.print();
  bench::heading(
      "Table 1: reduction of rebuffer rate, vanilla-MP vs SP "
      "(negative = vanilla-MP worse)");
  table1.print();
  std::printf(
      "\nExpected shape: vanilla-MP p99 worse than SP; rebuffer "
      "improvement mostly negative.\n");
  return 0;
}
