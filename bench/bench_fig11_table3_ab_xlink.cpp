// Fig. 11 + Table 3: the headline A/B test, XLINK vs single-path QUIC.
//
// Fourteen days of request completion time percentiles plus seven days of
// rebuffer-rate reduction. The paper reports 2.3-8.9% (median), 9.4-34%
// (p95), 19-50% (p99) RCT improvements and 23.8-67.7% rebuffer-rate
// reduction at ~2.1% redundant traffic; the shapes to reproduce are
// XLINK >= SP everywhere, growing toward the tail.
//
// The day sweep is the canonical "fig11" grid (harness/grids.h): each day
// is one A/B cell (arm A = SP, arm B = XLINK), and run_ab_day is
// bit-identical to the two run_day calls the bench historically made — so
// this binary, `xlink_grid run fig11`, and a sharded plan/work/merge all
// produce the same numbers.
#include "bench_util.h"
#include "harness/grids.h"
#include "harness/shard.h"

using namespace xlink;

int main(int argc, char** argv) {
  std::printf("Reproduction of paper Fig. 11 + Table 3 (XLINK vs SP)\n");

  // --trace-exemplar: record day 1's first XLINK session (same seed
  // formula as run_day) for the xlink_qlog analyzer.
  if (auto exemplar = bench::TraceExemplar::parse(argc, argv);
      exemplar.on()) {
    harness::PopulationConfig pop;
    pop.sessions_per_day = 45;
    auto cfg = harness::draw_session_conditions(pop, 2001 * 1000003ULL);
    cfg.scheme = core::Scheme::kXlink;
    exemplar.apply(cfg, "fig11_ab_xlink");
    harness::Session(std::move(cfg)).run();
  }

  const auto spec = harness::grids::fig11_grid();

  stats::Table rct({"Day", "SP p50", "XL p50", "SP p95", "XL p95", "SP p99",
                    "XL p99", "p99 improv(%)"});
  stats::Table table3({"Day", "rebuffer improv. (%)", "redundancy (%)"});
  stats::Summary p50_improv, p95_improv, p99_improv;

  for (std::size_t c = 0; c < spec.cells.size(); ++c) {
    const int day = static_cast<int>(c) + 1;
    const auto cell = harness::shard::run_cell(spec.cells[c]);
    const auto& sp = cell.arm_a;
    const auto& xl = cell.arm_b;
    const double i50 =
        stats::improvement_pct(sp.rct.percentile(50), xl.rct.percentile(50));
    const double i95 =
        stats::improvement_pct(sp.rct.percentile(95), xl.rct.percentile(95));
    const double i99 =
        stats::improvement_pct(sp.rct.percentile(99), xl.rct.percentile(99));
    p50_improv.add(i50);
    p95_improv.add(i95);
    p99_improv.add(i99);
    rct.add_row({std::to_string(day), bench::fmt(sp.rct.percentile(50)),
                 bench::fmt(xl.rct.percentile(50)),
                 bench::fmt(sp.rct.percentile(95)),
                 bench::fmt(xl.rct.percentile(95)),
                 bench::fmt(sp.rct.percentile(99)),
                 bench::fmt(xl.rct.percentile(99)), bench::fmt(i99, 1)});
    if (day <= 7) {
      table3.add_row({std::to_string(day),
                      bench::fmt(stats::improvement_pct(sp.rebuffer_rate,
                                                        xl.rebuffer_rate),
                                 1),
                      bench::fmt(xl.redundancy_pct, 1)});
    }
  }
  bench::heading("Fig. 11: request completion time (s), SP vs XLINK");
  rct.print();
  bench::heading("Table 3: reduction of rebuffer rate (XLINK vs SP)");
  table3.print();
  std::printf(
      "\nday-to-day improvement ranges: median %.1f..%.1f%% (paper "
      "2.3..8.9%%), p95 %.1f..%.1f%% (paper 9.4..34%%), p99 %.1f..%.1f%% "
      "(paper 19..50%%)\n",
      p50_improv.min(), p50_improv.max(), p95_improv.min(), p95_improv.max(),
      p99_improv.min(), p99_improv.max());
  return 0;
}
