// FEC vs re-injection ablation under Gilbert-Elliott burst loss.
//
// Four arms on identical drawn conditions (same seeds, same traces, same
// burst-loss processes): no redundancy, re-injection only, FEC only, and
// FEC + re-injection (mutually aware: re-injection skips packets a repair
// window covers). Reports the QoE triplet (first frame, chunk RCT,
// rebuffer rate) plus the cost side: redundancy overhead, erasures the FEC
// windows observed, and the fraction recovered without a retransmit.
//
// `--smoke` shrinks the sweep for CI (2 seeds, short video), exercising
// all four arms end to end.
#include "bench_util.h"
#include "harness/parallel.h"
#include "trace/synthetic.h"

using namespace xlink;

namespace {

struct Arm {
  const char* label;
  core::XlinkRedundancy redundancy;
};

constexpr Arm kArms[] = {
    {"none", core::XlinkRedundancy::kNone},
    {"reinject", core::XlinkRedundancy::kReinject},
    {"fec", core::XlinkRedundancy::kFec},
    {"fec+reinject", core::XlinkRedundancy::kReinjectPlusFec},
};

struct Sweep {
  int seeds = 8;
  sim::Duration video = sim::seconds(12);
  sim::Duration time_limit = sim::seconds(60);
};

harness::SessionConfig base_config(std::uint64_t seed, const Sweep& sweep) {
  harness::SessionConfig cfg;
  cfg.scheme = core::Scheme::kXlink;
  cfg.seed = seed;
  cfg.time_limit = sweep.time_limit;
  cfg.video.duration = sweep.video;
  cfg.video.bitrate_bps = 3'000'000;
  cfg.video.first_frame_bytes = 128 * 1024;
  cfg.client.chunk_bytes = 256 * 1024;
  cfg.client.max_concurrent = 2;
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kWifi,
      trace::campus_walk_wifi(seed * 5 + 1, sim::seconds(40)),
      sim::millis(30)));
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kLte, trace::stable_lte(seed * 5 + 2, sim::seconds(40)),
      sim::millis(90)));
  // Bursty residual loss on both paths: the regime where per-window FEC
  // pays off (independent Bernoulli loss rarely erases, bursts do).
  net::PathSpec::GeLoss ge;
  ge.p_good_to_bad = 0.006;
  ge.p_bad_to_good = 0.35;
  ge.loss_good = 0.0;
  ge.loss_bad = 0.45;
  for (auto& p : cfg.paths) p.ge_loss = ge;
  return cfg;
}

void configure_arm(harness::SessionConfig& cfg, const Arm& arm) {
  cfg.options.xlink_redundancy = arm.redundancy;
  // Burst erasures cluster, and a burst that kills a window's tail often
  // kills the adjacent repair packets too -- budget enough symbols that
  // some survive the same burst that caused the erasures.
  cfg.options.fec.window = 8;
  cfg.options.fec.min_repairs = 4;
  cfg.options.fec.max_repairs = 6;
  cfg.options.fec.loss_multiplier = 8.0;
}

struct ArmResult {
  stats::Summary first_frame_ms;
  stats::Summary rct;
  double rebuffer = 0, play = 0;
  std::uint64_t payload = 0, reinject = 0, repair = 0;
  std::uint64_t erased = 0, recovered = 0, wasted = 0, windows = 0;
};

ArmResult run_arm(const Arm& arm, const Sweep& sweep) {
  const auto results = harness::run_sessions_parallel(
      static_cast<std::size_t>(sweep.seeds), [&](std::size_t i) {
        auto cfg = base_config(i + 1, sweep);
        configure_arm(cfg, arm);
        return cfg;
      });
  ArmResult a;
  for (const auto& r : results) {
    if (r.first_frame_seconds)
      a.first_frame_ms.add(*r.first_frame_seconds * 1000.0);
    a.rct.add_all(r.chunk_rct_seconds);
    a.rebuffer += r.rebuffer_seconds;
    a.play += r.play_seconds;
    a.payload += r.stream_payload_bytes;
    a.reinject += r.reinjected_bytes;
    a.repair += r.fec_repair_bytes;
    a.erased += r.fec_erased_seen;
    a.recovered += r.fec_recovered_packets;
    a.wasted += r.fec_wasted_symbols;
    a.windows += r.fec_windows_protected;
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  Sweep sweep;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      sweep.seeds = 2;
      sweep.video = sim::seconds(4);
      sweep.time_limit = sim::seconds(30);
    }
  }
  std::printf("FEC vs re-injection ablation (Gilbert-Elliott burst loss, "
              "%d seeds)\n", sweep.seeds);

  if (auto exemplar = bench::TraceExemplar::parse(argc, argv);
      exemplar.on()) {
    auto cfg = base_config(1, sweep);
    configure_arm(cfg, kArms[3]);  // fec+reinject shows every event type
    exemplar.apply(cfg, "fec_ablation");
    harness::Session(std::move(cfg)).run();
  }

  bench::heading(
      "QoE (first frame, RCT, rebuffer) vs redundancy cost per arm");
  stats::Table table({"Arm", "ff p50(ms)", "RCT p99(s)", "rebuf(%)",
                      "redun(%)", "windows", "erased", "recovered",
                      "recov(%)", "wasted"});
  for (const Arm& arm : kArms) {
    const ArmResult a = run_arm(arm, sweep);
    const double redun_pct =
        a.payload > 0
            ? 100.0 * double(a.reinject + a.repair) / double(a.payload)
            : 0.0;
    const double recov_pct =
        a.erased > 0 ? 100.0 * double(a.recovered) / double(a.erased) : 0.0;
    table.add_row({arm.label, bench::fmt(a.first_frame_ms.median(), 0),
                   bench::fmt(a.rct.percentile(99), 2),
                   bench::fmt(a.play > 0 ? a.rebuffer / a.play * 100.0 : 0.0,
                              2),
                   bench::fmt(redun_pct, 1), std::to_string(a.windows),
                   std::to_string(a.erased), std::to_string(a.recovered),
                   bench::fmt(recov_pct, 1), std::to_string(a.wasted)});
  }
  table.print();
  std::printf("\nrecov(%%) = erasures rebuilt from repair symbols without a"
              " retransmit;\nerased counts only erasures inside windows whose"
              " repairs arrived.\n");
  return 0;
}
