// Fig. 7: first-video-frame delivery time when starting a connection from
// a 5G SA or a Wi-Fi interface, vs first-frame size.
//
// The primary path carries the handshake and (mostly) the first frame, so
// its delay and ramp-up dominate start-up. 5G SA has the lower path delay
// (paper §3.2), so 5G-primary should win, with the gap widening for larger
// first frames.
#include "bench_util.h"

using namespace xlink;

namespace {

bench::TraceExemplar g_exemplar;

double first_frame_ms(std::uint64_t frame_bytes, bool fiveg_primary) {
  harness::SessionConfig cfg;
  cfg.scheme = core::Scheme::kXlink;
  cfg.seed = 77;
  cfg.time_limit = sim::seconds(30);
  cfg.video.duration = sim::seconds(10);
  cfg.video.bitrate_bps = 4'000'000;
  cfg.video.first_frame_bytes = frame_bytes;
  cfg.client.chunk_bytes = 2 * 1024 * 1024 + frame_bytes;
  cfg.client.max_concurrent = 2;
  cfg.wireless_aware_primary = false;  // explicit ordering below
  // Bringing up the second radio on a phone is not instant; start-up is
  // dominated by whichever interface begins the connection.
  cfg.secondary_path_delay = sim::millis(150);

  // Enterprise Wi-Fi: 25 Mbps, 20 ms RTT. 5G SA testbed: 30 Mbps, 10 ms.
  auto wifi = harness::make_path_spec(net::Wireless::kWifi, {},
                                      sim::millis(20));
  wifi.fixed_rate_mbps = 25.0;
  wifi.down_trace.reset();
  auto sa = harness::make_path_spec(net::Wireless::k5gSa, {},
                                    sim::millis(10));
  sa.fixed_rate_mbps = 30.0;
  sa.down_trace.reset();

  if (fiveg_primary) {
    cfg.paths.push_back(std::move(sa));
    cfg.paths.push_back(std::move(wifi));
  } else {
    cfg.paths.push_back(std::move(wifi));
    cfg.paths.push_back(std::move(sa));
  }

  g_exemplar.apply(cfg, "fig7_primary_path");
  harness::Session session(std::move(cfg));
  const auto result = session.run();
  return result.first_frame_seconds.value_or(99.0) * 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Reproduction of paper Fig. 7 (primary path selection)\n");
  g_exemplar = bench::TraceExemplar::parse(argc, argv);
  bench::heading("First-video-frame delivery time (ms)");
  stats::Table table({"First frame size", "WiFi primary", "5G primary"});
  const std::pair<const char*, std::uint64_t> sizes[] = {
      {"128K", 128 * 1024}, {"256K", 256 * 1024}, {"512K", 512 * 1024},
      {"1M", 1024 * 1024},  {"2M", 2 * 1024 * 1024}};
  for (const auto& [label, bytes] : sizes) {
    table.add_row({label, bench::fmt(first_frame_ms(bytes, false), 0),
                   bench::fmt(first_frame_ms(bytes, true), 0)});
  }
  table.print();
  std::printf(
      "\nExpected shape: 5G-SA primary delivers the first frame faster at "
      "every size,\nwith the gap growing as the frame gets larger.\n");
  return 0;
}
