// Congestion-control ablation: Cubic vs BBR vs BBR-without-pacing.
//
// Three arms on identical drawn conditions (same seeds, same traces, same
// burst-loss processes), swept over two network regimes:
//
//   - "ge-lossy": Gilbert-Elliott burst loss on both paths. Loss-based
//     Cubic reads every burst as congestion and halves; rate-based BBR
//     keeps cruising at the measured bottleneck bandwidth, so its goodput
//     should dominate here.
//   - "trace": clean trace-driven capacity (no residual loss). The regime
//     where pacing matters: an unpaced sender dumps each cwnd's worth of
//     packets into the droptail queue at once, a paced one spreads them
//     over the RTT, so the queue high-water mark should drop.
//
// Reports goodput, the QoE pair (first frame, rebuffer), loss, and the
// droptail queue high-water mark across paths.
//
// `--smoke` shrinks the sweep for CI (2 seeds, short video), exercising
// all arms in both regimes end to end.
#include "bench_util.h"
#include "harness/parallel.h"
#include "trace/synthetic.h"

using namespace xlink;

namespace {

struct Arm {
  const char* label;
  quic::CcAlgorithm cc;
  bool pacing;
};

constexpr Arm kArms[] = {
    {"cubic", quic::CcAlgorithm::kCubic, false},
    {"bbr", quic::CcAlgorithm::kBbr, true},
    {"bbr-unpaced", quic::CcAlgorithm::kBbr, false},
};

struct Sweep {
  int seeds = 8;
  sim::Duration video = sim::seconds(12);
  sim::Duration time_limit = sim::seconds(60);
};

harness::SessionConfig base_config(std::uint64_t seed, const Sweep& sweep,
                                   bool ge_loss) {
  harness::SessionConfig cfg;
  cfg.scheme = core::Scheme::kXlink;
  cfg.seed = seed;
  cfg.time_limit = sweep.time_limit;
  cfg.video.duration = sweep.video;
  cfg.video.bitrate_bps = 3'000'000;
  cfg.video.first_frame_bytes = 128 * 1024;
  cfg.client.chunk_bytes = 256 * 1024;
  cfg.client.max_concurrent = 2;
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kWifi,
      trace::campus_walk_wifi(seed * 5 + 1, sim::seconds(40)),
      sim::millis(30)));
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kLte, trace::stable_lte(seed * 5 + 2, sim::seconds(40)),
      sim::millis(90)));
  if (ge_loss) {
    // Bursty residual (non-congestion) loss on both paths: the regime
    // where loss-based CC backs off for no reason and rate-based CC wins.
    net::PathSpec::GeLoss ge;
    ge.p_good_to_bad = 0.006;
    ge.p_bad_to_good = 0.35;
    ge.loss_good = 0.0;
    ge.loss_bad = 0.45;
    for (auto& p : cfg.paths) p.ge_loss = ge;
  }
  return cfg;
}

struct ArmResult {
  stats::Summary first_frame_ms;
  stats::Summary goodput_mbps;  // per session
  double rebuffer = 0, play = 0;
  std::uint64_t payload = 0, retransmitted = 0, lost = 0;
  std::uint64_t peak_queue = 0;  // max droptail depth over paths/sessions
};

ArmResult run_arm(const Arm& arm, const Sweep& sweep, bool ge_loss) {
  const auto results = harness::run_sessions_parallel(
      static_cast<std::size_t>(sweep.seeds), [&](std::size_t i) {
        auto cfg = base_config(i + 1, sweep, ge_loss);
        cfg.options.cc = arm.cc;
        cfg.options.pacing = arm.pacing;
        return cfg;
      });
  ArmResult a;
  for (const auto& r : results) {
    if (r.first_frame_seconds)
      a.first_frame_ms.add(*r.first_frame_seconds * 1000.0);
    if (r.download_seconds > 0.0)
      a.goodput_mbps.add(double(r.stream_payload_bytes) * 8.0 / 1e6 /
                         r.download_seconds);
    a.rebuffer += r.rebuffer_seconds;
    a.play += r.play_seconds;
    a.payload += r.stream_payload_bytes;
    a.retransmitted += r.retransmitted_bytes;
    a.lost += r.packets_lost;
    for (std::uint64_t q : r.path_peak_queue_bytes)
      a.peak_queue = std::max(a.peak_queue, q);
  }
  return a;
}

void run_regime(const char* name, bool ge_loss, const Sweep& sweep) {
  bench::heading(name);
  stats::Table table({"Arm", "goodput p50(Mb/s)", "ff p50(ms)", "rebuf(%)",
                      "lost pkts", "rtx(KB)", "peak queue(KB)"});
  for (const Arm& arm : kArms) {
    const ArmResult a = run_arm(arm, sweep, ge_loss);
    table.add_row(
        {arm.label, bench::fmt(a.goodput_mbps.median(), 2),
         bench::fmt(a.first_frame_ms.median(), 0),
         bench::fmt(a.play > 0 ? a.rebuffer / a.play * 100.0 : 0.0, 2),
         std::to_string(a.lost), bench::fmt(a.retransmitted / 1024.0, 0),
         bench::fmt(a.peak_queue / 1024.0, 1)});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  Sweep sweep;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      sweep.seeds = 2;
      sweep.video = sim::seconds(4);
      sweep.time_limit = sim::seconds(30);
    }
  }
  std::printf("Congestion-control ablation: cubic vs bbr vs bbr-unpaced "
              "(%d seeds)\n", sweep.seeds);

  if (auto exemplar = bench::TraceExemplar::parse(argc, argv);
      exemplar.on()) {
    auto cfg = base_config(1, sweep, /*ge_loss=*/true);
    cfg.options.cc = quic::CcAlgorithm::kBbr;
    cfg.options.pacing = true;  // bbr+pacing emits every new CC event type
    exemplar.apply(cfg, "cc_ablation");
    harness::Session(std::move(cfg)).run();
  }

  run_regime("Gilbert-Elliott burst loss (random loss != congestion)",
             /*ge_loss=*/true, sweep);
  run_regime("Trace-driven capacity, no residual loss (queue discipline)",
             /*ge_loss=*/false, sweep);

  std::printf("\npeak queue = droptail high-water mark across paths; pacing"
              "\nspreads each window over the RTT instead of line-rate"
              " bursts.\n");
  return 0;
}
