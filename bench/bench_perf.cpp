// Perf trajectory tracker: measures the simulator's hot paths and the
// parallel experiment engine, and writes BENCH_perf.json so wall-clock,
// events/sec and sessions/sec can be compared across commits.
//
//  - event_loop_schedule_fire:   schedule 1M events, run them all
//  - event_loop_schedule_cancel: 1M armed-then-disarmed timers (the
//    retransmission-timer pattern; exercises slab + lazy compaction)
//  - session_throughput:         small end-to-end XLINK sessions per second
//  - fig10_threshold_sweep:      the Fig. 10-style population sweep, run
//    serially (jobs=1) and on the parallel engine (jobs=default) — the
//    speedup column is the headline number of the engine
//
// Usage: bench_perf [output.json]   (default: BENCH_perf.json in cwd)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "harness/ab_test.h"
#include "harness/parallel.h"
#include "sim/event_loop.h"
#include "sim/thread_pool.h"
#include "trace/synthetic.h"

using namespace xlink;

namespace {

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct Record {
  std::string name;
  double wall_s = 0.0;
  std::string rate_key;  // e.g. "events_per_sec"; empty = none
  double rate = 0.0;
};

double bench_schedule_fire(std::uint64_t& fired_out) {
  constexpr int kEvents = 1'000'000;
  sim::EventLoop loop;
  std::uint64_t fired = 0;
  const double s = wall_seconds([&] {
    for (int i = 0; i < kEvents; ++i)
      loop.schedule_in(static_cast<sim::Duration>(i % 9973), [&fired] {
        ++fired;
      });
    loop.run();
  });
  fired_out = fired;
  return s;
}

double bench_schedule_cancel() {
  constexpr int kEvents = 1'000'000;
  sim::EventLoop loop;
  return wall_seconds([&] {
    for (int i = 0; i < kEvents; ++i) {
      const sim::EventId id =
          loop.schedule_in(static_cast<sim::Duration>(i % 9973 + 1), [] {});
      loop.cancel(id);
    }
  });
}

harness::SessionConfig small_session_config(std::uint64_t seed) {
  harness::SessionConfig cfg;
  cfg.scheme = core::Scheme::kXlink;
  cfg.video.duration = sim::seconds(3);
  cfg.video.bitrate_bps = 2'000'000;
  cfg.seed = seed;
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kWifi, trace::stable_lte(1, sim::seconds(10)),
      sim::millis(30)));
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kLte, trace::stable_lte(2, sim::seconds(10)),
      sim::millis(80)));
  return cfg;
}

double bench_session_throughput(int sessions) {
  return wall_seconds([&] {
    for (int i = 0; i < sessions; ++i) {
      harness::Session session(small_session_config(3 + i));
      const auto r = session.run();
      (void)r;
    }
  });
}

/// Fig. 10-shaped workload: per threshold setting, a fading-cellular
/// population of sessions. Scaled down from the real bench so the sweep
/// finishes quickly at jobs=1 too.
void fig10_style_sweep(unsigned jobs) {
  constexpr int kSessions = 10;
  harness::PopulationConfig pop;
  pop.p_fading_cellular = 0.8;
  pop.time_limit = sim::seconds(60);
  const struct {
    double tth1_ms, tth2_ms;
  } settings[] = {{400, 900}, {900, 1800}, {1800, 3600}};
  for (const auto& s : settings) {
    core::SchemeOptions opts;
    opts.control.tth1 = static_cast<sim::Duration>(s.tth1_ms * sim::kMillisecond);
    opts.control.tth2 = static_cast<sim::Duration>(s.tth2_ms * sim::kMillisecond);
    const auto results = harness::run_sessions_parallel(
        kSessions,
        [&](std::size_t i) {
          auto cfg = harness::draw_session_conditions(pop, 555000 + i);
          cfg.scheme = core::Scheme::kXlink;
          cfg.options = opts;
          return cfg;
        },
        jobs);
    (void)results;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_perf.json";
  const unsigned jobs = harness::default_jobs();
  std::printf("bench_perf: jobs=%u (XLINK_JOBS overrides), output=%s\n", jobs,
              out_path);

  std::vector<Record> records;

  std::uint64_t fired = 0;
  const double sf = bench_schedule_fire(fired);
  records.push_back({"event_loop_schedule_fire", sf, "events_per_sec",
                     static_cast<double>(fired) / sf});
  std::printf("  event_loop_schedule_fire:   %.3fs  (%.2fM events/s)\n", sf,
              static_cast<double>(fired) / sf / 1e6);

  const double sc = bench_schedule_cancel();
  records.push_back({"event_loop_schedule_cancel", sc, "ops_per_sec",
                     1'000'000.0 / sc});
  std::printf("  event_loop_schedule_cancel: %.3fs  (%.2fM ops/s)\n", sc,
              1'000'000.0 / sc / 1e6);

  constexpr int kThroughputSessions = 24;
  const double st = bench_session_throughput(kThroughputSessions);
  records.push_back({"session_throughput", st, "sessions_per_sec",
                     kThroughputSessions / st});
  std::printf("  session_throughput:         %.3fs  (%.2f sessions/s)\n", st,
              kThroughputSessions / st);

  const double sweep_serial = wall_seconds([] { fig10_style_sweep(1); });
  const double sweep_parallel =
      wall_seconds([jobs] { fig10_style_sweep(jobs); });
  const double speedup = sweep_parallel > 0 ? sweep_serial / sweep_parallel
                                            : 0.0;
  std::printf(
      "  fig10_threshold_sweep:      serial %.3fs, %u-way %.3fs "
      "(speedup %.2fx)\n",
      sweep_serial, jobs, sweep_parallel, speedup);

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::perror("bench_perf: fopen");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_perf\",\n");
  std::fprintf(f, "  \"jobs\": %u,\n", jobs);
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"benches\": [\n");
  for (const auto& r : records) {
    std::fprintf(f, "    {\"name\": \"%s\", \"wall_s\": %.6f", r.name.c_str(),
                 r.wall_s);
    if (!r.rate_key.empty())
      std::fprintf(f, ", \"%s\": %.2f", r.rate_key.c_str(), r.rate);
    std::fprintf(f, "},\n");
  }
  std::fprintf(f,
               "    {\"name\": \"fig10_threshold_sweep\", "
               "\"serial_wall_s\": %.6f, \"parallel_wall_s\": %.6f, "
               "\"jobs\": %u, \"speedup\": %.3f}\n",
               sweep_serial, sweep_parallel, jobs, speedup);
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
