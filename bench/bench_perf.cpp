// Perf trajectory tracker: measures the simulator's hot paths and the
// parallel experiment engine, and writes BENCH_perf.json so wall-clock,
// events/sec and sessions/sec can be compared across commits.
//
//  - event_loop_schedule_fire:   schedule 1M events, run them all
//  - event_loop_schedule_cancel: 1M armed-then-disarmed timers (the
//    retransmission-timer pattern; exercises slab + lazy compaction)
//  - packet_datapath_roundtrip:  seal -> link -> parse/open round trips per
//    second through the pooled zero-allocation datapath, with buffer-pool
//    hit/alloc counters recorded alongside
//  - session_throughput:         small end-to-end XLINK sessions per second
//    (plus the same population with per-session tracing enabled)
//  - telemetry_trace_hook:       cost of one XLINK_TRACE hook in a tight
//    loop — compiled out (loop without the hook, the exact codegen of
//    -DXLINK_TELEMETRY=OFF), compiled in but disabled (null-sink check),
//    and enabled (ring-buffer record)
//  - fig10_threshold_sweep_serial / _parallel: the Fig. 10-style population
//    sweep as two separate records — jobs=1 and jobs=hardware_concurrency —
//    so the parallel record's speedup_vs_serial is meaningful even when the
//    environment pins XLINK_JOBS=1
//  - grid_shard:                 the cross-process grid runner end to end
//    (plan a small grid into a spool, work it, merge) with per-cell wall
//    times — tracks the sharding subsystem's overhead per commit
//  - failover_recovery:          primary-path blackout mid-download; how
//    fast the PTO budget detects the outage and how soon after the window
//    clears the path is resurrected
//  - path_health_guard:          fault-free sessions with the health state
//    machine on vs off — the delta is the hot-path cost of failover
//    bookkeeping and must stay in the noise
//  - invariant_auditor:          the same population with the runtime
//    invariant auditor on vs off — per-tick cost of the cross-layer
//    invariant walk; ~0 with -DXLINK_AUDIT=OFF, <5% when on
//
// Usage: bench_perf [--smoke] [output.json]
//   (default output: BENCH_perf.json in cwd; --smoke cuts iteration counts
//   for CI smoke runs -- same coverage, not comparable numbers)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "fec/framer.h"
#include "harness/ab_test.h"
#include "harness/grids.h"
#include "harness/parallel.h"
#include "harness/shard.h"
#include "net/link.h"
#include "net/packet_buffer.h"
#include "quic/delivery_rate.h"
#include "quic/pacer.h"
#include "quic/packet.h"
#include "sim/event_loop.h"
#include "sim/thread_pool.h"
#include "telemetry/trace_sink.h"
#include "trace/synthetic.h"

using namespace xlink;

namespace {

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct Record {
  std::string name;
  double wall_s = 0.0;
  std::string rate_key;  // e.g. "events_per_sec"; empty = none
  double rate = 0.0;
};

double bench_schedule_fire(int events, std::uint64_t& fired_out) {
  sim::EventLoop loop;
  std::uint64_t fired = 0;
  const double s = wall_seconds([&] {
    for (int i = 0; i < events; ++i)
      loop.schedule_in(static_cast<sim::Duration>(i % 9973), [&fired] {
        ++fired;
      });
    loop.run();
  });
  fired_out = fired;
  return s;
}

double bench_schedule_cancel(int events) {
  sim::EventLoop loop;
  return wall_seconds([&] {
    for (int i = 0; i < events; ++i) {
      const sim::EventId id =
          loop.schedule_in(static_cast<sim::Duration>(i % 9973 + 1), [] {});
      loop.cancel(id);
    }
  });
}

struct DatapathPerf {
  std::uint64_t packets = 0;
  double wall_s = 0.0;
  net::PacketBufferPool::Counters pool;  // delta over the measured loop
};

/// The pooled packet datapath in isolation: seal into a pooled buffer,
/// move through a fixed-rate link, parse/decrypt in place, parse frames
/// into a reused scratch list. After warm-up this loop performs zero heap
/// allocations (tests/test_alloc_guard.cpp proves it); the pool counter
/// delta recorded here keeps the claim visible per commit.
DatapathPerf bench_packet_datapath(std::uint64_t packets) {
  sim::EventLoop loop;
  net::LinkConfig cfg;
  net::FixedRateLink link(loop, 1e9, cfg, sim::Rng(1));

  quic::PacketProtection aead(0x5eed);
  std::vector<std::uint8_t> payload_src(1200, 0xab);
  std::vector<quic::Frame> send_frames;
  std::vector<quic::Frame> recv_frames;
  std::uint64_t delivered = 0;

  link.set_receiver([&](net::Datagram d) {
    const auto pkt = quic::parse_packet_view(d.span());
    if (!pkt) return;
    const auto payload = quic::open_packet_in_place(aead, *pkt);
    if (!payload) return;
    recv_frames.clear();
    if (quic::parse_frames_into(*payload, recv_frames)) ++delivered;
  });

  quic::PacketNumber pn = 0;
  const auto send_one = [&] {
    quic::StreamFrame f;
    f.stream_id = 4;
    f.offset = pn * payload_src.size();
    f.data = quic::FrameData::borrowed(payload_src);
    send_frames.clear();
    send_frames.emplace_back(std::move(f));
    quic::PacketHeader h;
    h.cid_sequence = 0;
    h.packet_number = pn++;
    link.send(quic::seal_packet_buffer(aead, h, send_frames));
  };

  for (int i = 0; i < 256; ++i) {  // warm the pool, queues and scratch
    send_one();
    loop.run();
  }

  auto& pool = net::PacketBufferPool::local();
  pool.reset_counters();
  DatapathPerf r;
  r.packets = packets;
  r.wall_s = wall_seconds([&] {
    for (std::uint64_t i = 0; i < packets; ++i) {
      send_one();
      loop.run();
    }
  });
  r.pool = pool.counters();
  if (delivered != 256 + packets)
    std::fprintf(stderr, "bench_packet_datapath: delivered %llu != %llu\n",
                 static_cast<unsigned long long>(delivered),
                 static_cast<unsigned long long>(256 + packets));
  return r;
}

struct FecPerf {
  std::uint64_t windows = 0;
  std::uint64_t packets = 0;    // source packets fed through the framer
  std::uint64_t recovered = 0;  // erasures rebuilt (1 per window here)
  double wall_s = 0.0;
  net::PacketBufferPool::Counters pool;  // delta over the measured loop
};

/// The FEC warm path in isolation: feed k sealed-size packets per window
/// through the framer (encode), drop one source at the receiver, and let
/// the RecoveryBuffer decode it back from the repair symbols. After pool
/// warm-up this loop performs zero heap allocations
/// (tests/test_alloc_guard.cpp proves it); the pool counter delta recorded
/// here keeps the claim visible per commit.
FecPerf bench_fec_encode_decode(std::uint64_t windows) {
  fec::FecConfig cfg;
  cfg.enabled = true;
  cfg.window = 8;
  cfg.min_repairs = 2;
  cfg.max_repairs = 2;
  fec::FecFramer framer(cfg);
  fec::RecoveryBuffer recovery(cfg);

  std::vector<quic::Frame> frames;
  std::vector<fec::RecoveryBuffer::Recovered> out;
  std::vector<std::uint8_t> wire(1200);
  quic::PacketNumber pn = 0;
  std::uint64_t recovered = 0;

  const auto run_window = [&](sim::Time now) {
    const quic::PacketNumber base = pn;
    for (std::size_t i = 0; i < cfg.window; ++i) {
      for (std::size_t b = 0; b < wire.size(); ++b)
        wire[b] = static_cast<std::uint8_t>(pn * 31 + b);
      frames.clear();
      framer.on_packet_sent(0, pn, wire, now, 0.05, frames);
      if (pn != base + 3) recovery.on_source(0, pn, wire, now);  // erase #3
      ++pn;
      for (auto& fr : frames) {
        const auto& rf = std::get<quic::RepairFrame>(fr);
        out.clear();
        recovery.on_repair(0, rf, now, out);
        recovered += out.size();
      }
    }
  };

  for (int i = 0; i < 64; ++i) run_window(i);  // warm pool and stash

  auto& pool = net::PacketBufferPool::local();
  pool.reset_counters();
  const std::uint64_t warm_recovered = recovered;
  FecPerf r;
  r.windows = windows;
  r.packets = windows * cfg.window;
  r.wall_s = wall_seconds([&] {
    for (std::uint64_t i = 0; i < windows; ++i) run_window(64 + i);
  });
  out.clear();  // return the last recovered buffers before reading counters
  r.pool = pool.counters();
  r.recovered = recovered - warm_recovered;
  if (r.recovered != windows)
    std::fprintf(stderr, "bench_fec_encode_decode: recovered %llu != %llu\n",
                 static_cast<unsigned long long>(r.recovered),
                 static_cast<unsigned long long>(windows));
  return r;
}

harness::SessionConfig small_session_config(std::uint64_t seed) {
  harness::SessionConfig cfg;
  cfg.scheme = core::Scheme::kXlink;
  cfg.video.duration = sim::seconds(3);
  cfg.video.bitrate_bps = 2'000'000;
  cfg.seed = seed;
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kWifi, trace::stable_lte(1, sim::seconds(10)),
      sim::millis(30)));
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kLte, trace::stable_lte(2, sim::seconds(10)),
      sim::millis(80)));
  return cfg;
}

double bench_session_throughput(int sessions, bool traced,
                                bool path_health = true, bool audit = true) {
  return wall_seconds([&] {
    for (int i = 0; i < sessions; ++i) {
      auto cfg = small_session_config(3 + i);
      cfg.trace.enabled = traced;
      cfg.path_health = path_health;
      cfg.audit = audit;
      harness::Session session(std::move(cfg));
      const auto r = session.run();
      (void)r;
    }
  });
}

struct FailoverRecovery {
  double detect_s = 0.0;    // blackout start -> server declares failover
  double resume_s = 0.0;    // blackout end -> path resurrected
  double download_s = 0.0;  // whole transfer, for context
};

/// Mid-download blackout on the primary path: the latency numbers the
/// failover machinery exists to minimise.
FailoverRecovery bench_failover_recovery() {
  const sim::Time blackout_start = sim::seconds(2);
  const sim::Duration blackout_len = sim::seconds(3);

  harness::SessionConfig cfg;
  cfg.scheme = core::Scheme::kXlink;
  cfg.seed = 77;
  cfg.video.duration = sim::seconds(16);
  cfg.video.bitrate_bps = 8'000'000;
  cfg.client.chunk_bytes = 192 * 1024;
  cfg.time_limit = sim::seconds(90);
  cfg.wireless_aware_primary = false;
  cfg.trace.enabled = true;
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kWifi, trace::stable_lte(77, sim::seconds(40)),
      sim::millis(20)));
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kLte, trace::stable_lte(78, sim::seconds(40)),
      sim::millis(60)));
  for (auto& p : cfg.paths) p.queue_capacity_bytes = 256 * 1024;
  cfg.paths[0].fault_plan.blackout(blackout_start, blackout_len);

  harness::Session session(std::move(cfg));
  const auto result = session.run();

  FailoverRecovery r;
  r.download_s = result.download_seconds;
  std::optional<sim::Time> failover_at;
  std::optional<sim::Time> resurrect_at;
  for (const auto& e : session.trace_sink()->snapshot()) {
    if (e.type != telemetry::EventType::kPathHealth || e.path != 0 ||
        e.origin != telemetry::Origin::kServer)
      continue;
    if (e.a == 2 && !failover_at) failover_at = e.t;
    if (e.a == 0 && failover_at && !resurrect_at) resurrect_at = e.t;
  }
  if (failover_at) r.detect_s = sim::to_seconds(*failover_at - blackout_start);
  if (resurrect_at)
    r.resume_s =
        sim::to_seconds(*resurrect_at - (blackout_start + blackout_len));
  return r;
}

/// One XLINK_TRACE hook per iteration. With kHook=false the body is the
/// exact codegen of a -DXLINK_TELEMETRY=OFF build (macro expands to
/// nothing); the inline asm pins the sink pointer so the compiler cannot
/// hoist the null/enabled check or delete the loop.
template <bool kHook>
double trace_hook_loop(telemetry::TraceSink* sink, std::uint64_t iters) {
  return wall_seconds([&] {
    for (std::uint64_t i = 0; i < iters; ++i) {
      asm volatile("" : "+r"(sink));
      if constexpr (kHook) {
        XLINK_TRACE(sink, telemetry::Event::packet_sent(
                              i, telemetry::Origin::kServer, 0, i, 1200,
                              true, false));
      }
    }
  });
}

struct TraceHookRates {
  std::uint64_t iters = 0;
  double compiled_out = 0.0;  // ops/sec, loop without the hook
  double disabled = 0.0;      // ops/sec, hook present, sink == nullptr
  double enabled = 0.0;       // ops/sec, recording into the ring
};

TraceHookRates bench_trace_hook(std::uint64_t iters) {
  TraceHookRates r;
  r.iters = iters;
  r.compiled_out = double(r.iters) / trace_hook_loop<false>(nullptr, r.iters);
  r.disabled = double(r.iters) / trace_hook_loop<true>(nullptr, r.iters);
  telemetry::TraceSink sink(1 << 16);
  sink.set_enabled(true);
  r.enabled = double(r.iters) / trace_hook_loop<true>(&sink, r.iters);
  return r;
}

/// The delivery-rate sampler's per-packet cost: stamp at send, produce a
/// rate sample at ack, fold into the btlbw/min-RTT filters. This runs once
/// per ack-eliciting packet on every path, so it must stay in the tens of
/// nanoseconds.
double bench_rate_sampler(std::uint64_t ops) {
  quic::DeliveryRateSampler sampler;
  quic::RateStamp stamp;
  sim::Time now = 0;
  const std::size_t kBytes = quic::kDefaultMss;
  double sink = 0.0;
  const double s = wall_seconds([&] {
    for (std::uint64_t i = 0; i < ops; ++i) {
      const sim::Time sent = now;
      sampler.on_packet_sent(stamp, sent, kBytes * (i % 16));
      now += 500;  // 0.5 ms between departures
      const auto rs =
          sampler.on_ack(stamp, kBytes, sent, now + sim::millis(20),
                         sim::millis(20), kBytes * (i % 16));
      sink += rs.delivery_rate;
    }
  });
  if (sink < 0.0) std::fprintf(stderr, "bench_rate_sampler: negative rate\n");
  return s;
}

/// The pacer's per-packet warm path: one can_send gate, one on_sent debit,
/// one next_release_time projection -- the exact calls the connection's
/// send pump and timer wheel make per departure.
double bench_pacer(std::uint64_t ops, std::uint64_t& sent_out) {
  quic::PacerConfig cfg;
  cfg.enabled = true;
  quic::Pacer pacer(cfg);
  pacer.set_rate(125'000'000);  // 1 Gb/s: ~11 us per MSS
  sim::Time now = 0;
  std::uint64_t sent = 0;
  const double s = wall_seconds([&] {
    for (std::uint64_t i = 0; i < ops; ++i) {
      now += 12;
      if (pacer.can_send(now)) {
        pacer.on_sent(now, quic::kDefaultMss);
        ++sent;
      }
      sim::Time t = pacer.next_release_time(now);
      asm volatile("" : "+r"(t));
    }
  });
  sent_out = sent;
  return s;
}

/// Fig. 10-shaped workload: per threshold setting, a fading-cellular
/// population of sessions. Scaled down from the real bench so the sweep
/// finishes quickly at jobs=1 too.
void fig10_style_sweep(unsigned jobs, int sessions) {
  const int kSessions = sessions;
  harness::PopulationConfig pop;
  pop.p_fading_cellular = 0.8;
  pop.time_limit = sim::seconds(60);
  const struct {
    double tth1_ms, tth2_ms;
  } settings[] = {{400, 900}, {900, 1800}, {1800, 3600}};
  for (const auto& s : settings) {
    core::SchemeOptions opts;
    opts.control.tth1 = static_cast<sim::Duration>(s.tth1_ms * sim::kMillisecond);
    opts.control.tth2 = static_cast<sim::Duration>(s.tth2_ms * sim::kMillisecond);
    const auto results = harness::run_sessions_parallel(
        kSessions,
        [&](std::size_t i) {
          auto cfg = harness::draw_session_conditions(pop, 555000 + i);
          cfg.scheme = core::Scheme::kXlink;
          cfg.options = opts;
          return cfg;
        },
        jobs);
    (void)results;
  }
}

struct GridShardPerf {
  std::string grid;
  std::vector<std::pair<std::string, double>> cells;  // label -> wall_s
  double plan_s = 0.0;   // grid enumeration (incl. calibration cells)
  double work_s = 0.0;   // one worker draining the spool
  double merge_s = 0.0;  // shard parse + canonical output
};

/// The sharded grid runner end to end in one process: spool plan, worker
/// drain, merge. Per-cell wall times come from the worker's report (the
/// same numbers each shard file records).
GridShardPerf bench_grid_shard() {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "xlink_bench_grid_spool";
  fs::remove_all(dir);

  GridShardPerf r;
  r.grid = "fig11-smoke";
  std::optional<harness::shard::Spool> spool;
  r.plan_s = wall_seconds([&] {
    const auto planned = harness::grids::build_grid(r.grid);
    spool = harness::shard::Spool::plan(planned.spec, dir.string(),
                                        planned.precomputed);
  });
  harness::shard::WorkerReport report;
  r.work_s = wall_seconds([&] { report = harness::shard::run_worker(*spool); });
  for (const auto& [index, seconds] : report.cell_wall_seconds)
    r.cells.emplace_back(spool->spec().cells[index].label, seconds);
  r.merge_s = wall_seconds([&] {
    auto results = spool->collect(nullptr);
    std::ostringstream os;
    harness::shard::write_grid_results(spool->spec(), results, os);
  });
  fs::remove_all(dir);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* out_path = "BENCH_perf.json";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke")
      smoke = true;
    else
      out_path = argv[i];
  }
  const unsigned jobs = harness::default_jobs();
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("bench_perf: jobs=%u (XLINK_JOBS overrides), output=%s%s\n",
              jobs, out_path, smoke ? " [smoke]" : "");

  // Smoke mode (CI): same code paths, ~10-20x fewer iterations. The JSON it
  // writes is for plumbing checks, not cross-commit comparison.
  const int loop_events = smoke ? 100'000 : 1'000'000;
  const std::uint64_t datapath_packets = smoke ? 20'000 : 200'000;
  const int throughput_sessions = smoke ? 4 : 24;
  const std::uint64_t hook_iters = smoke ? 2'000'000 : 50'000'000;
  const int sweep_sessions = smoke ? 3 : 10;

  std::vector<Record> records;

  std::uint64_t fired = 0;
  const double sf = bench_schedule_fire(loop_events, fired);
  records.push_back({"event_loop_schedule_fire", sf, "events_per_sec",
                     static_cast<double>(fired) / sf});
  std::printf("  event_loop_schedule_fire:   %.3fs  (%.2fM events/s)\n", sf,
              static_cast<double>(fired) / sf / 1e6);

  const double sc = bench_schedule_cancel(loop_events);
  records.push_back({"event_loop_schedule_cancel", sc, "ops_per_sec",
                     loop_events / sc});
  std::printf("  event_loop_schedule_cancel: %.3fs  (%.2fM ops/s)\n", sc,
              loop_events / sc / 1e6);

  const DatapathPerf dp = bench_packet_datapath(datapath_packets);
  std::printf(
      "  packet_datapath_roundtrip:  %.3fs  (%.2fk pkts/s; pool hits %llu, "
      "slab allocs %llu, oversize %llu)\n",
      dp.wall_s, static_cast<double>(dp.packets) / dp.wall_s / 1e3,
      static_cast<unsigned long long>(dp.pool.pool_hits),
      static_cast<unsigned long long>(dp.pool.slab_allocs),
      static_cast<unsigned long long>(dp.pool.oversize_allocs));

  const std::uint64_t fec_windows = smoke ? 2'000 : 20'000;
  const FecPerf fp = bench_fec_encode_decode(fec_windows);
  std::printf(
      "  fec_encode_decode:          %.3fs  (%.2fk pkts/s, %llu windows, "
      "%llu recovered; pool hits %llu, slab allocs %llu, oversize %llu)\n",
      fp.wall_s, static_cast<double>(fp.packets) / fp.wall_s / 1e3,
      static_cast<unsigned long long>(fp.windows),
      static_cast<unsigned long long>(fp.recovered),
      static_cast<unsigned long long>(fp.pool.pool_hits),
      static_cast<unsigned long long>(fp.pool.slab_allocs),
      static_cast<unsigned long long>(fp.pool.oversize_allocs));

  const int kThroughputSessions = throughput_sessions;
  const double st = bench_session_throughput(kThroughputSessions, false);
  records.push_back({"session_throughput", st, "sessions_per_sec",
                     kThroughputSessions / st});
  std::printf("  session_throughput:         %.3fs  (%.2f sessions/s)\n", st,
              kThroughputSessions / st);

  const double stt = bench_session_throughput(kThroughputSessions, true);
  records.push_back({"session_throughput_traced", stt, "sessions_per_sec",
                     kThroughputSessions / stt});
  std::printf("  session_throughput_traced:  %.3fs  (%.2f sessions/s)\n", stt,
              kThroughputSessions / stt);

  // Fault-free guard: the same population with the path-health machinery
  // switched off. Both runs are fault-free, so any gap is pure hot-path
  // overhead from health bookkeeping (PTO budget checks, probe timers).
  const double sth = bench_session_throughput(kThroughputSessions, false,
                                              /*path_health=*/false);
  const double health_overhead_pct = sth > 0 ? (st - sth) / sth * 100.0 : 0.0;
  std::printf(
      "  path_health_guard:          on %.3fs, off %.3fs (overhead %+.1f%%)\n",
      st, sth, health_overhead_pct);

  // Invariant auditor: the same fault-free population with the runtime
  // auditor switched off. The default `st` run above audits every pump, so
  // the delta is the per-tick cost of the cross-layer invariant walk. With
  // -DXLINK_AUDIT=OFF both legs compile to the same code and the overhead
  // collapses to noise (the ((void)0) claim, kept visible per commit).
  const double sta = bench_session_throughput(kThroughputSessions, false,
                                              /*path_health=*/true,
                                              /*audit=*/false);
  const double audit_overhead_pct = sta > 0 ? (st - sta) / sta * 100.0 : 0.0;
  std::printf(
      "  invariant_auditor:          on %.3fs, off %.3fs (overhead %+.1f%%)\n",
      st, sta, audit_overhead_pct);

  const FailoverRecovery fr = bench_failover_recovery();
  std::printf(
      "  failover_recovery:          detect %.3fs, resume %.3fs after window "
      "(download %.2fs)\n",
      fr.detect_s, fr.resume_s, fr.download_s);

  const TraceHookRates hook = bench_trace_hook(hook_iters);
  std::printf(
      "  telemetry_trace_hook:       compiled-out %.2fns, disabled %.2fns, "
      "enabled %.2fns per hook\n",
      1e9 / hook.compiled_out, 1e9 / hook.disabled, 1e9 / hook.enabled);

  const std::uint64_t cc_ops = smoke ? 500'000 : 10'000'000;
  const double rs_s = bench_rate_sampler(cc_ops);
  records.push_back(
      {"rate_sampler", rs_s, "ops_per_sec", static_cast<double>(cc_ops) / rs_s});
  std::printf("  rate_sampler:               %.3fs  (%.1fns per stamp+ack)\n",
              rs_s, rs_s / static_cast<double>(cc_ops) * 1e9);

  std::uint64_t pacer_sent = 0;
  const double pc_s = bench_pacer(cc_ops, pacer_sent);
  records.push_back({"pacer_overhead", pc_s, "ops_per_sec",
                     static_cast<double>(cc_ops) / pc_s});
  std::printf(
      "  pacer_overhead:             %.3fs  (%.1fns per gate+debit, "
      "%llu/%llu sends admitted)\n",
      pc_s, pc_s / static_cast<double>(cc_ops) * 1e9,
      static_cast<unsigned long long>(pacer_sent),
      static_cast<unsigned long long>(cc_ops));

  // Serial and parallel sweeps are separate records: the parallel leg runs
  // at hardware_concurrency explicitly, so speedup_vs_serial measures the
  // engine even when XLINK_JOBS pins the default to 1.
  const double sweep_serial =
      wall_seconds([&] { fig10_style_sweep(1, sweep_sessions); });
  const double sweep_parallel =
      wall_seconds([&] { fig10_style_sweep(hw, sweep_sessions); });
  const double speedup = sweep_parallel > 0 ? sweep_serial / sweep_parallel
                                            : 0.0;
  std::printf(
      "  fig10_threshold_sweep:      serial %.3fs, %u-way %.3fs "
      "(speedup %.2fx)\n",
      sweep_serial, hw, sweep_parallel, speedup);

  const GridShardPerf gs = bench_grid_shard();
  std::printf(
      "  grid_shard (%s):   plan %.3fs, work %.3fs (%zu cells), "
      "merge %.3fs\n",
      gs.grid.c_str(), gs.plan_s, gs.work_s, gs.cells.size(), gs.merge_s);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "bench_perf: cannot open %s\n", out_path);
    return 1;
  }
  bench::JsonWriter w(out);
  w.begin_object();
  w.kv("bench", "bench_perf");
  w.kv("jobs", jobs);
  w.kv("hardware_concurrency", std::thread::hardware_concurrency());
  w.kv("smoke", smoke);
  w.key("benches");
  w.begin_array();
  for (const auto& r : records) {
    w.begin_object();
    w.kv("name", r.name);
    w.kv("wall_s", r.wall_s);
    if (!r.rate_key.empty()) w.kv(r.rate_key, r.rate);
    w.end_object();
  }
  w.begin_object();
  w.kv("name", "packet_datapath_roundtrip");
  w.kv("wall_s", dp.wall_s);
  w.kv("packets", dp.packets);
  w.kv("packets_per_sec", static_cast<double>(dp.packets) / dp.wall_s);
  w.kv("pool_acquires", dp.pool.acquires);
  w.kv("pool_hits", dp.pool.pool_hits);
  w.kv("pool_slab_allocs", dp.pool.slab_allocs);
  w.kv("pool_oversize_allocs", dp.pool.oversize_allocs);
  w.end_object();
  w.begin_object();
  w.kv("name", "fec_encode_decode");
  w.kv("wall_s", fp.wall_s);
  w.kv("windows", fp.windows);
  w.kv("packets", fp.packets);
  w.kv("recovered", fp.recovered);
  w.kv("packets_per_sec", static_cast<double>(fp.packets) / fp.wall_s);
  w.kv("pool_acquires", fp.pool.acquires);
  w.kv("pool_hits", fp.pool.pool_hits);
  w.kv("pool_slab_allocs", fp.pool.slab_allocs);
  w.kv("pool_oversize_allocs", fp.pool.oversize_allocs);
  w.end_object();
  w.begin_object();
  w.kv("name", "telemetry_trace_hook");
  w.kv("iters", hook.iters);
  w.kv("compiled_out_ops_per_sec", hook.compiled_out);
  w.kv("disabled_ops_per_sec", hook.disabled);
  w.kv("enabled_ops_per_sec", hook.enabled);
  w.kv("disabled_ns_per_hook", 1e9 / hook.disabled);
  w.kv("enabled_ns_per_hook", 1e9 / hook.enabled);
  w.end_object();
  w.begin_object();
  w.kv("name", "fig10_threshold_sweep_serial");
  w.kv("wall_s", sweep_serial);
  w.kv("jobs", 1);
  w.end_object();
  w.begin_object();
  w.kv("name", "fig10_threshold_sweep_parallel");
  w.kv("wall_s", sweep_parallel);
  w.kv("jobs", hw);
  w.kv("speedup_vs_serial", speedup);
  w.end_object();
  w.begin_object();
  w.kv("name", "grid_shard");
  w.kv("grid", gs.grid);
  w.kv("plan_wall_s", gs.plan_s);
  w.kv("work_wall_s", gs.work_s);
  w.kv("merge_wall_s", gs.merge_s);
  w.key("cells");
  w.begin_array();
  for (const auto& [label, seconds] : gs.cells) {
    w.begin_object();
    w.kv("label", label);
    w.kv("wall_s", seconds);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.begin_object();
  w.kv("name", "path_health_guard");
  w.kv("health_on_wall_s", st);
  w.kv("health_off_wall_s", sth);
  w.kv("overhead_pct", health_overhead_pct);
  w.end_object();
  w.begin_object();
  w.kv("name", "invariant_auditor");
  w.kv("audit_on_wall_s", st);
  w.kv("audit_off_wall_s", sta);
  w.kv("overhead_pct", audit_overhead_pct);
  w.end_object();
  w.begin_object();
  w.kv("name", "failover_recovery");
  w.kv("detect_s", fr.detect_s);
  w.kv("resume_after_window_s", fr.resume_s);
  w.kv("download_s", fr.download_s);
  w.end_object();
  w.end_array();
  w.end_object();
  out << "\n";
  std::printf("wrote %s\n", out_path);
  return 0;
}
