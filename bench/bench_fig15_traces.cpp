// Fig. 15 / Appx. B: the trace corpus -- examples of the synthetic
// high-speed-rail cellular and onboard Wi-Fi traces used by the mobility
// evaluation, printed as 5-second capacity windows plus outage statistics.
#include "bench_util.h"
#include "trace/synthetic.h"

using namespace xlink;

namespace {

void describe(const char* label, const trace::LinkTrace& t) {
  bench::heading(label);
  stats::Table table({"window", "Mbps"});
  const sim::Duration window = sim::seconds(5);
  const auto windows =
      static_cast<std::uint64_t>(t.period() / window);
  double outage_windows = 0;
  stats::Summary rates;
  for (std::uint64_t i = 0; i < windows; ++i) {
    const double mbps = t.window_bps(i * window, window) / 1e6;
    rates.add(mbps);
    if (mbps < 0.5) ++outage_windows;
    table.add_row({std::to_string(i * 5) + "-" + std::to_string(i * 5 + 5) +
                       "s",
                   bench::fmt(mbps, 2)});
  }
  table.print();
  std::printf(
      "avg=%.2f Mbps  min=%.2f  max=%.2f  near-outage windows=%.0f%%\n",
      t.average_bps() / 1e6, rates.min(), rates.max(),
      windows ? 100.0 * outage_windows / static_cast<double>(windows) : 0.0);
}

}  // namespace

int main() {
  std::printf("Reproduction of paper Fig. 15 (trace examples)\n");
  const auto cellular = trace::hsr_cellular(9011, sim::seconds(60));
  const auto wifi = trace::onboard_wifi(9012, sim::seconds(60));
  describe("(a) cellular trace, high-speed rail", cellular);
  describe("(b) onboard Wi-Fi trace, high-speed rail", wifi);
  std::printf(
      "\n(c) is the pair replayed together on two paths -- exactly what "
      "bench_fig13_mobility does.\n");
  return 0;
}
