// Ablation bench: the design choices DESIGN.md calls out, each toggled on
// the same stressed scenario (fast-varying primary + steady secondary).
//
//  - re-injection insertion mode: priority (Fig. 4b/c) vs append (Fig. 4a)
//  - first-video-frame acceleration on/off
//  - ACK_MP path policy: fastest vs original
//  - wireless-aware primary path selection on/off
#include "bench_util.h"
#include "harness/parallel.h"
#include "trace/synthetic.h"

using namespace xlink;

namespace {

struct Variant {
  const char* label;
  quic::InsertMode insert = quic::InsertMode::kPriority;
  bool acceleration = true;
  quic::AckPathPolicy ack = quic::AckPathPolicy::kFastestPath;
  bool wireless_aware = true;
};

harness::SessionConfig base_config(std::uint64_t seed) {
  harness::SessionConfig cfg;
  cfg.scheme = core::Scheme::kXlink;
  cfg.seed = seed;
  cfg.time_limit = sim::seconds(60);
  cfg.video.duration = sim::seconds(12);
  cfg.video.bitrate_bps = 3'500'000;
  cfg.video.first_frame_bytes = 192 * 1024;
  cfg.client.chunk_bytes = 384 * 1024;
  cfg.client.max_concurrent = 2;
  // LTE listed first: wireless-aware selection should flip to Wi-Fi.
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kLte, trace::hsr_cellular(seed * 3 + 1, sim::seconds(40)),
      sim::millis(140)));
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kWifi,
      trace::campus_walk_wifi(seed * 3 + 2, sim::seconds(40)),
      sim::millis(36)));
  return cfg;
}

void run_variant(stats::Table& table, const Variant& v) {
  // All 8 seeds of a variant run concurrently on the parallel engine;
  // folding by seed index keeps the numbers identical to the serial loop.
  const auto results = harness::run_sessions_parallel(8, [&v](std::size_t i) {
    auto cfg = base_config(i + 1);
    cfg.wireless_aware_primary = v.wireless_aware;
    cfg.server.first_frame_acceleration = v.acceleration;
    cfg.options.xlink_ack_policy = v.ack;
    cfg.options.xlink_insert_mode = v.insert;
    return cfg;
  });
  stats::Summary first_frame, rct;
  double rebuffer = 0, play = 0, cost = 0;
  int n = 0;
  for (const auto& result : results) {
    if (result.first_frame_seconds)
      first_frame.add(*result.first_frame_seconds * 1000.0);
    rct.add_all(result.chunk_rct_seconds);
    rebuffer += result.rebuffer_seconds;
    play += result.play_seconds;
    cost += result.redundancy_ratio * 100.0;
    ++n;
  }
  table.add_row({v.label, bench::fmt(first_frame.median(), 0),
                 bench::fmt(rct.percentile(99), 2),
                 bench::fmt(play > 0 ? rebuffer / play * 100.0 : 0.0, 2),
                 bench::fmt(cost / n, 1)});
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Ablation: XLINK design choices on a stressed scenario\n");

  // --trace-exemplar: record one full-XLINK session of the stressed
  // scenario for the xlink_qlog analyzer.
  if (auto exemplar = bench::TraceExemplar::parse(argc, argv);
      exemplar.on()) {
    auto cfg = base_config(1);
    exemplar.apply(cfg, "ablation_reinjection");
    harness::Session(std::move(cfg)).run();
  }
  bench::heading(
      "median first-frame (ms) | p99 RCT (s) | rebuffer rate (%) | cost (%)");
  stats::Table table({"Variant", "ff p50(ms)", "RCT p99(s)", "rebuf(%)",
                      "cost(%)"});
  run_variant(table, {"full XLINK"});
  run_variant(table, {"append-mode re-injection", quic::InsertMode::kAppend});
  run_variant(table,
              {"no first-frame acceleration", quic::InsertMode::kPriority,
               false});
  run_variant(table,
              {"original-path ACK", quic::InsertMode::kPriority, true,
               quic::AckPathPolicy::kOriginalPath});
  run_variant(table, {"no wireless-aware primary", quic::InsertMode::kPriority,
                      true, quic::AckPathPolicy::kFastestPath, false});
  table.print();
  return 0;
}
