// Fig. 13: extreme mobility -- request download time under subway and
// high-speed-rail traces for SP, vanilla-MP, MPTCP, CM, and XLINK.
//
// Ten trace pairs (cellular + onboard Wi-Fi collected in the same
// environment, per Appx. B), each replayed under all five schemes. The
// paper's shape: SP poor, CM helps sometimes but can be worse (cwnd reset,
// slow probing), MPTCP/vanilla suffer HoL under fast variation, XLINK has
// the smallest median and max everywhere.
#include "bench_util.h"
#include "trace/synthetic.h"

using namespace xlink;

namespace {

struct TracePair {
  trace::LinkTrace cellular;
  trace::LinkTrace wifi;
};

TracePair mobility_traces(int id) {
  const auto seed = static_cast<std::uint64_t>(9000 + id * 17);
  if (id % 2 == 0) {
    return {trace::hsr_cellular(seed, sim::seconds(60)),
            trace::onboard_wifi(seed + 1, sim::seconds(60))};
  }
  return {trace::subway_cellular(seed, sim::seconds(60)),
          trace::onboard_wifi(seed + 1, sim::seconds(60))};
}

std::pair<double, double> run_scheme(core::Scheme scheme, int trace_id,
                                     bench::TraceExemplar* exemplar,
                                     bool handover = false) {
  TracePair traces = mobility_traces(trace_id);
  harness::SessionConfig cfg;
  cfg.scheme = scheme;
  cfg.seed = 4000 + trace_id;
  cfg.time_limit = sim::seconds(60);
  cfg.video.duration = sim::seconds(12);
  cfg.video.bitrate_bps = 2'500'000;
  cfg.client.chunk_bytes = 512 * 1024;
  cfg.client.max_concurrent = 2;
  cfg.wireless_aware_primary = true;
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kWifi, std::move(traces.wifi), sim::millis(60)));
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kLte, std::move(traces.cellular), sim::millis(110)));
  if (handover) {
    // Scripted Wi-Fi handover on top of the trace: the AP disappears for
    // 4 s mid-download and the client reattaches behind a new NAT binding,
    // forcing PATH_CHALLENGE re-validation when the radio returns.
    cfg.paths[0].fault_plan.blackout(sim::seconds(4), sim::seconds(4));
    cfg.paths[0].fault_plan.nat_rebind(sim::seconds(8));
  }

  if (exemplar) exemplar->apply(cfg, "fig13_mobility");
  harness::Session session(std::move(cfg));
  const auto result = session.run();
  stats::Summary rct;
  rct.add_all(result.chunk_rct_seconds);
  return {rct.median(), rct.max()};
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Reproduction of paper Fig. 13 (extreme mobility)\n");
  auto exemplar = bench::TraceExemplar::parse(argc, argv);
  const core::Scheme schemes[] = {
      core::Scheme::kSinglePath, core::Scheme::kVanillaMp,
      core::Scheme::kMptcpLike, core::Scheme::kConnMigration,
      core::Scheme::kXlink};

  bench::heading("Request download time (s): median / max per trace");
  std::vector<std::string> headers{"Trace"};
  for (auto s : schemes) headers.push_back(core::to_string(s));
  stats::Table table(headers);
  std::map<core::Scheme, stats::Summary> maxes;
  for (int trace_id = 1; trace_id <= 10; ++trace_id) {
    std::vector<std::string> row{std::to_string(trace_id)};
    for (auto s : schemes) {
      // Trace the XLINK run on the first trace pair when asked.
      const auto [median, max] = run_scheme(
          s, trace_id,
          s == core::Scheme::kXlink && trace_id == 1 ? &exemplar : nullptr);
      maxes[s].add(max);
      row.push_back(bench::fmt(median, 1) + "/" + bench::fmt(max, 1));
    }
    table.add_row(row);
  }
  table.print();
  std::printf("\nWorst-case (max RCT) averaged over traces:\n");
  for (auto s : schemes)
    std::printf("  %-11s %.2fs\n", core::to_string(s).c_str(),
                maxes[s].mean());
  std::printf(
      "\nExpected shape: XLINK smallest median and max; SP worst; CM in "
      "between.\n");

  // Scripted handover on top of the mobility traces: Wi-Fi blacks out for
  // 4 s and comes back behind a new NAT binding. Multipath schemes with
  // failover ride it out on cellular; single path takes the full stall.
  bench::heading(
      "Wi-Fi handover (4s blackout + NAT rebind): median / max RCT");
  stats::Table htable(headers);
  std::map<core::Scheme, stats::Summary> hmaxes;
  for (int trace_id = 1; trace_id <= 5; ++trace_id) {
    std::vector<std::string> row{std::to_string(trace_id)};
    for (auto s : schemes) {
      const auto [median, max] =
          run_scheme(s, trace_id, nullptr, /*handover=*/true);
      hmaxes[s].add(max);
      row.push_back(bench::fmt(median, 1) + "/" + bench::fmt(max, 1));
    }
    htable.add_row(row);
  }
  htable.print();
  std::printf("\nWorst-case (max RCT) under handover, averaged:\n");
  for (auto s : schemes)
    std::printf("  %-11s %.2fs\n", core::to_string(s).c_str(),
                hmaxes[s].mean());
  std::printf(
      "\nExpected shape: failover-capable schemes keep the handover cost "
      "near one PTO budget; SP pays the whole outage.\n");
  return 0;
}
