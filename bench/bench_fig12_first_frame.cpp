// Fig. 12: first-video-frame latency improvement over SP, with and without
// first-video-frame acceleration.
//
// The mechanism the paper isolates: at start-up the primary path's small
// initial window fills instantly, so early first-frame packets spill onto
// the (much slower, possibly cross-ISP) secondary path. Without
// video-frame priority, their re-injected copies queue behind the rest of
// the first chunk, so multipath start-up is WORSE than single path at the
// tail; with frame priority the duplicates jump the queue and ride the
// fast path. We run a controlled population with large delay ratios and
// first frames of 128 KB - 1 MB inside a 2 MB first chunk.
#include "bench_util.h"
#include "trace/synthetic.h"

using namespace xlink;

namespace {

constexpr int kSessions = 60;

harness::SessionConfig first_frame_session(int i, core::Scheme scheme,
                                           bool acceleration) {
  sim::Rng rng(880000 + i);
  harness::SessionConfig cfg;
  cfg.scheme = scheme;
  cfg.seed = rng.next_u64();
  cfg.server.first_frame_acceleration = acceleration;
  cfg.time_limit = sim::seconds(60);
  cfg.video.duration = sim::seconds(10);
  cfg.video.bitrate_bps = 4'000'000;
  cfg.video.first_frame_bytes =
      128 * 1024 + rng.uniform(4) * 96 * 1024;  // 128..512 KB
  cfg.video.seed = rng.next_u64();
  cfg.client.chunk_bytes = 2 * 1024 * 1024;
  cfg.client.max_concurrent = 2;
  cfg.wireless_aware_primary = false;

  // Primary: moderate Wi-Fi. Secondary: high-delay cellular (cross-ISP),
  // same order of bandwidth, 3-8x the delay.
  auto wifi = harness::make_path_spec(net::Wireless::kWifi, {},
                                      sim::millis(30 + rng.uniform(30)));
  wifi.down_trace.reset();
  // Some start-ups catch Wi-Fi in a weak moment: there the second path
  // genuinely accelerates the first frame (if scheduled well).
  wifi.fixed_rate_mbps = rng.chance(0.15) ? rng.uniform_double(3.0, 6.0)
                                          : rng.uniform_double(15.0, 25.0);
  auto cell = harness::make_path_spec(
      net::Wireless::kLte, {},
      sim::millis(150 + rng.uniform(350)));
  if (rng.chance(0.5)) {
    // Fading cellular: packets that spill here at start-up can sit for
    // seconds -- exactly what first-frame re-injection rescues.
    cell.down_trace = trace::hsr_cellular(rng.next_u64(), sim::seconds(40));
  } else {
    cell.down_trace.reset();
    cell.fixed_rate_mbps = rng.uniform_double(6.0, 16.0);
  }
  cfg.paths.push_back(std::move(wifi));
  cfg.paths.push_back(std::move(cell));
  return cfg;
}

stats::Summary first_frames(core::Scheme scheme, bool acceleration) {
  stats::Summary out;
  for (int i = 0; i < kSessions; ++i) {
    harness::Session session(first_frame_session(i, scheme, acceleration));
    const auto r = session.run();
    if (r.first_frame_seconds) out.add(*r.first_frame_seconds);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "Reproduction of paper Fig. 12 (first-video-frame acceleration)\n");

  // --trace-exemplar: record one accelerated XLINK start-up session.
  if (auto exemplar = bench::TraceExemplar::parse(argc, argv);
      exemplar.on()) {
    auto cfg = first_frame_session(0, core::Scheme::kXlink, true);
    exemplar.apply(cfg, "fig12_first_frame");
    harness::Session(std::move(cfg)).run();
  }

  const auto sp = first_frames(core::Scheme::kSinglePath, false);
  const auto with_acc = first_frames(core::Scheme::kXlink, true);
  const auto without_acc = first_frames(core::Scheme::kXlink, false);

  bench::heading("First-frame latency improvement over SP (%)");
  stats::Table table({"Percentile", "XLINK w/o acceleration",
                      "XLINK w/ acceleration"});
  auto row = [&](const std::string& label, double pct) {
    const double base = sp.percentile(pct);
    table.add_row({label,
                   bench::fmt(stats::improvement_pct(
                                  base, without_acc.percentile(pct)),
                              1),
                   bench::fmt(stats::improvement_pct(
                                  base, with_acc.percentile(pct)),
                              1)});
  };
  table.add_row({"Avg",
                 bench::fmt(stats::improvement_pct(sp.mean(),
                                                   without_acc.mean()),
                            1),
                 bench::fmt(stats::improvement_pct(sp.mean(),
                                                   with_acc.mean()),
                            1)});
  for (double p : {5.0, 25.0, 50.0, 75.0, 90.0, 92.0, 94.0, 96.0, 98.0, 99.0})
    row("p" + stats::Table::fmt(p, 0), p);
  table.print();
  std::printf(
      "\nExpected shape: w/o acceleration degrades toward the tail (can go "
      "negative);\nw/ acceleration improves, more so at the tail.\n");
  return 0;
}
