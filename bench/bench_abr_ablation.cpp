// Adaptive-bitrate ablation: rate-based vs buffer-based vs hybrid ABR,
// each under the min-RTT baseline scheduler and under XLINK.
//
// Six arms on identical drawn conditions (same seeds, traces, burst-loss
// processes), swept over two regimes:
//
//   - "ge-lossy": Gilbert-Elliott burst loss on both paths. The chunk
//     throughput EWMA collapses on every burst, so the rate-based
//     controller oscillates; the hybrid controller rides the transport's
//     windowed-max delivery-rate estimate through the bursts and gates
//     up-switches on play-time-left, so it should hold more bitrate at no
//     extra rebuffering.
//   - "trace": clean trace-driven capacity. All controllers should
//     converge near the top rung; the interesting number is switch churn.
//
// Reports the frame-weighted bitrate utility (chosen/top), rebuffer ratio,
// switch churn, startup delay, and goodput per arm.
//
// `--smoke` shrinks the sweep for CI (2 seeds, short video), exercising
// all six arms in both regimes end to end.
#include "bench_util.h"
#include "harness/parallel.h"
#include "trace/synthetic.h"
#include "video/abr.h"

using namespace xlink;

namespace {

struct Arm {
  const char* label;
  core::Scheme scheme;
  video::AbrAlgorithm abr;
};

constexpr Arm kArms[] = {
    {"minrtt/rate", core::Scheme::kVanillaMp, video::AbrAlgorithm::kRateBased},
    {"minrtt/buffer", core::Scheme::kVanillaMp,
     video::AbrAlgorithm::kBufferBased},
    {"minrtt/hybrid", core::Scheme::kVanillaMp, video::AbrAlgorithm::kHybrid},
    {"xlink/rate", core::Scheme::kXlink, video::AbrAlgorithm::kRateBased},
    {"xlink/buffer", core::Scheme::kXlink, video::AbrAlgorithm::kBufferBased},
    {"xlink/hybrid", core::Scheme::kXlink, video::AbrAlgorithm::kHybrid},
};

struct Sweep {
  int seeds = 8;
  sim::Duration video = sim::seconds(12);
  sim::Duration time_limit = sim::seconds(60);
};

harness::SessionConfig base_config(std::uint64_t seed, const Sweep& sweep,
                                   bool ge_loss) {
  harness::SessionConfig cfg;
  cfg.seed = seed;
  cfg.time_limit = sweep.time_limit;
  cfg.video.duration = sweep.video;
  cfg.video.bitrate_bps = 3'000'000;  // ladder = scaled(3M): 0.75/1.5/2.25/3
  cfg.video.first_frame_bytes = 128 * 1024;
  cfg.client.abr.chunk_frames = 30;  // one decision per second of video
  cfg.client.max_concurrent = 2;
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kWifi,
      trace::campus_walk_wifi(seed * 5 + 1, sim::seconds(40)),
      sim::millis(30)));
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kLte, trace::stable_lte(seed * 5 + 2, sim::seconds(40)),
      sim::millis(90)));
  if (ge_loss) {
    // Bursty residual loss: the regime where the chunk EWMA under-reads
    // capacity and the hybrid's transport-rate input earns its keep.
    net::PathSpec::GeLoss ge;
    ge.p_good_to_bad = 0.006;
    ge.p_bad_to_good = 0.35;
    ge.loss_good = 0.0;
    ge.loss_bad = 0.45;
    for (auto& p : cfg.paths) p.ge_loss = ge;
  }
  return cfg;
}

struct ArmResult {
  stats::Summary utility;       // frame-weighted chosen/top, per session
  stats::Summary startup_ms;
  stats::Summary goodput_mbps;
  double rebuffer = 0, play = 0;
  std::uint64_t decisions = 0, switches = 0, magnitude = 0;
  int finished = 0, sessions = 0;

  double rebuffer_pct() const {
    return play > 0 ? rebuffer / play * 100.0 : 0.0;
  }
};

ArmResult run_arm(const Arm& arm, const Sweep& sweep, bool ge_loss) {
  const auto results = harness::run_sessions_parallel(
      static_cast<std::size_t>(sweep.seeds), [&](std::size_t i) {
        auto cfg = base_config(i + 1, sweep, ge_loss);
        cfg.scheme = arm.scheme;
        cfg.client.abr.algorithm = arm.abr;
        return cfg;
      });
  ArmResult a;
  for (const auto& r : results) {
    ++a.sessions;
    a.utility.add(r.abr_bitrate_utility);
    if (r.startup_delay_seconds)
      a.startup_ms.add(*r.startup_delay_seconds * 1000.0);
    if (r.download_seconds > 0.0)
      a.goodput_mbps.add(double(r.stream_payload_bytes) * 8.0 / 1e6 /
                         r.download_seconds);
    a.rebuffer += r.rebuffer_seconds;
    a.play += r.play_seconds;
    a.decisions += r.abr_decisions;
    a.switches += r.abr_switches;
    a.magnitude += r.abr_switch_magnitude;
    a.finished += r.video_finished ? 1 : 0;
  }
  return a;
}

void run_regime(const char* name, bool ge_loss, const Sweep& sweep) {
  bench::heading(name);
  stats::Table table({"Arm", "utility", "rebuf(%)", "switches/sess", "|mag|",
                      "startup p50(ms)", "goodput p50(Mb/s)", "fin"});
  for (const Arm& arm : kArms) {
    const ArmResult a = run_arm(arm, sweep, ge_loss);
    table.add_row(
        {arm.label, bench::fmt(a.utility.mean(), 3),
         bench::fmt(a.rebuffer_pct(), 2),
         bench::fmt(a.sessions ? double(a.switches) / a.sessions : 0.0, 1),
         std::to_string(a.magnitude), bench::fmt(a.startup_ms.median(), 0),
         bench::fmt(a.goodput_mbps.median(), 2),
         std::to_string(a.finished) + "/" + std::to_string(a.sessions)});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  Sweep sweep;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      sweep.seeds = 2;
      sweep.video = sim::seconds(4);
      sweep.time_limit = sim::seconds(30);
    }
  }
  std::printf("ABR ablation: {rate, buffer, hybrid} x {minrtt, xlink} "
              "(%d seeds)\n", sweep.seeds);

  if (auto exemplar = bench::TraceExemplar::parse(argc, argv);
      exemplar.on()) {
    auto cfg = base_config(1, sweep, /*ge_loss=*/true);
    cfg.scheme = core::Scheme::kXlink;
    cfg.client.abr.algorithm = video::AbrAlgorithm::kHybrid;
    exemplar.apply(cfg, "abr_ablation");
    harness::Session(std::move(cfg)).run();
  }

  run_regime("Gilbert-Elliott burst loss (EWMA under-reads capacity)",
             /*ge_loss=*/true, sweep);
  run_regime("Trace-driven capacity, no residual loss (switch churn)",
             /*ge_loss=*/false, sweep);

  std::printf("\nutility = frame-weighted chosen/top bitrate; the hybrid"
              "\ncontroller should match or beat rate-based utility on the"
              "\nburst-loss regime without adding rebuffer time.\n");
  return 0;
}
