// Fig. 10 + Table 2: client buffer occupancy and traffic cost vs the
// double-threshold settings.
//
// Procedure follows §7.1:
//  1. Measure the play-time-left distribution with the QoE control off
//     (re-injection always on) -- the calibration pass.
//  2. Pick thresholds (th(X), th(Y)) where th(X) is the value exceeded by
//     X% of the samples (i.e. the (100-X)th percentile).
//  3. For each setting, run the same session population and report:
//     - improvement of the buffer level at the tail (the level exceeded
//       90/95/99% of the time) vs single-path QUIC;
//     - traffic cost (redundant bytes / first-transmission bytes);
//     - reduction of samples below the 50 ms danger level (Table 2).
#include "bench_util.h"
#include "harness/ab_test.h"
#include "harness/parallel.h"

using namespace xlink;

namespace {

constexpr int kSessions = 18;
constexpr std::uint64_t kBaseSeed = 555000;

struct PopulationOutcome {
  stats::Summary playtime_left_ms;  // sampled after start-up
  double cost_pct = 0.0;
  double rebuffer_rate = 0.0;
};

PopulationOutcome run_population(core::Scheme scheme,
                                 const core::SchemeOptions& opts) {
  harness::PopulationConfig pop;
  pop.p_fading_cellular = 0.8;  // stress without hopeless outages
  // Sessions run on the parallel engine; each worker samples into its own
  // index-keyed slot, folded in order afterwards, so the outcome matches
  // the historical serial loop exactly.
  std::vector<stats::Summary> playtime(kSessions);
  const auto results = harness::run_sessions_parallel(
      kSessions,
      [&](std::size_t i) {
        auto cfg = harness::draw_session_conditions(pop, kBaseSeed + i);
        cfg.scheme = scheme;
        cfg.options = opts;
        return cfg;
      },
      [&playtime](std::size_t i, harness::Session& session) {
        session.sample_period = sim::millis(100);
        stats::Summary& slot = playtime[i];
        session.on_sample = [&slot](harness::Session& s) {
          const auto* p = s.player();
          if (!p || !p->first_frame_latency() || p->finished()) return;
          slot.add(sim::to_millis(p->buffer_level()));
        };
      },
      0);
  PopulationOutcome out;
  std::uint64_t payload = 0;
  std::uint64_t dup = 0;
  double rebuffer = 0;
  double play = 0;
  for (int i = 0; i < kSessions; ++i) {
    out.playtime_left_ms.add_all(playtime[static_cast<std::size_t>(i)].samples());
    const auto& r = results[static_cast<std::size_t>(i)];
    payload += r.stream_payload_bytes;
    dup += r.reinjected_bytes;
    rebuffer += r.rebuffer_seconds;
    play += r.play_seconds;
  }
  out.cost_pct =
      payload ? 100.0 * static_cast<double>(dup) / payload : 0.0;
  out.rebuffer_rate = play > 0 ? rebuffer / play : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // --trace-exemplar: record one stressed-population XLINK session (the
  // population's first draw) for the xlink_qlog analyzer.
  if (auto exemplar = bench::TraceExemplar::parse(argc, argv);
      exemplar.on()) {
    harness::PopulationConfig pop;
    pop.p_fading_cellular = 0.8;
    auto cfg = harness::draw_session_conditions(pop, kBaseSeed);
    cfg.scheme = core::Scheme::kXlink;
    exemplar.apply(cfg, "fig10_thresholds");
    harness::Session(std::move(cfg)).run();
  }
  std::printf(
      "Reproduction of paper Fig. 10 + Table 2 (double thresholds)\n");
  std::printf("parallel engine: %u worker(s) (set XLINK_JOBS to override)\n",
              harness::default_jobs());

  // Calibration: play-time-left distribution with control off.
  core::SchemeOptions always_on;
  always_on.control.mode = core::ControlMode::kAlwaysOn;
  const auto calib = run_population(core::Scheme::kXlink, always_on);
  auto th = [&calib](double x) {
    return calib.playtime_left_ms.percentile(100.0 - x);
  };
  std::printf(
      "calibration: play-time-left th(95)=%.0fms th(90)=%.0fms "
      "th(80)=%.0fms th(60)=%.0fms th(50)=%.0fms th(1)=%.0fms\n",
      th(95), th(90), th(80), th(60), th(50), th(1));

  // Baseline: single path.
  const auto sp = run_population(core::Scheme::kSinglePath, {});

  struct Setting {
    const char* label;
    double x, y;  // th(X), th(Y); x<0 -> re-injection off; y<0 -> always on
  };
  const Setting settings[] = {
      {"re-inj. off", -1, 0}, {"95-80", 95, 80}, {"90-80", 90, 80},
      {"90-60", 90, 60},      {"60-50", 60, 50}, {"60-1", 60, 1},
      {"1-1", 1, 1},
  };

  stats::Table fig10({"Threshold", "Buf 75th improv(%)", "Buf 90th improv(%)",
                      "rebuffer improv(%)", "Cost(%)"});
  stats::Table table2({"Threshold", "reduction of buffer<50ms (%)"});
  const double sp_danger = sp.playtime_left_ms.fraction_below(50.0);

  for (const auto& s : settings) {
    PopulationOutcome out;
    if (s.x < 0) {
      out = run_population(core::Scheme::kVanillaMp, {});
    } else {
      core::SchemeOptions opts;
      if (s.x == 1 && s.y == 1) {
        opts.control.mode = core::ControlMode::kAlwaysOn;
      } else {
        opts.control.tth1 =
            static_cast<sim::Duration>(th(s.x) * sim::kMillisecond);
        opts.control.tth2 = std::max<sim::Duration>(
            static_cast<sim::Duration>(th(s.y) * sim::kMillisecond),
            opts.control.tth1 + sim::millis(1));
      }
      out = run_population(core::Scheme::kXlink, opts);
    }
    // "Buf Xth" = the buffer level exceeded X% of the time, i.e. the
    // (100-X)th percentile of the level distribution.
    auto improv = [&](double pct) {
      const double base = sp.playtime_left_ms.percentile(100.0 - pct);
      const double ours = out.playtime_left_ms.percentile(100.0 - pct);
      return base > 0 ? (ours - base) / base * 100.0 : 0.0;
    };
    const double rebuffer_improv =
        stats::improvement_pct(sp.rebuffer_rate, out.rebuffer_rate);
    fig10.add_row({s.label, bench::fmt(improv(75), 1),
                   bench::fmt(improv(90), 1), bench::fmt(rebuffer_improv, 1),
                   bench::fmt(out.cost_pct, 1)});
    const double danger = out.playtime_left_ms.fraction_below(50.0);
    table2.add_row(
        {s.label,
         bench::fmt(sp_danger > 0
                        ? (sp_danger - danger) / sp_danger * 100.0
                        : 0.0,
                    1)});
  }
  bench::heading("Fig. 10: buffer improvement vs SP and traffic cost");
  fig10.print();
  bench::heading("Table 2: percentage reduction of buffer levels < 50ms");
  table2.print();
  std::printf(
      "\nExpected shape: re-inj off hurts the buffer tail; (1,1) costs the "
      "most;\nmoderate settings like (95,80) keep most of the benefit at a "
      "small cost.\n");
  return 0;
}
