// Fig. 10 + Table 2: client buffer occupancy and traffic cost vs the
// double-threshold settings.
//
// Procedure follows §7.1:
//  1. Measure the play-time-left distribution with the QoE control off
//     (re-injection always on) -- the calibration pass.
//  2. Pick thresholds (th(X), th(Y)) where th(X) is the value exceeded by
//     X% of the samples (i.e. the (100-X)th percentile).
//  3. For each setting, run the same session population and report:
//     - improvement of the buffer level at the tail (the level exceeded
//       90/95/99% of the time) vs single-path QUIC;
//     - traffic cost (redundant bytes / first-transmission bytes);
//     - reduction of samples below the 50 ms danger level (Table 2).
//
// The sweep itself is the canonical "fig10" grid (harness/grids.h) run
// through the shard runner's cells, so this binary, `xlink_grid run
// fig10`, and a sharded `xlink_grid plan/work/merge fig10` all compute the
// exact same populations — the bench just renders them as the paper's
// tables.
#include "bench_util.h"
#include "harness/grids.h"
#include "harness/parallel.h"
#include "harness/shard.h"

using namespace xlink;

namespace {

struct PopulationOutcome {
  stats::Summary playtime_left_ms;  // sampled after start-up
  double cost_pct = 0.0;
  double rebuffer_rate = 0.0;
};

PopulationOutcome from_cell(const harness::shard::CellResult& r) {
  PopulationOutcome out;
  out.playtime_left_ms = r.playtime_a;
  // fold_day's redundancy/rebuffer arithmetic matches the historical
  // per-population loop exactly (index-order sums over the same fields).
  out.cost_pct = r.arm_a.redundancy_pct;
  out.rebuffer_rate = r.arm_a.rebuffer_rate;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // --trace-exemplar: record one stressed-population XLINK session (the
  // population's first draw) for the xlink_qlog analyzer.
  if (auto exemplar = bench::TraceExemplar::parse(argc, argv);
      exemplar.on()) {
    harness::PopulationConfig pop;
    pop.p_fading_cellular = 0.8;
    auto cfg = harness::draw_session_conditions(pop, 555000);
    cfg.scheme = core::Scheme::kXlink;
    exemplar.apply(cfg, "fig10_thresholds");
    harness::Session(std::move(cfg)).run();
  }
  std::printf(
      "Reproduction of paper Fig. 10 + Table 2 (double thresholds)\n");
  std::printf("parallel engine: %u worker(s) (set XLINK_JOBS to override)\n",
              harness::default_jobs());

  // Calibration runs at grid-build time (the threshold cells cannot be
  // enumerated without its playtime distribution); build_grid hands the
  // result back as the precomputed cell 0.
  const auto planned = harness::grids::build_grid("fig10");
  const auto& cells = planned.spec.cells;
  const auto calib = from_cell(planned.precomputed.at(0).second);
  auto th = [&calib](double x) {
    return calib.playtime_left_ms.percentile(100.0 - x);
  };
  std::printf(
      "calibration: play-time-left th(95)=%.0fms th(90)=%.0fms "
      "th(80)=%.0fms th(60)=%.0fms th(50)=%.0fms th(1)=%.0fms\n",
      th(95), th(90), th(80), th(60), th(50), th(1));

  // Baseline: single path (grid cell 1).
  const auto sp = from_cell(harness::shard::run_cell(cells.at(1)));

  stats::Table fig10({"Threshold", "Buf 75th improv(%)", "Buf 90th improv(%)",
                      "rebuffer improv(%)", "Cost(%)"});
  stats::Table table2({"Threshold", "reduction of buffer<50ms (%)"});
  const double sp_danger = sp.playtime_left_ms.fraction_below(50.0);

  // Cells 2.. are the threshold settings, in table-row order.
  for (std::size_t c = 2; c < cells.size(); ++c) {
    const auto out = from_cell(harness::shard::run_cell(cells[c]));
    // "Buf Xth" = the buffer level exceeded X% of the time, i.e. the
    // (100-X)th percentile of the level distribution.
    auto improv = [&](double pct) {
      const double base = sp.playtime_left_ms.percentile(100.0 - pct);
      const double ours = out.playtime_left_ms.percentile(100.0 - pct);
      return base > 0 ? (ours - base) / base * 100.0 : 0.0;
    };
    const double rebuffer_improv =
        stats::improvement_pct(sp.rebuffer_rate, out.rebuffer_rate);
    fig10.add_row({cells[c].label, bench::fmt(improv(75), 1),
                   bench::fmt(improv(90), 1), bench::fmt(rebuffer_improv, 1),
                   bench::fmt(out.cost_pct, 1)});
    const double danger = out.playtime_left_ms.fraction_below(50.0);
    table2.add_row(
        {cells[c].label,
         bench::fmt(sp_danger > 0
                        ? (sp_danger - danger) / sp_danger * 100.0
                        : 0.0,
                    1)});
  }
  bench::heading("Fig. 10: buffer improvement vs SP and traffic cost");
  fig10.print();
  bench::heading("Table 2: percentage reduction of buffer levels < 50ms");
  table2.print();
  std::printf(
      "\nExpected shape: re-inj off hurts the buffer tail; (1,1) costs the "
      "most;\nmoderate settings like (95,80) keep most of the benefit at a "
      "small cost.\n");
  return 0;
}
