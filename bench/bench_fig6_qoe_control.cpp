// Fig. 6: how double-thresholding QoE control overcomes MP-HoL blocking
// with reduced cost, in a fast-changing wireless environment.
//
// Path 1 (primary) deteriorates to near-zero between 1.5s and 3.5s; Path 2
// stays healthy. We replay three schemes against the same traces:
//   (b) vanilla-MP        -- buffer drains during the outage (HoL blocking)
//   (c) re-inj w/o QoE    -- buffer survives, but duplicates flow even when
//                            the buffer is full (wasted traffic)
//   (d) re-inj w/ QoE     -- buffer survives with duplicates only when the
//                            buffer is low (XLINK)
// Output: buffer level + cumulative re-injected bytes timeline per scheme,
// plus rebuffer/cost totals.
#include "bench_util.h"
#include "core/session.h"
#include "trace/synthetic.h"

using namespace xlink;

namespace {

harness::SessionConfig fig6_config(core::Scheme scheme) {
  harness::SessionConfig cfg;
  cfg.scheme = scheme;
  cfg.seed = 1234;
  cfg.time_limit = sim::seconds(30);
  cfg.video.duration = sim::seconds(14);
  cfg.video.bitrate_bps = 3'500'000;
  cfg.video.fps = 30;
  cfg.video.seed = 99;
  cfg.client.chunk_bytes = 384 * 1024;
  cfg.client.max_concurrent = 2;
  cfg.options.control.tth1 = sim::millis(500);
  cfg.options.control.tth2 = sim::millis(1500);
  cfg.wireless_aware_primary = false;  // keep the degrading path primary

  // Path 1: healthy, then a 3.5-second near-outage, then recovery
  // (Fig. 6a's deteriorating path).
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kWifi,
      bench::piecewise_trace({{8.0, sim::millis(800)},
                              {0.05, sim::millis(3500)},
                              {8.0, sim::seconds(27)}}),
      sim::millis(40)));
  // Path 2: steady, just above the video bitrate.
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kLte,
      bench::piecewise_trace({{5.5, sim::seconds(32)}}),
      sim::millis(90)));
  return cfg;
}

void run_scheme(const char* label, core::Scheme scheme,
                bench::TraceExemplar& exemplar) {
  auto cfg = fig6_config(scheme);
  if (scheme == core::Scheme::kXlink) exemplar.apply(cfg, "fig6_xlink");
  auto [result, timeline] = bench::run_with_timeline(std::move(cfg),
                                                     sim::millis(200));
  bench::heading(std::string("Fig. 6 timeline: ") + label);
  stats::Table table({"t(s)", "buffer(MB)", "reinject(MB)"});
  for (const auto& s : timeline) {
    if (s.t_seconds > 6.0) break;
    table.add_row({bench::fmt(s.t_seconds, 1), bench::fmt(s.buffer_mb),
                   bench::fmt(s.reinject_mb)});
  }
  table.print();
  std::printf(
      "summary: rebuffers=%u rebuffer_time=%.2fs reinjected=%.2fMB "
      "redundancy=%.1f%% first_frame=%.0fms\n",
      result.rebuffer_count, result.rebuffer_seconds,
      static_cast<double>(result.reinjected_bytes) / 1e6,
      result.redundancy_ratio * 100.0,
      result.first_frame_seconds.value_or(0.0) * 1000.0);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Reproduction of paper Fig. 6 (QoE control dynamics)\n");
  auto exemplar = bench::TraceExemplar::parse(argc, argv);
  run_scheme("(b) vanilla-MP", core::Scheme::kVanillaMp, exemplar);
  run_scheme("(c) re-injection w/o QoE control", core::Scheme::kReinjectNoQoe,
             exemplar);
  run_scheme("(d) re-injection w/ QoE control (XLINK)", core::Scheme::kXlink,
             exemplar);
  std::printf(
      "\nExpected shape: (b) rebuffers during the outage; (c) and (d) do "
      "not;\n(c) re-injects continuously, (d) only around the outage and "
      "start-up.\n");
  return 0;
}
