// Related-work scheduler comparison (paper §8).
//
// The paper positions XLINK against prediction-based schedulers (ECF,
// BLEST, STMS) that estimate path characteristics to avoid HoL blocking
// instead of re-injecting. This bench replays three regimes -- stable
// heterogeneous paths (where predictions hold), fast-varying paths (where
// they break), and an outage regime -- across min-RTT, ECF, BLEST, and
// XLINK. Expected shape: prediction-based schedulers shine in the stable
// regime and degrade under fast variation; XLINK stays robust everywhere,
// paying a small redundancy cost.
#include "bench_util.h"
#include "harness/parallel.h"
#include "mpquic/schedulers.h"
#include "trace/synthetic.h"

using namespace xlink;

namespace {

enum class Regime { kStableHetero, kFastVarying, kOutage };

const char* regime_name(Regime r) {
  switch (r) {
    case Regime::kStableHetero: return "stable heterogeneous";
    case Regime::kFastVarying: return "fast varying";
    case Regime::kOutage: return "outage";
  }
  return "?";
}

harness::SessionConfig make_config(Regime regime, std::uint64_t seed,
                                   std::shared_ptr<quic::Scheduler> sched) {
  harness::SessionConfig cfg;
  cfg.scheme = core::Scheme::kXlink;  // placeholder; scheduler overridden
  cfg.seed = seed;
  cfg.time_limit = sim::seconds(60);
  cfg.video.duration = sim::seconds(12);
  cfg.video.bitrate_bps = 3'000'000;
  cfg.client.chunk_bytes = 384 * 1024;
  cfg.wireless_aware_primary = false;

  switch (regime) {
    case Regime::kStableHetero: {
      auto fast = harness::make_path_spec(net::Wireless::kWifi, {},
                                          sim::millis(30));
      fast.down_trace.reset();
      fast.fixed_rate_mbps = 8.0;
      auto slow = harness::make_path_spec(net::Wireless::kLte, {},
                                          sim::millis(240));
      slow.down_trace.reset();
      slow.fixed_rate_mbps = 8.0;
      cfg.paths.push_back(std::move(fast));
      cfg.paths.push_back(std::move(slow));
      break;
    }
    case Regime::kFastVarying:
      cfg.paths.push_back(harness::make_path_spec(
          net::Wireless::kWifi,
          trace::campus_walk_wifi(seed * 5 + 1, sim::seconds(40)),
          sim::millis(40)));
      cfg.paths.push_back(harness::make_path_spec(
          net::Wireless::kLte,
          trace::hsr_cellular(seed * 5 + 2, sim::seconds(40)),
          sim::millis(150)));
      break;
    case Regime::kOutage:
      cfg.paths.push_back(harness::make_path_spec(
          net::Wireless::kWifi,
          bench::piecewise_trace({{8.0, sim::millis(900)},
                                  {0.05, sim::millis(3000)},
                                  {8.0, sim::seconds(28)}}),
          sim::millis(40)));
      cfg.paths.push_back(harness::make_path_spec(
          net::Wireless::kLte,
          bench::piecewise_trace({{5.5, sim::seconds(32)}}),
          sim::millis(100)));
      break;
  }
  // Override the server-side scheduler via a manual scheme config.
  cfg.options.control.mode = core::ControlMode::kDoubleThreshold;
  (void)sched;
  return cfg;
}

struct Row {
  stats::Summary rct;
  double rebuffer_s = 0;
  double cost_pct_sum = 0;
  int n = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::printf("Related-work schedulers vs XLINK (paper Sec. 8)\n");

  // --trace-exemplar: record one XLINK session of the fast-varying regime
  // for the xlink_qlog analyzer.
  if (auto exemplar = bench::TraceExemplar::parse(argc, argv);
      exemplar.on()) {
    auto cfg = make_config(Regime::kFastVarying, 1, nullptr);
    exemplar.apply(cfg, "related_schedulers");
    harness::Session(std::move(cfg)).run();
  }

  struct Contender {
    const char* label;
    core::Scheme scheme;  // for XLINK / vanilla
    // Factory, not an instance: each session gets its own scheduler so
    // concurrently-running sessions never share one (nullptr = scheme
    // default).
    std::shared_ptr<quic::Scheduler> (*make_sched)();
  };

  for (Regime regime :
       {Regime::kStableHetero, Regime::kFastVarying, Regime::kOutage}) {
    bench::heading(std::string("Regime: ") + regime_name(regime));
    stats::Table table(
        {"Scheduler", "RCT p50(s)", "RCT p99(s)", "rebuffer(s)", "cost(%)"});
    const Contender contenders[] = {
        {"min-RTT (vanilla)", core::Scheme::kVanillaMp, nullptr},
        {"ECF", core::Scheme::kVanillaMp, &mpquic::make_ecf_scheduler},
        {"BLEST", core::Scheme::kVanillaMp, &mpquic::make_blest_scheduler},
        {"XLINK", core::Scheme::kXlink, nullptr},
    };
    for (const auto& c : contenders) {
      const auto results =
          harness::run_sessions_parallel(6, [&](std::size_t i) {
            auto cfg = make_config(regime, i + 1, nullptr);
            cfg.scheme = c.scheme;
            cfg.server_scheduler_override =
                c.make_sched ? c.make_sched() : nullptr;
            return cfg;
          });
      Row row;
      for (const auto& result : results) {
        row.rct.add_all(result.chunk_rct_seconds);
        row.rebuffer_s += result.rebuffer_seconds;
        row.cost_pct_sum += result.redundancy_ratio * 100;
        ++row.n;
      }
      table.add_row({c.label, bench::fmt(row.rct.percentile(50)),
                     bench::fmt(row.rct.percentile(99)),
                     bench::fmt(row.rebuffer_s, 2),
                     bench::fmt(row.cost_pct_sum / row.n, 1)});
    }
    table.print();
  }
  std::printf(
      "\nExpected shape: ECF/BLEST close to or better than min-RTT on "
      "stable paths,\ndegrading under fast variation; XLINK robust in all "
      "three regimes.\n");
  return 0;
}
