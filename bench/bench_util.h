// Shared helpers for the experiment benches.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/scenario.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "telemetry/json.h"
#include "trace/trace.h"

namespace xlink::bench {

/// The one JSON writer for every bench output file. The same
/// telemetry::JsonWriter also serializes qlog traces, so escaping rules
/// stay in a single place instead of per-bench fprintf formats.
using JsonWriter = telemetry::JsonWriter;

/// `--trace-exemplar[=path]`: every session-running bench accepts this
/// flag and, when present, records one exemplar session as a qlog trace
/// for the xlink_qlog analyzer. apply() arms the first config it is
/// offered (callers pass their most representative session).
class TraceExemplar {
 public:
  /// Scans argv; unrelated arguments are left for the bench to interpret.
  static TraceExemplar parse(int argc, char** argv) {
    TraceExemplar ex;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strcmp(a, "--trace-exemplar") == 0) {
        ex.on_ = true;
      } else if (std::strncmp(a, "--trace-exemplar=", 17) == 0) {
        ex.on_ = true;
        ex.path_ = a + 17;
      }
    }
    return ex;
  }

  /// Arms tracing on `cfg` if the flag is set and no session was armed
  /// yet. The qlog lands at the explicit path or `<label>.qlog`.
  bool apply(harness::SessionConfig& cfg, const std::string& label) {
    if (!on_ || used_) return false;
    used_ = true;
    cfg.trace.enabled = true;
    cfg.trace.label = label;
    cfg.trace.qlog_path = path_.empty() ? label + ".qlog" : path_;
    std::printf("tracing exemplar session -> %s\n",
                cfg.trace.qlog_path.c_str());
    return true;
  }

  bool on() const { return on_; }

 private:
  bool on_ = false;
  bool used_ = false;
  std::string path_;
};

/// Builds a Mahimahi trace from piecewise-constant rate segments.
inline trace::LinkTrace piecewise_trace(
    const std::vector<std::pair<double, sim::Duration>>& segments_mbps) {
  std::vector<std::uint32_t> ms;
  double credit = 0.0;
  std::uint64_t t_ms = 0;
  for (const auto& [mbps, dur] : segments_mbps) {
    const double pkts_per_ms = mbps * 1e6 / 8.0 / trace::kDeliveryMtu / 1000.0;
    const std::uint64_t seg_ms = dur / sim::kMillisecond;
    for (std::uint64_t i = 0; i < seg_ms; ++i) {
      ++t_ms;
      credit += pkts_per_ms;
      while (credit >= 1.0) {
        ms.push_back(static_cast<std::uint32_t>(t_ms));
        credit -= 1.0;
      }
    }
  }
  if (ms.empty())
    ms.push_back(static_cast<std::uint32_t>(std::max<std::uint64_t>(t_ms, 1)));
  return trace::LinkTrace(std::move(ms));
}

/// Time series sample of one session.
struct TimelineSample {
  double t_seconds = 0.0;
  double buffer_mb = 0.0;
  double reinject_mb = 0.0;
  double inflight_kb_path0 = 0.0;
  double inflight_kb_path1 = 0.0;
  double cwnd_kb_path0 = 0.0;
  double cwnd_kb_path1 = 0.0;
};

/// Runs one session sampling the player buffer and server re-injection.
inline std::pair<harness::SessionResult, std::vector<TimelineSample>>
run_with_timeline(harness::SessionConfig cfg,
                  sim::Duration period = sim::millis(100)) {
  harness::Session session(std::move(cfg));
  std::vector<TimelineSample> timeline;
  session.sample_period = period;
  session.on_sample = [&timeline](harness::Session& s) {
    TimelineSample sample;
    sample.t_seconds = sim::to_seconds(s.loop().now());
    if (s.player())
      sample.buffer_mb =
          static_cast<double>(s.player()->buffered_bytes_ahead()) / 1e6;
    sample.reinject_mb =
        static_cast<double>(s.server_conn().stats().reinjected_bytes) / 1e6;
    auto path_sample = [&s](quic::PathId id, double& inflight, double& cwnd) {
      if (!s.server_conn().has_path(id)) return;
      const auto& p = s.server_conn().path_state(id);
      inflight = static_cast<double>(p.loss.bytes_in_flight()) / 1e3;
      cwnd = static_cast<double>(p.cc->cwnd_bytes()) / 1e3;
    };
    path_sample(0, sample.inflight_kb_path0, sample.cwnd_kb_path0);
    path_sample(1, sample.inflight_kb_path1, sample.cwnd_kb_path1);
    timeline.push_back(sample);
  };
  auto result = session.run();
  return {std::move(result), std::move(timeline)};
}

inline std::string fmt(double v, int precision = 2) {
  return stats::Table::fmt(v, precision);
}

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace xlink::bench
