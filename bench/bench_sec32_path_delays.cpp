// §3.2 + Table 4: path delays in heterogeneous networks.
//
// Samples the per-technology RTT distributions and verifies the paper's
// measured ratios: median LTE = 2.7x Wi-Fi and 5.5x 5G SA; p90 LTE = 3.3x
// Wi-Fi. Also prints the cross-ISP LTE delay increase matrix (Table 4).
#include "bench_util.h"
#include "net/wireless.h"

using namespace xlink;

int main() {
  std::printf("Reproduction of paper Sec. 3.2 + Table 4 (path delays)\n");

  sim::Rng rng(99);
  const net::Wireless techs[] = {net::Wireless::k5gSa, net::Wireless::kWifi,
                                 net::Wireless::k5gNsa, net::Wireless::kLte};
  std::map<net::Wireless, stats::Summary> rtts;
  for (net::Wireless t : techs) {
    for (int i = 0; i < 20000; ++i)
      rtts[t].add(sim::to_millis(net::sample_rtt(t, rng)));
  }

  bench::heading("RTT by wireless technology (ms)");
  stats::Table table({"Tech", "median", "p90", "p99"});
  for (net::Wireless t : techs) {
    table.add_row({net::to_string(t), bench::fmt(rtts[t].median(), 1),
                   bench::fmt(rtts[t].percentile(90), 1),
                   bench::fmt(rtts[t].percentile(99), 1)});
  }
  table.print();

  const double lte_med = rtts[net::Wireless::kLte].median();
  const double wifi_med = rtts[net::Wireless::kWifi].median();
  const double sa_med = rtts[net::Wireless::k5gSa].median();
  const double lte_p90 = rtts[net::Wireless::kLte].percentile(90);
  const double wifi_p90 = rtts[net::Wireless::kWifi].percentile(90);
  std::printf(
      "\nratios: median LTE/WiFi = %.2f (paper: 2.7), median LTE/5G-SA = "
      "%.2f (paper: 5.5), p90 LTE/WiFi = %.2f (paper: 3.3)\n",
      lte_med / wifi_med, lte_med / sa_med, lte_p90 / wifi_p90);

  bench::heading("Table 4: relative increase of cross-ISP LTE delay (%)");
  stats::Table isp({"from\\to", "A", "B", "C"});
  const char* names[] = {"A", "B", "C"};
  for (int from = 0; from < 3; ++from) {
    std::vector<std::string> row{names[from]};
    for (int to = 0; to < 3; ++to)
      row.push_back(bench::fmt(100.0 * net::cross_isp_increase(
                                           static_cast<net::Isp>(from),
                                           static_cast<net::Isp>(to)),
                               0));
    isp.add_row(row);
  }
  isp.print();
  return 0;
}
