// Determinism contract of the parallel experiment engine: a day replayed
// on N workers must produce bit-identical DayMetrics to the serial path,
// because per-session results land in index-keyed slots and are folded in
// index order. Kept in its own binary so it can be run under
// ThreadSanitizer (-DXLINK_SANITIZE=thread) without paying TSan cost for
// the whole suite.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "harness/ab_test.h"
#include "harness/parallel.h"
#include "sim/thread_pool.h"

namespace xlink::harness {
namespace {

PopulationConfig small_pop() {
  PopulationConfig pop;
  pop.sessions_per_day = 6;  // keep the suite quick, esp. under TSan
  pop.time_limit = sim::seconds(60);
  return pop;
}

void expect_identical(const DayMetrics& a, const DayMetrics& b) {
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.unfinished_downloads, b.unfinished_downloads);
  // Raw sample vectors in insertion order: the strongest form of the
  // claim — not just equal percentiles, the same doubles in the same
  // order.
  EXPECT_EQ(a.rct.samples(), b.rct.samples());
  EXPECT_EQ(a.first_frame.samples(), b.first_frame.samples());
  EXPECT_EQ(a.rebuffer_rate, b.rebuffer_rate);
  EXPECT_EQ(a.redundancy_pct, b.redundancy_pct);
  // Merged MetricsRegistry: counters, gauges, and histogram buckets all
  // compare exactly (defaulted operator==) — the merge-in-index-order
  // contract extended to the telemetry subsystem.
  EXPECT_EQ(a.metrics, b.metrics);
}

TEST(ParallelHarness, RunDayBitIdenticalAcrossJobCounts) {
  const PopulationConfig pop = small_pop();
  const core::SchemeOptions opts;
  for (const std::uint64_t day_seed : {901ULL, 902ULL, 903ULL}) {
    for (const core::Scheme scheme :
         {core::Scheme::kSinglePath, core::Scheme::kXlink}) {
      const DayMetrics serial = run_day(scheme, opts, pop, day_seed, 1);
      const DayMetrics parallel = run_day(scheme, opts, pop, day_seed, 4);
      expect_identical(serial, parallel);
    }
  }
}

TEST(ParallelHarness, FecRunDayBitIdenticalAcrossJobCounts) {
  // FEC exercises extra per-session state (framer windows, recovery
  // stashes, pooled repair buffers); the bit-identical contract must hold
  // for the fec+reinject arm too.
  const PopulationConfig pop = small_pop();
  core::SchemeOptions opts;
  opts.xlink_redundancy = core::XlinkRedundancy::kReinjectPlusFec;
  opts.fec.window = 8;
  opts.fec.min_repairs = 2;
  opts.fec.max_repairs = 4;
  const DayMetrics serial = run_day(core::Scheme::kXlink, opts, pop, 911, 1);
  const DayMetrics parallel =
      run_day(core::Scheme::kXlink, opts, pop, 911, 4);
  expect_identical(serial, parallel);
  // Repair symbols actually flowed: the arm is not silently FEC-free.
  EXPECT_GT(serial.redundancy_pct, 0.0);
}

TEST(ParallelHarness, AbDayMatchesTwoSerialRunDays) {
  const PopulationConfig pop = small_pop();
  const core::SchemeOptions opts;
  const std::uint64_t day_seed = 777;
  const AbDay ab = run_ab_day(core::Scheme::kSinglePath, opts,
                              core::Scheme::kVanillaMp, opts, pop, day_seed,
                              4);
  expect_identical(ab.arm_a,
                   run_day(core::Scheme::kSinglePath, opts, pop, day_seed, 1));
  expect_identical(ab.arm_b,
                   run_day(core::Scheme::kVanillaMp, opts, pop, day_seed, 1));
}

TEST(ParallelHarness, ResultsLandInIndexOrderSlots) {
  const PopulationConfig pop = small_pop();
  auto make_config = [&pop](std::size_t i) {
    SessionConfig cfg = draw_session_conditions(pop, 4200 + i);
    cfg.scheme = core::Scheme::kSinglePath;
    return cfg;
  };
  const auto serial = run_sessions_parallel(4, make_config, 1);
  const auto parallel = run_sessions_parallel(4, make_config, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].chunk_rct_seconds, parallel[i].chunk_rct_seconds);
    EXPECT_EQ(serial[i].server_wire_bytes, parallel[i].server_wire_bytes);
    EXPECT_EQ(serial[i].reinjected_bytes, parallel[i].reinjected_bytes);
  }
}

TEST(ParallelHarness, TracingDoesNotPerturbSessionResults) {
  const PopulationConfig pop = small_pop();
  auto make_config = [&pop](std::size_t i, bool traced) {
    SessionConfig cfg = draw_session_conditions(pop, 6100 + i);
    cfg.scheme = core::Scheme::kXlink;
    cfg.trace.enabled = traced;
    return cfg;
  };
  const auto plain = run_sessions_parallel(
      3, [&](std::size_t i) { return make_config(i, false); }, 2);
  const auto traced = run_sessions_parallel(
      3, [&](std::size_t i) { return make_config(i, true); }, 2);
  ASSERT_EQ(plain.size(), traced.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].chunk_rct_seconds, traced[i].chunk_rct_seconds);
    EXPECT_EQ(plain[i].first_frame_seconds, traced[i].first_frame_seconds);
    EXPECT_EQ(plain[i].rebuffer_seconds, traced[i].rebuffer_seconds);
    EXPECT_EQ(plain[i].server_wire_bytes, traced[i].server_wire_bytes);
    EXPECT_EQ(plain[i].reinjected_bytes, traced[i].reinjected_bytes);
    EXPECT_EQ(plain[i].packets_lost, traced[i].packets_lost);
    // The traced run's registry additionally carries telemetry.* counters;
    // everything else in it must match.
    EXPECT_EQ(plain[i].metrics.counter("quic.server.packets_sent"),
              traced[i].metrics.counter("quic.server.packets_sent"));
    EXPECT_GT(traced[i].metrics.counter("telemetry.events_recorded"), 0u);
  }
}

TEST(ParallelHarness, TracedSessionsExportIdenticalQlogsAcrossJobCounts) {
  const PopulationConfig pop = small_pop();
  auto read_file = [](const std::string& path) {
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  };
  auto qlog_path = [](unsigned jobs, std::size_t i) {
    return ::testing::TempDir() + "/xlink_par_trace_j" +
           std::to_string(jobs) + "_" + std::to_string(i) + ".qlog";
  };
  auto run = [&](unsigned jobs) {
    run_sessions_parallel(
        4,
        [&](std::size_t i) {
          SessionConfig cfg = draw_session_conditions(pop, 6200 + i);
          cfg.scheme = core::Scheme::kXlink;
          cfg.trace.enabled = true;
          cfg.trace.label = "determinism";
          cfg.trace.qlog_path = qlog_path(jobs, i);
          return cfg;
        },
        jobs);
  };
  run(1);
  run(4);
  for (std::size_t i = 0; i < 4; ++i) {
    const std::string serial = read_file(qlog_path(1, i));
    const std::string parallel = read_file(qlog_path(4, i));
    ASSERT_FALSE(serial.empty());
    // Byte-identical trace files: same events, same order, same JSON.
    EXPECT_EQ(serial, parallel) << "session " << i;
    std::remove(qlog_path(1, i).c_str());
    std::remove(qlog_path(4, i).c_str());
  }
}

TEST(ThreadPool, ParallelForEachVisitsEveryIndexExactlyOnce) {
  sim::ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for_each(kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ParallelForEachPropagatesFirstException) {
  sim::ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for_each(100,
                                      [](std::size_t i) {
                                        if (i == 42)
                                          throw std::runtime_error("boom");
                                      }),
               std::runtime_error);
}

TEST(ThreadPool, SerialFallbackRunsInline) {
  // jobs=1 must execute on the calling thread in index order.
  std::vector<std::size_t> order;
  sim::parallel_for_each(5, [&](std::size_t i) { order.push_back(i); }, 1);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, DefaultJobsHonoursEnvVar) {
  ::setenv("XLINK_JOBS", "3", 1);
  EXPECT_EQ(sim::ThreadPool::default_jobs(), 3u);
  ::setenv("XLINK_JOBS", "not-a-number", 1);
  EXPECT_GE(sim::ThreadPool::default_jobs(), 1u);  // falls back to hardware
  ::unsetenv("XLINK_JOBS");
  EXPECT_GE(sim::ThreadPool::default_jobs(), 1u);
}

TEST(ThreadPool, DefaultJobsRejectsEnvEdgeValues) {
  // Every rejected value must fall back to hardware_concurrency (>= 1),
  // never to 0 workers or an absurd pool size.
  const unsigned hw_fallback = [] {
    ::unsetenv("XLINK_JOBS");
    return sim::ThreadPool::default_jobs();
  }();
  const char* rejected[] = {
      "0",                      // zero workers is not a pool
      "4097",                   // above the sanity cap
      "99999999999999999999",   // overflows unsigned long (ERANGE)
      "8garbage",               // trailing junk
      "-2",                     // strtoul wraps negatives to huge values
      " 4",                     // leading whitespace is accepted by strtoul,
                                // but the full-string parse still succeeds;
                                // see the accepted list below
      "",                       // empty string
  };
  for (const char* v : rejected) {
    if (std::string(v) == " 4") continue;  // handled separately below
    ::setenv("XLINK_JOBS", v, 1);
    EXPECT_EQ(sim::ThreadPool::default_jobs(), hw_fallback)
        << "XLINK_JOBS='" << v << "'";
  }
  // Boundary values that must be accepted verbatim.
  ::setenv("XLINK_JOBS", "1", 1);
  EXPECT_EQ(sim::ThreadPool::default_jobs(), 1u);
  ::setenv("XLINK_JOBS", "4096", 1);
  EXPECT_EQ(sim::ThreadPool::default_jobs(), 4096u);
  ::setenv("XLINK_JOBS", " 4", 1);  // strtoul skips leading whitespace
  EXPECT_EQ(sim::ThreadPool::default_jobs(), 4u);
  ::unsetenv("XLINK_JOBS");
}

TEST(ParallelHarness, AbDayArmsShareSessionSeeds) {
  // The A/B property: both arms draw the same per-session conditions. With
  // the SAME scheme on both arms, the two arms must therefore be
  // bit-identical — any divergence means the arm-seed pairing broke.
  const PopulationConfig pop = small_pop();
  const core::SchemeOptions opts;
  const AbDay ab = run_ab_day(core::Scheme::kVanillaMp, opts,
                              core::Scheme::kVanillaMp, opts, pop, 888, 4);
  expect_identical(ab.arm_a, ab.arm_b);
  // And the shared conditions equal what run_day draws for that seed.
  expect_identical(ab.arm_a,
                   run_day(core::Scheme::kVanillaMp, opts, pop, 888, 1));
}

TEST(ThreadPool, SubmitAndWaitIdleDrainEverything) {
  sim::ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) pool.submit([&done] { ++done; });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 64);
}

}  // namespace
}  // namespace xlink::harness
