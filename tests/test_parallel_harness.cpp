// Determinism contract of the parallel experiment engine: a day replayed
// on N workers must produce bit-identical DayMetrics to the serial path,
// because per-session results land in index-keyed slots and are folded in
// index order. Kept in its own binary so it can be run under
// ThreadSanitizer (-DXLINK_SANITIZE=thread) without paying TSan cost for
// the whole suite.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "harness/ab_test.h"
#include "harness/parallel.h"
#include "sim/thread_pool.h"

namespace xlink::harness {
namespace {

PopulationConfig small_pop() {
  PopulationConfig pop;
  pop.sessions_per_day = 6;  // keep the suite quick, esp. under TSan
  pop.time_limit = sim::seconds(60);
  return pop;
}

void expect_identical(const DayMetrics& a, const DayMetrics& b) {
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.unfinished_downloads, b.unfinished_downloads);
  // Raw sample vectors in insertion order: the strongest form of the
  // claim — not just equal percentiles, the same doubles in the same
  // order.
  EXPECT_EQ(a.rct.samples(), b.rct.samples());
  EXPECT_EQ(a.first_frame.samples(), b.first_frame.samples());
  EXPECT_EQ(a.rebuffer_rate, b.rebuffer_rate);
  EXPECT_EQ(a.redundancy_pct, b.redundancy_pct);
}

TEST(ParallelHarness, RunDayBitIdenticalAcrossJobCounts) {
  const PopulationConfig pop = small_pop();
  const core::SchemeOptions opts;
  for (const std::uint64_t day_seed : {901ULL, 902ULL, 903ULL}) {
    for (const core::Scheme scheme :
         {core::Scheme::kSinglePath, core::Scheme::kXlink}) {
      const DayMetrics serial = run_day(scheme, opts, pop, day_seed, 1);
      const DayMetrics parallel = run_day(scheme, opts, pop, day_seed, 4);
      expect_identical(serial, parallel);
    }
  }
}

TEST(ParallelHarness, AbDayMatchesTwoSerialRunDays) {
  const PopulationConfig pop = small_pop();
  const core::SchemeOptions opts;
  const std::uint64_t day_seed = 777;
  const AbDay ab = run_ab_day(core::Scheme::kSinglePath, opts,
                              core::Scheme::kVanillaMp, opts, pop, day_seed,
                              4);
  expect_identical(ab.arm_a,
                   run_day(core::Scheme::kSinglePath, opts, pop, day_seed, 1));
  expect_identical(ab.arm_b,
                   run_day(core::Scheme::kVanillaMp, opts, pop, day_seed, 1));
}

TEST(ParallelHarness, ResultsLandInIndexOrderSlots) {
  const PopulationConfig pop = small_pop();
  auto make_config = [&pop](std::size_t i) {
    SessionConfig cfg = draw_session_conditions(pop, 4200 + i);
    cfg.scheme = core::Scheme::kSinglePath;
    return cfg;
  };
  const auto serial = run_sessions_parallel(4, make_config, 1);
  const auto parallel = run_sessions_parallel(4, make_config, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].chunk_rct_seconds, parallel[i].chunk_rct_seconds);
    EXPECT_EQ(serial[i].server_wire_bytes, parallel[i].server_wire_bytes);
    EXPECT_EQ(serial[i].reinjected_bytes, parallel[i].reinjected_bytes);
  }
}

TEST(ThreadPool, ParallelForEachVisitsEveryIndexExactlyOnce) {
  sim::ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for_each(kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ParallelForEachPropagatesFirstException) {
  sim::ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for_each(100,
                                      [](std::size_t i) {
                                        if (i == 42)
                                          throw std::runtime_error("boom");
                                      }),
               std::runtime_error);
}

TEST(ThreadPool, SerialFallbackRunsInline) {
  // jobs=1 must execute on the calling thread in index order.
  std::vector<std::size_t> order;
  sim::parallel_for_each(5, [&](std::size_t i) { order.push_back(i); }, 1);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, DefaultJobsHonoursEnvVar) {
  ::setenv("XLINK_JOBS", "3", 1);
  EXPECT_EQ(sim::ThreadPool::default_jobs(), 3u);
  ::setenv("XLINK_JOBS", "not-a-number", 1);
  EXPECT_GE(sim::ThreadPool::default_jobs(), 1u);  // falls back to hardware
  ::unsetenv("XLINK_JOBS");
  EXPECT_GE(sim::ThreadPool::default_jobs(), 1u);
}

TEST(ThreadPool, SubmitAndWaitIdleDrainEverything) {
  sim::ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) pool.submit([&done] { ++done; });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 64);
}

}  // namespace
}  // namespace xlink::harness
