// Hostile-peer attack suite: scripted adversaries drive real connections
// through protocol abuse, and every attack must end in a graceful
// CONNECTION_CLOSE with the right RFC 9000 transport error code (or, for
// amplification probes, in suppressed sends) -- with zero leaked pooled
// buffers and bounded memory throughout.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "fec/framer.h"
#include "harness/hostile.h"
#include "net/packet_buffer.h"
#include "quic/guard.h"
#include "test_support.h"

namespace xlink {
namespace {

using harness::HostilePeer;
using quic::Connection;
using quic::Frame;
using quic::TransportError;
using test::WirePair;

std::uint64_t code(TransportError e) { return static_cast<std::uint64_t>(e); }

/// Established pair + attacker aimed at one side. The victim's outbound
/// datagrams are redirected into `captured` (the honest peer stops hearing
/// from it; the attack phase owns the victim's wire).
struct AttackRig {
  explicit AttackRig(WirePair::Options opts = {})
      : pool(net::PacketBufferPool::local()) {
    pool.reset_counters();
    pair = std::make_unique<WirePair>(std::move(opts));
    EXPECT_TRUE(pair->establish());
  }

  /// Points the attacker at `victim` and starts capturing its output.
  HostilePeer& aim(Connection& victim) {
    attacker = std::make_unique<HostilePeer>(victim);
    victim.set_send_callback([this](quic::PathId, net::Datagram d) {
      captured.emplace_back(d.cspan().begin(), d.cspan().end());
    });
    return *attacker;
  }

  /// Tears down the rig and verifies no pooled buffer leaked.
  void expect_no_leaks() {
    attacker.reset();
    pair.reset();
    EXPECT_EQ(pool.counters().outstanding(), 0u);
  }

  net::PacketBufferPool& pool;
  std::unique_ptr<WirePair> pair;
  std::unique_ptr<HostilePeer> attacker;
  std::vector<std::vector<std::uint8_t>> captured;
};

void expect_closed_with(AttackRig& rig, Connection& victim,
                        TransportError err) {
  EXPECT_TRUE(victim.is_closed());
  EXPECT_EQ(victim.close_state(), Connection::CloseState::kClosing);
  EXPECT_FALSE(victim.close_info().peer_initiated);
  EXPECT_EQ(victim.close_info().error_code, code(err));
  // Graceful: a CONNECTION_CLOSE with that code actually went on the wire.
  const auto close = rig.attacker->find_close(rig.captured);
  ASSERT_TRUE(close.has_value());
  EXPECT_EQ(close->error_code, code(err));
  EXPECT_GE(victim.guard_counters().violations, 1u);
}

// ---------------------------------------------------------------- attacks

TEST(HostilePeer, AckFloodClosesConnection) {
  WirePair::Options opts;
  opts.server_config.budgets.ack_flood_base = 64;
  opts.server_config.budgets.ack_flood_per_packet_sent = 0;
  AttackRig rig(opts);
  auto& attacker = rig.aim(*rig.pair->server);

  // Empty ack ranges pass the lying-ack check; the sheer rate is the abuse.
  quic::AckMpFrame ack;
  ack.path_id = 0;
  for (int i = 0; i < 200 && !rig.pair->server->is_closed(); ++i)
    attacker.inject(0, {Frame{ack}});

  expect_closed_with(rig, *rig.pair->server, TransportError::kProtocolViolation);
  EXPECT_LE(rig.pair->server->guard_counters().ack_frames, 66u);
  rig.expect_no_leaks();
}

TEST(HostilePeer, LyingAckRangeClosesConnection) {
  AttackRig rig;
  auto& attacker = rig.aim(*rig.pair->server);

  quic::AckMpFrame ack;
  ack.path_id = 0;
  ack.info.ranges = {{100000, 100000}};  // far beyond anything ever sent
  attacker.inject(0, {Frame{ack}});

  expect_closed_with(rig, *rig.pair->server, TransportError::kProtocolViolation);
  EXPECT_NE(rig.pair->server->close_info().reason.find("lying_ack"),
            std::string::npos);
  rig.expect_no_leaks();
}

TEST(HostilePeer, StreamExhaustionClosesConnection) {
  WirePair::Options opts;
  opts.server_config.budgets.max_open_recv_streams = 64;
  AttackRig rig(opts);
  auto& attacker = rig.aim(*rig.pair->server);

  for (quic::StreamId id = 0; id < 4 * 80 && !rig.pair->server->is_closed();
       id += 4)
    attacker.inject(0, {Frame{quic::StreamFrame{id, 0, {1}, false}}});

  expect_closed_with(rig, *rig.pair->server, TransportError::kStreamLimitError);
  // Bounded memory: at most the budgeted stream count ever existed.
  EXPECT_LE(rig.pair->server->guard_counters().peak_open_recv_streams, 64u);
  rig.expect_no_leaks();
}

TEST(HostilePeer, FabricatedStreamIdClosesConnection) {
  AttackRig rig;
  auto& attacker = rig.aim(*rig.pair->server);

  attacker.inject(0, {Frame{quic::StreamFrame{3, 0, {1}, false}}});

  expect_closed_with(rig, *rig.pair->server, TransportError::kStreamStateError);
  rig.expect_no_leaks();
}

TEST(HostilePeer, StreamFlowControlOverrunClosesConnection) {
  AttackRig rig;
  auto& attacker = rig.aim(*rig.pair->server);

  // One byte past the per-stream grant. The guard must trip BEFORE
  // reassembly: no 8 MB buffer may be provisioned for the offset bomb.
  const std::uint64_t grant =
      rig.pair->options_.server_config.params.initial_max_stream_data;
  attacker.inject(0, {Frame{quic::StreamFrame{4, grant, {1}, false}}});

  expect_closed_with(rig, *rig.pair->server, TransportError::kFlowControlError);
  const auto* s = rig.pair->server->recv_stream(4);
  if (s != nullptr) EXPECT_EQ(s->readable_bytes(), 0u);
  rig.expect_no_leaks();
}

TEST(HostilePeer, ConnectionFlowControlOverrunClosesConnection) {
  AttackRig rig;
  auto& attacker = rig.aim(*rig.pair->server);

  // Sparse offset bombs charge the connection-level grant without shipping
  // the bytes: two streams exhaust the 16 MB budget, the third overruns.
  const std::uint64_t stream_grant =
      rig.pair->options_.server_config.params.initial_max_stream_data;
  attacker.inject(0, {Frame{quic::StreamFrame{4, stream_grant - 1, {1}, false}}});
  attacker.inject(0, {Frame{quic::StreamFrame{8, stream_grant - 1, {1}, false}}});
  EXPECT_FALSE(rig.pair->server->is_closed());
  attacker.inject(0, {Frame{quic::StreamFrame{12, 100, {1}, false}}});

  expect_closed_with(rig, *rig.pair->server, TransportError::kFlowControlError);
  EXPECT_NE(rig.pair->server->close_info().reason.find("connection_flow"),
            std::string::npos);
  rig.expect_no_leaks();
}

TEST(HostilePeer, MovedFinalSizeClosesConnection) {
  AttackRig rig;
  auto& attacker = rig.aim(*rig.pair->server);

  attacker.inject(0, {Frame{quic::StreamFrame{4, 0, {1, 2}, true}}});
  EXPECT_FALSE(rig.pair->server->is_closed());
  attacker.inject(0, {Frame{quic::StreamFrame{4, 10, {3}, false}}});

  expect_closed_with(rig, *rig.pair->server, TransportError::kFinalSizeError);
  rig.expect_no_leaks();
}

TEST(HostilePeer, RepairBombClosesConnection) {
  AttackRig rig;
  auto& attacker = rig.aim(*rig.pair->server);

  quic::RepairFrame bomb;
  bomb.path_id = 0;
  bomb.k = 1;
  bomb.payload.assign(4096, 0xab);  // no legal symbol is this large
  attacker.inject(0, {Frame{std::move(bomb)}});

  expect_closed_with(rig, *rig.pair->server, TransportError::kProtocolViolation);
  EXPECT_NE(rig.pair->server->close_info().reason.find("repair_oversized"),
            std::string::npos);
  rig.expect_no_leaks();
}

TEST(HostilePeer, RepairFloodClosesConnection) {
  WirePair::Options opts;
  opts.server_config.budgets.repair_flood_base = 32;
  opts.server_config.budgets.repair_flood_per_packet_received = 0;
  opts.server_config.fec.enabled = true;  // flood a real RecoveryBuffer
  opts.server_config.fec.protect = false;
  AttackRig rig(opts);
  auto& attacker = rig.aim(*rig.pair->server);

  quic::RepairFrame r;
  r.path_id = 0;
  r.k = 4;
  r.payload.assign(64, 0x5a);
  for (int i = 0; i < 60 && !rig.pair->server->is_closed(); ++i) {
    r.window_id = static_cast<std::uint64_t>(i);
    r.first_pn = static_cast<quic::PacketNumber>(4 * i);
    attacker.inject(0, {Frame{r}});
  }

  expect_closed_with(rig, *rig.pair->server, TransportError::kProtocolViolation);
  EXPECT_NE(rig.pair->server->close_info().reason.find("repair_flood"),
            std::string::npos);
  rig.expect_no_leaks();
}

TEST(HostilePeer, DatagramReplayFloodClosesConnection) {
  WirePair::Options opts;
  opts.server_config.budgets.max_replayed_packets = 50;
  AttackRig rig(opts);
  auto& attacker = rig.aim(*rig.pair->server);

  // One honestly-numbered packet, replayed verbatim: same wire bytes, same
  // packet number, cryptographically valid every time.
  const auto wire = attacker.seal(0, attacker.next_pn(0), {Frame{quic::PingFrame{}}});
  for (int i = 0; i < 60 && !rig.pair->server->is_closed(); ++i)
    attacker.inject_wire(0, wire);

  expect_closed_with(rig, *rig.pair->server, TransportError::kProtocolViolation);
  EXPECT_GE(rig.pair->server->guard_counters().replayed_packets, 50u);
  rig.expect_no_leaks();
}

TEST(HostilePeer, CidLimitOverrunClosesConnection) {
  AttackRig rig;
  auto& attacker = rig.aim(*rig.pair->server);

  quic::NewConnectionIdFrame f;
  f.sequence =
      rig.pair->options_.server_config.params.active_connection_id_limit;
  attacker.inject(0, {Frame{f}});

  expect_closed_with(rig, *rig.pair->server,
                     TransportError::kConnectionIdLimitError);
  rig.expect_no_leaks();
}

TEST(HostilePeer, HandshakeDoneAtServerClosesConnection) {
  AttackRig rig;
  auto& attacker = rig.aim(*rig.pair->server);

  attacker.inject(0, {Frame{quic::HandshakeDoneFrame{}}});

  expect_closed_with(rig, *rig.pair->server, TransportError::kProtocolViolation);
  rig.expect_no_leaks();
}

TEST(HostilePeer, StreamDataBeforeHandshakeClosesConnection) {
  // A fresh server that has never completed a handshake: data frames are
  // illegal until CRYPTO establishes the connection.
  auto& pool = net::PacketBufferPool::local();
  pool.reset_counters();
  {
    sim::EventLoop loop;
    Connection::Config cfg;
    cfg.role = quic::Role::kServer;
    Connection server(loop, cfg);
    std::vector<std::vector<std::uint8_t>> captured;
    server.set_send_callback([&](quic::PathId, net::Datagram d) {
      captured.emplace_back(d.cspan().begin(), d.cspan().end());
    });

    HostilePeer attacker(server);
    attacker.inject_wire(
        0, attacker.seal_initial(0, 0,
                                 {Frame{quic::StreamFrame{4, 0, {1}, false}}}));

    EXPECT_TRUE(server.is_closed());
    EXPECT_EQ(server.close_state(), Connection::CloseState::kClosing);
    EXPECT_EQ(server.close_info().error_code,
              code(TransportError::kProtocolViolation));
    const auto close = attacker.find_close(captured);
    ASSERT_TRUE(close.has_value());
    EXPECT_EQ(close->error_code, code(TransportError::kProtocolViolation));
  }
  EXPECT_EQ(pool.counters().outstanding(), 0u);
}

TEST(HostilePeer, AmplificationProbeIsSuppressed) {
  // A spoofed-source packet opens a new (unvalidated) server path; the
  // attacker never answers the server's PATH_CHALLENGE, so PTO retransmits
  // would amplify forever -- the 3x cap must clamp them instead.
  AttackRig rig;
  Connection& server = *rig.pair->server;
  auto& attacker = rig.aim(server);

  attacker.inject(2, {Frame{quic::PathChallengeFrame{{1, 2, 3, 4}}}});
  ASSERT_TRUE(server.has_path(2));
  rig.pair->run_for(sim::seconds(8));  // several PTO cycles

  const auto& p = server.path_state(2);
  EXPECT_EQ(p.state, quic::PathState::State::kValidating);  // never promoted
  EXPECT_GE(server.guard_counters().amplification_blocked, 1u);
  EXPECT_LE(p.bytes_sent,
            rig.pair->options_.server_config.budgets.amplification_factor *
                p.bytes_received);
  EXPECT_FALSE(server.is_closed());  // suppression, not escalation
  rig.expect_no_leaks();
}

TEST(HostilePeer, GapSprayIsCollapsedNotFatal) {
  WirePair::Options opts;
  opts.server_config.budgets.max_recv_gaps_per_stream = 16;
  AttackRig rig(opts);
  Connection& server = *rig.pair->server;
  auto& attacker = rig.aim(server);

  // Every other byte: each frame is a new reassembly gap (a map node the
  // peer pins). The cap collapses the smallest gap instead of closing.
  for (std::uint64_t i = 0; i < 200; ++i)
    attacker.inject(0, {Frame{quic::StreamFrame{4, 2 * i, {1}, false}}});

  EXPECT_FALSE(server.is_closed());  // soft defense
  const auto* s = server.recv_stream(4);
  ASSERT_NE(s, nullptr);
  EXPECT_LE(s->tracked_intervals(), 16u);
  EXPECT_GT(server.guard_counters().gap_collapses, 0u);
  EXPECT_GT(server.guard_counters().phantom_bytes, 0u);
  rig.expect_no_leaks();
}

// ------------------------------------------------- closing and draining

TEST(HostilePeer, ClosingStateRateLimitsCloseResends) {
  AttackRig rig;
  Connection& server = *rig.pair->server;
  auto& attacker = rig.aim(server);

  quic::AckMpFrame lying;
  lying.path_id = 0;
  lying.info.ranges = {{100000, 100000}};
  attacker.inject(0, {Frame{lying}});
  ASSERT_EQ(server.close_state(), Connection::CloseState::kClosing);

  const std::size_t closes_before = rig.captured.size();
  for (int i = 0; i < 100; ++i)
    attacker.inject(0, {Frame{quic::PingFrame{}}});

  // RFC 9000 §10.2.1: one re-send per exponentially growing packet count;
  // 100 inbound packets may earn ~log2(100) responses, never 100.
  const std::uint64_t resends = server.guard_counters().close_resends;
  EXPECT_GE(resends, 2u);
  EXPECT_LE(resends, 8u);
  EXPECT_LE(rig.captured.size() - closes_before, 8u);
  rig.expect_no_leaks();
}

TEST(HostilePeer, PeerCloseEntersDrainingAndGoesSilent) {
  AttackRig rig;
  Connection& server = *rig.pair->server;
  auto& attacker = rig.aim(server);

  attacker.inject(0, {Frame{quic::ConnectionCloseFrame{0x42, "bye"}}});

  EXPECT_TRUE(server.is_closed());
  EXPECT_EQ(server.close_state(), Connection::CloseState::kDraining);
  EXPECT_TRUE(server.close_info().peer_initiated);
  EXPECT_EQ(server.close_info().error_code, 0x42u);
  EXPECT_EQ(server.close_info().reason, "bye");

  // Draining sends NOTHING: not for new input, not for app writes.
  const std::size_t sent_before = rig.captured.size();
  for (int i = 0; i < 20; ++i)
    attacker.inject(0, {Frame{quic::PingFrame{}}});
  server.pump();
  rig.pair->run_for(sim::seconds(2));
  EXPECT_EQ(rig.captured.size(), sent_before);
  rig.expect_no_leaks();
}

// ------------------------------------------------------ fec stash bounds

TEST(HostilePeer, FecStashFloodEvictsDropOldest) {
  fec::FecConfig cfg;
  cfg.enabled = true;
  cfg.stash_bytes_cap = 16 * 1024;
  fec::RecoveryBuffer recv(cfg);

  // Oversize source datagrams, distinct packet numbers: without the cap
  // the 64-slot ring would pin 64 * 4 KB of standalone blocks per path.
  std::vector<std::uint8_t> jumbo(4096, 0xcd);
  for (quic::PacketNumber pn = 0; pn < 40; ++pn)
    recv.on_source(0, pn, jumbo, sim::millis(pn));

  EXPECT_GT(recv.stats().stash_evicted, 0u);
  EXPECT_LE(recv.stash_bytes_tracked(), cfg.stash_bytes_cap);
  // The incremental accounting matches a from-scratch walk.
  EXPECT_EQ(recv.stash_bytes_tracked(), recv.audit_recompute_stash_bytes());
}

TEST(HostilePeer, FecOversizeSymbolRejected) {
  fec::FecConfig cfg;
  cfg.enabled = true;
  fec::RecoveryBuffer recv(cfg);

  quic::RepairFrame bomb;
  bomb.path_id = 0;
  bomb.k = 1;
  bomb.repair_count = 1;
  bomb.payload.assign(cfg.max_symbol_bytes + 1, 0xee);
  std::vector<fec::RecoveryBuffer::Recovered> out;
  const auto res = recv.on_repair(0, bomb, sim::millis(1), out);
  EXPECT_EQ(res.recovered, 0u);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(recv.stats().oversize_rejected, 1u);
}

// ------------------------------------------------------ invariant auditor

TEST(InvariantAuditor, CleanOnHonestTraffic) {
  AttackRig rig;
  Connection& server = *rig.pair->server;
  rig.pair->client->open_stream();
  rig.pair->client->stream_send(0, test::pattern_bytes(20000), true);
  rig.pair->client->pump();
  rig.pair->run_for(sim::seconds(2));

  EXPECT_GT(server.audit_now(), 0u);
  EXPECT_GT(rig.pair->client->audit_now(), 0u);
  EXPECT_EQ(server.auditor().failures(), 0u);
  EXPECT_EQ(rig.pair->client->auditor().failures(), 0u);
  rig.expect_no_leaks();
}

TEST(InvariantAuditor, CatchesSeededLedgerCorruption) {
  AttackRig rig;
  Connection& server = *rig.pair->server;

  std::vector<quic::AuditFailure> caught;
  server.auditor().set_on_failure(
      [&](const Connection&, const quic::AuditFailure& f) {
        caught.push_back(f);
      });

  // Seed the bug: a phantom sent-record the loss ledger never saw. The
  // bytes_in_flight re-derivation must disagree with the incremental sum.
  quic::SentRecord phantom;
  phantom.pn = 999999;
  phantom.path = 0;
  phantom.bytes = 777;
  phantom.ack_eliciting = true;
  server.path_state(0).unacked.emplace(phantom.pn, std::move(phantom));

  server.audit_now();
  ASSERT_FALSE(caught.empty());
  EXPECT_STREQ(caught.front().check, "bytes_in_flight_ledger");
  EXPECT_GE(server.auditor().failures(), 1u);

  // Un-seed so teardown audits (timer ticks) stay quiet.
  server.path_state(0).unacked.erase(999999);
  rig.expect_no_leaks();
}

TEST(InvariantAuditor, EnvVariableDisablesAtRuntime) {
  ::setenv("XLINK_AUDIT", "0", 1);
  EXPECT_FALSE(quic::audit_enabled_by_env());
  {
    sim::EventLoop loop;
    Connection::Config cfg;
    Connection conn(loop, cfg);
    EXPECT_FALSE(conn.auditor().enabled());
  }
  ::unsetenv("XLINK_AUDIT");
  EXPECT_TRUE(quic::audit_enabled_by_env());
}

}  // namespace
}  // namespace xlink
