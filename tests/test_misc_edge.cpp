// Miscellaneous edge cases: tiny videos, player corner states, harness
// censoring, and path-spec plumbing.
#include <gtest/gtest.h>

#include "harness/scenario.h"
#include "trace/synthetic.h"
#include "video/player.h"

namespace xlink {
namespace {

TEST(VideoModelEdge, OneFrameVideo) {
  video::VideoSpec spec;
  spec.duration = sim::millis(33);  // exactly one frame at 30fps
  spec.fps = 30;
  spec.bitrate_bps = 1'000'000;
  video::VideoModel model(spec);
  EXPECT_EQ(model.frame_count(), 1u);
  EXPECT_EQ(model.total_bytes(), model.first_frame_bytes());
  EXPECT_EQ(model.frames_in_prefix(model.total_bytes()), 1u);
}

TEST(VideoModelEdge, SubFrameDurationStillHasOneFrame) {
  video::VideoSpec spec;
  spec.duration = sim::millis(5);
  spec.fps = 30;
  video::VideoModel model(spec);
  EXPECT_GE(model.frame_count(), 1u);
}

TEST(PlayerEdge, OneFrameVideoFinishesImmediately) {
  sim::EventLoop loop;
  video::VideoSpec spec;
  spec.duration = sim::millis(33);
  spec.fps = 30;
  video::VideoModel model(spec);
  video::VideoPlayer player(loop, model);
  player.on_contiguous_bytes(model.total_bytes());
  loop.run_until(sim::millis(100));
  EXPECT_TRUE(player.finished());
  EXPECT_TRUE(player.first_frame_latency().has_value());
}

TEST(PlayerEdge, NeverFedNeverStarts) {
  sim::EventLoop loop;
  video::VideoSpec spec;
  video::VideoModel model(spec);
  video::VideoPlayer player(loop, model);
  loop.run_until(sim::seconds(5));
  EXPECT_FALSE(player.first_frame_latency().has_value());
  EXPECT_FALSE(player.finished());
  EXPECT_DOUBLE_EQ(player.rebuffer_rate(), 0.0);  // never played: no rate
  EXPECT_EQ(player.total_play_time(), 0u);
}

TEST(PlayerEdge, ProgressNeverRegresses) {
  sim::EventLoop loop;
  video::VideoSpec spec;
  video::VideoModel model(spec);
  video::VideoPlayer player(loop, model);
  player.on_contiguous_bytes(model.frame_offset(10));
  const auto q1 = player.qoe_snapshot();
  // A stale smaller report must not shrink the buffer.
  player.on_contiguous_bytes(model.frame_offset(5));
  const auto q2 = player.qoe_snapshot();
  EXPECT_GE(q2.cached_bytes, q1.cached_bytes);
}

TEST(HarnessEdge, MakePathSpecFields) {
  auto spec = harness::make_path_spec(net::Wireless::k5gSa,
                                      trace::stable_lte(1, sim::seconds(5)),
                                      sim::millis(50), 0.01);
  EXPECT_EQ(spec.tech, net::Wireless::k5gSa);
  EXPECT_EQ(spec.one_way_delay, sim::millis(25));
  EXPECT_DOUBLE_EQ(spec.loss_rate, 0.01);
  ASSERT_TRUE(spec.down_trace.has_value());
}

TEST(HarnessEdge, TimeLimitCensorsDeadNetwork) {
  // Both paths essentially dead: the session must stop at the time limit
  // with the download censored, not hang.
  harness::SessionConfig cfg;
  cfg.scheme = core::Scheme::kXlink;
  cfg.seed = 3;
  cfg.time_limit = sim::seconds(5);
  cfg.video.duration = sim::seconds(4);
  auto dead = harness::make_path_spec(net::Wireless::kWifi, {},
                                      sim::millis(50));
  dead.down_trace.reset();
  dead.fixed_rate_mbps = 0.01;
  cfg.paths.push_back(dead);
  cfg.paths.push_back(dead);
  harness::Session session(std::move(cfg));
  const auto result = session.run();
  EXPECT_FALSE(result.download_finished);
  EXPECT_EQ(result.chunks_completed, 0u);
  EXPECT_FALSE(result.chunk_rct_seconds.empty());  // censored entries
  for (double t : result.chunk_rct_seconds) EXPECT_LE(t, 5.1);
}

TEST(HarnessEdge, PlainDownloadWithoutPlayer) {
  harness::SessionConfig cfg;
  cfg.scheme = core::Scheme::kVanillaMp;
  cfg.with_player = false;
  cfg.seed = 4;
  cfg.video.duration = sim::seconds(2);
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kWifi, trace::stable_lte(9, sim::seconds(10)),
      sim::millis(40)));
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kLte, trace::stable_lte(10, sim::seconds(10)),
      sim::millis(80)));
  harness::Session session(std::move(cfg));
  const auto result = session.run();
  EXPECT_TRUE(result.download_finished);
  EXPECT_FALSE(result.first_frame_seconds.has_value());
  EXPECT_FALSE(result.video_finished);
  EXPECT_GT(result.download_seconds, 0.0);
}

TEST(HarnessEdge, StandaloneQoeFeedbackSessionWorks) {
  harness::SessionConfig cfg;
  cfg.scheme = core::Scheme::kXlink;
  cfg.standalone_qoe_feedback = true;
  cfg.seed = 5;
  cfg.video.duration = sim::seconds(3);
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kWifi, trace::stable_lte(11, sim::seconds(10)),
      sim::millis(40)));
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kLte, trace::stable_lte(12, sim::seconds(10)),
      sim::millis(90)));
  harness::Session session(std::move(cfg));
  const auto result = session.run();
  EXPECT_TRUE(result.download_finished);
  EXPECT_TRUE(result.video_finished);
}

}  // namespace
}  // namespace xlink
