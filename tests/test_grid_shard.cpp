// Determinism and crash-safety contract of the grid-sharding subsystem
// (harness/shard.h): a spool worked by any number of workers at any
// XLINK_JOBS value, killed and resumed at any point, must merge to the
// byte-identical output of the in-process sweep. Kept in its own binary
// because the crash tests fork().
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "harness/grids.h"
#include "harness/shard.h"

namespace xlink::harness::shard {
namespace {

namespace fs = std::filesystem;

PopulationConfig tiny_pop() {
  PopulationConfig pop;
  pop.sessions_per_day = 2;  // smallest population that still folds
  pop.time_limit = sim::seconds(45);
  return pop;
}

/// A grid exercising every cell flavor: a plain run_day cell, an A/B cell,
/// and a fig10-style raw-seed + playtime-sampled cell.
GridSpec mixed_grid(std::size_t extra_day_cells = 2) {
  GridSpec spec;
  spec.name = "test-mixed";
  {
    GridCell ab;
    ab.label = "ab";
    ab.ab = true;
    ab.scheme_a = core::Scheme::kSinglePath;
    ab.scheme_b = core::Scheme::kXlink;
    ab.pop = tiny_pop();
    ab.day_seed = 7101;
    spec.cells.push_back(ab);
  }
  {
    GridCell sampled;
    sampled.label = "sampled";
    sampled.scheme_a = core::Scheme::kXlink;
    sampled.pop = tiny_pop();
    sampled.day_seed = 555000;
    sampled.raw_session_seeds = true;
    sampled.sample_playtime = true;
    spec.cells.push_back(sampled);
  }
  {
    // BBR + pacing exercises the rate-based CC path and the pacer's timer
    // arithmetic under the same byte-identical merge contract.
    GridCell bbr;
    bbr.label = "bbr-paced";
    bbr.scheme_a = core::Scheme::kXlink;
    bbr.options_a.cc = quic::CcAlgorithm::kBbr;
    bbr.options_a.pacing = true;
    bbr.pop = tiny_pop();
    bbr.day_seed = 7103;
    spec.cells.push_back(bbr);
  }
  for (std::size_t d = 0; d < extra_day_cells; ++d) {
    GridCell day;
    day.label = "day" + std::to_string(d);
    day.scheme_a = d % 2 ? core::Scheme::kVanillaMp : core::Scheme::kXlink;
    day.pop = tiny_pop();
    day.day_seed = 7200 + d;
    spec.cells.push_back(day);
  }
  return spec;
}

std::string render(const GridSpec& spec, const std::vector<CellResult>& r) {
  std::ostringstream os;
  write_grid_results(spec, r, os);
  return os.str();
}

std::string fresh_spool_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "/xlink_spool_" + tag;
  fs::remove_all(dir);
  return dir;
}

TEST(DoubleCodec, RoundTripsBitExact) {
  const double values[] = {
      0.0,
      -0.0,
      1.0,
      -1.5,
      1.0 / 3.0,
      3.14159265358979323846,
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::epsilon(),
      -12345.6789e-120,
  };
  for (const double v : values) {
    const double back = decode_double(encode_double(v));
    EXPECT_EQ(std::signbit(v), std::signbit(back));
    EXPECT_EQ(v, back) << encode_double(v);
    // Canonical form: re-encoding the decoded value is a fixed point.
    EXPECT_EQ(encode_double(v), encode_double(back));
  }
  EXPECT_THROW(decode_double("not-a-number"), std::runtime_error);
  EXPECT_THROW(decode_double("1.5 trailing"), std::runtime_error);
}

TEST(GridManifest, RoundTripsEveryCellField) {
  GridSpec spec = mixed_grid();
  spec.cells[0].options_b.cc = quic::CcAlgorithm::kCoupledLia;
  spec.cells[0].options_b.control.mode = core::ControlMode::kAlwaysOn;
  spec.cells[0].options_b.xlink_ack_policy = quic::AckPathPolicy::kOriginalPath;
  spec.cells[0].options_b.xlink_insert_mode = quic::InsertMode::kFrontOfClass;
  spec.cells[0].options_b.aead_key = ~0ULL;  // all 64 bits must survive
  spec.cells[0].options_b.xlink_redundancy =
      core::XlinkRedundancy::kReinjectPlusFec;
  spec.cells[0].options_b.fec.scheme = fec::FecConfig::SchemeKind::kXor;
  spec.cells[0].options_b.fec.window = 12;
  spec.cells[0].options_b.fec.min_repairs = 2;
  spec.cells[0].options_b.fec.max_repairs = 5;
  spec.cells[0].options_b.fec.loss_multiplier = 1.0 / 3.0;  // bit-exact codec
  spec.cells[0].options_b.fec.payload_cap = 1100;
  spec.cells[0].options_b.fec.cover_linger = sim::millis(123);
  spec.cells[0].options_b.pacing = true;
  spec.cells[1].options_a.cc = quic::CcAlgorithm::kBbr;
  spec.cells[1].pop.p_5g = 1.0 / 3.0;        // non-terminating binary fraction
  spec.cells[1].pop.abr = video::AbrAlgorithm::kHybrid;
  spec.cells[1].pop.abr_chunk_frames = 45;
  spec.cells[1].day_seed = (1ULL << 62) + 3; // above 2^53: needs string codec

  std::ostringstream os;
  write_manifest(spec, os);
  const GridSpec back = parse_manifest(os.str());

  ASSERT_EQ(back.cells.size(), spec.cells.size());
  EXPECT_EQ(back.name, spec.name);
  for (std::size_t i = 0; i < spec.cells.size(); ++i) {
    const GridCell& a = spec.cells[i];
    const GridCell& b = back.cells[i];
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.ab, b.ab);
    EXPECT_EQ(a.scheme_a, b.scheme_a);
    EXPECT_EQ(a.scheme_b, b.scheme_b);
    EXPECT_EQ(a.options_a.cc, b.options_a.cc);
    EXPECT_EQ(a.options_a.pacing, b.options_a.pacing);
    EXPECT_EQ(a.options_b.cc, b.options_b.cc);
    EXPECT_EQ(a.options_b.pacing, b.options_b.pacing);
    EXPECT_EQ(a.options_b.control.tth1, b.options_b.control.tth1);
    EXPECT_EQ(a.options_b.control.tth2, b.options_b.control.tth2);
    EXPECT_EQ(a.options_b.control.mode, b.options_b.control.mode);
    EXPECT_EQ(a.options_b.xlink_ack_policy, b.options_b.xlink_ack_policy);
    EXPECT_EQ(a.options_b.xlink_insert_mode, b.options_b.xlink_insert_mode);
    EXPECT_EQ(a.options_b.aead_key, b.options_b.aead_key);
    EXPECT_EQ(a.options_b.xlink_redundancy, b.options_b.xlink_redundancy);
    EXPECT_EQ(a.options_b.fec.scheme, b.options_b.fec.scheme);
    EXPECT_EQ(a.options_b.fec.window, b.options_b.fec.window);
    EXPECT_EQ(a.options_b.fec.min_repairs, b.options_b.fec.min_repairs);
    EXPECT_EQ(a.options_b.fec.max_repairs, b.options_b.fec.max_repairs);
    EXPECT_EQ(a.options_b.fec.loss_multiplier, b.options_b.fec.loss_multiplier);
    EXPECT_EQ(a.options_b.fec.payload_cap, b.options_b.fec.payload_cap);
    EXPECT_EQ(a.options_b.fec.cover_linger, b.options_b.fec.cover_linger);
    EXPECT_EQ(a.pop.sessions_per_day, b.pop.sessions_per_day);
    EXPECT_EQ(a.pop.p_5g, b.pop.p_5g);  // bit-exact, not approximately
    EXPECT_EQ(a.pop.time_limit, b.pop.time_limit);
    EXPECT_EQ(a.pop.abr, b.pop.abr);
    EXPECT_EQ(a.pop.abr_chunk_frames, b.pop.abr_chunk_frames);
    EXPECT_EQ(a.day_seed, b.day_seed);
    EXPECT_EQ(a.raw_session_seeds, b.raw_session_seeds);
    EXPECT_EQ(a.sample_playtime, b.sample_playtime);
  }
  EXPECT_THROW(parse_manifest("{\"oops\": 1}"), std::runtime_error);
  EXPECT_THROW(parse_manifest("not json at all"), std::runtime_error);
}

TEST(GridShardFile, CellResultRoundTripsBitExact) {
  GridSpec spec = mixed_grid(0);
  for (const GridCell& cell : spec.cells) {
    const CellResult run = run_cell(cell, 2);
    std::ostringstream os;
    write_cell_result(cell, run, os);
    const CellResult back = parse_cell_result(os.str());

    EXPECT_EQ(run.arm_a.rct.samples(), back.arm_a.rct.samples());
    EXPECT_EQ(run.arm_a.first_frame.samples(),
              back.arm_a.first_frame.samples());
    EXPECT_EQ(run.arm_a.rebuffer_rate, back.arm_a.rebuffer_rate);
    EXPECT_EQ(run.arm_a.redundancy_pct, back.arm_a.redundancy_pct);
    EXPECT_EQ(run.arm_a.sessions, back.arm_a.sessions);
    EXPECT_EQ(run.arm_a.unfinished_downloads, back.arm_a.unfinished_downloads);
    // The registry compares exactly: counters, gauges, histogram buckets.
    EXPECT_EQ(run.arm_a.metrics, back.arm_a.metrics);
    if (cell.ab) {
      EXPECT_EQ(run.arm_b.metrics, back.arm_b.metrics);
    }
    if (cell.sample_playtime) {
      EXPECT_EQ(run.playtime_a.samples(), back.playtime_a.samples());
    }
  }
  EXPECT_THROW(parse_cell_result("{\"xlink_grid_manifest\": 1}"),
               std::runtime_error);
}

// The headline contract, straight from the acceptance criteria: merge of a
// spool worked by {1, 2, 5} worker instances x XLINK_JOBS {1, 4} is
// byte-identical to the in-process sweep.
TEST(GridShard, MergeMatchesInProcessAtEveryShardAndJobCount) {
  const GridSpec spec = mixed_grid();
  const std::string baseline = render(spec, run_grid_inprocess(spec, 1));

  int combo = 0;
  for (const int workers : {1, 2, 5}) {
    for (const unsigned jobs : {1u, 4u}) {
      const std::string dir =
          fresh_spool_dir("combo" + std::to_string(combo++));
      Spool::plan(spec, dir);
      // Worker "processes" as independent Spool instances draining the
      // same directory concurrently — the same claim protocol real
      // processes use, plus a thread race on every rename.
      std::vector<std::thread> crew;
      for (int w = 0; w < workers; ++w)
        crew.emplace_back([&dir, jobs] {
          Spool spool(dir);
          run_worker(spool, jobs);
        });
      for (std::thread& t : crew) t.join();

      Spool spool(dir);
      std::vector<std::size_t> missing;
      const auto results = spool.collect(&missing);
      EXPECT_TRUE(missing.empty());
      EXPECT_EQ(render(spool.spec(), results), baseline)
          << workers << " workers, jobs=" << jobs;
      fs::remove_all(dir);
    }
  }
}

TEST(GridShard, FecArmMergesIdenticallyAtEveryShardCount) {
  // FEC options ride the manifest codec: a sharded fec+reinject grid must
  // reproduce the in-process merge byte-for-byte at every shard count
  // (a dropped or mis-parsed FEC field would change the day's arithmetic).
  GridSpec spec;
  spec.name = "test-fec";
  GridCell cell;
  cell.label = "fec-day";
  cell.scheme_a = core::Scheme::kXlink;
  cell.options_a.xlink_redundancy = core::XlinkRedundancy::kReinjectPlusFec;
  cell.options_a.fec.window = 8;
  cell.options_a.fec.min_repairs = 2;
  cell.options_a.fec.max_repairs = 4;
  cell.pop = tiny_pop();
  cell.day_seed = 7301;
  spec.cells.push_back(cell);
  GridCell ab = cell;
  ab.label = "fec-ab";
  ab.ab = true;
  ab.scheme_b = core::Scheme::kXlink;
  ab.options_b = cell.options_a;
  ab.options_a.xlink_redundancy = core::XlinkRedundancy::kReinject;
  ab.day_seed = 7302;
  spec.cells.push_back(ab);

  const std::string baseline = render(spec, run_grid_inprocess(spec, 1));
  for (const int workers : {1, 2, 5}) {
    const std::string dir =
        fresh_spool_dir("fec_w" + std::to_string(workers));
    Spool::plan(spec, dir);
    std::vector<std::thread> crew;
    for (int w = 0; w < workers; ++w)
      crew.emplace_back([&dir] {
        Spool spool(dir);
        run_worker(spool, 4);
      });
    for (std::thread& t : crew) t.join();

    Spool spool(dir);
    std::vector<std::size_t> missing;
    const auto results = spool.collect(&missing);
    EXPECT_TRUE(missing.empty());
    EXPECT_EQ(render(spool.spec(), results), baseline)
        << workers << " workers";
    fs::remove_all(dir);
  }
}

TEST(GridShard, AbrArmMergesIdenticallyAtEveryShardAndJobCount) {
  // The ABR ablation grid rides the same spool contract: the controller
  // choice and chunking knobs travel through the manifest codec and the
  // new DayMetrics ABR fields through the cell-result codec, so any
  // asymmetry in either shows up as a merge mismatch. Uses the real
  // "abr-smoke" grid (6 arms: {minrtt, xlink} x {rate, buffer, hybrid})
  // exactly as CI runs it.
  const GridSpec spec = grids::build_grid("abr-smoke").spec;
  ASSERT_EQ(spec.cells.size(), 6u);
  const std::string baseline = render(spec, run_grid_inprocess(spec, 1));
  ASSERT_NE(baseline.find("abr_decisions"), std::string::npos);

  int combo = 0;
  for (const int workers : {1, 2, 5}) {
    for (const unsigned jobs : {1u, 4u}) {
      const std::string dir =
          fresh_spool_dir("abr_combo" + std::to_string(combo++));
      Spool::plan(spec, dir);
      std::vector<std::thread> crew;
      for (int w = 0; w < workers; ++w)
        crew.emplace_back([&dir, jobs] {
          Spool spool(dir);
          run_worker(spool, jobs);
        });
      for (std::thread& t : crew) t.join();

      Spool spool(dir);
      std::vector<std::size_t> missing;
      const auto results = spool.collect(&missing);
      EXPECT_TRUE(missing.empty());
      EXPECT_EQ(render(spool.spec(), results), baseline)
          << workers << " workers, jobs=" << jobs;
      fs::remove_all(dir);
    }
  }
}

TEST(GridShard, ConcurrentClaimsNeverDoubleAssign) {
  // Claim-protocol stress: many threads race claim_next on a grid of empty
  // cells; every cell must be claimed exactly once.
  GridSpec spec;
  spec.name = "claim-race";
  for (int i = 0; i < 64; ++i) {
    GridCell cell;
    cell.label = "c" + std::to_string(i);
    cell.pop = tiny_pop();
    cell.day_seed = 9000 + static_cast<std::uint64_t>(i);
    spec.cells.push_back(cell);
  }
  const std::string dir = fresh_spool_dir("race");
  Spool::plan(spec, dir);

  std::mutex mu;
  std::vector<std::size_t> claimed;
  std::vector<std::thread> crew;
  for (int w = 0; w < 8; ++w)
    crew.emplace_back([&] {
      Spool spool(dir);
      while (auto index = spool.claim_next()) {
        {
          std::lock_guard lk(mu);
          claimed.push_back(*index);
        }
        // Complete with a dummy result so claim_next converges; the race
        // under test is claiming, not cell execution.
        spool.complete(*index, CellResult{});
      }
    });
  for (std::thread& t : crew) t.join();

  EXPECT_EQ(claimed.size(), spec.cells.size());
  EXPECT_EQ(std::set<std::size_t>(claimed.begin(), claimed.end()).size(),
            spec.cells.size());
  fs::remove_all(dir);
}

TEST(GridShard, ResumeSkipsCompletedCells) {
  const GridSpec spec = mixed_grid(1);
  const std::string dir = fresh_spool_dir("resume");
  Spool::plan(spec, dir);
  {
    Spool spool(dir);
    run_worker(spool, 2);
    EXPECT_EQ(spool.completed(), spec.cells.size());
  }
  // A second worker on the finished spool must find nothing to do.
  Spool again(dir);
  const WorkerReport report = run_worker(again, 2);
  EXPECT_TRUE(report.cell_wall_seconds.empty());
  fs::remove_all(dir);
}

TEST(GridShard, PlannedPrecomputedCellsAreNeverRerun) {
  const GridSpec spec = mixed_grid(1);
  CellResult canned = run_cell(spec.cells[0], 1);
  const std::string dir = fresh_spool_dir("precomputed");
  Spool planned = Spool::plan(spec, dir, {{0, canned}});
  EXPECT_TRUE(planned.has_result(0));
  Spool spool(dir);
  const WorkerReport report = run_worker(spool, 2);
  for (const auto& [index, seconds] : report.cell_wall_seconds)
    EXPECT_NE(index, 0u);  // cell 0 came from the plan
  EXPECT_EQ(spool.completed(), spec.cells.size());
  fs::remove_all(dir);
}

TEST(GridShard, KilledWorkerMidGridResumesToIdenticalMerge) {
  const GridSpec spec = mixed_grid();
  const std::string baseline = render(spec, run_grid_inprocess(spec, 1));
  const std::string dir = fresh_spool_dir("crash");
  Spool::plan(spec, dir);

  // A real worker process that completes one cell, claims a second, and
  // dies without finishing it — the mid-grid kill of the acceptance
  // criteria.
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    Spool spool(dir);
    if (auto first = spool.claim_next())
      spool.complete(*first, run_cell(spool.spec().cells[*first], 1));
    (void)spool.claim_next();  // claim held at death
    _exit(0);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);

  // Exactly one completed cell and one orphaned claim.
  Spool spool(dir);
  EXPECT_EQ(spool.completed(), 1u);

  // The resumed worker must reclaim the dead child's cell and finish the
  // grid; merge stays byte-identical to the in-process sweep.
  run_worker(spool, 4);
  std::vector<std::size_t> missing;
  const auto results = spool.collect(&missing);
  EXPECT_TRUE(missing.empty());
  EXPECT_EQ(render(spool.spec(), results), baseline);
  fs::remove_all(dir);
}

TEST(GridShard, AbandonReturnsClaimToPool) {
  const GridSpec spec = mixed_grid(0);
  const std::string dir = fresh_spool_dir("abandon");
  Spool::plan(spec, dir);
  Spool spool(dir);
  const auto first = spool.claim_next();
  ASSERT_TRUE(first.has_value());
  spool.abandon(*first);
  // The abandoned cell is claimable again (lowest index first).
  const auto again = spool.claim_next();
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, *first);
  EXPECT_THROW(spool.abandon(999), std::runtime_error);
  fs::remove_all(dir);
}

TEST(GridShard, ReclaimAllClaimsForceRespools) {
  const GridSpec spec = mixed_grid(0);
  const std::string dir = fresh_spool_dir("reclaim");
  Spool::plan(spec, dir);
  Spool spool(dir);
  std::size_t claimed = 0;
  while (spool.claim_next().has_value()) ++claimed;
  ASSERT_EQ(claimed, spec.cells.size());
  // Every cell is claimed by THIS (live) process, so a fresh worker
  // cannot steal them...
  Spool other(dir);
  EXPECT_FALSE(other.claim_next().has_value());
  // ...until the cross-machine escape hatch force-respools them.
  EXPECT_EQ(other.reclaim_all_claims(), claimed);
  EXPECT_TRUE(other.claim_next().has_value());
  fs::remove_all(dir);
}

TEST(GridShard, Fig10GridDerivesThresholdsFromCalibration) {
  // Build the real fig10 grid at smoke scale and check its shape: the
  // calibration cell is precomputed, the settings cells carry thresholds
  // derived from the calibration playtime distribution.
  const auto planned = grids::build_grid("fig10-smoke", 2);
  ASSERT_EQ(planned.precomputed.size(), 1u);
  EXPECT_EQ(planned.precomputed[0].first, 0u);
  ASSERT_EQ(planned.spec.cells.size(), 9u);
  EXPECT_EQ(planned.spec.cells[0].label, "calibration");
  EXPECT_EQ(planned.spec.cells[1].label, "sp");
  EXPECT_TRUE(planned.spec.cells[0].sample_playtime);
  EXPECT_TRUE(planned.spec.cells[0].raw_session_seeds);

  const stats::Summary& playtime = planned.precomputed[0].second.playtime_a;
  ASSERT_FALSE(playtime.empty());
  const auto th = [&playtime](double x) {
    return static_cast<sim::Duration>(playtime.percentile(100.0 - x) *
                                      sim::kMillisecond);
  };
  const GridCell& c9080 = planned.spec.cells[4];
  EXPECT_EQ(c9080.label, "90-80");
  EXPECT_EQ(c9080.options_a.control.tth1, th(90));
  EXPECT_GE(c9080.options_a.control.tth2, c9080.options_a.control.tth1);

  EXPECT_THROW(grids::build_grid("no-such-grid"), std::runtime_error);
}

}  // namespace
}  // namespace xlink::harness::shard
