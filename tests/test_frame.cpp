// Unit tests: frame serialization, including the multipath extension
// frames and the QoE signal carriage.
#include <gtest/gtest.h>

#include "quic/frame.h"

namespace xlink::quic {
namespace {

Frame roundtrip(const Frame& in) {
  Writer w;
  encode_frame(in, w);
  Reader r(w.data());
  auto out = parse_frame(r);
  EXPECT_TRUE(out.has_value());
  EXPECT_TRUE(r.done()) << "frame did not consume its whole encoding";
  return *out;
}

TEST(Frames, PingRoundtrip) {
  EXPECT_EQ(roundtrip(Frame{PingFrame{}}), Frame{PingFrame{}});
}

TEST(Frames, StreamRoundtrip) {
  StreamFrame f;
  f.stream_id = 12;
  f.offset = 987654;
  f.data = {1, 2, 3, 4, 5};
  f.fin = true;
  EXPECT_EQ(roundtrip(Frame{f}), Frame{f});
}

TEST(Frames, StreamEmptyWithFin) {
  StreamFrame f;
  f.stream_id = 4;
  f.fin = true;
  EXPECT_EQ(roundtrip(Frame{f}), Frame{f});
}

TEST(Frames, AckSingleRange) {
  AckFrame f;
  f.info.ack_delay_us = 250;
  f.info.ranges = {{5, 10}};
  EXPECT_EQ(roundtrip(Frame{f}), Frame{f});
}

TEST(Frames, AckMultipleRanges) {
  AckFrame f;
  f.info.ack_delay_us = 1;
  f.info.ranges = {{90, 100}, {50, 70}, {10, 20}, {0, 3}};
  EXPECT_EQ(roundtrip(Frame{f}), Frame{f});
}

TEST(Frames, AckAdjacentButUnmergedRangesSurvive) {
  AckFrame f;
  // Gap of exactly one missing packet between ranges.
  f.info.ranges = {{12, 20}, {5, 10}};
  EXPECT_EQ(roundtrip(Frame{f}), Frame{f});
}

TEST(Frames, AckMpWithoutQoe) {
  AckMpFrame f;
  f.path_id = 3;
  f.info.ranges = {{0, 42}};
  EXPECT_EQ(roundtrip(Frame{f}), Frame{f});
}

TEST(Frames, AckMpWithQoe) {
  AckMpFrame f;
  f.path_id = 1;
  f.info.ack_delay_us = 777;
  f.info.ranges = {{100, 220}, {10, 50}};
  f.qoe = QoeSignal{123456, 240, 2'500'000, 30};
  EXPECT_EQ(roundtrip(Frame{f}), Frame{f});
}

TEST(Frames, QoeControlSignals) {
  QoeControlSignalsFrame f;
  f.qoe = QoeSignal{1, 2, 3, 4};
  EXPECT_EQ(roundtrip(Frame{f}), Frame{f});
}

TEST(Frames, PathStatusRoundtripAllValues) {
  for (std::uint64_t status : {PathStatusKind::kAbandon,
                               PathStatusKind::kStandby,
                               PathStatusKind::kAvailable}) {
    PathStatusFrame f;
    f.path_id = 2;
    f.status_seq = 9;
    f.status = status;
    EXPECT_EQ(roundtrip(Frame{f}), Frame{f});
  }
}

TEST(Frames, PathStatusRejectsUnknownValue) {
  Writer w;
  w.varint(kFramePathStatus);
  w.varint(1);
  w.varint(1);
  w.varint(99);  // invalid status
  Reader r(w.data());
  EXPECT_FALSE(parse_frame(r).has_value());
}

TEST(Frames, CryptoRoundtrip) {
  CryptoFrame f;
  f.offset = 0;
  f.data = {9, 8, 7};
  EXPECT_EQ(roundtrip(Frame{f}), Frame{f});
}

TEST(Frames, FlowControlFrames) {
  EXPECT_EQ(roundtrip(Frame{MaxDataFrame{1 << 20}}),
            Frame{MaxDataFrame{1 << 20}});
  EXPECT_EQ(roundtrip(Frame{MaxStreamDataFrame{8, 4096}}),
            (Frame{MaxStreamDataFrame{8, 4096}}));
}

TEST(Frames, StreamControlFrames) {
  EXPECT_EQ(roundtrip(Frame{ResetStreamFrame{4, 1, 5000}}),
            (Frame{ResetStreamFrame{4, 1, 5000}}));
  EXPECT_EQ(roundtrip(Frame{StopSendingFrame{4, 2}}),
            (Frame{StopSendingFrame{4, 2}}));
}

TEST(Frames, NewConnectionIdRoundtrip) {
  NewConnectionIdFrame f;
  f.sequence = 2;
  f.retire_prior_to = 0;
  for (int i = 0; i < 8; ++i) f.cid[static_cast<size_t>(i)] = static_cast<std::uint8_t>(i);
  for (int i = 0; i < 16; ++i)
    f.reset_token[static_cast<size_t>(i)] = static_cast<std::uint8_t>(0xf0 + i);
  EXPECT_EQ(roundtrip(Frame{f}), Frame{f});
}

TEST(Frames, PathChallengeResponse) {
  PathChallengeFrame c;
  c.data = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(roundtrip(Frame{c}), Frame{c});
  PathResponseFrame p;
  p.data = c.data;
  EXPECT_EQ(roundtrip(Frame{p}), Frame{p});
}

TEST(Frames, ConnectionCloseWithReason) {
  ConnectionCloseFrame f;
  f.error_code = 7;
  f.reason = "bye now";
  EXPECT_EQ(roundtrip(Frame{f}), Frame{f});
}

TEST(Frames, HandshakeDone) {
  EXPECT_EQ(roundtrip(Frame{HandshakeDoneFrame{}}),
            Frame{HandshakeDoneFrame{}});
}

TEST(Frames, PaddingCoalesces) {
  Writer w;
  for (int i = 0; i < 5; ++i) w.u8(0);
  Reader r(w.data());
  const auto f = parse_frame(r);
  ASSERT_TRUE(f.has_value());
  const auto* padding = std::get_if<PaddingFrame>(&*f);
  ASSERT_NE(padding, nullptr);
  EXPECT_EQ(padding->length, 5u);
  EXPECT_TRUE(r.done());
}

TEST(Frames, UnknownTypeFailsParse) {
  Writer w;
  w.varint(0x7777);
  Reader r(w.data());
  EXPECT_FALSE(parse_frame(r).has_value());
}

TEST(Frames, TruncatedStreamFails) {
  StreamFrame f;
  f.stream_id = 4;
  f.data = {1, 2, 3, 4};
  Writer w;
  encode_frame(Frame{f}, w);
  auto bytes = w.take();
  bytes.pop_back();  // truncate
  Reader r(bytes);
  EXPECT_FALSE(parse_frame(r).has_value());
}

TEST(Frames, ParseFramesWholePayload) {
  Writer w;
  encode_frame(Frame{PingFrame{}}, w);
  StreamFrame s;
  s.stream_id = 0;
  s.data = {1};
  encode_frame(Frame{s}, w);
  const auto frames = parse_frames(w.data());
  ASSERT_TRUE(frames.has_value());
  EXPECT_EQ(frames->size(), 2u);
}

TEST(Frames, ParseFramesRejectsTrailingGarbage) {
  Writer w;
  encode_frame(Frame{PingFrame{}}, w);
  w.u8(0x77);  // not a valid frame start... 0x77 parses as varint type 0x37
  EXPECT_FALSE(parse_frames(w.data()).has_value());
}

TEST(Frames, AckEliciting) {
  EXPECT_TRUE(is_ack_eliciting(Frame{PingFrame{}}));
  EXPECT_TRUE(is_ack_eliciting(Frame{StreamFrame{}}));
  EXPECT_TRUE(is_ack_eliciting(Frame{PathChallengeFrame{}}));
  EXPECT_FALSE(is_ack_eliciting(Frame{AckFrame{}}));
  EXPECT_FALSE(is_ack_eliciting(Frame{AckMpFrame{}}));
  EXPECT_FALSE(is_ack_eliciting(Frame{PaddingFrame{}}));
  EXPECT_FALSE(is_ack_eliciting(Frame{ConnectionCloseFrame{}}));
}

TEST(Frames, WireSizeMatchesEncoding) {
  StreamFrame f;
  f.stream_id = 8;
  f.offset = 100000;
  f.data.assign(500, 1);
  Writer w;
  encode_frame(Frame{f}, w);
  EXPECT_EQ(frame_wire_size(Frame{f}), w.size());
}

TEST(Frames, StreamFrameOverheadIsUpperBoundOnHeader) {
  StreamFrame f;
  f.stream_id = 8;
  f.offset = 100000;
  f.data.assign(500, 1);
  const std::size_t overhead =
      stream_frame_overhead(f.stream_id, f.offset, f.data.size());
  EXPECT_EQ(frame_wire_size(Frame{f}), overhead + f.data.size());
}

TEST(TransportParams, Roundtrip) {
  TransportParams p;
  p.enable_multipath = true;
  p.initial_max_data = 1 << 22;
  p.initial_max_stream_data = 1 << 20;
  p.active_connection_id_limit = 6;
  p.max_ack_delay_ms = 20;
  const auto parsed = parse_transport_params(encode_transport_params(p));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->enable_multipath, true);
  EXPECT_EQ(parsed->initial_max_data, p.initial_max_data);
  EXPECT_EQ(parsed->initial_max_stream_data, p.initial_max_stream_data);
  EXPECT_EQ(parsed->active_connection_id_limit, 6u);
  EXPECT_EQ(parsed->max_ack_delay_ms, 20u);
}

TEST(TransportParams, TruncatedFails) {
  TransportParams p;
  auto bytes = encode_transport_params(p);
  bytes.pop_back();
  EXPECT_FALSE(parse_transport_params(bytes).has_value());
}

TEST(AckInfo, Contains) {
  AckInfo info;
  info.ranges = {{10, 20}, {3, 5}};
  EXPECT_TRUE(info.contains(10));
  EXPECT_TRUE(info.contains(20));
  EXPECT_TRUE(info.contains(4));
  EXPECT_FALSE(info.contains(6));
  EXPECT_FALSE(info.contains(21));
  EXPECT_EQ(info.largest_acked(), 20u);
}

}  // namespace
}  // namespace xlink::quic
