// Unit tests: interval set and stream send/receive state.
#include <gtest/gtest.h>

#include "quic/interval_set.h"
#include "quic/stream.h"

namespace xlink::quic {
namespace {

TEST(IntervalSet, AddAndContains) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  s.add(10, 20);
  EXPECT_TRUE(s.contains(10, 20));
  EXPECT_TRUE(s.contains(12, 15));
  EXPECT_FALSE(s.contains(9, 11));
  EXPECT_FALSE(s.contains(19, 21));
  EXPECT_EQ(s.covered_bytes(), 10u);
}

TEST(IntervalSet, MergesAdjacentAndOverlapping) {
  IntervalSet s;
  s.add(0, 10);
  s.add(10, 20);  // adjacent
  EXPECT_EQ(s.interval_count(), 1u);
  s.add(30, 40);
  s.add(25, 35);  // overlaps
  EXPECT_EQ(s.interval_count(), 2u);
  s.add(15, 28);  // bridges both
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_TRUE(s.contains(0, 40));
}

TEST(IntervalSet, EmptyRangeIgnored) {
  IntervalSet s;
  s.add(5, 5);
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.contains(7, 7));  // empty query is vacuously covered
}

TEST(IntervalSet, NextGap) {
  IntervalSet s;
  s.add(0, 10);
  s.add(20, 30);
  EXPECT_EQ(s.next_gap(0), 10u);
  EXPECT_EQ(s.next_gap(5), 10u);
  EXPECT_EQ(s.next_gap(10), 10u);
  EXPECT_EQ(s.next_gap(20), 30u);
  EXPECT_EQ(s.next_gap(50), 50u);
}

TEST(IntervalSet, Intersects) {
  IntervalSet s;
  s.add(10, 20);
  EXPECT_TRUE(s.intersects(15, 25));
  EXPECT_TRUE(s.intersects(5, 11));
  EXPECT_FALSE(s.intersects(0, 10));   // half-open: touches only
  EXPECT_FALSE(s.intersects(20, 30));
  EXPECT_FALSE(s.intersects(30, 30));
}

TEST(SendStream, WriteReturnsOffsets) {
  SendStream s(4);
  EXPECT_EQ(s.write({1, 2, 3}, false), 0u);
  EXPECT_EQ(s.write({4, 5}, true), 3u);
  EXPECT_EQ(s.total_written(), 5u);
  EXPECT_TRUE(s.fin_written());
}

TEST(SendStream, ReadRangeClampsToWritten) {
  SendStream s(4);
  s.write({10, 11, 12, 13}, false);
  EXPECT_EQ(s.read_range(1, 2), (std::vector<std::uint8_t>{11, 12}));
  EXPECT_EQ(s.read_range(3, 10), (std::vector<std::uint8_t>{13}));
  EXPECT_TRUE(s.read_range(99, 5).empty());
}

TEST(SendStream, AckTrackingAndFullyAcked) {
  SendStream s(4);
  s.write(std::vector<std::uint8_t>(100, 0), true);
  EXPECT_FALSE(s.fully_acked());
  s.on_range_acked(0, 50);
  EXPECT_TRUE(s.range_acked(0, 50));
  EXPECT_FALSE(s.range_acked(0, 51));
  EXPECT_FALSE(s.fully_acked());
  s.on_range_acked(50, 100);
  EXPECT_TRUE(s.fully_acked());
  EXPECT_EQ(s.acked_bytes(), 100u);
}

TEST(SendStream, EmptyFinOnlyStreamFullyAckedImmediately) {
  SendStream s(0);
  s.write({}, true);
  EXPECT_TRUE(s.fully_acked());
}

TEST(SendStream, UnackedWithin) {
  SendStream s(4);
  s.write(std::vector<std::uint8_t>(100, 0), false);
  s.on_range_acked(20, 40);
  s.on_range_acked(60, 70);
  const auto gaps = s.unacked_within(10, 90);
  using Range = std::pair<std::uint64_t, std::uint64_t>;
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0], (Range{10, 20}));
  EXPECT_EQ(gaps[1], (Range{40, 60}));
  EXPECT_EQ(gaps[2], (Range{70, 90}));
  // Fully acked subrange -> empty.
  EXPECT_TRUE(s.unacked_within(25, 35).empty());
  // Untouched region -> one whole gap.
  const auto whole = s.unacked_within(90, 95);
  ASSERT_EQ(whole.size(), 1u);
}

TEST(SendStream, FramePriorities) {
  SendStream s(4);
  s.write(std::vector<std::uint8_t>(1000, 0), false);
  s.set_frame_priority(0, 300, 2);
  s.set_frame_priority(100, 100, 5);  // overlapping: highest wins
  EXPECT_EQ(s.frame_priority_at(0), 2);
  EXPECT_EQ(s.frame_priority_at(150), 5);
  EXPECT_EQ(s.frame_priority_at(299), 2);
  EXPECT_EQ(s.frame_priority_at(300), 0);
  EXPECT_EQ(s.frame_priority_at(999), 0);
}

TEST(SendStream, PrioritySetter) {
  SendStream s(4);
  EXPECT_EQ(s.priority(), 0);
  s.set_priority(-3);
  EXPECT_EQ(s.priority(), -3);
}

TEST(RecvStream, InOrderDelivery) {
  RecvStream s(4);
  s.on_data(0, {1, 2, 3}, false);
  EXPECT_EQ(s.readable_bytes(), 3u);
  EXPECT_EQ(s.read(2), (std::vector<std::uint8_t>{1, 2}));
  EXPECT_EQ(s.read_offset(), 2u);
  EXPECT_EQ(s.readable_bytes(), 1u);
}

TEST(RecvStream, OutOfOrderReassembly) {
  RecvStream s(4);
  s.on_data(3, {4, 5, 6}, false);
  EXPECT_EQ(s.readable_bytes(), 0u);  // gap at 0
  s.on_data(0, {1, 2, 3}, false);
  EXPECT_EQ(s.readable_bytes(), 6u);
  EXPECT_EQ(s.read(100), (std::vector<std::uint8_t>{1, 2, 3, 4, 5, 6}));
}

TEST(RecvStream, DuplicatesCountedNotDoubled) {
  RecvStream s(4);
  s.on_data(0, {1, 2, 3, 4}, false);
  s.on_data(2, {3, 4, 5}, false);  // 2 bytes duplicate, 1 new
  EXPECT_EQ(s.duplicate_bytes(), 2u);
  EXPECT_EQ(s.contiguous_received(), 5u);
  EXPECT_EQ(s.read(10), (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
}

TEST(RecvStream, OverlappingRewriteKeepsConsistentData) {
  RecvStream s(4);
  s.on_data(0, {1, 1, 1}, false);
  s.on_data(1, {9, 9}, false);  // overlap rewrite (same data in practice)
  EXPECT_EQ(s.read(3), (std::vector<std::uint8_t>{1, 9, 9}));
}

TEST(RecvStream, FinAndFinished) {
  RecvStream s(4);
  s.on_data(0, {1, 2}, false);
  EXPECT_FALSE(s.final_size().has_value());
  s.on_data(2, {3}, true);
  ASSERT_TRUE(s.final_size().has_value());
  EXPECT_EQ(*s.final_size(), 3u);
  EXPECT_TRUE(s.fully_received());
  EXPECT_FALSE(s.finished());  // not yet consumed
  s.read(3);
  EXPECT_TRUE(s.finished());
}

TEST(RecvStream, EmptyFin) {
  RecvStream s(4);
  s.on_data(0, {}, true);
  ASSERT_TRUE(s.final_size().has_value());
  EXPECT_EQ(*s.final_size(), 0u);
  EXPECT_TRUE(s.finished());
}

TEST(RecvStream, FinArrivesBeforeGapFilled) {
  RecvStream s(4);
  s.on_data(5, {6}, true);
  EXPECT_FALSE(s.fully_received());
  s.on_data(0, {1, 2, 3, 4, 5}, false);
  EXPECT_TRUE(s.fully_received());
}

// --------------------------- adversarial fragmentation (hostile peer)

TEST(IntervalSet, CollapseToMergesSmallestGapFirst) {
  IntervalSet s;
  s.add(0, 10);
  s.add(12, 20);   // gap of 2 (smallest)
  s.add(120, 130); // gap of 100
  const std::uint64_t phantom = s.collapse_to(2);
  EXPECT_EQ(phantom, 2u);  // only the 2-byte gap was swallowed
  EXPECT_EQ(s.interval_count(), 2u);
  EXPECT_TRUE(s.contains(0, 20));
  EXPECT_FALSE(s.contains(20, 120));
  EXPECT_TRUE(s.contains(120, 130));
}

TEST(IntervalSet, CollapseToZeroTreatedAsOne) {
  IntervalSet s;
  s.add(0, 1);
  s.add(10, 11);
  s.add(20, 21);
  const std::uint64_t phantom = s.collapse_to(0);
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(phantom, 9u + 9u);
  EXPECT_TRUE(s.contains(0, 21));
}

TEST(IntervalSet, FragmentationSprayStaysBounded) {
  // The attack: single-byte ranges with a hole between each, forcing a new
  // map node per frame. With the cap, the node count never exceeds the
  // budget no matter how long the spray runs.
  IntervalSet s;
  std::uint64_t phantom = 0;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    s.add(2 * i, 2 * i + 1);
    if (s.interval_count() > 64) phantom += s.collapse_to(64);
  }
  EXPECT_LE(s.interval_count(), 64u);
  // Bytes accounting stays exact: real bytes + phantom == covered.
  EXPECT_EQ(s.covered_bytes(), 10000u + phantom);
}

TEST(RecvStream, GapCapCollapsesAndCountsPhantoms) {
  RecvStream s(4);
  s.set_max_gaps(8);
  for (std::uint64_t i = 0; i < 1000; ++i) s.on_data(2 * i, {0xaa}, false);
  EXPECT_LE(s.tracked_intervals(), 8u);
  EXPECT_GT(s.gap_collapses(), 0u);
  EXPECT_GT(s.phantom_bytes(), 0u);
}

TEST(RecvStream, LateRealDataOverwritesPhantomZeros) {
  // Soft-defense contract: a collapsed gap reads as zeros until the real
  // bytes arrive; on_data copies unconditionally, so late data heals it.
  RecvStream s(4);
  s.set_max_gaps(1);
  s.on_data(0, {1}, false);
  s.on_data(4, {5}, false);  // gap [1,4) collapses to phantom zeros
  EXPECT_EQ(s.tracked_intervals(), 1u);
  auto first = s.read(5);
  ASSERT_EQ(first.size(), 5u);
  EXPECT_EQ(first[1], 0u);  // phantom

  RecvStream healed(8);
  healed.set_max_gaps(1);
  healed.on_data(0, {1}, false);
  healed.on_data(4, {5}, false);
  healed.on_data(1, {2, 3, 4}, false);  // the real bytes arrive late
  auto bytes = healed.read(5);
  ASSERT_EQ(bytes.size(), 5u);
  EXPECT_EQ(bytes, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
}

TEST(RecvStream, UnlimitedGapsByDefault) {
  RecvStream s(4);
  for (std::uint64_t i = 0; i < 500; ++i) s.on_data(2 * i, {0xbb}, false);
  EXPECT_EQ(s.tracked_intervals(), 500u);
  EXPECT_EQ(s.gap_collapses(), 0u);
}

}  // namespace
}  // namespace xlink::quic
