// Tests: the standalone QoE feedback sender (QOE_CONTROL_SIGNALS frames
// decoupled from ack frequency).
#include <gtest/gtest.h>

#include "core/qoe_feedback.h"
#include "mpquic/schedulers.h"
#include "test_support.h"

namespace xlink::core {
namespace {

struct FeedbackFixture {
  FeedbackFixture() {
    test::WirePair::Options o;
    o.client_config = test::multipath_config();
    o.server_config = test::multipath_config();
    o.client_config.scheduler = mpquic::make_min_rtt_scheduler();
    o.server_config.scheduler = mpquic::make_min_rtt_scheduler();
    pair = std::make_unique<test::WirePair>(std::move(o));
    pair->server->on_qoe_feedback = [this](const quic::QoeSignal& q) {
      ++received;
      last = q;
    };
  }

  std::unique_ptr<test::WirePair> pair;
  int received = 0;
  std::optional<quic::QoeSignal> last;
};

quic::QoeSignal signal_ms(std::uint64_t playtime_ms) {
  quic::QoeSignal q;
  q.fps = 30;
  q.bps = 2'000'000;
  q.cached_frames = playtime_ms * 30 / 1000;
  q.cached_bytes = playtime_ms * q.bps / 8 / 1000;
  return q;
}

TEST(QoeFeedbackSender, SendsOnMaterialChangeOnly) {
  FeedbackFixture fx;
  quic::QoeSignal current = signal_ms(1000);
  QoeFeedbackSender sender(
      *fx.pair->client, [&current]() { return current; },
      {sim::millis(50), sim::seconds(10), 0.2});
  ASSERT_TRUE(fx.pair->establish());
  fx.pair->run_for(sim::millis(300));
  const int after_first = fx.received;
  EXPECT_GE(after_first, 1);  // initial snapshot goes out

  // Signal barely moves (< 20%): nothing new within the heartbeat window.
  current = signal_ms(1050);
  fx.pair->run_for(sim::millis(300));
  EXPECT_EQ(fx.received, after_first);

  // Material drop: sent promptly.
  current = signal_ms(300);
  fx.pair->run_for(sim::millis(300));
  EXPECT_GT(fx.received, after_first);
  ASSERT_TRUE(fx.last.has_value());
  EXPECT_EQ(fx.last->cached_frames, 9u);  // 300ms at 30fps
}

TEST(QoeFeedbackSender, HeartbeatCoversQuietPlayers) {
  FeedbackFixture fx;
  const quic::QoeSignal steady = signal_ms(2000);
  QoeFeedbackSender sender(
      *fx.pair->client, [&steady]() { return steady; },
      {sim::millis(50), sim::millis(400), 0.2});
  ASSERT_TRUE(fx.pair->establish());
  fx.pair->run_for(sim::seconds(2));
  // ~1 initial + heartbeat every ~400ms over ~2s.
  EXPECT_GE(fx.received, 4);
  EXPECT_LE(fx.received, 8);
}

TEST(QoeFeedbackSender, NoProviderSignalNoTraffic) {
  FeedbackFixture fx;
  QoeFeedbackSender sender(
      *fx.pair->client, []() { return std::nullopt; },
      {sim::millis(50), sim::millis(200), 0.2});
  ASSERT_TRUE(fx.pair->establish());
  fx.pair->run_for(sim::seconds(1));
  EXPECT_EQ(fx.received, 0);
  EXPECT_EQ(sender.frames_sent(), 0u);
}

TEST(QoeFeedbackSender, StopsCleanlyOnDestruction) {
  FeedbackFixture fx;
  {
    QoeFeedbackSender sender(
        *fx.pair->client, []() { return signal_ms(100); },
        {sim::millis(50), sim::millis(100), 0.2});
    ASSERT_TRUE(fx.pair->establish());
    fx.pair->run_for(sim::millis(200));
  }
  const int at_destruction = fx.received;
  fx.pair->run_for(sim::seconds(1));
  EXPECT_EQ(fx.received, at_destruction);
}

}  // namespace
}  // namespace xlink::core
