// Shared helpers for transport tests: a pair of connections joined by a
// configurable in-memory wire (fixed delay, scripted drops) -- no link
// emulation, so tests can isolate protocol behaviour.
#pragma once

#include <functional>
#include <memory>

#include "quic/connection.h"
#include "sim/event_loop.h"

namespace xlink::test {

class WirePair {
 public:
  struct Options {
    sim::Duration client_to_server = sim::millis(10);
    sim::Duration server_to_client = sim::millis(10);
    quic::Connection::Config client_config;
    quic::Connection::Config server_config;
  };

  explicit WirePair(Options options) : options_(std::move(options)) {
    options_.client_config.role = quic::Role::kClient;
    options_.server_config.role = quic::Role::kServer;
    client = std::make_unique<quic::Connection>(loop, options_.client_config);
    server = std::make_unique<quic::Connection>(loop, options_.server_config);

    client->set_send_callback(
        [this](quic::PathId path, net::Datagram d) {
          if (drop_client_to_server && drop_client_to_server(path, d)) return;
          ++packets_c2s;
          loop.schedule_in(options_.client_to_server,
                           [this, path, d = std::move(d)]() mutable {
                             server->on_datagram(path, std::move(d));
                           });
        });
    server->set_send_callback(
        [this](quic::PathId path, net::Datagram d) {
          if (drop_server_to_client && drop_server_to_client(path, d)) return;
          ++packets_s2c;
          loop.schedule_in(options_.server_to_client,
                           [this, path, d = std::move(d)]() mutable {
                             client->on_datagram(path, std::move(d));
                           });
        });
  }

  /// Runs the loop for `duration` of simulated time.
  void run_for(sim::Duration duration) { loop.run_until(loop.now() + duration); }

  /// Connects and runs until established (or the deadline).
  bool establish(sim::Duration deadline = sim::seconds(2)) {
    client->connect();
    const sim::Time until = loop.now() + deadline;
    while (loop.now() < until &&
           !(client->is_established() && server->is_established())) {
      loop.run_until(loop.now() + sim::millis(5));
    }
    return client->is_established() && server->is_established();
  }

  sim::EventLoop loop;
  Options options_;
  std::unique_ptr<quic::Connection> client;
  std::unique_ptr<quic::Connection> server;
  std::function<bool(quic::PathId, const net::Datagram&)> drop_client_to_server;
  std::function<bool(quic::PathId, const net::Datagram&)> drop_server_to_client;
  std::uint64_t packets_c2s = 0;
  std::uint64_t packets_s2c = 0;
};

inline quic::Connection::Config multipath_config() {
  quic::Connection::Config cfg;
  cfg.params.enable_multipath = true;
  return cfg;
}

inline std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

inline std::vector<std::uint8_t> pattern_bytes(std::size_t n,
                                               std::uint8_t seed = 1) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<std::uint8_t>(seed + i * 131);
  return out;
}

}  // namespace xlink::test
