// Property-style end-to-end tests: invariants that must hold for every
// transport scheme across a sweep of network conditions.
//
//  - Downloads complete and content is byte-exact.
//  - No AEAD authentication failures between honest endpoints.
//  - Schemes without re-injection never emit duplicate traffic.
//  - Re-injection cost stays bounded.
//  - Single-path schemes never touch the second path.
//  - The client never reads bytes the server did not serve (conservation).
#include <gtest/gtest.h>

#include "harness/scenario.h"
#include "trace/synthetic.h"

namespace xlink {
namespace {

struct SweepParam {
  core::Scheme scheme;
  double loss;
  int rtt_gap;  // secondary one-way delay multiplier
  std::uint64_t seed;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  auto s = core::to_string(info.param.scheme);
  for (auto& c : s)
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  return s + "_loss" + std::to_string(static_cast<int>(info.param.loss * 1000)) +
         "_gap" + std::to_string(info.param.rtt_gap) + "_s" +
         std::to_string(info.param.seed);
}

class E2eSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(E2eSweep, InvariantsHold) {
  const SweepParam& param = GetParam();
  harness::SessionConfig cfg;
  cfg.scheme = param.scheme;
  cfg.seed = param.seed;
  cfg.video.duration = sim::seconds(4);
  cfg.video.bitrate_bps = 2'000'000;
  cfg.video.seed = param.seed;
  cfg.client.chunk_bytes = 192 * 1024;
  cfg.client.verify_content = true;
  cfg.time_limit = sim::seconds(60);
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kWifi, trace::stable_lte(param.seed, sim::seconds(20)),
      sim::millis(30), param.loss));
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kLte,
      trace::stable_lte(param.seed + 1, sim::seconds(20)),
      sim::millis(30) * static_cast<std::uint64_t>(param.rtt_gap),
      param.loss));

  harness::Session session(std::move(cfg));
  const auto result = session.run();

  // Completion.
  EXPECT_TRUE(result.download_finished);
  EXPECT_TRUE(result.video_finished);
  // Integrity.
  EXPECT_EQ(session.media_client().content_mismatches(), 0u);
  EXPECT_EQ(session.client_conn().stats().auth_failures, 0u);
  EXPECT_EQ(session.server_conn().stats().auth_failures, 0u);
  // Conservation: the client's contiguous bytes equal the video size.
  EXPECT_EQ(session.media_client().contiguous_bytes(),
            session.video_model().total_bytes());

  const auto& server = session.server_conn().stats();
  if (param.scheme == core::Scheme::kSinglePath ||
      param.scheme == core::Scheme::kVanillaMp ||
      param.scheme == core::Scheme::kMptcpLike) {
    EXPECT_EQ(server.reinjected_bytes, 0u)
        << "scheme must not duplicate traffic";
  }
  if (param.scheme == core::Scheme::kXlink) {
    // Cost bound: on healthy paths XLINK duplicates a small fraction.
    EXPECT_LT(server.redundancy_ratio(), 0.35);
  }
  if (param.scheme == core::Scheme::kSinglePath) {
    ASSERT_EQ(result.path_down_bytes.size(), 2u);
    EXPECT_EQ(result.path_down_bytes[1], 0u);
  }
  // Loss accounting is sane: lossy runs retransmit, lossless ones do not.
  if (param.loss == 0.0) {
    EXPECT_EQ(server.packets_lost, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesByConditions, E2eSweep,
    ::testing::Values(
        SweepParam{core::Scheme::kSinglePath, 0.0, 1, 1},
        SweepParam{core::Scheme::kSinglePath, 0.01, 3, 2},
        SweepParam{core::Scheme::kVanillaMp, 0.0, 1, 3},
        SweepParam{core::Scheme::kVanillaMp, 0.01, 3, 4},
        SweepParam{core::Scheme::kVanillaMp, 0.02, 6, 5},
        SweepParam{core::Scheme::kMptcpLike, 0.01, 2, 6},
        SweepParam{core::Scheme::kRedundant, 0.01, 2, 7},
        SweepParam{core::Scheme::kReinjectNoQoe, 0.0, 2, 8},
        SweepParam{core::Scheme::kReinjectNoQoe, 0.02, 4, 9},
        SweepParam{core::Scheme::kXlink, 0.0, 1, 10},
        SweepParam{core::Scheme::kXlink, 0.01, 3, 11},
        SweepParam{core::Scheme::kXlink, 0.02, 6, 12},
        SweepParam{core::Scheme::kConnMigration, 0.01, 2, 13}),
    param_name);

// An outage mid-download must not prevent eventual completion under any
// multipath scheme; XLINK must additionally keep the stall shorter than
// vanilla on the same conditions.
TEST(E2eOutage, XlinkShortensStallVsVanilla) {
  auto run = [](core::Scheme scheme) {
    harness::SessionConfig cfg;
    cfg.scheme = scheme;
    cfg.seed = 21;
    cfg.video.duration = sim::seconds(10);
    cfg.video.bitrate_bps = 3'000'000;
    cfg.client.chunk_bytes = 256 * 1024;
    cfg.time_limit = sim::seconds(60);
    cfg.wireless_aware_primary = false;
    std::vector<std::pair<double, sim::Duration>> wifi_rate{
        {10.0, sim::millis(1200)},
        {0.05, sim::millis(2500)},
        {10.0, sim::seconds(26)}};
    std::vector<std::uint32_t> ms;
    double credit = 0;
    std::uint64_t t = 0;
    for (auto& [mbps, d] : wifi_rate) {
      for (std::uint64_t i = 0; i < d / sim::kMillisecond; ++i) {
        ++t;
        credit += mbps * 1e6 / 8 / 1500 / 1000;
        while (credit >= 1) {
          ms.push_back(static_cast<std::uint32_t>(t));
          credit -= 1;
        }
      }
    }
    cfg.paths.push_back(harness::make_path_spec(
        net::Wireless::kWifi, trace::LinkTrace(ms), sim::millis(40)));
    cfg.paths.push_back(harness::make_path_spec(
        net::Wireless::kLte,
        trace::constant_rate_trace(5.0, sim::seconds(30)),
        sim::millis(90)));
    harness::Session session(std::move(cfg));
    return session.run();
  };
  const auto vanilla = run(core::Scheme::kVanillaMp);
  const auto xlink = run(core::Scheme::kXlink);
  EXPECT_TRUE(vanilla.download_finished);
  EXPECT_TRUE(xlink.download_finished);
  EXPECT_LE(xlink.rebuffer_seconds, vanilla.rebuffer_seconds);
  EXPECT_GT(xlink.reinjected_bytes, 0u);
}

}  // namespace
}  // namespace xlink
