// Unit tests: emulated links, droptail queues, loss models, paths.
#include <gtest/gtest.h>

#include "net/link.h"
#include "net/network.h"
#include "net/path.h"

namespace xlink::net {
namespace {

Datagram packet_of(std::size_t n) { return Datagram(n, 0xab); }

TEST(TraceLink, DeliversAtOpportunityPlusPropagation) {
  sim::EventLoop loop;
  LinkConfig cfg;
  cfg.propagation_delay = sim::millis(5);
  TraceLink link(loop, trace::LinkTrace({10, 20, 30}), cfg, sim::Rng(1));
  std::vector<sim::Time> arrivals;
  link.set_receiver([&](Datagram) { arrivals.push_back(loop.now()); });
  link.send(packet_of(100));
  link.send(packet_of(100));
  loop.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], sim::millis(15));  // opportunity@10 + 5ms
  EXPECT_EQ(arrivals[1], sim::millis(25));
}

TEST(TraceLink, ConsumesOpportunitiesMonotonically) {
  sim::EventLoop loop;
  TraceLink link(loop, trace::LinkTrace({10, 20, 30}), LinkConfig{},
                 sim::Rng(1));
  int delivered = 0;
  link.set_receiver([&](Datagram) { ++delivered; });
  // Send one packet, let it depart, then send another: the second must use
  // a LATER opportunity, not re-use the first.
  link.send(packet_of(50));
  loop.run_until(sim::millis(12));
  link.send(packet_of(50));
  loop.run();
  EXPECT_EQ(delivered, 2);
}

TEST(TraceLink, LoopsTraceBeyondPeriod) {
  sim::EventLoop loop;
  LinkConfig cfg;
  cfg.propagation_delay = 0;
  TraceLink link(loop, trace::LinkTrace({5, 10}), cfg, sim::Rng(1));
  std::vector<sim::Time> arrivals;
  link.set_receiver([&](Datagram) { arrivals.push_back(loop.now()); });
  for (int i = 0; i < 4; ++i) link.send(packet_of(10));
  loop.run();
  ASSERT_EQ(arrivals.size(), 4u);
  EXPECT_EQ(arrivals[2], sim::millis(15));  // second period: 10+5
  EXPECT_EQ(arrivals[3], sim::millis(20));
}

TEST(TraceLink, DroptailDropsWhenFull) {
  sim::EventLoop loop;
  LinkConfig cfg;
  cfg.queue_capacity_bytes = 250;
  TraceLink link(loop, trace::LinkTrace({1000}), cfg, sim::Rng(1));
  link.set_receiver([](Datagram) {});
  link.send(packet_of(100));
  link.send(packet_of(100));
  link.send(packet_of(100));  // 300 > 250: dropped
  EXPECT_EQ(link.stats().packets_dropped_queue, 1u);
  EXPECT_EQ(link.queued_bytes(), 200u);
  loop.run();
  EXPECT_EQ(link.stats().packets_delivered, 2u);
}

TEST(FixedRateLink, SerializesAtConfiguredRate) {
  sim::EventLoop loop;
  LinkConfig cfg;
  cfg.propagation_delay = 0;
  // 1 Mbps; a 1250-byte packet takes 10 ms.
  FixedRateLink link(loop, 1e6, cfg, sim::Rng(1));
  std::vector<sim::Time> arrivals;
  link.set_receiver([&](Datagram) { arrivals.push_back(loop.now()); });
  link.send(packet_of(1250));
  link.send(packet_of(1250));
  loop.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], sim::millis(10));
  EXPECT_EQ(arrivals[1], sim::millis(20));
}

TEST(FixedRateLink, IdleGapDoesNotAccumulateCredit) {
  sim::EventLoop loop;
  LinkConfig cfg;
  cfg.propagation_delay = 0;
  FixedRateLink link(loop, 1e6, cfg, sim::Rng(1));
  std::vector<sim::Time> arrivals;
  link.set_receiver([&](Datagram) { arrivals.push_back(loop.now()); });
  loop.run_until(sim::millis(100));
  link.send(packet_of(1250));
  loop.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], sim::millis(110));  // starts serializing at send
}

TEST(LossModels, BernoulliRate) {
  sim::Rng rng(3);
  BernoulliLoss loss(0.25);
  int drops = 0;
  for (int i = 0; i < 10000; ++i) drops += loss.should_drop(0, rng);
  EXPECT_NEAR(drops / 10000.0, 0.25, 0.02);
}

TEST(LossModels, NoLossNeverDrops) {
  sim::Rng rng(3);
  NoLoss loss;
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(loss.should_drop(0, rng));
}

TEST(LossModels, OutageWindowsDropInsideOnly) {
  sim::Rng rng(3);
  OutageWindows loss({{sim::millis(10), sim::millis(20)}});
  EXPECT_FALSE(loss.should_drop(sim::millis(9), rng));
  EXPECT_TRUE(loss.should_drop(sim::millis(10), rng));
  EXPECT_TRUE(loss.should_drop(sim::millis(19), rng));
  EXPECT_FALSE(loss.should_drop(sim::millis(20), rng));
}

TEST(LossModels, GilbertElliottBursts) {
  sim::Rng rng(5);
  // Sticky bad state with certain loss inside it.
  GilbertElliottLoss loss(0.05, 0.2, 0.0, 1.0);
  int drops = 0;
  int burst = 0, max_burst = 0;
  for (int i = 0; i < 20000; ++i) {
    if (loss.should_drop(0, rng)) {
      ++drops;
      ++burst;
      max_burst = std::max(max_burst, burst);
    } else {
      burst = 0;
    }
  }
  // Stationary bad-state probability = 0.05/(0.05+0.2) = 0.2.
  EXPECT_NEAR(drops / 20000.0, 0.2, 0.05);
  EXPECT_GE(max_burst, 5);  // losses come in runs
}

TEST(LossModels, CompositeAdvancesAllModels) {
  sim::Rng rng(7);
  std::vector<std::unique_ptr<LossModel>> models;
  models.push_back(std::make_unique<OutageWindows>(
      std::vector<OutageWindows::Window>{{0, sim::millis(5)}}));
  models.push_back(std::make_unique<BernoulliLoss>(0.0));
  CompositeLoss composite(std::move(models));
  EXPECT_TRUE(composite.should_drop(sim::millis(1), rng));
  EXPECT_FALSE(composite.should_drop(sim::millis(10), rng));
}

TEST(EmulatedPath, RoutesBothDirections) {
  sim::EventLoop loop;
  PathSpec spec;
  spec.fixed_rate_mbps = 10.0;
  spec.one_way_delay = sim::millis(10);
  EmulatedPath path(loop, spec, sim::Rng(1));
  int up = 0, down = 0;
  path.set_up_receiver([&](Datagram) { ++up; });
  path.set_down_receiver([&](Datagram) { ++down; });
  path.send_up(packet_of(100));
  path.send_down(packet_of(100));
  loop.run();
  EXPECT_EQ(up, 1);
  EXPECT_EQ(down, 1);
  EXPECT_EQ(path.base_rtt(), sim::millis(20));
}

TEST(EmulatedPath, TraceOnDownlinkFixedOnUplink) {
  sim::EventLoop loop;
  PathSpec spec;
  spec.down_trace = trace::LinkTrace({50});
  spec.fixed_rate_mbps = 20.0;
  spec.one_way_delay = 0;
  EmulatedPath path(loop, spec, sim::Rng(1));
  sim::Time down_at = 0;
  path.set_down_receiver([&](Datagram) { down_at = loop.now(); });
  path.send_down(packet_of(100));
  loop.run();
  EXPECT_EQ(down_at, sim::millis(50));
}

TEST(EmulatedPath, LossRateApplies) {
  sim::EventLoop loop;
  PathSpec spec;
  spec.fixed_rate_mbps = 100.0;
  spec.loss_rate = 0.5;
  spec.one_way_delay = 0;
  EmulatedPath path(loop, spec, sim::Rng(1));
  int received = 0;
  path.set_down_receiver([&](Datagram) { ++received; });
  for (int i = 0; i < 400; ++i) path.send_down(packet_of(100));
  loop.run();
  EXPECT_GT(received, 120);
  EXPECT_LT(received, 280);
  EXPECT_EQ(path.down_stats().packets_dropped_loss +
                static_cast<std::uint64_t>(received),
            400u);
}

TEST(Network, AddsPathsAndAggregatesStats) {
  sim::EventLoop loop;
  Network net(loop, sim::Rng(2));
  PathSpec spec;
  spec.fixed_rate_mbps = 10.0;
  spec.one_way_delay = 0;
  EXPECT_EQ(net.add_path(spec), 0u);
  EXPECT_EQ(net.add_path(spec), 1u);
  EXPECT_EQ(net.path_count(), 2u);
  net.path(0).set_down_receiver([](Datagram) {});
  net.path(0).send_down(packet_of(500));
  loop.run();
  EXPECT_EQ(net.total_down_enqueued_bytes(), 500u);
}

}  // namespace
}  // namespace xlink::net
