// End-to-end smoke tests: a full video session over each transport scheme.
#include <gtest/gtest.h>

#include "harness/ab_test.h"
#include "harness/scenario.h"
#include "trace/synthetic.h"

namespace xlink {
namespace {

harness::SessionConfig small_session(core::Scheme scheme) {
  harness::SessionConfig cfg;
  cfg.scheme = scheme;
  cfg.video.duration = sim::seconds(4);
  cfg.video.bitrate_bps = 2'000'000;
  cfg.video.fps = 30;
  cfg.client.chunk_bytes = 256 * 1024;
  cfg.client.max_concurrent = 2;
  cfg.client.verify_content = true;
  cfg.time_limit = sim::seconds(60);
  cfg.seed = 7;

  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kWifi, trace::stable_lte(11, sim::seconds(20)),
      sim::millis(30)));
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kLte, trace::stable_lte(13, sim::seconds(20)),
      sim::millis(80)));
  return cfg;
}

class SchemeSmoke : public ::testing::TestWithParam<core::Scheme> {};

TEST_P(SchemeSmoke, DownloadsAndPlaysVideo) {
  harness::Session session(small_session(GetParam()));
  const auto result = session.run();
  EXPECT_TRUE(result.download_finished)
      << core::to_string(GetParam()) << " did not finish the download";
  EXPECT_TRUE(result.video_finished);
  ASSERT_TRUE(result.first_frame_seconds.has_value());
  EXPECT_GT(*result.first_frame_seconds, 0.0);
  EXPECT_LT(*result.first_frame_seconds, 5.0);
  EXPECT_EQ(session.media_client().content_mismatches(), 0u);
  EXPECT_GT(result.stream_payload_bytes, 900'000u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeSmoke,
    ::testing::Values(core::Scheme::kSinglePath, core::Scheme::kVanillaMp,
                      core::Scheme::kMptcpLike, core::Scheme::kRedundant,
                      core::Scheme::kReinjectNoQoe, core::Scheme::kXlink,
                      core::Scheme::kConnMigration),
    [](const auto& info) {
      auto s = core::to_string(info.param);
      for (auto& c : s)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return s;
    });

TEST(MultipathSmoke, XlinkUsesBothPaths) {
  auto cfg = small_session(core::Scheme::kXlink);
  harness::Session session(cfg);
  const auto result = session.run();
  ASSERT_TRUE(result.download_finished);
  ASSERT_EQ(result.path_down_bytes.size(), 2u);
  EXPECT_GT(result.path_down_bytes[0], 0u);
  EXPECT_GT(result.path_down_bytes[1], 0u);
}

TEST(MultipathSmoke, SinglePathStaysOnPrimary) {
  auto cfg = small_session(core::Scheme::kSinglePath);
  harness::Session session(cfg);
  const auto result = session.run();
  ASSERT_TRUE(result.download_finished);
  ASSERT_EQ(result.path_down_bytes.size(), 2u);
  EXPECT_EQ(result.path_down_bytes[1], 0u);
}

}  // namespace
}  // namespace xlink
