// Deterministic fuzz sweep over the wire parsers.
//
// Not a coverage-guided fuzzer: an exhaustive small-input sweep that runs
// in CI under ASan/UBSan. For one exemplar of every frame type we check
// the round trip, then parse every truncation prefix and every single-bit
// flip of its encoding -- the parser must return a value or nullopt, never
// assert, read out of bounds, or overflow. Sealed packets get the same
// sweep through parse_packet/open_packet, where every bit flip must be
// rejected (header flips change the AAD, payload flips break the MAC).
#include <gtest/gtest.h>

#include "quic/crypto.h"
#include "quic/frame.h"
#include "quic/packet.h"

namespace xlink::quic {
namespace {

std::vector<Frame> exemplar_frames() {
  AckInfo multi_range;
  multi_range.ack_delay_us = 4800;
  multi_range.ranges = {{17, 23}, {9, 12}, {2, 5}};

  AckMpFrame ack_mp;
  ack_mp.path_id = 3;
  ack_mp.info = multi_range;
  ack_mp.qoe = QoeSignal{123456, 48, 2'500'000, 30};

  NewConnectionIdFrame ncid;
  ncid.sequence = 4;
  ncid.retire_prior_to = 1;
  for (std::size_t i = 0; i < ncid.cid.size(); ++i)
    ncid.cid[i] = static_cast<std::uint8_t>(0xA0 + i);
  for (std::size_t i = 0; i < ncid.reset_token.size(); ++i)
    ncid.reset_token[i] = static_cast<std::uint8_t>(i);

  PathChallengeFrame challenge;
  challenge.data = {1, 2, 3, 4, 5, 6, 7, 8};
  PathResponseFrame response;
  response.data = challenge.data;

  RepairFrame repair;
  repair.path_id = 1;
  repair.window_id = 42;
  repair.first_pn = 336;
  repair.k = 8;
  repair.repair_count = 2;
  repair.symbol_index = 1;
  repair.payload = {0x00, 0x10, 0xAA, 0xBB, 0xCC};

  return {
      Frame{PaddingFrame{3}},
      Frame{PingFrame{}},
      Frame{AckFrame{multi_range}},
      Frame{ack_mp},
      Frame{PathStatusFrame{2, 7, PathStatusKind::kStandby}},
      Frame{QoeControlSignalsFrame{QoeSignal{999, 12, 1'000'000, 25}}},
      Frame{repair},
      Frame{CryptoFrame{64, {0xDE, 0xAD, 0xBE, 0xEF}}},
      Frame{StreamFrame{8, 4096, {1, 2, 3, 4, 5}, true}},
      Frame{MaxDataFrame{1 << 20}},
      Frame{MaxStreamDataFrame{8, 1 << 18}},
      Frame{ResetStreamFrame{8, 11, 777}},
      Frame{StopSendingFrame{8, 11}},
      Frame{ncid},
      Frame{challenge},
      Frame{response},
      Frame{HandshakeDoneFrame{}},
      Frame{ConnectionCloseFrame{42, "fuzz sweep"}},
  };
}

std::vector<std::uint8_t> encode_one(const Frame& f) {
  Writer w;
  encode_frame(f, w);
  return w.take();
}

TEST(ParserFuzz, EveryFrameTypeRoundTrips) {
  for (const Frame& f : exemplar_frames()) {
    const auto wire = encode_one(f);
    const auto parsed = parse_frames(wire);
    ASSERT_TRUE(parsed.has_value()) << "frame index " << f.index();
    ASSERT_EQ(parsed->size(), 1u);
    EXPECT_EQ(parsed->front(), f) << "frame index " << f.index();
  }
}

TEST(ParserFuzz, TruncationAtEveryOffsetNeverCrashes) {
  for (const Frame& f : exemplar_frames()) {
    const auto wire = encode_one(f);
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
      const std::span<const std::uint8_t> prefix(wire.data(), cut);
      const auto parsed = parse_frames(prefix);
      // A strict prefix either fails or parses to something that encodes
      // back to exactly the prefix (e.g. a shorter padding run); it must
      // never "invent" trailing bytes.
      if (parsed) {
        Writer w;
        for (const Frame& pf : *parsed) encode_frame(pf, w);
        EXPECT_EQ(w.data(),
                  std::vector<std::uint8_t>(wire.begin(), wire.begin() + cut))
            << "frame index " << f.index() << " cut " << cut;
      }
    }
  }
}

TEST(ParserFuzz, BitFlipAtEveryPositionNeverCrashes) {
  for (const Frame& f : exemplar_frames()) {
    const auto wire = encode_one(f);
    for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
      std::vector<std::uint8_t> mutated = wire;
      mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      // Must not crash / overflow; the result itself is unconstrained
      // (a flip can produce a different but valid frame).
      (void)parse_frames(mutated);
    }
  }
}

TEST(ParserFuzz, GarbageInputsNeverCrash) {
  // Deterministic pseudo-random garbage, plus adversarial shapes: huge
  // varint length prefixes with no data behind them.
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return static_cast<std::uint8_t>(x);
  };
  for (int round = 0; round < 256; ++round) {
    std::vector<std::uint8_t> buf(round);
    for (auto& b : buf) b = next();
    (void)parse_frames(buf);
  }
  // CRYPTO frame claiming 2^30 bytes of data it does not carry.
  const std::vector<std::uint8_t> liar = {0x06, 0x00, 0xC0, 0x00, 0x00,
                                          0x00, 0x40, 0x00, 0x00, 0x00};
  EXPECT_FALSE(parse_frames(liar).has_value());
}

TEST(ParserFuzz, StreamOffsetOverflowIsRejected) {
  // STREAM with OFF|LEN, offset = kVarintMax, length = 1: final size would
  // overflow 2^62 and must be rejected, not wrapped.
  Writer w;
  w.varint(0x08 | 0x04 | 0x02);
  w.varint(5);           // stream id
  w.varint(kVarintMax);  // offset
  w.varint(1);           // length
  w.u8(0xFF);
  EXPECT_FALSE(parse_frames(w.data()).has_value());

  Writer c;
  c.varint(0x06);        // CRYPTO
  c.varint(kVarintMax);  // offset
  c.varint(1);
  c.u8(0xFF);
  EXPECT_FALSE(parse_frames(c.data()).has_value());
}

TEST(ParserFuzz, SealedPacketSurvivesTruncationAndRejectsEveryBitFlip) {
  const PacketProtection aead(0x1234'5678'9ABC'DEF0ull);
  PacketHeader header;
  header.type = PacketType::kOneRtt;
  header.dcid = {9, 9, 9, 9, 9, 9, 9, 9};
  header.cid_sequence = 2;
  header.packet_number = 41;
  const std::vector<Frame> frames = {
      Frame{StreamFrame{4, 128, {10, 20, 30, 40}, false}},
      Frame{PingFrame{}},
  };
  const auto wire = seal_packet(aead, header, frames);

  // Sanity: the untampered packet opens.
  {
    const auto pkt = parse_packet(wire);
    ASSERT_TRUE(pkt.has_value());
    const auto opened = open_packet(aead, *pkt);
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(*opened, frames);
  }

  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(wire.data(), cut);
    const auto pkt = parse_packet(prefix);
    if (!pkt) continue;
    // Header parsed but the ciphertext is truncated: AEAD must reject.
    EXPECT_FALSE(open_packet(aead, *pkt).has_value()) << "cut " << cut;
  }

  for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
    std::vector<std::uint8_t> mutated = wire;
    mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    const auto pkt = parse_packet(mutated);
    if (!pkt) continue;  // header flip made it unparseable: fine
    EXPECT_FALSE(open_packet(aead, *pkt).has_value())
        << "bit " << bit << " must break the AEAD tag";
  }
}

}  // namespace
}  // namespace xlink::quic
