// Tests: multipath schedulers, the re-injection engine, the double
// thresholding controller, and QoE interpretation.
#include <gtest/gtest.h>

#include "core/double_threshold.h"
#include "core/qoe_signals.h"
#include "core/reinjection.h"
#include "core/xlink_scheduler.h"
#include "mpquic/schedulers.h"
#include "test_support.h"

namespace xlink {
namespace {

using core::ControlMode;
using core::DoubleThresholdConfig;
using core::DoubleThresholdController;
using quic::QoeSignal;
using test::WirePair;

QoeSignal qoe_with_playtime_ms(std::uint64_t ms) {
  // 30 fps; frames = ms * 30 / 1000; bytes chosen to agree.
  QoeSignal q;
  q.fps = 30;
  q.bps = 2'000'000;
  q.cached_frames = ms * 30 / 1000;
  q.cached_bytes = ms * q.bps / 8 / 1000;
  return q;
}

TEST(PlayTimeLeft, ConservativeMinimumOfBothEstimates) {
  QoeSignal q;
  q.fps = 30;
  q.cached_frames = 60;     // 2s by frames
  q.bps = 1'000'000;
  q.cached_bytes = 125'000;  // 1s by bytes
  const auto dt = core::play_time_left(q);
  ASSERT_TRUE(dt.has_value());
  EXPECT_EQ(*dt, sim::seconds(1));
}

TEST(PlayTimeLeft, FallsBackToSingleSignal) {
  QoeSignal q;
  q.fps = 30;
  q.cached_frames = 30;
  const auto dt = core::play_time_left(q);  // no bitrate info
  ASSERT_TRUE(dt.has_value());
  EXPECT_EQ(*dt, sim::seconds(1));
  QoeSignal q2;
  q2.bps = 800'000;
  q2.cached_bytes = 100'000;
  ASSERT_TRUE(core::play_time_left(q2).has_value());
  EXPECT_EQ(*core::play_time_left(q2), sim::seconds(1));
}

TEST(PlayTimeLeft, NoRatesMeansNoEstimate) {
  QoeSignal q;
  q.cached_bytes = 1000;
  q.cached_frames = 10;
  EXPECT_FALSE(core::play_time_left(q).has_value());
}

TEST(DoubleThreshold, Step2LowBufferTurnsOn) {
  DoubleThresholdController c({sim::millis(400), sim::millis(1500),
                               ControlMode::kDoubleThreshold});
  EXPECT_TRUE(c.decide(qoe_with_playtime_ms(100), sim::millis(50)));
  EXPECT_TRUE(c.decide(qoe_with_playtime_ms(399), std::nullopt));
}

TEST(DoubleThreshold, Step2HighBufferTurnsOff) {
  DoubleThresholdController c({sim::millis(400), sim::millis(1500),
                               ControlMode::kDoubleThreshold});
  EXPECT_FALSE(c.decide(qoe_with_playtime_ms(2000), sim::millis(5000)));
}

TEST(DoubleThreshold, Step3ComparesDeliverTime) {
  DoubleThresholdController c({sim::millis(400), sim::millis(1500),
                               ControlMode::kDoubleThreshold});
  // Medium buffer (800ms): on iff deliverTime_max exceeds it.
  EXPECT_TRUE(c.decide(qoe_with_playtime_ms(800), sim::millis(900)));
  EXPECT_FALSE(c.decide(qoe_with_playtime_ms(800), sim::millis(700)));
  // Nothing in flight: nothing can be late.
  EXPECT_FALSE(c.decide(qoe_with_playtime_ms(800), std::nullopt));
}

TEST(DoubleThreshold, NoFeedbackMeansUrgent) {
  DoubleThresholdController c({sim::millis(400), sim::millis(1500),
                               ControlMode::kDoubleThreshold});
  EXPECT_TRUE(c.decide(std::nullopt, std::nullopt));
}

TEST(DoubleThreshold, AblationModes) {
  DoubleThresholdController on({0, 0, ControlMode::kAlwaysOn});
  DoubleThresholdController off({0, 0, ControlMode::kAlwaysOff});
  EXPECT_TRUE(on.decide(qoe_with_playtime_ms(10000), std::nullopt));
  EXPECT_FALSE(off.decide(qoe_with_playtime_ms(0), sim::seconds(10)));
}

// ---------------------------------------------------------------- wiring

WirePair::Options two_path_pair(std::shared_ptr<quic::Scheduler> sched) {
  WirePair::Options o;
  o.client_config = test::multipath_config();
  o.server_config = test::multipath_config();
  o.server_config.scheduler = std::move(sched);
  o.client_config.scheduler = mpquic::make_min_rtt_scheduler();
  return o;
}

/// Establishes a two-path pair where server->client on path `slow` is
/// delayed far more than the other path.
struct TwoPathFixture {
  explicit TwoPathFixture(std::shared_ptr<quic::Scheduler> sched)
      : pair(two_path_pair(std::move(sched))) {
    EXPECT_TRUE(pair.establish());
    pair.run_for(sim::millis(100));
    EXPECT_TRUE(pair.client->open_path().has_value());
    pair.run_for(sim::millis(200));
    EXPECT_EQ(pair.server->active_path_ids().size(), 2u);
  }
  WirePair pair;
};

TEST(MinRttScheduler, PrefersLowerRttPath) {
  auto sched = mpquic::make_min_rtt_scheduler();
  TwoPathFixture fx(sched);
  // Make path 1 look slow by inflating its RTT estimator.
  auto& p1 = fx.pair.server->path_state(1);
  p1.rtt.on_sample(sim::millis(500), 0);
  auto& p0 = fx.pair.server->path_state(0);
  p0.rtt.on_sample(sim::millis(20), 0);
  quic::SendItem item;
  item.stream_id = 0;
  item.length = 100;
  fx.pair.server->send_queue().push_back(item);
  const auto pick = sched->select_path(*fx.pair.server);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 0u);
}

TEST(MinRttScheduler, SkipsCwndExhaustedPath) {
  auto sched = mpquic::make_min_rtt_scheduler();
  TwoPathFixture fx(sched);
  auto& p0 = fx.pair.server->path_state(0);
  p0.rtt.on_sample(sim::millis(20), 0);
  auto& p1 = fx.pair.server->path_state(1);
  p1.rtt.on_sample(sim::millis(500), 0);
  // Exhaust path 0's window.
  p0.loss.on_packet_sent(1000, 0, p0.cc->cwnd_bytes(), true);
  const auto pick = sched->select_path(*fx.pair.server);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 1u);
}

TEST(RoundRobinScheduler, Alternates) {
  auto sched = mpquic::make_round_robin_scheduler();
  TwoPathFixture fx(sched);
  std::set<quic::PathId> seen;
  for (int i = 0; i < 4; ++i) {
    const auto pick = sched->select_path(*fx.pair.server);
    ASSERT_TRUE(pick.has_value());
    seen.insert(*pick);
  }
  EXPECT_EQ(seen.size(), 2u);
}

TEST(ReinjectionEngine, DuplicatesUnackedFromSlowPathWhenQueueDrains) {
  auto sched = core::make_xlink_scheduler(
      {DoubleThresholdConfig{0, 0, ControlMode::kAlwaysOn},
       quic::InsertMode::kPriority});
  TwoPathFixture fx(sched);
  auto& server = *fx.pair.server;
  auto& p0 = server.path_state(0);
  auto& p1 = server.path_state(1);
  // Path 0 looks fast: data lands there.
  for (int i = 0; i < 20; ++i) p0.rtt.on_sample(sim::millis(20), 0);
  for (int i = 0; i < 20; ++i) p1.rtt.on_sample(sim::millis(400), 0);
  server.stream_send(0, test::pattern_bytes(2000), false);
  fx.pair.run_for(sim::millis(1));
  quic::SentRecord* rec = nullptr;
  for (auto& [pn, r] : p0.unacked)
    if (!r.items.empty()) rec = &r;
  ASSERT_NE(rec, nullptr);
  rec->reinjected = false;
  // Now path 0 deteriorates: its packets become re-injection candidates
  // because it is no longer the fastest path.
  for (int i = 0; i < 30; ++i) p0.rtt.on_sample(sim::millis(900), 0);
  for (int i = 0; i < 30; ++i) p1.rtt.on_sample(sim::millis(30), 0);

  server.send_queue().clear();
  sched->maybe_reinject(server);
  EXPECT_TRUE(sched->last_decision());
  bool has_reinjection = false;
  for (const auto& item : server.send_queue())
    has_reinjection |= item.is_reinjection;
  EXPECT_TRUE(has_reinjection);
}

TEST(ReinjectionEngine, GatedOffByController) {
  auto sched = core::make_xlink_scheduler(
      {DoubleThresholdConfig{sim::millis(100), sim::millis(200),
                             ControlMode::kDoubleThreshold},
       quic::InsertMode::kPriority});
  TwoPathFixture fx(sched);
  auto& server = *fx.pair.server;
  // Client reports a very full buffer BEFORE the transfer starts (without
  // feedback the controller treats the buffer as empty -- start-up is when
  // re-injection matters most).
  fx.pair.client->set_qoe_provider(
      [] { return qoe_with_playtime_ms(10'000); });
  fx.pair.client->send_qoe_signal(qoe_with_playtime_ms(10'000));
  fx.pair.run_for(sim::millis(100));
  server.stream_send(0, test::pattern_bytes(20000), true);
  fx.pair.run_for(sim::seconds(1));
  EXPECT_EQ(server.stats().reinjected_bytes, 0u);
}

TEST(EnqueueItem, PriorityOrdering) {
  WirePair pair(two_path_pair(mpquic::make_min_rtt_scheduler()));
  auto& q = pair.server->send_queue();
  auto make = [](int stream_prio, int frame_prio) {
    quic::SendItem it;
    it.stream_priority = stream_prio;
    it.frame_priority = frame_prio;
    it.length = 1;
    return it;
  };
  pair.server->enqueue_item(make(0, 0), quic::InsertMode::kAppend);
  pair.server->enqueue_item(make(-1, 0), quic::InsertMode::kAppend);
  // Priority insert lands between class 0 and class -1.
  pair.server->enqueue_item(make(0, 0), quic::InsertMode::kPriority);
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q[1].stream_priority, 0);
  EXPECT_EQ(q[2].stream_priority, -1);
  // Front-of-class insert lands before equal-class items.
  pair.server->enqueue_item(make(0, 1), quic::InsertMode::kPriority);
  EXPECT_EQ(q.front().frame_priority, 1);  // frame priority dominates
  pair.server->enqueue_item(make(0, 0), quic::InsertMode::kFrontOfClass);
  EXPECT_EQ(q[1].frame_priority, 0);
  EXPECT_EQ(q[1].length, 1u);
}

TEST(MaxDeliverTime, UsesOnlyPathsWithUnackedData) {
  WirePair pair(two_path_pair(mpquic::make_min_rtt_scheduler()));
  ASSERT_TRUE(pair.establish());
  pair.run_for(sim::millis(200));
  EXPECT_FALSE(core::max_deliver_time(*pair.server).has_value());
  auto& p0 = pair.server->path_state(0);
  p0.rtt.on_sample(sim::millis(100), 0);
  p0.loss.on_packet_sent(99, pair.loop.now(), 1200, true);
  const auto t = core::max_deliver_time(*pair.server);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, p0.rtt.rtt_plus_var());
}

TEST(SchedulerNames, AreStable) {
  EXPECT_EQ(mpquic::make_min_rtt_scheduler()->name(), "min-rtt");
  EXPECT_EQ(mpquic::make_round_robin_scheduler()->name(), "round-robin");
  EXPECT_EQ(mpquic::make_redundant_scheduler()->name(), "redundant");
  EXPECT_EQ(core::make_xlink_scheduler({})->name(), "xlink");
}

}  // namespace
}  // namespace xlink
