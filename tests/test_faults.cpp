// Fault injection + path failover state machine: scripted scenarios.
//
//  - FaultInjector drop/corrupt/delay semantics, deterministic per seed.
//  - Primary-path blackout: the scheduler abandons the dead path within the
//    consecutive-PTO budget, orphaned in-flight data is rescued, the path
//    is resurrected after the blackout, and recovery beats the no-failover
//    baseline.
//  - Directional (uplink-only) drop kills acks independently of data.
//  - Bit corruption is rejected by the AEAD and never corrupts content.
//  - NAT rebind forces re-validation via PATH_CHALLENGE.
//  - PTO exponential backoff is capped (RFC 9002-style).
//  - Fault + path-health events survive the qlog round trip and feed the
//    analyzer's failover timeline.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/scenario.h"
#include "net/fault.h"
#include "quic/loss_detection.h"
#include "telemetry/analyzer.h"
#include "telemetry/qlog.h"
#include "trace/synthetic.h"

namespace xlink {
namespace {

using net::FaultKind;
using net::FaultPlan;

// ------------------------------------------------------------- unit level

TEST(FaultPlan, BuildersAndHorizon) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.last_fault_end(), 0u);
  plan.blackout(sim::seconds(1), sim::seconds(2))
      .corrupt(sim::seconds(4), sim::seconds(1), 0.5)
      .nat_rebind(sim::seconds(6));
  ASSERT_EQ(plan.windows.size(), 3u);
  EXPECT_EQ(plan.windows[0].kind, FaultKind::kBlackout);
  EXPECT_EQ(plan.windows[0].start, sim::seconds(1));
  EXPECT_EQ(plan.windows[0].end, sim::seconds(3));
  EXPECT_DOUBLE_EQ(plan.windows[1].probability, 0.5);
  EXPECT_EQ(plan.last_fault_end(), sim::seconds(6));
}

TEST(FaultInjector, BlackoutDropsBothDirectionsOnlyInsideWindow) {
  sim::EventLoop loop;
  FaultPlan plan;
  plan.blackout(sim::millis(100), sim::millis(100));
  net::FaultInjector inj(loop, plan, sim::Rng(7), nullptr, 0);

  net::Datagram d{1, 2, 3};
  EXPECT_TRUE(inj.admit(net::FaultInjector::Direction::kUp, d));
  loop.schedule_at(sim::millis(150), [] {});
  loop.run_until(sim::millis(150));
  EXPECT_FALSE(inj.admit(net::FaultInjector::Direction::kUp, d));
  EXPECT_FALSE(inj.admit(net::FaultInjector::Direction::kDown, d));
  loop.schedule_at(sim::millis(250), [] {});
  loop.run_until(sim::millis(250));
  EXPECT_TRUE(inj.admit(net::FaultInjector::Direction::kDown, d));
  EXPECT_EQ(inj.stats().packets_dropped, 2u);
  EXPECT_EQ(inj.stats().windows_fired, 1u);
}

TEST(FaultInjector, UplinkDropIsDirectional) {
  sim::EventLoop loop;
  FaultPlan plan;
  plan.uplink_drop(0, sim::seconds(1));
  net::FaultInjector inj(loop, plan, sim::Rng(7), nullptr, 0);
  loop.schedule_at(sim::millis(10), [] {});
  loop.run_until(sim::millis(10));

  net::Datagram d{1, 2, 3};
  EXPECT_FALSE(inj.admit(net::FaultInjector::Direction::kUp, d));
  EXPECT_TRUE(inj.admit(net::FaultInjector::Direction::kDown, d));
}

TEST(FaultInjector, CorruptFlipsBitsDeterministically) {
  FaultPlan plan;
  plan.corrupt(0, sim::seconds(1), 1.0);
  const net::Datagram original(64, 0xAB);

  auto run_once = [&](std::uint64_t seed) {
    sim::EventLoop loop;
    net::FaultInjector inj(loop, plan, sim::Rng(seed), nullptr, 0);
    loop.schedule_at(sim::millis(1), [] {});
    loop.run_until(sim::millis(1));
    net::Datagram d = original.clone();
    EXPECT_TRUE(inj.admit(net::FaultInjector::Direction::kDown, d));
    EXPECT_EQ(inj.stats().packets_corrupted, 1u);
    return d;
  };
  const net::Datagram a = run_once(42);
  const net::Datagram b = run_once(42);
  EXPECT_NE(a, original) << "corruption must change the datagram";
  EXPECT_EQ(a, b) << "same seed must corrupt identically";
}

TEST(LossDetectionBackoff, PtoBackoffIsCapped) {
  const sim::Duration base = sim::millis(100);
  EXPECT_EQ(quic::backed_off_pto(base, 0), base);
  EXPECT_EQ(quic::backed_off_pto(base, 1), 2 * base);
  EXPECT_EQ(quic::backed_off_pto(base, 3), 8 * base);
  // Exponent cap: shift stops growing past kMaxPtoBackoffShift.
  EXPECT_EQ(quic::backed_off_pto(sim::millis(1), 50),
            sim::millis(1) << quic::kMaxPtoBackoffShift);
  // Absolute cap: interval never exceeds kMaxPto.
  EXPECT_EQ(quic::backed_off_pto(sim::seconds(2), 6), quic::kMaxPto);
  EXPECT_EQ(quic::backed_off_pto(quic::kMaxPto, 1), quic::kMaxPto);
}

// --------------------------------------------------------- session level

harness::SessionConfig fault_session_config(std::uint64_t seed) {
  harness::SessionConfig cfg;
  cfg.scheme = core::Scheme::kXlink;
  cfg.seed = seed;
  // Sized so the transfer spans the scripted fault windows: ~16 MB against
  // ~30 Mbps aggregate keeps data in flight well past t=5s fault-free.
  cfg.video.duration = sim::seconds(16);
  cfg.video.bitrate_bps = 8'000'000;
  cfg.video.seed = seed;
  cfg.client.chunk_bytes = 192 * 1024;
  cfg.client.verify_content = true;
  cfg.time_limit = sim::seconds(90);
  // Keep spec order == network path index so fault plans land where the
  // test scripted them.
  cfg.wireless_aware_primary = false;
  cfg.trace.enabled = true;
  // Path 0: fast primary (the one we will kill). Path 1: slower survivor.
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kWifi, trace::stable_lte(seed, sim::seconds(40)),
      sim::millis(20)));
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kLte, trace::stable_lte(seed + 1, sim::seconds(40)),
      sim::millis(60)));
  // Modest queues keep bufferbloat out of the smoothed RTT so the PTO
  // clock (and hence the failover budget) tracks propagation delay.
  for (auto& p : cfg.paths) p.queue_capacity_bytes = 256 * 1024;
  return cfg;
}

TEST(Failover, PrimaryBlackoutFailsOverRescuesAndResurrects) {
  const sim::Time blackout_start = sim::seconds(2);
  const sim::Duration blackout_len = sim::seconds(3);

  harness::SessionConfig cfg = fault_session_config(11);
  cfg.paths[0].fault_plan.blackout(blackout_start, blackout_len);
  harness::Session session(std::move(cfg));
  const auto result = session.run();

  // Exactly-once delivery despite the outage.
  EXPECT_TRUE(result.download_finished);
  EXPECT_EQ(session.media_client().content_mismatches(), 0u);

  const auto& server = session.server_conn().stats();
  EXPECT_GE(server.failovers, 1u) << "blackout must trip the PTO budget";
  EXPECT_GE(server.path_resurrections, 1u)
      << "path must come back after the blackout clears";
  EXPECT_GE(server.dead_path_probes, 1u);

  // The scheduler stops using the dead path within the consecutive-PTO
  // budget: once the server declares failover, only backoff probes may
  // appear on path 0 until the window clears.
  const auto events = session.trace_sink()->snapshot();
  std::optional<sim::Time> failover_at;
  std::optional<sim::Time> resurrect_at;
  std::uint64_t sent_on_dead_path = 0;
  for (const auto& e : events) {
    if (e.type == telemetry::EventType::kPathHealth && e.path == 0 &&
        e.origin == telemetry::Origin::kServer) {
      if (e.a == 2 && !failover_at) failover_at = e.t;         // -> probing
      if (e.a == 0 && failover_at && !resurrect_at) resurrect_at = e.t;
    }
    if (e.type == telemetry::EventType::kPacketSent && e.path == 0 &&
        e.origin == telemetry::Origin::kServer && failover_at &&
        e.t > *failover_at && e.t < blackout_start + blackout_len) {
      ++sent_on_dead_path;
    }
  }
  ASSERT_TRUE(failover_at.has_value());
  ASSERT_TRUE(resurrect_at.has_value());
  EXPECT_GT(*resurrect_at, blackout_start + blackout_len)
      << "resurrection only once the path actually works again";
  // Failover fired within the budget: the server must give up on the dead
  // path while the outage is still in progress, not after it clears.
  EXPECT_LT(*failover_at, blackout_start + blackout_len);
  // Capped-backoff probing is sparse: far fewer packets than data traffic
  // would produce over a 3 s window.
  EXPECT_LE(sent_on_dead_path, 12u);

  // Faster rebuffer recovery than the no-failover baseline.
  harness::SessionConfig base_cfg = fault_session_config(11);
  base_cfg.paths[0].fault_plan.blackout(blackout_start, blackout_len);
  base_cfg.path_health = false;
  harness::Session baseline(std::move(base_cfg));
  const auto base_result = baseline.run();
  EXPECT_TRUE(base_result.download_finished);
  EXPECT_LE(result.rebuffer_seconds, base_result.rebuffer_seconds);
  EXPECT_LE(result.download_seconds, base_result.download_seconds);
}

TEST(Failover, UplinkOnlyDropKillsAcksAndStillRecovers) {
  harness::SessionConfig cfg = fault_session_config(12);
  // Kill only client->server on the primary: data still flows down but the
  // server hears no acks, which must be enough to trigger failover.
  cfg.paths[0].fault_plan.uplink_drop(sim::seconds(2), sim::seconds(3));
  harness::Session session(std::move(cfg));
  const auto result = session.run();

  EXPECT_TRUE(result.download_finished);
  EXPECT_EQ(session.media_client().content_mismatches(), 0u);
  EXPECT_GE(session.server_conn().stats().failovers, 1u);
  EXPECT_GE(session.server_conn().stats().path_resurrections, 1u);
}

TEST(Failover, CorruptionIsRejectedByAeadNotDelivered) {
  harness::SessionConfig cfg = fault_session_config(13);
  cfg.paths[0].fault_plan.corrupt(sim::seconds(1), sim::seconds(2), 0.3);
  harness::Session session(std::move(cfg));
  const auto result = session.run();

  EXPECT_TRUE(result.download_finished);
  EXPECT_EQ(session.media_client().content_mismatches(), 0u)
      << "corrupted datagrams must never reach the stream";
  const auto corrupted =
      session.network().path(0).faults()->stats().packets_corrupted;
  EXPECT_GT(corrupted, 0u);
  EXPECT_GT(session.client_conn().stats().auth_failures +
                session.server_conn().stats().auth_failures,
            0u)
      << "every corrupted datagram fails AEAD at its receiver";
}

TEST(Failover, NatRebindForcesRevalidation) {
  harness::SessionConfig cfg = fault_session_config(14);
  const sim::Time rebind_at = sim::seconds(2);
  cfg.paths[0].fault_plan.nat_rebind(rebind_at);
  harness::Session session(std::move(cfg));
  const auto result = session.run();

  EXPECT_TRUE(result.download_finished);
  EXPECT_EQ(session.media_client().content_mismatches(), 0u);
  EXPECT_EQ(session.network().path(0).faults()->stats().nat_rebinds, 1u);

  // The client must have dropped path 0 back to validating and then
  // re-validated it (PATH_CHALLENGE / PATH_RESPONSE round trip).
  bool revalidating = false;
  bool revalidated = false;
  for (const auto& e : session.trace_sink()->snapshot()) {
    if (e.type != telemetry::EventType::kPathStatus || e.path != 0) continue;
    if (e.origin != telemetry::Origin::kClient || e.t < rebind_at) continue;
    if (e.a == 0) revalidating = true;               // kValidating
    if (revalidating && e.a == 1) revalidated = true;  // back to kActive
  }
  EXPECT_TRUE(revalidating);
  EXPECT_TRUE(revalidated);
}

TEST(Failover, AnalyzerBuildsFailoverTimelineFromQlog) {
  harness::SessionConfig cfg = fault_session_config(15);
  cfg.paths[0].fault_plan.blackout(sim::seconds(2), sim::seconds(3));
  harness::Session session(std::move(cfg));
  const auto result = session.run();
  EXPECT_TRUE(result.download_finished);

  telemetry::QlogMeta meta;
  meta.scenario = "failover-timeline";
  std::ostringstream os;
  telemetry::write_qlog(os, session.trace_sink()->snapshot(), meta,
                        session.trace_sink()->recorded(),
                        session.trace_sink()->dropped());
  const auto parsed = telemetry::parse_qlog(os.str());
  ASSERT_TRUE(parsed.has_value());

  const auto report = telemetry::analyze(*parsed);
  EXPECT_EQ(report.faults_fired, 1u);
  EXPECT_GE(report.failovers, 1u);
  EXPECT_GE(report.resurrections, 1u);
  EXPECT_GE(report.health_transitions, 2u);
  ASSERT_FALSE(report.failover_timeline.empty());
  EXPECT_TRUE(report.failover_timeline.front().is_fault);

  const std::string rendered = telemetry::render_report(report);
  EXPECT_NE(rendered.find("failover timeline"), std::string::npos);
  EXPECT_NE(rendered.find("blackout"), std::string::npos);
}

TEST(Failover, LastSurvivingPathIsNeverFailedOver) {
  // Single path + blackout: graceful degradation, not failover (there is
  // nowhere to fail over to). The session stalls through the outage and
  // still completes.
  harness::SessionConfig cfg = fault_session_config(16);
  cfg.paths.pop_back();
  cfg.scheme = core::Scheme::kSinglePath;
  cfg.paths[0].fault_plan.blackout(sim::seconds(2), sim::seconds(2));
  harness::Session session(std::move(cfg));
  const auto result = session.run();

  EXPECT_TRUE(result.download_finished);
  EXPECT_EQ(session.media_client().content_mismatches(), 0u);
  EXPECT_EQ(session.server_conn().stats().failovers, 0u);
  EXPECT_EQ(session.client_conn().stats().failovers, 0u);
}

}  // namespace
}  // namespace xlink
