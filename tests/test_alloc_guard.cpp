// Allocation guard for the packet datapath.
//
// Replaces global operator new/delete with counting wrappers (binary-wide;
// this is why the suite lives in its own test executable) and asserts the
// zero-allocation claims of the pooled datapath:
//   1. a sealed send -> link -> open round trip performs ZERO heap
//      allocations once the buffer pool, ring queues and scratch vectors
//      are warm;
//   2. a full end-to-end session stays within a bounded allocation budget
//      per packet (connection bookkeeping allocates, but it must not scale
//      with payload bytes or regress silently).
//
// The wrappers forward to std::malloc/std::free, which keeps ASan's
// malloc-level checking intact when this binary is built sanitized.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "fec/framer.h"
#include "harness/scenario.h"
#include "net/link.h"
#include "net/packet_buffer.h"
#include "quic/delivery_rate.h"
#include "quic/frame.h"
#include "quic/pacer.h"
#include "quic/packet.h"
#include "sim/event_loop.h"
#include "sim/rng.h"
#include "trace/synthetic.h"

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};

std::uint64_t alloc_count() {
  return g_allocs.load(std::memory_order_relaxed);
}

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t& nt) noexcept {
  return ::operator new(size, nt);
}

void operator delete(void* p) noexcept {
  if (p) g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  ::operator delete(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  ::operator delete(p);
}

namespace xlink {
namespace {

/// Steady-state seal -> FixedRateLink -> parse/open/parse_frames round trip
/// must be completely allocation-free once every pool is warm.
TEST(AllocGuard, WarmPacketRoundTripIsAllocationFree) {
  sim::EventLoop loop;
  net::LinkConfig cfg;
  net::FixedRateLink link(loop, 1e9, cfg, sim::Rng(1));

  quic::PacketProtection aead(0x5eed);
  std::vector<std::uint8_t> payload_src(1200, 0xab);
  std::vector<quic::Frame> send_frames;
  std::vector<quic::Frame> recv_frames;
  std::uint64_t delivered = 0;

  link.set_receiver([&](net::Datagram d) {
    const auto pkt = quic::parse_packet_view(d.span());
    ASSERT_TRUE(pkt.has_value());
    const auto payload = quic::open_packet_in_place(aead, *pkt);
    ASSERT_TRUE(payload.has_value());
    recv_frames.clear();
    ASSERT_TRUE(quic::parse_frames_into(*payload, recv_frames));
    ASSERT_EQ(recv_frames.size(), 1u);
    ++delivered;
  });

  quic::PacketNumber pn = 0;
  const auto send_one = [&] {
    quic::StreamFrame f;
    f.stream_id = 4;
    f.offset = pn * payload_src.size();
    f.data = quic::FrameData::borrowed(payload_src);
    send_frames.clear();
    send_frames.emplace_back(std::move(f));
    quic::PacketHeader h;
    h.cid_sequence = 0;
    h.packet_number = pn++;
    link.send(quic::seal_packet_buffer(aead, h, send_frames));
  };

  // Warm-up: fills the thread-local buffer pool, the link's ring queue,
  // the event loop's slab and both scratch frame vectors.
  for (int i = 0; i < 64; ++i) {
    send_one();
    loop.run();
  }
  ASSERT_EQ(delivered, 64u);

  const std::uint64_t before = alloc_count();
  for (int i = 0; i < 256; ++i) {
    send_one();
    loop.run();
  }
  const std::uint64_t after = alloc_count();

  EXPECT_EQ(delivered, 64u + 256u);
  EXPECT_EQ(after - before, 0u)
      << "warm packet round trip allocated " << (after - before) << " times";

  const auto& pool = net::PacketBufferPool::local().counters();
  EXPECT_GT(pool.pool_hits, 0u);
}

/// Pipelined variant: many packets in flight inside the link queue at
/// once, so pooled buffers are recycled out of order.
TEST(AllocGuard, WarmBurstTrafficIsAllocationFree) {
  sim::EventLoop loop;
  net::LinkConfig cfg;
  net::FixedRateLink link(loop, 5e7, cfg, sim::Rng(2));

  quic::PacketProtection aead(0x1234);
  std::vector<std::uint8_t> payload_src(600, 0x5a);
  std::vector<quic::Frame> send_frames;
  std::vector<quic::Frame> recv_frames;
  std::uint64_t delivered = 0;

  link.set_receiver([&](net::Datagram d) {
    const auto pkt = quic::parse_packet_view(d.span());
    ASSERT_TRUE(pkt.has_value());
    const auto payload = quic::open_packet_in_place(aead, *pkt);
    ASSERT_TRUE(payload.has_value());
    recv_frames.clear();
    ASSERT_TRUE(quic::parse_frames_into(*payload, recv_frames));
    ++delivered;
  });

  quic::PacketNumber pn = 0;
  const auto send_burst = [&](int n) {
    for (int i = 0; i < n; ++i) {
      quic::StreamFrame f;
      f.stream_id = 8;
      f.offset = pn * payload_src.size();
      f.data = quic::FrameData::borrowed(payload_src);
      send_frames.clear();
      send_frames.emplace_back(std::move(f));
      quic::PacketHeader h;
      h.cid_sequence = 1;
      h.packet_number = pn++;
      link.send(quic::seal_packet_buffer(aead, h, send_frames));
    }
    loop.run();
  };

  send_burst(32);  // warm-up
  const std::uint64_t expected_warm = delivered;

  const std::uint64_t before = alloc_count();
  for (int round = 0; round < 8; ++round) send_burst(32);
  const std::uint64_t after = alloc_count();

  EXPECT_EQ(delivered, expected_warm + 8 * 32);
  EXPECT_EQ(after - before, 0u)
      << "warm burst traffic allocated " << (after - before) << " times";
}

/// The FEC warm path: encode a window, emit repair frames, drop a source,
/// recover it -- all from pooled buffers and fixed scratch, so once the
/// framer, recovery stash and scratch vectors are warm the whole
/// encode -> repair -> recover loop performs ZERO heap allocations.
TEST(AllocGuard, WarmFecEncodeRecoverLoopIsAllocationFree) {
  fec::FecConfig cfg;
  cfg.enabled = true;
  cfg.window = 8;
  cfg.min_repairs = 2;
  cfg.max_repairs = 2;
  fec::FecFramer framer(cfg);
  fec::RecoveryBuffer recovery(cfg);

  std::vector<std::uint8_t> wire(900);
  std::vector<quic::Frame> repairs;
  std::vector<fec::RecoveryBuffer::Recovered> recovered;
  std::uint64_t windows_recovered = 0;

  quic::PacketNumber pn = 0;
  const auto run_window = [&] {
    const quic::PacketNumber base = pn;
    for (std::size_t i = 0; i < cfg.window; ++i, ++pn) {
      for (std::size_t b = 0; b < wire.size(); ++b)
        wire[b] = static_cast<std::uint8_t>(pn * 31 + b);
      const sim::Time now = sim::micros(pn * 500);
      repairs.clear();
      framer.on_packet_sent(1, pn, wire, now, 0.0, repairs);
      if (pn != base + 3)  // one erasure per window
        recovery.on_source(1, pn, wire, now);
      for (const quic::Frame& f : repairs) {
        const auto* rf = std::get_if<quic::RepairFrame>(&f);
        ASSERT_NE(rf, nullptr);
        recovered.clear();
        recovery.on_repair(1, *rf, now, recovered);
        windows_recovered += recovered.size();
      }
    }
  };

  for (int w = 0; w < 32; ++w) run_window();  // warm pools and scratch
  ASSERT_EQ(windows_recovered, 32u);

  const std::uint64_t before = alloc_count();
  for (int w = 0; w < 128; ++w) run_window();
  const std::uint64_t after = alloc_count();

  EXPECT_EQ(windows_recovered, 32u + 128u);
  EXPECT_EQ(after - before, 0u)
      << "warm FEC encode->recover loop allocated " << (after - before)
      << " times";
}

/// End-to-end guard: a whole simulated session (handshake, video download,
/// acks, retransmissions, telemetry off) must stay within a bounded number
/// of allocations per packet. The bound is deliberately generous -- the
/// connection's maps and queues do allocate -- but it fails loudly if a
/// per-byte copy or per-packet vector sneaks back into the datapath.
TEST(AllocGuard, FullSessionAllocationsPerPacketAreBounded) {
  harness::SessionConfig cfg;
  cfg.scheme = core::Scheme::kXlink;
  cfg.video.duration = sim::seconds(3);
  cfg.video.bitrate_bps = 2'000'000;
  cfg.seed = 9;
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kWifi, trace::stable_lte(1, sim::seconds(10)),
      sim::millis(30)));
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kLte, trace::stable_lte(2, sim::seconds(10)),
      sim::millis(80)));

  harness::Session session(std::move(cfg));
  const std::uint64_t before = alloc_count();
  const auto result = session.run();
  const std::uint64_t after = alloc_count();
  ASSERT_TRUE(result.download_finished);

  const std::uint64_t packets = session.client_conn().stats().packets_sent +
                                session.server_conn().stats().packets_sent;
  ASSERT_GT(packets, 100u);
  const double per_packet =
      static_cast<double>(after - before) / static_cast<double>(packets);
  EXPECT_LT(per_packet, 32.0)
      << "session made " << (after - before) << " allocations for " << packets
      << " packets (" << per_packet << "/packet)";
}

/// Warm pacer + delivery-rate sampler: the per-packet stamp/ack/refill
/// arithmetic is pure integer state on POD members, so once constructed it
/// must never touch the heap.
TEST(AllocGuard, WarmPacerAndSamplerAreAllocationFree) {
  quic::DeliveryRateSampler sampler;
  quic::PacerConfig pc;
  pc.enabled = true;
  quic::Pacer pacer(pc);
  pacer.set_rate(10'000'000);

  quic::RateStamp stamp;
  sim::Time now = sim::millis(1);
  const std::uint64_t before = alloc_count();
  for (int i = 0; i < 10000; ++i) {
    now += sim::micros(120);
    sampler.on_packet_sent(stamp, now, i % 7 == 0 ? 0 : 1400);
    if (i % 5 == 0) sampler.on_app_limited(1400);
    if (i % 11 == 0) sampler.on_loss(1400);
    const quic::RateSample rs = sampler.on_ack(
        stamp, 1400, now, now + sim::millis(20), sim::millis(20), 1400);
    (void)rs;
    if (pacer.can_send(now)) pacer.on_sent(now, 1400);
    (void)pacer.next_release_time(now);
  }
  const std::uint64_t after = alloc_count();
  EXPECT_EQ(after - before, 0u)
      << "warm pacer/sampler loop allocated " << (after - before) << " times";
}

/// The bounded-allocations contract must also hold with the pacer engaged
/// and BBR consuming rate samples: pacing gates and re-arms timers on the
/// warm path, none of which may allocate per packet.
TEST(AllocGuard, PacedBbrSessionAllocationsPerPacketAreBounded) {
  harness::SessionConfig cfg;
  cfg.scheme = core::Scheme::kXlink;
  cfg.video.duration = sim::seconds(3);
  cfg.video.bitrate_bps = 2'000'000;
  cfg.seed = 11;
  cfg.options.cc = quic::CcAlgorithm::kBbr;
  cfg.options.pacing = true;
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kWifi, trace::stable_lte(3, sim::seconds(10)),
      sim::millis(30)));
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kLte, trace::stable_lte(4, sim::seconds(10)),
      sim::millis(80)));

  harness::Session session(std::move(cfg));
  const std::uint64_t before = alloc_count();
  const auto result = session.run();
  const std::uint64_t after = alloc_count();
  ASSERT_TRUE(result.download_finished);

  const std::uint64_t packets = session.client_conn().stats().packets_sent +
                                session.server_conn().stats().packets_sent;
  ASSERT_GT(packets, 100u);
  const double per_packet =
      static_cast<double>(after - before) / static_cast<double>(packets);
  EXPECT_LT(per_packet, 32.0)
      << "paced BBR session made " << (after - before) << " allocations for "
      << packets << " packets (" << per_packet << "/packet)";
}

}  // namespace
}  // namespace xlink
