// Unit tests: discrete-event loop and deterministic RNG.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/event_loop.h"
#include "sim/rng.h"

namespace xlink::sim {
namespace {

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30u);
  EXPECT_EQ(loop.events_fired(), 3u);
}

TEST(EventLoop, SameTimestampIsFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    loop.schedule_at(5, [&order, i] { order.push_back(i); });
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventLoop, ScheduleInUsesCurrentTime) {
  EventLoop loop;
  Time fired_at = 0;
  loop.schedule_at(100, [&] {
    loop.schedule_in(50, [&] { fired_at = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(fired_at, 150u);
}

TEST(EventLoop, PastTimesClampToNow) {
  EventLoop loop;
  Time fired_at = 999;
  loop.schedule_at(100, [&] {
    loop.schedule_at(5, [&] { fired_at = loop.now(); });  // in the past
  });
  loop.run();
  EXPECT_EQ(fired_at, 100u);
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool fired = false;
  const EventId id = loop.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));  // second cancel is a no-op
  loop.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(loop.events_fired(), 0u);
}

TEST(EventLoop, CancelUnknownIdReturnsFalse) {
  EventLoop loop;
  EXPECT_FALSE(loop.cancel(12345));
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  std::vector<Time> fired;
  for (Time t : {10u, 20u, 30u, 40u})
    loop.schedule_at(t, [&fired, &loop] { fired.push_back(loop.now()); });
  loop.run_until(25);
  EXPECT_EQ(fired, (std::vector<Time>{10, 20}));
  EXPECT_EQ(loop.now(), 25u);
  loop.run_until(100);
  EXPECT_EQ(fired.size(), 4u);
}

TEST(EventLoop, RunUntilAdvancesTimeWithEmptyQueue) {
  EventLoop loop;
  loop.run_until(500);
  EXPECT_EQ(loop.now(), 500u);
}

TEST(EventLoop, StopHaltsProcessing) {
  EventLoop loop;
  int count = 0;
  for (int i = 0; i < 5; ++i)
    loop.schedule_at(static_cast<Time>(i), [&] {
      ++count;
      if (count == 2) loop.stop();
    });
  loop.run();
  EXPECT_EQ(count, 2);
}

TEST(EventLoop, EventsScheduledDuringRunFire) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) loop.schedule_in(1, recurse);
  };
  loop.schedule_at(0, recurse);
  loop.run();
  EXPECT_EQ(depth, 5);
}

TEST(EventLoop, PendingCountsLiveEvents) {
  EventLoop loop;
  const EventId a = loop.schedule_at(10, [] {});
  loop.schedule_at(20, [] {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.cancel(a);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoop, StaleIdStaysDeadAfterSlotReuse) {
  EventLoop loop;
  bool a_fired = false, b_fired = false;
  const EventId a = loop.schedule_at(10, [&] { a_fired = true; });
  loop.cancel(a);
  // The slot is reused with a fresh generation: the old handle must not
  // alias the new event.
  const EventId b = loop.schedule_at(10, [&] { b_fired = true; });
  EXPECT_NE(a, b);
  EXPECT_FALSE(loop.cancel(a));
  loop.run();
  EXPECT_FALSE(a_fired);
  EXPECT_TRUE(b_fired);
}

TEST(EventLoop, CompactDropsCancelledHeapEntries) {
  EventLoop loop;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 100; ++i)
    ids.push_back(loop.schedule_at(static_cast<Time>(i + 1),
                                   [&fired] { ++fired; }));
  for (std::size_t i = 1; i < ids.size(); i += 2) loop.cancel(ids[i]);
  loop.compact();
  EXPECT_EQ(loop.queue_entries(), 50u);
  EXPECT_EQ(loop.pending(), 50u);
  loop.run();
  EXPECT_EQ(fired, 50);
}

TEST(EventLoop, ScheduleCancelChurnStaysBounded) {
  // Regression: cancelled entries used to linger in the priority queue
  // until popped, so schedule+cancel churn grew memory without bound.
  EventLoop loop;
  for (int i = 0; i < 1'000'000; ++i) {
    const EventId id =
        loop.schedule_at(static_cast<Time>(i % 1000 + 10), [] {});
    loop.cancel(id);
  }
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_LT(loop.queue_entries(), 1024u);  // auto-compaction kept it small
  loop.run();
  EXPECT_EQ(loop.events_fired(), 0u);
}

TEST(EventLoop, LargeCapturesFallBackToHeapCorrectly) {
  EventLoop loop;
  std::array<std::uint64_t, 32> big{};  // 256 bytes: beyond inline storage
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = i * 7;
  std::uint64_t sum = 0;
  loop.schedule_at(1, [big, &sum] {
    for (auto v : big) sum += v;
  });
  loop.run();
  std::uint64_t expect = 0;
  for (std::size_t i = 0; i < big.size(); ++i) expect += i * 7;
  EXPECT_EQ(sum, expect);
}

TEST(EventLoop, CancelInsideCallbackOfSameEventIsNoop) {
  EventLoop loop;
  EventId id = 0;
  bool saw_false = false;
  id = loop.schedule_at(5, [&] { saw_false = !loop.cancel(id); });
  loop.run();
  EXPECT_TRUE(saw_false);
  EXPECT_EQ(loop.events_fired(), 1u);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform(10), 10u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceProbability) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
  EXPECT_FALSE(Rng(1).chance(0.0));
  EXPECT_TRUE(Rng(1).chance(1.0));
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / 20000, 5.0, 0.2);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(sq / n - mean * mean, 4.0, 0.3);
}

TEST(Rng, LognormalMedian) {
  Rng rng(17);
  std::vector<double> vals;
  for (int i = 0; i < 10001; ++i) vals.push_back(rng.lognormal(std::log(20.0), 0.5));
  std::sort(vals.begin(), vals.end());
  EXPECT_NEAR(vals[5000], 20.0, 1.5);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(42);
  Rng f1 = parent.fork();
  Rng f2 = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (f1.next_u64() == f2.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Time, ConversionHelpers) {
  EXPECT_EQ(millis(3), 3000u);
  EXPECT_EQ(seconds(2), 2'000'000u);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(5)), 5.0);
  EXPECT_DOUBLE_EQ(to_millis(millis(250)), 250.0);
}

}  // namespace
}  // namespace xlink::sim
