// Unit tests: RTT estimation and congestion controllers.
#include <gtest/gtest.h>

#include "quic/cc.h"
#include "quic/rtt.h"

namespace xlink::quic {
namespace {

TEST(Rtt, FirstSampleInitializesEverything) {
  RttEstimator rtt;
  EXPECT_FALSE(rtt.has_sample());
  rtt.on_sample(sim::millis(100), 0);
  EXPECT_TRUE(rtt.has_sample());
  EXPECT_EQ(rtt.smoothed(), sim::millis(100));
  EXPECT_EQ(rtt.variation(), sim::millis(50));
  EXPECT_EQ(rtt.min(), sim::millis(100));
  EXPECT_EQ(rtt.latest(), sim::millis(100));
}

TEST(Rtt, SmoothingFollowsRfc9002) {
  RttEstimator rtt;
  rtt.on_sample(sim::millis(100), 0);
  rtt.on_sample(sim::millis(200), 0);
  // srtt = 7/8*100 + 1/8*200 = 112.5ms
  EXPECT_NEAR(sim::to_millis(rtt.smoothed()), 112.5, 1.0);
  // rttvar = 3/4*50 + 1/4*|112.5-200| ~ 62.5ms (uses pre-update srtt=100:
  // 3/4*50 + 1/4*100 = 62.5)
  EXPECT_NEAR(sim::to_millis(rtt.variation()), 62.5, 5.0);
}

TEST(Rtt, MinTracksSmallest) {
  RttEstimator rtt;
  rtt.on_sample(sim::millis(100), 0);
  rtt.on_sample(sim::millis(50), 0);
  rtt.on_sample(sim::millis(300), 0);
  EXPECT_EQ(rtt.min(), sim::millis(50));
}

TEST(Rtt, AckDelaySubtractedOnlyAboveMin) {
  RttEstimator rtt;
  rtt.set_max_ack_delay(sim::millis(30));
  rtt.on_sample(sim::millis(100), 0);
  // Sample 150 with 30ms ack delay: adjusted 120.
  rtt.on_sample(sim::millis(150), sim::millis(30));
  const double srtt = sim::to_millis(rtt.smoothed());
  EXPECT_NEAR(srtt, 7.0 / 8 * 100 + 1.0 / 8 * 120, 1.0);
  // Sample at min with huge claimed delay: subtraction would go below min,
  // so the raw sample is used.
  RttEstimator rtt2;
  rtt2.on_sample(sim::millis(100), 0);
  rtt2.on_sample(sim::millis(100), sim::millis(90));
  EXPECT_NEAR(sim::to_millis(rtt2.smoothed()), 100, 1.0);
}

TEST(Rtt, AckDelayClampedToMaxAckDelay) {
  // RFC 9002 §5.3: a peer reporting an absurd ack delay must not be able
  // to shrink the adjusted sample (inflating rttvar and every PTO) beyond
  // what its negotiated max_ack_delay allows.
  RttEstimator honest;
  honest.set_max_ack_delay(sim::millis(25));
  honest.on_sample(sim::millis(100), 0);
  honest.on_sample(sim::millis(400), sim::millis(25));

  RttEstimator lying;
  lying.set_max_ack_delay(sim::millis(25));
  lying.on_sample(sim::millis(100), 0);
  lying.on_sample(sim::millis(400), sim::millis(250));  // claimed 10x cap

  // The claimed 250ms is clamped to 25ms, so both estimators see the same
  // adjusted sample: identical srtt, rttvar, and PTO.
  EXPECT_EQ(lying.smoothed(), honest.smoothed());
  EXPECT_EQ(lying.variation(), honest.variation());
  EXPECT_EQ(lying.pto(sim::millis(25)), honest.pto(sim::millis(25)));

  // Sanity: an unclamped subtraction would have produced a smaller srtt.
  RttEstimator unclamped;
  unclamped.set_max_ack_delay(sim::millis(1000));
  unclamped.on_sample(sim::millis(100), 0);
  unclamped.on_sample(sim::millis(400), sim::millis(250));
  EXPECT_LT(unclamped.smoothed(), honest.smoothed());
  EXPECT_EQ(honest.max_ack_delay(), sim::millis(25));
}

TEST(Rtt, PtoFormula) {
  RttEstimator rtt;
  rtt.on_sample(sim::millis(100), 0);
  // pto = srtt + max(4*rttvar, 1ms) + mad = 100 + 200 + 25
  EXPECT_EQ(rtt.pto(sim::millis(25)), sim::millis(325));
}

TEST(Rtt, DefaultBeforeSamples) {
  RttEstimator rtt;
  EXPECT_EQ(rtt.smoothed(), sim::millis(333));
  EXPECT_GT(rtt.pto(0), sim::millis(333));
}

class CcTest : public ::testing::TestWithParam<CcAlgorithm> {};

TEST_P(CcTest, StartsAtInitialWindow) {
  auto cc = make_congestion_controller(GetParam());
  EXPECT_EQ(cc->cwnd_bytes(), kInitialWindowPackets * kDefaultMss);
  EXPECT_TRUE(cc->in_slow_start());
}

TEST_P(CcTest, SlowStartGrowsByAckedBytes) {
  auto cc = make_congestion_controller(GetParam());
  const std::size_t before = cc->cwnd_bytes();
  cc->on_ack(kDefaultMss, sim::millis(10), sim::millis(50), sim::millis(40));
  EXPECT_EQ(cc->cwnd_bytes(), before + kDefaultMss);
}

TEST_P(CcTest, LossShrinksWindow) {
  auto cc = make_congestion_controller(GetParam());
  for (int i = 0; i < 20; ++i)
    cc->on_ack(kDefaultMss, sim::millis(10), sim::millis(50),
               sim::millis(40));
  const std::size_t before = cc->cwnd_bytes();
  cc->on_loss_event(sim::millis(100), sim::millis(200));
  EXPECT_LT(cc->cwnd_bytes(), before);
  EXPECT_FALSE(cc->in_slow_start());
}

TEST_P(CcTest, OneReactionPerLossBurst) {
  auto cc = make_congestion_controller(GetParam());
  for (int i = 0; i < 20; ++i)
    cc->on_ack(kDefaultMss, sim::millis(10), sim::millis(50),
               sim::millis(40));
  cc->on_loss_event(sim::millis(100), sim::millis(200));
  const std::size_t after_first = cc->cwnd_bytes();
  // Losses of packets sent before the recovery point must not shrink again.
  cc->on_loss_event(sim::millis(150), sim::millis(210));
  EXPECT_EQ(cc->cwnd_bytes(), after_first);
  // A loss of a packet sent after recovery starts a new epoch.
  cc->on_loss_event(sim::millis(250), sim::millis(300));
  EXPECT_LT(cc->cwnd_bytes(), after_first);
}

TEST_P(CcTest, PersistentCongestionCollapses) {
  auto cc = make_congestion_controller(GetParam());
  for (int i = 0; i < 50; ++i)
    cc->on_ack(kDefaultMss, sim::millis(10), sim::millis(50),
               sim::millis(40));
  cc->on_persistent_congestion(sim::millis(500));
  EXPECT_EQ(cc->cwnd_bytes(), kMinWindowPackets * kDefaultMss);
}

TEST_P(CcTest, AcksDuringRecoveryDoNotGrow) {
  auto cc = make_congestion_controller(GetParam());
  for (int i = 0; i < 20; ++i)
    cc->on_ack(kDefaultMss, sim::millis(10), sim::millis(50),
               sim::millis(40));
  cc->on_loss_event(sim::millis(100), sim::millis(200));
  const std::size_t in_recovery = cc->cwnd_bytes();
  cc->on_ack(kDefaultMss, sim::millis(150), sim::millis(250),
             sim::millis(40));  // sent before recovery point
  EXPECT_EQ(cc->cwnd_bytes(), in_recovery);
}

TEST_P(CcTest, ResetRestoresInitialState) {
  auto cc = make_congestion_controller(GetParam());
  for (int i = 0; i < 20; ++i)
    cc->on_ack(kDefaultMss, sim::millis(10), sim::millis(50),
               sim::millis(40));
  cc->on_loss_event(sim::millis(100), sim::millis(200));
  cc->reset();
  EXPECT_EQ(cc->cwnd_bytes(), kInitialWindowPackets * kDefaultMss);
  EXPECT_TRUE(cc->in_slow_start());
}

INSTANTIATE_TEST_SUITE_P(Both, CcTest,
                         ::testing::Values(CcAlgorithm::kNewReno,
                                           CcAlgorithm::kCubic),
                         [](const auto& info) {
                           return info.param == CcAlgorithm::kNewReno
                                      ? "NewReno"
                                      : "Cubic";
                         });

TEST(NewReno, CongestionAvoidanceLinearGrowth) {
  auto cc = make_congestion_controller(CcAlgorithm::kNewReno);
  for (int i = 0; i < 20; ++i)
    cc->on_ack(kDefaultMss, sim::millis(10), sim::millis(50),
               sim::millis(40));
  cc->on_loss_event(sim::millis(100), sim::millis(200));
  const std::size_t cwnd = cc->cwnd_bytes();
  // One full window of acked bytes (sent after recovery) -> +1 MSS.
  std::size_t acked = 0;
  while (acked < cwnd) {
    cc->on_ack(kDefaultMss, sim::millis(300), sim::millis(350),
               sim::millis(40));
    acked += kDefaultMss;
  }
  EXPECT_GE(cc->cwnd_bytes(), cwnd + kDefaultMss);
  EXPECT_LE(cc->cwnd_bytes(), cwnd + 3 * kDefaultMss);
}

TEST(Cubic, GrowsTowardWmaxAfterLoss) {
  auto cc = make_congestion_controller(CcAlgorithm::kCubic);
  for (int i = 0; i < 100; ++i)
    cc->on_ack(kDefaultMss, sim::millis(10), sim::millis(50),
               sim::millis(40));
  const std::size_t peak = cc->cwnd_bytes();
  cc->on_loss_event(sim::millis(100), sim::millis(200));
  const std::size_t floor_cwnd = cc->cwnd_bytes();
  EXPECT_NEAR(static_cast<double>(floor_cwnd), 0.7 * peak, kDefaultMss);
  // Ack steadily for simulated seconds; cwnd should recover toward peak.
  sim::Time now = sim::millis(300);
  for (int i = 0; i < 2000; ++i) {
    now += sim::millis(5);
    cc->on_ack(kDefaultMss, now - sim::millis(40), now, sim::millis(40));
  }
  EXPECT_GT(cc->cwnd_bytes(), floor_cwnd + 5 * kDefaultMss);
}

TEST(Cubic, NameAndFactory) {
  EXPECT_EQ(make_congestion_controller(CcAlgorithm::kCubic)->name(), "cubic");
  EXPECT_EQ(make_congestion_controller(CcAlgorithm::kNewReno)->name(),
            "newreno");
}

}  // namespace
}  // namespace xlink::quic
