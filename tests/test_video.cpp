// Unit tests: video model, player rebuffer accounting, QoE capture.
#include <gtest/gtest.h>

#include "video/qoe_capture.h"
#include "video/video_model.h"

namespace xlink::video {
namespace {

VideoSpec spec_10s() {
  VideoSpec s;
  s.duration = sim::seconds(10);
  s.fps = 30;
  s.bitrate_bps = 2'400'000;
  s.seed = 5;
  return s;
}

TEST(VideoModel, FrameCountMatchesDuration) {
  VideoModel m(spec_10s());
  EXPECT_EQ(m.frame_count(), 300u);
  EXPECT_EQ(m.frame_interval(), sim::kSecond / 30);
}

TEST(VideoModel, TotalBytesNearBitrate) {
  VideoModel m(spec_10s());
  const double expected = 2'400'000.0 / 8 * 10;
  // The oversized first frame adds ~11 average frames of extra bytes.
  EXPECT_NEAR(static_cast<double>(m.total_bytes()), expected,
              expected * 0.15);
}

TEST(VideoModel, OffsetsAreMonotone) {
  VideoModel m(spec_10s());
  for (std::uint32_t i = 0; i < m.frame_count(); ++i) {
    EXPECT_LT(m.frame_offset(i), m.frame_offset(i + 1));
    EXPECT_GT(m.frame_size(i), 0u);
  }
  EXPECT_EQ(m.frame_offset(m.frame_count()), m.total_bytes());
}

TEST(VideoModel, FirstFrameIsLargest) {
  VideoModel m(spec_10s());
  for (std::uint32_t i = 1; i < m.frame_count(); ++i)
    EXPECT_GT(m.frame_size(0), m.frame_size(i));
}

TEST(VideoModel, ExplicitFirstFrameSizeHonoured) {
  VideoSpec s = spec_10s();
  s.first_frame_bytes = 777'777;
  VideoModel m(s);
  EXPECT_EQ(m.first_frame_bytes(), 777'777u);
}

TEST(VideoModel, FramesInPrefix) {
  VideoModel m(spec_10s());
  EXPECT_EQ(m.frames_in_prefix(0), 0u);
  EXPECT_EQ(m.frames_in_prefix(m.frame_offset(1) - 1), 0u);
  EXPECT_EQ(m.frames_in_prefix(m.frame_offset(1)), 1u);
  EXPECT_EQ(m.frames_in_prefix(m.frame_offset(5) + 1), 5u);
  EXPECT_EQ(m.frames_in_prefix(m.total_bytes()), m.frame_count());
  EXPECT_EQ(m.frames_in_prefix(m.total_bytes() + 999), m.frame_count());
}

TEST(VideoModel, ContentDeterministicAndSeedDependent) {
  VideoModel a(spec_10s()), b(spec_10s());
  VideoSpec other = spec_10s();
  other.seed = 6;
  VideoModel c(other);
  EXPECT_EQ(a.byte_at(12345), b.byte_at(12345));
  int same = 0;
  for (std::uint64_t i = 0; i < 64; ++i)
    same += a.byte_at(i) == c.byte_at(i);
  EXPECT_LT(same, 16);
}

TEST(ChunkPlan, SplitsWithShortTail) {
  const auto plan = ChunkPlan::fixed_size(1000, 300);
  ASSERT_EQ(plan.chunks.size(), 4u);
  EXPECT_EQ(plan.chunks[0].begin, 0u);
  EXPECT_EQ(plan.chunks[0].end, 300u);
  EXPECT_EQ(plan.chunks[3].begin, 900u);
  EXPECT_EQ(plan.chunks[3].end, 1000u);
}

TEST(ChunkPlan, EmptyContentYieldsOneEmptyChunk) {
  const auto plan = ChunkPlan::fixed_size(0, 100);
  ASSERT_EQ(plan.chunks.size(), 1u);
  EXPECT_EQ(plan.chunks[0].end, 0u);
}

class PlayerTest : public ::testing::Test {
 protected:
  PlayerTest() : model_(spec_10s()), player_(loop_, model_) {}
  sim::EventLoop loop_;
  VideoModel model_;
  VideoPlayer player_;
};

TEST_F(PlayerTest, FirstFrameLatencyRecordedOnStart) {
  loop_.run_until(sim::millis(500));
  EXPECT_FALSE(player_.first_frame_latency().has_value());
  player_.on_contiguous_bytes(model_.frame_offset(1));
  ASSERT_TRUE(player_.first_frame_latency().has_value());
  EXPECT_EQ(*player_.first_frame_latency(), sim::millis(500));
}

TEST_F(PlayerTest, PlaysThroughWhenFullyBuffered) {
  player_.on_contiguous_bytes(model_.total_bytes());
  bool finished_cb = false;
  player_.on_finished = [&] { finished_cb = true; };
  loop_.run_until(sim::seconds(11));
  EXPECT_TRUE(player_.finished());
  EXPECT_TRUE(finished_cb);
  EXPECT_EQ(player_.rebuffer_count(), 0u);
  EXPECT_DOUBLE_EQ(player_.rebuffer_rate(), 0.0);
  EXPECT_NEAR(sim::to_seconds(player_.total_play_time()), 10.0, 0.1);
}

TEST_F(PlayerTest, RebuffersWhenFeedStalls) {
  // Feed only the first second of frames.
  player_.on_contiguous_bytes(model_.frame_offset(30));
  loop_.run_until(sim::seconds(3));
  EXPECT_EQ(player_.rebuffer_count(), 1u);
  // ~2 seconds stalled by now.
  EXPECT_NEAR(sim::to_seconds(player_.total_rebuffer_time()), 2.0, 0.1);
  // Resume with everything: stall ends, plays to completion.
  player_.on_contiguous_bytes(model_.total_bytes());
  loop_.run_until(sim::seconds(15));
  EXPECT_TRUE(player_.finished());
  EXPECT_NEAR(sim::to_seconds(player_.total_rebuffer_time()), 2.0, 0.1);
  EXPECT_GT(player_.rebuffer_rate(), 0.15);
}

TEST_F(PlayerTest, RebufferRateDefinition) {
  player_.on_contiguous_bytes(model_.frame_offset(30));
  loop_.run_until(sim::seconds(2));  // 1s play + 1s stall
  player_.on_contiguous_bytes(model_.total_bytes());
  loop_.run_until(sim::seconds(15));
  const double rate = player_.rebuffer_rate();
  EXPECT_NEAR(rate, sim::to_seconds(player_.total_rebuffer_time()) /
                        sim::to_seconds(player_.total_play_time()),
              1e-9);
}

TEST_F(PlayerTest, BufferLevelAndQoeSnapshot) {
  player_.on_contiguous_bytes(model_.frame_offset(60));  // 2s of frames
  const auto q = player_.qoe_snapshot();
  EXPECT_EQ(q.fps, 30u);
  EXPECT_EQ(q.bps, model_.spec().bitrate_bps);
  // One frame is already rendered at start; ~59 ahead.
  EXPECT_NEAR(static_cast<double>(q.cached_frames), 59.0, 1.0);
  EXPECT_GT(q.cached_bytes, 0u);
  EXPECT_NEAR(sim::to_millis(player_.buffer_level()),
              59.0 * 1000 / 30, 40.0);
}

TEST_F(PlayerTest, StartupBufferRequirement) {
  VideoPlayer strict(loop_, model_, /*startup_buffer_frames=*/10);
  strict.on_contiguous_bytes(model_.frame_offset(5));
  // First frame is render-ready (a delivery metric), but playback has not
  // started: the startup buffer still wants 10 frames.
  EXPECT_TRUE(strict.first_frame_latency().has_value());
  EXPECT_FALSE(strict.startup_delay().has_value());
  strict.on_contiguous_bytes(model_.frame_offset(10));
  EXPECT_TRUE(strict.startup_delay().has_value());
}

TEST_F(PlayerTest, StartupDelaySplitFromFirstFrameAndRebuffer) {
  VideoPlayer strict(loop_, model_, /*startup_buffer_frames=*/30);
  strict.on_contiguous_bytes(model_.frame_offset(1));  // frame 0 ready
  ASSERT_TRUE(strict.first_frame_latency().has_value());
  EXPECT_EQ(*strict.first_frame_latency(), sim::Duration{0});
  // Wait 2 simulated seconds before the startup buffer fills: that wait is
  // startup delay, not a stall (the paper's QoE model counts it separately).
  loop_.run_until(sim::seconds(2));
  strict.on_contiguous_bytes(model_.frame_offset(30));
  ASSERT_TRUE(strict.startup_delay().has_value());
  EXPECT_EQ(*strict.startup_delay(), sim::seconds(2));
  EXPECT_EQ(strict.rebuffer_count(), 0u);
  EXPECT_EQ(strict.total_rebuffer_time(), sim::Duration{0});
  // Play time starts at playback start, so the startup wait is also
  // excluded from the rebuffer-rate denominator.
  EXPECT_EQ(strict.total_play_time(), sim::Duration{0});
}

TEST_F(PlayerTest, DefaultStartupBufferKeepsFirstFrameEqualToStartup) {
  // startup_buffer_frames == 1 (the paper's player): both metrics are the
  // same instant, preserving every pre-split first-frame result.
  loop_.run_until(sim::millis(700));
  player_.on_contiguous_bytes(model_.frame_offset(1));
  ASSERT_TRUE(player_.first_frame_latency().has_value());
  ASSERT_TRUE(player_.startup_delay().has_value());
  EXPECT_EQ(*player_.first_frame_latency(), *player_.startup_delay());
  EXPECT_EQ(*player_.startup_delay(), sim::millis(700));
}

TEST(BitrateLadder, ScaledAndRungForRate) {
  const auto ladder = BitrateLadder::scaled(4'000'000);
  ASSERT_EQ(ladder.rungs(), 4u);
  EXPECT_EQ(ladder.bitrate(0), 1'000'000u);
  EXPECT_EQ(ladder.bitrate(ladder.top_rung()), 4'000'000u);
  EXPECT_EQ(ladder.rung_for_rate(500'000), 0u);    // nothing fits: bottom
  EXPECT_EQ(ladder.rung_for_rate(1'000'000), 0u);  // exact fit counts
  EXPECT_EQ(ladder.rung_for_rate(1'999'999), 0u);
  EXPECT_EQ(ladder.rung_for_rate(2'000'000), 1u);
  EXPECT_EQ(ladder.rung_for_rate(2'999'999), 1u);
  EXPECT_EQ(ladder.rung_for_rate(3'000'000), 2u);
  EXPECT_EQ(ladder.rung_for_rate(9'000'000'000), 3u);
}

TEST(RenditionSet, SharedFrameGridScaledBytes) {
  VideoSpec top = spec_10s();
  top.first_frame_bytes = 120'000;
  RenditionSet set(top, BitrateLadder::scaled(top.bitrate_bps));
  ASSERT_EQ(set.rungs(), 4u);
  const auto& lowest = *set.model(0);
  const auto& native = *set.model(set.top_rung());
  // Same frame grid: frame k of any rung covers the same play time.
  EXPECT_EQ(lowest.frame_count(), native.frame_count());
  EXPECT_EQ(lowest.frame_interval(), native.frame_interval());
  // Lower rung, fewer bytes -- everywhere, including the I-frame.
  EXPECT_LT(lowest.total_bytes(), native.total_bytes());
  EXPECT_EQ(lowest.first_frame_bytes(), 30'000u);
  EXPECT_EQ(native.spec().bitrate_bps, top.bitrate_bps);
  // All renditions share the content seed: byte_at agrees at any offset.
  EXPECT_EQ(lowest.byte_at(4242), native.byte_at(4242));
}

TEST(RenditionSet, ResourceNaming) {
  EXPECT_EQ(rendition_resource("video", 3, 3), "video");  // top = base name
  EXPECT_EQ(rendition_resource("video", 0, 3), "video@0");
  EXPECT_EQ(rendition_resource("video", 2, 3), "video@2");
}

TEST_F(PlayerTest, AbrProgressDrivesPlaybackAndQoe) {
  player_.on_abr_progress(/*frames=*/60, /*bytes_ahead=*/500'000,
                          /*playhead_bps=*/600'000);
  ASSERT_TRUE(player_.startup_delay().has_value());
  const auto q = player_.qoe_snapshot();
  EXPECT_EQ(q.bps, 600'000u);       // rendition under the playhead
  EXPECT_EQ(q.cached_bytes, 500'000u);
  EXPECT_NEAR(static_cast<double>(q.cached_frames), 59.0, 1.0);
  // Stall at frame 60, then resume when more frames arrive.
  loop_.run_until(sim::seconds(3));
  EXPECT_EQ(player_.rebuffer_count(), 1u);
  player_.on_abr_progress(model_.frame_count(), 1'000'000, 2'400'000);
  loop_.run_until(sim::seconds(15));
  EXPECT_TRUE(player_.finished());
  EXPECT_EQ(player_.qoe_snapshot().bps, 2'400'000u);
}

TEST(QoeCapture, SamplesPeriodicallyAndLags) {
  sim::EventLoop loop;
  VideoModel model(spec_10s());
  VideoPlayer player(loop, model);
  QoeCapture capture(loop, player, sim::millis(100));
  // Initial sample exists immediately (tick on construction).
  loop.run_until(sim::millis(1));
  ASSERT_TRUE(capture.latest().has_value());
  EXPECT_EQ(capture.latest()->cached_frames, 0u);
  // Feed the player; the snapshot is stale until the next tick.
  player.on_contiguous_bytes(model.frame_offset(31));
  EXPECT_EQ(capture.latest()->cached_frames, 0u);
  loop.run_until(sim::millis(150));
  EXPECT_GT(capture.latest()->cached_frames, 0u);
  EXPECT_GE(capture.samples_taken(), 2u);
}

}  // namespace
}  // namespace xlink::video
