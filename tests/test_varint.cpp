// Unit tests: RFC 9000 varint codec and byte buffer cursors.
#include <gtest/gtest.h>

#include "quic/varint.h"

namespace xlink::quic {
namespace {

TEST(Varint, SizeBoundaries) {
  EXPECT_EQ(varint_size(0), 1u);
  EXPECT_EQ(varint_size(63), 1u);
  EXPECT_EQ(varint_size(64), 2u);
  EXPECT_EQ(varint_size(16383), 2u);
  EXPECT_EQ(varint_size(16384), 4u);
  EXPECT_EQ(varint_size((1ULL << 30) - 1), 4u);
  EXPECT_EQ(varint_size(1ULL << 30), 8u);
  EXPECT_EQ(varint_size(kVarintMax), 8u);
}

class VarintRoundtrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundtrip, EncodesAndDecodes) {
  const std::uint64_t v = GetParam();
  std::vector<std::uint8_t> buf;
  varint_encode(v, buf);
  EXPECT_EQ(buf.size(), varint_size(v));
  Reader r(buf);
  const auto decoded = r.varint();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, v);
  EXPECT_TRUE(r.done());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, VarintRoundtrip,
    ::testing::Values(0ULL, 1ULL, 63ULL, 64ULL, 16383ULL, 16384ULL,
                      (1ULL << 30) - 1, 1ULL << 30, 123456789ULL,
                      0x3fffffffffffffffULL));

TEST(Varint, RfcExampleEncodings) {
  // RFC 9000 appendix A.1 sample values.
  std::vector<std::uint8_t> buf;
  varint_encode(151288809941952652ULL, buf);
  EXPECT_EQ(buf, (std::vector<std::uint8_t>{0xc2, 0x19, 0x7c, 0x5e, 0xff,
                                            0x14, 0xe8, 0x8c}));
  buf.clear();
  varint_encode(494878333ULL, buf);
  EXPECT_EQ(buf, (std::vector<std::uint8_t>{0x9d, 0x7f, 0x3e, 0x7d}));
  buf.clear();
  varint_encode(15293ULL, buf);
  EXPECT_EQ(buf, (std::vector<std::uint8_t>{0x7b, 0xbd}));
  buf.clear();
  varint_encode(37ULL, buf);
  EXPECT_EQ(buf, (std::vector<std::uint8_t>{0x25}));
}

TEST(Reader, UnderrunReturnsNullopt) {
  const std::vector<std::uint8_t> twobyte{0x40};  // claims 2 bytes, has 1
  Reader r(twobyte);
  EXPECT_FALSE(r.varint().has_value());
}

TEST(Reader, EmptyReads) {
  Reader r(std::span<const std::uint8_t>{});
  EXPECT_FALSE(r.u8().has_value());
  EXPECT_FALSE(r.u32().has_value());
  EXPECT_FALSE(r.varint().has_value());
  EXPECT_TRUE(r.done());
}

TEST(Reader, BytesAndPosition) {
  const std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
  Reader r(data);
  auto first = r.bytes(2);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, (std::vector<std::uint8_t>{1, 2}));
  EXPECT_EQ(r.position(), 2u);
  EXPECT_EQ(r.remaining(), 3u);
  EXPECT_FALSE(r.bytes(10).has_value());
  std::array<std::uint8_t, 3> rest{};
  EXPECT_TRUE(r.bytes_into(rest));
  EXPECT_EQ(rest, (std::array<std::uint8_t, 3>{3, 4, 5}));
  EXPECT_TRUE(r.done());
}

TEST(Writer, U32BigEndian) {
  Writer w;
  w.u32(0x01020304);
  EXPECT_EQ(w.data(), (std::vector<std::uint8_t>{1, 2, 3, 4}));
  Reader r(w.data());
  EXPECT_EQ(r.u32(), 0x01020304u);
}

TEST(Writer, TakeMovesBuffer) {
  Writer w;
  w.u8(0xff);
  auto data = w.take();
  EXPECT_EQ(data.size(), 1u);
}

TEST(Varint, MixedStream) {
  Writer w;
  w.varint(5);
  w.u8(0xaa);
  w.varint(70000);
  w.u32(9);
  Reader r(w.data());
  EXPECT_EQ(r.varint(), 5u);
  EXPECT_EQ(r.u8(), 0xaa);
  EXPECT_EQ(r.varint(), 70000u);
  EXPECT_EQ(r.u32(), 9u);
  EXPECT_TRUE(r.done());
}

}  // namespace
}  // namespace xlink::quic
