// Unit tests: telemetry subsystem — TraceSink ring buffer, JSON
// writer/parser, qlog round-trip, MetricsRegistry merge semantics, the
// trace analyzer, and end-to-end tracing of a harness session.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "harness/scenario.h"
#include "telemetry/analyzer.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/qlog.h"
#include "telemetry/trace_sink.h"
#include "trace/synthetic.h"

namespace xlink::telemetry {
namespace {

// ------------------------------------------------------------- TraceSink

TEST(TraceSink, DisabledByDefaultAndMacroIsNullSafe) {
  TraceSink sink;
  EXPECT_FALSE(sink.enabled());
  TraceSink* null_sink = nullptr;
  XLINK_TRACE(null_sink, Event::pto(1, Origin::kServer, 0, 1));
  XLINK_TRACE(&sink, Event::pto(2, Origin::kServer, 0, 1));  // disabled
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.recorded(), 0u);
}

TEST(TraceSink, RecordsInOrderWhenEnabled) {
  TraceSink sink;
  sink.set_enabled(true);
  for (std::uint64_t pn = 0; pn < 5; ++pn)
    XLINK_TRACE(&sink,
                Event::packet_sent(pn * 10, Origin::kServer, 0, pn, 1200,
                                   true, false));
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint64_t pn = 0; pn < 5; ++pn) {
    EXPECT_EQ(events[pn].t, pn * 10);
    EXPECT_EQ(events[pn].a, pn);
  }
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST(TraceSink, RingKeepsNewestAndCountsDropped) {
  TraceSink sink(4);
  sink.set_enabled(true);
  for (std::uint64_t pn = 0; pn < 6; ++pn)
    sink.record(Event::packet_sent(pn, Origin::kServer, 0, pn, 1, true,
                                   false));
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.recorded(), 6u);
  EXPECT_EQ(sink.dropped(), 2u);
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first, and the two oldest are gone.
  EXPECT_EQ(events.front().a, 2u);
  EXPECT_EQ(events.back().a, 5u);
}

TEST(TraceSink, ClearResets) {
  TraceSink sink(2);
  sink.set_enabled(true);
  sink.record(Event::pto(1, Origin::kServer, 0, 1));
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.recorded(), 0u);
  EXPECT_TRUE(sink.enabled());  // clear drops events, not the switch
}

// ------------------------------------------------------------------ JSON

TEST(Json, EscapesSpecials) {
  EXPECT_EQ(json_escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  EXPECT_EQ(json_escape("plain"), "plain");
}

TEST(Json, WriterParserRoundTrip) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("name", "bench \"quoted\"");
  w.kv("n", std::uint64_t{42});
  w.kv("ratio", 0.5);
  w.kv("ok", true);
  w.key("rows");
  w.begin_array();
  w.value(1);
  w.value("two");
  w.begin_object();
  w.kv("nested", 3);
  w.end_object();
  w.end_array();
  w.end_object();

  const auto parsed = parse_json(os.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->get_str("name"), "bench \"quoted\"");
  EXPECT_EQ(parsed->get_u64("n"), 42u);
  EXPECT_DOUBLE_EQ(parsed->get_num("ratio"), 0.5);
  const JsonValue* rows = parsed->get("rows");
  ASSERT_TRUE(rows && rows->is_array());
  ASSERT_EQ(rows->array.size(), 3u);
  EXPECT_DOUBLE_EQ(rows->array[0].number, 1.0);
  EXPECT_EQ(rows->array[1].str, "two");
  EXPECT_EQ(rows->array[2].get_u64("nested"), 3u);
}

TEST(Json, ParserRejectsMalformed) {
  EXPECT_FALSE(parse_json("{").has_value());
  EXPECT_FALSE(parse_json("{\"a\": }").has_value());
  EXPECT_FALSE(parse_json("[1, 2,]").has_value());
  EXPECT_FALSE(parse_json("").has_value());
}

TEST(Json, AccessorsReturnDefaultsOnMissingMembers) {
  const auto parsed = parse_json("{\"x\": 1}");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->get_u64("missing", 7), 7u);
  EXPECT_EQ(parsed->get_str("missing", "d"), "d");
  EXPECT_EQ(parsed->get("missing"), nullptr);
}

// ------------------------------------------------------------------ qlog

std::vector<Event> one_of_each_event() {
  using E = Event;
  return {
      E::packet_sent(100, Origin::kServer, 0, 7, 1350, true, false),
      E::packet_sent(110, Origin::kServer, 1, 8, 900, true, true),
      E::packet_received(120, Origin::kClient, 1, 8, 900),
      E::ack_mp(130, Origin::kServer, 0, 7, 1350, 48000, true),
      E::ack_mp(140, Origin::kServer, 1, 8, 0, 0, false),
      E::loss(150, Origin::kServer, 0, 3, 1350, 1),
      E::pto(160, Origin::kServer, 1, 2),
      E::cc_state(170, Origin::kServer, 0, 40000, 12000, 65535, 52000, true),
      E::cc_state(180, Origin::kServer, 1, 20000, 500, kNoValue, 0, false),
      E::path_status(190, Origin::kClient, 1, 2),
      E::path_bound(200, Origin::kClient, 1, 3),
      E::reinjection(210, Origin::kServer, 0, 2700, 5),
      E::double_threshold_gate(220, Origin::kServer, true, 4, 800000,
                               120000),
      E::double_threshold_gate(230, Origin::kServer, false, 2, kNoValue,
                               kNoValue),
      E::qoe_signal(240, Origin::kServer, 1 << 20, 48, 2500000),
      E::player_first_frame(250, 250000),
      E::player_stall(260, 12),
      E::player_resume(270, 10000, 12),
      E::player_finished(280, 360),
      E::fault(290, 1, 0, true, 2),
      E::fault(300, 1, 6, false, 3),
      E::path_health(310, Origin::kServer, 1, 2, 3),
      E::abr_decision(320, 0, 2, kNoValue, kNoValue, 0),
      E::abr_decision(330, 7, 1, 2, 1800000, 4200),
  };
}

TEST(Qlog, RoundTripPreservesEveryField) {
  const std::vector<Event> events = one_of_each_event();
  QlogMeta meta;
  meta.title = "round trip";
  meta.scenario = "unit \"test\"";  // exercises escaping in common_fields
  meta.scheme = "XLINK";
  meta.seed = 424242;

  std::ostringstream os;
  write_qlog(os, events, meta, events.size() + 3, 3);
  const auto parsed = parse_qlog(os.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->meta.title, meta.title);
  EXPECT_EQ(parsed->meta.scenario, meta.scenario);
  EXPECT_EQ(parsed->meta.scheme, meta.scheme);
  EXPECT_EQ(parsed->meta.seed, meta.seed);
  EXPECT_EQ(parsed->recorded, events.size() + 3);
  EXPECT_EQ(parsed->dropped, 3u);
  ASSERT_EQ(parsed->events.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(parsed->events[i], events[i]) << "event " << i << " ("
                                            << event_name(events[i].type)
                                            << ")";
}

TEST(Qlog, EventNamesRoundTrip) {
  for (const Event& e : one_of_each_event()) {
    EventType back;
    ASSERT_TRUE(event_type_from_name(event_name(e.type), back));
    EXPECT_EQ(back, e.type);
  }
  EventType out;
  EXPECT_FALSE(event_type_from_name("transport:no_such_event", out));
}

TEST(Qlog, ParseRejectsNonQlogJson) {
  EXPECT_FALSE(parse_qlog("{\"qlog_version\": \"0.4\"}").has_value());
  EXPECT_FALSE(parse_qlog("not json").has_value());
}

// --------------------------------------------------------------- metrics

TEST(Metrics, CountersGaugesHistogramsBasics) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  m.add_counter("c");
  m.add_counter("c", 4);
  m.set_gauge("g", 1.5);
  m.set_gauge("g", 2.5);  // last write wins
  m.observe("h", 3.0);
  m.observe("h", 5.0);
  EXPECT_EQ(m.counter("c"), 5u);
  EXPECT_EQ(m.counter("absent"), 0u);
  EXPECT_DOUBLE_EQ(m.gauge("g"), 2.5);
  const Histogram* h = m.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_DOUBLE_EQ(h->mean(), 4.0);
  EXPECT_DOUBLE_EQ(h->min, 3.0);
  EXPECT_DOUBLE_EQ(h->max, 5.0);
  EXPECT_EQ(m.histogram("absent"), nullptr);
}

TEST(Metrics, HistogramBucketsNonPositiveValues) {
  Histogram h;
  h.observe(0.0);
  h.observe(-2.0);
  h.observe(4.0);
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.min, -2.0);
  EXPECT_DOUBLE_EQ(h.max, 4.0);
  std::uint64_t total = 0;
  for (const auto& [bucket, n] : h.buckets) total += n;
  EXPECT_EQ(total, 3u);  // nothing silently uncounted
}

TEST(Metrics, MergeSemanticsPerKind) {
  MetricsRegistry a;
  a.add_counter("c", 2);
  a.set_gauge("g", 1.0);
  a.observe("h", 1.0);

  MetricsRegistry b;
  b.add_counter("c", 3);
  b.add_counter("only_b", 1);
  b.set_gauge("g", 9.0);
  b.observe("h", 64.0);

  a.merge(b);
  EXPECT_EQ(a.counter("c"), 5u);        // counters sum
  EXPECT_EQ(a.counter("only_b"), 1u);   // absent = 0 on this side
  EXPECT_DOUBLE_EQ(a.gauge("g"), 9.0);  // gauge: merged value wins
  const Histogram* h = a.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_DOUBLE_EQ(h->sum, 65.0);
  EXPECT_DOUBLE_EQ(h->min, 1.0);
  EXPECT_DOUBLE_EQ(h->max, 64.0);
}

TEST(Metrics, MergeOrderIsDeterministic) {
  // Folding the same registries in the same order twice gives exactly
  // equal registries — the property harness/parallel.cpp relies on.
  auto make = [](int i) {
    MetricsRegistry m;
    m.add_counter("n", static_cast<std::uint64_t>(i));
    m.observe("v", 0.1 * i);
    m.set_gauge("g", i);
    return m;
  };
  MetricsRegistry fold1, fold2;
  for (int i = 1; i <= 4; ++i) fold1.merge(make(i));
  for (int i = 1; i <= 4; ++i) fold2.merge(make(i));
  EXPECT_EQ(fold1, fold2);
  EXPECT_EQ(fold1.counter("n"), 10u);
}

TEST(Metrics, WriteJsonIsParseable) {
  MetricsRegistry m;
  m.add_counter("quic.packets", 12);
  m.set_gauge("buffer", 1.25);
  m.observe("rct", 0.5);
  std::ostringstream os;
  m.write_json(os);
  const auto parsed = parse_json(os.str());
  ASSERT_TRUE(parsed.has_value());
  const JsonValue* counters = parsed->get("counters");
  ASSERT_TRUE(counters && counters->is_object());
  EXPECT_EQ(counters->get_u64("quic.packets"), 12u);
  ASSERT_NE(parsed->get("histograms"), nullptr);
}

// -------------------------------------------------------------- analyzer

TEST(Analyzer, SyntheticTraceCountsAndStallAttribution) {
  ParsedTrace trace;
  trace.meta.scenario = "synthetic";
  using E = Event;
  trace.events = {
      E::path_bound(0, Origin::kClient, 0, 0),  // wifi
      E::path_bound(0, Origin::kClient, 1, 1),  // lte
      E::packet_sent(1000, Origin::kServer, 0, 1, 1200, true, false),
      E::packet_sent(2000, Origin::kServer, 1, 1, 800, true, true),
      E::loss(3000, Origin::kServer, 0, 1, 1200, 0),
      E::pto(4000, Origin::kServer, 0, 1),
      E::reinjection(5000, Origin::kServer, 0, 800, 1),
      E::double_threshold_gate(5500, Origin::kServer, true, 4, 100000, 50000),
      E::player_stall(6000, 3),
      E::player_resume(7000, 1000, 3),
      E::player_finished(8000, 100),
  };
  const AnalysisReport rep = analyze(trace, sim::seconds(2));
  ASSERT_EQ(rep.paths.size(), 2u);
  EXPECT_EQ(rep.paths[0].packets_sent, 1u);
  EXPECT_EQ(rep.paths[0].packets_lost, 1u);
  EXPECT_EQ(rep.paths[0].ptos, 1u);
  EXPECT_EQ(rep.paths[0].reinjections_from, 1u);
  // First-tx excludes the re-injected copy on path 1.
  EXPECT_EQ(rep.reinjection.first_tx_bytes, 1200u);
  EXPECT_EQ(rep.reinjection.reinjected_bytes, 800u);
  EXPECT_TRUE(rep.finished);
  ASSERT_EQ(rep.stalls.size(), 1u);
  EXPECT_TRUE(rep.stalls[0].resolved);
  EXPECT_EQ(rep.stalls[0].duration, 1000u);
  EXPECT_EQ(rep.stalls[0].worst_path, 0);
  // PTO on path 0 inside the window => outage attribution.
  EXPECT_NE(rep.stalls[0].attribution.find("outage"), std::string::npos);
  const std::string text = render_report(rep);
  EXPECT_NE(text.find("wifi"), std::string::npos);
  EXPECT_NE(text.find("stall @"), std::string::npos);
}

TEST(Analyzer, DropsStallsCancelledWithinSameInstant) {
  ParsedTrace trace;
  trace.events = {
      Event::player_stall(1000, 1),
      Event::player_resume(1000, 0, 1),  // same-instant cancellation
      Event::player_stall(2000, 2),
      Event::player_resume(3000, 1000, 2),
  };
  const AnalysisReport rep = analyze(trace, sim::seconds(2));
  ASSERT_EQ(rep.stalls.size(), 1u);
  EXPECT_EQ(rep.stalls[0].frame, 2u);
  EXPECT_EQ(rep.reinjection.stalls, 1u);
}

// ------------------------------------------------- end-to-end (harness)

harness::SessionConfig tiny_session(bool traced) {
  harness::SessionConfig cfg;
  cfg.scheme = core::Scheme::kXlink;
  cfg.seed = 7;
  cfg.time_limit = sim::seconds(30);
  cfg.video.duration = sim::seconds(3);
  cfg.video.bitrate_bps = 2'000'000;
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kWifi, trace::stable_lte(1, sim::seconds(10)),
      sim::millis(30)));
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kLte, trace::stable_lte(2, sim::seconds(10)),
      sim::millis(80)));
  cfg.trace.enabled = traced;
  return cfg;
}

TEST(TelemetryE2E, TracedSessionRecordsTransportAndPlayerEvents) {
  harness::Session session(tiny_session(true));
  const auto result = session.run();
  EXPECT_TRUE(result.download_finished);
  ASSERT_NE(session.trace_sink(), nullptr);
  const auto events = session.trace_sink()->snapshot();
  ASSERT_FALSE(events.empty());
  bool saw_sent = false, saw_recv = false, saw_ack = false, saw_bound = false,
       saw_first_frame = false;
  sim::Time last_t = 0;
  for (const Event& e : events) {
    EXPECT_GE(e.t, last_t);  // simulator time is monotonic
    last_t = e.t;
    switch (e.type) {
      case EventType::kPacketSent: saw_sent = true; break;
      case EventType::kPacketReceived: saw_recv = true; break;
      case EventType::kAckMp: saw_ack = true; break;
      case EventType::kPathBound: saw_bound = true; break;
      case EventType::kPlayerFirstFrame: saw_first_frame = true; break;
      default: break;
    }
  }
  EXPECT_TRUE(saw_sent);
  EXPECT_TRUE(saw_recv);
  EXPECT_TRUE(saw_ack);
  EXPECT_TRUE(saw_bound);
  EXPECT_TRUE(saw_first_frame);
  EXPECT_EQ(result.metrics.counter("telemetry.events_recorded"),
            session.trace_sink()->recorded());
}

TEST(TelemetryE2E, TracingDoesNotChangeSessionOutcome) {
  harness::Session plain(tiny_session(false));
  harness::Session traced(tiny_session(true));
  const auto a = plain.run();
  const auto b = traced.run();
  EXPECT_EQ(plain.trace_sink(), nullptr);
  EXPECT_EQ(a.chunk_rct_seconds, b.chunk_rct_seconds);
  EXPECT_EQ(a.first_frame_seconds, b.first_frame_seconds);
  EXPECT_EQ(a.rebuffer_seconds, b.rebuffer_seconds);
  EXPECT_EQ(a.server_wire_bytes, b.server_wire_bytes);
  EXPECT_EQ(a.stream_payload_bytes, b.stream_payload_bytes);
  EXPECT_EQ(a.reinjected_bytes, b.reinjected_bytes);
  EXPECT_EQ(a.packets_lost, b.packets_lost);
  EXPECT_EQ(a.path_down_bytes, b.path_down_bytes);
}

TEST(TelemetryE2E, SessionWritesParseableQlogFile) {
  const std::string path = ::testing::TempDir() + "/xlink_e2e.qlog";
  auto cfg = tiny_session(true);
  cfg.trace.qlog_path = path;
  cfg.trace.label = "e2e";
  harness::Session session(std::move(cfg));
  session.run();
  const auto parsed = parse_qlog_file(path);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->meta.scenario, "e2e");
  EXPECT_EQ(parsed->meta.scheme, "XLINK");
  EXPECT_EQ(parsed->meta.seed, 7u);
  EXPECT_FALSE(parsed->events.empty());
  // The analyzer must accept every trace the harness can produce.
  const AnalysisReport rep = analyze(*parsed, sim::seconds(2));
  EXPECT_EQ(rep.events, parsed->events.size());
  EXPECT_FALSE(rep.paths.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xlink::telemetry
