// Tests: the transport scheme catalogue and behaviours that distinguish
// schemes on the wire (ack return path, frame-priority item splitting).
#include <gtest/gtest.h>

#include "core/session.h"
#include "mpquic/schedulers.h"
#include "test_support.h"

namespace xlink::core {
namespace {

TEST(SchemeCatalogue, Names) {
  EXPECT_EQ(to_string(Scheme::kSinglePath), "SP");
  EXPECT_EQ(to_string(Scheme::kVanillaMp), "Vanilla-MP");
  EXPECT_EQ(to_string(Scheme::kXlink), "XLINK");
  EXPECT_EQ(to_string(Scheme::kConnMigration), "CM");
  EXPECT_EQ(to_string(Scheme::kMptcpLike), "MPTCP");
}

TEST(SchemeCatalogue, MultipathFlag) {
  EXPECT_FALSE(is_multipath(Scheme::kSinglePath));
  EXPECT_FALSE(is_multipath(Scheme::kConnMigration));
  EXPECT_TRUE(is_multipath(Scheme::kVanillaMp));
  EXPECT_TRUE(is_multipath(Scheme::kXlink));
  EXPECT_TRUE(is_multipath(Scheme::kRedundant));
}

TEST(SchemeCatalogue, WiringMatchesScheme) {
  const auto sp = make_scheme_config(Scheme::kSinglePath, quic::Role::kClient);
  EXPECT_EQ(sp.scheduler, nullptr);
  EXPECT_FALSE(sp.params.enable_multipath);

  const auto mp = make_scheme_config(Scheme::kVanillaMp, quic::Role::kServer);
  ASSERT_NE(mp.scheduler, nullptr);
  EXPECT_EQ(mp.scheduler->name(), "min-rtt");
  EXPECT_TRUE(mp.params.enable_multipath);
  EXPECT_FALSE(mp.tcp_style_rto);

  const auto mptcp =
      make_scheme_config(Scheme::kMptcpLike, quic::Role::kServer);
  EXPECT_TRUE(mptcp.tcp_style_rto);
  EXPECT_EQ(mptcp.ack_policy, quic::AckPathPolicy::kOriginalPath);

  const auto xl = make_scheme_config(Scheme::kXlink, quic::Role::kServer);
  ASSERT_NE(xl.scheduler, nullptr);
  EXPECT_EQ(xl.scheduler->name(), "xlink");
  EXPECT_EQ(xl.ack_policy, quic::AckPathPolicy::kFastestPath);

  const auto strawman =
      make_scheme_config(Scheme::kReinjectNoQoe, quic::Role::kServer);
  EXPECT_EQ(strawman.scheduler->name(), "xlink");
}

TEST(SchemeCatalogue, OptionsOverrideXlinkKnobs) {
  SchemeOptions opts;
  opts.xlink_ack_policy = quic::AckPathPolicy::kOriginalPath;
  opts.cc = quic::CcAlgorithm::kNewReno;
  const auto cfg = make_scheme_config(Scheme::kXlink, quic::Role::kServer,
                                      opts);
  EXPECT_EQ(cfg.ack_policy, quic::AckPathPolicy::kOriginalPath);
  EXPECT_EQ(cfg.cc, quic::CcAlgorithm::kNewReno);
}

// ---- ack return path on the wire ------------------------------------

struct AckPathFixture {
  explicit AckPathFixture(quic::AckPathPolicy policy) {
    test::WirePair::Options o;
    o.client_config = test::multipath_config();
    o.server_config = test::multipath_config();
    o.client_config.ack_policy = policy;
    o.client_config.scheduler = mpquic::make_min_rtt_scheduler();
    o.server_config.scheduler = mpquic::make_min_rtt_scheduler();
    pair = std::make_unique<test::WirePair>(std::move(o));
    EXPECT_TRUE(pair->establish());
    pair->run_for(sim::millis(100));
    EXPECT_TRUE(pair->client->open_path().has_value());
    pair->run_for(sim::millis(200));
    // Bias the client's view: path 1 is much slower.
    for (int i = 0; i < 20; ++i) {
      pair->client->path_state(0).rtt.on_sample(sim::millis(20), 0);
      pair->client->path_state(1).rtt.on_sample(sim::millis(400), 0);
    }
  }

  /// Counts client->server datagrams per path while the server pushes
  /// data over path 1 only.
  std::pair<std::uint64_t, std::uint64_t> count_ack_paths() {
    std::uint64_t on_path0 = 0, on_path1 = 0;
    pair->drop_client_to_server = [&](quic::PathId path,
                                      const net::Datagram&) {
      (path == 0 ? on_path0 : on_path1)++;
      return false;
    };
    // Force the server to send on path 1 by exhausting path 0.
    auto& sp0 = pair->server->path_state(0);
    for (int i = 0; i < 20; ++i) {
      pair->server->path_state(1).rtt.on_sample(sim::millis(10), 0);
      sp0.rtt.on_sample(sim::millis(500), 0);
    }
    const quic::StreamId id = pair->client->open_stream();
    pair->client->stream_send(id, test::bytes_of("r"), true);
    pair->run_for(sim::millis(100));
    on_path0 = on_path1 = 0;  // ignore the request itself
    pair->server->stream_send(id, test::pattern_bytes(100 * 1024), true);
    pair->run_for(sim::seconds(1));
    return {on_path0, on_path1};
  }

  std::unique_ptr<test::WirePair> pair;
};

TEST(AckPathPolicy, FastestPathCarriesAcksForSlowPathData) {
  AckPathFixture fx(quic::AckPathPolicy::kFastestPath);
  const auto [p0, p1] = fx.count_ack_paths();
  // Data rides path 1; acks should come back mostly on path 0 (fast).
  EXPECT_GT(p0, p1);
}

TEST(AckPathPolicy, OriginalPathKeepsAcksOnTheirPath) {
  AckPathFixture fx(quic::AckPathPolicy::kOriginalPath);
  const auto [p0, p1] = fx.count_ack_paths();
  EXPECT_GT(p1, p0);
}

// ---- frame-priority item splitting -----------------------------------

TEST(FramePrioritySend, SplitsItemsAtPriorityBoundary) {
  test::WirePair::Options o;
  o.client_config = test::multipath_config();
  o.server_config = test::multipath_config();
  o.server_config.scheduler = mpquic::make_min_rtt_scheduler();
  test::WirePair pair(std::move(o));
  ASSERT_TRUE(pair.establish());

  // Withhold sending by leaving no send callback pump... instead inspect
  // the queue right after the prioritized write.
  auto& server = *pair.server;
  const quic::StreamId id = 4;
  // 10 KB body whose first 3 KB are the "first video frame".
  server.stream_send_prioritized(id, test::pattern_bytes(10 * 1024), true,
                                 /*frame_priority=*/1, /*position=*/0,
                                 /*size=*/3 * 1024);
  // The queue was drained by pump; check the stream's priority map and the
  // sent state instead.
  auto* stream = server.send_stream(id);
  ASSERT_NE(stream, nullptr);
  EXPECT_EQ(stream->frame_priority_at(0), 1);
  EXPECT_EQ(stream->frame_priority_at(3 * 1024 - 1), 1);
  EXPECT_EQ(stream->frame_priority_at(3 * 1024), 0);
  pair.run_for(sim::seconds(1));
  auto* recv = pair.client->recv_stream(id);
  ASSERT_NE(recv, nullptr);
  EXPECT_TRUE(recv->fully_received());
}

}  // namespace
}  // namespace xlink::core
