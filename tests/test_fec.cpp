// Forward erasure correction subsystem tests.
//
// Four layers, bottom up: GF(2^8) field properties (exhaustive over the
// 255 non-zero elements), Reed-Solomon / XOR round trips under EVERY
// erasure pattern inside the repair budget (the MDS claim, checked by
// enumeration rather than trusted), a deterministic erasure-fuzz sweep in
// the spirit of test_parser_fuzz.cpp, and the framer <-> recovery-buffer
// datagram round trip plus an end-to-end XLINK session under
// Gilbert-Elliott burst loss. A fold_day regression pins the satellite
// fix: redundancy_pct must fold FEC repair bytes in with re-injection.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

#include "fec/framer.h"
#include "fec/gf256.h"
#include "fec/scheme.h"
#include "harness/parallel.h"
#include "harness/scenario.h"
#include "net/path.h"
#include "trace/synthetic.h"

namespace xlink {
namespace {

/// Deterministic xorshift64 byte stream (same idiom as the parser fuzz
/// sweep): tests must not depend on the platform's rand().
class ByteStream {
 public:
  explicit ByteStream(std::uint64_t seed) : x_(seed | 1) {}
  std::uint8_t next() {
    x_ ^= x_ << 13;
    x_ ^= x_ >> 7;
    x_ ^= x_ << 17;
    return static_cast<std::uint8_t>(x_);
  }
  std::uint64_t next_u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | next();
    return v;
  }
  /// Uniform-ish draw in [lo, hi] -- bias is irrelevant for fuzz coverage.
  std::size_t in_range(std::size_t lo, std::size_t hi) {
    return lo + static_cast<std::size_t>(next_u64() % (hi - lo + 1));
  }

 private:
  std::uint64_t x_;
};

// ---------------------------------------------------------------------------
// GF(2^8) field properties.

TEST(Gf256, MulIsCommutativeWithCorrectIdentityAndAnnihilator) {
  for (unsigned a = 0; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    EXPECT_EQ(fec::gf_mul(ua, 1), ua);
    EXPECT_EQ(fec::gf_mul(1, ua), ua);
    EXPECT_EQ(fec::gf_mul(ua, 0), 0);
    EXPECT_EQ(fec::gf_mul(0, ua), 0);
    for (unsigned b = a; b < 256; ++b) {
      const auto ub = static_cast<std::uint8_t>(b);
      ASSERT_EQ(fec::gf_mul(ua, ub), fec::gf_mul(ub, ua))
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(Gf256, MulDistributesOverXorForEveryPair) {
  // Distributivity over addition (= XOR in GF(2^8)) for all pairs against
  // a spread of multipliers; exhaustive triples would be 16M iterations
  // for no additional coverage of the table construction.
  const std::uint8_t cs[] = {1, 2, 3, 0x1d, 0x53, 0x8e, 0xff};
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      for (const std::uint8_t c : cs) {
        const auto lhs = fec::gf_mul(c, static_cast<std::uint8_t>(a ^ b));
        const auto rhs = static_cast<std::uint8_t>(
            fec::gf_mul(c, static_cast<std::uint8_t>(a)) ^
            fec::gf_mul(c, static_cast<std::uint8_t>(b)));
        ASSERT_EQ(lhs, rhs) << "a=" << a << " b=" << b << " c=" << int(c);
      }
    }
  }
}

TEST(Gf256, MulIsAssociativeOnSampledTriples) {
  ByteStream bs(0x9E3779B97F4A7C15ull);
  for (int round = 0; round < 100'000; ++round) {
    const std::uint8_t a = bs.next(), b = bs.next(), c = bs.next();
    ASSERT_EQ(fec::gf_mul(fec::gf_mul(a, b), c),
              fec::gf_mul(a, fec::gf_mul(b, c)))
        << "a=" << int(a) << " b=" << int(b) << " c=" << int(c);
  }
}

TEST(Gf256, EveryNonzeroElementHasAUniqueInverse) {
  bool seen[256] = {};
  for (unsigned a = 1; a < 256; ++a) {
    const std::uint8_t inv = fec::gf_inv(static_cast<std::uint8_t>(a));
    ASSERT_NE(inv, 0);
    ASSERT_EQ(fec::gf_mul(static_cast<std::uint8_t>(a), inv), 1) << "a=" << a;
    // Inversion is an involution and a bijection on the non-zero elements.
    EXPECT_EQ(fec::gf_inv(inv), a);
    EXPECT_FALSE(seen[inv]);
    seen[inv] = true;
  }
}

TEST(Gf256, DivisionInvertsMultiplicationForEveryPair) {
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 1; b < 256; ++b) {
      const auto ua = static_cast<std::uint8_t>(a);
      const auto ub = static_cast<std::uint8_t>(b);
      ASSERT_EQ(fec::gf_div(fec::gf_mul(ua, ub), ub), ua);
      ASSERT_EQ(fec::gf_mul(fec::gf_div(ua, ub), ub), ua);
    }
  }
}

TEST(Gf256, AddmulAndScaleMatchScalarReference) {
  ByteStream bs(42);
  std::vector<std::uint8_t> dst(257), src(257), ref(257);
  for (auto& v : dst) v = bs.next();
  for (auto& v : src) v = bs.next();
  for (const std::uint8_t c : {0, 1, 2, 0x1d, 0x80, 0xff}) {
    ref = dst;
    for (std::size_t i = 0; i < ref.size(); ++i)
      ref[i] = static_cast<std::uint8_t>(ref[i] ^ fec::gf_mul(c, src[i]));
    auto got = dst;
    fec::gf_addmul(got, src, c);
    ASSERT_EQ(got, ref) << "addmul c=" << int(c);

    ref = dst;
    for (auto& v : ref) v = fec::gf_mul(c, v);
    got = dst;
    fec::gf_scale(got, c);
    ASSERT_EQ(got, ref) << "scale c=" << int(c);
  }
  // Shorter source: addmul must stop at the shorter span (the implicit
  // zero-padding rule the framer's variable-length symbols rely on).
  auto got = dst;
  fec::gf_addmul(got, std::span<const std::uint8_t>(src.data(), 100), 0x35);
  for (std::size_t i = 100; i < got.size(); ++i) ASSERT_EQ(got[i], dst[i]);
}

// ---------------------------------------------------------------------------
// Scheme-level round trips.

std::vector<std::vector<std::uint8_t>> make_sources(std::size_t k,
                                                    std::size_t len,
                                                    ByteStream& bs) {
  std::vector<std::vector<std::uint8_t>> sources(k);
  for (auto& s : sources) {
    s.resize(len);
    for (auto& b : s) b = bs.next();
  }
  return sources;
}

/// Encodes k sources with r repairs, erases `erased` source indices,
/// decodes using only the repair rows in `use_repairs`, and returns
/// whether recover() succeeded with every symbol byte-identical.
bool round_trips(const fec::FecScheme& scheme,
                 const std::vector<std::vector<std::uint8_t>>& sources,
                 std::size_t r, const std::vector<std::size_t>& erased,
                 const std::vector<std::uint32_t>& use_repairs) {
  const std::size_t k = sources.size();
  const std::size_t len = sources[0].size();

  std::vector<std::span<const std::uint8_t>> src_spans(k);
  for (std::size_t i = 0; i < k; ++i) src_spans[i] = sources[i];
  std::vector<std::vector<std::uint8_t>> repairs(r,
                                                 std::vector<std::uint8_t>(len));
  std::vector<std::span<std::uint8_t>> rep_spans(r);
  for (std::size_t j = 0; j < r; ++j) rep_spans[j] = repairs[j];
  scheme.encode(src_spans, rep_spans);

  std::vector<std::vector<std::uint8_t>> working = sources;
  std::vector<fec::SourceSymbol> slots(k);
  for (std::size_t i = 0; i < k; ++i) {
    slots[i].present = true;
    slots[i].data = working[i];
  }
  for (const std::size_t e : erased) {
    std::fill(working[e].begin(), working[e].end(), 0xEE);  // poison
    slots[e].present = false;
  }
  std::vector<std::vector<std::uint8_t>> rep_copies;
  std::vector<fec::RepairSymbol> rep_slots;
  for (const std::uint32_t j : use_repairs) {
    rep_copies.push_back(repairs[j]);  // recover() clobbers repair payloads
    rep_slots.push_back({rep_copies.back(), j});
  }
  if (!scheme.recover(slots, rep_slots)) return false;
  for (std::size_t i = 0; i < k; ++i)
    if (working[i] != sources[i]) return false;
  return true;
}

TEST(ReedSolomon, RecoversEveryErasurePatternWithinTheRepairBudget) {
  const fec::ReedSolomon rs;
  ByteStream bs(7);
  const std::size_t k = 8;
  const auto sources = make_sources(k, 48, bs);
  for (std::size_t r = 1; r <= 4; ++r) {
    for (unsigned mask = 0; mask < (1u << k); ++mask) {
      const auto erasures =
          static_cast<std::size_t>(__builtin_popcount(mask));
      if (erasures > r) continue;
      std::vector<std::size_t> erased;
      for (std::size_t i = 0; i < k; ++i)
        if (mask & (1u << i)) erased.push_back(i);
      std::vector<std::uint32_t> all_repairs(r);
      for (std::size_t j = 0; j < r; ++j)
        all_repairs[j] = static_cast<std::uint32_t>(j);
      ASSERT_TRUE(round_trips(rs, sources, r, erased, all_repairs))
          << "r=" << r << " mask=" << mask;
    }
  }
}

TEST(ReedSolomon, AnyRepairSubsetOfErasureSizeDecodes) {
  // The MDS property in full: e erasures are recoverable from ANY e of the
  // r repair symbols, not just the first e (repairs get lost too).
  const fec::ReedSolomon rs;
  ByteStream bs(11);
  const std::size_t k = 6, r = 4;
  const auto sources = make_sources(k, 32, bs);
  for (unsigned src_mask = 0; src_mask < (1u << k); ++src_mask) {
    const auto e = static_cast<std::size_t>(__builtin_popcount(src_mask));
    if (e == 0 || e > r) continue;
    std::vector<std::size_t> erased;
    for (std::size_t i = 0; i < k; ++i)
      if (src_mask & (1u << i)) erased.push_back(i);
    for (unsigned rep_mask = 0; rep_mask < (1u << r); ++rep_mask) {
      if (static_cast<std::size_t>(__builtin_popcount(rep_mask)) != e)
        continue;
      std::vector<std::uint32_t> use;
      for (std::uint32_t j = 0; j < r; ++j)
        if (rep_mask & (1u << j)) use.push_back(j);
      ASSERT_TRUE(round_trips(rs, sources, r, erased, use))
          << "src_mask=" << src_mask << " rep_mask=" << rep_mask;
    }
  }
}

TEST(ReedSolomon, FailsCleanlyPastTheBudget) {
  const fec::ReedSolomon rs;
  ByteStream bs(13);
  const auto sources = make_sources(8, 40, bs);
  // 3 erasures, 2 repair symbols: must return false, not garbage.
  EXPECT_FALSE(round_trips(rs, sources, 2, {1, 4, 6}, {0, 1}));
}

TEST(ReedSolomon, CoefficientMatrixHasNoZerosAndDistinctRows) {
  // Cauchy construction sanity: every generator coefficient is non-zero
  // (a zero would make a source invisible to that repair row) and no two
  // repair rows are identical.
  const std::size_t k = 8, r = 4;
  for (std::uint32_t j = 0; j < r; ++j)
    for (std::size_t i = 0; i < k; ++i)
      ASSERT_NE(fec::ReedSolomon::coefficient(k, j, i), 0)
          << "j=" << j << " i=" << i;
  for (std::uint32_t a = 0; a < r; ++a)
    for (std::uint32_t b = a + 1; b < r; ++b) {
      bool same = true;
      for (std::size_t i = 0; i < k; ++i)
        same &= fec::ReedSolomon::coefficient(k, a, i) ==
                fec::ReedSolomon::coefficient(k, b, i);
      EXPECT_FALSE(same) << "rows " << a << " and " << b;
    }
}

TEST(XorParity, RecoversOneErasureAndRejectsTwo) {
  const fec::XorParity xp;
  ByteStream bs(17);
  const std::size_t k = 8;
  const auto sources = make_sources(k, 64, bs);
  EXPECT_EQ(xp.max_repairs(k), 1u);
  for (std::size_t e = 0; e < k; ++e)
    ASSERT_TRUE(round_trips(xp, sources, 1, {e}, {0})) << "erased " << e;
  EXPECT_FALSE(round_trips(xp, sources, 1, {2, 5}, {0}));
}

TEST(FecFuzz, DeterministicErasureSweep) {
  // Random window shapes, symbol lengths, contents and erasure patterns;
  // fixed seed so a failure reproduces exactly.
  const fec::ReedSolomon rs;
  ByteStream bs(0xFEC);
  for (int round = 0; round < 300; ++round) {
    const std::size_t k = bs.in_range(2, 16);
    const std::size_t r = bs.in_range(1, 4);
    const std::size_t len = bs.in_range(1, 280);
    const auto sources = make_sources(k, len, bs);
    const std::size_t e = bs.in_range(0, std::min(r, k));
    std::vector<std::size_t> erased;
    while (erased.size() < e) {
      const std::size_t i = bs.in_range(0, k - 1);
      if (std::find(erased.begin(), erased.end(), i) == erased.end())
        erased.push_back(i);
    }
    std::vector<std::uint32_t> use;
    while (use.size() < e) {
      const auto j = static_cast<std::uint32_t>(bs.in_range(0, r - 1));
      if (std::find(use.begin(), use.end(), j) == use.end()) use.push_back(j);
    }
    ASSERT_TRUE(round_trips(rs, sources, r, erased, use))
        << "round=" << round << " k=" << k << " r=" << r << " len=" << len;
  }
}

// ---------------------------------------------------------------------------
// Framer <-> recovery buffer: the datagram-level round trip.

std::vector<std::uint8_t> fake_wire(quic::PacketNumber pn, std::size_t len) {
  std::vector<std::uint8_t> wire(len);
  for (std::size_t b = 0; b < len; ++b)
    wire[b] = static_cast<std::uint8_t>(pn * 31 + b * 7 + 1);
  return wire;
}

TEST(FecFramer, RepairFramesRebuildDroppedDatagramsByteForByte) {
  fec::FecConfig cfg;
  cfg.enabled = true;
  cfg.window = 4;
  cfg.min_repairs = 2;
  cfg.max_repairs = 2;
  fec::FecFramer framer(cfg);
  fec::RecoveryBuffer recovery(cfg);

  const quic::PathId path = 1;
  std::vector<quic::Frame> out;
  std::vector<fec::RecoveryBuffer::Recovered> recovered;
  std::vector<std::vector<std::uint8_t>> originals;

  // Two windows of four variable-length packets; pns 1 and 2 are dropped
  // on the wire (window 0, two erasures = the repair budget), window 1
  // arrives intact so its repairs are pure waste.
  for (quic::PacketNumber pn = 0; pn < 8; ++pn) {
    const auto wire = fake_wire(pn, 40 + 13 * static_cast<std::size_t>(pn));
    originals.push_back(wire);
    const sim::Time now = sim::millis(pn);
    out.clear();
    framer.on_packet_sent(path, pn, wire, now, /*loss_estimate=*/0.0, out);
    const bool dropped = pn == 1 || pn == 2;
    if (!dropped) recovery.on_source(path, pn, wire, now);
    for (const quic::Frame& f : out) {
      const auto* rf = std::get_if<quic::RepairFrame>(&f);
      ASSERT_NE(rf, nullptr);
      recovery.on_repair(path, *rf, now, recovered);
    }
  }

  ASSERT_EQ(recovered.size(), 2u);
  std::sort(recovered.begin(), recovered.end(),
            [](const auto& a, const auto& b) { return a.pn < b.pn; });
  EXPECT_EQ(recovered[0].pn, 1u);
  EXPECT_EQ(recovered[1].pn, 2u);
  for (const auto& rec : recovered) {
    const auto got = rec.wire.cspan();
    const auto& want = originals[rec.pn];
    ASSERT_EQ(got.size(), want.size()) << "pn " << rec.pn;
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()))
        << "pn " << rec.pn;
  }

  EXPECT_EQ(framer.stats().windows_closed, 2u);
  EXPECT_EQ(framer.stats().windows_protected, 2u);
  EXPECT_EQ(framer.stats().repair_symbols, 4u);
  EXPECT_EQ(recovery.stats().recovered, 2u);
  // Window 1 had no erasures: both of its repair symbols bought nothing.
  EXPECT_EQ(recovery.stats().wasted, 2u);
  EXPECT_EQ(recovery.stats().erased_seen, 2u);
}

TEST(FecFramer, GateClosedClosesWindowsWithoutRepairs) {
  fec::FecConfig cfg;
  cfg.enabled = true;
  cfg.window = 4;
  fec::FecFramer framer(cfg);
  framer.set_gate(false);
  std::vector<quic::Frame> out;
  for (quic::PacketNumber pn = 0; pn < 8; ++pn) {
    const auto wire = fake_wire(pn, 100);
    framer.on_packet_sent(2, pn, wire, sim::millis(pn), 0.5, out);
  }
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(framer.stats().windows_closed, 2u);
  EXPECT_EQ(framer.stats().windows_protected, 0u);
  // Unprotected windows must NOT suppress re-injection.
  EXPECT_FALSE(framer.covers(2, 1, sim::millis(10)));
}

TEST(FecFramer, CoverTracksEmittedWindowsAndExpires) {
  fec::FecConfig cfg;
  cfg.enabled = true;
  cfg.window = 4;
  cfg.min_repairs = 1;
  cfg.cover_linger = sim::millis(300);
  fec::FecFramer framer(cfg);
  std::vector<quic::Frame> out;
  for (quic::PacketNumber pn = 0; pn < 4; ++pn)
    framer.on_packet_sent(1, pn, fake_wire(pn, 80), sim::millis(100), 0.0,
                          out);
  ASSERT_EQ(out.size(), 1u);
  for (quic::PacketNumber pn = 0; pn < 4; ++pn)
    EXPECT_TRUE(framer.covers(1, pn, sim::millis(150))) << "pn " << pn;
  EXPECT_FALSE(framer.covers(1, 4, sim::millis(150)));  // next window
  EXPECT_FALSE(framer.covers(2, 1, sim::millis(150)));  // other path
  // Past the linger the cover stops suppressing re-injection.
  EXPECT_FALSE(framer.covers(1, 1, sim::millis(500)));
}

TEST(FecFramer, AdaptiveRedundancyScalesWithLossEstimate) {
  fec::FecConfig cfg;
  cfg.enabled = true;
  cfg.window = 8;
  cfg.min_repairs = 1;
  cfg.max_repairs = 4;
  cfg.loss_multiplier = 3.0;
  const auto repairs_for = [&cfg](double loss) {
    fec::FecFramer framer(cfg);
    std::vector<quic::Frame> out;
    for (quic::PacketNumber pn = 0; pn < 8; ++pn)
      framer.on_packet_sent(1, pn, fake_wire(pn, 60), sim::millis(pn), loss,
                            out);
    return out.size();
  };
  EXPECT_EQ(repairs_for(0.0), 1u);                   // floor
  EXPECT_EQ(repairs_for(0.08), 2u);                  // ceil(8*.08*3) = 2
  EXPECT_EQ(repairs_for(0.9), 4u);                   // clamped to ceiling
  EXPECT_LE(repairs_for(0.25), cfg.max_repairs);
}

// ---------------------------------------------------------------------------
// End-to-end: XLINK session under Gilbert-Elliott burst loss.

harness::SessionConfig fec_session_config(std::uint64_t seed) {
  harness::SessionConfig cfg;
  cfg.scheme = core::Scheme::kXlink;
  cfg.seed = seed;
  cfg.time_limit = sim::seconds(30);
  cfg.video.duration = sim::seconds(4);
  cfg.video.bitrate_bps = 3'000'000;
  cfg.options.xlink_redundancy = core::XlinkRedundancy::kFec;
  cfg.options.fec.window = 8;
  cfg.options.fec.min_repairs = 4;
  cfg.options.fec.max_repairs = 6;
  cfg.options.fec.loss_multiplier = 8.0;
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kWifi, trace::campus_walk_wifi(seed * 5 + 1,
                                                    sim::seconds(20)),
      sim::millis(30)));
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kLte, trace::stable_lte(seed * 5 + 2, sim::seconds(20)),
      sim::millis(90)));
  net::PathSpec::GeLoss ge;
  ge.p_good_to_bad = 0.006;
  ge.p_bad_to_good = 0.35;
  ge.loss_bad = 0.45;
  for (auto& p : cfg.paths) p.ge_loss = ge;
  return cfg;
}

TEST(FecSession, RecoversErasuresEndToEndUnderBurstLoss) {
  const auto result = harness::Session(fec_session_config(3)).run();
  EXPECT_TRUE(result.download_finished);
  EXPECT_GT(result.fec_windows_protected, 0u);
  EXPECT_GT(result.fec_repair_packets, 0u);
  EXPECT_GT(result.fec_repair_bytes, 0u);
  EXPECT_GT(result.fec_erased_seen, 0u);
  EXPECT_GT(result.fec_recovered_packets, 0u);
  EXPECT_LE(result.fec_recovered_packets, result.fec_erased_seen);
  // FEC repair bytes count as redundancy egress.
  EXPECT_GT(result.redundancy_ratio, 0.0);
}

TEST(FecSession, IsDeterministicForAFixedSeed) {
  const auto a = harness::Session(fec_session_config(5)).run();
  const auto b = harness::Session(fec_session_config(5)).run();
  EXPECT_EQ(a.chunk_rct_seconds, b.chunk_rct_seconds);
  EXPECT_EQ(a.fec_repair_bytes, b.fec_repair_bytes);
  EXPECT_EQ(a.fec_repair_packets, b.fec_repair_packets);
  EXPECT_EQ(a.fec_windows_protected, b.fec_windows_protected);
  EXPECT_EQ(a.fec_recovered_packets, b.fec_recovered_packets);
  EXPECT_EQ(a.fec_wasted_symbols, b.fec_wasted_symbols);
  EXPECT_EQ(a.fec_erased_seen, b.fec_erased_seen);
  EXPECT_EQ(a.server_wire_bytes, b.server_wire_bytes);
}

TEST(FecSession, NoFecArmSendsNoRepairTraffic) {
  auto cfg = fec_session_config(3);
  cfg.options.xlink_redundancy = core::XlinkRedundancy::kReinject;
  const auto result = harness::Session(std::move(cfg)).run();
  EXPECT_EQ(result.fec_repair_packets, 0u);
  EXPECT_EQ(result.fec_repair_bytes, 0u);
  EXPECT_EQ(result.fec_recovered_packets, 0u);
}

// ---------------------------------------------------------------------------
// Satellite regression: fold_day's redundancy accounting includes FEC.

TEST(FoldDay, RedundancyPctFoldsFecRepairBytesInWithReinjection) {
  harness::SessionResult r1;
  r1.stream_payload_bytes = 1000;
  r1.reinjected_bytes = 50;
  r1.fec_repair_bytes = 150;
  r1.download_finished = true;
  harness::SessionResult r2;
  r2.stream_payload_bytes = 1000;
  r2.download_finished = true;
  const auto day = harness::fold_day({r1, r2});
  // (50 reinjected + 150 repair) / 2000 payload = 10%; before the fix this
  // reported 2.5% (re-injection only), under-stating redundancy cost.
  EXPECT_DOUBLE_EQ(day.redundancy_pct, 10.0);
}

}  // namespace
}  // namespace xlink
