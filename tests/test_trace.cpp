// Unit tests: Mahimahi traces and synthetic generators.
#include <gtest/gtest.h>

#include <cstdio>

#include "trace/synthetic.h"
#include "trace/trace.h"

namespace xlink::trace {
namespace {

TEST(LinkTrace, OpportunityTimesWithinPeriod) {
  LinkTrace t({1, 5, 5, 9});
  EXPECT_EQ(t.opportunities_per_period(), 4u);
  EXPECT_EQ(t.period(), sim::millis(9));
  EXPECT_EQ(t.opportunity_time(0), sim::millis(1));
  EXPECT_EQ(t.opportunity_time(1), sim::millis(5));
  EXPECT_EQ(t.opportunity_time(2), sim::millis(5));
  EXPECT_EQ(t.opportunity_time(3), sim::millis(9));
}

TEST(LinkTrace, LoopsPastPeriod) {
  LinkTrace t({1, 5, 5, 9});
  // Second period is offset by 9 ms.
  EXPECT_EQ(t.opportunity_time(4), sim::millis(10));
  EXPECT_EQ(t.opportunity_time(7), sim::millis(18));
  EXPECT_EQ(t.opportunity_time(8), sim::millis(19));
}

TEST(LinkTrace, FirstOpportunityAtOrAfter) {
  LinkTrace t({1, 5, 5, 9});
  EXPECT_EQ(t.first_opportunity_at_or_after(0), 0u);
  EXPECT_EQ(t.first_opportunity_at_or_after(sim::millis(1)), 0u);
  EXPECT_EQ(t.first_opportunity_at_or_after(sim::millis(2)), 1u);
  EXPECT_EQ(t.first_opportunity_at_or_after(sim::millis(5)), 1u);
  EXPECT_EQ(t.first_opportunity_at_or_after(sim::millis(6)), 3u);
  // Just past the period: wraps into period 1.
  EXPECT_EQ(t.first_opportunity_at_or_after(sim::millis(10)), 4u);
  // Sub-millisecond times round up.
  EXPECT_EQ(t.first_opportunity_at_or_after(sim::millis(1) + 1), 1u);
}

TEST(LinkTrace, RejectsDecreasingTimestamps) {
  EXPECT_THROW(LinkTrace({5, 3}), std::runtime_error);
}

TEST(LinkTrace, AverageBps) {
  // 4 packets of 1500B in 9 ms = 48000 bits / 0.009 s.
  LinkTrace t({1, 5, 5, 9});
  EXPECT_NEAR(t.average_bps(), 4 * 1500 * 8 / 0.009, 1.0);
}

TEST(LinkTrace, WindowBpsCountsOpportunities) {
  LinkTrace t({1, 2, 3, 4, 100});  // burst then silence
  const double early = t.window_bps(0, sim::millis(10));
  const double late = t.window_bps(sim::millis(10), sim::millis(50));
  EXPECT_GT(early, late);
}

TEST(LinkTrace, SaveLoadRoundtrip) {
  const std::string path = ::testing::TempDir() + "/trace_test.txt";
  LinkTrace t({2, 4, 4, 8});
  t.save(path);
  const LinkTrace loaded = LinkTrace::load(path);
  EXPECT_EQ(loaded.opportunities_ms(), t.opportunities_ms());
  std::remove(path.c_str());
}

TEST(LinkTrace, LoadMissingFileThrows) {
  EXPECT_THROW(LinkTrace::load("/nonexistent/trace"), std::runtime_error);
}

TEST(ConstantRateTrace, MatchesRequestedRate) {
  const LinkTrace t = constant_rate_trace(12.0, sim::seconds(2));
  EXPECT_NEAR(t.average_bps(), 12e6, 12e6 * 0.02);
}

TEST(ConstantRateTrace, LowRateStillProducesOpportunities) {
  const LinkTrace t = constant_rate_trace(0.1, sim::seconds(1));
  EXPECT_FALSE(t.empty());
}

TEST(Synthetic, GeneratorsAreDeterministic) {
  const LinkTrace a = campus_walk_wifi(42);
  const LinkTrace b = campus_walk_wifi(42);
  EXPECT_EQ(a.opportunities_ms(), b.opportunities_ms());
  const LinkTrace c = campus_walk_wifi(43);
  EXPECT_NE(a.opportunities_ms(), c.opportunities_ms());
}

TEST(Synthetic, AverageRatesInExpectedBand) {
  EXPECT_NEAR(stable_lte(1).average_bps() / 1e6, 16.0, 8.0);
  EXPECT_NEAR(campus_walk_wifi(1).average_bps() / 1e6, 15.0, 12.0);
  EXPECT_LT(onboard_wifi(1).average_bps() / 1e6, 8.0);
  EXPECT_LT(hsr_cellular(1).average_bps() / 1e6, 12.0);
  EXPECT_NEAR(nr_5g(1).average_bps() / 1e6, 25.0, 10.0);
}

TEST(Synthetic, OutageHeavyTracesHaveQuietWindows) {
  // At least one 500ms window should be nearly silent in an HSR trace.
  const LinkTrace t = hsr_cellular(7, sim::seconds(60));
  bool quiet = false;
  for (sim::Time at = 0; at < sim::seconds(59); at += sim::millis(500)) {
    if (t.window_bps(at, sim::millis(500)) < 0.3e6) {
      quiet = true;
      break;
    }
  }
  EXPECT_TRUE(quiet);
}

TEST(Synthetic, StableLteHasNoQuietWindows) {
  const LinkTrace t = stable_lte(7, sim::seconds(30));
  for (sim::Time at = 0; at < sim::seconds(29); at += sim::millis(500)) {
    EXPECT_GT(t.window_bps(at, sim::millis(500)), 1e6)
        << "quiet window at " << sim::to_seconds(at) << "s";
  }
}

TEST(Synthetic, RateCurveClampsToSpec) {
  SyntheticSpec spec;
  spec.mean_mbps = 10;
  spec.min_mbps = 2;
  spec.max_mbps = 12;
  spec.volatility = 1.0;  // wild
  spec.duration = sim::seconds(20);
  const auto curve = rate_curve(spec, sim::Rng(5));
  for (double r : curve) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 12.0);
  }
}

TEST(Synthetic, NrRespectsCap) {
  const LinkTrace t = nr_5g(3, sim::seconds(20), 30.0);
  for (sim::Time at = 0; at < sim::seconds(19); at += sim::seconds(1)) {
    EXPECT_LE(t.window_bps(at, sim::seconds(1)), 33e6);
  }
}

}  // namespace
}  // namespace xlink::trace
