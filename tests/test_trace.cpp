// Unit tests: Mahimahi traces and synthetic generators.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "trace/synthetic.h"
#include "trace/trace.h"

namespace xlink::trace {
namespace {

TEST(LinkTrace, OpportunityTimesWithinPeriod) {
  LinkTrace t({1, 5, 5, 9});
  EXPECT_EQ(t.opportunities_per_period(), 4u);
  EXPECT_EQ(t.period(), sim::millis(9));
  EXPECT_EQ(t.opportunity_time(0), sim::millis(1));
  EXPECT_EQ(t.opportunity_time(1), sim::millis(5));
  EXPECT_EQ(t.opportunity_time(2), sim::millis(5));
  EXPECT_EQ(t.opportunity_time(3), sim::millis(9));
}

TEST(LinkTrace, LoopsPastPeriod) {
  LinkTrace t({1, 5, 5, 9});
  // Second period is offset by 9 ms.
  EXPECT_EQ(t.opportunity_time(4), sim::millis(10));
  EXPECT_EQ(t.opportunity_time(7), sim::millis(18));
  EXPECT_EQ(t.opportunity_time(8), sim::millis(19));
}

TEST(LinkTrace, FirstOpportunityAtOrAfter) {
  LinkTrace t({1, 5, 5, 9});
  EXPECT_EQ(t.first_opportunity_at_or_after(0), 0u);
  EXPECT_EQ(t.first_opportunity_at_or_after(sim::millis(1)), 0u);
  EXPECT_EQ(t.first_opportunity_at_or_after(sim::millis(2)), 1u);
  EXPECT_EQ(t.first_opportunity_at_or_after(sim::millis(5)), 1u);
  EXPECT_EQ(t.first_opportunity_at_or_after(sim::millis(6)), 3u);
  // Just past the period: wraps into period 1.
  EXPECT_EQ(t.first_opportunity_at_or_after(sim::millis(10)), 4u);
  // Sub-millisecond times round up.
  EXPECT_EQ(t.first_opportunity_at_or_after(sim::millis(1) + 1), 1u);
}

TEST(LinkTrace, RejectsDecreasingTimestamps) {
  EXPECT_THROW(LinkTrace({5, 3}), std::runtime_error);
}

TEST(LinkTrace, RejectsZeroTimestamp) {
  // t == 0 would alias the previous period's t == period at every wrap
  // (period * P + back == (period+1) * P + 0), double-scheduling one
  // delivery instant. Offsets live in (0, period].
  EXPECT_THROW(LinkTrace({0, 5, 10}), std::runtime_error);
  EXPECT_THROW(LinkTrace({0}), std::runtime_error);
}

TEST(LinkTrace, SeamOpportunityAtExactPeriodIsFound) {
  // Trace with an opportunity at t == period: the period boundary instant
  // belongs to the PREVIOUS period's final opportunity.
  LinkTrace t({5, 10});
  EXPECT_EQ(t.period(), sim::millis(10));
  EXPECT_EQ(t.opportunity_time(1), sim::millis(10));
  // The lookup must return n=1 (time 10), not skip into period 1 (n=2,
  // time 15) as the pre-fix within-period arithmetic did.
  EXPECT_EQ(t.first_opportunity_at_or_after(sim::millis(10)), 1u);
  EXPECT_EQ(t.opportunity_time(t.first_opportunity_at_or_after(sim::millis(10))),
            sim::millis(10));
  // Across the wrap: t=20 is period 1's final opportunity (n=3).
  EXPECT_EQ(t.first_opportunity_at_or_after(sim::millis(20)), 3u);
  // Just past the boundary resolves into the next period normally.
  EXPECT_EQ(t.first_opportunity_at_or_after(sim::millis(10) + 1), 2u);
  EXPECT_EQ(t.first_opportunity_at_or_after(sim::millis(11)), 2u);
}

TEST(LinkTrace, OpportunityTimesStrictlyIncreaseAcrossWrap) {
  // With offsets in (0, period], consecutive opportunity times never
  // decrease and the boundary instant is scheduled exactly once.
  LinkTrace t({2, 7, 7, 7, 9});
  for (std::uint64_t n = 0; n + 1 < 25; ++n)
    EXPECT_LE(t.opportunity_time(n), t.opportunity_time(n + 1)) << "n=" << n;
  // first_opportunity_at_or_after is the inverse of opportunity_time:
  // looking up any opportunity's own time returns the first opportunity
  // at that instant (never a later one).
  for (std::uint64_t n = 0; n < 25; ++n) {
    const std::uint64_t found = t.first_opportunity_at_or_after(
        t.opportunity_time(n));
    EXPECT_LE(found, n) << "n=" << n;
    EXPECT_EQ(t.opportunity_time(found), t.opportunity_time(n)) << "n=" << n;
  }
}

TEST(LinkTrace, WindowBpsExactAcrossSeam) {
  // One packet at t=5 and one at t=10 per 10ms period.
  LinkTrace t({5, 10});
  const double pkt_bits = kDeliveryMtu * 8.0;
  // [0, 10ms): only t=5. The boundary opportunity belongs to [10, 20).
  EXPECT_NEAR(t.window_bps(0, sim::millis(10)),
              pkt_bits / 0.010, 1e-6);
  // [10ms, 20ms): t=10 and t=15 — the pre-fix lookup skipped t=10 and
  // under-counted this window by half.
  EXPECT_NEAR(t.window_bps(sim::millis(10), sim::millis(10)),
              2 * pkt_bits / 0.010, 1e-6);
  // A window spanning several wraps counts exactly 2 per period.
  EXPECT_NEAR(t.window_bps(sim::millis(10), sim::millis(40)),
              8 * pkt_bits / 0.040, 1e-6);
  // Whole periods starting at a boundary reproduce the average exactly.
  EXPECT_NEAR(t.window_bps(sim::millis(10), sim::millis(50)), t.average_bps(),
              t.average_bps() * 1e-9);
}

TEST(LinkTrace, AverageBps) {
  // 4 packets of 1500B in 9 ms = 48000 bits / 0.009 s.
  LinkTrace t({1, 5, 5, 9});
  EXPECT_NEAR(t.average_bps(), 4 * 1500 * 8 / 0.009, 1.0);
}

TEST(LinkTrace, WindowBpsCountsOpportunities) {
  LinkTrace t({1, 2, 3, 4, 100});  // burst then silence
  const double early = t.window_bps(0, sim::millis(10));
  const double late = t.window_bps(sim::millis(10), sim::millis(50));
  EXPECT_GT(early, late);
}

TEST(LinkTrace, SaveLoadRoundtrip) {
  const std::string path = ::testing::TempDir() + "/trace_test.txt";
  LinkTrace t({2, 4, 4, 8});
  t.save(path);
  const LinkTrace loaded = LinkTrace::load(path);
  EXPECT_EQ(loaded.opportunities_ms(), t.opportunities_ms());
  std::remove(path.c_str());
}

TEST(LinkTrace, LoadMissingFileThrows) {
  EXPECT_THROW(LinkTrace::load("/nonexistent/trace"), std::runtime_error);
}

TEST(LinkTrace, LoadReportsFileAndLineOnMalformedInput) {
  const std::string path = ::testing::TempDir() + "/trace_malformed.txt";
  {
    std::ofstream out(path);
    out << "# header\n5\nnot-a-number\n9\n";
  }
  try {
    LinkTrace::load(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find(":3"), std::string::npos) << what;  // line number
  }
  std::remove(path.c_str());
}

TEST(LinkTrace, LoadRejectsTrailingGarbageNegativeAndOutOfRange) {
  const std::string path = ::testing::TempDir() + "/trace_bad.txt";
  auto write_and_load = [&path](const std::string& body) {
    std::ofstream(path) << body;
    return LinkTrace::load(path);
  };
  EXPECT_THROW(write_and_load("5\n7 packets\n"), std::runtime_error);
  EXPECT_THROW(write_and_load("-3\n"), std::runtime_error);
  // Above uint32 max: previously silently truncated by static_cast.
  EXPECT_THROW(write_and_load("99999999999\n"), std::runtime_error);
  // Far beyond long long: strtoll saturates with ERANGE.
  EXPECT_THROW(write_and_load("999999999999999999999999999\n"),
               std::runtime_error);
  // Windows line endings and trailing spaces are tolerated.
  const LinkTrace ok = write_and_load("5 \r\n10\r\n");
  EXPECT_EQ(ok.opportunities_ms(), (std::vector<std::uint32_t>{5, 10}));
  std::remove(path.c_str());
}

TEST(ConstantRateTrace, MatchesRequestedRate) {
  const LinkTrace t = constant_rate_trace(12.0, sim::seconds(2));
  EXPECT_NEAR(t.average_bps(), 12e6, 12e6 * 0.02);
}

TEST(ConstantRateTrace, LowRateStillProducesOpportunities) {
  const LinkTrace t = constant_rate_trace(0.1, sim::seconds(1));
  EXPECT_FALSE(t.empty());
}

TEST(Synthetic, GeneratorsAreDeterministic) {
  const LinkTrace a = campus_walk_wifi(42);
  const LinkTrace b = campus_walk_wifi(42);
  EXPECT_EQ(a.opportunities_ms(), b.opportunities_ms());
  const LinkTrace c = campus_walk_wifi(43);
  EXPECT_NE(a.opportunities_ms(), c.opportunities_ms());
}

TEST(Synthetic, AverageRatesInExpectedBand) {
  EXPECT_NEAR(stable_lte(1).average_bps() / 1e6, 16.0, 8.0);
  EXPECT_NEAR(campus_walk_wifi(1).average_bps() / 1e6, 15.0, 12.0);
  EXPECT_LT(onboard_wifi(1).average_bps() / 1e6, 8.0);
  EXPECT_LT(hsr_cellular(1).average_bps() / 1e6, 12.0);
  EXPECT_NEAR(nr_5g(1).average_bps() / 1e6, 25.0, 10.0);
}

TEST(Synthetic, OutageHeavyTracesHaveQuietWindows) {
  // At least one 500ms window should be nearly silent in an HSR trace.
  const LinkTrace t = hsr_cellular(7, sim::seconds(60));
  bool quiet = false;
  for (sim::Time at = 0; at < sim::seconds(59); at += sim::millis(500)) {
    if (t.window_bps(at, sim::millis(500)) < 0.3e6) {
      quiet = true;
      break;
    }
  }
  EXPECT_TRUE(quiet);
}

TEST(Synthetic, StableLteHasNoQuietWindows) {
  const LinkTrace t = stable_lte(7, sim::seconds(30));
  for (sim::Time at = 0; at < sim::seconds(29); at += sim::millis(500)) {
    EXPECT_GT(t.window_bps(at, sim::millis(500)), 1e6)
        << "quiet window at " << sim::to_seconds(at) << "s";
  }
}

TEST(Synthetic, RateCurveClampsToSpec) {
  SyntheticSpec spec;
  spec.mean_mbps = 10;
  spec.min_mbps = 2;
  spec.max_mbps = 12;
  spec.volatility = 1.0;  // wild
  spec.duration = sim::seconds(20);
  const auto curve = rate_curve(spec, sim::Rng(5));
  for (double r : curve) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 12.0);
  }
}

TEST(Synthetic, NrRespectsCap) {
  const LinkTrace t = nr_5g(3, sim::seconds(20), 30.0);
  for (sim::Time at = 0; at < sim::seconds(19); at += sim::seconds(1)) {
    EXPECT_LE(t.window_bps(at, sim::seconds(1)), 33e6);
  }
}

}  // namespace
}  // namespace xlink::trace
