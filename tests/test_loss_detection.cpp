// Unit tests: per-path loss detection (RFC 9002 style).
#include <gtest/gtest.h>

#include "quic/loss_detection.h"

namespace xlink::quic {
namespace {

AckInfo ack_of(std::vector<AckRange> ranges, std::uint64_t delay_us = 0) {
  AckInfo info;
  info.ranges = std::move(ranges);
  info.ack_delay_us = delay_us;
  return info;
}

RttEstimator rtt_100ms() {
  RttEstimator rtt;
  rtt.on_sample(sim::millis(100), 0);
  return rtt;
}

std::vector<PacketNumber> pns(const std::vector<LostPacket>& lost) {
  std::vector<PacketNumber> out;
  out.reserve(lost.size());
  for (const LostPacket& l : lost) out.push_back(l.pn);
  return out;
}

TEST(LossDetection, TracksBytesInFlight) {
  LossDetection ld;
  ld.on_packet_sent(0, sim::millis(0), 1000, true);
  ld.on_packet_sent(1, sim::millis(1), 500, false);  // ack-only pkt
  EXPECT_EQ(ld.bytes_in_flight(), 1000u);
  EXPECT_EQ(ld.tracked_packets(), 2u);
}

TEST(LossDetection, AckRemovesAndReports) {
  LossDetection ld;
  auto rtt = rtt_100ms();
  ld.on_packet_sent(0, sim::millis(0), 1000, true);
  ld.on_packet_sent(1, sim::millis(1), 1000, true);
  const auto out = ld.on_ack_received(ack_of({{0, 1}}), sim::millis(120), rtt);
  EXPECT_EQ(out.newly_acked, (std::vector<PacketNumber>{0, 1}));
  EXPECT_EQ(out.acked_bytes, 2000u);
  EXPECT_EQ(ld.bytes_in_flight(), 0u);
  ASSERT_TRUE(out.rtt_sample.has_value());
  EXPECT_EQ(*out.rtt_sample, sim::millis(119));  // 120 - sent@1
  EXPECT_EQ(out.largest_acked_sent_time, sim::millis(1));
}

TEST(LossDetection, DuplicateAckIsHarmless) {
  LossDetection ld;
  auto rtt = rtt_100ms();
  ld.on_packet_sent(0, 0, 1000, true);
  ld.on_ack_received(ack_of({{0, 0}}), sim::millis(100), rtt);
  const auto again = ld.on_ack_received(ack_of({{0, 0}}), sim::millis(200), rtt);
  EXPECT_TRUE(again.newly_acked.empty());
  EXPECT_EQ(again.acked_bytes, 0u);
  EXPECT_EQ(ld.bytes_in_flight(), 0u);
}

TEST(LossDetection, PacketThresholdLoss) {
  LossDetection ld;
  auto rtt = rtt_100ms();
  for (PacketNumber pn = 0; pn <= 4; ++pn)
    ld.on_packet_sent(pn, sim::millis(pn), 1000, true);
  // Ack only pn 4, early enough that the time threshold (112.5ms) has not
  // fired: pn 0 and 1 are >= 3 behind -> lost; 2,3 not yet.
  const auto out = ld.on_ack_received(ack_of({{4, 4}}), sim::millis(20), rtt);
  EXPECT_EQ(pns(out.lost), (std::vector<PacketNumber>{0, 1}));
  for (const LostPacket& l : out.lost)
    EXPECT_EQ(l.reason, LossReason::kPacketThreshold);
  EXPECT_EQ(ld.bytes_in_flight(), 2000u);  // pns 2,3 remain
}

TEST(LossDetection, TimeThresholdLoss) {
  LossDetection ld;
  auto rtt = rtt_100ms();
  ld.on_packet_sent(0, sim::millis(0), 1000, true);
  ld.on_packet_sent(1, sim::millis(1), 1000, true);
  // Ack pn 1 shortly after; pn 0 is only 1 behind (below packet threshold).
  auto out = ld.on_ack_received(ack_of({{1, 1}}), sim::millis(50), rtt);
  EXPECT_TRUE(out.lost.empty());
  // Later, past 9/8 * 100ms since send, the time threshold fires.
  const auto lost = ld.detect_losses(sim::millis(113), rtt);
  EXPECT_EQ(pns(lost), (std::vector<PacketNumber>{0}));
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0].reason, LossReason::kTimeThreshold);
}

TEST(LossDetection, LossTimeReportsEarliestDeadline) {
  LossDetection ld;
  auto rtt = rtt_100ms();
  ld.on_packet_sent(0, sim::millis(0), 1000, true);
  ld.on_packet_sent(1, sim::millis(10), 1000, true);
  ld.on_packet_sent(2, sim::millis(20), 1000, true);
  EXPECT_FALSE(ld.loss_time(rtt).has_value());  // nothing acked yet
  ld.on_ack_received(ack_of({{2, 2}}), sim::millis(60), rtt);
  const auto t = ld.loss_time(rtt);
  ASSERT_TRUE(t.has_value());
  // Earliest unacked below largest (pn 0, sent at 0) + 112.5ms.
  EXPECT_EQ(*t, sim::millis(0) + sim::millis(100) * 9 / 8);
}

TEST(LossDetection, NoLossJudgmentAbovLargestAcked) {
  LossDetection ld;
  auto rtt = rtt_100ms();
  ld.on_packet_sent(0, 0, 1000, true);
  ld.on_packet_sent(1, 0, 1000, true);
  ld.on_ack_received(ack_of({{0, 0}}), sim::millis(10), rtt);
  // pn 1 is newer than largest acked: never declared lost by time.
  EXPECT_TRUE(ld.detect_losses(sim::millis(100000), rtt).empty());
}

TEST(LossDetection, OldestUnackedAndAckEliciting) {
  LossDetection ld;
  EXPECT_FALSE(ld.oldest_unacked_sent_time().has_value());
  EXPECT_FALSE(ld.has_ack_eliciting_in_flight());
  ld.on_packet_sent(0, sim::millis(5), 100, false);
  EXPECT_FALSE(ld.has_ack_eliciting_in_flight());
  ld.on_packet_sent(1, sim::millis(9), 100, true);
  EXPECT_TRUE(ld.has_ack_eliciting_in_flight());
  EXPECT_EQ(*ld.oldest_unacked_sent_time(), sim::millis(9));
}

TEST(LossDetection, ForgetDropsWithoutJudgment) {
  LossDetection ld;
  ld.on_packet_sent(0, 0, 1000, true);
  ld.forget(0);
  EXPECT_EQ(ld.bytes_in_flight(), 0u);
  EXPECT_EQ(ld.tracked_packets(), 0u);
  ld.forget(42);  // unknown pn: no-op
}

TEST(LossDetection, MultiRangeAck) {
  LossDetection ld;
  auto rtt = rtt_100ms();
  for (PacketNumber pn = 0; pn < 10; ++pn)
    ld.on_packet_sent(pn, sim::millis(pn), 100, true);
  const auto out =
      ld.on_ack_received(ack_of({{8, 9}, {4, 5}, {0, 1}}), sim::millis(50),
                         rtt);
  EXPECT_EQ(out.newly_acked.size(), 6u);
  // 2,3,6 are 3+ behind largest=9 -> lost; 7 is within packet threshold.
  EXPECT_EQ(pns(out.lost), (std::vector<PacketNumber>{2, 3, 6}));
  EXPECT_EQ(ld.tracked_packets(), 1u);
}

TEST(LossDetection, RttSampleOnlyWhenLargestNewlyAcked) {
  LossDetection ld;
  auto rtt = rtt_100ms();
  ld.on_packet_sent(0, 0, 100, true);
  ld.on_packet_sent(1, 0, 100, true);
  ld.on_ack_received(ack_of({{1, 1}}), sim::millis(100), rtt);
  // Second ack covers pn 0 but largest (1) is no longer newly acked.
  const auto out = ld.on_ack_received(ack_of({{0, 1}}), sim::millis(150), rtt);
  EXPECT_FALSE(out.rtt_sample.has_value());
}

}  // namespace
}  // namespace xlink::quic
