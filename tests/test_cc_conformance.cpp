// Congestion-control conformance: identical scripted ack/loss traces driven
// through all four controllers (NewReno, Cubic, coupled LIA, BBR), the three
// regression bugs this family fixed (t=0 sentinel aliasing, app-limited cwnd
// inflation, slow-start exit overshoot), and unit coverage for the
// delivery-rate sampler, the BBR state machine, and the token-bucket pacer.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "quic/cc.h"
#include "quic/cc_coupled.h"
#include "quic/delivery_rate.h"
#include "quic/pacer.h"

namespace xlink::quic {
namespace {

constexpr std::size_t kMss = kDefaultMss;
constexpr std::size_t kInitWnd = kInitialWindowPackets * kMss;
constexpr std::size_t kMinWnd = kMinWindowPackets * kMss;

std::unique_ptr<CongestionController> make_cc(CcAlgorithm algo) {
  if (algo == CcAlgorithm::kCoupledLia)
    return make_lia_controller(std::make_shared<LiaGroup>(), kMss);
  return make_congestion_controller(algo, kMss);
}

// ------------------------------------------------------------ conformance
//
// One scripted trace, four controllers. The assertions are the invariants
// every controller must share; algorithm-specific window shapes are tested
// separately below.

class CcConformance : public ::testing::TestWithParam<CcAlgorithm> {};

const char* cc_param_name(const ::testing::TestParamInfo<CcAlgorithm>& info) {
  switch (info.param) {
    case CcAlgorithm::kNewReno: return "NewReno";
    case CcAlgorithm::kCubic: return "Cubic";
    case CcAlgorithm::kCoupledLia: return "CoupledLia";
    case CcAlgorithm::kBbr: return "Bbr";
  }
  return "?";
}

// Drives `acks` back-to-back acks of one MSS each, 5ms apart, 40ms RTT.
// Each ack is followed by a synthetic rate sample (500KB/s path) the way
// the connection's ack path emits them: loss-based controllers ignore it,
// BBR applies its cwnd growth there.
sim::Time drive_acks(CongestionController& cc, sim::Time start, int acks) {
  sim::Time now = start;
  std::uint64_t delivered = 0;
  for (int i = 0; i < acks; ++i) {
    now += sim::millis(5);
    cc.on_ack(kMss, now - sim::millis(40), now, sim::millis(40));
    RateSample rs;
    rs.delivery_rate = rs.btlbw = 500000.0;
    rs.min_rtt = sim::millis(40);
    rs.min_rtt_at = now;
    rs.prior_delivered = delivered;
    delivered += kMss;
    rs.delivered = delivered;
    rs.interval = sim::millis(40);
    rs.rtt = sim::millis(40);
    rs.bytes_in_flight = 20000;
    cc.on_rate_sample(rs, now);
  }
  return now;
}

TEST_P(CcConformance, ScriptedTraceKeepsInvariants) {
  auto cc = make_cc(GetParam());
  EXPECT_EQ(cc->cwnd_bytes(), kInitWnd);

  // Phase 1: growth. Every controller must open the window on clean acks.
  sim::Time now = drive_acks(*cc, sim::millis(100), 60);
  EXPECT_GT(cc->cwnd_bytes(), kInitWnd);

  // Phase 2: a loss burst. Loss-based controllers shrink; BBR by design
  // does not, but nobody may ever drop below the minimum window.
  cc->on_loss_event(now - sim::millis(10), now);
  EXPECT_GE(cc->cwnd_bytes(), kMinWnd);

  // Phase 3: persistent congestion collapses everyone to the minimum.
  now = drive_acks(*cc, now, 20);
  cc->on_persistent_congestion(now);
  EXPECT_EQ(cc->cwnd_bytes(), kMinWnd);

  // Phase 4: recovery from the collapse (acks of packets sent after it).
  now = drive_acks(*cc, now + sim::millis(50), 40);
  EXPECT_GT(cc->cwnd_bytes(), kMinWnd);

  // Phase 5: reset on migration restores the initial state exactly.
  cc->reset();
  EXPECT_EQ(cc->cwnd_bytes(), kInitWnd);
  EXPECT_TRUE(cc->in_slow_start());
}

TEST_P(CcConformance, FastConvergenceOneReactionPerBurst) {
  auto cc = make_cc(GetParam());
  sim::Time now = drive_acks(*cc, sim::millis(100), 40);
  cc->on_loss_event(now - sim::millis(10), now);
  const std::size_t after_first = cc->cwnd_bytes();
  // Losses of packets sent before the recovery point: no second reaction.
  cc->on_loss_event(now - sim::millis(5), now + sim::millis(1));
  EXPECT_EQ(cc->cwnd_bytes(), after_first);
}

// Regression (t=0 sentinel aliasing): sim time 0 is a valid timestamp, but
// the controllers used `recovery_start_ == 0` / `epoch_start_ == 0` as "not
// started yet" sentinels. An ack of a packet sent at t=0 then matched
// `sent_time <= recovery_start_` and never grew the window, and a loss of a
// t=0 packet was swallowed entirely (no recovery, no cwnd cut). Cubic's
// epoch bookkeeping (reno_credit_, k_) keyed off the same aliased zero.
TEST_P(CcConformance, AckOfPacketSentAtTimeZeroGrowsWindow) {
  auto cc = make_cc(GetParam());
  const std::size_t before = cc->cwnd_bytes();
  cc->on_ack(kMss, 0, sim::millis(40), sim::millis(40));
  // BBR applies growth on the rate sample that follows each ack.
  cc->on_rate_sample(RateSample{}, sim::millis(40));
  EXPECT_EQ(cc->cwnd_bytes(), before + kMss);
}

TEST_P(CcConformance, LossOfPacketSentAtTimeZeroReacts) {
  if (GetParam() == CcAlgorithm::kBbr)
    GTEST_SKIP() << "BBR does not react to single loss events";
  auto cc = make_cc(GetParam());
  const std::size_t before = cc->cwnd_bytes();
  cc->on_loss_event(0, 0);
  EXPECT_LT(cc->cwnd_bytes(), before);
  // And the reaction registered: the same burst must not react twice.
  const std::size_t after = cc->cwnd_bytes();
  cc->on_loss_event(0, 0);
  EXPECT_EQ(cc->cwnd_bytes(), after);
}

// Regression: the whole trajectory must be invariant under a time shift.
// With the zero sentinels, a trace anchored at t=0 diverged from the same
// trace shifted by +10s (the t=0 loss was swallowed, Cubic's first epoch
// re-anchored on every ack, resetting reno_credit_ and k_).
TEST_P(CcConformance, TrajectoryInvariantUnderTimeShift) {
  auto run = [&](sim::Time offset) {
    auto cc = make_cc(GetParam());
    std::vector<std::size_t> cwnds;
    // Slow-start acks of the very first flight (sent at the offset).
    for (int i = 0; i < 10; ++i)
      cc->on_ack(kMss, offset, offset + sim::millis(40), sim::millis(40));
    // Loss of a packet from that flight, detected one RTT in.
    cc->on_loss_event(offset, offset + sim::millis(40));
    cwnds.push_back(cc->cwnd_bytes());
    // Congestion avoidance for a few hundred ms.
    sim::Time now = offset + sim::millis(40);
    for (int i = 0; i < 100; ++i) {
      now += sim::millis(5);
      cc->on_ack(kMss, now - sim::millis(39), now, sim::millis(40));
      cwnds.push_back(cc->cwnd_bytes());
    }
    return cwnds;
  };
  EXPECT_EQ(run(0), run(sim::seconds(10)));
}

INSTANTIATE_TEST_SUITE_P(AllControllers, CcConformance,
                         ::testing::Values(CcAlgorithm::kNewReno,
                                           CcAlgorithm::kCubic,
                                           CcAlgorithm::kCoupledLia,
                                           CcAlgorithm::kBbr),
                         cc_param_name);

// --------------------------------------------- app-limited (RFC 9002 §7.8)
//
// Regression: a sender that lies idle below its cwnd used to keep inflating
// the window on every ack ("lying-idle inflation"); when traffic resumed,
// the burst was sized by a window no network had ever validated.

class CcAppLimited : public ::testing::TestWithParam<CcAlgorithm> {};

TEST_P(CcAppLimited, AppLimitedAcksDoNotGrowCwndInSlowStart) {
  auto cc = make_cc(GetParam());
  const std::size_t before = cc->cwnd_bytes();
  for (int i = 0; i < 50; ++i)
    cc->on_ack(kMss, sim::millis(10), sim::millis(50), sim::millis(40),
               /*app_limited=*/true);
  EXPECT_EQ(cc->cwnd_bytes(), before);
}

TEST_P(CcAppLimited, AppLimitedAcksDoNotGrowCwndInAvoidance) {
  auto cc = make_cc(GetParam());
  sim::Time now = drive_acks(*cc, sim::millis(100), 40);
  cc->on_loss_event(now - sim::millis(10), now);  // enter avoidance
  now += sim::millis(100);
  const std::size_t before = cc->cwnd_bytes();
  for (int i = 0; i < 200; ++i) {
    now += sim::millis(5);
    cc->on_ack(kMss, now - sim::millis(40), now, sim::millis(40),
               /*app_limited=*/true);
  }
  EXPECT_EQ(cc->cwnd_bytes(), before);
  // Non-app-limited acks resume growth from the same point.
  drive_acks(*cc, now, 100);
  EXPECT_GT(cc->cwnd_bytes(), before);
}

INSTANTIATE_TEST_SUITE_P(LossBased, CcAppLimited,
                         ::testing::Values(CcAlgorithm::kNewReno,
                                           CcAlgorithm::kCubic,
                                           CcAlgorithm::kCoupledLia),
                         cc_param_name);

// ------------------------------------------------- slow-start exit clamp
//
// Regression: slow start grew by raw acked bytes with no ssthresh clamp, so
// the exit overshot the estimated safe point by up to one ack's worth and
// the first avoidance epoch anchored above it.

class CcSlowStartClamp : public ::testing::TestWithParam<CcAlgorithm> {};

TEST_P(CcSlowStartClamp, SlowStartExitsExactlyAtSsthresh) {
  auto cc = make_cc(GetParam());
  // Build a finite ssthresh, then collapse so slow start restarts under it.
  sim::Time now = drive_acks(*cc, sim::millis(100), 60);
  cc->on_loss_event(now - sim::millis(10), now);
  const std::size_t ssthresh = cc->ssthresh_bytes();
  ASSERT_LT(ssthresh, static_cast<std::size_t>(-1));
  cc->on_persistent_congestion(now + sim::millis(10));
  if (!cc->in_slow_start())
    GTEST_SKIP() << "controller re-enters avoidance, not slow start";
  // Ack big chunks so an unclamped exit would overshoot by almost 8 MSS.
  now += sim::millis(100);
  while (cc->in_slow_start()) {
    now += sim::millis(5);
    cc->on_ack(8 * kMss, now - sim::millis(4), now, sim::millis(40));
    ASSERT_LE(cc->cwnd_bytes(), cc->ssthresh_bytes());
  }
  EXPECT_EQ(cc->cwnd_bytes(), cc->ssthresh_bytes());
}

INSTANTIATE_TEST_SUITE_P(LossBased, CcSlowStartClamp,
                         ::testing::Values(CcAlgorithm::kNewReno,
                                           CcAlgorithm::kCubic),
                         cc_param_name);

// Cubic-specific: persistent congestion keeps ssthresh and W_max (RFC 9002
// §7.6.2 collapses cwnd only), so the path slow-starts back toward the last
// validated operating point instead of crawling from the minimum window.
TEST(CubicPersistentCongestion, KeepsSsthreshMemory) {
  auto cc = make_cc(CcAlgorithm::kCubic);
  sim::Time now = drive_acks(*cc, sim::millis(100), 60);
  cc->on_loss_event(now - sim::millis(10), now);
  const std::size_t ssthresh = cc->ssthresh_bytes();
  cc->on_persistent_congestion(now + sim::millis(10));
  EXPECT_EQ(cc->cwnd_bytes(), kMinWnd);
  EXPECT_EQ(cc->ssthresh_bytes(), ssthresh);
  EXPECT_TRUE(cc->in_slow_start());
}

// ------------------------------------------------- delivery-rate sampler

TEST(DeliveryRateSampler, ComputesRateOverAckInterval) {
  DeliveryRateSampler s;
  RateStamp stamp;
  // Two packets, 10KB each, acked 100ms apart: ~100KB/s.
  s.on_packet_sent(stamp, sim::millis(0), 0);
  RateStamp stamp2;
  s.on_packet_sent(stamp2, sim::millis(1), 10000);
  RateSample r1 = s.on_ack(stamp, 10000, sim::millis(0), sim::millis(100),
                           sim::millis(100), 10000);
  EXPECT_NEAR(r1.delivery_rate, 100000.0, 1.0);
  RateSample r2 = s.on_ack(stamp2, 10000, sim::millis(1), sim::millis(200),
                           sim::millis(199), 0);
  // Second sample: 10KB over max(send 1ms, ack 100ms) = 100ms.
  EXPECT_NEAR(r2.delivery_rate, 100000.0, 1.0);
  EXPECT_NEAR(r2.btlbw, 100000.0, 1.0);
  EXPECT_EQ(s.delivered_bytes(), 20000u);
}

TEST(DeliveryRateSampler, IdleGapReAnchorsClocks) {
  DeliveryRateSampler s;
  RateStamp a;
  s.on_packet_sent(a, sim::millis(0), 0);
  s.on_ack(a, 10000, sim::millis(0), sim::millis(100), sim::millis(100), 0);
  // 10 seconds idle, then a new flight. Without re-anchoring, the idle gap
  // would be counted as transmission time and crater the sample.
  RateStamp b;
  s.on_packet_sent(b, sim::seconds(10), 0);
  RateSample r = s.on_ack(b, 10000, sim::seconds(10),
                          sim::seconds(10) + sim::millis(100),
                          sim::millis(100), 0);
  EXPECT_NEAR(r.delivery_rate, 100000.0, 1.0);
}

TEST(DeliveryRateSampler, AppLimitedSamplesNeverLowerBtlbw) {
  DeliveryRateSampler s;
  RateStamp a;
  s.on_packet_sent(a, sim::millis(0), 0);
  s.on_ack(a, 100000, sim::millis(0), sim::millis(100), sim::millis(100), 0);
  const double peak = s.btlbw_bytes_per_sec();
  EXPECT_NEAR(peak, 1e6, 1.0);
  // Sender goes idle with headroom: subsequent packets are app-limited.
  s.on_app_limited(0);
  EXPECT_TRUE(s.is_app_limited());
  RateStamp b;
  s.on_packet_sent(b, sim::millis(200), 0);
  EXPECT_TRUE(b.is_app_limited);
  // A slow app-limited sample (10KB over 100ms = 100KB/s) must not lower
  // the 1MB/s estimate.
  RateSample r = s.on_ack(b, 10000, sim::millis(200), sim::millis(300),
                          sim::millis(100), 0);
  EXPECT_TRUE(r.is_app_limited);
  EXPECT_NEAR(s.btlbw_bytes_per_sec(), peak, 1.0);
  // ...but a FASTER app-limited sample may raise it.
  s.on_app_limited(0);
  RateStamp c;
  s.on_packet_sent(c, sim::millis(400), 0);
  s.on_ack(c, 400000, sim::millis(400), sim::millis(500), sim::millis(100), 0);
  EXPECT_GT(s.btlbw_bytes_per_sec(), peak);
}

TEST(DeliveryRateSampler, AppLimitedMarkerDrainsOnDelivery) {
  DeliveryRateSampler s;
  RateStamp a;
  s.on_packet_sent(a, sim::millis(0), 0);
  s.on_app_limited(10000);  // 10KB still in flight when the app went idle
  EXPECT_TRUE(s.is_app_limited());
  // Once more than the marker has been delivered, the phase ends and new
  // packets are stamped clean.
  s.on_ack(a, 10001, sim::millis(0), sim::millis(50), sim::millis(50), 0);
  EXPECT_FALSE(s.is_app_limited());
  RateStamp b;
  s.on_packet_sent(b, sim::millis(60), 0);
  EXPECT_FALSE(b.is_app_limited);
}

TEST(DeliveryRateSampler, LostBytesDrainAppLimitedMarker) {
  DeliveryRateSampler s;
  RateStamp a;
  s.on_packet_sent(a, sim::millis(0), 0);
  s.on_app_limited(20000);  // 20KB in flight
  // Half the flight is lost: the marker shrinks so the surviving half's
  // delivery still ends the phase.
  s.on_loss(10000);
  s.on_ack(a, 10001, sim::millis(0), sim::millis(50), sim::millis(50), 0);
  EXPECT_FALSE(s.is_app_limited());
}

TEST(DeliveryRateSampler, BtlbwFilterAgesOutOldMaximum) {
  DeliveryRateSampler s;
  // One spike, then steadily slower samples. Each ack of a full flight
  // closes a round; after kBwFilterRounds rounds the spike must age out.
  double spike_seen = 0.0;
  for (int i = 0; i < 30; ++i) {
    RateStamp st;
    const sim::Time sent = sim::millis(100 * i);
    s.on_packet_sent(st, sent, 0);
    const std::size_t bytes = i == 0 ? 200000 : 10000;  // spike on round 0
    s.on_ack(st, bytes, sent, sent + sim::millis(100), sim::millis(100), 0);
    if (i == 0) spike_seen = s.btlbw_bytes_per_sec();
  }
  EXPECT_NEAR(spike_seen, 2e6, 1.0);
  EXPECT_GT(s.round_count(), DeliveryRateSampler::kBwFilterRounds);
  // The 2MB/s spike is gone; the filter tracks the recent 100KB/s regime.
  EXPECT_NEAR(s.btlbw_bytes_per_sec(), 100000.0, 1000.0);
}

TEST(DeliveryRateSampler, MinRttExpiresAfterWindow) {
  DeliveryRateSampler s;
  auto ack_with_rtt = [&](sim::Time now, sim::Duration rtt) {
    RateStamp st;
    s.on_packet_sent(st, now - rtt, 0);
    s.on_ack(st, 1000, now - rtt, now, rtt, 0);
  };
  ack_with_rtt(sim::millis(100), sim::millis(20));
  EXPECT_EQ(s.min_rtt(), sim::millis(20));
  // Higher samples inside the window do not displace the min...
  ack_with_rtt(sim::seconds(5), sim::millis(80));
  EXPECT_EQ(s.min_rtt(), sim::millis(20));
  // ...but once the observation is older than the window, they do.
  ack_with_rtt(sim::seconds(11), sim::millis(80));
  EXPECT_EQ(s.min_rtt(), sim::millis(80));
  EXPECT_EQ(s.min_rtt_timestamp(), sim::seconds(11));
}

// ------------------------------------------------------------------- BBR

// Feeds BBR synthetic rate samples emulating a path with the given btlbw
// and min RTT, advancing one ack per 5ms.
struct BbrHarness {
  std::unique_ptr<CongestionController> cc = make_cc(CcAlgorithm::kBbr);
  std::uint64_t delivered = 0;
  sim::Time now = sim::millis(100);

  void ack(double btlbw, sim::Duration min_rtt, sim::Time min_rtt_at,
           std::size_t inflight, std::size_t bytes = kMss) {
    now += sim::millis(5);
    cc->on_ack(bytes, now - min_rtt, now, min_rtt);
    RateSample rs;
    rs.delivery_rate = btlbw;
    rs.btlbw = btlbw;
    rs.min_rtt = min_rtt;
    rs.min_rtt_at = min_rtt_at;
    rs.prior_delivered = delivered;
    delivered += bytes;
    rs.delivered = delivered;
    rs.interval = min_rtt;
    rs.rtt = min_rtt;
    rs.bytes_in_flight = inflight;
    cc->on_rate_sample(rs, now);
  }
};

TEST(Bbr, StartupExitsWhenBandwidthPlateaus) {
  BbrHarness h;
  EXPECT_TRUE(h.cc->in_slow_start());
  // Growing btlbw: stays in startup.
  double bw = 1e5;
  for (int i = 0; i < 6; ++i) {
    h.ack(bw, sim::millis(40), h.now, 20000);
    bw *= 1.5;
  }
  EXPECT_TRUE(h.cc->in_slow_start());
  // Plateau for > kFullBwRounds rounds: pipe full, startup ends.
  for (int i = 0; i < 8; ++i) h.ack(bw, sim::millis(40), h.now, 20000);
  EXPECT_FALSE(h.cc->in_slow_start());
}

TEST(Bbr, CwndConvergesToGainTimesBdp) {
  BbrHarness h;
  const double bw = 1e6;                      // 1 MB/s
  const sim::Duration rtt = sim::millis(40);  // BDP = 40KB
  for (int i = 0; i < 200; ++i) h.ack(bw, rtt, h.now, 30000);
  // cwnd_gain * BDP = 2.0 * 40000 = 80KB once the pipe is declared full.
  EXPECT_FALSE(h.cc->in_slow_start());
  EXPECT_NEAR(static_cast<double>(h.cc->cwnd_bytes()), 80000.0,
              2.0 * kMss);
  // Pacing rate tracks pacing_gain * btlbw (gain cycles 0.75..1.25).
  const double pr = static_cast<double>(h.cc->pacing_rate_bytes_per_sec());
  EXPECT_GE(pr, 0.7 * bw);
  EXPECT_LE(pr, 1.3 * bw);
}

TEST(Bbr, LossEventsDoNotCutCwnd) {
  BbrHarness h;
  for (int i = 0; i < 100; ++i) h.ack(1e6, sim::millis(40), h.now, 30000);
  const std::size_t before = h.cc->cwnd_bytes();
  h.cc->on_loss_event(h.now - sim::millis(10), h.now);
  EXPECT_EQ(h.cc->cwnd_bytes(), before);
}

TEST(Bbr, PersistentCongestionCollapsesAndRestartsDiscovery) {
  BbrHarness h;
  for (int i = 0; i < 100; ++i) h.ack(1e6, sim::millis(40), h.now, 30000);
  h.cc->on_persistent_congestion(h.now);
  EXPECT_EQ(h.cc->cwnd_bytes(), kMinWnd);
  EXPECT_TRUE(h.cc->in_slow_start());  // back to STARTUP
}

TEST(Bbr, ProbeRttEntryAndExit) {
  BbrHarness h;
  const sim::Time min_at = sim::millis(100);
  for (int i = 0; i < 100; ++i) h.ack(1e6, sim::millis(40), min_at, 30000);
  const std::size_t cruising = h.cc->cwnd_bytes();
  ASSERT_GT(cruising, 4 * kMss);
  // Jump past the 10s min-RTT expiry without refreshing the observation:
  // BBR must drop into ProbeRTT and pin cwnd to 4 MSS.
  h.now = min_at + sim::seconds(10) + sim::millis(100);
  h.ack(1e6, sim::millis(40), min_at, 30000);
  EXPECT_EQ(h.cc->cwnd_bytes(), 4 * kMss);
  // Inflight drains to the probe window; after the 200ms dwell (with a
  // fresh min-RTT timestamp, as re-measuring advances it) cwnd restores.
  h.ack(1e6, sim::millis(40), h.now, 4 * kMss);
  for (int i = 0; i < 50; ++i) h.ack(1e6, sim::millis(40), h.now, 4 * kMss);
  EXPECT_GE(h.cc->cwnd_bytes(), cruising);
  EXPECT_FALSE(h.cc->in_slow_start());
}

TEST(Bbr, PacingRatePositiveBeforeFirstSample) {
  auto cc = make_cc(CcAlgorithm::kBbr);
  // The very first flight must still be paceable: a startup-gain estimate
  // derived from the initial window, not zero.
  RateSample rs;
  cc->on_ack(kMss, 0, sim::millis(40), sim::millis(40));
  cc->on_rate_sample(rs, sim::millis(40));
  EXPECT_GT(cc->pacing_rate_bytes_per_sec(), 0u);
  EXPECT_EQ(cc->name(), "bbr");
}

// ------------------------------------------------------------------ pacer

PacerConfig paced_config() {
  PacerConfig cfg;
  cfg.enabled = true;
  return cfg;
}

TEST(Pacer, DisabledAlwaysClears) {
  Pacer p;  // default config: disabled
  p.set_rate(1000);
  EXPECT_TRUE(p.can_send(0));
  p.on_sent(0, 1 << 20);
  EXPECT_TRUE(p.can_send(1));
  EXPECT_EQ(p.next_release_time(5), 5u);
}

TEST(Pacer, FirstUseStartsWithFullBurst) {
  Pacer p(paced_config());
  p.set_rate(1'000'000);  // 1 MB/s
  EXPECT_TRUE(p.can_send(sim::millis(10)));
  EXPECT_EQ(p.tokens_bytes(),
            static_cast<std::int64_t>(kInitialWindowPackets * kMss));
}

TEST(Pacer, DebitsAndReleasesAtRate) {
  Pacer p(paced_config());
  p.set_rate(1'000'000);  // 1 byte/us
  sim::Time now = sim::millis(10);
  ASSERT_TRUE(p.can_send(now));
  // Spend the whole burst allowance plus one packet of debt.
  p.on_sent(now, kInitialWindowPackets * kMss + 1400);
  EXPECT_FALSE(p.can_send(now));
  EXPECT_EQ(p.tokens_bytes(), -1400);
  // At 1 byte/us the debt clears in 1400us, but the quantum floor (2 MSS)
  // matures 2800 bytes per release: next release = now + 2800us.
  EXPECT_EQ(p.next_release_time(now), now + 2800);
  EXPECT_FALSE(p.can_send(now + 1000));
  EXPECT_TRUE(p.can_send(now + 1400));  // debt actually cleared here
}

TEST(Pacer, RefillNeverLosesFractionalCredit) {
  Pacer p(paced_config());
  p.set_rate(333'333);  // awkward rate: 1us earns 0.333 bytes
  sim::Time now = sim::millis(10);
  ASSERT_TRUE(p.can_send(now));
  p.on_sent(now, kInitialWindowPackets * kMss);  // balance to exactly 0
  // Poll every 1us for 30ms: fractional earnings must accumulate, not
  // round away -- after 30ms the balance is ~10000 bytes.
  for (int i = 1; i <= 30000; ++i) p.can_send(now + i);
  EXPECT_NEAR(static_cast<double>(p.tokens_bytes()), 10000.0, 10.0);
}

TEST(Pacer, BurstCeilingCapsIdleAccumulation) {
  Pacer p(paced_config());
  p.set_rate(10'000'000);
  sim::Time now = sim::millis(10);
  ASSERT_TRUE(p.can_send(now));
  p.on_sent(now, 1000);
  // An hour idle: tokens cap at the burst ceiling, not rate * 3600s.
  EXPECT_TRUE(p.can_send(now + sim::seconds(3600)));
  EXPECT_EQ(p.tokens_bytes(),
            static_cast<std::int64_t>(kInitialWindowPackets * kMss));
}

TEST(Pacer, ResetForgetsEverything) {
  Pacer p(paced_config());
  p.set_rate(1'000'000);
  p.can_send(sim::millis(10));
  p.on_sent(sim::millis(10), 1 << 20);
  p.reset();
  EXPECT_EQ(p.rate_bytes_per_sec(), 0u);
  EXPECT_EQ(p.tokens_bytes(), 0);
  // Rate 0 = unlimited: a reset pacer never blocks until reconfigured.
  EXPECT_TRUE(p.can_send(sim::millis(20)));
}

}  // namespace
}  // namespace xlink::quic
