// Unit tests: packet protection, multipath nonce construction, and packet
// header encoding.
#include <gtest/gtest.h>

#include "quic/crypto.h"
#include "quic/packet.h"

namespace xlink::quic {
namespace {

TEST(Nonce, DraftLayout) {
  // 32-bit CID sequence number, 2 zero bits, 62-bit packet number.
  const Nonce n = build_multipath_nonce(0x01020304, 0x0506070805060708ULL);
  EXPECT_EQ(n[0], 0x01);
  EXPECT_EQ(n[1], 0x02);
  EXPECT_EQ(n[2], 0x03);
  EXPECT_EQ(n[3], 0x04);
  // Top two bits of the packet number field must be zero.
  EXPECT_EQ(n[4] & 0xc0, 0x04 & 0xc0);
  // Packet number occupies the low 62 bits in network byte order.
  const Nonce small = build_multipath_nonce(0, 1);
  EXPECT_EQ(small[11], 1);
  for (int i = 0; i < 11; ++i) EXPECT_EQ(small[static_cast<size_t>(i)], 0);
}

TEST(Nonce, DistinctAcrossPathsAndPackets) {
  EXPECT_NE(build_multipath_nonce(0, 5), build_multipath_nonce(1, 5));
  EXPECT_NE(build_multipath_nonce(0, 5), build_multipath_nonce(0, 6));
  // Same (path, pn) must collide -- that is the deterministic mapping.
  EXPECT_EQ(build_multipath_nonce(3, 9), build_multipath_nonce(3, 9));
}

TEST(Aead, SealOpenRoundtrip) {
  PacketProtection aead(0xdead);
  const std::vector<std::uint8_t> aad{1, 2, 3};
  const std::vector<std::uint8_t> plaintext{10, 20, 30, 40, 50};
  const auto sealed = aead.seal(1, 7, aad, plaintext);
  EXPECT_EQ(sealed.size(), plaintext.size() + kAeadTagSize);
  const auto opened = aead.open(1, 7, aad, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, plaintext);
}

TEST(Aead, CiphertextDiffersFromPlaintext) {
  PacketProtection aead(0xdead);
  const std::vector<std::uint8_t> plaintext(64, 0xaa);
  const std::vector<std::uint8_t> none;
  const auto sealed = aead.seal(0, 0, none, plaintext);
  bool differs = false;
  for (std::size_t i = 0; i < plaintext.size(); ++i)
    differs |= sealed[i] != plaintext[i];
  EXPECT_TRUE(differs);
}

TEST(Aead, WrongKeyFails) {
  PacketProtection a(1), b(2);
  const std::vector<std::uint8_t> none;
  const std::vector<std::uint8_t> pt{1, 2, 3};
  const auto sealed = a.seal(0, 0, none, pt);
  EXPECT_FALSE(b.open(0, 0, none, sealed).has_value());
}

TEST(Aead, WrongPathIdFails) {
  PacketProtection aead(5);
  const std::vector<std::uint8_t> none;
  const std::vector<std::uint8_t> pt{1, 2, 3};
  const auto sealed = aead.seal(1, 10, none, pt);
  EXPECT_FALSE(aead.open(2, 10, none, sealed).has_value());
}

TEST(Aead, WrongPacketNumberFails) {
  PacketProtection aead(5);
  const std::vector<std::uint8_t> none;
  const std::vector<std::uint8_t> pt{1, 2, 3};
  const auto sealed = aead.seal(1, 10, none, pt);
  EXPECT_FALSE(aead.open(1, 11, none, sealed).has_value());
}

TEST(Aead, TamperedCiphertextFails) {
  PacketProtection aead(5);
  const std::vector<std::uint8_t> none;
  const std::vector<std::uint8_t> pt{1, 2, 3, 4};
  auto sealed = aead.seal(1, 10, none, pt);
  sealed[1] ^= 0x01;
  EXPECT_FALSE(aead.open(1, 10, none, sealed).has_value());
}

TEST(Aead, TamperedAadFails) {
  PacketProtection aead(5);
  const std::vector<std::uint8_t> aad{9, 9};
  const std::vector<std::uint8_t> pt{1, 2, 3};
  const auto sealed = aead.seal(1, 10, aad, pt);
  const std::vector<std::uint8_t> other_aad{9, 8};
  EXPECT_FALSE(aead.open(1, 10, other_aad, sealed).has_value());
}

TEST(Aead, TooShortInputFails) {
  PacketProtection aead(5);
  const std::vector<std::uint8_t> none;
  const std::vector<std::uint8_t> tiny(kAeadTagSize - 1, 0);
  EXPECT_FALSE(aead.open(0, 0, none, tiny).has_value());
}

TEST(Aead, EmptyPlaintextAuthenticates) {
  PacketProtection aead(5);
  const std::vector<std::uint8_t> aad{7};
  const std::vector<std::uint8_t> empty;
  const auto sealed = aead.seal(0, 1, aad, empty);
  const auto opened = aead.open(0, 1, aad, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

TEST(Packet, OneRttRoundtrip) {
  PacketProtection aead(0x5eed);
  PacketHeader h;
  h.type = PacketType::kOneRtt;
  h.dcid = {1, 2, 3, 4, 5, 6, 7, 8};
  h.cid_sequence = 2;
  h.packet_number = 99;

  std::vector<Frame> frames;
  StreamFrame s;
  s.stream_id = 4;
  s.offset = 1000;
  s.data = {1, 2, 3};
  frames.emplace_back(s);
  frames.emplace_back(PingFrame{});

  const auto wire = seal_packet(aead, h, frames);
  const auto parsed = parse_packet(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.type, PacketType::kOneRtt);
  EXPECT_EQ(parsed->header.dcid, h.dcid);
  EXPECT_EQ(parsed->header.cid_sequence, 2u);
  EXPECT_EQ(parsed->header.packet_number, 99u);

  const auto opened = open_packet(aead, *parsed);
  ASSERT_TRUE(opened.has_value());
  ASSERT_EQ(opened->size(), 2u);
  EXPECT_EQ((*opened)[0], Frame{s});
}

TEST(Packet, InitialRoundtripCarriesScid) {
  PacketProtection aead(0x5eed);
  PacketHeader h;
  h.type = PacketType::kInitial;
  h.dcid = {8, 7, 6, 5, 4, 3, 2, 1};
  h.scid = {1, 1, 2, 2, 3, 3, 4, 4};
  h.packet_number = 0;
  const auto wire =
      seal_packet(aead, h, {Frame{CryptoFrame{0, {1, 2, 3}}}});
  const auto parsed = parse_packet(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.type, PacketType::kInitial);
  EXPECT_EQ(parsed->header.scid, h.scid);
  EXPECT_TRUE(open_packet(aead, *parsed).has_value());
}

TEST(Packet, GarbageFailsParse) {
  EXPECT_FALSE(parse_packet(std::vector<std::uint8_t>{}).has_value());
  EXPECT_FALSE(
      parse_packet(std::vector<std::uint8_t>{0xff, 1, 2}).has_value());
  // Valid first byte but truncated header.
  EXPECT_FALSE(
      parse_packet(std::vector<std::uint8_t>{0x40, 1, 2, 3}).has_value());
}

TEST(Packet, WrongKeyFailsOpen) {
  PacketProtection good(1), bad(2);
  PacketHeader h;
  h.packet_number = 5;
  const auto wire = seal_packet(good, h, {Frame{PingFrame{}}});
  const auto parsed = parse_packet(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(open_packet(bad, *parsed).has_value());
}

TEST(Packet, HeaderTamperFailsOpen) {
  PacketProtection aead(1);
  PacketHeader h;
  h.packet_number = 5;
  h.cid_sequence = 0;
  auto wire = seal_packet(aead, h, {Frame{PingFrame{}}});
  wire[2] ^= 0xff;  // flip a DCID byte (inside the AAD)
  const auto parsed = parse_packet(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(open_packet(aead, *parsed).has_value());
}

TEST(Packet, HeaderSizeMatchesWire) {
  PacketProtection aead(1);
  PacketHeader h;
  h.type = PacketType::kOneRtt;
  h.packet_number = 70000;  // 4-byte varint
  const auto wire = seal_packet(aead, h, {Frame{PingFrame{}}});
  const auto parsed = parse_packet(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header_bytes.size(),
            header_size(PacketType::kOneRtt, 70000));
}

}  // namespace
}  // namespace xlink::quic
