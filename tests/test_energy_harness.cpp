// Tests: energy model, wireless model, primary path selection, and the
// harness (session determinism, A/B population plumbing).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/primary_path.h"
#include "energy/energy_model.h"
#include "harness/ab_test.h"
#include "net/wireless.h"
#include "trace/synthetic.h"

namespace xlink {
namespace {

TEST(EnergyModel, ProfilesOrdering) {
  // Cellular radios burn more than Wi-Fi; 5G more than LTE's active power
  // is not guaranteed, but baseline orderings are.
  const auto wifi = energy::radio_profile(net::Wireless::kWifi);
  const auto lte = energy::radio_profile(net::Wireless::kLte);
  const auto nr = energy::radio_profile(net::Wireless::k5gNsa);
  EXPECT_LT(wifi.active_watts, lte.active_watts);
  EXPECT_LT(lte.active_watts, nr.active_watts);
  EXPECT_GT(lte.tail, wifi.tail);
}

TEST(EnergyModel, EnergyPerBitMath) {
  // One radio at 1.6W active for 10s moving 10MB:
  energy::RadioUsage usage;
  usage.tech = net::Wireless::kLte;
  usage.bytes_transferred = 10'000'000;
  usage.active_time = sim::seconds(10);
  const auto report = energy::compute_energy({usage}, 10'000'000,
                                             sim::seconds(10));
  EXPECT_NEAR(report.total_joules, 1.6 * 10, 1e-6);
  EXPECT_NEAR(report.energy_per_bit_nj, 16.0 / 80.0 * 1000, 1.0);  // 200 nJ
  EXPECT_NEAR(report.throughput_mbps, 8.0, 0.01);
}

TEST(EnergyModel, DualRadioLowersEnergyPerBitWhenFaster) {
  // Same bytes; dual finishes in half the time at double power-ish.
  energy::RadioUsage lte{net::Wireless::kLte, 20'000'000, sim::seconds(20)};
  const auto single =
      energy::compute_energy({lte}, 20'000'000, sim::seconds(20));
  energy::RadioUsage wifi{net::Wireless::kWifi, 10'000'000, sim::seconds(10)};
  energy::RadioUsage lte2{net::Wireless::kLte, 10'000'000, sim::seconds(10)};
  const auto dual =
      energy::compute_energy({wifi, lte2}, 20'000'000, sim::seconds(10));
  EXPECT_LT(dual.energy_per_bit_nj, single.energy_per_bit_nj);
  EXPECT_GT(dual.throughput_mbps, single.throughput_mbps);
}

TEST(Wireless, RttRatiosMatchPaper) {
  sim::Rng rng(4);
  std::vector<double> wifi, lte, sa;
  for (int i = 0; i < 8000; ++i) {
    wifi.push_back(sim::to_millis(net::sample_rtt(net::Wireless::kWifi, rng)));
    lte.push_back(sim::to_millis(net::sample_rtt(net::Wireless::kLte, rng)));
    sa.push_back(sim::to_millis(net::sample_rtt(net::Wireless::k5gSa, rng)));
  }
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  EXPECT_NEAR(median(lte) / median(wifi), 2.7, 0.4);
  EXPECT_NEAR(median(lte) / median(sa), 5.5, 0.8);
}

TEST(Wireless, CrossIspMatrixMatchesTable4) {
  EXPECT_DOUBLE_EQ(net::cross_isp_increase(net::Isp::kA, net::Isp::kA), 0.0);
  EXPECT_DOUBLE_EQ(net::cross_isp_increase(net::Isp::kA, net::Isp::kB), 0.21);
  EXPECT_DOUBLE_EQ(net::cross_isp_increase(net::Isp::kB, net::Isp::kC), 0.54);
  EXPECT_DOUBLE_EQ(net::cross_isp_increase(net::Isp::kC, net::Isp::kA), 0.39);
}

TEST(PrimaryPath, PaperOrdering) {
  using net::Wireless;
  const std::vector<Wireless> ifaces{Wireless::kLte, Wireless::kWifi,
                                     Wireless::k5gSa, Wireless::k5gNsa};
  EXPECT_EQ(core::select_primary_path(ifaces), 2u);  // 5G SA
  const auto order = core::rank_paths(ifaces);
  EXPECT_EQ(order, (std::vector<std::size_t>{2, 3, 1, 0}));
}

TEST(PrimaryPath, TieBreaksByIndex) {
  using net::Wireless;
  EXPECT_EQ(core::select_primary_path({Wireless::kWifi, Wireless::kWifi}),
            0u);
}

TEST(Harness, SessionsAreDeterministic) {
  auto make = [] {
    harness::SessionConfig cfg;
    cfg.scheme = core::Scheme::kXlink;
    cfg.seed = 99;
    cfg.video.duration = sim::seconds(3);
    cfg.paths.push_back(harness::make_path_spec(
        net::Wireless::kWifi, trace::campus_walk_wifi(5, sim::seconds(15)),
        sim::millis(40), 0.005));
    cfg.paths.push_back(harness::make_path_spec(
        net::Wireless::kLte, trace::stable_lte(6, sim::seconds(15)),
        sim::millis(90), 0.005));
    return cfg;
  };
  harness::Session a(make()), b(make());
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.chunk_rct_seconds, rb.chunk_rct_seconds);
  EXPECT_EQ(ra.first_frame_seconds, rb.first_frame_seconds);
  EXPECT_EQ(ra.server_wire_bytes, rb.server_wire_bytes);
  EXPECT_EQ(ra.reinjected_bytes, rb.reinjected_bytes);
}

TEST(Harness, WirelessAwarePrimaryReordersPaths) {
  harness::SessionConfig cfg;
  cfg.scheme = core::Scheme::kSinglePath;  // uses only path 0
  cfg.seed = 7;
  cfg.video.duration = sim::seconds(2);
  // LTE first; wireless-aware selection must promote Wi-Fi to primary.
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kLte, trace::stable_lte(1, sim::seconds(10)),
      sim::millis(100)));
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kWifi, trace::stable_lte(2, sim::seconds(10)),
      sim::millis(30)));
  harness::Session session(std::move(cfg));
  const auto r = session.run();
  ASSERT_TRUE(r.download_finished);
  EXPECT_EQ(session.network().path(0).tech(), net::Wireless::kWifi);
  EXPECT_GT(r.path_down_bytes[0], 0u);
  EXPECT_EQ(r.path_down_bytes[1], 0u);
}

TEST(Harness, DrawSessionConditionsBoundsAndDeterminism) {
  harness::PopulationConfig pop;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const auto cfg = harness::draw_session_conditions(pop, seed);
    EXPECT_EQ(cfg.paths.size(), 2u);
    EXPECT_EQ(cfg.paths[0].tech, net::Wireless::kWifi);
    EXPECT_TRUE(cfg.paths[1].tech == net::Wireless::kLte ||
                cfg.paths[1].tech == net::Wireless::k5gNsa);
    EXPECT_GE(cfg.video.duration, sim::seconds(8));
    EXPECT_LE(cfg.video.duration, sim::seconds(20));
    EXPECT_GE(cfg.video.bitrate_bps, 1'500'000u);
    EXPECT_LE(cfg.video.bitrate_bps, 4'000'000u);
    EXPECT_LE(cfg.paths[0].loss_rate, pop.max_loss);
  }
  const auto a = harness::draw_session_conditions(pop, 77);
  const auto b = harness::draw_session_conditions(pop, 77);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.video.bitrate_bps, b.video.bitrate_bps);
}

TEST(Harness, RunDayProducesPopulationMetrics) {
  harness::PopulationConfig pop;
  pop.sessions_per_day = 3;
  pop.time_limit = sim::seconds(60);
  const auto day =
      harness::run_day(core::Scheme::kSinglePath, {}, pop, 12345);
  EXPECT_EQ(day.sessions, 3);
  EXPECT_GT(day.rct.count(), 0u);
  EXPECT_EQ(day.first_frame.count(), 3u);
  EXPECT_DOUBLE_EQ(day.redundancy_pct, 0.0);  // SP never duplicates
}

}  // namespace
}  // namespace xlink
