// ABR controller conformance suite (DESIGN.md §12).
//
// The three controllers are pure functions of their config and the fed
// input/sample sequence, so a scripted trace has an exact golden decision
// sequence. The goldens below are hand-derived from the default AbrConfig
// and the scaled 4-rung ladder; a change in any controller's policy must
// show up here as an explicit golden update.
#include <gtest/gtest.h>

#include <vector>

#include "harness/scenario.h"
#include "trace/synthetic.h"
#include "video/abr.h"

namespace xlink::video {
namespace {

// One scripted step: the inputs for decision i, then the throughput sample
// (bits/s over a 1s download) fed back after the decision -- the shape of
// the real chunk loop in http/media_client.
struct Step {
  sim::Duration buffer;
  std::uint64_t btlbw_bps;
  std::uint64_t sample_bps;  // 0 = no sample after this chunk
};

const std::vector<Step>& script() {
  static const std::vector<Step> s = {
      {sim::millis(0), 0, 3'200'000},
      {sim::millis(1000), 3'500'000, 3'200'000},
      {sim::millis(2500), 3'500'000, 4'800'000},
      {sim::millis(4000), 4'800'000, 4'800'000},
      {sim::millis(6500), 4'800'000, 4'800'000},
      {sim::millis(9000), 4'800'000, 800'000},
      {sim::millis(2000), 1'000'000, 800'000},
      {sim::millis(1000), 900'000, 2'400'000},
  };
  return s;
}

AbrConfig config_for(AbrAlgorithm algo) {
  AbrConfig cfg;
  cfg.algorithm = algo;
  cfg.ladder = BitrateLadder::scaled(4'000'000);
  return cfg;
}

// Runs the script, optionally with every chunk_index shifted by `shift`.
std::vector<std::size_t> run_script(AbrController& abr,
                                    std::size_t shift = 0) {
  std::vector<std::size_t> rungs;
  for (std::size_t i = 0; i < script().size(); ++i) {
    const Step& step = script()[i];
    AbrInputs in;
    in.chunk_index = i + shift;
    in.buffer_level = step.buffer;
    in.btlbw_bps = step.btlbw_bps;
    rungs.push_back(abr.choose(in).rung);
    if (step.sample_bps != 0)
      abr.on_chunk_downloaded(step.sample_bps / 8, sim::seconds(1));
  }
  return rungs;
}

TEST(AbrConformance, RateBasedGoldenSequence) {
  const auto cfg = config_for(AbrAlgorithm::kRateBased);
  auto abr = make_abr_controller(cfg, cfg.ladder);
  // EWMA (alpha .5): 3.2M, 3.2M, 4.0M, 4.4M, 4.6M, 2.7M, 1.75M; rung =
  // highest bitrate <= 0.9 * ewma.
  EXPECT_EQ(run_script(*abr),
            (std::vector<std::size_t>{0, 1, 1, 2, 2, 3, 1, 0}));
  EXPECT_EQ(abr->decisions(), 8u);
  EXPECT_EQ(abr->switches(), 5u);
  EXPECT_EQ(abr->switch_magnitude(), 6u);  // includes the 3 -> 1 drop
}

TEST(AbrConformance, BufferBasedGoldenSequence) {
  const auto cfg = config_for(AbrAlgorithm::kBufferBased);
  auto abr = make_abr_controller(cfg, cfg.ladder);
  // <= 2s -> rung 0, >= 8s -> top, linear rungs 1..top between.
  EXPECT_EQ(run_script(*abr),
            (std::vector<std::size_t>{0, 0, 1, 1, 2, 3, 0, 0}));
  EXPECT_EQ(abr->switches(), 4u);
  EXPECT_EQ(abr->switch_magnitude(), 6u);  // includes the 3 -> 0 drop
}

TEST(AbrConformance, HybridGoldenSequence) {
  const auto cfg = config_for(AbrAlgorithm::kHybrid);
  auto abr = make_abr_controller(cfg, cfg.ladder);
  // est = max(ewma, btlbw); follows the 0.85-scaled estimate while the
  // buffer grows (steps 0-5), sheds a rung per chunk once it drains thin
  // (steps 6-7, horizon < 3s and shrinking).
  EXPECT_EQ(run_script(*abr),
            (std::vector<std::size_t>{0, 1, 1, 3, 3, 3, 1, 0}));
  EXPECT_EQ(abr->switches(), 4u);
  EXPECT_EQ(abr->switch_magnitude(), 6u);
}

// Decisions may not depend on the chunk index (the discrete time axis):
// the same script shifted far from zero must produce the identical
// sequence and statistics. Guards against t=0 / index-0 sentinel aliasing
// (the PR 8 congestion-control bug class).
TEST(AbrConformance, ChunkIndexShiftInvariance) {
  for (const auto algo : {AbrAlgorithm::kRateBased, AbrAlgorithm::kBufferBased,
                          AbrAlgorithm::kHybrid}) {
    const auto cfg = config_for(algo);
    auto base = make_abr_controller(cfg, cfg.ladder);
    auto shifted = make_abr_controller(cfg, cfg.ladder);
    EXPECT_EQ(run_script(*base), run_script(*shifted, 100'000))
        << to_string(algo);
    EXPECT_EQ(base->switches(), shifted->switches()) << to_string(algo);
  }
}

// "No rate sample yet" is an explicit state, not a 0-valued sentinel: a
// genuine near-zero-rate sample must be treated as information, and
// zero-byte / zero-duration samples must not fabricate one.
TEST(AbrConformance, ZeroRateSampleIsNotASentinel) {
  const auto cfg = config_for(AbrAlgorithm::kRateBased);
  auto abr = make_abr_controller(cfg, cfg.ladder);
  abr->on_chunk_downloaded(0, sim::seconds(1));   // ignored: no information
  abr->on_chunk_downloaded(1024, 0);              // ignored: no information
  AbrInputs in;
  EXPECT_EQ(abr->choose(in).estimate_bps, 0u);    // still no sample
  abr->on_chunk_downloaded(1, sim::seconds(1));   // a real 8 bit/s sample
  const auto d = abr->choose(in);
  EXPECT_EQ(d.estimate_bps, 8u);  // estimate now exists, however small
  EXPECT_EQ(d.rung, 0u);
}

TEST(AbrConformance, FirstDecisionEstablishesRungWithoutASwitch) {
  auto cfg = config_for(AbrAlgorithm::kBufferBased);
  auto abr = make_abr_controller(cfg, cfg.ladder);
  AbrInputs in;
  in.buffer_level = sim::seconds(10);  // first decision lands on the top
  EXPECT_EQ(abr->choose(in).rung, cfg.ladder.top_rung());
  EXPECT_EQ(abr->switches(), 0u);
  EXPECT_EQ(abr->switch_magnitude(), 0u);
  in.buffer_level = 0;  // now a real switch, top -> 0
  abr->choose(in);
  EXPECT_EQ(abr->switches(), 1u);
  EXPECT_EQ(abr->switch_magnitude(), cfg.ladder.top_rung());
}

// ------------------------------------------------------------------- e2e

harness::SessionConfig abr_session_config(AbrAlgorithm algo,
                                          std::uint64_t seed) {
  harness::SessionConfig cfg;
  cfg.scheme = core::Scheme::kXlink;
  cfg.seed = seed;
  cfg.video.duration = sim::seconds(6);
  cfg.video.bitrate_bps = 2'400'000;
  cfg.video.seed = seed;
  cfg.client.abr.algorithm = algo;
  cfg.client.abr.chunk_frames = 30;
  cfg.time_limit = sim::seconds(60);
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kWifi, trace::stable_lte(seed, sim::seconds(30)),
      sim::millis(30), 0.01));
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kLte, trace::stable_lte(seed + 1, sim::seconds(30)),
      sim::millis(60), 0.01));
  return cfg;
}

TEST(AbrSession, RunsAndReportsDecisions) {
  harness::Session session(abr_session_config(AbrAlgorithm::kHybrid, 11));
  const auto r = session.run();
  EXPECT_TRUE(r.abr_enabled);
  EXPECT_TRUE(r.video_finished);
  EXPECT_TRUE(r.download_finished);
  // One decision per second of video at 30fps chunks.
  EXPECT_EQ(r.abr_decisions, 6u);
  EXPECT_GT(r.abr_bitrate_utility, 0.0);
  EXPECT_LE(r.abr_bitrate_utility, 1.0);
  EXPECT_EQ(r.metrics.counter("session.abr.decisions"), r.abr_decisions);
}

TEST(AbrSession, DeterministicAcrossRuns) {
  for (const auto algo : {AbrAlgorithm::kRateBased, AbrAlgorithm::kBufferBased,
                          AbrAlgorithm::kHybrid}) {
    harness::Session a(abr_session_config(algo, 23));
    harness::Session b(abr_session_config(algo, 23));
    const auto ra = a.run();
    const auto rb = b.run();
    EXPECT_EQ(ra.abr_decisions, rb.abr_decisions) << to_string(algo);
    EXPECT_EQ(ra.abr_switches, rb.abr_switches) << to_string(algo);
    EXPECT_DOUBLE_EQ(ra.abr_bitrate_utility, rb.abr_bitrate_utility)
        << to_string(algo);
    EXPECT_DOUBLE_EQ(ra.rebuffer_rate, rb.rebuffer_rate) << to_string(algo);
  }
}

TEST(AbrSession, FixedModeLeavesLegacyPathUntouched) {
  auto cfg = abr_session_config(AbrAlgorithm::kFixed, 31);
  harness::Session session(std::move(cfg));
  const auto r = session.run();
  EXPECT_FALSE(r.abr_enabled);
  EXPECT_EQ(r.abr_decisions, 0u);
  EXPECT_TRUE(r.video_finished);
  EXPECT_EQ(session.media_client().contiguous_bytes(),
            session.video_model().total_bytes());
}

}  // namespace
}  // namespace xlink::video
