// Chaos suite: randomized fault plans x seeds against full sessions.
//
// Every run must uphold the transport's core invariants no matter what the
// fault injector throws at it:
//   1. no crash / sanitizer finding (the binary runs under ASan/UBSan in CI),
//   2. every stream byte delivered exactly once, content byte-exact,
//   3. the session finishes within a bounded time after the last fault
//      clears (no permanent stall),
//   4. every injected fault and every path-health transition is visible in
//      the exported qlog.
//
// The sweep size defaults to 60 sessions (>= 50 required) and can be
// reduced for smoke runs via XLINK_CHAOS_SEEDS (CI sets a smaller count
// for the sanitizer job). Plans are derived from the seed alone, so any
// failing session replays bit-identically in isolation.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "harness/scenario.h"
#include "net/fault.h"
#include "telemetry/qlog.h"
#include "trace/synthetic.h"

namespace xlink {
namespace {

std::size_t chaos_session_count() {
  if (const char* env = std::getenv("XLINK_CHAOS_SEEDS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 60;
}

/// Derives a randomized fault plan for one path from a forked rng. Windows
/// land inside [1s, 7s) so every plan clears well before the time limit.
net::FaultPlan random_plan(sim::Rng& rng) {
  net::FaultPlan plan;
  const std::uint64_t n_windows = 1 + rng.uniform(3);
  for (std::uint64_t i = 0; i < n_windows; ++i) {
    const sim::Time start = sim::millis(1000 + rng.uniform(4000));
    const sim::Duration dur = sim::millis(300 + rng.uniform(1700));
    switch (rng.uniform(7)) {
      case 0: plan.blackout(start, dur); break;
      case 1: plan.uplink_drop(start, dur); break;
      case 2: plan.downlink_drop(start, dur); break;
      case 3: plan.corrupt(start, dur, 0.2 + 0.6 * rng.uniform_double()); break;
      case 4:
        plan.reorder(start, dur, 0.3 + 0.4 * rng.uniform_double(),
                     sim::millis(20 + rng.uniform(80)));
        break;
      case 5:
        plan.delay_spike(start, dur, sim::millis(50 + rng.uniform(250)));
        break;
      default: plan.nat_rebind(start); break;
    }
  }
  return plan;
}

struct ChaosOutcome {
  std::uint64_t faults_traced = 0;
  std::uint64_t health_traced = 0;
  std::uint64_t failovers = 0;
};

ChaosOutcome run_chaos_session(std::uint64_t seed) {
  sim::Rng rng(seed * 7919 + 13);

  harness::SessionConfig cfg;
  cfg.scheme = rng.chance(0.25) ? core::Scheme::kVanillaMp
                                : core::Scheme::kXlink;
  cfg.seed = seed;
  // Sized so the transfer overlaps the fault windows in [1s, 7s): the
  // aggregate link rate is ~30 Mbps, so ~8-12 MB keeps data in flight
  // through the whole fault horizon.
  cfg.video.duration = sim::seconds(10);
  cfg.video.bitrate_bps = 7'000'000 + rng.uniform(3'000'000);
  cfg.video.seed = seed;
  cfg.client.chunk_bytes = 128 * 1024;
  cfg.client.verify_content = true;
  cfg.time_limit = sim::seconds(120);
  cfg.wireless_aware_primary = false;
  cfg.trace.enabled = true;
  cfg.trace.capacity = 1 << 18;

  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kWifi, trace::stable_lte(seed, sim::seconds(60)),
      sim::millis(15 + rng.uniform(30))));
  cfg.paths.push_back(harness::make_path_spec(
      net::Wireless::kLte, trace::stable_lte(seed + 1, sim::seconds(60)),
      sim::millis(30 + rng.uniform(60))));

  // Fault at least one path; half the time both.
  cfg.paths[0].fault_plan = random_plan(rng);
  if (rng.chance(0.5)) cfg.paths[1].fault_plan = random_plan(rng);
  sim::Time horizon = cfg.paths[0].fault_plan.last_fault_end();
  horizon = std::max(horizon, cfg.paths[1].fault_plan.last_fault_end());

  harness::Session session(std::move(cfg));
  const auto result = session.run();
  const auto& cconf = session.config();

  // (2) exactly-once, byte-exact delivery.
  EXPECT_TRUE(result.download_finished) << "seed " << seed;
  EXPECT_EQ(session.media_client().content_mismatches(), 0u)
      << "seed " << seed;
  EXPECT_EQ(session.media_client().contiguous_bytes(),
            session.video_model().total_bytes())
      << "seed " << seed;

  // (3) bounded stall: done within a grace period of the last fault end.
  const auto done_at = session.media_client().all_done_at();
  EXPECT_TRUE(done_at.has_value()) << "seed " << seed;
  if (done_at) {
    EXPECT_LE(*done_at, horizon + sim::seconds(45))
        << "seed " << seed << " scheme " << core::to_string(cconf.scheme);
  }

  // (4) every fired fault window + health transition is in the qlog.
  std::uint64_t expected_fired = 0;
  for (std::size_t i = 0; i < session.network().path_count(); ++i) {
    if (const auto* f = session.network().path(i).faults())
      expected_fired += f->stats().windows_fired;
  }
  telemetry::QlogMeta meta;
  meta.seed = seed;
  std::ostringstream os;
  telemetry::write_qlog(os, session.trace_sink()->snapshot(), meta,
                        session.trace_sink()->recorded(),
                        session.trace_sink()->dropped());
  const auto parsed = telemetry::parse_qlog(os.str());
  EXPECT_TRUE(parsed.has_value()) << "seed " << seed;

  ChaosOutcome out;
  out.failovers = session.server_conn().stats().failovers +
                  session.client_conn().stats().failovers;
  if (parsed) {
    std::uint64_t fault_opens = 0;
    for (const auto& e : parsed->events) {
      if (e.type == telemetry::EventType::kFault) {
        ++out.faults_traced;
        if (e.flag & 1) ++fault_opens;
      }
      if (e.type == telemetry::EventType::kPathHealth) ++out.health_traced;
    }
    EXPECT_EQ(fault_opens, expected_fired) << "seed " << seed;
    if (out.failovers > 0) {
      EXPECT_GT(out.health_traced, 0u)
          << "seed " << seed << ": failovers must leave a telemetry trail";
    }
  }
  return out;
}

TEST(Chaos, RandomFaultPlansUpholdInvariants) {
  const std::size_t sessions = chaos_session_count();
  std::uint64_t total_faults = 0;
  std::uint64_t total_failovers = 0;
  std::uint64_t total_health = 0;
  for (std::size_t i = 0; i < sessions; ++i) {
    SCOPED_TRACE("chaos session " + std::to_string(i));
    const ChaosOutcome out = run_chaos_session(1000 + i);
    total_faults += out.faults_traced;
    total_failovers += out.failovers;
    total_health += out.health_traced;
    if (::testing::Test::HasFatalFailure()) break;
  }
  // The sweep as a whole must actually exercise the machinery: faults
  // fired, and at least some sessions drove a full failover.
  EXPECT_GT(total_faults, sessions);
  EXPECT_GT(total_failovers, 0u);
  EXPECT_GT(total_health, 0u);
}

}  // namespace
}  // namespace xlink
