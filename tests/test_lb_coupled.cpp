// Tests: QUIC-LB routing (paper §6) and coupled congestion control (§9).
#include <gtest/gtest.h>

#include "lb/quic_lb.h"
#include "mpquic/schedulers.h"
#include "quic/cc_coupled.h"
#include "test_support.h"

namespace xlink {
namespace {

TEST(QuicLb, ServerIdEncodeDecode) {
  std::array<std::uint8_t, 8> cid{1, 2, 3, 4, 5, 6, 7, 8};
  lb::encode_server_id(cid, 42);
  EXPECT_EQ(lb::decode_server_id(cid), 42);
  // Only the server-id byte changes.
  EXPECT_EQ(cid[0], 1);
  EXPECT_EQ(cid[7], 8);
}

TEST(QuicLb, RoutesByEncodedServerId) {
  lb::QuicLbRouter router({0, 1, 2, 3});
  std::array<std::uint8_t, 8> cid{9, 9, 9, 9, 9, 9, 9, 9};
  lb::encode_server_id(cid, 2);
  const auto dest = router.route_cid(cid);
  ASSERT_TRUE(dest.has_value());
  EXPECT_EQ(*dest, 2);
}

TEST(QuicLb, FallsBackToConsistentHashForUnknownId) {
  lb::QuicLbRouter router({0, 1, 2});
  std::array<std::uint8_t, 8> cid{7, 200, 1, 2, 3, 4, 5, 6};  // id 200: none
  const auto dest = router.route_cid(cid);
  ASSERT_TRUE(dest.has_value());
  EXPECT_LT(*dest, 3);
  // Deterministic.
  EXPECT_EQ(router.route_cid(cid), dest);
}

TEST(QuicLb, ConsistentHashSpreadsAndSticksOnResize) {
  lb::ConsistentHashRing ring;
  for (std::uint8_t id = 0; id < 4; ++id) ring.add_server(id);
  std::map<std::uint8_t, int> counts;
  std::vector<std::optional<std::uint8_t>> before;
  for (int i = 0; i < 400; ++i) {
    std::array<std::uint8_t, 8> cid{};
    for (int b = 0; b < 8; ++b)
      cid[static_cast<size_t>(b)] = static_cast<std::uint8_t>(i * 8 + b);
    const auto dest = ring.route(cid);
    ASSERT_TRUE(dest.has_value());
    ++counts[*dest];
    before.push_back(dest);
  }
  // Rough balance: each server gets a meaningful share.
  for (const auto& [id, n] : counts) EXPECT_GT(n, 40) << int(id);
  // Adding a server moves only a minority of keys.
  ring.add_server(4);
  int moved = 0;
  for (int i = 0; i < 400; ++i) {
    std::array<std::uint8_t, 8> cid{};
    for (int b = 0; b < 8; ++b)
      cid[static_cast<size_t>(b)] = static_cast<std::uint8_t>(i * 8 + b);
    if (ring.route(cid) != before[static_cast<size_t>(i)]) ++moved;
  }
  EXPECT_LT(moved, 200);
  EXPECT_GT(moved, 0);
}

TEST(QuicLb, EmptyPoolRoutesNowhere) {
  lb::QuicLbRouter router({});
  std::array<std::uint8_t, 8> cid{};
  EXPECT_FALSE(router.route_cid(cid).has_value());
}

TEST(QuicLb, AllPathsOfAConnectionReachTheSameProcess) {
  // A multipath connection whose server embeds process id 3 in its CIDs:
  // every datagram the client emits (any path) must route to process 3.
  test::WirePair::Options o;
  o.client_config = test::multipath_config();
  o.server_config = test::multipath_config();
  o.client_config.scheduler = mpquic::make_min_rtt_scheduler();
  o.server_config.scheduler = mpquic::make_min_rtt_scheduler();
  o.server_config.cid_server_id = 3;   // server's own id
  o.client_config.peer_cid_server_id = 3;
  test::WirePair pair(std::move(o));

  lb::QuicLbRouter router({0, 1, 2, 3, 4, 5});
  std::map<std::uint8_t, int> destinations;
  pair.drop_client_to_server = [&](quic::PathId, const net::Datagram& d) {
    const auto dest = router.route_datagram(d);
    if (dest) ++destinations[*dest];
    return false;
  };
  ASSERT_TRUE(pair.establish());
  pair.run_for(sim::millis(100));
  ASSERT_TRUE(pair.client->open_path().has_value());
  pair.run_for(sim::millis(200));
  const quic::StreamId id = pair.client->open_stream();
  pair.client->stream_send(id, test::pattern_bytes(60 * 1024), true);
  pair.run_for(sim::seconds(1));

  ASSERT_EQ(destinations.size(), 1u) << "paths split across processes";
  EXPECT_EQ(destinations.begin()->first, 3);
  EXPECT_GT(destinations.begin()->second, 10);
}

// ------------------------------------------------------------- coupled CC

TEST(CoupledLia, AlphaMatchesRfc6356ForEqualPaths) {
  // Two equal paths: alpha = total * (c/r^2) / (2c/r)^2 = 1/2.
  auto group = std::make_shared<quic::LiaGroup>();
  auto a = quic::make_lia_controller(group);
  auto b = quic::make_lia_controller(group);
  a->on_ack(1400, sim::millis(10), sim::millis(60), sim::millis(50));
  b->on_ack(1400, sim::millis(10), sim::millis(60), sim::millis(50));
  // Leave slow start so cwnds are equal and alpha is meaningful.
  EXPECT_NEAR(group->alpha(), 0.5, 0.05);
}

TEST(CoupledLia, CongestionAvoidanceGrowsSlowerThanUncoupled) {
  auto grow_bytes = [](bool coupled) {
    auto group = std::make_shared<quic::LiaGroup>();
    auto make = [&]() -> std::unique_ptr<quic::CongestionController> {
      if (coupled) return quic::make_lia_controller(group);
      return quic::make_congestion_controller(quic::CcAlgorithm::kNewReno);
    };
    auto a = make();
    auto b = make();
    // Push both out of slow start.
    a->on_loss_event(sim::millis(5), sim::millis(10));
    b->on_loss_event(sim::millis(5), sim::millis(10));
    const std::size_t start = a->cwnd_bytes() + b->cwnd_bytes();
    for (int i = 0; i < 200; ++i) {
      a->on_ack(1400, sim::millis(20 + i), sim::millis(70 + i),
                sim::millis(50));
      b->on_ack(1400, sim::millis(20 + i), sim::millis(70 + i),
                sim::millis(50));
    }
    return a->cwnd_bytes() + b->cwnd_bytes() - start;
  };
  const auto coupled = grow_bytes(true);
  const auto uncoupled = grow_bytes(false);
  EXPECT_LT(coupled, uncoupled);
  EXPECT_GT(coupled, 0u);
  // RFC 6356 goal: the pair grows like ~one flow, i.e. about half the
  // aggressiveness of two independent flows.
  EXPECT_NEAR(static_cast<double>(coupled) / uncoupled, 0.5, 0.25);
}

TEST(CoupledLia, LossHalvesOnlyTheLossyPath) {
  auto group = std::make_shared<quic::LiaGroup>();
  auto a = quic::make_lia_controller(group);
  auto b = quic::make_lia_controller(group);
  for (int i = 0; i < 20; ++i)
    a->on_ack(1400, sim::millis(10), sim::millis(60), sim::millis(50));
  const std::size_t b_before = b->cwnd_bytes();
  a->on_loss_event(sim::millis(100), sim::millis(200));
  EXPECT_EQ(b->cwnd_bytes(), b_before);
  EXPECT_LT(a->cwnd_bytes(), 21 * 1400 + 1);
}

TEST(CoupledLia, EndToEndSessionCompletes) {
  test::WirePair::Options o;
  o.client_config = test::multipath_config();
  o.server_config = test::multipath_config();
  o.client_config.scheduler = mpquic::make_min_rtt_scheduler();
  o.server_config.scheduler = mpquic::make_min_rtt_scheduler();
  o.server_config.cc = quic::CcAlgorithm::kCoupledLia;
  test::WirePair pair(std::move(o));
  ASSERT_TRUE(pair.establish());
  pair.run_for(sim::millis(100));
  ASSERT_TRUE(pair.client->open_path().has_value());
  pair.run_for(sim::millis(100));
  const quic::StreamId id = pair.client->open_stream();
  pair.client->stream_send(id, test::bytes_of("r"), true);
  pair.run_for(sim::millis(50));
  pair.server->stream_send(id, test::pattern_bytes(200 * 1024, 4), true);
  for (int i = 0; i < 100; ++i) {
    pair.run_for(sim::millis(50));
    pair.client->consume_stream(id, 1 << 20);
    auto* s = pair.client->recv_stream(id);
    if (s && s->fully_received()) break;
  }
  auto* s = pair.client->recv_stream(id);
  ASSERT_TRUE(s && s->fully_received());
  EXPECT_EQ(pair.server->path_state(0).cc->name(), "lia");
}

// --------------------------------------------------- related-work pickers

TEST(RelatedSchedulers, NamesAndBasicPicks) {
  EXPECT_EQ(mpquic::make_ecf_scheduler()->name(), "ecf");
  EXPECT_EQ(mpquic::make_blest_scheduler()->name(), "blest");
}

struct SchedFixture {
  explicit SchedFixture(std::shared_ptr<quic::Scheduler> sched) {
    test::WirePair::Options o;
    o.client_config = test::multipath_config();
    o.server_config = test::multipath_config();
    o.server_config.scheduler = sched;
    o.client_config.scheduler = mpquic::make_min_rtt_scheduler();
    pair = std::make_unique<test::WirePair>(std::move(o));
    EXPECT_TRUE(pair->establish());
    pair->run_for(sim::millis(100));
    EXPECT_TRUE(pair->client->open_path().has_value());
    pair->run_for(sim::millis(200));
  }
  std::unique_ptr<test::WirePair> pair;
};

TEST(RelatedSchedulers, EcfPrefersFastPathAndCanWait) {
  auto sched = mpquic::make_ecf_scheduler();
  SchedFixture fx(sched);
  auto& server = *fx.pair->server;
  for (int i = 0; i < 20; ++i) {
    server.path_state(0).rtt.on_sample(sim::millis(20), 0);
    server.path_state(1).rtt.on_sample(sim::millis(800), 0);
  }
  // Fast path open: picked.
  quic::SendItem item;
  item.length = 1000;
  server.send_queue().push_back(item);
  EXPECT_EQ(sched->select_path(server), std::optional<quic::PathId>(0));
  // Fast path full, tiny queue: waiting beats the 800ms path.
  auto& p0 = server.path_state(0);
  p0.loss.on_packet_sent(500, 0, p0.cc->cwnd_bytes(), true);
  EXPECT_EQ(sched->select_path(server), std::nullopt);
}

TEST(RelatedSchedulers, EcfUsesSlowPathForLargeBacklog) {
  auto sched = mpquic::make_ecf_scheduler();
  SchedFixture fx(sched);
  auto& server = *fx.pair->server;
  for (int i = 0; i < 20; ++i) {
    server.path_state(0).rtt.on_sample(sim::millis(50), 0);
    server.path_state(1).rtt.on_sample(sim::millis(120), 0);
  }
  auto& p0 = server.path_state(0);
  p0.loss.on_packet_sent(500, 0, p0.cc->cwnd_bytes(), true);
  // Large backlog: the slow path's bandwidth is worth it.
  quic::SendItem item;
  item.length = 4 * 1024 * 1024;
  server.send_queue().push_back(item);
  EXPECT_EQ(sched->select_path(server), std::optional<quic::PathId>(1));
}

TEST(RelatedSchedulers, BlestPicksFastPathWhenOpen) {
  auto sched = mpquic::make_blest_scheduler();
  SchedFixture fx(sched);
  auto& server = *fx.pair->server;
  for (int i = 0; i < 20; ++i) {
    server.path_state(0).rtt.on_sample(sim::millis(20), 0);
    server.path_state(1).rtt.on_sample(sim::millis(100), 0);
  }
  quic::SendItem item;
  item.length = 1000;
  server.send_queue().push_back(item);
  EXPECT_EQ(sched->select_path(server), std::optional<quic::PathId>(0));
}

TEST(RelatedSchedulers, BlestSitsOutWhenBlockingPredicted) {
  auto sched = mpquic::make_blest_scheduler();
  SchedFixture fx(sched);
  auto& server = *fx.pair->server;
  for (int i = 0; i < 20; ++i) {
    server.path_state(0).rtt.on_sample(sim::millis(20), 0);
    server.path_state(1).rtt.on_sample(sim::millis(2000), 0);  // 100x
  }
  auto& p0 = server.path_state(0);
  p0.loss.on_packet_sent(500, 0, p0.cc->cwnd_bytes(), true);
  quic::SendItem item;
  item.length = 1000;
  server.send_queue().push_back(item);
  // rtt ratio 100 -> fast path ships 100 windows meanwhile: blocked.
  EXPECT_EQ(sched->select_path(server), std::nullopt);
}

}  // namespace
}  // namespace xlink
