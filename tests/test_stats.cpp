// Unit tests: summaries, percentiles, tables, CSV output.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "stats/summary.h"
#include "stats/table.h"

namespace xlink::stats {
namespace {

TEST(Summary, EmptyIsSafe) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.fraction_below(1.0), 0.0);
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
}

TEST(Summary, PercentileInterpolates) {
  Summary s;
  for (double v : {10.0, 20.0, 30.0, 40.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 25.0);   // between 20 and 30
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 17.5);
}

TEST(Summary, PercentileClampsInput) {
  Summary s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.percentile(-5), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(200), 2.0);
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(1), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 7.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, FractionBelow) {
  Summary s;
  for (int i = 1; i <= 10; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.fraction_below(5.0), 0.4);   // 1..4
  EXPECT_DOUBLE_EQ(s.fraction_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.fraction_below(100.0), 1.0);
  EXPECT_DOUBLE_EQ(s.fraction_below(1.0), 0.0);  // strictly below
}

TEST(Summary, AddAllAndStaysSortedAfterMutation) {
  Summary s;
  s.add_all({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  s.add(0.0);  // invalidates cached sort
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(Summary, EmptyMaxStddevSumDescribe) {
  Summary s;
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), 0.0);
  EXPECT_NE(s.describe().find("n=0"), std::string::npos);
}

TEST(Summary, SingleSampleOrderStatistics) {
  Summary s;
  s.add(-2.5);
  EXPECT_DOUBLE_EQ(s.min(), -2.5);
  EXPECT_DOUBLE_EQ(s.max(), -2.5);
  EXPECT_DOUBLE_EQ(s.mean(), -2.5);
  EXPECT_DOUBLE_EQ(s.median(), -2.5);
  EXPECT_DOUBLE_EQ(s.percentile(0), -2.5);
  EXPECT_DOUBLE_EQ(s.percentile(100), -2.5);
  EXPECT_DOUBLE_EQ(s.fraction_below(-2.5), 0.0);  // strictly below
  EXPECT_DOUBLE_EQ(s.fraction_below(0.0), 1.0);
}

TEST(Summary, TwoSampleStddev) {
  Summary s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.0), 1e-12);  // Bessel-corrected
}

TEST(Summary, AddAllEmptyVectorIsNoop) {
  Summary s;
  s.add(4.0);
  EXPECT_DOUBLE_EQ(s.median(), 4.0);  // populate the sort cache
  s.add_all({});
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.median(), 4.0);
}

TEST(Summary, SortCacheSurvivesInterleavedReadsAndWrites) {
  Summary s;
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.min(), 9.0);
  s.add_all({1.0, 5.0});
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  s.add(0.5);
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.5);
  EXPECT_DOUBLE_EQ(s.percentile(100), 9.0);
  // Insertion order is preserved even though reads sorted in between.
  EXPECT_EQ(s.samples(), (std::vector<double>{9.0, 1.0, 5.0, 0.5}));
}

TEST(Summary, DescribeMentionsCount) {
  Summary s;
  s.add(1.0);
  EXPECT_NE(s.describe().find("n=1"), std::string::npos);
}

TEST(ImprovementPct, Signs) {
  EXPECT_DOUBLE_EQ(improvement_pct(2.0, 1.0), 50.0);   // halved: 50% better
  EXPECT_DOUBLE_EQ(improvement_pct(2.0, 3.0), -50.0);  // worse
  EXPECT_DOUBLE_EQ(improvement_pct(0.0, 1.0), 0.0);    // guarded
}

TEST(Table, RendersAlignedColumns) {
  Table t({"a", "long_header"});
  t.add_row({"x", "1"});
  t.add_row({"yyyy", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| a    | long_header |"), std::string::npos);
  EXPECT_NE(out.find("| yyyy | 22          |"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| 1 |"), std::string::npos);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
  EXPECT_EQ(Table::fmt(-0.5, 1), "-0.5");
}

TEST(Table, TruncatesOverlongRowsToHeaderCount) {
  Table t({"a", "b"});
  t.add_row({"1", "2", "3", "4"});  // extra cells dropped
  const std::string out = t.render();
  EXPECT_NE(out.find("| 1 | 2 |"), std::string::npos);
  EXPECT_EQ(out.find("3"), std::string::npos);
}

TEST(Table, NoRowsRendersHeaderAndRule) {
  Table t({"only"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| only |"), std::string::npos);
  EXPECT_NE(out.find("|------|"), std::string::npos);
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/xlink_test.csv";
  write_csv(path, {"x", "y"}, {{"1", "2"}, {"3", "4"}});
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3,4");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xlink::stats
