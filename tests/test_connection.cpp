// Integration tests: two Connections over an in-memory wire -- handshake,
// multipath negotiation, path lifecycle, stream transfer, flow control,
// loss recovery, migration, and QoE plumbing.
#include <gtest/gtest.h>

#include "mpquic/schedulers.h"
#include "test_support.h"

namespace xlink::quic {
namespace {

using test::WirePair;

WirePair::Options mp_options() {
  WirePair::Options o;
  o.client_config = test::multipath_config();
  o.server_config = test::multipath_config();
  o.client_config.scheduler = mpquic::make_min_rtt_scheduler();
  o.server_config.scheduler = mpquic::make_min_rtt_scheduler();
  return o;
}

TEST(Connection, HandshakeEstablishesBothSides) {
  WirePair pair(mp_options());
  EXPECT_FALSE(pair.client->is_established());
  ASSERT_TRUE(pair.establish());
  EXPECT_TRUE(pair.client->multipath_enabled());
  EXPECT_TRUE(pair.server->multipath_enabled());
}

TEST(Connection, MultipathFallsBackWhenServerDeclines) {
  WirePair::Options o = mp_options();
  o.server_config.params.enable_multipath = false;
  WirePair pair(std::move(o));
  ASSERT_TRUE(pair.establish());
  EXPECT_FALSE(pair.client->multipath_enabled());
  EXPECT_FALSE(pair.server->multipath_enabled());
  EXPECT_FALSE(pair.client->open_path().has_value());
}

TEST(Connection, OpenPathBeforeEstablishFails) {
  WirePair pair(mp_options());
  EXPECT_FALSE(pair.client->open_path().has_value());
}

TEST(Connection, OpenPathValidatesViaChallenge) {
  WirePair pair(mp_options());
  ASSERT_TRUE(pair.establish());
  pair.run_for(sim::millis(100));  // let NEW_CONNECTION_IDs flow

  bool validated = false;
  pair.client->on_path_validated = [&](PathId id) {
    validated = id == 1;
  };
  const auto id = pair.client->open_path();
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(*id, 1u);
  EXPECT_EQ(pair.client->path_state(1).state,
            PathState::State::kValidating);
  pair.run_for(sim::millis(100));
  EXPECT_TRUE(validated);
  EXPECT_EQ(pair.client->path_state(1).state, PathState::State::kActive);
  EXPECT_TRUE(pair.server->has_path(1));
}

TEST(Connection, StreamTransferClientToServer) {
  WirePair pair(mp_options());
  ASSERT_TRUE(pair.establish());
  const StreamId id = pair.client->open_stream();
  const auto payload = test::pattern_bytes(50000);
  pair.client->stream_send(id, payload, true);
  pair.run_for(sim::seconds(2));
  auto* stream = pair.server->recv_stream(id);
  ASSERT_NE(stream, nullptr);
  ASSERT_TRUE(stream->fully_received());
  EXPECT_EQ(pair.server->consume_stream(id, 100000), payload);
}

TEST(Connection, StreamTransferServerToClient) {
  WirePair pair(mp_options());
  ASSERT_TRUE(pair.establish());
  const StreamId id = pair.client->open_stream();
  pair.client->stream_send(id, test::bytes_of("req"), true);
  pair.run_for(sim::millis(100));
  const auto payload = test::pattern_bytes(80000, 9);
  pair.server->stream_send(id, payload, true);
  pair.run_for(sim::seconds(2));
  auto* stream = pair.client->recv_stream(id);
  ASSERT_NE(stream, nullptr);
  EXPECT_TRUE(stream->fully_received());
  EXPECT_EQ(pair.client->consume_stream(id, 100000), payload);
}

TEST(Connection, LargeTransferExceedsInitialFlowControlWindows) {
  WirePair::Options o = mp_options();
  o.client_config.params.initial_max_data = 64 * 1024;
  o.client_config.params.initial_max_stream_data = 32 * 1024;
  o.server_config.params.initial_max_data = 64 * 1024;
  o.server_config.params.initial_max_stream_data = 32 * 1024;
  WirePair pair(std::move(o));
  ASSERT_TRUE(pair.establish());
  const StreamId id = pair.client->open_stream();
  pair.client->stream_send(id, test::bytes_of("r"), true);
  pair.run_for(sim::millis(100));

  // 256 KB >> the 32 KB stream window: requires MAX_STREAM_DATA updates,
  // which require the receiving app to consume.
  const auto payload = test::pattern_bytes(256 * 1024, 3);
  pair.server->stream_send(id, payload, true);
  std::vector<std::uint8_t> received;
  for (int i = 0; i < 200 && received.size() < payload.size(); ++i) {
    pair.run_for(sim::millis(50));
    auto chunk = pair.client->consume_stream(id, 1 << 20);
    received.insert(received.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(received, payload);
}

TEST(Connection, FlowControlBlocksWithoutConsumption) {
  WirePair::Options o = mp_options();
  o.server_config.params.initial_max_data = 64 * 1024;
  o.server_config.params.initial_max_stream_data = 32 * 1024;
  // (limits the server's grants to the client sender)
  WirePair pair(std::move(o));
  ASSERT_TRUE(pair.establish());
  const StreamId id = pair.client->open_stream();
  pair.client->stream_send(id, test::pattern_bytes(256 * 1024), true);
  pair.run_for(sim::seconds(3));
  auto* stream = pair.server->recv_stream(id);
  ASSERT_NE(stream, nullptr);
  // Nothing consumed: at most the stream window may arrive.
  EXPECT_LE(stream->contiguous_received(), 32 * 1024u + kMaxPacketPayload);
  EXPECT_FALSE(stream->fully_received());
}

TEST(Connection, RecoversFromBurstLoss) {
  WirePair pair(mp_options());
  ASSERT_TRUE(pair.establish());
  // Drop every server->client packet for 200ms in the middle of a
  // transfer.
  bool dropping = false;
  pair.drop_server_to_client = [&dropping](PathId, const net::Datagram&) {
    return dropping;
  };
  const StreamId id = pair.client->open_stream();
  pair.client->stream_send(id, test::bytes_of("r"), true);
  pair.run_for(sim::millis(50));
  pair.server->stream_send(id, test::pattern_bytes(200 * 1024, 5), true);
  pair.run_for(sim::millis(30));
  dropping = true;
  pair.run_for(sim::millis(200));
  dropping = false;
  // Give loss detection and retransmission time to finish the job.
  for (int i = 0; i < 100; ++i) {
    pair.run_for(sim::millis(50));
    pair.client->consume_stream(id, 1 << 20);
    auto* stream = pair.client->recv_stream(id);
    if (stream && stream->fully_received()) break;
  }
  auto* stream = pair.client->recv_stream(id);
  ASSERT_NE(stream, nullptr);
  EXPECT_TRUE(stream->fully_received());
  EXPECT_GT(pair.server->stats().packets_lost +
                pair.server->stats().retransmitted_bytes,
            0u);
}

TEST(Connection, AbandonPathRescuesInFlightData) {
  WirePair pair(mp_options());
  ASSERT_TRUE(pair.establish());
  pair.run_for(sim::millis(100));
  ASSERT_TRUE(pair.client->open_path().has_value());
  pair.run_for(sim::millis(100));
  ASSERT_EQ(pair.client->active_path_ids().size(), 2u);

  // Black-hole path 1 and start a transfer, then abandon path 1.
  bool blackhole = false;
  pair.drop_server_to_client = [&blackhole](PathId path,
                                            const net::Datagram&) {
    return blackhole && path == 1;
  };
  const StreamId id = pair.client->open_stream();
  pair.client->stream_send(id, test::bytes_of("r"), true);
  pair.run_for(sim::millis(50));
  blackhole = true;
  pair.server->stream_send(id, test::pattern_bytes(300 * 1024, 7), true);
  pair.run_for(sim::millis(120));
  pair.server->abandon_path(1);
  for (int i = 0; i < 100; ++i) {
    pair.run_for(sim::millis(50));
    pair.client->consume_stream(id, 1 << 20);
    auto* stream = pair.client->recv_stream(id);
    if (stream && stream->fully_received()) break;
  }
  auto* stream = pair.client->recv_stream(id);
  ASSERT_NE(stream, nullptr);
  EXPECT_TRUE(stream->fully_received());
}

TEST(Connection, MigrationMovesTrafficAndResetsCwnd) {
  WirePair::Options o;  // single-path configs (CM is base QUIC)
  WirePair pair(std::move(o));
  ASSERT_TRUE(pair.establish());
  pair.run_for(sim::millis(100));  // NCIDs

  const StreamId id = pair.client->open_stream();
  pair.client->stream_send(id, test::bytes_of("r"), true);
  pair.run_for(sim::millis(50));
  pair.server->stream_send(id, test::pattern_bytes(100 * 1024, 2), true);
  pair.run_for(sim::millis(60));

  pair.client->migrate_to_path(1);
  pair.run_for(sim::millis(30));
  EXPECT_EQ(pair.client->path_state(0).state, PathState::State::kAbandoned);
  EXPECT_TRUE(pair.client->has_path(1));

  for (int i = 0; i < 100; ++i) {
    pair.run_for(sim::millis(50));
    pair.client->consume_stream(id, 1 << 20);
    auto* stream = pair.client->recv_stream(id);
    if (stream && stream->fully_received()) break;
  }
  auto* stream = pair.client->recv_stream(id);
  ASSERT_TRUE(stream && stream->fully_received());
  // Server learned about the abandon and stopped using path 0.
  EXPECT_EQ(pair.server->path_state(0).state, PathState::State::kAbandoned);
}

TEST(Connection, QoeSignalsReachServerViaAcks) {
  WirePair::Options o = mp_options();
  WirePair pair(std::move(o));
  QoeSignal signal{123456, 60, 2'000'000, 30};
  pair.client->set_qoe_provider([&]() { return signal; });
  std::optional<QoeSignal> seen;
  pair.server->on_qoe_feedback = [&](const QoeSignal& q) { seen = q; };
  ASSERT_TRUE(pair.establish());
  const StreamId id = pair.client->open_stream();
  pair.client->stream_send(id, test::bytes_of("r"), true);
  pair.run_for(sim::millis(100));
  pair.server->stream_send(id, test::pattern_bytes(50 * 1024), true);
  pair.run_for(sim::seconds(1));
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(*seen, signal);
  EXPECT_EQ(pair.server->latest_peer_qoe(), signal);
}

TEST(Connection, StandaloneQoeControlSignalsFrame) {
  WirePair pair(mp_options());
  ASSERT_TRUE(pair.establish());
  std::optional<QoeSignal> seen;
  pair.server->on_qoe_feedback = [&](const QoeSignal& q) { seen = q; };
  pair.client->send_qoe_signal(QoeSignal{1, 2, 3, 4});
  pair.run_for(sim::millis(100));
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(*seen, (QoeSignal{1, 2, 3, 4}));
}

TEST(Connection, TamperedDatagramsCountAuthFailures) {
  WirePair pair(mp_options());
  ASSERT_TRUE(pair.establish());
  // Deliver a corrupted datagram directly.
  net::Datagram garbage{0x40, 1, 2, 3, 4, 5, 6, 7, 8, 0, 0, 0, 0, 1, 9, 9,
                        9, 9, 9, 9, 9, 9, 9};
  const auto before = pair.server->stats().auth_failures;
  pair.server->on_datagram(0, std::move(garbage));
  EXPECT_EQ(pair.server->stats().auth_failures, before + 1);
}

TEST(Connection, MismatchedKeysNeverEstablish) {
  WirePair::Options o;
  o.client_config.aead_key = 1;
  o.server_config.aead_key = 2;
  WirePair pair(std::move(o));
  EXPECT_FALSE(pair.establish(sim::millis(500)));
  EXPECT_GT(pair.server->stats().auth_failures, 0u);
}

TEST(Connection, CloseStopsTraffic) {
  WirePair pair(mp_options());
  ASSERT_TRUE(pair.establish());
  pair.client->close(0, "done");
  pair.run_for(sim::millis(100));
  EXPECT_TRUE(pair.client->is_closed());
  EXPECT_TRUE(pair.server->is_closed());
  // Writes after close are ignored.
  const StreamId id = pair.client->open_stream();
  pair.client->stream_send(id, test::pattern_bytes(1000), true);
  const auto sent_before = pair.packets_c2s;
  pair.run_for(sim::millis(200));
  EXPECT_EQ(pair.packets_c2s, sent_before);
}

TEST(Connection, PathStatusStandbyHonoured) {
  WirePair pair(mp_options());
  ASSERT_TRUE(pair.establish());
  pair.run_for(sim::millis(100));
  ASSERT_TRUE(pair.client->open_path().has_value());
  pair.run_for(sim::millis(100));
  pair.client->set_path_status(1, PathStatusKind::kStandby);
  pair.run_for(sim::millis(100));
  EXPECT_EQ(pair.server->path_state(1).state, PathState::State::kStandby);
  // Standby paths are excluded from active scheduling.
  EXPECT_EQ(pair.server->active_path_ids(),
            (std::vector<PathId>{0}));
}

TEST(Connection, StatsTrackRedundancy) {
  WirePair pair(mp_options());
  ASSERT_TRUE(pair.establish());
  Connection::Stats stats = pair.server->stats();
  stats.stream_bytes_sent = 1000;
  stats.reinjected_bytes = 150;
  EXPECT_DOUBLE_EQ(stats.redundancy_ratio(), 0.15);
}

}  // namespace
}  // namespace xlink::quic
