// Edge-case tests for the connection: reordering, duplication, packet
// number space independence, ack-range bookkeeping under gaps.
#include <gtest/gtest.h>

#include <deque>

#include "mpquic/schedulers.h"
#include "test_support.h"

namespace xlink::quic {
namespace {

using test::WirePair;

WirePair::Options mp_options() {
  WirePair::Options o;
  o.client_config = test::multipath_config();
  o.server_config = test::multipath_config();
  o.client_config.scheduler = mpquic::make_min_rtt_scheduler();
  o.server_config.scheduler = mpquic::make_min_rtt_scheduler();
  return o;
}

TEST(ConnectionEdge, SurvivesHeavyReordering) {
  // Hold every 3rd server->client datagram and deliver it 80ms late.
  WirePair pair(mp_options());
  int counter = 0;
  pair.drop_server_to_client = [&](PathId path, const net::Datagram& d) {
    if (++counter % 3 == 0) {
      pair.loop.schedule_in(sim::millis(80),
                            [&pair, path, d = d.clone()]() mutable {
                              pair.client->on_datagram(path, std::move(d));
                            });
      return true;  // drop the immediate delivery; the late copy arrives
    }
    return false;
  };
  ASSERT_TRUE(pair.establish());
  const StreamId id = pair.client->open_stream();
  pair.client->stream_send(id, test::bytes_of("r"), true);
  pair.run_for(sim::millis(100));
  const auto payload = test::pattern_bytes(150 * 1024, 6);
  pair.server->stream_send(id, payload, true);
  std::vector<std::uint8_t> got;
  for (int i = 0; i < 200 && got.size() < payload.size(); ++i) {
    pair.run_for(sim::millis(50));
    auto chunk = pair.client->consume_stream(id, 1 << 20);
    got.insert(got.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(got, payload);
}

TEST(ConnectionEdge, DuplicateDatagramsAreIdempotent) {
  WirePair pair(mp_options());
  // Deliver every server->client datagram twice.
  pair.drop_server_to_client = [&](PathId path, const net::Datagram& d) {
    pair.loop.schedule_in(sim::millis(5),
                          [&pair, path, d = d.clone()]() mutable {
                            pair.client->on_datagram(path, std::move(d));
                          });
    return false;
  };
  ASSERT_TRUE(pair.establish());
  const StreamId id = pair.client->open_stream();
  pair.client->stream_send(id, test::bytes_of("r"), true);
  pair.run_for(sim::millis(100));
  const auto payload = test::pattern_bytes(60 * 1024, 8);
  pair.server->stream_send(id, payload, true);
  pair.run_for(sim::seconds(2));
  auto* stream = pair.client->recv_stream(id);
  ASSERT_TRUE(stream && stream->fully_received());
  EXPECT_EQ(pair.client->consume_stream(id, 1 << 20), payload);
  // Duplicates must not inflate stream content or crash loss accounting.
  EXPECT_EQ(*stream->final_size(), payload.size());
}

TEST(ConnectionEdge, PacketNumberSpacesArePerPath) {
  WirePair pair(mp_options());
  ASSERT_TRUE(pair.establish());
  pair.run_for(sim::millis(100));
  ASSERT_TRUE(pair.client->open_path().has_value());
  pair.run_for(sim::millis(200));
  // Drive traffic over both paths.
  const StreamId id = pair.client->open_stream();
  pair.client->stream_send(id, test::bytes_of("r"), true);
  pair.run_for(sim::millis(50));
  pair.server->stream_send(id, test::pattern_bytes(400 * 1024, 9), true);
  for (int i = 0; i < 60; ++i) {
    pair.run_for(sim::millis(50));
    pair.client->consume_stream(id, 1 << 20);
  }
  const auto& p0 = pair.server->path_state(0);
  const auto& p1 = pair.server->path_state(1);
  // Both spaces start at 0 independently: packet counts per path overlap
  // in numbering, which only works with separate spaces + per-path nonces.
  EXPECT_GT(p0.packets_sent, 10u);
  EXPECT_GT(p1.packets_sent, 10u);
  EXPECT_GT(p0.next_pn, 0u);
  EXPECT_GT(p1.next_pn, 0u);
  EXPECT_EQ(pair.client->stats().auth_failures, 0u);
}

TEST(ConnectionEdge, AckRangesStayBoundedUnderSparseLoss) {
  // Drop 30% of data packets: the client's ack-range list must not grow
  // without bound (capped at 32 ranges).
  WirePair pair(mp_options());
  ASSERT_TRUE(pair.establish());
  int n = 0;
  pair.drop_server_to_client = [&n](PathId, const net::Datagram&) {
    return (++n % 10) < 3;
  };
  const StreamId id = pair.client->open_stream();
  pair.client->stream_send(id, test::bytes_of("r"), true);
  pair.run_for(sim::millis(100));
  pair.server->stream_send(id, test::pattern_bytes(300 * 1024, 3), true);
  for (int i = 0; i < 100; ++i) {
    pair.run_for(sim::millis(50));
    pair.client->consume_stream(id, 1 << 20);
    auto* s = pair.client->recv_stream(id);
    if (s && s->fully_received()) break;
  }
  auto* s = pair.client->recv_stream(id);
  ASSERT_TRUE(s && s->fully_received());
  EXPECT_LE(pair.client->path_state(0).recv_ranges.size(), 32u);
}

TEST(ConnectionEdge, ZeroLengthStreamWithFin) {
  WirePair pair(mp_options());
  ASSERT_TRUE(pair.establish());
  const StreamId id = pair.client->open_stream();
  pair.client->stream_send(id, {}, true);  // empty request body
  pair.run_for(sim::millis(200));
  auto* stream = pair.server->recv_stream(id);
  ASSERT_NE(stream, nullptr);
  ASSERT_TRUE(stream->final_size().has_value());
  EXPECT_EQ(*stream->final_size(), 0u);
}

TEST(ConnectionEdge, ManyConcurrentStreams) {
  WirePair pair(mp_options());
  ASSERT_TRUE(pair.establish());
  constexpr int kStreams = 24;
  std::vector<StreamId> ids;
  for (int i = 0; i < kStreams; ++i) {
    const StreamId id = pair.client->open_stream();
    ids.push_back(id);
    pair.client->stream_send(id, test::pattern_bytes(4000, static_cast<std::uint8_t>(i)), true);
  }
  pair.run_for(sim::seconds(2));
  for (int i = 0; i < kStreams; ++i) {
    auto* stream = pair.server->recv_stream(ids[static_cast<size_t>(i)]);
    ASSERT_NE(stream, nullptr) << "stream " << i;
    EXPECT_TRUE(stream->fully_received()) << "stream " << i;
    EXPECT_EQ(pair.server->consume_stream(ids[static_cast<size_t>(i)], 1 << 20),
              test::pattern_bytes(4000, static_cast<std::uint8_t>(i)));
  }
}

TEST(ConnectionEdge, StreamIdsAdvanceByFour) {
  WirePair pair(mp_options());
  EXPECT_EQ(pair.client->open_stream(), 0u);
  EXPECT_EQ(pair.client->open_stream(), 4u);
  EXPECT_EQ(pair.client->open_stream(), 8u);
}

TEST(ConnectionEdge, LatePathOpenAfterTraffic) {
  // Opening the second path mid-transfer must not corrupt the stream.
  WirePair pair(mp_options());
  ASSERT_TRUE(pair.establish());
  const StreamId id = pair.client->open_stream();
  pair.client->stream_send(id, test::bytes_of("r"), true);
  pair.run_for(sim::millis(50));
  const auto payload = test::pattern_bytes(500 * 1024, 5);
  pair.server->stream_send(id, payload, true);
  pair.run_for(sim::millis(120));  // some data flows on path 0 only
  ASSERT_TRUE(pair.client->open_path().has_value());
  std::vector<std::uint8_t> got;
  for (int i = 0; i < 200 && got.size() < payload.size(); ++i) {
    pair.run_for(sim::millis(50));
    auto chunk = pair.client->consume_stream(id, 1 << 20);
    got.insert(got.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(got.size(), payload.size());
  EXPECT_EQ(got, payload);
}

}  // namespace
}  // namespace xlink::quic
