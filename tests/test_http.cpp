// Tests: HTTP range protocol, media server and media client over a real
// connection pair.
#include <gtest/gtest.h>

#include "http/media_client.h"
#include "http/media_server.h"
#include "http/range_protocol.h"
#include "mpquic/schedulers.h"
#include "test_support.h"

namespace xlink::http {
namespace {

TEST(RangeProtocol, Roundtrip) {
  RangeRequest req{"video-7", 1024, 4096};
  const auto parsed = parse_request(encode_request(req));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, req);
}

TEST(RangeProtocol, NeedsFullLine) {
  RangeRequest req{"v", 0, 10};
  auto bytes = encode_request(req);
  bytes.pop_back();  // drop the newline
  EXPECT_FALSE(parse_request(bytes).has_value());
}

TEST(RangeProtocol, RejectsMalformed) {
  EXPECT_FALSE(parse_request(test::bytes_of("POST v 0 10\n")).has_value());
  EXPECT_FALSE(parse_request(test::bytes_of("GET v 0\n")).has_value());
  EXPECT_FALSE(parse_request(test::bytes_of("GET v x 10\n")).has_value());
  EXPECT_FALSE(parse_request(test::bytes_of("GET v 10 5\n")).has_value());
  EXPECT_FALSE(parse_request(test::bytes_of("GET a b 0 10 extra\n")).has_value());
}

struct MediaFixture {
  MediaFixture() {
    test::WirePair::Options o;
    o.client_config = test::multipath_config();
    o.server_config = test::multipath_config();
    o.client_config.scheduler = mpquic::make_min_rtt_scheduler();
    o.server_config.scheduler = mpquic::make_min_rtt_scheduler();
    pair = std::make_unique<test::WirePair>(std::move(o));

    video::VideoSpec spec;
    spec.duration = sim::seconds(3);
    spec.bitrate_bps = 1'500'000;
    spec.seed = 11;
    model = std::make_shared<video::VideoModel>(spec);
  }

  std::unique_ptr<test::WirePair> pair;
  std::shared_ptr<video::VideoModel> model;
};

TEST(MediaServer, ServesRangeWithCorrectBytes) {
  MediaFixture fx;
  MediaServer server(*fx.pair->server, {});
  server.add_video("v", fx.model);
  ASSERT_TRUE(fx.pair->establish());

  const quic::StreamId id = fx.pair->client->open_stream();
  fx.pair->client->stream_send(id, encode_request({"v", 100, 5000}), true);
  fx.pair->run_for(sim::seconds(1));

  auto* stream = fx.pair->client->recv_stream(id);
  ASSERT_NE(stream, nullptr);
  ASSERT_TRUE(stream->fully_received());
  const auto body = fx.pair->client->consume_stream(id, 1 << 20);
  ASSERT_EQ(body.size(), 4900u);
  for (std::size_t i = 0; i < body.size(); ++i)
    ASSERT_EQ(body[i], fx.model->byte_at(100 + i)) << "mismatch at " << i;
  EXPECT_EQ(server.requests_served(), 1u);
  EXPECT_EQ(server.bytes_served(), 4900u);
}

TEST(MediaServer, UnknownResourceGetsEmptyBody) {
  MediaFixture fx;
  MediaServer server(*fx.pair->server, {});
  ASSERT_TRUE(fx.pair->establish());
  const quic::StreamId id = fx.pair->client->open_stream();
  fx.pair->client->stream_send(id, encode_request({"nope", 0, 100}), true);
  fx.pair->run_for(sim::seconds(1));
  auto* stream = fx.pair->client->recv_stream(id);
  ASSERT_NE(stream, nullptr);
  ASSERT_TRUE(stream->final_size().has_value());
  EXPECT_EQ(*stream->final_size(), 0u);
}

TEST(MediaServer, RangeClampsToVideoEnd) {
  MediaFixture fx;
  MediaServer server(*fx.pair->server, {});
  server.add_video("v", fx.model);
  ASSERT_TRUE(fx.pair->establish());
  const std::uint64_t total = fx.model->total_bytes();
  const quic::StreamId id = fx.pair->client->open_stream();
  fx.pair->client->stream_send(
      id, encode_request({"v", total - 100, total + 5000}), true);
  fx.pair->run_for(sim::seconds(1));
  auto* stream = fx.pair->client->recv_stream(id);
  ASSERT_TRUE(stream && stream->final_size().has_value());
  EXPECT_EQ(*stream->final_size(), 100u);
}

TEST(MediaServer, FirstFramePriorityMarksSendStream) {
  MediaFixture fx;
  MediaServer::Config cfg;
  cfg.first_frame_acceleration = true;
  cfg.first_frame_priority = 3;
  MediaServer server(*fx.pair->server, cfg);
  server.add_video("v", fx.model);
  ASSERT_TRUE(fx.pair->establish());
  const quic::StreamId id = fx.pair->client->open_stream();
  fx.pair->client->stream_send(
      id, encode_request({"v", 0, fx.model->total_bytes()}), true);
  fx.pair->run_for(sim::millis(50));
  auto* send = fx.pair->server->send_stream(id);
  ASSERT_NE(send, nullptr);
  EXPECT_EQ(send->frame_priority_at(0), 3);
  EXPECT_EQ(send->frame_priority_at(fx.model->first_frame_bytes() - 1), 3);
  EXPECT_EQ(send->frame_priority_at(fx.model->first_frame_bytes()), 0);
}

TEST(MediaClient, DownloadsWholeVideoInChunks) {
  MediaFixture fx;
  MediaServer server(*fx.pair->server, {});
  server.add_video("video", fx.model);
  MediaClient::Config ccfg;
  ccfg.chunk_bytes = 64 * 1024;
  ccfg.max_concurrent = 2;
  ccfg.verify_content = true;
  MediaClient client(*fx.pair->client, *fx.model, ccfg);

  bool done = false;
  client.on_all_done = [&] { done = true; };
  ASSERT_TRUE(fx.pair->establish());
  client.start();
  for (int i = 0; i < 400 && !done; ++i) fx.pair->run_for(sim::millis(50));
  ASSERT_TRUE(done);
  EXPECT_TRUE(client.all_done());
  EXPECT_EQ(client.contiguous_bytes(), fx.model->total_bytes());
  EXPECT_EQ(client.content_mismatches(), 0u);
  const auto rcts = client.completion_times_seconds();
  EXPECT_EQ(rcts.size(), client.chunk_metrics().size());
  for (double t : rcts) EXPECT_GT(t, 0.0);
}

TEST(MediaClient, RespectsConcurrencyLimit) {
  MediaFixture fx;
  MediaServer server(*fx.pair->server, {});
  server.add_video("video", fx.model);
  MediaClient::Config ccfg;
  ccfg.chunk_bytes = 32 * 1024;
  ccfg.max_concurrent = 2;
  MediaClient client(*fx.pair->client, *fx.model, ccfg);
  ASSERT_TRUE(fx.pair->establish());
  client.start();
  fx.pair->run_for(sim::millis(1));
  // Only the first two chunk requests may be outstanding.
  std::size_t issued = 0;
  for (const auto& m : client.chunk_metrics())
    if (!m.completed_at) ++issued;
  EXPECT_LE(issued, 2u);
}

TEST(MediaClient, FeedsPlayerContiguousProgress) {
  MediaFixture fx;
  MediaServer server(*fx.pair->server, {});
  server.add_video("video", fx.model);
  MediaClient::Config ccfg;
  ccfg.chunk_bytes = 64 * 1024;
  MediaClient client(*fx.pair->client, *fx.model, ccfg);
  video::VideoPlayer player(fx.pair->loop, *fx.model);
  client.set_player(&player);
  ASSERT_TRUE(fx.pair->establish());
  client.start();
  for (int i = 0; i < 600 && !player.finished(); ++i)
    fx.pair->run_for(sim::millis(50));
  EXPECT_TRUE(player.finished());
  EXPECT_TRUE(player.first_frame_latency().has_value());
}

}  // namespace
}  // namespace xlink::http
