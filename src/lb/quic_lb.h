// QUIC-LB style connection-ID routing (paper §6).
//
// The deployed system sits behind L4 load balancers and multi-process CDN
// servers. Two layers of routing keep every path of a connection on the
// same process:
//  - the load balancer applies the QUIC-LB draft's "plaintext CID"
//    algorithm: a server id is encoded at a fixed offset of every CID the
//    server issues, so any packet carrying any of that server's CIDs routes
//    back to it;
//  - CIDs without a decodable server id (e.g. the client's initial random
//    DCID) fall back to consistent hashing, so first flights distribute
//    evenly and stay sticky.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "quic/types.h"

namespace xlink::lb {

/// Offset of the encoded server id inside an 8-byte CID. Byte 0 is kept
/// for entropy so CIDs do not become trivially linkable; the draft calls
/// this the "first octet" config parameter.
constexpr std::size_t kServerIdOffset = quic::kCidServerIdOffset;

/// Writes `server_id` into a CID (the issuing server does this).
void encode_server_id(std::array<std::uint8_t, 8>& cid,
                      std::uint8_t server_id);

/// Reads the encoded server id back out.
std::uint8_t decode_server_id(std::span<const std::uint8_t, 8> cid);

/// A consistent-hash ring of server ids with virtual nodes, used for CIDs
/// that carry no routable server id.
class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(int virtual_nodes = 64)
      : virtual_nodes_(virtual_nodes) {}

  void add_server(std::uint8_t server_id);
  void remove_server(std::uint8_t server_id);
  std::size_t server_count() const { return servers_.size(); }

  /// Maps arbitrary CID bytes onto a server; nullopt if the ring is empty.
  std::optional<std::uint8_t> route(
      std::span<const std::uint8_t> cid) const;

 private:
  int virtual_nodes_;
  std::map<std::uint64_t, std::uint8_t> ring_;  // point -> server id
  std::vector<std::uint8_t> servers_;
};

/// The load balancer: routes datagrams to server processes by DCID.
class QuicLbRouter {
 public:
  explicit QuicLbRouter(std::vector<std::uint8_t> server_ids);

  /// Routing decision for one datagram (wire bytes). Prefers the encoded
  /// server id when it names a live server; falls back to the hash ring.
  /// nullopt for datagrams too short to carry a CID or an empty pool.
  std::optional<std::uint8_t> route_datagram(
      std::span<const std::uint8_t> datagram) const;

  /// Routing decision for a bare CID.
  std::optional<std::uint8_t> route_cid(
      std::span<const std::uint8_t, 8> cid) const;

  void add_server(std::uint8_t server_id);
  void remove_server(std::uint8_t server_id);
  bool has_server(std::uint8_t server_id) const;

 private:
  std::vector<std::uint8_t> servers_;
  ConsistentHashRing ring_;
};

}  // namespace xlink::lb
