#include "lb/quic_lb.h"

#include <algorithm>

#include "quic/packet.h"

namespace xlink::lb {
namespace {

std::uint64_t hash_bytes(std::span<const std::uint8_t> data,
                         std::uint64_t seed) {
  // FNV-1a folded through a splitmix finalizer.
  std::uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

}  // namespace

void encode_server_id(std::array<std::uint8_t, 8>& cid,
                      std::uint8_t server_id) {
  cid[kServerIdOffset] = server_id;
}

std::uint8_t decode_server_id(std::span<const std::uint8_t, 8> cid) {
  return cid[kServerIdOffset];
}

void ConsistentHashRing::add_server(std::uint8_t server_id) {
  if (std::find(servers_.begin(), servers_.end(), server_id) !=
      servers_.end())
    return;
  servers_.push_back(server_id);
  for (int v = 0; v < virtual_nodes_; ++v) {
    const std::uint8_t key[2] = {server_id, static_cast<std::uint8_t>(v)};
    ring_.emplace(hash_bytes(key, 0x5b), server_id);
  }
}

void ConsistentHashRing::remove_server(std::uint8_t server_id) {
  servers_.erase(std::remove(servers_.begin(), servers_.end(), server_id),
                 servers_.end());
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == server_id)
      it = ring_.erase(it);
    else
      ++it;
  }
}

std::optional<std::uint8_t> ConsistentHashRing::route(
    std::span<const std::uint8_t> cid) const {
  if (ring_.empty()) return std::nullopt;
  const std::uint64_t point = hash_bytes(cid, 0);
  auto it = ring_.lower_bound(point);
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

QuicLbRouter::QuicLbRouter(std::vector<std::uint8_t> server_ids)
    : servers_(std::move(server_ids)) {
  for (std::uint8_t id : servers_) ring_.add_server(id);
}

bool QuicLbRouter::has_server(std::uint8_t server_id) const {
  return std::find(servers_.begin(), servers_.end(), server_id) !=
         servers_.end();
}

void QuicLbRouter::add_server(std::uint8_t server_id) {
  if (has_server(server_id)) return;
  servers_.push_back(server_id);
  ring_.add_server(server_id);
}

void QuicLbRouter::remove_server(std::uint8_t server_id) {
  servers_.erase(std::remove(servers_.begin(), servers_.end(), server_id),
                 servers_.end());
  ring_.remove_server(server_id);
}

std::optional<std::uint8_t> QuicLbRouter::route_cid(
    std::span<const std::uint8_t, 8> cid) const {
  const std::uint8_t encoded = decode_server_id(cid);
  if (has_server(encoded)) return encoded;
  return ring_.route(cid);
}

std::optional<std::uint8_t> QuicLbRouter::route_datagram(
    std::span<const std::uint8_t> datagram) const {
  const auto pkt = quic::parse_packet(datagram);
  if (!pkt) return std::nullopt;
  return route_cid(std::span<const std::uint8_t, 8>(pkt->header.dcid));
}

}  // namespace xlink::lb
