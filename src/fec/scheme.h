#pragma once

// Erasure-code schemes behind a common interface.
//
// A *window* is k equal-length source symbols plus r repair symbols. Both
// schemes are systematic: source symbols travel untouched, repair symbols
// are linear combinations over GF(2^8).
//
//   XorParity    r == 1 only; the repair symbol is the XOR of all sources.
//                One lookup-free pass; recovers any single erasure.
//   ReedSolomon  Cauchy-matrix RS: coefficient(j, i) = 1 / ((k + j) XOR i),
//                so the stacked [I; C] generator is MDS -- ANY r erasures
//                are recoverable from any k of the k+r symbols.
//
// Encode and decode write into caller-provided storage and use only
// fixed-size stack scratch: no heap allocations on the warm path (PR 5
// discipline). Repair buffers passed to recover() are clobbered.

#include <cstddef>
#include <cstdint>
#include <span>

namespace xlink::fec {

/// Hard caps keeping decode scratch on the stack. k + r must stay <= 256
/// for the Cauchy construction; these are far below that.
inline constexpr std::size_t kMaxSources = 32;
inline constexpr std::size_t kMaxRepairs = 16;

/// One source slot handed to recover(). Present symbols carry their data;
/// missing ones carry a writable, correctly-sized buffer that decode fills.
struct SourceSymbol {
  std::span<std::uint8_t> data;
  bool present = false;
};

/// One received repair symbol. `index` is the repair row in [0, r).
/// The data span is mutated during elimination.
struct RepairSymbol {
  std::span<std::uint8_t> data;
  std::uint32_t index = 0;
};

class FecScheme {
 public:
  virtual ~FecScheme() = default;

  /// Max repair symbols this scheme supports for a window of k sources.
  virtual std::size_t max_repairs(std::size_t k) const = 0;

  /// Compute `repairs.size()` repair symbols over the k = `sources.size()`
  /// source symbols. Every repair span must be at least as long as the
  /// longest source span; repairs are zero-filled first, then accumulated.
  virtual void encode(std::span<const std::span<const std::uint8_t>> sources,
                      std::span<const std::span<std::uint8_t>> repairs) const = 0;

  /// Reconstruct the missing entries of `sources` from the available
  /// repairs. Returns true if every missing symbol was recovered (requires
  /// #missing <= repairs.size()). Repair payloads are clobbered.
  virtual bool recover(std::span<SourceSymbol> sources,
                       std::span<RepairSymbol> repairs) const = 0;

  virtual const char* name() const = 0;
};

/// Single-parity XOR: r == 1, recovers exactly one erasure.
class XorParity final : public FecScheme {
 public:
  std::size_t max_repairs(std::size_t) const override { return 1; }
  void encode(std::span<const std::span<const std::uint8_t>> sources,
              std::span<const std::span<std::uint8_t>> repairs) const override;
  bool recover(std::span<SourceSymbol> sources,
               std::span<RepairSymbol> repairs) const override;
  const char* name() const override { return "xor"; }
};

/// Systematic Cauchy Reed-Solomon over GF(2^8).
class ReedSolomon final : public FecScheme {
 public:
  /// Generator coefficient applied to source i when forming repair j of a
  /// k-source window. Exposed for the property tests.
  static std::uint8_t coefficient(std::size_t k, std::uint32_t repair_index,
                                  std::size_t source_index);

  std::size_t max_repairs(std::size_t k) const override {
    return k < 256 - kMaxRepairs ? kMaxRepairs : 0;
  }
  void encode(std::span<const std::span<const std::uint8_t>> sources,
              std::span<const std::span<std::uint8_t>> repairs) const override;
  bool recover(std::span<SourceSymbol> sources,
               std::span<RepairSymbol> repairs) const override;
  const char* name() const override { return "rs"; }
};

}  // namespace xlink::fec
