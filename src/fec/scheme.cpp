#include "fec/scheme.h"

#include "fec/gf256.h"

namespace xlink::fec {

namespace {

void zero_fill(std::span<std::uint8_t> s) {
  for (auto& b : s) b = 0;
}

}  // namespace

// ---------------------------------------------------------------- XorParity

void XorParity::encode(std::span<const std::span<const std::uint8_t>> sources,
                       std::span<const std::span<std::uint8_t>> repairs) const {
  if (repairs.empty()) return;
  zero_fill(repairs[0]);
  for (const auto& src : sources) gf_addmul(repairs[0], src, 1);
}

bool XorParity::recover(std::span<SourceSymbol> sources,
                        std::span<RepairSymbol> repairs) const {
  SourceSymbol* missing = nullptr;
  for (auto& s : sources) {
    if (s.present) continue;
    if (missing) return false;  // XOR parity recovers at most one erasure
    missing = &s;
  }
  if (!missing) return true;
  if (repairs.empty()) return false;
  zero_fill(missing->data);
  gf_addmul(missing->data, repairs[0].data, 1);
  for (const auto& s : sources) {
    if (s.present) gf_addmul(missing->data, s.data, 1);
  }
  missing->present = true;
  return true;
}

// -------------------------------------------------------------- ReedSolomon

std::uint8_t ReedSolomon::coefficient(std::size_t k, std::uint32_t repair_index,
                                      std::size_t source_index) {
  // Cauchy element 1 / (x_j XOR y_i) with x_j = k + j >= k > i = y_i, so
  // the arguments are always distinct and the inverse exists.
  const std::uint8_t x = static_cast<std::uint8_t>(k + repair_index);
  const std::uint8_t y = static_cast<std::uint8_t>(source_index);
  return gf_inv(static_cast<std::uint8_t>(x ^ y));
}

void ReedSolomon::encode(std::span<const std::span<const std::uint8_t>> sources,
                         std::span<const std::span<std::uint8_t>> repairs) const {
  const std::size_t k = sources.size();
  for (std::size_t j = 0; j < repairs.size(); ++j) {
    zero_fill(repairs[j]);
    for (std::size_t i = 0; i < k; ++i) {
      gf_addmul(repairs[j], sources[i],
                coefficient(k, static_cast<std::uint32_t>(j), i));
    }
  }
}

bool ReedSolomon::recover(std::span<SourceSymbol> sources,
                          std::span<RepairSymbol> repairs) const {
  const std::size_t k = sources.size();
  if (k > kMaxSources) return false;

  std::size_t missing_idx[kMaxSources];
  std::size_t m = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (!sources[i].present) {
      if (m == kMaxSources) return false;
      missing_idx[m++] = i;
    }
  }
  if (m == 0) return true;
  if (m > repairs.size() || m > kMaxRepairs) return false;

  // Subtract the contribution of every present source from each repair,
  // leaving repair_row = sum over MISSING sources only. Then solve the
  // m x m system A * missing = repairs by Gaussian elimination, with the
  // byte matrix on the stack and the symbol rows eliminated in place.
  std::uint8_t a[kMaxRepairs][kMaxRepairs];
  for (std::size_t row = 0; row < m; ++row) {
    RepairSymbol& rep = repairs[row];
    for (std::size_t i = 0; i < k; ++i) {
      if (sources[i].present) {
        gf_addmul(rep.data, sources[i].data, coefficient(k, rep.index, i));
      }
    }
    for (std::size_t col = 0; col < m; ++col) {
      a[row][col] = coefficient(k, rep.index, missing_idx[col]);
    }
  }

  // Forward elimination with partial pivoting (any non-zero pivot works in
  // a finite field; searching keeps the loop robust to row order).
  for (std::size_t col = 0; col < m; ++col) {
    std::size_t pivot = col;
    while (pivot < m && a[pivot][col] == 0) ++pivot;
    if (pivot == m) return false;  // singular: duplicate repair indices
    if (pivot != col) {
      for (std::size_t c = 0; c < m; ++c) {
        const std::uint8_t tmp = a[col][c];
        a[col][c] = a[pivot][c];
        a[pivot][c] = tmp;
      }
      const RepairSymbol tmp = repairs[col];
      repairs[col] = repairs[pivot];
      repairs[pivot] = tmp;
    }
    const std::uint8_t inv = gf_inv(a[col][col]);
    for (std::size_t c = col; c < m; ++c) a[col][c] = gf_mul(a[col][c], inv);
    gf_scale(repairs[col].data, inv);
    for (std::size_t row = 0; row < m; ++row) {
      if (row == col || a[row][col] == 0) continue;
      const std::uint8_t factor = a[row][col];
      for (std::size_t c = col; c < m; ++c) {
        a[row][c] = static_cast<std::uint8_t>(a[row][c] ^
                                              gf_mul(factor, a[col][c]));
      }
      gf_addmul(repairs[row].data, repairs[col].data, factor);
    }
  }

  for (std::size_t row = 0; row < m; ++row) {
    SourceSymbol& dst = sources[missing_idx[row]];
    zero_fill(dst.data);
    gf_addmul(dst.data, repairs[row].data, 1);
    dst.present = true;
  }
  return true;
}

}  // namespace xlink::fec
