#pragma once

// GF(2^8) arithmetic for the FEC subsystem.
//
// The field is GF(2^8) with the AES/Rijndael reduction polynomial
// x^8 + x^4 + x^3 + x + 1 (0x11b). Multiplication and division go through
// log/exp tables built once at static-init time from the generator 0x03,
// so every operation is a couple of table lookups -- no branches beyond
// the zero checks, no allocations, fully deterministic.

#include <cstddef>
#include <cstdint>
#include <span>

namespace xlink::fec {

namespace detail {

struct Gf256Tables {
  std::uint8_t exp[512];  // exp[i] = g^i, doubled so mul needs no mod 255
  std::uint8_t log[256];  // log[exp[i]] = i; log[0] unused
  Gf256Tables();
};

const Gf256Tables& gf_tables();

}  // namespace detail

/// a * b in GF(2^8).
inline std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = detail::gf_tables();
  return t.exp[static_cast<unsigned>(t.log[a]) + t.log[b]];
}

/// a / b in GF(2^8); b must be non-zero.
inline std::uint8_t gf_div(std::uint8_t a, std::uint8_t b) {
  if (a == 0) return 0;
  const auto& t = detail::gf_tables();
  return t.exp[static_cast<unsigned>(t.log[a]) + 255 - t.log[b]];
}

/// Multiplicative inverse; a must be non-zero.
inline std::uint8_t gf_inv(std::uint8_t a) {
  const auto& t = detail::gf_tables();
  return t.exp[255 - t.log[a]];
}

/// g^power for the Vandermonde generator matrix.
inline std::uint8_t gf_exp(unsigned power) {
  return detail::gf_tables().exp[power % 255];
}

/// dst[i] ^= c * src[i] over the whole span. The row operation behind both
/// RS encode (accumulate coded symbols) and decode (matrix elimination).
/// c == 0 is a no-op, c == 1 is a plain XOR; both fast-pathed.
void gf_addmul(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src,
               std::uint8_t c);

/// dst[i] = c * dst[i] over the span (row scaling during elimination).
void gf_scale(std::span<std::uint8_t> dst, std::uint8_t c);

}  // namespace xlink::fec
