#include "fec/framer.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace xlink::fec {

const FecScheme& scheme_for(FecConfig::SchemeKind kind) {
  static const XorParity xor_scheme;
  static const ReedSolomon rs_scheme;
  if (kind == FecConfig::SchemeKind::kXor)
    return static_cast<const FecScheme&>(xor_scheme);
  return rs_scheme;
}

// ----------------------------------------------------------------- FecFramer

FecFramer::FecFramer(const FecConfig& cfg)
    : cfg_(cfg), scheme_(scheme_for(cfg.scheme)) {
  cfg_.window = std::clamp<std::size_t>(cfg_.window, 1, kMaxSources);
  cfg_.max_repairs = std::clamp<std::size_t>(cfg_.max_repairs, 1, kMaxRepairs);
  cfg_.min_repairs = std::clamp<std::size_t>(cfg_.min_repairs, 0,
                                             cfg_.max_repairs);
}

FecFramer::PathSender& FecFramer::sender(quic::PathId path) {
  for (auto& p : paths_)
    if (p.in_use && p.id == path) return p;
  for (auto& p : paths_) {
    if (!p.in_use) {
      p.in_use = true;
      p.id = path;
      return p;
    }
  }
  // More simultaneous paths than slots: recycle deterministically. The
  // displaced path's partial window is simply dropped (never emitted).
  PathSender& p = paths_[path % kMaxPaths];
  p = PathSender{};
  p.in_use = true;
  p.id = path;
  return p;
}

std::size_t FecFramer::decide_repairs(double loss_estimate) const {
  const std::size_t ceiling =
      std::min(cfg_.max_repairs, scheme_.max_repairs(cfg_.window));
  if (ceiling == 0) return 0;
  const double want = std::ceil(static_cast<double>(cfg_.window) *
                                std::max(0.0, loss_estimate) *
                                cfg_.loss_multiplier);
  std::size_t r = cfg_.min_repairs;
  if (want > static_cast<double>(r))
    r = want >= static_cast<double>(ceiling)
            ? ceiling
            : static_cast<std::size_t>(want);
  return std::min(r, ceiling);
}

void FecFramer::on_packet_sent(quic::PathId path, quic::PacketNumber pn,
                               std::span<const std::uint8_t> wire,
                               sim::Time now, double loss_estimate,
                               std::vector<quic::Frame>& out) {
  PathSender& s = sender(path);
  if (s.count > 0 && pn != s.first_pn + s.count) {
    // Discontinuity (shouldn't happen: repairs are the only unfed packets
    // and they sit at window boundaries) -- restart the window here.
    s.count = 0;
    s.max_symbol = 0;
  }
  if (s.count == 0) s.first_pn = pn;

  // Symbol = [2-byte big-endian length || wire bytes]; zero padding to the
  // window's longest symbol is implicit (gf_addmul stops at the shorter
  // span, which is exactly the all-zero-tail semantics).
  const std::size_t sym = 2 + wire.size();
  net::PacketBuffer& buf = s.sources[s.count];
  buf.resize(sym);
  buf[0] = static_cast<std::uint8_t>(wire.size() >> 8);
  buf[1] = static_cast<std::uint8_t>(wire.size() & 0xff);
  if (!wire.empty()) std::memcpy(buf.data() + 2, wire.data(), wire.size());
  s.max_symbol = std::max(s.max_symbol, sym);
  ++s.count;
  if (s.count < cfg_.window) return;

  // Window closed: decide redundancy, emit.
  ++stats_.windows_closed;
  const std::uint64_t window_id = s.next_window_id++;
  const std::size_t k = cfg_.window;
  const std::size_t r = gate_ ? decide_repairs(loss_estimate) : 0;

  Cover& cover = s.covers[s.cover_head];
  s.cover_head = (s.cover_head + 1) % kCoverRing;
  cover.first_pn = s.first_pn;
  cover.k = k;
  cover.at = now;
  cover.emitted = r > 0;

  if (r > 0) {
    std::array<std::span<const std::uint8_t>, kMaxSources> src_spans;
    for (std::size_t i = 0; i < k; ++i) src_spans[i] = s.sources[i].cspan();
    std::array<std::span<std::uint8_t>, kMaxRepairs> rep_spans;
    for (std::size_t j = 0; j < r; ++j) {
      s.repairs[j].resize(s.max_symbol);
      rep_spans[j] = s.repairs[j].span();
    }
    scheme_.encode({src_spans.data(), k}, {rep_spans.data(), r});
    for (std::size_t j = 0; j < r; ++j) {
      quic::RepairFrame f;
      f.path_id = path;
      f.window_id = window_id;
      f.first_pn = s.first_pn;
      f.k = k;
      f.repair_count = r;
      f.symbol_index = static_cast<std::uint64_t>(j);
      f.payload = quic::FrameData::borrowed(s.repairs[j].cspan());
      out.emplace_back(std::move(f));
    }
    ++stats_.windows_protected;
    stats_.repair_symbols += r;
  }
  s.count = 0;
  s.max_symbol = 0;
}

bool FecFramer::covers(quic::PathId path, quic::PacketNumber pn,
                       sim::Time now) const {
  for (const auto& p : paths_) {
    if (!p.in_use || p.id != path) continue;
    for (const Cover& c : p.covers) {
      if (!c.emitted || c.k == 0) continue;
      if (pn < c.first_pn || pn >= c.first_pn + c.k) continue;
      if (now - c.at <= cfg_.cover_linger) return true;
    }
    return false;
  }
  return false;
}

// ------------------------------------------------------------ RecoveryBuffer

RecoveryBuffer::RecoveryBuffer(const FecConfig& cfg)
    : cfg_(cfg), scheme_(scheme_for(cfg.scheme)) {}

RecoveryBuffer::PathRecv& RecoveryBuffer::recv(quic::PathId path) {
  for (auto& p : paths_)
    if (p.in_use && p.id == path) return p;
  for (auto& p : paths_) {
    if (!p.in_use) {
      p.in_use = true;
      p.id = path;
      return p;
    }
  }
  PathRecv& p = paths_[path % kMaxPaths];
  p = PathRecv{};
  p.in_use = true;
  p.id = path;
  return p;
}

const RecoveryBuffer::StashEntry* RecoveryBuffer::stash_find(
    const PathRecv& p, quic::PacketNumber pn) const {
  const StashEntry& e = p.stash[pn % kStash];
  return e.valid && e.pn == pn ? &e : nullptr;
}

void RecoveryBuffer::stash_store(PathRecv& p, quic::PacketNumber pn,
                                 std::span<const std::uint8_t> wire,
                                 sim::Time now) {
  StashEntry& e = p.stash[pn % kStash];
  if (e.valid) p.stash_bytes -= e.buf.size();
  const std::size_t sym = 2 + wire.size();
  // Overwriting an oversize slot with a pooled-size symbol would otherwise
  // pin the jumbo capacity forever; drop it and reacquire from the pool.
  if (e.buf.capacity() > net::PacketBufferPool::kSlotCapacity &&
      sym <= net::PacketBufferPool::kSlotCapacity) {
    e.buf.reset();
  }
  e.pn = pn;
  e.at = now;
  e.valid = true;
  // Stored in SYMBOL format -- [2-byte big-endian length || wire] -- so a
  // present entry can be handed to the decoder as-is; the sender built its
  // source symbols with exactly this prefix.
  e.buf.resize(sym);
  e.buf[0] = static_cast<std::uint8_t>(wire.size() >> 8);
  e.buf[1] = static_cast<std::uint8_t>(wire.size() & 0xff);
  if (!wire.empty()) std::memcpy(e.buf.data() + 2, wire.data(), wire.size());
  p.stash_bytes += e.buf.size();
  if (p.stash_bytes > cfg_.stash_bytes_cap) evict_over_cap(p);
}

void RecoveryBuffer::evict_over_cap(PathRecv& p) {
  // Drop-oldest until back under the per-path byte cap. A single entry
  // larger than the whole cap is evicted too (the loop drains to empty).
  while (p.stash_bytes > cfg_.stash_bytes_cap) {
    StashEntry* oldest = nullptr;
    for (auto& e : p.stash) {
      if (!e.valid) continue;
      if (!oldest || e.at < oldest->at ||
          (e.at == oldest->at && e.pn < oldest->pn)) {
        oldest = &e;
      }
    }
    if (!oldest) break;  // accounting bug; the auditor will catch it
    const std::size_t bytes = oldest->buf.size();
    p.stash_bytes -= bytes;
    const quic::PacketNumber pn = oldest->pn;
    oldest->valid = false;
    oldest->buf.reset();
    ++stats_.stash_evicted;
    XLINK_TRACE(trace_, telemetry::Event::fec_stash_evicted(
                            now_, origin_, static_cast<std::uint8_t>(p.id), pn,
                            bytes, p.stash_bytes));
  }
}

void RecoveryBuffer::on_source(quic::PathId path, quic::PacketNumber pn,
                               std::span<const std::uint8_t> wire,
                               sim::Time now) {
  now_ = now;
  stash_store(recv(path), pn, wire, now);
}

std::size_t RecoveryBuffer::stash_bytes_tracked() const {
  std::size_t total = 0;
  for (const auto& p : paths_)
    if (p.in_use) total += p.stash_bytes;
  return total;
}

std::size_t RecoveryBuffer::audit_recompute_stash_bytes() const {
  std::size_t total = 0;
  for (const auto& p : paths_) {
    if (!p.in_use) continue;
    for (const auto& e : p.stash)
      if (e.valid) total += e.buf.size();
  }
  return total;
}

std::size_t RecoveryBuffer::count_missing(const PathRecv& p,
                                          const Pending& w) const {
  std::size_t missing = 0;
  for (std::size_t i = 0; i < w.k; ++i)
    if (!stash_find(p, w.first_pn + i)) ++missing;
  return missing;
}

void RecoveryBuffer::drop_window(Pending& w) {
  for (std::size_t j = 0; j < w.repair_count; ++j) w.repairs[j].reset();
  w.repair_count = 0;
  w.active = false;
}

RecoveryBuffer::RepairOutcome RecoveryBuffer::on_repair(
    quic::PathId path, const quic::RepairFrame& f, sim::Time now,
    std::vector<Recovered>& out) {
  RepairOutcome res;
  now_ = now;
  if (f.k == 0 || f.k > kMaxSources || f.repair_count > kMaxRepairs ||
      f.payload.size() < 2) {
    // Outside this implementation's budget; treat as pure overhead.
    ++stats_.wasted;
    res.wasted = 1;
    return res;
  }
  if (f.payload.size() > cfg_.max_symbol_bytes) {
    // An honest symbol fits the sealed MTU; refusing the copy here keeps a
    // REPAIR bomb from landing arbitrary-size buffers in pending windows.
    ++stats_.oversize_rejected;
    ++stats_.wasted;
    res.wasted = 1;
    return res;
  }
  PathRecv& p = recv(path);

  Pending* w = nullptr;
  for (auto& cand : p.pending) {
    if (cand.active && cand.window_id == f.window_id &&
        cand.first_pn == f.first_pn) {
      w = &cand;
      break;
    }
  }
  if (!w) {
    Pending probe;
    probe.first_pn = f.first_pn;
    probe.k = static_cast<std::size_t>(f.k);
    if (count_missing(p, probe) == 0) {
      // Window already complete (or long decoded): this symbol bought
      // nothing.
      ++stats_.wasted;
      res.wasted = 1;
      return res;
    }
    // Claim a pending slot, evicting the oldest incomplete window.
    for (auto& cand : p.pending)
      if (!cand.active) { w = &cand; break; }
    if (!w) {
      w = &p.pending[0];
      for (auto& cand : p.pending)
        if (cand.window_id < w->window_id) w = &cand;
      stats_.wasted += w->repair_count;
      ++stats_.unrecoverable;
      drop_window(*w);
    }
    w->active = true;
    w->window_id = f.window_id;
    w->first_pn = f.first_pn;
    w->k = static_cast<std::size_t>(f.k);
    w->repair_total = f.repair_count;
    w->repair_count = 0;
    const std::size_t missing = count_missing(p, *w);
    stats_.erased_seen += missing;
    ++stats_.windows_observed;
    res.erased_newly_seen = missing;
  }

  // Duplicate symbol rows contribute nothing (singular system); drop them.
  for (std::size_t j = 0; j < w->repair_count; ++j) {
    if (w->repair_index[j] == f.symbol_index) {
      ++stats_.wasted;
      res.wasted += 1;
      return res;
    }
  }
  if (w->repair_count == kMaxRepairs) return res;  // budget cap, hold as-is
  w->repair_index[w->repair_count] = static_cast<std::uint32_t>(f.symbol_index);
  w->repairs[w->repair_count] = net::PacketBuffer::copy_of(f.payload.span());
  ++w->repair_count;

  const std::size_t missing = count_missing(p, *w);
  if (missing == 0) {
    // Every source arrived by other means; the held symbols were overhead.
    stats_.wasted += w->repair_count;
    res.wasted += w->repair_count;
    drop_window(*w);
    return res;
  }
  if (missing > w->repair_total) {
    // More erasures than the sender's budget: unrecoverable.
    stats_.wasted += w->repair_count;
    res.wasted += w->repair_count;
    ++stats_.unrecoverable;
    drop_window(*w);
    return res;
  }
  if (w->repair_count < missing) return res;  // wait for more symbols

  // Decode: symbol length is the repair payload length (>= every source
  // symbol in the window by construction).
  std::size_t symbol_len = 0;
  for (std::size_t j = 0; j < w->repair_count; ++j)
    symbol_len = std::max(symbol_len, w->repairs[j].size());

  std::array<SourceSymbol, kMaxSources> sources;
  std::array<RepairSymbol, kMaxRepairs> repairs;
  sim::Time newest_source = 0;
  std::size_t scratch_used = 0;
  for (std::size_t i = 0; i < w->k; ++i) {
    StashEntry& e = p.stash[(w->first_pn + i) % kStash];
    if (e.valid && e.pn == w->first_pn + i) {
      sources[i].data = e.buf.span();
      sources[i].present = true;
      newest_source = std::max(newest_source, e.at);
    } else {
      net::PacketBuffer& scratch = decode_scratch_[scratch_used++];
      scratch.resize(symbol_len);
      sources[i].data = scratch.span();
      sources[i].present = false;
    }
  }
  for (std::size_t j = 0; j < w->repair_count; ++j) {
    repairs[j].data = w->repairs[j].span();
    repairs[j].index = w->repair_index[j];
  }

  if (!scheme_.recover({sources.data(), w->k},
                       {repairs.data(), w->repair_count})) {
    stats_.wasted += w->repair_count;
    res.wasted += w->repair_count;
    ++stats_.unrecoverable;
    drop_window(*w);
    return res;
  }

  const std::uint64_t latency =
      now > newest_source ? now - newest_source : 0;
  for (std::size_t i = 0; i < w->k; ++i) {
    const StashEntry* have = stash_find(p, w->first_pn + i);
    if (have) continue;  // was present before decode
    const std::span<const std::uint8_t> sym = sources[i].data;
    const std::size_t len =
        (static_cast<std::size_t>(sym[0]) << 8) | sym[1];
    if (len == 0 || len + 2 > sym.size()) continue;  // corrupt symbol
    Recovered rec;
    rec.wire = net::PacketBuffer::copy_of(sym.subspan(2, len));
    rec.pn = w->first_pn + i;
    rec.window_id = w->window_id;
    rec.latency_us = latency;
    stash_store(p, rec.pn, rec.wire.cspan(), now);
    out.push_back(std::move(rec));
    ++stats_.recovered;
    ++res.recovered;
  }
  const std::size_t surplus = w->repair_count - missing;
  stats_.wasted += surplus;
  res.wasted += surplus;
  drop_window(*w);
  return res;
}

}  // namespace xlink::fec
