#include "fec/gf256.h"

namespace xlink::fec {
namespace detail {

Gf256Tables::Gf256Tables() {
  // Generator 0x03 is primitive for the 0x11b polynomial: powers of 3
  // enumerate every non-zero field element exactly once.
  std::uint8_t x = 1;
  for (unsigned i = 0; i < 255; ++i) {
    exp[i] = x;
    log[x] = static_cast<std::uint8_t>(i);
    // x *= 3  ==  x ^ (x << 1) with reduction.
    const std::uint8_t hi = static_cast<std::uint8_t>(x & 0x80u);
    std::uint8_t shifted = static_cast<std::uint8_t>(x << 1);
    if (hi) shifted ^= 0x1b;
    x ^= shifted;
  }
  for (unsigned i = 255; i < 512; ++i) exp[i] = exp[i - 255];
  log[0] = 0;  // never read; keeps the table fully initialised
}

const Gf256Tables& gf_tables() {
  static const Gf256Tables tables;
  return tables;
}

}  // namespace detail

void gf_addmul(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src,
               std::uint8_t c) {
  const std::size_t n = dst.size() < src.size() ? dst.size() : src.size();
  if (c == 0 || n == 0) return;
  if (c == 1) {
    for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
    return;
  }
  const auto& t = detail::gf_tables();
  const unsigned log_c = t.log[c];
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t s = src[i];
    if (s) dst[i] ^= t.exp[log_c + t.log[s]];
  }
}

void gf_scale(std::span<std::uint8_t> dst, std::uint8_t c) {
  if (c == 1) return;
  if (c == 0) {
    for (auto& b : dst) b = 0;
    return;
  }
  const auto& t = detail::gf_tables();
  const unsigned log_c = t.log[c];
  for (auto& b : dst) {
    if (b) b = t.exp[log_c + t.log[b]];
  }
}

}  // namespace xlink::fec
