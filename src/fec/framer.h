// Sender-side FEC framing and receiver-side recovery.
//
// The FecFramer groups every sealed packet of a path's packet-number space
// into fixed-size windows of k consecutive packet numbers and, when a
// window closes, emits r REPAIR frames (r adaptive: per-path loss estimate
// scaled by a headroom multiplier, clamped to [min_repairs, max_repairs],
// and gated by the double-threshold QoE controller exactly like
// re-injection). A source symbol is the sealed wire datagram prefixed with
// its 2-byte big-endian length and implicitly zero-padded to the window's
// longest symbol -- so a recovered symbol is a complete datagram that
// re-enters the normal decrypt/deliver path.
//
// The RecoveryBuffer keeps a ring of recently received datagrams per path
// (keyed by packet number) plus a small set of pending repair windows; when
// enough repair symbols arrive to cover a window's erasures it decodes and
// hands back the reconstructed datagrams.
//
// Both sides use pooled PacketBuffer storage and fixed-size scratch: the
// warm encode -> repair -> recover path performs no heap allocations.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "fec/scheme.h"
#include "net/packet_buffer.h"
#include "quic/frame.h"
#include "sim/time.h"
#include "telemetry/trace_sink.h"

namespace xlink::fec {

struct FecConfig {
  bool enabled = false;
  /// Sender-side protection; receivers keep only the RecoveryBuffer. The
  /// harness enables this on the video server, not the client.
  bool protect = true;
  enum class SchemeKind : std::uint8_t { kXor, kReedSolomon };
  SchemeKind scheme = SchemeKind::kReedSolomon;
  std::size_t window = 8;         // k: source packets per window
  std::size_t min_repairs = 1;    // r floor while the gate allows FEC
  std::size_t max_repairs = 4;    // r ceiling (<= kMaxRepairs)
  /// r = clamp(ceil(k * loss_estimate * loss_multiplier)): headroom over
  /// the average loss rate so burst erasures stay within the budget.
  double loss_multiplier = 3.0;
  /// Data-packet payload cap while FEC is on, so a repair symbol (sealed
  /// wire + 2-byte length prefix + REPAIR frame header) still fits one
  /// packet payload.
  std::size_t payload_cap = 1280;
  /// How long an emitted repair window suppresses re-injection of the
  /// packets it covers (mutual awareness with the ReinjectionEngine).
  sim::Duration cover_linger = sim::millis(300);

  // Receiver-side bounds (hostile-peer hardening).
  /// Per-path cap on stashed source-symbol bytes. Honest traffic needs at
  /// most kStash * (2 + kMaxDatagramSize) ~= 91 KB; oversize datagram bombs
  /// hit this cap and evict drop-oldest (traced as fec:stash_evicted).
  std::size_t stash_bytes_cap = 160 * 1024;
  /// Largest REPAIR symbol the RecoveryBuffer will copy; a real symbol is
  /// bounded by the sealed MTU plus its 2-byte length prefix.
  std::size_t max_symbol_bytes = 2048;
};

/// Static scheme instance for a config kind.
const FecScheme& scheme_for(FecConfig::SchemeKind kind);

class FecFramer {
 public:
  explicit FecFramer(const FecConfig& cfg);

  /// Double-threshold gate: while closed, windows close without emitting
  /// repair symbols (the cost-control rule the paper applies to
  /// re-injection, applied to proactive redundancy too).
  void set_gate(bool allowed) { gate_ = allowed; }
  bool gate() const { return gate_; }

  /// Feeds one sealed packet. When this closes a window and the gate +
  /// redundancy policy yield r > 0, appends r RepairFrames to `out` whose
  /// payloads BORROW internal buffers -- valid until the next call for the
  /// same path. `loss_estimate` is the path's smoothed loss rate in [0,1].
  void on_packet_sent(quic::PathId path, quic::PacketNumber pn,
                      std::span<const std::uint8_t> wire, sim::Time now,
                      double loss_estimate, std::vector<quic::Frame>& out);

  /// True if `pn` on `path` is covered by a recently emitted repair window
  /// (re-injection of such packets is redundant with the repair symbol).
  bool covers(quic::PathId path, quic::PacketNumber pn, sim::Time now) const;

  struct Stats {
    std::uint64_t windows_closed = 0;
    std::uint64_t windows_protected = 0;  // closed with >= 1 repair emitted
    std::uint64_t repair_symbols = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  static constexpr std::size_t kMaxPaths = 8;
  static constexpr std::size_t kCoverRing = 4;

  struct Cover {
    quic::PacketNumber first_pn = 0;
    std::size_t k = 0;
    sim::Time at = 0;
    bool emitted = false;
  };

  struct PathSender {
    quic::PathId id = 0;
    bool in_use = false;
    std::uint64_t next_window_id = 0;
    quic::PacketNumber first_pn = 0;
    std::size_t count = 0;
    std::size_t max_symbol = 0;
    std::array<net::PacketBuffer, kMaxSources> sources;
    std::array<net::PacketBuffer, kMaxRepairs> repairs;
    std::array<Cover, kCoverRing> covers;
    std::size_t cover_head = 0;
  };

  PathSender& sender(quic::PathId path);
  std::size_t decide_repairs(double loss_estimate) const;

  FecConfig cfg_;
  const FecScheme& scheme_;
  bool gate_ = true;
  std::array<PathSender, kMaxPaths> paths_;
  Stats stats_;
};

class RecoveryBuffer {
 public:
  explicit RecoveryBuffer(const FecConfig& cfg);

  /// Records a received datagram (sealed bytes, pre-decrypt) so it can act
  /// as a present source symbol for later repair windows.
  void on_source(quic::PathId path, quic::PacketNumber pn,
                 std::span<const std::uint8_t> wire, sim::Time now);

  struct Recovered {
    net::PacketBuffer wire;  // full sealed datagram, ready for on_datagram
    quic::PacketNumber pn = 0;
    std::uint64_t window_id = 0;
    std::uint64_t latency_us = 0;  // vs the window's newest source arrival
  };

  struct RepairOutcome {
    std::size_t recovered = 0;
    std::size_t wasted = 0;            // repair symbols that bought nothing
    std::size_t erased_newly_seen = 0; // erasures first observed this call
  };

  /// Ingests one REPAIR frame; decodes when enough symbols are present.
  /// Reconstructed datagrams are appended to `out`.
  RepairOutcome on_repair(quic::PathId path, const quic::RepairFrame& f,
                          sim::Time now, std::vector<Recovered>& out);

  struct Stats {
    std::uint64_t recovered = 0;
    std::uint64_t wasted = 0;
    std::uint64_t erased_seen = 0;
    std::uint64_t windows_observed = 0;
    std::uint64_t unrecoverable = 0;   // windows past the repair budget
    std::uint64_t stash_evicted = 0;   // entries dropped by the byte cap
    std::uint64_t oversize_rejected = 0;  // symbols over max_symbol_bytes
  };
  const Stats& stats() const { return stats_; }

  /// Telemetry plumbing for eviction events (optional; the connection
  /// forwards its session sink).
  void set_trace(telemetry::TraceSink* sink, telemetry::Origin origin) {
    trace_ = sink;
    origin_ = origin;
  }

  /// Incrementally maintained stash byte total across all paths.
  std::size_t stash_bytes_tracked() const;
  /// From-scratch recount of the stash rings (invariant auditor).
  std::size_t audit_recompute_stash_bytes() const;

 private:
  static constexpr std::size_t kMaxPaths = 8;
  static constexpr std::size_t kStash = 64;
  static constexpr std::size_t kPendingWindows = 4;

  struct StashEntry {
    quic::PacketNumber pn = 0;
    sim::Time at = 0;
    net::PacketBuffer buf;
    bool valid = false;
  };

  struct Pending {
    bool active = false;
    std::uint64_t window_id = 0;
    quic::PacketNumber first_pn = 0;
    std::size_t k = 0;
    std::uint64_t repair_total = 0;  // r declared by the frames
    std::size_t repair_count = 0;    // symbols held
    std::array<std::uint32_t, kMaxRepairs> repair_index{};
    std::array<net::PacketBuffer, kMaxRepairs> repairs;
  };

  struct PathRecv {
    quic::PathId id = 0;
    bool in_use = false;
    std::size_t stash_bytes = 0;  // sum of valid entry sizes (bounded)
    std::array<StashEntry, kStash> stash;
    std::array<Pending, kPendingWindows> pending;
  };

  PathRecv& recv(quic::PathId path);
  const StashEntry* stash_find(const PathRecv& p, quic::PacketNumber pn) const;
  void stash_store(PathRecv& p, quic::PacketNumber pn,
                   std::span<const std::uint8_t> wire, sim::Time now);
  void evict_over_cap(PathRecv& p);
  std::size_t count_missing(const PathRecv& p, const Pending& w) const;
  void drop_window(Pending& w);

  FecConfig cfg_;
  const FecScheme& scheme_;
  std::array<PathRecv, kMaxPaths> paths_;
  std::array<net::PacketBuffer, kMaxRepairs> decode_scratch_;
  Stats stats_;
  telemetry::TraceSink* trace_ = nullptr;
  telemetry::Origin origin_ = telemetry::Origin::kServer;
  sim::Time now_ = 0;  // last event time seen (for eviction traces)
};

}  // namespace xlink::fec
