// MetricsRegistry: deterministic counters/gauges/histograms.
//
// Each session owns one registry (filled at the end of Session::run), and
// the parallel engine merges the per-session registries IN SESSION-INDEX
// ORDER — the same fold contract harness/parallel.h uses for DayMetrics —
// so the merged registry is bit-identical for every XLINK_JOBS value:
// identical per-slot inputs folded in an identical order produce an
// identical floating-point accumulation sequence.
//
// Merge semantics per kind:
//  - counter:   sum
//  - gauge:     last merged value wins (a gauge is "the latest reading")
//  - histogram: bucket-wise sum; sum/count add, min/max combine
//
// Histograms use log2 buckets (bucket i holds values in [2^i, 2^(i+1)),
// negatives and zero in bucket INT32_MIN side bucket 0) — coarse, but
// mergeable without retaining samples, which keeps the registry O(metrics)
// rather than O(events).
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>

namespace xlink::telemetry {

struct Histogram {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// log2 bucket index -> count; values <= 0 land in bucket -1075 (below
  /// every representable positive double's exponent).
  std::map<int, std::uint64_t> buckets;

  void observe(double v);
  void merge(const Histogram& other);
  double mean() const { return count == 0 ? 0.0 : sum / double(count); }
  /// Percentile estimate from bucket upper bounds (coarse by design).
  double percentile(double p) const;

  bool operator==(const Histogram&) const = default;
};

class MetricsRegistry {
 public:
  void add_counter(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }
  void set_gauge(const std::string& name, double value) {
    gauges_[name] = value;
  }
  void observe(const std::string& name, double value) {
    histograms_[name].observe(value);
  }

  std::uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  const Histogram* histogram(const std::string& name) const;

  /// Folds `other` into this registry (see merge semantics above). Callers
  /// must merge in a deterministic order; harness/parallel.cpp merges in
  /// session-index order.
  void merge(const MetricsRegistry& other);

  /// Replaces the named histogram wholesale. Deserializers (the grid-shard
  /// reader in harness/shard.cpp) use this to reconstruct a registry
  /// bit-for-bit, which observe() cannot do from aggregated state.
  void restore_histogram(const std::string& name, Histogram h) {
    histograms_[name] = std::move(h);
  }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// JSON object {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  void write_json(std::ostream& os, int indent = 2) const;

  bool operator==(const MetricsRegistry&) const = default;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace xlink::telemetry
