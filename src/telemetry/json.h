// Minimal JSON writing and parsing.
//
// JsonWriter replaces the hand-rolled fprintf JSON that used to live in
// the bench binaries and backs the qlog export: it handles escaping,
// comma placement, and indentation so emitters only state structure.
// JsonValue + parse_json is the matching reader used by the qlog
// round-trip tests and the xlink_qlog analyzer. It is a strict subset of
// JSON: UTF-8 passthrough, numbers as double (integers below 2^53 are
// exact, which covers every counter the simulator can produce).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace xlink::telemetry {

/// Escapes `s` for placement inside a JSON string literal (no quotes).
std::string json_escape(const std::string& s);

/// Streaming JSON writer with automatic commas. Scopes are explicit:
///   JsonWriter w(os);
///   w.begin_object();
///   w.key("name").value("bench");
///   w.key("rows"); w.begin_array(); w.value(1.5); w.end_array();
///   w.end_object();
class JsonWriter {
 public:
  /// `indent` > 0 pretty-prints with that many spaces per level.
  explicit JsonWriter(std::ostream& os, int indent = 2)
      : os_(os), indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(bool v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) {
    return value(static_cast<std::uint64_t>(v));
  }
  JsonWriter& null_value();

  /// Convenience: key + value in one call.
  template <typename T>
  JsonWriter& kv(const std::string& k, const T& v) {
    key(k);
    return value(v);
  }

 private:
  void before_value();
  void newline_indent();

  std::ostream& os_;
  int indent_;
  struct Level {
    bool array = false;
    bool has_items = false;
  };
  std::vector<Level> stack_;
  bool pending_key_ = false;
};

// --------------------------------------------------------------- parsing

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Object member access; returns nullptr when absent or not an object.
  const JsonValue* get(const std::string& k) const;
  /// Member as uint64 (default when absent/mistyped).
  std::uint64_t get_u64(const std::string& k, std::uint64_t def = 0) const;
  double get_num(const std::string& k, double def = 0.0) const;
  std::string get_str(const std::string& k, const std::string& def = "") const;
};

/// Parses a complete JSON document; nullopt on any syntax error.
std::optional<JsonValue> parse_json(const std::string& text);

}  // namespace xlink::telemetry
