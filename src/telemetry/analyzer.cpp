#include "telemetry/analyzer.h"

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>
#include <utility>

#include "quic/guard.h"
#include "stats/table.h"

namespace xlink::telemetry {

namespace {

const char* path_state_name(std::uint64_t s) {
  switch (s) {
    case 0: return "validating";
    case 1: return "active";
    case 2: return "standby";
    case 3: return "abandoned";
  }
  return "?";
}

const char* health_name(std::uint64_t h) {
  switch (h) {
    case 0: return "good";
    case 1: return "degraded";
    case 2: return "probing";
  }
  return "?";
}

const char* fault_kind_label(std::uint64_t k) {
  switch (k) {
    case 0: return "blackout";
    case 1: return "uplink-drop";
    case 2: return "downlink-drop";
    case 3: return "corrupt";
    case 4: return "reorder";
    case 5: return "delay-spike";
    case 6: return "nat-rebind";
  }
  return "?";
}

const char* origin_label(Origin o) {
  switch (o) {
    case Origin::kServer: return "server";
    case Origin::kClient: return "client";
    case Origin::kSession: return "session";
  }
  return "?";
}

const char* tech_name(std::uint64_t tech) {
  switch (tech) {
    case 0: return "wifi";
    case 1: return "lte";
    case 2: return "5g-sa";
    case 3: return "5g-nsa";
  }
  return "?";
}

std::string ms_str(sim::Duration d) {
  return stats::Table::fmt(sim::to_millis(d), 1) + "ms";
}

std::string sec_str(sim::Time t) {
  return stats::Table::fmt(sim::to_seconds(t), 3) + "s";
}

}  // namespace

AnalysisReport analyze(const ParsedTrace& trace,
                       sim::Duration attribution_window) {
  AnalysisReport rep;
  rep.meta = trace.meta;
  rep.events = trace.events.size();
  rep.dropped = trace.dropped;

  std::map<std::uint8_t, PathTimeline> paths;
  auto path_of = [&](std::uint8_t id) -> PathTimeline& {
    auto [it, inserted] = paths.try_emplace(id);
    if (inserted) it->second.path = id;
    return it->second;
  };
  std::map<std::uint8_t, FecPathReport> fec_paths;
  auto fec_path_of = [&](std::uint8_t id) -> FecPathReport& {
    auto [it, inserted] = fec_paths.try_emplace(id);
    if (inserted) it->second.path = id;
    return it->second;
  };
  std::map<std::uint8_t, CcPathReport> cc_paths;
  auto cc_path_of = [&](std::uint8_t id) -> CcPathReport& {
    auto [it, inserted] = cc_paths.try_emplace(id);
    if (inserted) it->second.path = id;
    return it->second;
  };
  auto touch = [](PathTimeline& p, sim::Time t) {
    if (p.first_activity == 0 && p.last_activity == 0) p.first_activity = t;
    p.last_activity = std::max(p.last_activity, t);
  };

  bool gate_open = false;
  bool gate_seen = false;
  sim::Time last_reinjection = 0;
  bool in_episode = false;
  sim::Time episode_end = 0;
  bool episode_stalled = false;
  constexpr sim::Duration kEpisodeGap = sim::seconds(1);
  constexpr sim::Duration kEpisodeStallHorizon = sim::seconds(2);

  // Open stall (kPlayerStall without a matching resume yet).
  constexpr std::size_t kNoStall = ~std::size_t{0};
  std::size_t open_stall = kNoStall;

  // Last seen health per (origin, path), for failover/resurrection counts.
  std::map<std::pair<std::uint8_t, std::uint8_t>, std::uint64_t> prev_health;

  auto close_episode = [&] {
    if (!in_episode) return;
    ++rep.reinjection.episodes;
    if (!episode_stalled) ++rep.reinjection.episodes_without_stall;
    in_episode = false;
  };

  for (const Event& e : trace.events) {
    rep.trace_end = std::max(rep.trace_end, e.t);
    if (in_episode && e.t > episode_end + kEpisodeStallHorizon)
      close_episode();

    switch (e.type) {
      case EventType::kPacketSent: {
        PathTimeline& p = path_of(e.path);
        touch(p, e.t);
        if (e.origin == Origin::kServer) {  // downlink data direction
          ++p.packets_sent;
          p.bytes_sent += e.b;
          if (!(e.flag & 2)) rep.reinjection.first_tx_bytes += e.b;
        }
        break;
      }
      case EventType::kPacketReceived: {
        PathTimeline& p = path_of(e.path);
        touch(p, e.t);
        ++p.packets_received;
        break;
      }
      case EventType::kAckMp:
        touch(path_of(e.path), e.t);
        break;
      case EventType::kLoss: {
        PathTimeline& p = path_of(e.path);
        touch(p, e.t);
        ++p.packets_lost;
        if (e.flag == 1) ++p.lost_time_threshold;
        break;
      }
      case EventType::kPto: {
        PathTimeline& p = path_of(e.path);
        touch(p, e.t);
        ++p.ptos;
        break;
      }
      case EventType::kCcState: {
        PathTimeline& p = path_of(e.path);
        touch(p, e.t);
        p.last_cwnd = e.a;
        if (e.extra > 0) {
          p.min_srtt_us = std::min<std::uint64_t>(p.min_srtt_us, e.extra);
          p.max_srtt_us = std::max<std::uint64_t>(p.max_srtt_us, e.extra);
        }
        if (e.d != kNoValue) {
          cc_path_of(e.path).pacing_rate_last = e.d;
          rep.cc.pacing_seen = true;
        }
        break;
      }
      case EventType::kCcRateSample: {
        CcPathReport& c = cc_path_of(e.path);
        ++c.rate_samples;
        ++rep.cc.rate_samples;
        if (e.flag & 1) ++c.app_limited_samples;
        c.btlbw_last = e.b;
        c.btlbw_peak = std::max(c.btlbw_peak, e.b);
        if (e.c > 0) c.min_rtt_us = std::min<std::uint64_t>(c.min_rtt_us, e.c);
        touch(path_of(e.path), e.t);
        break;
      }
      case EventType::kAbrDecision: {
        AbrReport& a = rep.abr;
        ++a.decisions;
        if (e.b >= a.rung_decisions.size()) a.rung_decisions.resize(e.b + 1);
        ++a.rung_decisions[e.b];
        if (e.d != kNoValue && e.d != e.b) {
          ++a.switches;
          if (e.b > e.d) {
            ++a.up_switches;
            a.switch_magnitude += e.b - e.d;
          } else {
            ++a.down_switches;
            a.switch_magnitude += e.d - e.b;
          }
        }
        a.last_rung = e.b;
        a.estimate_last_bps = e.c == kNoValue ? 0 : e.c;
        a.buffer_at_decision_ms.add(static_cast<double>(e.extra));
        break;
      }
      case EventType::kPathStatus: {
        PathTimeline& p = path_of(e.path);
        touch(p, e.t);
        // Both endpoints trace the same transition; collapse repeats.
        if (p.status_changes.empty() || p.status_changes.back().second != e.a)
          p.status_changes.emplace_back(e.t, e.a);
        break;
      }
      case EventType::kPathBound:
        path_of(e.path).tech = e.a;
        break;
      case EventType::kReinjection: {
        PathTimeline& p = path_of(e.path);
        touch(p, e.t);
        ++p.reinjections_from;
        p.reinjected_bytes_from += e.a;
        rep.reinjection.reinjected_bytes += e.a;
        ++rep.reinjection.reinjection_events;
        if (!in_episode || e.t > last_reinjection + kEpisodeGap) {
          close_episode();
          in_episode = true;
          episode_stalled = false;
        }
        last_reinjection = e.t;
        episode_end = e.t;
        break;
      }
      case EventType::kDoubleThresholdGate: {
        const bool allowed = (e.flag & 1) != 0;
        ++rep.reinjection.gate_decisions;
        if (allowed) ++rep.reinjection.gate_open_decisions;
        if (gate_seen && allowed != gate_open) ++rep.reinjection.gate_flips;
        gate_open = allowed;
        gate_seen = true;
        break;
      }
      case EventType::kQoeSignal:
        break;
      case EventType::kPlayerFirstFrame:
        rep.first_frame_latency_us = e.a;
        break;
      case EventType::kPlayerStall: {
        ++rep.reinjection.stalls;
        if (in_episode && e.t <= episode_end + kEpisodeStallHorizon)
          episode_stalled = true;
        StallReport s;
        s.start = e.t;
        s.frame = e.a;
        s.gate_open_at_stall = gate_open;
        const sim::Time window_start =
            e.t > attribution_window ? e.t - attribution_window : 0;
        std::map<std::uint8_t, std::uint64_t> badness;
        for (const Event& w : trace.events) {
          if (w.t < window_start) continue;
          if (w.t > e.t) break;
          if (w.type == EventType::kLoss) {
            ++s.losses_in_window;
            ++badness[w.path];
          } else if (w.type == EventType::kPto) {
            ++s.ptos_in_window;
            badness[w.path] += 3;  // a PTO is a stronger outage signal
          } else if (w.type == EventType::kReinjection) {
            ++s.reinjections_in_window;
          }
        }
        std::uint64_t worst = 0;
        for (const auto& [path, score] : badness) {
          if (score > worst) {
            worst = score;
            s.worst_path = path;
          }
        }
        std::ostringstream why;
        if (s.ptos_in_window > 0) {
          why << "path " << int(s.worst_path) << " outage ("
              << s.ptos_in_window << " PTOs, " << s.losses_in_window
              << " losses in window)";
        } else if (s.losses_in_window > 0) {
          why << "loss burst on path " << int(s.worst_path) << " ("
              << s.losses_in_window << " losses in window)";
        } else {
          why << "bandwidth shortfall (no loss/PTO in window)";
        }
        if (!s.gate_open_at_stall && gate_seen)
          why << "; re-injection gate was OFF";
        else if (s.reinjections_in_window > 0)
          why << "; " << s.reinjections_in_window
              << " re-injections already in flight";
        s.attribution = why.str();
        open_stall = rep.stalls.size();
        rep.stalls.push_back(std::move(s));
        break;
      }
      case EventType::kPlayerResume:
        if (open_stall != kNoStall) {
          rep.stalls[open_stall].duration = e.a;
          rep.stalls[open_stall].resolved = true;
          open_stall = kNoStall;
        }
        break;
      case EventType::kPlayerFinished:
        rep.finished = true;
        break;
      case EventType::kFault: {
        FailoverEvent f;
        f.t = e.t;
        f.path = e.path;
        f.origin = e.origin;
        f.is_fault = true;
        f.code = e.a;
        f.fault_active = (e.flag & 1) != 0;
        f.window = e.b;
        rep.failover_timeline.push_back(f);
        if (f.fault_active) ++rep.faults_fired;
        break;
      }
      case EventType::kFecRepairSent: {
        FecPathReport& f = fec_path_of(e.path);
        ++f.repair_packets;
        f.repair_bytes += e.b;
        if (e.flag == 0) ++f.windows;  // first symbol of the window
        ++rep.fec.repair_packets;
        rep.fec.repair_bytes += e.b;
        touch(path_of(e.path), e.t);
        break;
      }
      case EventType::kFecRecovered: {
        FecPathReport& f = fec_path_of(e.path);
        ++f.recovered;
        ++rep.fec.recovered;
        rep.fec.recovery_latency_ms.add(static_cast<double>(e.c) / 1000.0);
        touch(path_of(e.path), e.t);
        break;
      }
      case EventType::kFecWasted: {
        FecPathReport& f = fec_path_of(e.path);
        f.wasted_symbols += e.b;
        rep.fec.wasted_symbols += e.b;
        break;
      }
      case EventType::kGuardViolation: {
        ++rep.security.total_violations;
        auto it = std::find_if(
            rep.security.violations.begin(), rep.security.violations.end(),
            [&](const ViolationCount& v) {
              return v.error_code == e.a && v.kind == e.b;
            });
        if (it == rep.security.violations.end()) {
          ViolationCount v;
          v.error_code = e.a;
          v.kind = e.b;
          v.count = 1;
          v.first = e.t;
          v.path = e.path;
          rep.security.violations.push_back(v);
        } else {
          ++it->count;
        }
        break;
      }
      case EventType::kAuditCheck: {
        SecurityReport& s = rep.security;
        ++s.audit_events;
        s.audit_checks = std::max(s.audit_checks, e.a);
        s.audit_failures = std::max(s.audit_failures, e.b);
        s.pool_outstanding_peak = std::max(s.pool_outstanding_peak, e.c);
        break;
      }
      case EventType::kFecStashEvicted: {
        SecurityReport& s = rep.security;
        ++s.stash_evictions;
        s.stash_evicted_bytes += e.b;
        s.stash_bytes_peak = std::max(s.stash_bytes_peak, e.c);
        break;
      }
      case EventType::kPathHealth: {
        FailoverEvent f;
        f.t = e.t;
        f.path = e.path;
        f.origin = e.origin;
        f.code = e.a;
        f.pto_count = e.b;
        rep.failover_timeline.push_back(f);
        ++rep.health_transitions;
        const auto key = std::make_pair(static_cast<std::uint8_t>(e.origin),
                                        e.path);
        const std::uint64_t prev =
            prev_health.count(key) ? prev_health[key] : 0;
        if (e.a == 2) ++rep.failovers;                  // -> probing
        if (prev == 2 && e.a == 0) ++rep.resurrections; // probing -> good
        prev_health[key] = e.a;
        break;
      }
    }
  }
  close_episode();

  // Stalls resolved within the same instant are not user-visible; the
  // player cancels them from its rebuffer count, so drop them here too.
  std::erase_if(rep.stalls, [](const StallReport& s) {
    return s.resolved && s.duration == 0;
  });
  rep.reinjection.stalls = rep.stalls.size();

  rep.paths.reserve(paths.size());
  for (auto& [id, p] : paths) rep.paths.push_back(std::move(p));
  rep.fec.paths.reserve(fec_paths.size());
  for (auto& [id, f] : fec_paths) rep.fec.paths.push_back(std::move(f));
  rep.cc.paths.reserve(cc_paths.size());
  for (auto& [id, c] : cc_paths) rep.cc.paths.push_back(std::move(c));
  return rep;
}

std::string render_report(const AnalysisReport& rep) {
  std::ostringstream os;
  os << "=== trace ===\n";
  os << "scenario: "
     << (rep.meta.scenario.empty() ? "(unnamed)" : rep.meta.scenario)
     << "  scheme: " << (rep.meta.scheme.empty() ? "?" : rep.meta.scheme)
     << "  seed: " << rep.meta.seed << "\n";
  os << "events: " << rep.events << " (" << rep.dropped
     << " dropped by ring)  span: " << sec_str(rep.trace_end) << "  video "
     << (rep.finished ? "finished" : "did not finish") << "\n";
  if (rep.first_frame_latency_us != kNoValue)
    os << "first frame: " << ms_str(rep.first_frame_latency_us) << "\n";

  os << "\n=== per-path timeline ===\n";
  stats::Table table({"path", "tech", "sent", "MB", "rcvd", "lost", "t-thr",
                      "pto", "reinj", "srtt min/max", "states"});
  for (const PathTimeline& p : rep.paths) {
    std::string states;
    for (const auto& [t, s] : p.status_changes) {
      if (!states.empty()) states += " ";
      states += sec_str(t) + ":" + path_state_name(s);
    }
    std::string srtt = "-";
    if (p.max_srtt_us > 0)
      srtt = ms_str(p.min_srtt_us == kNoValue ? 0 : p.min_srtt_us) + "/" +
             ms_str(p.max_srtt_us);
    table.add_row({std::to_string(int(p.path)),
                   p.tech == kNoValue ? "?" : tech_name(p.tech),
                   std::to_string(p.packets_sent),
                   stats::Table::fmt(double(p.bytes_sent) / 1e6, 2),
                   std::to_string(p.packets_received),
                   std::to_string(p.packets_lost),
                   std::to_string(p.lost_time_threshold),
                   std::to_string(p.ptos),
                   std::to_string(p.reinjections_from), srtt, states});
  }
  os << table.render();

  const ReinjectionEfficiency& r = rep.reinjection;
  os << "\n=== re-injection efficiency ===\n";
  os << "first-tx bytes: " << stats::Table::fmt(double(r.first_tx_bytes) / 1e6, 2)
     << " MB, re-injected: "
     << stats::Table::fmt(double(r.reinjected_bytes) / 1e6, 3) << " MB ("
     << stats::Table::fmt(100.0 * r.redundancy_ratio(), 2)
     << "% redundancy)\n";
  os << "re-injection events: " << r.reinjection_events << " in " << r.episodes
     << " episodes; " << r.episodes_without_stall
     << " episodes not followed by a stall within 2s (upper bound on stalls"
        " avoided)\n";
  if (r.gate_decisions > 0) {
    os << "double-threshold gate: " << r.gate_decisions << " decisions, "
       << r.gate_open_decisions << " ON ("
       << stats::Table::fmt(
              100.0 * double(r.gate_open_decisions) / double(r.gate_decisions),
              1)
       << "%), " << r.gate_flips << " flips\n";
  }

  if (rep.fec.present()) {
    const FecReport& f = rep.fec;
    os << "\n=== fec ===\n";
    stats::Table ft({"path", "windows", "repair pkts", "repair KB",
                     "recovered", "wasted"});
    for (const FecPathReport& p : f.paths) {
      ft.add_row({std::to_string(int(p.path)), std::to_string(p.windows),
                  std::to_string(p.repair_packets),
                  stats::Table::fmt(double(p.repair_bytes) / 1e3, 1),
                  std::to_string(p.recovered),
                  std::to_string(p.wasted_symbols)});
    }
    os << ft.render();
    const std::uint64_t useful = f.recovered;
    const std::uint64_t total_symbols = f.repair_packets;
    if (total_symbols > 0) {
      os << "repair symbols: " << total_symbols << " sent, " << useful
         << " recovered an erasure, " << f.wasted_symbols << " wasted ("
         << stats::Table::fmt(
                100.0 * double(f.wasted_symbols) / double(total_symbols), 1)
         << "% of symbols bought nothing)\n";
    }
    if (!f.recovery_latency_ms.empty()) {
      os << "recovery latency: mean "
         << stats::Table::fmt(f.recovery_latency_ms.mean(), 2) << "ms, p95 "
         << stats::Table::fmt(f.recovery_latency_ms.percentile(95.0), 2)
         << "ms (from the window's last source arrival)\n";
      // A PTO-driven retransmit repairs the same erasure no sooner than the
      // PTO timer plus one more flight: lower-bound it with the path srtt.
      std::uint64_t srtt_lo = kNoValue;
      for (const PathTimeline& p : rep.paths)
        if (p.min_srtt_us != kNoValue)
          srtt_lo = std::min<std::uint64_t>(srtt_lo, p.min_srtt_us);
      if (srtt_lo != kNoValue && srtt_lo > 0) {
        const double pto_floor_ms = 2.0 * double(srtt_lo) / 1000.0;
        os << "vs PTO retransmit floor ~" << stats::Table::fmt(pto_floor_ms, 1)
           << "ms (PTO wait + retransmit flight at min srtt "
           << ms_str(srtt_lo) << "): "
           << stats::Table::fmt(
                  pto_floor_ms / std::max(0.001, f.recovery_latency_ms.mean()),
                  1)
           << "x slower than FEC recovery\n";
      }
    }
    // Redundancy-overhead attribution: which mechanism paid for protection.
    const std::uint64_t first_tx = rep.reinjection.first_tx_bytes;
    if (first_tx > 0) {
      const double reinj_pct =
          100.0 * double(rep.reinjection.reinjected_bytes) / double(first_tx);
      const double fec_pct = 100.0 * double(f.repair_bytes) / double(first_tx);
      os << "redundancy attribution: re-injection "
         << stats::Table::fmt(reinj_pct, 2) << "% + fec repairs "
         << stats::Table::fmt(fec_pct, 2) << "% = "
         << stats::Table::fmt(reinj_pct + fec_pct, 2)
         << "% of first-tx bytes\n";
    }
  }

  if (rep.cc.present()) {
    const CcReport& c = rep.cc;
    os << "\n=== congestion control ===\n";
    stats::Table ct({"path", "samples", "app-ltd", "btlbw peak MB/s",
                     "btlbw last MB/s", "min rtt", "pacing MB/s"});
    for (const CcPathReport& p : c.paths) {
      ct.add_row(
          {std::to_string(int(p.path)), std::to_string(p.rate_samples),
           std::to_string(p.app_limited_samples),
           stats::Table::fmt(double(p.btlbw_peak) / 1e6, 2),
           stats::Table::fmt(double(p.btlbw_last) / 1e6, 2),
           p.min_rtt_us == kNoValue ? "-" : ms_str(p.min_rtt_us),
           p.pacing_rate_last == 0
               ? "-"
               : stats::Table::fmt(double(p.pacing_rate_last) / 1e6, 2)});
    }
    os << ct.render();
    os << "rate samples: " << c.rate_samples
       << (c.pacing_seen ? " (pacing engaged)\n" : " (pacing off)\n");
  }

  if (rep.abr.present()) {
    const AbrReport& a = rep.abr;
    os << "\n=== abr ===\n";
    os << a.decisions << " decision(s), " << a.switches << " switch(es) ("
       << a.up_switches << " up / " << a.down_switches
       << " down, magnitude " << a.switch_magnitude << ")\n";
    os << "rung distribution:";
    for (std::size_t r = 0; r < a.rung_decisions.size(); ++r)
      os << " " << r << ":" << a.rung_decisions[r];
    os << " (last rung " << a.last_rung << ")\n";
    if (a.buffer_at_decision_ms.count() > 0) {
      os << "buffer at decision: p50 "
         << stats::Table::fmt(a.buffer_at_decision_ms.median(), 0)
         << " ms, min " << stats::Table::fmt(a.buffer_at_decision_ms.min(), 0)
         << " ms\n";
    }
    if (a.estimate_last_bps > 0) {
      os << "last rate estimate: "
         << stats::Table::fmt(double(a.estimate_last_bps) / 1e6, 2)
         << " Mb/s\n";
    }
  }

  if (!rep.failover_timeline.empty()) {
    os << "\n=== failover timeline ===\n";
    os << rep.faults_fired << " fault window(s) fired, "
       << rep.health_transitions << " health transition(s), " << rep.failovers
       << " failover(s), " << rep.resurrections << " resurrection(s)\n";
    for (const FailoverEvent& f : rep.failover_timeline) {
      os << sec_str(f.t) << " path " << int(f.path) << " ";
      if (f.is_fault) {
        os << "fault " << fault_kind_label(f.code) << " (window " << f.window
           << ") " << (f.fault_active ? "begins" : "ends");
      } else {
        os << origin_label(f.origin) << " health -> " << health_name(f.code)
           << " (pto_count " << f.pto_count << ")";
      }
      os << "\n";
    }
  }

  if (rep.security.present()) {
    const SecurityReport& s = rep.security;
    os << "\n=== security report ===\n";
    if (s.total_violations > 0) {
      os << s.total_violations << " guard violation(s):\n";
      stats::Table vt({"error", "violation", "count", "first", "path"});
      for (const ViolationCount& v : s.violations) {
        vt.add_row({quic::transport_error_name(v.error_code),
                    quic::violation_kind_name(
                        static_cast<quic::ViolationKind>(v.kind)),
                    std::to_string(v.count), sec_str(v.first),
                    std::to_string(int(v.path))});
      }
      os << vt.render();
    } else {
      os << "no guard violations\n";
    }
    if (s.audit_events > 0) {
      os << "invariant auditor: " << s.audit_checks << " tick(s), "
         << s.audit_failures << " failure(s), pool outstanding peak "
         << s.pool_outstanding_peak << " buffer(s)\n";
    }
    if (s.stash_evictions > 0) {
      os << "fec stash: " << s.stash_evictions << " eviction(s), "
         << stats::Table::fmt(double(s.stash_evicted_bytes) / 1e3, 1)
         << " KB dropped, post-eviction occupancy peak "
         << stats::Table::fmt(double(s.stash_bytes_peak) / 1e3, 1) << " KB\n";
    }
  }

  os << "\n=== stall attribution ===\n";
  if (rep.stalls.empty()) {
    os << "no player stalls in trace\n";
  } else {
    for (const StallReport& s : rep.stalls) {
      os << "stall @ " << sec_str(s.start) << " frame " << s.frame << " ";
      if (s.resolved)
        os << "(" << ms_str(s.duration) << ")";
      else
        os << "(unresolved at trace end)";
      os << ": " << s.attribution << "\n";
    }
    os << rep.stalls.size() << " stall(s), " << r.stalls
       << " counted by player\n";
  }
  return os.str();
}

}  // namespace xlink::telemetry
