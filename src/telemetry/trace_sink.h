// TraceSink: low-overhead per-session event recorder.
//
// A sink is a fixed-capacity ring buffer of telemetry::Event owned by one
// session (nothing is shared across threads; the parallel engine gives
// every session its own sink, matching the one-session-per-worker
// ownership contract in harness/parallel.h). Recording is gated twice:
//
//  - compile time: building with -DXLINK_TELEMETRY=OFF defines
//    XLINK_TELEMETRY_DISABLED and the XLINK_TRACE macro expands to
//    nothing, so hot paths carry zero instrumentation cost;
//  - run time: a sink pointer is nullptr unless tracing was requested for
//    the session, and XLINK_TRACE evaluates its event expression only
//    after the `sink && sink->enabled()` check passes, so a disabled
//    build-in costs one predictable branch per hook.
//
// When the ring wraps, the oldest events are dropped (dropped() reports
// how many) — the tail of a session is the part stall forensics need.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "telemetry/event.h"

namespace xlink::telemetry {

class TraceSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit TraceSink(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  void record(const Event& e) {
    if (buf_.size() < capacity_) {
      buf_.push_back(e);
    } else {
      buf_[head_] = e;
      head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
    }
    ++recorded_;
  }

  /// Events currently retained, oldest first.
  std::vector<Event> snapshot() const {
    std::vector<Event> out;
    out.reserve(buf_.size());
    for (std::size_t i = 0; i < buf_.size(); ++i)
      out.push_back(buf_[(head_ + i) % buf_.size()]);
    return out;
  }

  std::size_t size() const { return buf_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Total events ever recorded (including ones the ring dropped).
  std::uint64_t recorded() const { return recorded_; }
  /// Events lost to ring wrap-around.
  std::uint64_t dropped() const { return recorded_ - buf_.size(); }

  void clear() {
    buf_.clear();
    head_ = 0;
    recorded_ = 0;
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // index of the oldest event once the ring is full
  std::uint64_t recorded_ = 0;
  bool enabled_ = false;
  std::vector<Event> buf_;
};

}  // namespace xlink::telemetry

// Instrumentation hook. `sink` is a TraceSink* (may be nullptr); the event
// expression is evaluated only when the sink exists and is enabled.
#if defined(XLINK_TELEMETRY_DISABLED)
#define XLINK_TRACE(sink, ...) ((void)0)
#else
#define XLINK_TRACE(sink, ...)                                        \
  do {                                                                \
    ::xlink::telemetry::TraceSink* xlink_trace_sink_ = (sink);        \
    if (xlink_trace_sink_ && xlink_trace_sink_->enabled())            \
      xlink_trace_sink_->record(__VA_ARGS__);                         \
  } while (0)
#endif
