// Trace analysis: turns a parsed qlog trace into the reports the
// xlink_qlog CLI prints — per-path timelines, re-injection efficiency
// (redundant bytes vs. stalls), and stall attribution (what the transport
// was doing in the window leading into each rebuffer).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/summary.h"
#include "telemetry/event.h"
#include "telemetry/qlog.h"

namespace xlink::telemetry {

struct PathTimeline {
  std::uint8_t path = 0;
  std::uint64_t tech = kNoValue;  // net::Wireless value if a bind was traced
  std::uint64_t packets_sent = 0;      // server->client data direction
  std::uint64_t bytes_sent = 0;
  std::uint64_t packets_received = 0;  // received at either endpoint
  std::uint64_t packets_lost = 0;
  std::uint64_t lost_time_threshold = 0;
  std::uint64_t ptos = 0;
  std::uint64_t reinjections_from = 0;  // duplicates rescued OFF this path
  std::uint64_t reinjected_bytes_from = 0;
  sim::Time first_activity = 0;
  sim::Time last_activity = 0;
  std::uint64_t min_srtt_us = kNoValue;
  std::uint64_t max_srtt_us = 0;
  std::uint64_t last_cwnd = 0;
  /// (time, PathState::State value) transitions, client side.
  std::vector<std::pair<sim::Time, std::uint64_t>> status_changes;
};

struct StallReport {
  sim::Time start = 0;
  sim::Duration duration = 0;   // 0 when the trace ended mid-stall
  std::uint64_t frame = 0;
  bool resolved = false;
  // Transport state in the attribution window ([start - window, start]).
  std::uint64_t losses_in_window = 0;
  std::uint64_t ptos_in_window = 0;
  std::uint64_t reinjections_in_window = 0;
  std::uint8_t worst_path = 0;        // path with the most losses+ptos
  bool gate_open_at_stall = false;    // last double-threshold decision
  std::string attribution;            // human-readable one-liner
};

struct ReinjectionEfficiency {
  std::uint64_t first_tx_bytes = 0;    // non-duplicate packet_sent bytes
  std::uint64_t reinjected_bytes = 0;  // xlink:reinjection bytes
  std::uint64_t reinjection_events = 0;
  std::uint64_t gate_flips = 0;        // double-threshold decision changes
  std::uint64_t gate_open_decisions = 0;
  std::uint64_t gate_decisions = 0;
  /// Re-injection episodes (bursts separated by >= 1s) not followed by a
  /// player stall within 2s — an upper bound on "stalls avoided".
  std::uint64_t episodes = 0;
  std::uint64_t episodes_without_stall = 0;
  std::uint64_t stalls = 0;

  double redundancy_ratio() const {
    return first_tx_bytes == 0
               ? 0.0
               : static_cast<double>(reinjected_bytes) /
                     static_cast<double>(first_tx_bytes);
  }
};

/// Per-path FEC activity (fec:repair_sent on the sender, fec:recovered /
/// fec:wasted on the receiver).
struct FecPathReport {
  std::uint8_t path = 0;
  std::uint64_t windows = 0;          // protected windows (symbol 0 sent)
  std::uint64_t repair_packets = 0;
  std::uint64_t repair_bytes = 0;     // repair symbol bytes
  std::uint64_t recovered = 0;        // erasures rebuilt from repairs
  std::uint64_t wasted_symbols = 0;   // repair symbols that bought nothing
};

struct FecReport {
  std::vector<FecPathReport> paths;
  std::uint64_t repair_packets = 0;
  std::uint64_t repair_bytes = 0;
  std::uint64_t recovered = 0;
  std::uint64_t wasted_symbols = 0;
  /// Latency from the window's newest source arrival to the rebuilt
  /// datagram (ms) -- the FEC analogue of a retransmission's repair time.
  stats::Summary recovery_latency_ms;

  bool present() const { return repair_packets > 0 || recovered > 0; }
};

/// Per-path congestion-control rate estimation (cc:rate_sample events plus
/// the pacing field of cc:state). Summarises what the delivery-rate
/// sampler fed the controller: how often, how much of it was app-limited,
/// and where the btlbw / min-RTT filters ended up.
struct CcPathReport {
  std::uint8_t path = 0;
  std::uint64_t rate_samples = 0;
  std::uint64_t app_limited_samples = 0;
  std::uint64_t btlbw_peak = 0;         // bytes/sec, max over the trace
  std::uint64_t btlbw_last = 0;         // bytes/sec, final filter value
  std::uint64_t min_rtt_us = kNoValue;  // min over the trace
  std::uint64_t pacing_rate_last = 0;   // bytes/sec, 0 = pacing off
};

struct CcReport {
  std::vector<CcPathReport> paths;
  std::uint64_t rate_samples = 0;
  bool pacing_seen = false;  // any cc:state carried a pacing rate

  bool present() const { return rate_samples > 0 || pacing_seen; }
};

/// ABR controller activity (abr:decision events): how often the chosen
/// rendition moved, in which direction, and the buffer the controller saw
/// at decision time.
struct AbrReport {
  std::uint64_t decisions = 0;
  std::uint64_t switches = 0;
  std::uint64_t up_switches = 0;
  std::uint64_t down_switches = 0;
  std::uint64_t switch_magnitude = 0;     // sum |rung delta|
  std::vector<std::uint64_t> rung_decisions;  // decisions per ladder rung
  std::uint64_t last_rung = 0;
  std::uint64_t estimate_last_bps = 0;    // 0 = final decision had none
  stats::Summary buffer_at_decision_ms;

  bool present() const { return decisions > 0; }
};

/// One entry of the failover timeline: either an injected fault window
/// opening/closing (is_fault) or a path-health transition at an endpoint.
struct FailoverEvent {
  sim::Time t = 0;
  std::uint8_t path = 0;
  Origin origin = Origin::kSession;
  bool is_fault = false;
  /// net::FaultKind (is_fault) or quic::PathState::Health value.
  std::uint64_t code = 0;
  bool fault_active = false;       // window opens vs. closes
  std::uint64_t window = 0;        // index in the FaultPlan
  std::uint64_t pto_count = 0;     // at the health transition
};

/// One (transport error, violation kind) bucket of guard:violation events.
struct ViolationCount {
  std::uint64_t error_code = 0;  // quic::TransportError value
  std::uint64_t kind = 0;        // quic::ViolationKind value
  std::uint64_t count = 0;
  sim::Time first = 0;
  std::uint8_t path = 0;  // path of the first occurrence
};

/// Hostile-peer hardening summary: guard violations, invariant-auditor
/// activity and FEC stash evictions observed in the trace.
struct SecurityReport {
  std::vector<ViolationCount> violations;  // grouped by (error_code, kind)
  std::uint64_t total_violations = 0;
  std::uint64_t audit_events = 0;          // audit:check events in trace
  std::uint64_t audit_checks = 0;          // high-water auditor tick count
  std::uint64_t audit_failures = 0;        // high-water failure count
  std::uint64_t pool_outstanding_peak = 0; // pooled buffers in flight
  std::uint64_t stash_evictions = 0;
  std::uint64_t stash_evicted_bytes = 0;
  std::uint64_t stash_bytes_peak = 0;      // post-eviction stash occupancy

  bool present() const {
    return total_violations > 0 || audit_events > 0 || stash_evictions > 0;
  }
};

struct AnalysisReport {
  QlogMeta meta;
  std::uint64_t events = 0;
  std::uint64_t dropped = 0;
  sim::Time trace_end = 0;
  std::vector<PathTimeline> paths;
  ReinjectionEfficiency reinjection;
  FecReport fec;
  CcReport cc;
  AbrReport abr;
  std::vector<StallReport> stalls;
  SecurityReport security;
  /// Interleaved fault windows and health transitions, trace order.
  std::vector<FailoverEvent> failover_timeline;
  std::uint64_t faults_fired = 0;        // fault windows that opened
  std::uint64_t health_transitions = 0;
  std::uint64_t failovers = 0;           // transitions into probing
  std::uint64_t resurrections = 0;       // probing -> good
  std::uint64_t first_frame_latency_us = kNoValue;
  bool finished = false;
};

/// Window before a stall that attribution inspects (default 1s).
AnalysisReport analyze(const ParsedTrace& trace,
                       sim::Duration attribution_window = sim::seconds(1));

/// Renders the full human-readable report (what xlink_qlog prints).
std::string render_report(const AnalysisReport& report);

}  // namespace xlink::telemetry
