#include "telemetry/qlog.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "telemetry/json.h"

namespace xlink::telemetry {

namespace {

struct NameEntry {
  EventType type;
  const char* name;
};

constexpr NameEntry kNames[] = {
    {EventType::kPacketSent, "transport:packet_sent"},
    {EventType::kPacketReceived, "transport:packet_received"},
    {EventType::kAckMp, "transport:ack_mp_received"},
    {EventType::kLoss, "recovery:packet_lost"},
    {EventType::kPto, "recovery:probe_timeout"},
    {EventType::kCcState, "recovery:metrics_updated"},
    {EventType::kPathStatus, "transport:path_status"},
    {EventType::kPathBound, "transport:path_bound"},
    {EventType::kReinjection, "xlink:reinjection"},
    {EventType::kDoubleThresholdGate, "xlink:double_threshold_gate"},
    {EventType::kQoeSignal, "xlink:qoe_signal"},
    {EventType::kPlayerFirstFrame, "player:first_frame"},
    {EventType::kPlayerStall, "player:stall"},
    {EventType::kPlayerResume, "player:resume"},
    {EventType::kPlayerFinished, "player:finished"},
    {EventType::kFault, "fault:injected"},
    {EventType::kPathHealth, "transport:path_health"},
    {EventType::kFecRepairSent, "fec:repair_sent"},
    {EventType::kFecRecovered, "fec:recovered"},
    {EventType::kFecWasted, "fec:wasted"},
    {EventType::kGuardViolation, "guard:violation"},
    {EventType::kAuditCheck, "audit:check"},
    {EventType::kFecStashEvicted, "fec:stash_evicted"},
    {EventType::kCcRateSample, "cc:rate_sample"},
    {EventType::kAbrDecision, "abr:decision"},
};

const char* origin_name(Origin o) {
  switch (o) {
    case Origin::kServer: return "server";
    case Origin::kClient: return "client";
    case Origin::kSession: return "session";
  }
  return "server";
}

bool origin_from_name(const std::string& s, Origin& out) {
  if (s == "server") out = Origin::kServer;
  else if (s == "client") out = Origin::kClient;
  else if (s == "session") out = Origin::kSession;
  else
    return false;
  return true;
}

const char* loss_reason_name(std::uint8_t reason) {
  return reason == 0 ? "packet_threshold" : "time_threshold";
}

void write_event_data(JsonWriter& w, const Event& e) {
  w.kv("origin", origin_name(e.origin));
  switch (e.type) {
    case EventType::kPacketSent:
      w.kv("path", std::uint64_t{e.path});
      w.kv("pn", e.a);
      w.kv("bytes", e.b);
      w.kv("ack_eliciting", (e.flag & 1) != 0);
      w.kv("is_reinjection", (e.flag & 2) != 0);
      break;
    case EventType::kPacketReceived:
      w.kv("path", std::uint64_t{e.path});
      w.kv("pn", e.a);
      w.kv("bytes", e.b);
      break;
    case EventType::kAckMp:
      w.kv("path", std::uint64_t{e.path});
      w.kv("largest_acked", e.a);
      w.kv("acked_bytes", e.b);
      if (e.flag & 1) w.kv("rtt_us", e.c);
      break;
    case EventType::kLoss:
      w.kv("path", std::uint64_t{e.path});
      w.kv("pn", e.a);
      w.kv("bytes", e.b);
      w.kv("reason", loss_reason_name(e.flag));
      break;
    case EventType::kPto:
      w.kv("path", std::uint64_t{e.path});
      w.kv("pto_count", e.a);
      break;
    case EventType::kCcState:
      w.kv("path", std::uint64_t{e.path});
      w.kv("cwnd", e.a);
      w.kv("bytes_in_flight", e.b);
      if (e.c != kNoValue) w.kv("ssthresh", e.c);
      w.kv("srtt_us", std::uint64_t{e.extra});
      w.kv("slow_start", (e.flag & 1) != 0);
      if (e.d != kNoValue) w.kv("pacing_rate", e.d);
      break;
    case EventType::kPathStatus:
      w.kv("path", std::uint64_t{e.path});
      w.kv("state", e.a);
      break;
    case EventType::kPathBound:
      w.kv("path", std::uint64_t{e.path});
      w.kv("tech", e.a);
      break;
    case EventType::kReinjection:
      w.kv("origin_path", std::uint64_t{e.path});
      w.kv("bytes", e.a);
      w.kv("pn", e.b);
      break;
    case EventType::kDoubleThresholdGate:
      w.kv("allowed", (e.flag & 1) != 0);
      w.kv("rule", std::uint64_t{e.extra});
      if (e.a != kNoValue) w.kv("play_time_left_us", e.a);
      if (e.b != kNoValue) w.kv("deliver_time_max_us", e.b);
      break;
    case EventType::kQoeSignal:
      w.kv("cached_bytes", e.a);
      w.kv("cached_frames", e.b);
      w.kv("bps", e.c);
      break;
    case EventType::kPlayerFirstFrame:
      w.kv("latency_us", e.a);
      break;
    case EventType::kPlayerStall:
      w.kv("frame", e.a);
      break;
    case EventType::kPlayerResume:
      w.kv("stall_us", e.a);
      w.kv("frame", e.b);
      break;
    case EventType::kPlayerFinished:
      w.kv("frames", e.a);
      break;
    case EventType::kFault:
      w.kv("path", std::uint64_t{e.path});
      w.kv("kind", e.a);
      w.kv("window", e.b);
      w.kv("active", (e.flag & 1) != 0);
      break;
    case EventType::kPathHealth:
      w.kv("path", std::uint64_t{e.path});
      w.kv("health", e.a);
      w.kv("pto_count", e.b);
      break;
    case EventType::kFecRepairSent:
      w.kv("path", std::uint64_t{e.path});
      w.kv("window", e.a);
      w.kv("bytes", e.b);
      w.kv("first_pn", e.c);
      w.kv("k", std::uint64_t{e.extra & 0xff});
      w.kv("r", std::uint64_t{(e.extra >> 8) & 0xff});
      w.kv("symbol_index", std::uint64_t{e.flag});
      break;
    case EventType::kFecRecovered:
      w.kv("path", std::uint64_t{e.path});
      w.kv("pn", e.a);
      w.kv("window", e.b);
      w.kv("latency_us", e.c);
      break;
    case EventType::kFecWasted:
      w.kv("path", std::uint64_t{e.path});
      w.kv("window", e.a);
      w.kv("symbols", e.b);
      break;
    case EventType::kGuardViolation:
      w.kv("path", std::uint64_t{e.path});
      w.kv("error_code", e.a);
      w.kv("kind", e.b);
      w.kv("observed", e.c);
      break;
    case EventType::kAuditCheck:
      w.kv("checks", e.a);
      w.kv("failures", e.b);
      w.kv("pool_outstanding", e.c);
      break;
    case EventType::kFecStashEvicted:
      w.kv("path", std::uint64_t{e.path});
      w.kv("pn", e.a);
      w.kv("bytes", e.b);
      w.kv("stash_bytes", e.c);
      break;
    case EventType::kCcRateSample:
      w.kv("path", std::uint64_t{e.path});
      w.kv("rate", e.a);
      w.kv("btlbw", e.b);
      w.kv("min_rtt_us", e.c);
      w.kv("app_limited", (e.flag & 1) != 0);
      break;
    case EventType::kAbrDecision:
      w.kv("chunk", e.a);
      w.kv("rung", e.b);
      if (e.d != kNoValue) w.kv("prev_rung", e.d);
      if (e.c != kNoValue) w.kv("estimate_bps", e.c);
      w.kv("buffer_ms", std::uint64_t{e.extra});
      break;
  }
}

bool read_bool(const JsonValue& data, const char* key) {
  const JsonValue* v = data.get(key);
  return v && v->kind == JsonValue::Kind::kBool && v->boolean;
}

std::optional<Event> event_from_json(const JsonValue& entry) {
  EventType type = EventType::kPacketSent;
  if (!event_type_from_name(entry.get_str("name").c_str(), type))
    return std::nullopt;
  const JsonValue* data = entry.get("data");
  if (!data || !data->is_object()) return std::nullopt;

  Event e;
  e.t = entry.get_u64("time");
  e.type = type;
  if (!origin_from_name(data->get_str("origin", "server"), e.origin))
    return std::nullopt;
  const auto path = static_cast<std::uint8_t>(data->get_u64("path"));
  switch (type) {
    case EventType::kPacketSent:
      e = Event::packet_sent(e.t, e.origin, path, data->get_u64("pn"),
                             data->get_u64("bytes"),
                             read_bool(*data, "ack_eliciting"),
                             read_bool(*data, "is_reinjection"));
      break;
    case EventType::kPacketReceived:
      e = Event::packet_received(e.t, e.origin, path, data->get_u64("pn"),
                                 data->get_u64("bytes"));
      break;
    case EventType::kAckMp: {
      const bool has_rtt = data->get("rtt_us") != nullptr;
      e = Event::ack_mp(e.t, e.origin, path, data->get_u64("largest_acked"),
                        data->get_u64("acked_bytes"), data->get_u64("rtt_us"),
                        has_rtt);
      break;
    }
    case EventType::kLoss:
      e = Event::loss(e.t, e.origin, path, data->get_u64("pn"),
                      data->get_u64("bytes"),
                      data->get_str("reason") == "time_threshold" ? 1 : 0);
      break;
    case EventType::kPto:
      e = Event::pto(e.t, e.origin, path, data->get_u64("pto_count"));
      break;
    case EventType::kCcState:
      e = Event::cc_state(e.t, e.origin, path, data->get_u64("cwnd"),
                          data->get_u64("bytes_in_flight"),
                          data->get("ssthresh") ? data->get_u64("ssthresh")
                                                : kNoValue,
                          data->get_u64("srtt_us"),
                          read_bool(*data, "slow_start"),
                          data->get("pacing_rate")
                              ? data->get_u64("pacing_rate")
                              : kNoValue);
      break;
    case EventType::kPathStatus:
      e = Event::path_status(e.t, e.origin, path, data->get_u64("state"));
      break;
    case EventType::kPathBound:
      e = Event::path_bound(e.t, e.origin, path, data->get_u64("tech"));
      break;
    case EventType::kReinjection:
      e = Event::reinjection(
          e.t, e.origin,
          static_cast<std::uint8_t>(data->get_u64("origin_path")),
          data->get_u64("bytes"), data->get_u64("pn"));
      break;
    case EventType::kDoubleThresholdGate:
      e = Event::double_threshold_gate(
          e.t, e.origin, read_bool(*data, "allowed"),
          static_cast<std::uint32_t>(data->get_u64("rule")),
          data->get("play_time_left_us")
              ? data->get_u64("play_time_left_us")
              : kNoValue,
          data->get("deliver_time_max_us")
              ? data->get_u64("deliver_time_max_us")
              : kNoValue);
      break;
    case EventType::kQoeSignal:
      e = Event::qoe_signal(e.t, e.origin, data->get_u64("cached_bytes"),
                            data->get_u64("cached_frames"),
                            data->get_u64("bps"));
      break;
    case EventType::kPlayerFirstFrame:
      e = Event::player_first_frame(e.t, data->get_u64("latency_us"));
      break;
    case EventType::kPlayerStall:
      e = Event::player_stall(e.t, data->get_u64("frame"));
      break;
    case EventType::kPlayerResume:
      e = Event::player_resume(e.t, data->get_u64("stall_us"),
                               data->get_u64("frame"));
      break;
    case EventType::kPlayerFinished:
      e = Event::player_finished(e.t, data->get_u64("frames"));
      break;
    case EventType::kFault:
      e = Event::fault(e.t, path, data->get_u64("kind"),
                       read_bool(*data, "active"), data->get_u64("window"));
      break;
    case EventType::kPathHealth:
      e = Event::path_health(e.t, e.origin, path, data->get_u64("health"),
                             data->get_u64("pto_count"));
      break;
    case EventType::kFecRepairSent:
      e = Event::fec_repair_sent(
          e.t, e.origin, path, data->get_u64("window"), data->get_u64("bytes"),
          data->get_u64("first_pn"),
          static_cast<std::uint8_t>(data->get_u64("k")),
          static_cast<std::uint8_t>(data->get_u64("r")),
          static_cast<std::uint8_t>(data->get_u64("symbol_index")));
      break;
    case EventType::kFecRecovered:
      e = Event::fec_recovered(e.t, e.origin, path, data->get_u64("pn"),
                               data->get_u64("window"),
                               data->get_u64("latency_us"));
      break;
    case EventType::kFecWasted:
      e = Event::fec_wasted(e.t, e.origin, path, data->get_u64("window"),
                            data->get_u64("symbols"));
      break;
    case EventType::kGuardViolation:
      e = Event::guard_violation(e.t, e.origin, path,
                                 data->get_u64("error_code"),
                                 data->get_u64("kind"),
                                 data->get_u64("observed"));
      break;
    case EventType::kAuditCheck:
      e = Event::audit_check(e.t, e.origin, data->get_u64("checks"),
                             data->get_u64("failures"),
                             data->get_u64("pool_outstanding"));
      break;
    case EventType::kFecStashEvicted:
      e = Event::fec_stash_evicted(e.t, e.origin, path, data->get_u64("pn"),
                                   data->get_u64("bytes"),
                                   data->get_u64("stash_bytes"));
      break;
    case EventType::kCcRateSample:
      e = Event::cc_rate_sample(e.t, e.origin, path, data->get_u64("rate"),
                                data->get_u64("btlbw"),
                                data->get_u64("min_rtt_us"),
                                read_bool(*data, "app_limited"));
      break;
    case EventType::kAbrDecision:
      e = Event::abr_decision(
          e.t, data->get_u64("chunk"), data->get_u64("rung"),
          data->get("prev_rung") ? data->get_u64("prev_rung") : kNoValue,
          data->get("estimate_bps") ? data->get_u64("estimate_bps")
                                    : kNoValue,
          data->get_u64("buffer_ms"));
      break;
  }
  return e;
}

}  // namespace

const char* event_name(EventType type) {
  for (const auto& entry : kNames)
    if (entry.type == type) return entry.name;
  return "unknown";
}

bool event_type_from_name(const char* name, EventType& out) {
  for (const auto& entry : kNames) {
    if (std::strcmp(entry.name, name) == 0) {
      out = entry.type;
      return true;
    }
  }
  return false;
}

void write_qlog(std::ostream& os, const std::vector<Event>& events,
                const QlogMeta& meta, std::uint64_t recorded,
                std::uint64_t dropped) {
  JsonWriter w(os, 1);
  w.begin_object();
  w.kv("qlog_version", "0.3");
  w.kv("qlog_format", "JSON");
  w.kv("title", meta.title.empty() ? "xlink trace" : meta.title);
  w.key("traces").begin_array();
  w.begin_object();
  w.key("common_fields").begin_object();
  w.kv("time_format", "relative");
  w.kv("reference_time", std::uint64_t{0});
  w.kv("time_unit", "us");
  w.kv("scenario", meta.scenario);
  w.kv("scheme", meta.scheme);
  w.kv("seed", meta.seed);
  w.end_object();
  w.key("vantage_point").begin_object();
  w.kv("name", "xlink-sim");
  w.kv("type", "simulation");
  w.end_object();
  w.key("stats").begin_object();
  w.kv("recorded", recorded == 0 ? events.size() : recorded);
  w.kv("dropped", dropped);
  w.end_object();
  w.key("events").begin_array();
  for (const Event& e : events) {
    w.begin_object();
    w.kv("time", e.t);
    w.kv("name", event_name(e.type));
    w.key("data").begin_object();
    write_event_data(w, e);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_array();
  w.end_object();
  os << '\n';
}

bool write_qlog_file(const std::string& path, const TraceSink& sink,
                     const QlogMeta& meta) {
  std::ofstream out(path);
  if (!out) return false;
  write_qlog(out, sink, meta);
  return out.good();
}

std::optional<ParsedTrace> parse_qlog(const std::string& text) {
  const auto doc = parse_json(text);
  if (!doc || !doc->is_object()) return std::nullopt;
  const JsonValue* traces = doc->get("traces");
  if (!traces || !traces->is_array() || traces->array.empty())
    return std::nullopt;
  const JsonValue& trace = traces->array.front();

  ParsedTrace out;
  out.meta.title = doc->get_str("title");
  if (const JsonValue* cf = trace.get("common_fields")) {
    out.meta.scenario = cf->get_str("scenario");
    out.meta.scheme = cf->get_str("scheme");
    out.meta.seed = cf->get_u64("seed");
  }
  if (const JsonValue* stats = trace.get("stats")) {
    out.recorded = stats->get_u64("recorded");
    out.dropped = stats->get_u64("dropped");
  }
  const JsonValue* events = trace.get("events");
  if (!events || !events->is_array()) return std::nullopt;
  out.events.reserve(events->array.size());
  for (const JsonValue& entry : events->array) {
    auto e = event_from_json(entry);
    if (!e) return std::nullopt;
    out.events.push_back(*e);
  }
  return out;
}

std::optional<ParsedTrace> parse_qlog_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_qlog(ss.str());
}

}  // namespace xlink::telemetry
