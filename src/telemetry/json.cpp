#include "telemetry/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace xlink::telemetry {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------- writer

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i)
    for (int j = 0; j < indent_; ++j) os_ << ' ';
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  Level& top = stack_.back();
  if (top.has_items) os_ << ',';
  top.has_items = true;
  newline_indent();
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back({false, false});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had = !stack_.empty() && stack_.back().has_items;
  stack_.pop_back();
  if (had) newline_indent();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back({true, false});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had = !stack_.empty() && stack_.back().has_items;
  stack_.pop_back();
  if (had) newline_indent();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  Level& top = stack_.back();
  if (top.has_items) os_ << ',';
  top.has_items = true;
  newline_indent();
  os_ << '"' << json_escape(k) << "\": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  os_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {  // JSON has no inf/nan
    os_ << "null";
    return *this;
  }
  // Integral doubles print as integers; others with enough digits to
  // round-trip the values the simulator reports.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    os_ << buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os_ << buf;
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::null_value() {
  before_value();
  os_ << "null";
  return *this;
}

// ---------------------------------------------------------------- parser

const JsonValue* JsonValue::get(const std::string& k) const {
  if (kind != Kind::kObject) return nullptr;
  auto it = object.find(k);
  return it == object.end() ? nullptr : &it->second;
}

std::uint64_t JsonValue::get_u64(const std::string& k,
                                 std::uint64_t def) const {
  const JsonValue* v = get(k);
  if (!v || v->kind != Kind::kNumber || v->number < 0) return def;
  return static_cast<std::uint64_t>(v->number);
}

double JsonValue::get_num(const std::string& k, double def) const {
  const JsonValue* v = get(k);
  return v && v->kind == Kind::kNumber ? v->number : def;
}

std::string JsonValue::get_str(const std::string& k,
                               const std::string& def) const {
  const JsonValue* v = get(k);
  return v && v->kind == Kind::kString ? v->str : def;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.str);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!eat(':')) return false;
      JsonValue v;
      if (!parse_value(v)) return false;
      out.object.emplace(std::move(key), std::move(v));
      skip_ws();
      if (eat(',')) continue;
      return eat('}');
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      JsonValue v;
      if (!parse_value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (eat(',')) continue;
      return eat(']');
    }
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return false;
          }
          // Encode as UTF-8 (BMP only; surrogate pairs unsupported — the
          // exporter never emits them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: return false;
      }
    }
    return false;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    auto take_digits = [&] {
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        digits = true;
      }
    };
    take_digits();
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      take_digits();
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
      take_digits();
    }
    if (!digits) return false;
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(s_.c_str() + start, nullptr);
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> parse_json(const std::string& text) {
  JsonValue v;
  Parser p(text);
  if (!p.parse(v)) return std::nullopt;
  return v;
}

}  // namespace xlink::telemetry
