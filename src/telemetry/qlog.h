// qlog-flavored JSON export/import of a TraceSink.
//
// One traced connection (session) = one JSON document, shaped after the
// qlog endpoint-tracing drafts: a top-level envelope with qlog_version and
// a single trace whose "events" array holds {"time", "name", "data"}
// entries. Times are integer microseconds of simulated time (exact
// round-trip; common_fields records the unit). Event names follow the
// qlog "category:name" convention ("transport:packet_sent",
// "recovery:packet_lost", ...) with XLINK-specific events under the
// "xlink:" and "player:" categories.
//
// import (parse_qlog) reconstructs the typed Event stream, which is what
// the round-trip tests assert on and what the xlink_qlog analyzer
// consumes.
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "telemetry/event.h"
#include "telemetry/trace_sink.h"

namespace xlink::telemetry {

/// Trace-level metadata recorded in common_fields.
struct QlogMeta {
  std::string title;     // e.g. "xlink exemplar"
  std::string scenario;  // e.g. "fig10_tth_400_900"
  std::string scheme;    // transport scheme name
  std::uint64_t seed = 0;
};

void write_qlog(std::ostream& os, const std::vector<Event>& events,
                const QlogMeta& meta, std::uint64_t recorded = 0,
                std::uint64_t dropped = 0);

inline void write_qlog(std::ostream& os, const TraceSink& sink,
                       const QlogMeta& meta) {
  write_qlog(os, sink.snapshot(), meta, sink.recorded(), sink.dropped());
}

/// Writes to `path`; returns false on I/O failure.
bool write_qlog_file(const std::string& path, const TraceSink& sink,
                     const QlogMeta& meta);

struct ParsedTrace {
  QlogMeta meta;
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  std::vector<Event> events;
};

/// Parses a document produced by write_qlog; nullopt on malformed input
/// or unknown event names.
std::optional<ParsedTrace> parse_qlog(const std::string& text);
std::optional<ParsedTrace> parse_qlog_file(const std::string& path);

}  // namespace xlink::telemetry
