#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>

#include "telemetry/json.h"

namespace xlink::telemetry {

namespace {
constexpr int kUnderflowBucket = -1075;  // below every positive exponent

int bucket_of(double v) {
  if (!(v > 0.0)) return kUnderflowBucket;
  return std::ilogb(v);
}

double bucket_upper(int bucket) {
  if (bucket == kUnderflowBucket) return 0.0;
  return std::ldexp(1.0, bucket + 1);
}
}  // namespace

void Histogram::observe(double v) {
  if (count == 0) {
    min = max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  ++count;
  sum += v;
  ++buckets[bucket_of(v)];
}

void Histogram::merge(const Histogram& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  for (const auto& [b, n] : other.buckets) buckets[b] += n;
}

double Histogram::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (const auto& [b, n] : buckets) {
    seen += n;
    if (seen >= target) return std::min(bucket_upper(b), max);
  }
  return max;
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

const Histogram* MetricsRegistry::histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
  for (const auto& [name, v] : other.gauges_) gauges_[name] = v;
  for (const auto& [name, h] : other.histograms_) histograms_[name].merge(h);
}

void MetricsRegistry::write_json(std::ostream& os, int indent) const {
  JsonWriter w(os, indent);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : counters_) w.kv(name, v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : gauges_) w.kv(name, v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.kv("count", h.count);
    w.kv("sum", h.sum);
    w.kv("min", h.min);
    w.kv("max", h.max);
    w.kv("mean", h.mean());
    w.kv("p50", h.percentile(50));
    w.kv("p95", h.percentile(95));
    w.kv("p99", h.percentile(99));
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace xlink::telemetry
