// Typed trace events for qlog-style endpoint tracing.
//
// Every event is a fixed-size POD so a per-session ring buffer of them is
// cache-friendly and recording is a couple of stores. The price is that
// field names are positional: each EventType documents what the generic
// slots (`a`, `b`, `c`, `extra`, `flag`) mean for it, and qlog.cpp maps
// them to named JSON fields on export. Keep the two in sync.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace xlink::telemetry {

/// Where an event was recorded. Client and server share one simulated
/// timeline, so one trace interleaves both endpoints plus session-level
/// components (the player), distinguished by this tag.
enum class Origin : std::uint8_t {
  kServer = 0,
  kClient = 1,
  kSession = 2,
};

enum class EventType : std::uint8_t {
  kPacketSent = 0,        // path; a=pn, b=wire bytes;
                          // flag bit0=ack_eliciting, bit1=is_reinjection
  kPacketReceived,        // path; a=pn, b=wire bytes
  kAckMp,                 // path=acked path; a=largest acked pn,
                          // b=newly acked bytes; c=rtt sample (us);
                          // flag bit0=rtt sample present
  kLoss,                  // path; a=pn, b=wire bytes;
                          // flag=LossDetection reason (0=packet threshold,
                          // 1=time threshold)
  kPto,                   // path; a=pto_count after this timeout
  kCcState,               // path; a=cwnd bytes, b=bytes in flight,
                          // c=ssthresh bytes (kNoValue -> omitted on export);
                          // extra=srtt (us, saturated); flag=in_slow_start;
                          // d=pacing rate (bytes/s, kNoValue -> omitted)
  kPathStatus,            // path; a=PathState::State as integer
  kPathBound,             // path; a=net::Wireless as integer (harness wiring)
  kReinjection,           // path=origin path; a=bytes duplicated, b=pn of
                          // the re-injected record
  kDoubleThresholdGate,   // flag=decision (1=re-injection allowed);
                          // extra=rule (DoubleThresholdController::Rule);
                          // a=play-time-left dt (us), b=deliver_time_max
                          // (us); kNoValue when not computable
  kQoeSignal,             // a=cached_bytes, b=cached_frames, c=bitrate bps
  kPlayerFirstFrame,      // a=first-frame latency (us)
  kPlayerStall,           // a=index of the frame that missed its deadline
  kPlayerResume,          // a=stall duration (us), b=frame index
  kPlayerFinished,        // a=frames played
  kFault,                 // path=network path index; a=net::FaultKind as
                          // integer, b=window index in the plan;
                          // flag bit0=1 window opens, 0 window closes
  kPathHealth,            // path; a=PathState::Health as integer,
                          // b=pto_count at the transition
  kFecRepairSent,         // path=protected path; a=window id, b=repair
                          // symbol bytes; c=window first pn; extra=k | r<<8;
                          // flag=symbol index
  kFecRecovered,          // path; a=recovered pn, b=window id;
                          // c=recovery latency vs the loss (us)
  kFecWasted,             // path; a=window id, b=wasted repair symbols
                          // (window completed without needing them)
  kGuardViolation,        // path; a=transport error code, b=ViolationKind
                          // as integer, c=observed value (count/bytes)
  kAuditCheck,            // a=checks run this tick, b=total failures so
                          // far, c=outstanding pooled buffers
  kFecStashEvicted,       // path; a=evicted pn, b=evicted bytes,
                          // c=stash bytes after eviction
  kCcRateSample,          // path; a=delivery rate (bytes/s), b=windowed-max
                          // btlbw (bytes/s), c=windowed-min rtt (us);
                          // flag bit0=sample is app-limited
  kAbrDecision,           // a=chunk index, b=chosen ladder rung,
                          // c=rate estimate used (bps, kNoValue=none),
                          // d=previous rung (kNoValue=first decision);
                          // extra=buffer level (ms, saturated)
};

/// Sentinel for "value not available" in `a`/`b`/`c`.
constexpr std::uint64_t kNoValue = ~std::uint64_t{0};

/// qlog-style event name ("category:name"), e.g. "transport:packet_sent".
const char* event_name(EventType type);

/// Inverse of event_name; returns false for unknown names.
bool event_type_from_name(const char* name, EventType& out);

struct Event {
  sim::Time t = 0;
  EventType type = EventType::kPacketSent;
  Origin origin = Origin::kServer;
  std::uint8_t path = 0;
  std::uint8_t flag = 0;
  std::uint32_t extra = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  /// Fourth generic slot (brace-init factories that predate it leave it
  /// zero). Only kCcState uses it so far: pacing rate in bytes/sec.
  std::uint64_t d = 0;

  bool operator==(const Event&) const = default;

  // ---- factories (keep call sites self-documenting) -------------------
  static Event packet_sent(sim::Time t, Origin o, std::uint8_t path,
                           std::uint64_t pn, std::uint64_t bytes,
                           bool ack_eliciting, bool is_reinjection) {
    return {t,
            EventType::kPacketSent,
            o,
            path,
            static_cast<std::uint8_t>((ack_eliciting ? 1 : 0) |
                                      (is_reinjection ? 2 : 0)),
            0,
            pn,
            bytes,
            0};
  }
  static Event packet_received(sim::Time t, Origin o, std::uint8_t path,
                               std::uint64_t pn, std::uint64_t bytes) {
    return {t, EventType::kPacketReceived, o, path, 0, 0, pn, bytes, 0};
  }
  static Event ack_mp(sim::Time t, Origin o, std::uint8_t path,
                      std::uint64_t largest, std::uint64_t acked_bytes,
                      std::uint64_t rtt_sample_us, bool has_sample) {
    return {t,      EventType::kAckMp, o,           path,
            static_cast<std::uint8_t>(has_sample ? 1 : 0), 0,
            largest, acked_bytes, rtt_sample_us};
  }
  static Event loss(sim::Time t, Origin o, std::uint8_t path,
                    std::uint64_t pn, std::uint64_t bytes,
                    std::uint8_t reason) {
    return {t, EventType::kLoss, o, path, reason, 0, pn, bytes, 0};
  }
  static Event pto(sim::Time t, Origin o, std::uint8_t path,
                   std::uint64_t count) {
    return {t, EventType::kPto, o, path, 0, 0, count, 0, 0};
  }
  static Event cc_state(sim::Time t, Origin o, std::uint8_t path,
                        std::uint64_t cwnd, std::uint64_t inflight,
                        std::uint64_t ssthresh, std::uint64_t srtt_us,
                        bool slow_start,
                        std::uint64_t pacing_rate = kNoValue) {
    return {t,
            EventType::kCcState,
            o,
            path,
            static_cast<std::uint8_t>(slow_start ? 1 : 0),
            static_cast<std::uint32_t>(
                srtt_us > 0xffffffffull ? 0xffffffffull : srtt_us),
            cwnd,
            inflight,
            ssthresh,
            pacing_rate};
  }
  static Event path_status(sim::Time t, Origin o, std::uint8_t path,
                           std::uint64_t state) {
    return {t, EventType::kPathStatus, o, path, 0, 0, state, 0, 0};
  }
  static Event path_bound(sim::Time t, Origin o, std::uint8_t path,
                          std::uint64_t tech) {
    return {t, EventType::kPathBound, o, path, 0, 0, tech, 0, 0};
  }
  static Event reinjection(sim::Time t, Origin o, std::uint8_t origin_path,
                           std::uint64_t bytes, std::uint64_t pn) {
    return {t, EventType::kReinjection, o, origin_path, 0, 0, bytes, pn, 0};
  }
  static Event double_threshold_gate(sim::Time t, Origin o, bool allowed,
                                     std::uint32_t rule, std::uint64_t dt_us,
                                     std::uint64_t deliver_time_max_us) {
    return {t,
            EventType::kDoubleThresholdGate,
            o,
            0,
            static_cast<std::uint8_t>(allowed ? 1 : 0),
            rule,
            dt_us,
            deliver_time_max_us,
            0};
  }
  static Event qoe_signal(sim::Time t, Origin o, std::uint64_t cached_bytes,
                          std::uint64_t cached_frames, std::uint64_t bps) {
    return {t, EventType::kQoeSignal, o, 0, 0, 0, cached_bytes, cached_frames,
            bps};
  }
  static Event player_first_frame(sim::Time t, std::uint64_t latency_us) {
    return {t,          EventType::kPlayerFirstFrame, Origin::kSession, 0, 0, 0,
            latency_us, 0,
            0};
  }
  static Event player_stall(sim::Time t, std::uint64_t frame) {
    return {t, EventType::kPlayerStall, Origin::kSession, 0, 0, 0, frame, 0, 0};
  }
  static Event player_resume(sim::Time t, std::uint64_t stall_us,
                             std::uint64_t frame) {
    return {t,        EventType::kPlayerResume, Origin::kSession, 0, 0, 0,
            stall_us, frame,
            0};
  }
  static Event player_finished(sim::Time t, std::uint64_t frames) {
    return {t, EventType::kPlayerFinished, Origin::kSession, 0, 0, 0, frames, 0,
            0};
  }
  static Event fault(sim::Time t, std::uint8_t path, std::uint64_t kind,
                     bool active, std::uint64_t window) {
    return {t,
            EventType::kFault,
            Origin::kSession,
            path,
            static_cast<std::uint8_t>(active ? 1 : 0),
            0,
            kind,
            window,
            0};
  }
  static Event path_health(sim::Time t, Origin o, std::uint8_t path,
                           std::uint64_t health, std::uint64_t pto_count) {
    return {t, EventType::kPathHealth, o, path, 0, 0, health, pto_count, 0};
  }
  static Event fec_repair_sent(sim::Time t, Origin o, std::uint8_t path,
                               std::uint64_t window, std::uint64_t bytes,
                               std::uint64_t first_pn, std::uint8_t k,
                               std::uint8_t r, std::uint8_t symbol_index) {
    return {t,
            EventType::kFecRepairSent,
            o,
            path,
            symbol_index,
            static_cast<std::uint32_t>(k) |
                (static_cast<std::uint32_t>(r) << 8),
            window,
            bytes,
            first_pn};
  }
  static Event fec_recovered(sim::Time t, Origin o, std::uint8_t path,
                             std::uint64_t pn, std::uint64_t window,
                             std::uint64_t latency_us) {
    return {t, EventType::kFecRecovered, o, path, 0, 0, pn, window,
            latency_us};
  }
  static Event fec_wasted(sim::Time t, Origin o, std::uint8_t path,
                          std::uint64_t window, std::uint64_t symbols) {
    return {t, EventType::kFecWasted, o, path, 0, 0, window, symbols, 0};
  }
  static Event guard_violation(sim::Time t, Origin o, std::uint8_t path,
                               std::uint64_t error_code, std::uint64_t kind,
                               std::uint64_t observed) {
    return {t, EventType::kGuardViolation, o, path, 0, 0, error_code, kind,
            observed};
  }
  static Event audit_check(sim::Time t, Origin o, std::uint64_t checks,
                           std::uint64_t failures,
                           std::uint64_t pool_outstanding) {
    return {t, EventType::kAuditCheck, o, 0, 0, 0, checks, failures,
            pool_outstanding};
  }
  static Event fec_stash_evicted(sim::Time t, Origin o, std::uint8_t path,
                                 std::uint64_t pn, std::uint64_t bytes,
                                 std::uint64_t stash_bytes_after) {
    return {t, EventType::kFecStashEvicted, o, path, 0, 0, pn, bytes,
            stash_bytes_after};
  }
  static Event cc_rate_sample(sim::Time t, Origin o, std::uint8_t path,
                              std::uint64_t rate_bytes_per_sec,
                              std::uint64_t btlbw_bytes_per_sec,
                              std::uint64_t min_rtt_us, bool app_limited) {
    return {t,
            EventType::kCcRateSample,
            o,
            path,
            static_cast<std::uint8_t>(app_limited ? 1 : 0),
            0,
            rate_bytes_per_sec,
            btlbw_bytes_per_sec,
            min_rtt_us};
  }
  static Event abr_decision(sim::Time t, std::uint64_t chunk,
                            std::uint64_t rung, std::uint64_t prev_rung,
                            std::uint64_t estimate_bps,
                            std::uint64_t buffer_ms) {
    return {t,
            EventType::kAbrDecision,
            Origin::kSession,
            0,
            0,
            static_cast<std::uint32_t>(
                buffer_ms > 0xffffffffull ? 0xffffffffull : buffer_ms),
            chunk,
            rung,
            estimate_bps,
            prev_rung};
  }
};

static_assert(sizeof(Event) <= 48, "Event must stay ring-buffer friendly");

}  // namespace xlink::telemetry
