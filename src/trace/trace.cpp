#include "trace/trace.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace xlink::trace {

LinkTrace::LinkTrace(std::vector<std::uint32_t> opportunities_ms)
    : ms_(std::move(opportunities_ms)) {
  if (!std::is_sorted(ms_.begin(), ms_.end()))
    throw std::runtime_error("LinkTrace: opportunities must be non-decreasing");
  period_ms_ = ms_.empty() ? 1 : std::max<std::uint32_t>(ms_.back(), 1);
}

LinkTrace LinkTrace::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("LinkTrace: cannot open " + path);
  std::vector<std::uint32_t> ms;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::size_t pos = 0;
    const long v = std::stol(line, &pos);
    if (v < 0) throw std::runtime_error("LinkTrace: negative timestamp");
    ms.push_back(static_cast<std::uint32_t>(v));
  }
  return LinkTrace(std::move(ms));
}

void LinkTrace::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("LinkTrace: cannot write " + path);
  for (std::uint32_t t : ms_) out << t << '\n';
}

sim::Time LinkTrace::opportunity_time(std::uint64_t n) const {
  if (ms_.empty()) return 0;
  const std::uint64_t period = n / ms_.size();
  const std::size_t idx = static_cast<std::size_t>(n % ms_.size());
  return sim::millis(period * period_ms_ + ms_[idx]);
}

std::uint64_t LinkTrace::first_opportunity_at_or_after(sim::Time at) const {
  if (ms_.empty()) return 0;
  const std::uint64_t at_ms = at / sim::kMillisecond +
                              ((at % sim::kMillisecond) ? 1 : 0);
  const std::uint64_t period = at_ms / period_ms_;
  const auto within = static_cast<std::uint32_t>(at_ms % period_ms_);
  const auto it = std::lower_bound(ms_.begin(), ms_.end(), within);
  if (it == ms_.end())
    return (period + 1) * ms_.size();
  return period * ms_.size() + static_cast<std::uint64_t>(it - ms_.begin());
}

double LinkTrace::average_bps() const {
  if (ms_.empty()) return 0.0;
  const double bits = static_cast<double>(ms_.size()) * kDeliveryMtu * 8.0;
  return bits / (static_cast<double>(period_ms_) / 1000.0);
}

double LinkTrace::window_bps(sim::Time from, sim::Duration window) const {
  if (ms_.empty() || window == 0) return 0.0;
  const std::uint64_t first = first_opportunity_at_or_after(from);
  std::uint64_t n = first;
  std::uint64_t count = 0;
  while (opportunity_time(n) < from + window) {
    ++count;
    ++n;
  }
  const double bits = static_cast<double>(count) * kDeliveryMtu * 8.0;
  return bits / sim::to_seconds(window);
}

LinkTrace constant_rate_trace(double mbps, sim::Duration duration) {
  // Packets per millisecond at `mbps`: mbps * 1e6 / 8 / 1500 / 1000.
  const double pkts_per_ms = mbps * 1e6 / 8.0 / kDeliveryMtu / 1000.0;
  const auto total_ms = static_cast<std::uint64_t>(duration / sim::kMillisecond);
  std::vector<std::uint32_t> ms;
  double credit = 0.0;
  for (std::uint64_t t = 1; t <= total_ms; ++t) {
    credit += pkts_per_ms;
    while (credit >= 1.0) {
      ms.push_back(static_cast<std::uint32_t>(t));
      credit -= 1.0;
    }
  }
  if (ms.empty()) ms.push_back(static_cast<std::uint32_t>(total_ms));
  return LinkTrace(std::move(ms));
}

}  // namespace xlink::trace
