#include "trace/trace.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <stdexcept>

namespace xlink::trace {

LinkTrace::LinkTrace(std::vector<std::uint32_t> opportunities_ms)
    : ms_(std::move(opportunities_ms)) {
  if (!std::is_sorted(ms_.begin(), ms_.end()))
    throw std::runtime_error("LinkTrace: opportunities must be non-decreasing");
  // Opportunity offsets live in (0, period]: the trace period is the last
  // timestamp, so an entry at t == 0 would alias the previous period's
  // t == period (period * period_ms_ + 0 == (period-1) * period_ms_ +
  // period_ms_), double-scheduling one delivery instant at every wrap.
  if (!ms_.empty() && ms_.front() == 0)
    throw std::runtime_error(
        "LinkTrace: opportunity at t=0 aliases the period seam (timestamps "
        "must be >= 1)");
  period_ms_ = ms_.empty() ? 1 : ms_.back();
}

LinkTrace LinkTrace::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("LinkTrace: cannot open " + path);
  std::vector<std::uint32_t> ms;
  std::string line;
  std::size_t lineno = 0;
  const auto fail = [&](const std::string& what) {
    throw std::runtime_error("LinkTrace: " + path + ":" +
                             std::to_string(lineno) + ": " + what + " ('" +
                             line + "')");
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(line.c_str(), &end, 10);
    if (end == line.c_str()) fail("unparsable timestamp");
    // Allow trailing whitespace (including a stray '\r'), nothing else.
    for (; *end != '\0'; ++end) {
      if (!std::isspace(static_cast<unsigned char>(*end)))
        fail("trailing garbage after timestamp");
    }
    if (v < 0) fail("negative timestamp");
    if (errno == ERANGE ||
        v > static_cast<long long>(std::numeric_limits<std::uint32_t>::max()))
      fail("timestamp out of range (max 2^32-1 ms)");
    ms.push_back(static_cast<std::uint32_t>(v));
  }
  return LinkTrace(std::move(ms));
}

void LinkTrace::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("LinkTrace: cannot write " + path);
  for (std::uint32_t t : ms_) out << t << '\n';
}

sim::Time LinkTrace::opportunity_time(std::uint64_t n) const {
  if (ms_.empty()) return 0;
  const std::uint64_t period = n / ms_.size();
  const std::size_t idx = static_cast<std::size_t>(n % ms_.size());
  return sim::millis(period * period_ms_ + ms_[idx]);
}

std::uint64_t LinkTrace::first_opportunity_at_or_after(sim::Time at) const {
  if (ms_.empty()) return 0;
  const std::uint64_t at_ms = at / sim::kMillisecond +
                              ((at % sim::kMillisecond) ? 1 : 0);
  std::uint64_t period = at_ms / period_ms_;
  std::uint64_t within = at_ms % period_ms_;
  // Offsets are in (0, period]: an exact period boundary is the LAST
  // instant of the previous period, not the first of the next one.
  // Mapping it to within == 0 of period p would skip any opportunities at
  // t == period_ms_ in period p-1, whose absolute time equals `at`.
  if (within == 0 && at_ms > 0) {
    --period;
    within = period_ms_;
  }
  const auto it = std::lower_bound(ms_.begin(), ms_.end(),
                                   static_cast<std::uint32_t>(within));
  if (it == ms_.end())
    return (period + 1) * ms_.size();
  return period * ms_.size() + static_cast<std::uint64_t>(it - ms_.begin());
}

double LinkTrace::average_bps() const {
  if (ms_.empty()) return 0.0;
  const double bits = static_cast<double>(ms_.size()) * kDeliveryMtu * 8.0;
  return bits / (static_cast<double>(period_ms_) / 1000.0);
}

double LinkTrace::window_bps(sim::Time from, sim::Duration window) const {
  if (ms_.empty() || window == 0) return 0.0;
  const std::uint64_t first = first_opportunity_at_or_after(from);
  std::uint64_t n = first;
  std::uint64_t count = 0;
  while (opportunity_time(n) < from + window) {
    ++count;
    ++n;
  }
  const double bits = static_cast<double>(count) * kDeliveryMtu * 8.0;
  return bits / sim::to_seconds(window);
}

LinkTrace constant_rate_trace(double mbps, sim::Duration duration) {
  // Packets per millisecond at `mbps`: mbps * 1e6 / 8 / 1500 / 1000.
  const double pkts_per_ms = mbps * 1e6 / 8.0 / kDeliveryMtu / 1000.0;
  const auto total_ms = static_cast<std::uint64_t>(duration / sim::kMillisecond);
  std::vector<std::uint32_t> ms;
  double credit = 0.0;
  for (std::uint64_t t = 1; t <= total_ms; ++t) {
    credit += pkts_per_ms;
    while (credit >= 1.0) {
      ms.push_back(static_cast<std::uint32_t>(t));
      credit -= 1.0;
    }
  }
  if (ms.empty())
    ms.push_back(static_cast<std::uint32_t>(std::max<std::uint64_t>(
        total_ms, 1)));
  return LinkTrace(std::move(ms));
}

}  // namespace xlink::trace
