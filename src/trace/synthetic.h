// Synthetic trace generators for the wireless environments of the paper.
//
// The paper's traces were collected with saturatr while walking on campus,
// riding subways and high-speed rail. We cannot ship those captures, so we
// generate traces with the same qualitative structure the paper describes:
//  - campus-walk Wi-Fi: fast variation with a near-outage dip (Fig. 1a)
//  - stable LTE: slowly varying medium rate (Fig. 1b)
//  - high-speed-rail cellular: deep periodic fades from handoffs (Fig. 15a)
//  - onboard Wi-Fi: low rate, frequent short outages (Fig. 15b)
//  - subway cellular: bursty with tunnel blackouts
//  - 5G NR: high rate, small coverage dropouts
//
// Generation model: a mean-reverting random-walk rate process sampled every
// `step`, overlaid with an outage process (Bernoulli onset, random duration),
// then converted to Mahimahi delivery opportunities.
#pragma once

#include "sim/rng.h"
#include "sim/time.h"
#include "trace/trace.h"

namespace xlink::trace {

/// Parameters of the rate random walk + outage overlay.
struct SyntheticSpec {
  double mean_mbps = 20.0;       // long-run mean rate
  double min_mbps = 0.0;         // clamp floor
  double max_mbps = 40.0;        // clamp ceiling
  double volatility = 0.2;       // per-step relative stddev of the walk
  double reversion = 0.2;        // pull toward mean per step, [0,1]
  sim::Duration step = sim::millis(100);  // rate process resolution
  double outage_per_second = 0.0;         // expected outage onsets / second
  sim::Duration outage_min = sim::millis(200);
  sim::Duration outage_max = sim::millis(800);
  sim::Duration duration = sim::seconds(30);
};

/// Generates a trace from the spec using the given RNG.
LinkTrace generate(const SyntheticSpec& spec, sim::Rng& rng);

/// The rate curve (Mbps per step) underlying a generated trace; exposed so
/// tests and plots can compare trace output to its generating process.
std::vector<double> rate_curve(const SyntheticSpec& spec, sim::Rng rng);

// Named environments used across benches. All take a seed for determinism.
LinkTrace campus_walk_wifi(std::uint64_t seed,
                           sim::Duration duration = sim::seconds(30));
LinkTrace stable_lte(std::uint64_t seed,
                     sim::Duration duration = sim::seconds(30));
LinkTrace hsr_cellular(std::uint64_t seed,
                       sim::Duration duration = sim::seconds(60));
LinkTrace onboard_wifi(std::uint64_t seed,
                       sim::Duration duration = sim::seconds(60));
LinkTrace subway_cellular(std::uint64_t seed,
                          sim::Duration duration = sim::seconds(60));
LinkTrace nr_5g(std::uint64_t seed, sim::Duration duration = sim::seconds(30),
                double cap_mbps = 30.0);

}  // namespace xlink::trace
