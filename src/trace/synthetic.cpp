#include "trace/synthetic.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace xlink::trace {
namespace {

/// Converts a per-step Mbps curve to Mahimahi delivery opportunities.
LinkTrace curve_to_trace(const std::vector<double>& mbps_per_step,
                         sim::Duration step) {
  const double step_ms = sim::to_millis(step);
  std::vector<std::uint32_t> ms;
  double credit = 0.0;
  for (std::size_t i = 0; i < mbps_per_step.size(); ++i) {
    // Packets this step at the step's rate.
    const double pkts =
        mbps_per_step[i] * 1e6 / 8.0 / kDeliveryMtu * (step_ms / 1000.0);
    credit += pkts;
    const auto whole = static_cast<std::uint64_t>(credit);
    credit -= static_cast<double>(whole);
    // Spread opportunities uniformly within the step.
    const double base_ms = static_cast<double>(i) * step_ms;
    for (std::uint64_t k = 0; k < whole; ++k) {
      const double frac = (static_cast<double>(k) + 0.5) /
                          static_cast<double>(whole);
      ms.push_back(static_cast<std::uint32_t>(base_ms + frac * step_ms) + 1);
    }
  }
  if (ms.empty())
    ms.push_back(std::max<std::uint32_t>(
        static_cast<std::uint32_t>(
            static_cast<double>(mbps_per_step.size()) * step_ms),
        1));
  return LinkTrace(std::move(ms));
}

}  // namespace

std::vector<double> rate_curve(const SyntheticSpec& spec, sim::Rng rng) {
  const auto steps = static_cast<std::size_t>(spec.duration / spec.step);
  std::vector<double> curve(steps);
  double rate = spec.mean_mbps;
  // Outage overlay state: steps remaining at (near) zero rate.
  std::size_t outage_left = 0;
  const double outage_per_step =
      spec.outage_per_second * sim::to_seconds(spec.step);
  for (std::size_t i = 0; i < steps; ++i) {
    // Mean-reverting multiplicative walk.
    const double shock = rng.normal(0.0, spec.volatility);
    rate = rate + spec.reversion * (spec.mean_mbps - rate) + rate * shock;
    rate = std::clamp(rate, spec.min_mbps, spec.max_mbps);
    if (outage_left == 0 && rng.chance(outage_per_step)) {
      const double span_ms = rng.uniform_double(
          sim::to_millis(spec.outage_min), sim::to_millis(spec.outage_max));
      outage_left = std::max<std::size_t>(
          1, static_cast<std::size_t>(span_ms / sim::to_millis(spec.step)));
    }
    if (outage_left > 0) {
      --outage_left;
      curve[i] = std::min(rate, 0.1);  // near-total outage
    } else {
      curve[i] = rate;
    }
  }
  return curve;
}

LinkTrace generate(const SyntheticSpec& spec, sim::Rng& rng) {
  return curve_to_trace(rate_curve(spec, rng.fork()), spec.step);
}

LinkTrace campus_walk_wifi(std::uint64_t seed, sim::Duration duration) {
  SyntheticSpec spec;
  spec.mean_mbps = 18.0;
  spec.max_mbps = 35.0;
  spec.min_mbps = 0.0;
  spec.volatility = 0.35;   // fast varying
  spec.reversion = 0.10;
  spec.outage_per_second = 0.25;  // occasional near-outages like Fig. 1a
  spec.outage_min = sim::millis(300);
  spec.outage_max = sim::millis(700);
  spec.duration = duration;
  sim::Rng rng(seed);
  return generate(spec, rng);
}

LinkTrace stable_lte(std::uint64_t seed, sim::Duration duration) {
  SyntheticSpec spec;
  spec.mean_mbps = 16.0;
  spec.max_mbps = 30.0;
  spec.min_mbps = 6.0;
  spec.volatility = 0.08;   // relatively stable (Fig. 1b)
  spec.reversion = 0.25;
  spec.outage_per_second = 0.0;
  spec.duration = duration;
  sim::Rng rng(seed);
  return generate(spec, rng);
}

LinkTrace hsr_cellular(std::uint64_t seed, sim::Duration duration) {
  SyntheticSpec spec;
  spec.mean_mbps = 7.0;
  spec.max_mbps = 12.0;
  spec.min_mbps = 0.0;
  spec.volatility = 0.40;
  spec.reversion = 0.12;
  spec.outage_per_second = 0.35;  // frequent deep fades from handoffs
  spec.outage_min = sim::millis(400);
  spec.outage_max = sim::millis(1500);
  spec.duration = duration;
  sim::Rng rng(seed);
  return generate(spec, rng);
}

LinkTrace onboard_wifi(std::uint64_t seed, sim::Duration duration) {
  SyntheticSpec spec;
  spec.mean_mbps = 4.0;
  spec.max_mbps = 8.0;
  spec.min_mbps = 0.0;
  spec.volatility = 0.45;
  spec.reversion = 0.10;
  spec.outage_per_second = 0.5;  // satellite backhaul drops often
  spec.outage_min = sim::millis(300);
  spec.outage_max = sim::millis(1200);
  spec.duration = duration;
  sim::Rng rng(seed);
  return generate(spec, rng);
}

LinkTrace subway_cellular(std::uint64_t seed, sim::Duration duration) {
  SyntheticSpec spec;
  spec.mean_mbps = 9.0;
  spec.max_mbps = 16.0;
  spec.min_mbps = 0.0;
  spec.volatility = 0.30;
  spec.reversion = 0.15;
  spec.outage_per_second = 0.20;  // tunnel blackouts: rarer but longer
  spec.outage_min = sim::millis(800);
  spec.outage_max = sim::millis(2500);
  spec.duration = duration;
  sim::Rng rng(seed);
  return generate(spec, rng);
}

LinkTrace nr_5g(std::uint64_t seed, sim::Duration duration, double cap_mbps) {
  SyntheticSpec spec;
  spec.mean_mbps = cap_mbps * 0.9;
  spec.max_mbps = cap_mbps;
  spec.min_mbps = 0.0;
  spec.volatility = 0.15;
  spec.reversion = 0.20;
  spec.outage_per_second = 0.08;  // small coverage holes
  spec.outage_min = sim::millis(200);
  spec.outage_max = sim::millis(600);
  spec.duration = duration;
  sim::Rng rng(seed);
  return generate(spec, rng);
}

}  // namespace xlink::trace
