// Mahimahi-style packet-delivery traces.
//
// The paper replays Wi-Fi/LTE/5G link traces with Mahimahi's mpshell. A
// Mahimahi trace is a list of millisecond timestamps; each occurrence of a
// timestamp grants one delivery opportunity of one MTU-sized packet (1500
// bytes) at that millisecond. When the trace ends it loops, offset by its
// duration. LinkTrace stores those opportunities and answers the question
// the emulated link asks: "given that I last used opportunity k, when is
// opportunity k+1?"
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace xlink::trace {

/// Bytes deliverable per opportunity, Mahimahi's fixed MTU.
constexpr std::uint32_t kDeliveryMtu = 1500;

class LinkTrace {
 public:
  LinkTrace() = default;

  /// Builds from millisecond delivery-opportunity timestamps. Must be
  /// non-decreasing and >= 1; the trace period is the last timestamp, and
  /// offsets live in (0, period] (Mahimahi's convention), so a timestamp
  /// at exactly the period is the period's final opportunity — never an
  /// alias of the next period's start.
  explicit LinkTrace(std::vector<std::uint32_t> opportunities_ms);

  /// Parses the Mahimahi on-disk format: one integer (ms) per line ('#'
  /// comments and blank lines allowed). Throws std::runtime_error — with
  /// the offending file and line number — on unreadable files, unparsable
  /// lines, values outside [1, 2^32-1] ms, or decreasing input.
  static LinkTrace load(const std::string& path);

  /// Writes the Mahimahi on-disk format.
  void save(const std::string& path) const;

  /// Simulated time of the n-th delivery opportunity (n is 0-based and may
  /// exceed one trace period: the trace loops).
  sim::Time opportunity_time(std::uint64_t n) const;

  /// Index of the first opportunity at time >= `at`.
  std::uint64_t first_opportunity_at_or_after(sim::Time at) const;

  /// Number of opportunities in one period of the trace.
  std::size_t opportunities_per_period() const { return ms_.size(); }

  /// Duration of one trace period.
  sim::Duration period() const { return sim::millis(period_ms_); }

  bool empty() const { return ms_.empty(); }

  /// Average throughput over one period, in bits per second.
  double average_bps() const;

  /// Throughput of the window [from, from+window), in bits per second,
  /// assuming every opportunity is used. Used for plotting "link capacity".
  double window_bps(sim::Time from, sim::Duration window) const;

  const std::vector<std::uint32_t>& opportunities_ms() const { return ms_; }

 private:
  std::vector<std::uint32_t> ms_;  // sorted opportunity timestamps, ms
  std::uint32_t period_ms_ = 1;
};

/// Builds a constant-rate trace: `mbps` megabits/s for `duration`.
LinkTrace constant_rate_trace(double mbps, sim::Duration duration);

}  // namespace xlink::trace
