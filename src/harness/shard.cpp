#include "harness/shard.h"

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>

#include "telemetry/json.h"

namespace xlink::harness::shard {
namespace {

namespace fs = std::filesystem;
using telemetry::JsonValue;
using telemetry::JsonWriter;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("shard: " + what);
}

// ------------------------------------------------------------ enum codecs
//
// Manifest entries use short string keys so a grid file is greppable and
// stable across enum reorderings.

struct SchemeKey {
  core::Scheme scheme;
  const char* key;
};
constexpr SchemeKey kSchemeKeys[] = {
    {core::Scheme::kSinglePath, "sp"},
    {core::Scheme::kConnMigration, "cm"},
    {core::Scheme::kVanillaMp, "vanilla_mp"},
    {core::Scheme::kMptcpLike, "mptcp"},
    {core::Scheme::kRedundant, "redundant"},
    {core::Scheme::kReinjectNoQoe, "reinject_noqoe"},
    {core::Scheme::kXlink, "xlink"},
};

std::string scheme_key(core::Scheme s) {
  for (const auto& e : kSchemeKeys)
    if (e.scheme == s) return e.key;
  fail("unknown scheme enum value");
}

core::Scheme scheme_from_key(const std::string& key) {
  for (const auto& e : kSchemeKeys)
    if (key == e.key) return e.scheme;
  fail("unknown scheme key '" + key + "'");
}

std::string cc_key(quic::CcAlgorithm cc) {
  switch (cc) {
    case quic::CcAlgorithm::kNewReno: return "newreno";
    case quic::CcAlgorithm::kCubic: return "cubic";
    case quic::CcAlgorithm::kCoupledLia: return "coupled_lia";
    case quic::CcAlgorithm::kBbr: return "bbr";
  }
  fail("unknown cc enum value");
}

quic::CcAlgorithm cc_from_key(const std::string& key) {
  if (key == "newreno") return quic::CcAlgorithm::kNewReno;
  if (key == "cubic") return quic::CcAlgorithm::kCubic;
  if (key == "coupled_lia") return quic::CcAlgorithm::kCoupledLia;
  if (key == "bbr") return quic::CcAlgorithm::kBbr;
  fail("unknown cc key '" + key + "'");
}

std::string control_mode_key(core::ControlMode m) {
  switch (m) {
    case core::ControlMode::kDoubleThreshold: return "double_threshold";
    case core::ControlMode::kAlwaysOn: return "always_on";
    case core::ControlMode::kAlwaysOff: return "always_off";
  }
  fail("unknown control mode enum value");
}

core::ControlMode control_mode_from_key(const std::string& key) {
  if (key == "double_threshold") return core::ControlMode::kDoubleThreshold;
  if (key == "always_on") return core::ControlMode::kAlwaysOn;
  if (key == "always_off") return core::ControlMode::kAlwaysOff;
  fail("unknown control mode key '" + key + "'");
}

std::string ack_policy_key(quic::AckPathPolicy p) {
  switch (p) {
    case quic::AckPathPolicy::kOriginalPath: return "original_path";
    case quic::AckPathPolicy::kFastestPath: return "fastest_path";
  }
  fail("unknown ack policy enum value");
}

quic::AckPathPolicy ack_policy_from_key(const std::string& key) {
  if (key == "original_path") return quic::AckPathPolicy::kOriginalPath;
  if (key == "fastest_path") return quic::AckPathPolicy::kFastestPath;
  fail("unknown ack policy key '" + key + "'");
}

std::string redundancy_key(core::XlinkRedundancy r) {
  switch (r) {
    case core::XlinkRedundancy::kNone: return "none";
    case core::XlinkRedundancy::kReinject: return "reinject";
    case core::XlinkRedundancy::kFec: return "fec";
    case core::XlinkRedundancy::kReinjectPlusFec: return "reinject_fec";
  }
  fail("unknown redundancy enum value");
}

core::XlinkRedundancy redundancy_from_key(const std::string& key) {
  if (key == "none") return core::XlinkRedundancy::kNone;
  if (key == "reinject") return core::XlinkRedundancy::kReinject;
  if (key == "fec") return core::XlinkRedundancy::kFec;
  if (key == "reinject_fec") return core::XlinkRedundancy::kReinjectPlusFec;
  fail("unknown redundancy key '" + key + "'");
}

std::string fec_scheme_key(fec::FecConfig::SchemeKind s) {
  switch (s) {
    case fec::FecConfig::SchemeKind::kXor: return "xor";
    case fec::FecConfig::SchemeKind::kReedSolomon: return "reed_solomon";
  }
  fail("unknown fec scheme enum value");
}

fec::FecConfig::SchemeKind fec_scheme_from_key(const std::string& key) {
  if (key == "xor") return fec::FecConfig::SchemeKind::kXor;
  if (key == "reed_solomon") return fec::FecConfig::SchemeKind::kReedSolomon;
  fail("unknown fec scheme key '" + key + "'");
}

std::string insert_mode_key(quic::InsertMode m) {
  switch (m) {
    case quic::InsertMode::kAppend: return "append";
    case quic::InsertMode::kPriority: return "priority";
    case quic::InsertMode::kFrontOfClass: return "front_of_class";
  }
  fail("unknown insert mode enum value");
}

quic::InsertMode insert_mode_from_key(const std::string& key) {
  if (key == "append") return quic::InsertMode::kAppend;
  if (key == "priority") return quic::InsertMode::kPriority;
  if (key == "front_of_class") return quic::InsertMode::kFrontOfClass;
  fail("unknown insert mode key '" + key + "'");
}

// ----------------------------------------------------- field-level codecs
//
// Unsigned 64-bit values are written as decimal strings: JsonValue stores
// numbers as double, which would silently round anything above 2^53
// (seeds and AEAD keys legitimately use all 64 bits). Doubles go through
// the hex-float codec. Small ints stay plain JSON numbers.

void kv_u64(JsonWriter& w, const char* k, std::uint64_t v) {
  w.kv(k, std::to_string(v));
}

std::uint64_t u64_from(const JsonValue& v, const std::string& what) {
  if (v.is_number()) return static_cast<std::uint64_t>(v.number);
  if (!v.is_string()) fail("field '" + what + "' not a u64");
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v.str.c_str(), &end, 10);
  if (end == v.str.c_str() || *end != '\0' || errno == ERANGE)
    fail("field '" + what + "' not a u64: '" + v.str + "'");
  return static_cast<std::uint64_t>(parsed);
}

std::uint64_t parse_u64(const JsonValue& obj, const char* k) {
  const JsonValue* v = obj.get(k);
  if (!v) fail(std::string("missing field '") + k + "'");
  return u64_from(*v, k);
}

void kv_double(JsonWriter& w, const char* k, double v) {
  w.kv(k, encode_double(v));
}

double double_from(const JsonValue& v, const std::string& what) {
  if (v.is_number()) return v.number;  // tolerated for hand-edited files
  if (!v.is_string()) fail("field '" + what + "' not a double");
  return decode_double(v.str);
}

double parse_double(const JsonValue& obj, const char* k) {
  const JsonValue* v = obj.get(k);
  if (!v) fail(std::string("missing field '") + k + "'");
  return double_from(*v, k);
}

std::string parse_str(const JsonValue& obj, const char* k) {
  const JsonValue* v = obj.get(k);
  if (!v || !v->is_string()) fail(std::string("missing string '") + k + "'");
  return v->str;
}

bool parse_bool(const JsonValue& obj, const char* k) {
  const JsonValue* v = obj.get(k);
  if (!v || v->kind != JsonValue::Kind::kBool)
    fail(std::string("missing bool '") + k + "'");
  return v->boolean;
}

int parse_int(const JsonValue& obj, const char* k) {
  const JsonValue* v = obj.get(k);
  if (!v || !v->is_number()) fail(std::string("missing int '") + k + "'");
  return static_cast<int>(v->number);
}

const JsonValue& parse_obj(const JsonValue& obj, const char* k) {
  const JsonValue* v = obj.get(k);
  if (!v || !v->is_object()) fail(std::string("missing object '") + k + "'");
  return *v;
}

const JsonValue& parse_arr(const JsonValue& obj, const char* k) {
  const JsonValue* v = obj.get(k);
  if (!v || !v->is_array()) fail(std::string("missing array '") + k + "'");
  return *v;
}

// ------------------------------------------------------- structure codecs

void write_options(JsonWriter& w, const core::SchemeOptions& o) {
  w.begin_object();
  w.kv("cc", cc_key(o.cc));
  kv_u64(w, "tth1_us", o.control.tth1);
  kv_u64(w, "tth2_us", o.control.tth2);
  w.kv("control_mode", control_mode_key(o.control.mode));
  w.kv("ack_policy", ack_policy_key(o.xlink_ack_policy));
  w.kv("insert_mode", insert_mode_key(o.xlink_insert_mode));
  w.kv("redundancy", redundancy_key(o.xlink_redundancy));
  w.kv("fec_scheme", fec_scheme_key(o.fec.scheme));
  kv_u64(w, "fec_window", o.fec.window);
  kv_u64(w, "fec_min_repairs", o.fec.min_repairs);
  kv_u64(w, "fec_max_repairs", o.fec.max_repairs);
  kv_double(w, "fec_loss_multiplier", o.fec.loss_multiplier);
  kv_u64(w, "fec_payload_cap", o.fec.payload_cap);
  kv_u64(w, "fec_cover_linger_us", o.fec.cover_linger);
  kv_u64(w, "aead_key", o.aead_key);
  w.kv("pacing", o.pacing);
  w.end_object();
}

core::SchemeOptions parse_options(const JsonValue& v) {
  core::SchemeOptions o;
  o.cc = cc_from_key(parse_str(v, "cc"));
  o.control.tth1 = parse_u64(v, "tth1_us");
  o.control.tth2 = parse_u64(v, "tth2_us");
  o.control.mode = control_mode_from_key(parse_str(v, "control_mode"));
  o.xlink_ack_policy = ack_policy_from_key(parse_str(v, "ack_policy"));
  o.xlink_insert_mode = insert_mode_from_key(parse_str(v, "insert_mode"));
  o.xlink_redundancy = redundancy_from_key(parse_str(v, "redundancy"));
  o.fec.scheme = fec_scheme_from_key(parse_str(v, "fec_scheme"));
  o.fec.window = parse_u64(v, "fec_window");
  o.fec.min_repairs = parse_u64(v, "fec_min_repairs");
  o.fec.max_repairs = parse_u64(v, "fec_max_repairs");
  o.fec.loss_multiplier = parse_double(v, "fec_loss_multiplier");
  o.fec.payload_cap = parse_u64(v, "fec_payload_cap");
  o.fec.cover_linger = parse_u64(v, "fec_cover_linger_us");
  o.aead_key = parse_u64(v, "aead_key");
  o.pacing = parse_bool(v, "pacing");
  return o;
}

void write_population(JsonWriter& w, const PopulationConfig& p) {
  w.begin_object();
  w.kv("sessions_per_day", p.sessions_per_day);
  kv_double(w, "p_5g", p.p_5g);
  kv_double(w, "p_walking_wifi", p.p_walking_wifi);
  kv_double(w, "p_fading_cellular", p.p_fading_cellular);
  kv_double(w, "p_outage_heavy", p.p_outage_heavy);
  kv_double(w, "p_cross_isp", p.p_cross_isp);
  kv_double(w, "max_loss", p.max_loss);
  kv_u64(w, "time_limit_us", p.time_limit);
  w.kv("abr", video::to_string(p.abr));
  kv_u64(w, "abr_chunk_frames", p.abr_chunk_frames);
  w.end_object();
}

PopulationConfig parse_population(const JsonValue& v) {
  PopulationConfig p;
  p.sessions_per_day = parse_int(v, "sessions_per_day");
  p.p_5g = parse_double(v, "p_5g");
  p.p_walking_wifi = parse_double(v, "p_walking_wifi");
  p.p_fading_cellular = parse_double(v, "p_fading_cellular");
  p.p_outage_heavy = parse_double(v, "p_outage_heavy");
  p.p_cross_isp = parse_double(v, "p_cross_isp");
  p.max_loss = parse_double(v, "max_loss");
  p.time_limit = parse_u64(v, "time_limit_us");
  const std::string abr_key = parse_str(v, "abr");
  const auto abr = video::abr_algorithm_from_string(abr_key);
  if (!abr) fail("unknown abr algorithm: " + abr_key);
  p.abr = *abr;
  p.abr_chunk_frames =
      static_cast<std::uint32_t>(parse_u64(v, "abr_chunk_frames"));
  return p;
}

void write_cell(JsonWriter& w, std::size_t index, const GridCell& c) {
  w.begin_object();
  w.kv("index", static_cast<std::uint64_t>(index));
  w.kv("label", c.label);
  w.kv("ab", c.ab);
  w.kv("scheme_a", scheme_key(c.scheme_a));
  w.key("options_a");
  write_options(w, c.options_a);
  w.kv("scheme_b", scheme_key(c.scheme_b));
  w.key("options_b");
  write_options(w, c.options_b);
  w.key("pop");
  write_population(w, c.pop);
  kv_u64(w, "day_seed", c.day_seed);
  w.kv("raw_session_seeds", c.raw_session_seeds);
  w.kv("sample_playtime", c.sample_playtime);
  w.end_object();
}

GridCell parse_cell(const JsonValue& v) {
  GridCell c;
  c.label = parse_str(v, "label");
  c.ab = parse_bool(v, "ab");
  c.scheme_a = scheme_from_key(parse_str(v, "scheme_a"));
  c.options_a = parse_options(parse_obj(v, "options_a"));
  c.scheme_b = scheme_from_key(parse_str(v, "scheme_b"));
  c.options_b = parse_options(parse_obj(v, "options_b"));
  c.pop = parse_population(parse_obj(v, "pop"));
  c.day_seed = parse_u64(v, "day_seed");
  c.raw_session_seeds = parse_bool(v, "raw_session_seeds");
  c.sample_playtime = parse_bool(v, "sample_playtime");
  return c;
}

void write_samples(JsonWriter& w, const stats::Summary& s) {
  w.begin_array();
  for (double v : s.samples()) w.value(encode_double(v));
  w.end_array();
}

stats::Summary parse_samples(const JsonValue& arr) {
  stats::Summary s;
  for (const JsonValue& v : arr.array) {
    if (v.is_string())
      s.add(decode_double(v.str));
    else if (v.is_number())
      s.add(v.number);
    else
      fail("sample is neither hex-float string nor number");
  }
  return s;
}

void write_registry(JsonWriter& w, const telemetry::MetricsRegistry& m) {
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, v] : m.counters()) kv_u64(w, name.c_str(), v);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, v] : m.gauges()) kv_double(w, name.c_str(), v);
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : m.histograms()) {
    w.key(name);
    w.begin_object();
    kv_u64(w, "count", h.count);
    kv_double(w, "sum", h.sum);
    kv_double(w, "min", h.min);
    kv_double(w, "max", h.max);
    w.key("buckets");
    w.begin_object();
    for (const auto& [idx, n] : h.buckets) kv_u64(w, std::to_string(idx).c_str(), n);
    w.end_object();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

telemetry::MetricsRegistry parse_registry(const JsonValue& v) {
  telemetry::MetricsRegistry m;
  for (const auto& [name, val] : parse_obj(v, "counters").object)
    m.add_counter(name, u64_from(val, name));
  for (const auto& [name, val] : parse_obj(v, "gauges").object)
    m.set_gauge(name, double_from(val, name));
  for (const auto& [name, hv] : parse_obj(v, "histograms").object) {
    telemetry::Histogram h;
    h.count = parse_u64(hv, "count");
    h.sum = parse_double(hv, "sum");
    h.min = parse_double(hv, "min");
    h.max = parse_double(hv, "max");
    for (const auto& [idx, n] : parse_obj(hv, "buckets").object)
      h.buckets[std::atoi(idx.c_str())] = u64_from(n, idx);
    m.restore_histogram(name, std::move(h));
  }
  return m;
}

void write_day_metrics(JsonWriter& w, const DayMetrics& d) {
  w.begin_object();
  w.key("rct");
  write_samples(w, d.rct);
  w.key("first_frame");
  write_samples(w, d.first_frame);
  w.key("startup_delay");
  write_samples(w, d.startup_delay);
  kv_double(w, "rebuffer_rate", d.rebuffer_rate);
  kv_double(w, "redundancy_pct", d.redundancy_pct);
  w.kv("sessions", d.sessions);
  w.kv("unfinished_downloads", d.unfinished_downloads);
  w.key("abr_utility");
  write_samples(w, d.abr_utility);
  kv_u64(w, "abr_decisions", d.abr_decisions);
  kv_u64(w, "abr_switches", d.abr_switches);
  kv_u64(w, "abr_switch_magnitude", d.abr_switch_magnitude);
  w.kv("abr_sessions", d.abr_sessions);
  w.key("metrics");
  write_registry(w, d.metrics);
  w.end_object();
}

DayMetrics parse_day_metrics(const JsonValue& v) {
  DayMetrics d;
  d.rct = parse_samples(parse_arr(v, "rct"));
  d.first_frame = parse_samples(parse_arr(v, "first_frame"));
  d.startup_delay = parse_samples(parse_arr(v, "startup_delay"));
  d.rebuffer_rate = parse_double(v, "rebuffer_rate");
  d.redundancy_pct = parse_double(v, "redundancy_pct");
  d.sessions = parse_int(v, "sessions");
  d.unfinished_downloads = parse_int(v, "unfinished_downloads");
  d.abr_utility = parse_samples(parse_arr(v, "abr_utility"));
  d.abr_decisions = parse_u64(v, "abr_decisions");
  d.abr_switches = parse_u64(v, "abr_switches");
  d.abr_switch_magnitude = parse_u64(v, "abr_switch_magnitude");
  d.abr_sessions = parse_int(v, "abr_sessions");
  d.metrics = parse_registry(parse_obj(v, "metrics"));
  return d;
}

// -------------------------------------------------------- file utilities

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot read " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Writes atomically: tmp file + rename, so readers never see a torn file
/// and a crash mid-write never produces a corrupt shard.
void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) fail("cannot write " + tmp);
    out << content;
    if (!out.flush()) fail("short write to " + tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0)
    fail("rename " + tmp + " -> " + path + ": " + std::strerror(errno));
}

JsonValue parse_json_or_fail(const std::string& text, const std::string& what) {
  auto parsed = telemetry::parse_json(text);
  if (!parsed) fail("malformed JSON in " + what);
  return std::move(*parsed);
}

bool pid_is_dead(long pid) {
  if (pid <= 0) return false;  // unparsable owner: assume live
  return ::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH;
}

double now_wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// ------------------------------------------------------------ public API

std::string encode_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

double decode_double(const std::string& s) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0')
    fail("not a hex-float: '" + s + "'");
  return v;
}

void write_manifest(const GridSpec& spec, std::ostream& os) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("xlink_grid_manifest", 1);
  w.kv("grid", spec.name);
  w.key("cells");
  w.begin_array();
  for (std::size_t i = 0; i < spec.cells.size(); ++i)
    write_cell(w, i, spec.cells[i]);
  w.end_array();
  w.end_object();
  os << "\n";
}

GridSpec parse_manifest(const std::string& text) {
  const JsonValue root = parse_json_or_fail(text, "manifest");
  if (!root.get("xlink_grid_manifest")) fail("not a grid manifest");
  GridSpec spec;
  spec.name = parse_str(root, "grid");
  for (const JsonValue& cv : parse_arr(root, "cells").array)
    spec.cells.push_back(parse_cell(cv));
  return spec;
}

CellResult run_cell(const GridCell& cell, unsigned jobs) {
  CellResult r;
  if (!cell.raw_session_seeds && !cell.sample_playtime) {
    // The canonical path: exactly run_day / run_ab_day, so a sharded grid
    // inherits their bit-identical-at-any-job-count contract verbatim.
    if (cell.ab) {
      AbDay day = run_ab_day(cell.scheme_a, cell.options_a, cell.scheme_b,
                             cell.options_b, cell.pop, cell.day_seed, jobs);
      r.arm_a = std::move(day.arm_a);
      r.arm_b = std::move(day.arm_b);
    } else {
      r.arm_a =
          run_day(cell.scheme_a, cell.options_a, cell.pop, cell.day_seed, jobs);
    }
    return r;
  }

  // fig10-style cells: historical raw population seeds (day_seed + i) and
  // an optional per-session buffer-level sampler, folded with the same
  // index-order arithmetic as run_day.
  auto run_arm = [&cell, jobs](core::Scheme scheme,
                               const core::SchemeOptions& options,
                               stats::Summary& playtime) {
    const auto n = static_cast<std::size_t>(cell.pop.sessions_per_day);
    std::vector<stats::Summary> slots(n);
    std::function<void(std::size_t, Session&)> setup;
    if (cell.sample_playtime) {
      setup = [&slots](std::size_t i, Session& session) {
        session.sample_period = sim::millis(100);
        stats::Summary& slot = slots[i];
        session.on_sample = [&slot](Session& s) {
          const auto* p = s.player();
          if (!p || !p->first_frame_latency() || p->finished()) return;
          slot.add(sim::to_millis(p->buffer_level()));
        };
      };
    }
    const auto results = run_sessions_parallel(
        n,
        [&cell, scheme, &options](std::size_t i) {
          const std::uint64_t seed = cell.raw_session_seeds
                                         ? cell.day_seed + i
                                         : cell.day_seed * 1000003ULL + i;
          SessionConfig cfg = draw_session_conditions(cell.pop, seed);
          cfg.scheme = scheme;
          cfg.options = options;
          return cfg;
        },
        setup, jobs);
    for (const stats::Summary& s : slots) playtime.add_all(s.samples());
    return fold_day(results);
  };
  r.arm_a = run_arm(cell.scheme_a, cell.options_a, r.playtime_a);
  if (cell.ab) r.arm_b = run_arm(cell.scheme_b, cell.options_b, r.playtime_b);
  return r;
}

void write_cell_result(const GridCell& cell, const CellResult& result,
                       std::ostream& os) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("xlink_grid_shard", 1);
  w.kv("label", cell.label);
  w.kv("ab", cell.ab);
  w.kv("sample_playtime", cell.sample_playtime);
  // Plain number: timing is metadata, excluded from merged output.
  w.kv("wall_s", result.wall_seconds);
  w.key("arm_a");
  write_day_metrics(w, result.arm_a);
  if (cell.ab) {
    w.key("arm_b");
    write_day_metrics(w, result.arm_b);
  }
  if (cell.sample_playtime) {
    w.key("playtime_a");
    write_samples(w, result.playtime_a);
    if (cell.ab) {
      w.key("playtime_b");
      write_samples(w, result.playtime_b);
    }
  }
  w.end_object();
  os << "\n";
}

CellResult parse_cell_result(const std::string& text) {
  const JsonValue root = parse_json_or_fail(text, "shard");
  if (!root.get("xlink_grid_shard")) fail("not a grid shard file");
  CellResult r;
  r.wall_seconds = root.get_num("wall_s");
  r.arm_a = parse_day_metrics(parse_obj(root, "arm_a"));
  if (const JsonValue* b = root.get("arm_b")) r.arm_b = parse_day_metrics(*b);
  if (const JsonValue* p = root.get("playtime_a")) r.playtime_a = parse_samples(*p);
  if (const JsonValue* p = root.get("playtime_b")) r.playtime_b = parse_samples(*p);
  return r;
}

void write_grid_results(const GridSpec& spec,
                        const std::vector<CellResult>& results,
                        std::ostream& os) {
  if (results.size() != spec.cells.size())
    fail("result count " + std::to_string(results.size()) +
         " != cell count " + std::to_string(spec.cells.size()));
  JsonWriter w(os);
  w.begin_object();
  w.kv("xlink_grid_results", 1);
  w.kv("grid", spec.name);
  w.key("cells");
  w.begin_array();
  for (std::size_t i = 0; i < spec.cells.size(); ++i) {
    const GridCell& cell = spec.cells[i];
    const CellResult& r = results[i];
    w.begin_object();
    w.kv("index", static_cast<std::uint64_t>(i));
    w.kv("label", cell.label);
    w.kv("ab", cell.ab);
    w.key("arm_a");
    write_day_metrics(w, r.arm_a);
    if (cell.ab) {
      w.key("arm_b");
      write_day_metrics(w, r.arm_b);
    }
    if (cell.sample_playtime) {
      w.key("playtime_a");
      write_samples(w, r.playtime_a);
      if (cell.ab) {
        w.key("playtime_b");
        write_samples(w, r.playtime_b);
      }
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

std::vector<CellResult> run_grid_inprocess(const GridSpec& spec,
                                           unsigned jobs) {
  std::vector<CellResult> results;
  results.reserve(spec.cells.size());
  for (const GridCell& cell : spec.cells) results.push_back(run_cell(cell, jobs));
  return results;
}

// ----------------------------------------------------------------- Spool

namespace {

std::string cell_stem(const std::string& dir, std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "cell-%05zu", index);
  return dir + "/" + buf;
}

}  // namespace

std::string Spool::todo_path(std::size_t index) const {
  return cell_stem(dir_, index) + ".todo";
}
std::string Spool::claim_path(std::size_t index) const {
  return cell_stem(dir_, index) + ".claim";
}
std::string Spool::result_path(std::size_t index) const {
  return cell_stem(dir_, index) + ".json";
}

Spool Spool::plan(
    const GridSpec& spec, const std::string& dir,
    const std::vector<std::pair<std::size_t, CellResult>>& precomputed) {
  fs::create_directories(dir);
  const std::string manifest_path = dir + "/manifest.json";
  if (fs::exists(manifest_path))
    fail("spool " + dir + " already planned (manifest.json exists)");
  {
    std::ostringstream os;
    write_manifest(spec, os);
    write_file_atomic(manifest_path, os.str());
  }
  Spool spool(dir);
  for (const auto& [index, result] : precomputed) {
    if (index >= spec.cells.size()) fail("precomputed index out of range");
    spool.complete(index, result);
  }
  for (std::size_t i = 0; i < spec.cells.size(); ++i) {
    if (spool.has_result(i)) continue;
    write_file_atomic(spool.todo_path(i), std::to_string(i) + "\n");
  }
  return spool;
}

Spool::Spool(std::string dir) : dir_(std::move(dir)) {
  spec_ = parse_manifest(read_file(dir_ + "/manifest.json"));
}

std::optional<std::size_t> Spool::claim_next() {
  for (std::size_t i = 0; i < spec_.cells.size(); ++i) {
    if (has_result(i)) continue;
    // Fast path: steal the todo. Exactly one racing worker's rename
    // succeeds; the losers see ENOENT and move on.
    if (::rename(todo_path(i).c_str(), claim_path(i).c_str()) == 0) {
      write_file_atomic(claim_path(i),
                        "{\"pid\": " +
                            std::to_string(static_cast<long>(::getpid())) +
                            "}\n");
      return i;
    }
    // No todo: the cell is claimed. Re-spool it if its owner is dead
    // (a worker killed mid-cell), then retry the same index once.
    std::string content;
    try {
      content = read_file(claim_path(i));
    } catch (const std::runtime_error&) {
      continue;  // completed or re-claimed concurrently; move on
    }
    long pid = 0;
    if (auto parsed = telemetry::parse_json(content))
      pid = static_cast<long>(parsed->get_u64("pid"));
    if (pid_is_dead(pid) &&
        ::rename(claim_path(i).c_str(), todo_path(i).c_str()) == 0) {
      if (::rename(todo_path(i).c_str(), claim_path(i).c_str()) == 0) {
        write_file_atomic(claim_path(i),
                          "{\"pid\": " +
                              std::to_string(static_cast<long>(::getpid())) +
                              "}\n");
        return i;
      }
    }
  }
  return std::nullopt;
}

void Spool::complete(std::size_t index, const CellResult& result) {
  if (index >= spec_.cells.size()) fail("complete: index out of range");
  std::ostringstream os;
  write_cell_result(spec_.cells[index], result, os);
  write_file_atomic(result_path(index), os.str());
  std::remove(claim_path(index).c_str());
  std::remove(todo_path(index).c_str());
}

void Spool::abandon(std::size_t index) {
  if (::rename(claim_path(index).c_str(), todo_path(index).c_str()) != 0)
    fail("abandon: no claim for cell " + std::to_string(index));
}

bool Spool::has_result(std::size_t index) const {
  return fs::exists(result_path(index));
}

std::size_t Spool::completed() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < spec_.cells.size(); ++i)
    if (has_result(i)) ++n;
  return n;
}

std::size_t Spool::reclaim_all_claims() {
  std::size_t n = 0;
  for (std::size_t i = 0; i < spec_.cells.size(); ++i) {
    if (has_result(i)) continue;
    if (::rename(claim_path(i).c_str(), todo_path(i).c_str()) == 0) ++n;
  }
  return n;
}

std::vector<CellResult> Spool::collect(
    std::vector<std::size_t>* missing) const {
  std::vector<CellResult> results(spec_.cells.size());
  for (std::size_t i = 0; i < spec_.cells.size(); ++i) {
    if (!has_result(i)) {
      if (missing) missing->push_back(i);
      continue;
    }
    results[i] = parse_cell_result(read_file(result_path(i)));
  }
  return results;
}

WorkerReport run_worker(Spool& spool, unsigned jobs) {
  WorkerReport report;
  const double t0 = now_wall_seconds();
  while (auto index = spool.claim_next()) {
    const double c0 = now_wall_seconds();
    CellResult result = run_cell(spool.spec().cells[*index], jobs);
    result.wall_seconds = now_wall_seconds() - c0;
    spool.complete(*index, result);
    report.cell_wall_seconds.emplace_back(*index, result.wall_seconds);
  }
  report.total_wall_seconds = now_wall_seconds() - t0;
  return report;
}

}  // namespace xlink::harness::shard
