// Canonical experiment grids for the sharded runner.
//
// One place that enumerates the paper's benchmark sweeps (fig10 threshold
// settings, fig11 A/B days) as shard::GridSpec cell lists, so the bench
// binaries, the xlink_grid CLI, and the CI smoke job all agree on exactly
// which (scheme, options, population, seed) tuples a grid contains.
//
// fig10 is the interesting case: its threshold settings are DERIVED from
// the calibration population's play-time-left distribution, so the grid
// cannot be enumerated without running that cell. build_grid runs the
// calibration at plan time and hands the result back as a precomputed
// shard; re-running the same cell in-process is deterministic, which keeps
// the spool merge byte-identical to run_grid_inprocess over the full spec.
#pragma once

#include <string>
#include <vector>

#include "harness/shard.h"

namespace xlink::harness::grids {

/// The fig10 calibration cell: the stressed XLINK population with QoE
/// control off (re-injection always on) and the 100ms play-time-left
/// sampler attached. Its playtime distribution defines the th(X) values.
shard::GridCell fig10_calibration_cell(int sessions = 18);

/// The full fig10 sweep given the calibration playtime distribution (ms):
/// cell 0 is the calibration cell itself, cell 1 the SP baseline, then one
/// cell per threshold setting ("re-inj. off", "95-80", ..., "1-1") with
/// tth1/tth2 derived exactly as the bench derives them.
shard::GridSpec fig10_grid(const stats::Summary& calib_playtime_ms,
                           int sessions = 18);

/// The fig11 A/B sweep: `days` AB cells (arm A = SP, arm B = XLINK with
/// default thresholds), day d seeded 2000 + d, matching the bench.
shard::GridSpec fig11_grid(int days = 14, int sessions_per_day = 45);

/// The ABR ablation grid: {min-RTT, XLINK} x {rate, buffer, hybrid}
/// controllers, every cell replaying the same drawn day (seed 7100) so
/// only the scheduler and the ABR policy differ between arms.
shard::GridSpec abr_grid(int sessions_per_day = 18,
                         sim::Duration time_limit = sim::seconds(90));

/// A grid plus plan-time prerequisite results (cells that had to run to
/// enumerate the rest of the grid, e.g. fig10's calibration population).
struct PlannedGrid {
  shard::GridSpec spec;
  std::vector<std::pair<std::size_t, shard::CellResult>> precomputed;
};

/// Builds a named grid: "fig10", "fig11", "abr", or the scaled-down CI
/// presets "fig10-smoke" / "fig11-smoke" / "abr-smoke". May run
/// calibration cells in-process on `jobs` workers (0 = XLINK_JOBS
/// default). Throws std::runtime_error for unknown names.
PlannedGrid build_grid(const std::string& name, unsigned jobs = 0);

/// Names accepted by build_grid, for CLI help text.
std::vector<std::string> grid_names();

}  // namespace xlink::harness::grids
