#include "harness/endpoint.h"

namespace xlink::harness {

Endpoint::Endpoint(net::Network& network, quic::Connection& conn, Side side)
    : network_(network), conn_(conn), side_(side) {
  conn_.set_send_callback([this](quic::PathId path, net::Datagram d) {
    if (network_.path_count() == 0) return;
    // Path ids beyond the physical link count wrap around: connection
    // migration may revisit an interface under a fresh connection ID, and
    // the fresh CID sequence is a new transport path over the same link.
    const std::size_t link = path % network_.path_count();
    if (side_ == Side::kClient)
      network_.path(link).send_up(std::move(d));
    else
      network_.path(link).send_down(std::move(d));
  });
}

void Endpoint::bind_path(std::size_t index) {
  auto& path = network_.path(index);
  const auto id = static_cast<quic::PathId>(index);
  XLINK_TRACE(trace_,
              telemetry::Event::path_bound(
                  conn_.loop().now(),
                  side_ == Side::kClient ? telemetry::Origin::kClient
                                         : telemetry::Origin::kServer,
                  static_cast<std::uint8_t>(index),
                  static_cast<std::uint64_t>(path.tech())));
  if (side_ == Side::kClient) {
    path.set_down_receiver(
        [this, id](net::Datagram d) { conn_.on_datagram(id, std::move(d)); });
  } else {
    path.set_up_receiver(
        [this, id](net::Datagram d) { conn_.on_datagram(id, std::move(d)); });
  }
}

void Endpoint::bind_all() {
  for (std::size_t i = 0; i < network_.path_count(); ++i) bind_path(i);
}

}  // namespace xlink::harness
