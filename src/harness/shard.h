// Cross-process experiment grid sharding with deterministic merge.
//
// The paper's headline results come from sweeping grids of
// scheduler x trace x threshold x day populations. PR 1's parallel engine
// (harness/parallel.h) parallelizes WITHIN one population; this module
// shards whole grids ACROSS worker processes (or machines on a shared
// filesystem) and folds the results back together without losing the
// engine's determinism contract:
//
//   - A grid is enumerated once into a manifest of cells, each a
//     (scheme[s], options, population, day_seed) day run — exactly the
//     inputs of run_day / run_ab_day.
//   - Workers claim cells from a spool directory by atomically renaming
//     `cell-N.todo` to `cell-N.claim`; the shared spool gives
//     work-stealing between populations, so a slow day never idles a
//     worker. Results land as `cell-N.json`, written tmp-then-rename so a
//     crash can never leave a torn shard.
//   - Every numeric field round-trips through JSON losslessly (doubles as
//     C99 hex-float strings), and the merge step folds shards in manifest
//     index order, so `merge(shards=K, jobs=J)` is BYTE-identical to the
//     same grid run in-process, for any K and any XLINK_JOBS value.
//   - Re-running a spool skips completed shards, and claims owned by dead
//     processes are re-spooled, so a killed worker costs at most its
//     in-flight cell.
//
// The xlink_grid CLI (tools/) fronts this module with plan / work / merge
// subcommands; harness/grids.h defines the bench grids (fig10, fig11).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "harness/ab_test.h"
#include "harness/parallel.h"

namespace xlink::harness::shard {

// ------------------------------------------------- lossless double codec

/// Encodes a double as a C99 hex-float literal ("0x1.91eb851eb851fp+1"):
/// exact, locale-independent, and parsed back bit-for-bit by strtod. Every
/// double in a shard file goes through this codec, which is what makes the
/// spool merge byte-identical to the in-process sweep.
std::string encode_double(double v);
double decode_double(const std::string& s);

// --------------------------------------------------------- grid geometry

/// One grid cell: a single day population run (run_day) or an A/B day
/// (run_ab_day). Cells are self-contained — a worker process reconstructs
/// the exact run from the manifest entry alone.
struct GridCell {
  std::string label;  // e.g. "day03" or "th-90-60"
  /// false: one arm (scheme_a) via run_day. true: run_ab_day(a, b).
  bool ab = false;
  core::Scheme scheme_a = core::Scheme::kXlink;
  core::SchemeOptions options_a;
  core::Scheme scheme_b = core::Scheme::kSinglePath;
  core::SchemeOptions options_b;
  PopulationConfig pop;
  std::uint64_t day_seed = 1;
  /// Session seed derivation: false = run_day's day_seed * 1000003 + i;
  /// true = day_seed + i (the fig10 bench's historical population seeds).
  bool raw_session_seeds = false;
  /// Attach the fig10 buffer-level sampler (100ms period, post-startup
  /// play-time-left in ms) and report it as CellResult::playtime_*.
  bool sample_playtime = false;
};

struct GridSpec {
  std::string name;
  std::vector<GridCell> cells;
};

/// Manifest JSON round-trip. parse_manifest throws std::runtime_error on
/// malformed input.
void write_manifest(const GridSpec& spec, std::ostream& os);
GridSpec parse_manifest(const std::string& text);

// --------------------------------------------------------------- results

/// The outcome of one cell. arm_b is meaningful only for ab cells,
/// playtime_* only when the cell sampled it. wall_seconds is measurement
/// metadata: it is stored in the shard file (per-cell timing for perf
/// tracking) but excluded from the merged output, which must not depend
/// on which process ran the cell or how fast.
struct CellResult {
  DayMetrics arm_a;
  DayMetrics arm_b;
  stats::Summary playtime_a;
  stats::Summary playtime_b;
  double wall_seconds = 0.0;
};

/// Runs one cell in-process on `jobs` workers (0 = XLINK_JOBS default).
/// For standard-seed cells this IS run_day / run_ab_day; fig10-style cells
/// (raw seeds / playtime sampler) reproduce the bench's historical loop on
/// the same engine. wall_seconds is left 0 — callers time if they care.
CellResult run_cell(const GridCell& cell, unsigned jobs = 0);

/// Shard-file JSON round-trip for one cell result.
void write_cell_result(const GridCell& cell, const CellResult& result,
                       std::ostream& os);
CellResult parse_cell_result(const std::string& text);

/// Canonical merged-grid JSON: grid name plus every cell's deterministic
/// fields in manifest index order (timing excluded). Both the spool merge
/// and in-process sweeps emit through this writer, so "bit-identical"
/// is plain byte equality of the output.
void write_grid_results(const GridSpec& spec,
                        const std::vector<CellResult>& results,
                        std::ostream& os);

/// Convenience: run every cell of a grid in-process, in manifest order.
std::vector<CellResult> run_grid_inprocess(const GridSpec& spec,
                                           unsigned jobs = 0);

// ----------------------------------------------------------------- spool

/// A spool directory holds one planned grid and its work/result state:
///
///   dir/manifest.json      the GridSpec
///   dir/cell-0007.todo     unclaimed cell (content: the index)
///   dir/cell-0007.claim    claimed by a worker (content: {"pid": N})
///   dir/cell-0007.json     completed shard (tmp-then-rename, never torn)
///
/// Claiming renames todo -> claim, which POSIX guarantees atomic: exactly
/// one of any number of racing workers wins a cell. Completed cells are
/// never re-run, so re-invoking workers on a partially finished spool
/// resumes where it left off.
class Spool {
 public:
  /// Creates `dir` and populates manifest + one todo per cell. Cells whose
  /// index appears in `precomputed` are written as completed shards
  /// instead (used for plan-time prerequisite cells, e.g. the fig10
  /// calibration population). Throws if the directory already contains a
  /// manifest.
  static Spool plan(
      const GridSpec& spec, const std::string& dir,
      const std::vector<std::pair<std::size_t, CellResult>>& precomputed = {});

  /// Opens an existing spool (throws if dir/manifest.json is missing).
  explicit Spool(std::string dir);

  const GridSpec& spec() const { return spec_; }
  const std::string& dir() const { return dir_; }

  /// Claims the lowest-index available cell: skips completed cells, steals
  /// todos atomically, and re-spools claims whose owning pid is dead (a
  /// crashed worker's in-flight cell). Returns nullopt when nothing is
  /// claimable (all cells completed or claimed by live workers).
  std::optional<std::size_t> claim_next();

  /// Writes the shard for a claimed cell (tmp + rename) and releases the
  /// claim.
  void complete(std::size_t index, const CellResult& result);

  /// Returns a claimed cell to the todo pool without running it.
  void abandon(std::size_t index);

  bool has_result(std::size_t index) const;
  std::size_t completed() const;

  /// Force-respools every claim regardless of owner liveness (for
  /// cross-machine spools where pid probing is meaningless). Returns the
  /// number of claims returned to the pool.
  std::size_t reclaim_all_claims();

  /// Reads every completed shard in manifest index order. Indices without
  /// a shard are appended to `missing` (if given) and left default-valued.
  std::vector<CellResult> collect(std::vector<std::size_t>* missing) const;

  std::string todo_path(std::size_t index) const;
  std::string claim_path(std::size_t index) const;
  std::string result_path(std::size_t index) const;

 private:
  std::string dir_;
  GridSpec spec_;
};

/// One worker's account of a spool run: which cells it claimed and how
/// long each took (per-cell timing also lands in each shard file).
struct WorkerReport {
  std::vector<std::pair<std::size_t, double>> cell_wall_seconds;
  double total_wall_seconds = 0.0;
};

/// Claims and runs cells until the spool has nothing left to claim.
WorkerReport run_worker(Spool& spool, unsigned jobs = 0);

}  // namespace xlink::harness::shard
