#include "harness/scenario.h"

#include <algorithm>

#include "core/primary_path.h"
#include "telemetry/qlog.h"

namespace xlink::harness {

net::PathSpec make_path_spec(net::Wireless tech, trace::LinkTrace down_trace,
                             sim::Duration rtt, double loss_rate) {
  net::PathSpec spec;
  spec.tech = tech;
  spec.down_trace = std::move(down_trace);
  spec.one_way_delay = rtt / 2;
  spec.loss_rate = loss_rate;
  // Uplink (requests + acks) is rarely the bottleneck: fixed 20 Mbps.
  spec.fixed_rate_mbps = 20.0;
  return spec;
}

Session::Session(SessionConfig config) : config_(std::move(config)) {
  if (config_.trace.enabled) {
    trace_ = std::make_unique<telemetry::TraceSink>(config_.trace.capacity);
    trace_->set_enabled(true);
  }
  sim::Rng rng(config_.seed);
  network_ = std::make_unique<net::Network>(loop_, rng.fork());
  network_->set_trace(trace_.get());

  // Wireless-aware primary path selection: path 0 starts the connection.
  std::vector<net::PathSpec> ordered = config_.paths;
  if (config_.wireless_aware_primary && ordered.size() > 1) {
    std::vector<net::Wireless> techs;
    techs.reserve(ordered.size());
    for (const auto& p : ordered) techs.push_back(p.tech);
    std::vector<net::PathSpec> re;
    re.reserve(ordered.size());
    for (std::size_t idx : core::rank_paths(techs))
      re.push_back(std::move(ordered[idx]));
    ordered = std::move(re);
  }
  for (auto& spec : ordered) network_->add_path(std::move(spec));

  video_model_ = std::make_shared<video::VideoModel>(config_.video);

  auto client_cfg = core::make_scheme_config(config_.scheme,
                                             quic::Role::kClient,
                                             config_.options);
  client_cfg.trace = trace_.get();
  client_cfg.health.enabled = config_.path_health;
  client_cfg.budgets.enforce = config_.guard;
  client_cfg.audit.enabled = config_.audit;
  client_conn_ = std::make_unique<quic::Connection>(loop_,
                                                    std::move(client_cfg));
  auto server_cfg = core::make_scheme_config(config_.scheme,
                                             quic::Role::kServer,
                                             config_.options);
  if (config_.server_scheduler_override)
    server_cfg.scheduler = config_.server_scheduler_override;
  server_cfg.trace = trace_.get();
  server_cfg.health.enabled = config_.path_health;
  server_cfg.budgets.enforce = config_.guard;
  server_cfg.audit.enabled = config_.audit;
  server_conn_ = std::make_unique<quic::Connection>(loop_,
                                                    std::move(server_cfg));

  client_ep_ = std::make_unique<Endpoint>(*network_, *client_conn_,
                                          Endpoint::Side::kClient);
  server_ep_ = std::make_unique<Endpoint>(*network_, *server_conn_,
                                          Endpoint::Side::kServer);
  client_ep_->set_trace(trace_.get());
  server_ep_->set_trace(trace_.get());
  client_ep_->bind_all();
  server_ep_->bind_all();

  // NAT rebind faults invalidate the client's 4-tuple: the client must
  // re-validate the path (RFC 9000 §9.3) when the injector fires one.
  for (std::size_t i = 0; i < network_->path_count(); ++i) {
    if (auto* f = network_->path(i).faults()) {
      f->on_nat_rebind = [this, i] {
        client_conn_->rebind_path(static_cast<quic::PathId>(i));
      };
    }
  }

  media_server_ = std::make_unique<http::MediaServer>(*server_conn_,
                                                      config_.server);
  media_server_->add_video(config_.client.resource, video_model_);

  if (config_.client.abr.algorithm != video::AbrAlgorithm::kFixed) {
    // One RenditionSet shared by client (chunk decisions) and server
    // (serving every rung). The top rung is the drawn video spec, already
    // registered under the base resource above.
    video::BitrateLadder ladder = config_.client.abr.ladder;
    if (ladder.bitrates_bps.empty())
      ladder = video::BitrateLadder::scaled(config_.video.bitrate_bps);
    renditions_ = std::make_shared<const video::RenditionSet>(
        config_.video, std::move(ladder));
    for (std::size_t r = 0; r < renditions_->top_rung(); ++r) {
      media_server_->add_video(
          video::rendition_resource(config_.client.resource, r,
                                    renditions_->top_rung()),
          renditions_->model(r));
    }
  }

  media_client_ = std::make_unique<http::MediaClient>(
      *client_conn_, *video_model_, config_.client, renditions_);
  media_client_->set_trace(trace_.get());
  if (renditions_) {
    // The hybrid controller's transport rate signal: the data sender's
    // delivery-rate btlbw summed over active paths (in deployment the
    // transport SDK surfaces this to the app; here we read the sender
    // estimate directly -- deterministic, simulator state only).
    media_client_->set_btlbw_source([this]() {
      std::uint64_t bps = 0;
      for (quic::PathId id : server_conn_->active_path_ids()) {
        bps += static_cast<std::uint64_t>(
            server_conn_->path_state(id).bandwidth_estimate_bytes_per_sec() *
            8.0);
      }
      return bps;
    });
  }

  if (config_.with_player) {
    player_ = std::make_unique<video::VideoPlayer>(
        loop_, *video_model_, config_.startup_buffer_frames);
    player_->set_trace(trace_.get());
    media_client_->set_player(player_.get());
    qoe_capture_ = std::make_unique<video::QoeCapture>(loop_, *player_,
                                                       config_.qoe_period);
    client_conn_->set_qoe_provider(
        [this]() { return qoe_capture_->latest(); });
    // The hybrid ABR controller reads the same (staleness-included)
    // conduit the scheduler's feedback loop does, not the live player.
    media_client_->set_qoe_source(
        [this]() { return qoe_capture_->latest(); });
    if (config_.standalone_qoe_feedback) {
      qoe_sender_ = std::make_unique<core::QoeFeedbackSender>(
          *client_conn_, [this]() { return qoe_capture_->latest(); },
          core::QoeFeedbackSender::Config{});
    }
  }

  client_conn_->on_established = [this] {
    media_client_->start();
    if (core::is_multipath(config_.scheme)) {
      if (config_.secondary_path_delay == 0) {
        open_secondary_paths();
      } else {
        loop_.schedule_in(config_.secondary_path_delay,
                          [this] { open_secondary_paths(); });
      }
    }
  };
}

Session::~Session() = default;

void Session::open_secondary_paths() {
  while (paths_opened_ < network_->path_count()) {
    if (!client_conn_->open_path()) break;  // waiting for CIDs
    ++paths_opened_;
  }
  if (paths_opened_ < network_->path_count()) {
    loop_.schedule_in(sim::millis(10), [this] { open_secondary_paths(); });
  }
}

void Session::cm_probe() {
  if (finished()) return;
  // Stall = no download progress (what a video app can actually observe;
  // stray packets still trickle in during an outage, so packet arrival is
  // a misleading liveness signal).
  const std::uint64_t progress = media_client_->contiguous_bytes();
  if (progress != cm_last_rx_packets_) {
    cm_last_rx_packets_ = progress;
    cm_last_progress_ = loop_.now();
  } else if (!media_client_->all_done() &&
             loop_.now() - cm_last_progress_ >= config_.cm_stall_threshold &&
             network_->path_count() > 1) {
    // Stalled: migrate to the next interface under a fresh connection ID
    // (path ids wrap onto physical links in the endpoint). Migration stops
    // silently once the CID supply is exhausted, like a real connection.
    ++cm_current_path_;
    client_conn_->migrate_to_path(
        static_cast<quic::PathId>(cm_current_path_));
    cm_last_progress_ = loop_.now();
  }
  loop_.schedule_in(config_.cm_probe_interval, [this] { cm_probe(); });
}

void Session::sample_tick() {
  if (!on_sample) return;
  on_sample(*this);
  loop_.schedule_in(sample_period, [this] { sample_tick(); });
}

bool Session::finished() const {
  if (!media_client_->all_done()) return false;
  if (player_ && !player_->finished()) return false;
  return true;
}

SessionResult Session::run() {
  client_conn_->connect();
  if (config_.scheme == core::Scheme::kConnMigration) {
    cm_last_progress_ = loop_.now();
    loop_.schedule_in(config_.cm_probe_interval, [this] { cm_probe(); });
  }
  if (on_sample) sample_tick();

  // Run in slices so completion can stop the loop early.
  const sim::Duration slice = sim::millis(20);
  while (loop_.now() < config_.time_limit) {
    loop_.run_until(std::min(config_.time_limit, loop_.now() + slice));
    if (finished()) break;
  }

  SessionResult result;
  result.chunk_rct_seconds = media_client_->completion_times_seconds();
  result.chunks_total = media_client_->chunk_metrics().size();
  result.chunks_completed = result.chunk_rct_seconds.size();
  result.download_finished = media_client_->all_done();
  // Censor incomplete chunks at the elapsed time (they are the tail).
  for (const auto& m : media_client_->chunk_metrics()) {
    if (!m.completed_at)
      result.chunk_rct_seconds.push_back(
          sim::to_seconds(loop_.now() - m.issued_at));
  }
  result.download_seconds =
      media_client_->all_done_at()
          ? sim::to_seconds(*media_client_->all_done_at())
          : sim::to_seconds(loop_.now());

  if (player_) {
    if (auto ff = player_->first_frame_latency())
      result.first_frame_seconds = sim::to_seconds(*ff);
    if (auto sd = player_->startup_delay())
      result.startup_delay_seconds = sim::to_seconds(*sd);
    result.rebuffer_rate = player_->rebuffer_rate();
    result.rebuffer_seconds = sim::to_seconds(player_->total_rebuffer_time());
    result.play_seconds = sim::to_seconds(player_->total_play_time());
    result.rebuffer_count = player_->rebuffer_count();
    result.video_finished = player_->finished();
  }

  if (media_client_->abr_enabled()) {
    const auto abr = media_client_->abr_summary();
    result.abr_enabled = true;
    result.abr_decisions = abr.decisions;
    result.abr_switches = abr.switches;
    result.abr_switch_magnitude = abr.switch_magnitude;
    result.abr_bitrate_utility = abr.bitrate_utility;
  }

  const auto& server_stats = server_conn_->stats();
  result.server_wire_bytes = server_stats.bytes_sent;
  result.stream_payload_bytes = server_stats.stream_bytes_sent;
  result.reinjected_bytes = server_stats.reinjected_bytes;
  result.retransmitted_bytes = server_stats.retransmitted_bytes;
  result.packets_lost = server_stats.packets_lost;
  result.redundancy_ratio = server_stats.redundancy_ratio();
  result.fec_repair_bytes = server_stats.fec_repair_bytes_sent;
  result.fec_repair_packets = server_stats.fec_repair_packets_sent;
  result.fec_windows_protected = server_stats.fec_windows_protected;
  const auto& client_stats = client_conn_->stats();
  result.fec_recovered_packets = client_stats.fec_recovered_packets;
  result.fec_wasted_symbols = client_stats.fec_wasted_symbols;
  result.fec_erased_seen = client_stats.fec_erased_seen;
  for (std::size_t i = 0; i < network_->path_count(); ++i) {
    result.path_down_bytes.push_back(
        network_->path(i).down_stats().bytes_delivered);
    result.path_peak_queue_bytes.push_back(
        network_->path(i).down_stats().peak_queued_bytes);
  }

  fill_metrics(result);

  if (trace_ && !config_.trace.qlog_path.empty()) {
    telemetry::QlogMeta meta;
    meta.title = "xlink trace";
    meta.scenario = config_.trace.label;
    meta.scheme = core::to_string(config_.scheme);
    meta.seed = config_.seed;
    telemetry::write_qlog_file(config_.trace.qlog_path, *trace_, meta);
  }
  return result;
}

void Session::fill_metrics(SessionResult& result) const {
  telemetry::MetricsRegistry& m = result.metrics;
  const auto& server = server_conn_->stats();
  const auto& client = client_conn_->stats();

  m.add_counter("quic.server.packets_sent", server.packets_sent);
  m.add_counter("quic.server.packets_lost", server.packets_lost);
  m.add_counter("quic.server.ptos", server.ptos);
  m.add_counter("quic.server.bytes_sent", server.bytes_sent);
  m.add_counter("quic.server.stream_bytes_sent", server.stream_bytes_sent);
  m.add_counter("quic.server.reinjected_bytes", server.reinjected_bytes);
  m.add_counter("quic.server.retransmitted_bytes",
                server.retransmitted_bytes);
  m.add_counter("quic.client.packets_received", client.packets_received);
  m.add_counter("quic.client.acks_sent", client.acks_sent);
  if (server.fec_repair_packets_sent > 0 || client.fec_erased_seen > 0) {
    m.add_counter("fec.server.repair_packets", server.fec_repair_packets_sent);
    m.add_counter("fec.server.repair_bytes", server.fec_repair_bytes_sent);
    m.add_counter("fec.server.windows_protected",
                  server.fec_windows_protected);
    m.add_counter("fec.client.recovered_packets", client.fec_recovered_packets);
    m.add_counter("fec.client.wasted_symbols", client.fec_wasted_symbols);
    m.add_counter("fec.client.erased_seen", client.fec_erased_seen);
  }

  m.add_counter("session.count", 1);
  m.add_counter("session.chunks_total", result.chunks_total);
  m.add_counter("session.chunks_completed", result.chunks_completed);
  m.add_counter("session.rebuffers", result.rebuffer_count);
  m.add_counter("session.downloads_finished",
                result.download_finished ? 1 : 0);
  m.add_counter("session.videos_finished", result.video_finished ? 1 : 0);

  for (double rct : result.chunk_rct_seconds)
    m.observe("session.chunk_rct_seconds", rct);
  if (result.first_frame_seconds)
    m.observe("session.first_frame_seconds", *result.first_frame_seconds);
  if (result.startup_delay_seconds)
    m.observe("session.startup_delay_seconds", *result.startup_delay_seconds);
  if (result.play_seconds > 0.0)
    m.observe("session.rebuffer_rate", result.rebuffer_rate);

  if (result.abr_enabled) {
    m.add_counter("session.abr.decisions", result.abr_decisions);
    m.add_counter("session.abr.switches", result.abr_switches);
    m.add_counter("session.abr.switch_magnitude",
                  result.abr_switch_magnitude);
    m.observe("session.abr_bitrate_utility", result.abr_bitrate_utility);
  }

  if (trace_) {
    m.add_counter("telemetry.events_recorded", trace_->recorded());
    m.add_counter("telemetry.events_dropped", trace_->dropped());
  }
}

}  // namespace xlink::harness
