#include "harness/ab_test.h"

#include "trace/synthetic.h"

namespace xlink::harness {
namespace {

/// Applies a random cross-ISP delay penalty to a secondary path (Table 4).
sim::Duration apply_cross_isp(sim::Duration rtt, sim::Rng& rng) {
  const auto from = static_cast<net::Isp>(rng.uniform(3));
  auto to = static_cast<net::Isp>(rng.uniform(3));
  const double inc = net::cross_isp_increase(from, to);
  return static_cast<sim::Duration>(static_cast<double>(rtt) * (1.0 + inc));
}

}  // namespace

SessionConfig draw_session_conditions(const PopulationConfig& pop,
                                      std::uint64_t session_seed) {
  sim::Rng rng(session_seed);
  SessionConfig cfg;
  cfg.seed = rng.next_u64();
  cfg.time_limit = pop.time_limit;

  // Video: short-form product videos, 8-20 s, 1.5-4 Mbps, 30 fps.
  cfg.video.duration = sim::millis(
      static_cast<std::uint64_t>(rng.uniform_double(8000, 20000)));
  cfg.video.bitrate_bps = static_cast<std::uint64_t>(
      rng.uniform_double(1.5e6, 4.0e6));
  cfg.video.fps = 30;
  cfg.video.seed = rng.next_u64();

  cfg.client.chunk_bytes = 256 * 1024 +
                           128 * 1024 * rng.uniform(3);  // 256-512 KB
  cfg.client.max_concurrent = 2 + static_cast<int>(rng.uniform(2));
  // ABR workload knobs (no RNG draws: adding ABR to a population must not
  // perturb the conditions a fixed-bitrate population would draw).
  cfg.client.abr.algorithm = pop.abr;
  cfg.client.abr.chunk_frames = pop.abr_chunk_frames;

  const bool outage_heavy = rng.chance(pop.p_outage_heavy);
  const bool moderate_wifi = rng.chance(pop.p_walking_wifi);
  const sim::Duration dur = sim::seconds(40);

  // Wi-Fi path: a production user's Wi-Fi streams video fine on its own
  // (that is the SP baseline's whole population). It is either calm and
  // generously provisioned, or "moderate": 1.3-2.2x the video bitrate with
  // mild variation and rare brief dips -- enough headroom to play, little
  // slack to absorb a multipath stall.
  trace::LinkTrace wifi_trace;
  if (outage_heavy) {
    wifi_trace = trace::onboard_wifi(rng.next_u64(), dur);
  } else if (moderate_wifi) {
    trace::SyntheticSpec spec;
    const double ratio = rng.uniform_double(1.6, 2.6);
    spec.mean_mbps = static_cast<double>(cfg.video.bitrate_bps) / 1e6 * ratio;
    // Floor above the bitrate: a production user whose Wi-Fi cannot play
    // the video alone would not be in the SP arm's healthy majority.
    spec.min_mbps =
        static_cast<double>(cfg.video.bitrate_bps) / 1e6 * 1.15;
    spec.max_mbps = spec.mean_mbps * 1.5;
    spec.volatility = 0.15;
    spec.reversion = 0.3;
    spec.outage_per_second = 0.05;  // rare, brief dips
    spec.outage_min = sim::millis(200);
    spec.outage_max = sim::millis(450);
    spec.duration = dur;
    sim::Rng wifi_rng(rng.next_u64());
    wifi_trace = trace::generate(spec, wifi_rng);
  } else {
    wifi_trace = trace::stable_lte(rng.next_u64(), dur);  // calm, ~16 Mbps
  }
  sim::Duration wifi_rtt = net::sample_rtt(net::Wireless::kWifi, rng);
  cfg.paths.push_back(make_path_spec(net::Wireless::kWifi,
                                     std::move(wifi_trace), wifi_rtt,
                                     rng.uniform_double(0, pop.max_loss)));

  // Cellular path (LTE or 5G NSA), usually the secondary. Often
  // fade-prone: cellular under mobility dips in and out, which is exactly
  // what multi-path HoL blocking feeds on -- SP, pinned to Wi-Fi, never
  // notices these fades.
  const bool is_5g = rng.chance(pop.p_5g);
  const bool fading = rng.chance(pop.p_fading_cellular);
  const net::Wireless cell_tech =
      is_5g ? net::Wireless::k5gNsa : net::Wireless::kLte;
  trace::LinkTrace cell_trace;
  if (outage_heavy || fading) {
    // Deep, seconds-long fades: the cellular signal of a moving user.
    trace::SyntheticSpec spec;
    spec.mean_mbps = rng.uniform_double(6.0, 12.0);
    spec.min_mbps = 0.0;
    spec.max_mbps = spec.mean_mbps * 1.6;
    spec.volatility = 0.35;
    spec.reversion = 0.12;
    spec.outage_per_second = 0.3;
    spec.outage_min = sim::millis(800);
    spec.outage_max = sim::millis(2500);
    spec.duration = dur;
    sim::Rng cell_rng(rng.next_u64());
    cell_trace = trace::generate(spec, cell_rng);
  } else if (is_5g) {
    cell_trace = trace::nr_5g(rng.next_u64(), dur);
  } else {
    cell_trace = trace::stable_lte(rng.next_u64(), dur);
  }
  sim::Duration cell_rtt = net::sample_rtt(cell_tech, rng);
  if (rng.chance(pop.p_cross_isp)) cell_rtt = apply_cross_isp(cell_rtt, rng);
  cfg.paths.push_back(make_path_spec(cell_tech, std::move(cell_trace),
                                     cell_rtt,
                                     rng.uniform_double(0, pop.max_loss)));
  return cfg;
}

// run_day lives in harness/parallel.cpp: it folds per-session results in
// index order on top of the parallel engine, reproducing the historical
// serial accumulation bit-for-bit at any job count.

}  // namespace xlink::harness
