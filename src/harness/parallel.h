// Parallel experiment execution.
//
// A Session owns its EventLoop, network, endpoints, and RNGs — nothing is
// shared between two sessions — and every stochastic input is derived
// from the per-session seed. Running a population across threads is
// therefore safe AND deterministic: each worker writes its result into a
// pre-sized slot keyed by session index, and callers fold the slots in
// index order, which reproduces the serial accumulation arithmetic
// bit-for-bit. `run_day(..., jobs)` and `run_ab_day(...)` are built on
// this contract; tests assert jobs=4 equals jobs=1 exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "harness/ab_test.h"
#include "harness/scenario.h"

namespace xlink::harness {

/// Worker count used when a `jobs` argument is 0: the XLINK_JOBS
/// environment variable if set, else std::thread::hardware_concurrency().
unsigned default_jobs();

/// Runs `count` independent sessions, where make_config(i) builds the
/// i-th SessionConfig (it is invoked on the worker thread and must only
/// read shared state). Results land in slot i of the returned vector, so
/// the output is independent of the worker count. jobs == 1 runs serially
/// inline; jobs == 0 uses default_jobs().
std::vector<SessionResult> run_sessions_parallel(
    std::size_t count,
    const std::function<SessionConfig(std::size_t)>& make_config,
    unsigned jobs = 0);

/// Same, plus a setup hook called with the constructed Session before it
/// runs — benches use it to attach per-session `on_sample` observers
/// (which must only touch state owned by slot i).
std::vector<SessionResult> run_sessions_parallel(
    std::size_t count,
    const std::function<SessionConfig(std::size_t)>& make_config,
    const std::function<void(std::size_t, Session&)>& setup, unsigned jobs);

/// Folds per-session results into DayMetrics in index order — the exact
/// accumulation sequence of the historical serial run_day loop, so the
/// outcome is bit-identical regardless of how many workers produced the
/// slots. Exposed so the grid-sharding runner (harness/shard.h) and
/// custom sweeps reproduce run_day's arithmetic on their own batches.
DayMetrics fold_day(const std::vector<SessionResult>& results);

/// One A/B day: both arms replay the same drawn per-session conditions.
struct AbDay {
  DayMetrics arm_a;
  DayMetrics arm_b;
};

/// Runs both arms of a day as one 2N-session parallel batch. Equivalent —
/// bit-identically — to run_day(scheme_a, ...) then run_day(scheme_b, ...).
AbDay run_ab_day(core::Scheme scheme_a, const core::SchemeOptions& options_a,
                 core::Scheme scheme_b, const core::SchemeOptions& options_b,
                 const PopulationConfig& pop, std::uint64_t day_seed,
                 unsigned jobs = 0);

}  // namespace xlink::harness
