#include "harness/grids.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace xlink::harness::grids {
namespace {

// The fig10 bench's historical population: 18 sessions seeded kBaseSeed+i
// over a stressed mix (fading cellular at 0.8).
constexpr std::uint64_t kFig10BaseSeed = 555000;

PopulationConfig fig10_population(int sessions) {
  PopulationConfig pop;
  pop.sessions_per_day = sessions;
  pop.p_fading_cellular = 0.8;  // stress without hopeless outages
  return pop;
}

shard::GridCell fig10_cell(const std::string& label, core::Scheme scheme,
                           const core::SchemeOptions& options, int sessions) {
  shard::GridCell cell;
  cell.label = label;
  cell.scheme_a = scheme;
  cell.options_a = options;
  cell.pop = fig10_population(sessions);
  cell.day_seed = kFig10BaseSeed;
  cell.raw_session_seeds = true;  // historical kBaseSeed + i seeds
  cell.sample_playtime = true;
  return cell;
}

}  // namespace

shard::GridCell fig10_calibration_cell(int sessions) {
  core::SchemeOptions always_on;
  always_on.control.mode = core::ControlMode::kAlwaysOn;
  return fig10_cell("calibration", core::Scheme::kXlink, always_on, sessions);
}

shard::GridSpec fig10_grid(const stats::Summary& calib_playtime_ms,
                           int sessions) {
  const auto th = [&calib_playtime_ms](double x) {
    return calib_playtime_ms.percentile(100.0 - x);
  };

  shard::GridSpec spec;
  spec.name = "fig10";
  spec.cells.push_back(fig10_calibration_cell(sessions));
  spec.cells.push_back(
      fig10_cell("sp", core::Scheme::kSinglePath, {}, sessions));

  struct Setting {
    const char* label;
    double x, y;  // th(X), th(Y); x<0 -> re-injection off; y<0 unused
  };
  // Same settings, in the same order, as the bench table rows.
  const Setting settings[] = {
      {"re-inj. off", -1, 0}, {"95-80", 95, 80}, {"90-80", 90, 80},
      {"90-60", 90, 60},      {"60-50", 60, 50}, {"60-1", 60, 1},
      {"1-1", 1, 1},
  };
  for (const Setting& s : settings) {
    if (s.x < 0) {
      spec.cells.push_back(
          fig10_cell(s.label, core::Scheme::kVanillaMp, {}, sessions));
      continue;
    }
    core::SchemeOptions opts;
    if (s.x == 1 && s.y == 1) {
      opts.control.mode = core::ControlMode::kAlwaysOn;
    } else {
      // Exactly the bench's derivation, including the cast and the
      // tth1 < tth2 guard, so grid cells equal the historical sweep.
      opts.control.tth1 =
          static_cast<sim::Duration>(th(s.x) * sim::kMillisecond);
      opts.control.tth2 = std::max<sim::Duration>(
          static_cast<sim::Duration>(th(s.y) * sim::kMillisecond),
          opts.control.tth1 + sim::millis(1));
    }
    spec.cells.push_back(
        fig10_cell(s.label, core::Scheme::kXlink, opts, sessions));
  }
  return spec;
}

shard::GridSpec abr_grid(int sessions_per_day, sim::Duration time_limit) {
  shard::GridSpec spec;
  spec.name = "abr";
  const video::AbrAlgorithm controllers[] = {
      video::AbrAlgorithm::kRateBased, video::AbrAlgorithm::kBufferBased,
      video::AbrAlgorithm::kHybrid};
  const struct {
    const char* label;
    core::Scheme scheme;
  } schedulers[] = {{"minrtt", core::Scheme::kVanillaMp},
                    {"xlink", core::Scheme::kXlink}};
  for (const auto& sched : schedulers) {
    for (video::AbrAlgorithm abr : controllers) {
      shard::GridCell cell;
      cell.label = std::string(sched.label) + "/" + video::to_string(abr);
      cell.scheme_a = sched.scheme;
      cell.pop.sessions_per_day = sessions_per_day;
      cell.pop.time_limit = time_limit;
      cell.pop.abr = abr;
      cell.day_seed = 7100;  // same drawn conditions across all six arms
      spec.cells.push_back(cell);
    }
  }
  return spec;
}

shard::GridSpec fig11_grid(int days, int sessions_per_day) {
  PopulationConfig pop;
  pop.sessions_per_day = sessions_per_day;

  shard::GridSpec spec;
  spec.name = "fig11";
  for (int day = 1; day <= days; ++day) {
    shard::GridCell cell;
    char label[16];
    std::snprintf(label, sizeof label, "day%02d", day);
    cell.label = label;
    cell.ab = true;
    cell.scheme_a = core::Scheme::kSinglePath;
    cell.scheme_b = core::Scheme::kXlink;  // default thresholds
    cell.pop = pop;
    cell.day_seed = 2000 + static_cast<std::uint64_t>(day);
    spec.cells.push_back(cell);
  }
  return spec;
}

PlannedGrid build_grid(const std::string& name, unsigned jobs) {
  // fig10-family grids need the calibration population's playtime
  // distribution before the threshold cells can be enumerated; run it
  // here and pass the result through as a precomputed shard.
  const auto build_fig10 = [jobs](int sessions) {
    PlannedGrid planned;
    const shard::GridCell calib = fig10_calibration_cell(sessions);
    shard::CellResult calib_result = shard::run_cell(calib, jobs);
    planned.spec = fig10_grid(calib_result.playtime_a, sessions);
    planned.precomputed.emplace_back(0, std::move(calib_result));
    return planned;
  };

  if (name == "fig10") return build_fig10(18);
  if (name == "fig10-smoke") return build_fig10(4);
  if (name == "fig11") return {fig11_grid(14, 45), {}};
  if (name == "fig11-smoke") return {fig11_grid(2, 6), {}};
  if (name == "abr") return {abr_grid(18, sim::seconds(90)), {}};
  if (name == "abr-smoke") return {abr_grid(2, sim::seconds(45)), {}};
  throw std::runtime_error(
      "unknown grid '" + name +
      "' (try: fig10, fig10-smoke, fig11, fig11-smoke, abr, abr-smoke)");
}

std::vector<std::string> grid_names() {
  return {"fig10", "fig10-smoke", "fig11", "fig11-smoke", "abr", "abr-smoke"};
}

}  // namespace xlink::harness::grids
