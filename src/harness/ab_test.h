// A/B test driver: per-day populations of video sessions.
//
// The paper's online evaluation runs two contrast groups (e.g. SP vs
// XLINK) side by side over days, each day serving a fresh mix of users,
// networks, and videos. We reproduce the structure: a "day" is a
// population of sessions whose conditions (technology pairing, trace
// class, RTTs, loss, cross-ISP penalty, video parameters) are drawn from
// a day-seeded distribution; both arms replay the SAME drawn conditions,
// which is the A/B property that makes day-to-day comparisons meaningful.
#pragma once

#include <vector>

#include "harness/scenario.h"
#include "stats/summary.h"

namespace xlink::harness {

struct PopulationConfig {
  int sessions_per_day = 40;
  /// Probability that the cellular path is 5G NSA instead of LTE.
  double p_5g = 0.2;
  /// Probability that a session's Wi-Fi is only moderately provisioned
  /// (1.3-2.2x the video bitrate with mild dips) rather than calm.
  double p_walking_wifi = 0.6;
  /// Probability that the cellular path fades (deep periodic dips): the
  /// condition that exposes vanilla-MP to both paths' hiccups while SP,
  /// pinned to Wi-Fi, never notices.
  double p_fading_cellular = 0.7;
  /// Probability of an outage-heavy session (both paths degrade).
  double p_outage_heavy = 0.0;
  /// Probability the secondary path crosses an ISP border (Table 4 delay).
  double p_cross_isp = 0.4;
  double max_loss = 0.002;
  sim::Duration time_limit = sim::seconds(90);
  /// ABR controller every session of the population runs (kFixed = the
  /// legacy fixed-bitrate workload). The ladder is derived per session
  /// from the drawn video bitrate (BitrateLadder::scaled).
  video::AbrAlgorithm abr = video::AbrAlgorithm::kFixed;
  /// Frames per ABR chunk (adaptation granularity).
  std::uint32_t abr_chunk_frames = 30;
};

struct DayMetrics {
  stats::Summary rct;          // per-chunk request completion time (s)
  stats::Summary first_frame;  // first-video-frame latency (s)
  stats::Summary startup_delay;  // time to playback start (s)
  double rebuffer_rate = 0.0;  // sum(rebuffer)/sum(play) over the day
  double redundancy_pct = 0.0; // extra egress from re-injection + FEC (%)
  int sessions = 0;
  int unfinished_downloads = 0;
  // ABR aggregates (all zero for fixed-bitrate populations).
  stats::Summary abr_utility;  // per-session bitrate utility, [0,1]
  std::uint64_t abr_decisions = 0;
  std::uint64_t abr_switches = 0;
  std::uint64_t abr_switch_magnitude = 0;
  int abr_sessions = 0;
  /// Per-session registries merged in session-index order (bit-identical
  /// for every job count, like every other field here).
  telemetry::MetricsRegistry metrics;
};

/// Draws the network/video conditions of one session (scheme-independent).
SessionConfig draw_session_conditions(const PopulationConfig& pop,
                                      std::uint64_t session_seed);

/// Runs one day of one arm: same session seeds => same conditions across
/// arms, only the transport scheme differs. Sessions run on `jobs` worker
/// threads (0 = XLINK_JOBS env var / hardware_concurrency, 1 = serial);
/// results are folded in session-index order, so DayMetrics are
/// bit-identical for every job count. Implemented in harness/parallel.cpp.
DayMetrics run_day(core::Scheme scheme, const core::SchemeOptions& options,
                   const PopulationConfig& pop, std::uint64_t day_seed,
                   unsigned jobs = 0);

}  // namespace xlink::harness
