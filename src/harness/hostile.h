// Hostile-peer attack harness.
//
// A scripted attacker that speaks just enough of the wire protocol to put
// arbitrary frames in front of a victim Connection, bypassing the honest
// transport entirely. It owns the connection-wide AEAD key (every XLINK
// endpoint of a connection shares one), so every forged packet
// authenticates: the guard has to win on protocol and budget enforcement,
// never on crypto.
//
// The harness also wiretaps the victim's outbound datagrams so tests can
// assert the *graceful* part of a close -- that a CONNECTION_CLOSE frame
// carrying the right transport error code actually went on the wire.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "quic/connection.h"
#include "quic/crypto.h"
#include "quic/packet.h"

namespace xlink::harness {

class HostilePeer {
 public:
  /// Attacks `victim` using its own configured AEAD key.
  explicit HostilePeer(quic::Connection& victim)
      : victim_(victim), aead_(victim.config().aead_key) {}

  /// Seals `frames` as a short-header packet numbered `pn` in `path`'s
  /// number space. The wire image is independently replayable.
  std::vector<std::uint8_t> seal(quic::PathId path, quic::PacketNumber pn,
                                 const std::vector<quic::Frame>& frames) const;

  /// Like seal() but with a long (Initial) header -- pre-handshake attacks.
  std::vector<std::uint8_t> seal_initial(
      quic::PathId path, quic::PacketNumber pn,
      const std::vector<quic::Frame>& frames) const;

  /// Seals and injects at the next fresh packet number for `path`.
  void inject(quic::PathId path, const std::vector<quic::Frame>& frames);

  /// Seals and injects with an explicit packet number (replay/collision
  /// attacks pick their own).
  void inject_at(quic::PathId path, quic::PacketNumber pn,
                 const std::vector<quic::Frame>& frames);

  /// Injects pre-sealed wire bytes verbatim (replay attacks).
  void inject_wire(quic::PathId path, std::span<const std::uint8_t> wire);

  /// Next packet number inject() will use on `path`. Defaults high so
  /// forged packets never collide with an honest peer's number space.
  quic::PacketNumber next_pn(quic::PathId path) const;
  void set_next_pn(quic::PathId path, quic::PacketNumber pn) {
    pns_[path] = pn;
  }

  std::uint64_t packets_injected() const { return injected_; }

  /// Decrypts one captured victim datagram (tests feed datagrams recorded
  /// from the victim's send callback). Nullopt if it does not parse.
  std::optional<std::vector<quic::Frame>> open(
      std::span<const std::uint8_t> wire) const;

  /// First CONNECTION_CLOSE frame found in `wires`, if any.
  std::optional<quic::ConnectionCloseFrame> find_close(
      const std::vector<std::vector<std::uint8_t>>& wires) const;

  const quic::PacketProtection& aead() const { return aead_; }

 private:
  quic::Connection& victim_;
  quic::PacketProtection aead_;
  std::map<quic::PathId, quic::PacketNumber> pns_;
  std::uint64_t injected_ = 0;
};

}  // namespace xlink::harness
