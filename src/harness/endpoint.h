// Endpoint: binds a Connection to the emulated network fabric.
//
// Path id i of the connection maps to network path index i; clients send
// on uplinks and listen on downlinks, servers the reverse. This stands in
// for the UDP sockets + QUIC-LB consistent-hash routing of the deployed
// system (all paths of a connection reach the same server process).
#pragma once

#include "net/network.h"
#include "quic/connection.h"

namespace xlink::harness {

class Endpoint {
 public:
  enum class Side { kClient, kServer };

  Endpoint(net::Network& network, quic::Connection& conn, Side side);

  /// Wires one network path (receiver + the connection's send callback
  /// covers all paths). Call for every path, including ones added mid-run.
  void bind_path(std::size_t index);

  /// Wires every path currently in the network.
  void bind_all();

  /// Telemetry: records a transport:path_bound event (path -> wireless
  /// technology) per bind. Set before bind_all().
  void set_trace(telemetry::TraceSink* sink) { trace_ = sink; }

 private:
  net::Network& network_;
  quic::Connection& conn_;
  Side side_;
  telemetry::TraceSink* trace_ = nullptr;
};

}  // namespace xlink::harness
