#include "harness/parallel.h"

#include "sim/thread_pool.h"

namespace xlink::harness {
namespace {

/// Builds the i-th session of a day's arm: same session seeds as the
/// serial loop in run_day always used, so conditions are unchanged.
SessionConfig day_session_config(core::Scheme scheme,
                                 const core::SchemeOptions& options,
                                 const PopulationConfig& pop,
                                 std::uint64_t day_seed, std::size_t i) {
  const std::uint64_t session_seed = day_seed * 1000003ULL + i;
  SessionConfig cfg = draw_session_conditions(pop, session_seed);
  cfg.scheme = scheme;
  cfg.options = options;
  return cfg;
}

}  // namespace

DayMetrics fold_day(const std::vector<SessionResult>& results) {
  DayMetrics day;
  double rebuffer_sum = 0.0;
  double play_sum = 0.0;
  std::uint64_t payload_sum = 0;
  std::uint64_t dup_sum = 0;
  for (const SessionResult& r : results) {
    day.rct.add_all(r.chunk_rct_seconds);
    if (r.first_frame_seconds) day.first_frame.add(*r.first_frame_seconds);
    if (r.startup_delay_seconds)
      day.startup_delay.add(*r.startup_delay_seconds);
    if (r.abr_enabled) {
      day.abr_utility.add(r.abr_bitrate_utility);
      day.abr_decisions += r.abr_decisions;
      day.abr_switches += r.abr_switches;
      day.abr_switch_magnitude += r.abr_switch_magnitude;
      ++day.abr_sessions;
    }
    rebuffer_sum += r.rebuffer_seconds;
    play_sum += r.play_seconds;
    payload_sum += r.stream_payload_bytes;
    // All redundancy egress counts: re-injected duplicates AND FEC repair
    // symbols (both are traffic the server would not send without the
    // protection mechanism).
    dup_sum += r.reinjected_bytes + r.fec_repair_bytes;
    if (!r.download_finished) ++day.unfinished_downloads;
    ++day.sessions;
    day.metrics.merge(r.metrics);
  }
  day.rebuffer_rate = play_sum > 0 ? rebuffer_sum / play_sum : 0.0;
  day.redundancy_pct =
      payload_sum > 0
          ? 100.0 * static_cast<double>(dup_sum) /
                static_cast<double>(payload_sum)
          : 0.0;
  return day;
}

unsigned default_jobs() { return sim::ThreadPool::default_jobs(); }

std::vector<SessionResult> run_sessions_parallel(
    std::size_t count,
    const std::function<SessionConfig(std::size_t)>& make_config,
    unsigned jobs) {
  return run_sessions_parallel(count, make_config, nullptr, jobs);
}

std::vector<SessionResult> run_sessions_parallel(
    std::size_t count,
    const std::function<SessionConfig(std::size_t)>& make_config,
    const std::function<void(std::size_t, Session&)>& setup, unsigned jobs) {
  std::vector<SessionResult> results(count);
  sim::parallel_for_each(
      count,
      [&](std::size_t i) {
        Session session(make_config(i));
        if (setup) setup(i, session);
        results[i] = session.run();
      },
      jobs);
  return results;
}

DayMetrics run_day(core::Scheme scheme, const core::SchemeOptions& options,
                   const PopulationConfig& pop, std::uint64_t day_seed,
                   unsigned jobs) {
  const auto n = static_cast<std::size_t>(pop.sessions_per_day);
  return fold_day(run_sessions_parallel(
      n,
      [&](std::size_t i) {
        return day_session_config(scheme, options, pop, day_seed, i);
      },
      jobs));
}

AbDay run_ab_day(core::Scheme scheme_a, const core::SchemeOptions& options_a,
                 core::Scheme scheme_b, const core::SchemeOptions& options_b,
                 const PopulationConfig& pop, std::uint64_t day_seed,
                 unsigned jobs) {
  const auto n = static_cast<std::size_t>(pop.sessions_per_day);
  // One batch of 2N sessions: indices [0, N) are arm A, [N, 2N) arm B.
  // Both arms draw from the same session seeds, preserving the A/B pairing.
  const auto results = run_sessions_parallel(
      2 * n,
      [&](std::size_t i) {
        const bool is_b = i >= n;
        return day_session_config(is_b ? scheme_b : scheme_a,
                                  is_b ? options_b : options_a, pop, day_seed,
                                  is_b ? i - n : i);
      },
      jobs);
  AbDay day;
  day.arm_a = fold_day({results.begin(), results.begin() + n});
  day.arm_b = fold_day({results.begin() + n, results.end()});
  return day;
}

}  // namespace xlink::harness
