#include "harness/hostile.h"

#include "net/datagram.h"

namespace xlink::harness {

namespace {
/// High enough that forged packets never collide with (= get deduplicated
/// against) an honest peer's packet numbers in the same space.
constexpr quic::PacketNumber kForgedPnBase = 1u << 20;
}  // namespace

std::vector<std::uint8_t> HostilePeer::seal(
    quic::PathId path, quic::PacketNumber pn,
    const std::vector<quic::Frame>& frames) const {
  quic::PacketHeader header;
  header.type = quic::PacketType::kOneRtt;
  header.cid_sequence = static_cast<std::uint32_t>(path);
  header.packet_number = pn;
  return quic::seal_packet(aead_, header, frames);
}

std::vector<std::uint8_t> HostilePeer::seal_initial(
    quic::PathId path, quic::PacketNumber pn,
    const std::vector<quic::Frame>& frames) const {
  quic::PacketHeader header;
  header.type = quic::PacketType::kInitial;
  header.cid_sequence = static_cast<std::uint32_t>(path);
  header.packet_number = pn;
  return quic::seal_packet(aead_, header, frames);
}

quic::PacketNumber HostilePeer::next_pn(quic::PathId path) const {
  auto it = pns_.find(path);
  return it == pns_.end() ? kForgedPnBase : it->second;
}

void HostilePeer::inject(quic::PathId path,
                         const std::vector<quic::Frame>& frames) {
  const quic::PacketNumber pn = next_pn(path);
  pns_[path] = pn + 1;
  inject_at(path, pn, frames);
}

void HostilePeer::inject_at(quic::PathId path, quic::PacketNumber pn,
                            const std::vector<quic::Frame>& frames) {
  inject_wire(path, seal(path, pn, frames));
}

void HostilePeer::inject_wire(quic::PathId path,
                              std::span<const std::uint8_t> wire) {
  ++injected_;
  victim_.on_datagram(path, net::PacketBuffer::copy_of(wire));
}

std::optional<std::vector<quic::Frame>> HostilePeer::open(
    std::span<const std::uint8_t> wire) const {
  const auto pkt = quic::parse_packet(wire);
  if (!pkt) return std::nullopt;
  return quic::open_packet(aead_, *pkt);
}

std::optional<quic::ConnectionCloseFrame> HostilePeer::find_close(
    const std::vector<std::vector<std::uint8_t>>& wires) const {
  for (const auto& wire : wires) {
    const auto frames = open(wire);
    if (!frames) continue;
    for (const quic::Frame& f : *frames)
      if (const auto* close = std::get_if<quic::ConnectionCloseFrame>(&f))
        return *close;
  }
  return std::nullopt;
}

}  // namespace xlink::harness
