// Session: one complete video-over-multipath-QUIC run.
//
// Owns the event loop, the emulated network, both connection endpoints,
// the media server/client, the video player, and the QoE capture conduit.
// This is the unit every bench and the A/B driver build on.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/qoe_feedback.h"
#include "core/session.h"
#include "harness/endpoint.h"
#include "http/media_client.h"
#include "http/media_server.h"
#include "net/network.h"
#include "telemetry/metrics.h"
#include "telemetry/trace_sink.h"
#include "video/player.h"
#include "video/qoe_capture.h"

namespace xlink::harness {

/// Per-session telemetry: when enabled, the Session owns one TraceSink
/// shared by both connection endpoints, the schedulers, and the player,
/// and (optionally) exports the trace as a qlog JSON file after run().
/// Tracing only reads simulator state, so enabling it does not perturb
/// any session outcome.
struct TraceConfig {
  bool enabled = false;
  std::size_t capacity = telemetry::TraceSink::kDefaultCapacity;
  /// When non-empty, Session::run() writes the qlog trace here.
  std::string qlog_path;
  /// Scenario label recorded in the qlog common_fields (e.g. bench name).
  std::string label;
};

struct SessionConfig {
  core::Scheme scheme = core::Scheme::kXlink;
  core::SchemeOptions options;
  /// Replaces the server-side packet scheduler (for comparing custom
  /// schedulers like ECF/BLEST outside the scheme catalogue).
  std::shared_ptr<quic::Scheduler> server_scheduler_override;
  std::vector<net::PathSpec> paths;  // candidate paths, any order
  video::VideoSpec video;
  http::MediaClient::Config client;
  http::MediaServer::Config server;
  sim::Duration qoe_period = sim::millis(100);
  /// Also send standalone QOE_CONTROL_SIGNALS frames decoupled from acks
  /// (the multipath draft's mechanism; the deployed paper system relied on
  /// ACK_MP piggybacking alone).
  bool standalone_qoe_feedback = false;
  sim::Duration time_limit = sim::seconds(120);
  /// Reorder candidate paths by the wireless-aware primary rank (§5.3).
  bool wireless_aware_primary = true;
  /// Attach a player (QoE metrics) or run as a plain download (Fig. 8).
  bool with_player = true;
  /// Extra delay before the client brings up secondary paths (models the
  /// radio/interface bring-up cost on phones).
  sim::Duration secondary_path_delay = 0;
  std::uint32_t startup_buffer_frames = 1;
  std::uint64_t seed = 1;
  /// Per-path health tracking + PTO-driven failover on both endpoints
  /// (DESIGN.md §7). Off reproduces the pre-failover transport, which the
  /// chaos suite uses as its no-failover baseline.
  bool path_health = true;
  /// Hostile-peer guard on both endpoints (quic/guard.h). Off reproduces
  /// the pre-guard permissive transport for ablations.
  bool guard = true;
  /// Invariant auditor on both endpoints; additionally gated by the
  /// XLINK_AUDIT env variable and the XLINK_AUDIT build option.
  bool audit = true;
  // Connection-migration baseline policy: migrate when no packet has
  // arrived for this long while a download is outstanding.
  sim::Duration cm_stall_threshold = sim::millis(600);
  sim::Duration cm_probe_interval = sim::millis(100);
  TraceConfig trace;
};

struct SessionResult {
  std::vector<double> chunk_rct_seconds;  // completed chunks only
  std::size_t chunks_total = 0;
  std::size_t chunks_completed = 0;
  std::optional<double> first_frame_seconds;
  /// Time until playback started (startup buffer filled). Startup waiting
  /// is not a stall: it is excluded from rebuffer and play time.
  std::optional<double> startup_delay_seconds;
  double rebuffer_rate = 0.0;
  double rebuffer_seconds = 0.0;
  double play_seconds = 0.0;
  std::uint32_t rebuffer_count = 0;
  bool video_finished = false;
  bool download_finished = false;
  double download_seconds = 0.0;  // start -> last chunk (or censored)
  std::uint64_t server_wire_bytes = 0;
  std::uint64_t stream_payload_bytes = 0;
  std::uint64_t reinjected_bytes = 0;
  std::uint64_t retransmitted_bytes = 0;
  std::uint64_t packets_lost = 0;
  double redundancy_ratio = 0.0;
  // FEC (server = protecting sender, client = recovering receiver).
  std::uint64_t fec_repair_bytes = 0;       // repair symbol bytes sent
  std::uint64_t fec_repair_packets = 0;
  std::uint64_t fec_windows_protected = 0;
  std::uint64_t fec_recovered_packets = 0;  // erasures rebuilt client-side
  std::uint64_t fec_wasted_symbols = 0;
  std::uint64_t fec_erased_seen = 0;        // erasures FEC windows observed
  // ABR (http/media_client + video/abr): zeros when ABR is off.
  bool abr_enabled = false;
  std::uint64_t abr_decisions = 0;
  std::uint64_t abr_switches = 0;
  std::uint64_t abr_switch_magnitude = 0;
  double abr_bitrate_utility = 0.0;  // frame-weighted chosen/top, [0,1]
  /// Per network path: bytes the server pushed down it.
  std::vector<std::uint64_t> path_down_bytes;
  /// Per network path: droptail high-water mark of the downlink queue --
  /// the congestion a paced sender avoids building (CC ablation bench).
  std::vector<std::uint64_t> path_peak_queue_bytes;
  /// Structured per-session metrics (counters/gauges/histograms); derived
  /// purely from the fields above plus connection stats, so it is
  /// deterministic for a fixed seed. Day-level aggregation merges these in
  /// session-index order (see harness/parallel.h).
  telemetry::MetricsRegistry metrics;
};

class Session {
 public:
  explicit Session(SessionConfig config);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Runs to completion (download + playback) or the time limit.
  SessionResult run();

  /// Optional periodic observer for time-series benches (Fig. 1, Fig. 6);
  /// set before run().
  std::function<void(Session&)> on_sample;
  sim::Duration sample_period = sim::millis(50);

  // Accessors for observers.
  sim::EventLoop& loop() { return loop_; }
  net::Network& network() { return *network_; }
  quic::Connection& client_conn() { return *client_conn_; }
  quic::Connection& server_conn() { return *server_conn_; }
  video::VideoPlayer* player() { return player_.get(); }
  http::MediaClient& media_client() { return *media_client_; }
  const video::VideoModel& video_model() const { return *video_model_; }
  const SessionConfig& config() const { return config_; }
  /// The session's trace sink; nullptr unless config.trace.enabled.
  telemetry::TraceSink* trace_sink() { return trace_.get(); }

 private:
  void open_secondary_paths();
  void cm_probe();
  void sample_tick();
  bool finished() const;
  void fill_metrics(SessionResult& result) const;

  SessionConfig config_;
  sim::EventLoop loop_;
  // Declared before the connections/player so the sink outlives everything
  // that holds a raw pointer to it.
  std::unique_ptr<telemetry::TraceSink> trace_;
  std::unique_ptr<net::Network> network_;
  std::shared_ptr<video::VideoModel> video_model_;
  std::shared_ptr<const video::RenditionSet> renditions_;  // ABR only
  std::unique_ptr<quic::Connection> client_conn_;
  std::unique_ptr<quic::Connection> server_conn_;
  std::unique_ptr<Endpoint> client_ep_;
  std::unique_ptr<Endpoint> server_ep_;
  std::unique_ptr<http::MediaServer> media_server_;
  std::unique_ptr<http::MediaClient> media_client_;
  std::unique_ptr<video::VideoPlayer> player_;
  std::unique_ptr<video::QoeCapture> qoe_capture_;
  std::unique_ptr<core::QoeFeedbackSender> qoe_sender_;

  std::size_t paths_opened_ = 1;
  // CM policy state.
  std::uint64_t cm_last_rx_packets_ = 0;
  sim::Time cm_last_progress_ = 0;
  std::size_t cm_current_path_ = 0;
};

/// Convenience: builds a PathSpec for a technology with a trace and an RTT
/// drawn from the technology's distribution.
net::PathSpec make_path_spec(net::Wireless tech, trace::LinkTrace down_trace,
                             sim::Duration rtt, double loss_rate = 0.0);

}  // namespace xlink::harness
