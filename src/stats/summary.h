// Sample accumulation and percentile statistics.
//
// Every experiment in the benchmark harness reports distributions (median,
// p95, p99 request completion times, buffer levels, ...). Summary collects
// raw samples and computes order statistics with linear interpolation, the
// same convention as numpy's default percentile.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace xlink::stats {

class Summary {
 public:
  Summary() = default;

  void add(double v) { samples_.push_back(v); }
  void add_all(const std::vector<double>& vs);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;
  double sum() const;

  /// Percentile in [0, 100] with linear interpolation between order
  /// statistics. Returns 0 for an empty summary.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  /// Fraction of samples strictly below `threshold`, in [0, 1].
  double fraction_below(double threshold) const;

  /// Raw samples (unsorted, in insertion order).
  const std::vector<double>& samples() const { return samples_; }

  /// One-line human-readable digest.
  std::string describe() const;

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Relative improvement of `ours` vs `baseline` in percent: positive means
/// `ours` is lower/better for metrics where smaller is better.
double improvement_pct(double baseline, double ours);

}  // namespace xlink::stats
