#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace xlink::stats {

void Summary::add_all(const std::vector<double>& vs) {
  samples_.insert(samples_.end(), vs.begin(), vs.end());
  sorted_valid_ = false;
}

void Summary::ensure_sorted() const {
  if (sorted_valid_ && sorted_.size() == samples_.size()) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Summary::min() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return sorted_.front();
}

double Summary::max() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return sorted_.back();
}

double Summary::sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double Summary::mean() const {
  if (samples_.empty()) return 0.0;
  return sum() / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

double Summary::fraction_below(double threshold) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), threshold);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

std::string Summary::describe() const {
  std::ostringstream os;
  os << "n=" << count() << " mean=" << mean() << " p50=" << median()
     << " p95=" << percentile(95) << " p99=" << percentile(99)
     << " max=" << max();
  return os.str();
}

double improvement_pct(double baseline, double ours) {
  if (baseline == 0.0) return 0.0;
  return (baseline - ours) / baseline * 100.0;
}

}  // namespace xlink::stats
