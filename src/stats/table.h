// ASCII table rendering for benchmark output.
//
// Every bench binary prints the rows/series of the paper's table or figure;
// Table keeps that output aligned and uniform.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace xlink::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 2);

  /// Renders the table with a header rule, column-aligned.
  std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes rows as CSV (header + rows) to the given path. Used by benches to
/// emit machine-readable series next to the human-readable table.
void write_csv(const std::string& path,
               const std::vector<std::string>& headers,
               const std::vector<std::vector<std::string>>& rows);

}  // namespace xlink::stats
