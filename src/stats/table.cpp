#include "stats/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace xlink::stats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

void write_csv(const std::string& path, const std::vector<std::string>& headers,
               const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path);
  if (!out) return;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out << ',';
      out << cells[i];
    }
    out << '\n';
  };
  emit(headers);
  for (const auto& r : rows) emit(r);
}

}  // namespace xlink::stats
