#include "energy/energy_model.h"

#include <algorithm>

namespace xlink::energy {

RadioProfile radio_profile(net::Wireless tech) {
  switch (tech) {
    case net::Wireless::kWifi:
      return {0.10, 0.85, sim::millis(200)};
    case net::Wireless::kLte:
      return {0.25, 1.60, sim::millis(1500)};
    case net::Wireless::k5gNsa:
      return {0.35, 2.30, sim::millis(1200)};
    case net::Wireless::k5gSa:
      return {0.30, 2.10, sim::millis(800)};
  }
  return {0.1, 1.0, 0};
}

EnergyReport compute_energy(const std::vector<RadioUsage>& radios,
                            std::uint64_t total_bytes,
                            sim::Duration duration) {
  EnergyReport report;
  const double secs = sim::to_seconds(duration);
  for (const auto& r : radios) {
    const RadioProfile p = radio_profile(r.tech);
    const double active_secs =
        std::min(sim::to_seconds(r.active_time + p.tail), secs);
    const double idle_secs = std::max(0.0, secs - active_secs);
    report.total_joules +=
        p.active_watts * active_secs + p.baseline_watts * idle_secs;
  }
  const double bits = static_cast<double>(total_bytes) * 8.0;
  if (bits > 0) report.energy_per_bit_nj = report.total_joules / bits * 1e9;
  if (secs > 0) report.throughput_mbps = bits / secs / 1e6;
  return report;
}

}  // namespace xlink::energy
