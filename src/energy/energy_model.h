// Radio energy model for the Fig. 14 experiment.
//
// The paper measured instantaneous current/voltage on 5G phones while
// downloading with XLINK over single radios and radio pairs. We model each
// radio with an RRC-flavoured two-state power profile: a baseline power
// while the radio is attached plus an active-transfer power while bits
// flow, with a post-transfer tail (the well-known cellular tail energy).
// Energy-per-bit then falls out of power x time / bits -- reproducing the
// paper's observation that dual radios raise instantaneous power but can
// LOWER energy per bit because the transfer finishes sooner.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/wireless.h"
#include "sim/time.h"

namespace xlink::energy {

struct RadioProfile {
  double baseline_watts = 0.0;  // attached, idle
  double active_watts = 0.0;    // while transferring
  sim::Duration tail = 0;       // high-power tail after last activity
};

/// Representative profiles (Snapdragon-class numbers from the measurement
/// literature; only ratios matter for the normalized Fig. 14 axes).
RadioProfile radio_profile(net::Wireless tech);

/// One radio's activity during a download.
struct RadioUsage {
  net::Wireless tech = net::Wireless::kWifi;
  std::uint64_t bytes_transferred = 0;
  sim::Duration active_time = 0;  // time with data flowing on this radio
};

struct EnergyReport {
  double total_joules = 0.0;
  double energy_per_bit_nj = 0.0;  // nanojoules per bit
  double throughput_mbps = 0.0;    // aggregate goodput
};

/// Computes the energy of a download of `total_bytes` lasting `duration`
/// over the given radios (all radios stay attached for the whole duration;
/// that is what multipath costs).
EnergyReport compute_energy(const std::vector<RadioUsage>& radios,
                            std::uint64_t total_bytes,
                            sim::Duration duration);

}  // namespace xlink::energy
