// BLEST-style scheduler (Ferlin et al., IFIP Networking 2016), simplified.
//
// Blocking ESTimation: sending on the slow path is worthwhile only if the
// bytes will NOT arrive so late that they head-of-line block data the fast
// path could deliver meanwhile. BLEST estimates how much the fast path
// can ship during one slow-path RTT; if the in-order window the receiver
// must buffer exceeds what it can absorb, the slow path sits out the
// round. Like ECF this is prediction-based scheduling -- the school the
// paper contrasts with XLINK's feedback-driven re-injection.
#include "mpquic/scheduler_util.h"
#include "mpquic/schedulers.h"

namespace xlink::mpquic {
namespace {

class BlestScheduler final : public quic::Scheduler {
 public:
  std::optional<quic::PathId> select_path(quic::Connection& conn) override {
    const auto ids = conn.schedulable_path_ids();
    if (ids.empty()) return std::nullopt;
    std::optional<quic::PathId> fastest;
    sim::Duration best = 0;
    for (quic::PathId id : ids) {
      const auto& p = conn.path_state(id);
      if (!fastest || p.rtt.smoothed() < best) {
        fastest = id;
        best = p.rtt.smoothed();
      }
    }
    const auto& fast = conn.path_state(*fastest);
    if (fast.cwnd_available() >= kMinRoom) return fastest;

    // Fast path blocked: consider the next-fastest path with room.
    std::optional<quic::PathId> slow;
    for (quic::PathId id : ids) {
      if (id == *fastest) continue;
      const auto& p = conn.path_state(id);
      if (p.cwnd_available() < kMinRoom) continue;
      if (!slow || p.rtt.smoothed() <
                       conn.path_state(*slow).rtt.smoothed())
        slow = id;
    }
    if (!slow) return std::nullopt;
    const auto& s = conn.path_state(*slow);

    // Blocking estimate: while one slow-path RTT elapses, the fast path
    // can deliver roughly rtt_s/rtt_f windows of data. If what we'd put on
    // the slow path (one packet round) risks arriving after all of that,
    // the receiver buffers the difference; BLEST sends on the slow path
    // only when that in-order gap stays under a budget.
    // The fast path's shipping rate comes from its delivery-rate sampler
    // (windowed-max btlbw) once samples exist; before that the estimate
    // falls back to cwnd/srtt, which over one slow-path RTT reduces to the
    // original cwnd * rtt_s/rtt_f formulation.
    const double rtt_ratio =
        static_cast<double>(s.rtt.smoothed()) /
        std::max<double>(static_cast<double>(fast.rtt.smoothed()), 1.0);
    const double fast_rate = fast.bandwidth_estimate_bytes_per_sec();
    const double fast_bytes_meanwhile =
        fast_rate > 0.0
            ? fast_rate * sim::to_seconds(s.rtt.smoothed())
            : static_cast<double>(fast.cc->cwnd_bytes()) * rtt_ratio;
    const double gap_budget =
        kLambda * static_cast<double>(fast.cc->cwnd_bytes() +
                                      s.cc->cwnd_bytes());
    if (fast_bytes_meanwhile <= gap_budget) return slow;
    return std::nullopt;  // predicted HoL blocking: wait
  }

  std::string name() const override { return "blest"; }

 private:
  static constexpr double kLambda = 2.0;  // tolerance knob
};

}  // namespace

std::shared_ptr<quic::Scheduler> make_blest_scheduler() {
  return std::make_shared<BlestScheduler>();
}

}  // namespace xlink::mpquic
