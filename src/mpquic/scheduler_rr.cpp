#include "mpquic/scheduler_util.h"
#include "mpquic/schedulers.h"

namespace xlink::mpquic {
namespace {

/// Naive round-robin over schedulable paths with window room.
class RoundRobinScheduler final : public quic::Scheduler {
 public:
  std::optional<quic::PathId> select_path(quic::Connection& conn) override {
    const auto ids = conn.schedulable_path_ids();
    if (ids.empty()) return std::nullopt;
    for (std::size_t tries = 0; tries < ids.size(); ++tries) {
      const quic::PathId id = ids[next_++ % ids.size()];
      if (conn.path_state(id).cwnd_available() >= kMinRoom) return id;
    }
    return std::nullopt;
  }
  std::string name() const override { return "round-robin"; }

 private:
  std::size_t next_ = 0;
};

}  // namespace

std::shared_ptr<quic::Scheduler> make_round_robin_scheduler() {
  return std::make_shared<RoundRobinScheduler>();
}

}  // namespace xlink::mpquic
