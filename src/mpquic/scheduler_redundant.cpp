#include "mpquic/scheduler_util.h"
#include "mpquic/schedulers.h"

namespace xlink::mpquic {
namespace {

/// Full redundancy: every packet's payload is duplicated onto another path
/// as soon as the queue drains (Raven-style). Maximum robustness, maximum
/// cost -- the paper's argument for why naive duplication cannot be
/// deployed for video.
class RedundantScheduler final : public quic::Scheduler {
 public:
  std::optional<quic::PathId> select_path(quic::Connection& conn) override {
    return pick_for_queue_head(conn);
  }

  void maybe_reinject(quic::Connection& conn) override {
    if (conn.schedulable_path_ids().size() < 2) return;
    if (!conn.send_queue().empty()) return;
    for (quic::PathId id : conn.path_ids()) {
      auto& p = conn.path_state(id);
      for (auto& [pn, rec] : p.unacked) {
        if (rec.items.empty() || rec.reinjected || rec.is_reinjection)
          continue;
        const std::uint64_t bytes =
            conn.reinject_record(rec, quic::InsertMode::kAppend);
        if (bytes > 0) {
          XLINK_TRACE(conn.trace(),
                      telemetry::Event::reinjection(
                          conn.loop().now(), conn.trace_origin(),
                          static_cast<std::uint8_t>(id), bytes, pn));
        }
      }
    }
  }

  std::string name() const override { return "redundant"; }
};

}  // namespace

std::shared_ptr<quic::Scheduler> make_redundant_scheduler() {
  return std::make_shared<RedundantScheduler>();
}

}  // namespace xlink::mpquic
