// Baseline multipath schedulers.
//
//  - MinRtt: the vanilla-MP scheduler of the paper's §3 (MPQUIC's default,
//    also Linux MPTCP's default). No re-injection.
//  - RoundRobin: naive alternation; exists as a lower baseline and for
//    tests that need deterministic path interleaving.
//  - Redundant: duplicates every in-flight packet onto the other path as
//    soon as capacity allows (Raven-style full redundancy); upper bound on
//    robustness, worst case on cost.
//
// The MPTCP-like baseline is MinRtt + Connection::Config{tcp_style_rto =
// true, ack_policy = kOriginalPath}; XLINK's scheduler lives in
// core/xlink_scheduler.h.
#pragma once

#include <memory>

#include "quic/scheduler.h"

namespace xlink::mpquic {

std::shared_ptr<quic::Scheduler> make_min_rtt_scheduler();
std::shared_ptr<quic::Scheduler> make_round_robin_scheduler();
std::shared_ptr<quic::Scheduler> make_redundant_scheduler();
/// Prediction-based related work (paper §8): simplified ECF and BLEST.
std::shared_ptr<quic::Scheduler> make_ecf_scheduler();
std::shared_ptr<quic::Scheduler> make_blest_scheduler();

}  // namespace xlink::mpquic
