// ECF-style scheduler (Lim et al., CoNEXT 2017), simplified.
//
// Earliest Completion First: when the fast path's window is exhausted and
// only a slower path has room, estimate whether routing the queued bytes
// through the slow path actually finishes sooner than WAITING for the
// fast path's window to reopen. If waiting wins, send nothing this round.
// This is the prediction-based school of scheduling the paper contrasts
// XLINK with: effective when estimates hold, brittle when wireless links
// swing. Rates come from the path's delivery-rate sampler (windowed-max
// btlbw) once it has samples, falling back to the crude cwnd/srtt
// inference before then.
#include "mpquic/scheduler_util.h"
#include "mpquic/schedulers.h"

namespace xlink::mpquic {
namespace {

class EcfScheduler final : public quic::Scheduler {
 public:
  std::optional<quic::PathId> select_path(quic::Connection& conn) override {
    // Fastest path with room wins outright.
    const auto ids = conn.schedulable_path_ids();
    if (ids.empty()) return std::nullopt;
    std::optional<quic::PathId> fastest;
    std::optional<quic::PathId> fastest_with_room;
    sim::Duration best = 0;
    for (quic::PathId id : ids) {
      const auto& p = conn.path_state(id);
      const sim::Duration rtt = p.rtt.smoothed();
      if (!fastest || rtt < best) {
        fastest = id;
        best = rtt;
      }
      if (p.cwnd_available() >= kMinRoom) {
        if (!fastest_with_room ||
            rtt < conn.path_state(*fastest_with_room).rtt.smoothed())
          fastest_with_room = id;
      }
    }
    if (!fastest_with_room) return std::nullopt;
    if (*fastest_with_room == *fastest) return fastest_with_room;

    // Only a slower path has room. Engaging it adds PARALLEL capacity;
    // what it costs is its extra delay. ECF's criterion: use the slow
    // path only when draining the backlog over the fast path alone takes
    // longer than the slow path's delay handicap -- otherwise the slow
    // path's bytes would arrive after the fast path could have delivered
    // them anyway (and risk HoL-blocking the stream).
    const auto& fast = conn.path_state(*fastest);
    const auto& slow = conn.path_state(*fastest_with_room);
    std::uint64_t queued = 0;
    for (const auto& item : conn.send_queue()) queued += item.length;
    const double rate_f = rate_bytes_per_sec(fast);
    if (rate_f <= 0) return fastest_with_room;
    const double t_drain_fast = static_cast<double>(queued) / rate_f;
    const double handicap =
        sim::to_seconds(slow.rtt.smoothed()) -
        sim::to_seconds(fast.rtt.smoothed());
    if (t_drain_fast >= handicap * (1.0 + kDelta))
      return fastest_with_room;
    return std::nullopt;  // wait for the fast path
  }

  std::string name() const override { return "ecf"; }

 private:
  static double rate_bytes_per_sec(const quic::PathState& p) {
    return p.bandwidth_estimate_bytes_per_sec();
  }

  static constexpr double kDelta = 0.25;  // hysteresis against flapping
};

}  // namespace

std::shared_ptr<quic::Scheduler> make_ecf_scheduler() {
  return std::make_shared<EcfScheduler>();
}

}  // namespace xlink::mpquic
