// Shared helpers for multipath packet schedulers.
#pragma once

#include <limits>
#include <optional>

#include "quic/connection.h"

namespace xlink::mpquic {

/// Minimum cwnd headroom for a path to be worth scheduling onto.
constexpr std::size_t kMinRoom = 256;

/// Effective delay metric of a path: its smoothed RTT, inflated by ack
/// silence when in-flight data has gone unacknowledged longer than the
/// estimator claims a round trip takes. On a fading link the estimator is
/// stale; the silence is the honest signal.
inline sim::Duration effective_rtt(const quic::Connection& conn,
                                   const quic::PathState& p) {
  sim::Duration rtt = p.rtt.smoothed();
  if (p.loss.has_ack_eliciting_in_flight() && p.last_ack_received > 0) {
    const sim::Duration silence = conn.loop().now() - p.last_ack_received;
    rtt = std::max(rtt, silence);
  }
  return rtt;
}

/// Min-RTT path among schedulable paths (active and not failed-over) with
/// congestion window room, excluding
/// `exclude` (used to send re-injections on a different path than the
/// original). Paths without an RTT sample rank by the RFC initial guess.
///
/// With `staleness_aware`, a path whose in-flight data has gone unacked
/// for longer than its smoothed RTT is ranked by that silence instead: the
/// estimator is stale on a fading link, and trusting it keeps feeding the
/// fade (the paper's Fig. 1a pathology). XLINK's scheduler uses this;
/// vanilla-MP deliberately does not.
inline std::optional<quic::PathId> pick_min_rtt(
    quic::Connection& conn, std::optional<quic::PathId> exclude = {},
    bool staleness_aware = false) {
  std::optional<quic::PathId> best;
  sim::Duration best_rtt = std::numeric_limits<sim::Duration>::max();
  for (quic::PathId id : conn.schedulable_path_ids()) {
    if (exclude && id == *exclude) continue;
    const auto& p = conn.path_state(id);
    if (p.cwnd_available() < kMinRoom) continue;
    const sim::Duration rtt =
        staleness_aware ? effective_rtt(conn, p) : p.rtt.smoothed();
    if (!best || rtt < best_rtt) {
      best = id;
      best_rtt = rtt;
    }
  }
  return best;
}

/// Path choice respecting the head item of the send queue: re-injections
/// prefer a path other than their origin. Returns nullopt when nothing is
/// sendable for the head item.
inline std::optional<quic::PathId> pick_for_queue_head(
    quic::Connection& conn, bool staleness_aware = false) {
  const auto& q = conn.send_queue();
  if (!q.empty() && q.front().is_reinjection && q.front().origin_path) {
    if (auto other =
            pick_min_rtt(conn, q.front().origin_path, staleness_aware))
      return other;
    // No alternative path: returning the origin lets the send loop drop the
    // now-pointless duplicate instead of stalling the queue.
    return pick_min_rtt(conn, {}, staleness_aware);
  }
  return pick_min_rtt(conn, {}, staleness_aware);
}

}  // namespace xlink::mpquic
