#include "mpquic/scheduler_util.h"
#include "mpquic/schedulers.h"

namespace xlink::mpquic {
namespace {

/// The vanilla-MP scheduler: lowest smoothed RTT among paths with window
/// room. No re-injection, no QoE awareness -- the §3 baseline whose
/// MP-HoL-blocking failures motivate XLINK.
class MinRttScheduler final : public quic::Scheduler {
 public:
  std::optional<quic::PathId> select_path(quic::Connection& conn) override {
    return pick_for_queue_head(conn);
  }
  std::string name() const override { return "min-rtt"; }
};

}  // namespace

std::shared_ptr<quic::Scheduler> make_min_rtt_scheduler() {
  return std::make_shared<MinRttScheduler>();
}

}  // namespace xlink::mpquic
