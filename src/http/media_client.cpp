#include "http/media_client.h"

#include <algorithm>

#include "http/range_protocol.h"

namespace xlink::http {

MediaClient::MediaClient(quic::Connection& conn,
                         const video::VideoModel& model, Config config)
    : conn_(conn), model_(model), config_(std::move(config)) {
  plan_ = video::ChunkPlan::fixed_size(model_.total_bytes(),
                                       config_.chunk_bytes);
  conn_.on_stream_readable = [this](quic::StreamId id) { on_readable(id); };
  conn_.on_stream_data_finished = [this](quic::StreamId id) {
    on_finished_stream(id);
  };
}

void MediaClient::start() {
  if (started_) return;
  started_ = true;
  issue_next();
}

void MediaClient::issue_next() {
  while (next_chunk_ < plan_.chunks.size() &&
         next_chunk_ - completed_ <
             static_cast<std::size_t>(config_.max_concurrent)) {
    const auto& chunk = plan_.chunks[next_chunk_];
    const quic::StreamId id = conn_.open_stream();
    // Earlier chunks play first: higher stream priority on our requests
    // (the server applies the same rule to its response data).
    conn_.set_stream_priority(id, -static_cast<int>(next_chunk_));
    chunk_streams_.push_back(id);
    ChunkMetrics m;
    m.begin = chunk.begin;
    m.end = chunk.end;
    m.issued_at = conn_.loop().now();
    metrics_.push_back(m);

    RangeRequest req;
    req.resource = config_.resource;
    req.begin = chunk.begin;
    req.end = chunk.end;
    conn_.stream_send(id, encode_request(req), /*fin=*/true);
    ++next_chunk_;
  }
}

std::optional<std::size_t> MediaClient::chunk_of_stream(
    quic::StreamId id) const {
  const auto it =
      std::find(chunk_streams_.begin(), chunk_streams_.end(), id);
  if (it == chunk_streams_.end()) return std::nullopt;
  return static_cast<std::size_t>(it - chunk_streams_.begin());
}

void MediaClient::on_readable(quic::StreamId id) {
  const auto chunk = chunk_of_stream(id);
  if (!chunk) return;
  // Drain (updates flow control); progress is tracked via read offsets.
  for (;;) {
    auto data = conn_.consume_stream(id, 64 * 1024);
    if (data.empty()) break;
    if (config_.verify_content) {
      const auto* stream = conn_.recv_stream(id);
      const std::uint64_t end_off = stream->read_offset();
      const std::uint64_t start_off = end_off - data.size();
      const std::uint64_t base = plan_.chunks[*chunk].begin;
      for (std::uint64_t i = 0; i < data.size(); ++i) {
        if (data[i] != model_.byte_at(base + start_off + i))
          ++content_mismatches_;
      }
    }
  }
  publish_progress();
}

void MediaClient::on_finished_stream(quic::StreamId id) {
  const auto chunk = chunk_of_stream(id);
  if (!chunk) return;
  auto& m = metrics_[*chunk];
  if (m.completed_at) return;
  m.completed_at = conn_.loop().now();
  ++completed_;
  publish_progress();
  issue_next();
  if (all_done()) {
    all_done_at_ = conn_.loop().now();
    if (on_all_done) on_all_done();
  }
}

std::uint64_t MediaClient::contiguous_bytes() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < chunk_streams_.size(); ++i) {
    const auto* stream = conn_.recv_stream(chunk_streams_[i]);
    const std::uint64_t have = stream ? stream->contiguous_received() : 0;
    const std::uint64_t size = plan_.chunks[i].end - plan_.chunks[i].begin;
    total += std::min(have, size);
    if (have < size) break;  // gap: later chunks are not contiguous yet
  }
  return total;
}

void MediaClient::publish_progress() {
  if (player_) player_->on_contiguous_bytes(contiguous_bytes());
}

std::vector<double> MediaClient::completion_times_seconds() const {
  std::vector<double> out;
  for (const auto& m : metrics_) {
    if (const auto t = m.completion_time())
      out.push_back(sim::to_seconds(*t));
  }
  return out;
}

}  // namespace xlink::http
