#include "http/media_client.h"

#include <algorithm>

#include "http/range_protocol.h"

namespace xlink::http {

MediaClient::MediaClient(quic::Connection& conn,
                         const video::VideoModel& model, Config config,
                         std::shared_ptr<const video::RenditionSet> renditions)
    : conn_(conn),
      model_(model),
      config_(std::move(config)),
      renditions_(std::move(renditions)) {
  if (config_.abr.algorithm != video::AbrAlgorithm::kFixed) {
    video::AbrConfig abr_cfg = config_.abr;
    if (abr_cfg.ladder.bitrates_bps.empty())
      abr_cfg.ladder = video::BitrateLadder::scaled(model_.spec().bitrate_bps);
    if (!renditions_)
      renditions_ = std::make_shared<const video::RenditionSet>(
          model_.spec(), abr_cfg.ladder);
    abr_ = video::make_abr_controller(abr_cfg, renditions_->ladder());
    // Frame-aligned chunks: one rendition decision per chunk_frames frames.
    const std::uint32_t frames = model_.frame_count();
    const std::uint32_t per =
        std::max<std::uint32_t>(1, abr_cfg.chunk_frames);
    for (std::uint32_t begin = 0; begin < frames; begin += per) {
      AbrChunk ck;
      ck.begin_frame = begin;
      ck.end_frame = std::min(begin + per, frames);
      abr_chunks_.push_back(ck);
    }
    if (abr_chunks_.empty()) abr_chunks_.push_back({0, 0, 0});
  } else {
    plan_ = video::ChunkPlan::fixed_size(model_.total_bytes(),
                                         config_.chunk_bytes);
  }
  conn_.on_stream_readable = [this](quic::StreamId id) { on_readable(id); };
  conn_.on_stream_data_finished = [this](quic::StreamId id) {
    on_finished_stream(id);
  };
}

void MediaClient::start() {
  if (started_) return;
  started_ = true;
  issue_next();
}

void MediaClient::issue_abr_chunk(std::size_t index) {
  AbrChunk& ck = abr_chunks_[index];
  video::AbrInputs in;
  in.chunk_index = index;
  if (player_) in.buffer_level = player_->buffer_level();
  if (qoe_source_) in.qoe = qoe_source_();
  if (btlbw_source_) in.btlbw_bps = btlbw_source_();
  const auto prev = abr_->last_rung();
  const video::AbrDecision d = abr_->choose(in);
  ck.rung = d.rung;
  XLINK_TRACE(trace_,
              telemetry::Event::abr_decision(
                  conn_.loop().now(), index, d.rung,
                  prev ? static_cast<std::uint64_t>(*prev)
                       : telemetry::kNoValue,
                  d.estimate_bps != 0 ? d.estimate_bps : telemetry::kNoValue,
                  static_cast<std::uint64_t>(
                      sim::to_millis(in.buffer_level))));

  const std::uint32_t frames = ck.end_frame - ck.begin_frame;
  const std::uint64_t ladder_bps = renditions_->ladder().bitrate(d.rung);
  chosen_bitrate_frames_ += ladder_bps * frames;
  top_bitrate_frames_ +=
      renditions_->ladder().bitrate(renditions_->top_rung()) * frames;

  const video::VideoModel& m = *renditions_->model(d.rung);
  ChunkMetrics met;
  met.begin = m.frame_offset(ck.begin_frame);
  met.end = m.frame_offset(ck.end_frame);
  met.issued_at = conn_.loop().now();

  const quic::StreamId id = conn_.open_stream();
  conn_.set_stream_priority(id, -static_cast<int>(index));
  chunk_streams_.push_back(id);
  metrics_.push_back(met);

  RangeRequest req;
  req.resource = video::rendition_resource(config_.resource, d.rung,
                                           renditions_->top_rung());
  req.begin = met.begin;
  req.end = met.end;
  conn_.stream_send(id, encode_request(req), /*fin=*/true);
}

void MediaClient::issue_next() {
  while (next_chunk_ < chunk_count() &&
         next_chunk_ - completed_ <
             static_cast<std::size_t>(config_.max_concurrent)) {
    if (abr_) {
      issue_abr_chunk(next_chunk_);
      ++next_chunk_;
      continue;
    }
    const auto& chunk = plan_.chunks[next_chunk_];
    const quic::StreamId id = conn_.open_stream();
    // Earlier chunks play first: higher stream priority on our requests
    // (the server applies the same rule to its response data).
    conn_.set_stream_priority(id, -static_cast<int>(next_chunk_));
    chunk_streams_.push_back(id);
    ChunkMetrics m;
    m.begin = chunk.begin;
    m.end = chunk.end;
    m.issued_at = conn_.loop().now();
    metrics_.push_back(m);

    RangeRequest req;
    req.resource = config_.resource;
    req.begin = chunk.begin;
    req.end = chunk.end;
    conn_.stream_send(id, encode_request(req), /*fin=*/true);
    ++next_chunk_;
  }
}

std::optional<std::size_t> MediaClient::chunk_of_stream(
    quic::StreamId id) const {
  const auto it =
      std::find(chunk_streams_.begin(), chunk_streams_.end(), id);
  if (it == chunk_streams_.end()) return std::nullopt;
  return static_cast<std::size_t>(it - chunk_streams_.begin());
}

void MediaClient::on_readable(quic::StreamId id) {
  const auto chunk = chunk_of_stream(id);
  if (!chunk) return;
  // Drain (updates flow control); progress is tracked via read offsets.
  for (;;) {
    auto data = conn_.consume_stream(id, 64 * 1024);
    if (data.empty()) break;
    if (config_.verify_content) {
      const auto* stream = conn_.recv_stream(id);
      const std::uint64_t end_off = stream->read_offset();
      const std::uint64_t start_off = end_off - data.size();
      // Content bytes depend only on offset and seed, which all
      // renditions share, so model_.byte_at verifies any rendition.
      const std::uint64_t base = metrics_[*chunk].begin;
      for (std::uint64_t i = 0; i < data.size(); ++i) {
        if (data[i] != model_.byte_at(base + start_off + i))
          ++content_mismatches_;
      }
    }
  }
  publish_progress();
}

void MediaClient::on_finished_stream(quic::StreamId id) {
  const auto chunk = chunk_of_stream(id);
  if (!chunk) return;
  auto& m = metrics_[*chunk];
  if (m.completed_at) return;
  m.completed_at = conn_.loop().now();
  ++completed_;
  if (abr_) abr_->on_chunk_downloaded(m.end - m.begin, *m.completed_at -
                                                           m.issued_at);
  publish_progress();
  issue_next();
  if (all_done()) {
    all_done_at_ = conn_.loop().now();
    if (on_all_done) on_all_done();
  }
}

std::uint64_t MediaClient::chunk_have_bytes(std::size_t chunk) const {
  const auto* stream = conn_.recv_stream(chunk_streams_[chunk]);
  const std::uint64_t have = stream ? stream->contiguous_received() : 0;
  return std::min(have, metrics_[chunk].end - metrics_[chunk].begin);
}

std::uint64_t MediaClient::contiguous_bytes() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < chunk_streams_.size(); ++i) {
    const std::uint64_t have = chunk_have_bytes(i);
    total += have;
    if (have < metrics_[i].end - metrics_[i].begin)
      break;  // gap: later chunks are not contiguous yet
  }
  return total;
}

std::uint32_t MediaClient::abr_frames_contiguous() const {
  std::uint32_t frames = 0;
  for (std::size_t i = 0; i < chunk_streams_.size(); ++i) {
    const AbrChunk& ck = abr_chunks_[i];
    const std::uint64_t have = chunk_have_bytes(i);
    // frames_in_prefix over this rendition's byte space: offsets below
    // metrics_[i].begin == frame_offset(begin_frame) count the chunk's
    // predecessors "for free", so the result is an absolute frame count.
    const video::VideoModel& m = *renditions_->model(ck.rung);
    const std::uint32_t in_prefix =
        m.frames_in_prefix(metrics_[i].begin + have);
    frames = std::max(frames, std::min(in_prefix, ck.end_frame));
    if (have < metrics_[i].end - metrics_[i].begin) break;  // gap
  }
  return frames;
}

std::uint64_t MediaClient::abr_bytes_ahead(
    std::uint32_t playhead_frame) const {
  const std::uint64_t total = contiguous_bytes();
  std::uint64_t consumed = 0;
  for (std::size_t i = 0; i < chunk_streams_.size(); ++i) {
    const AbrChunk& ck = abr_chunks_[i];
    if (ck.end_frame <= playhead_frame) {
      consumed += metrics_[i].end - metrics_[i].begin;
      continue;
    }
    if (ck.begin_frame < playhead_frame) {
      const video::VideoModel& m = *renditions_->model(ck.rung);
      consumed += m.frame_offset(playhead_frame) - metrics_[i].begin;
    }
    break;
  }
  return total > consumed ? total - consumed : 0;
}

std::uint64_t MediaClient::abr_playhead_bps(
    std::uint32_t playhead_frame) const {
  for (std::size_t i = 0; i < chunk_streams_.size(); ++i) {
    const AbrChunk& ck = abr_chunks_[i];
    if (playhead_frame >= ck.begin_frame && playhead_frame < ck.end_frame)
      return renditions_->ladder().bitrate(ck.rung);
  }
  return 0;  // playhead past the issued chunks; player keeps its last bps
}

void MediaClient::publish_progress() {
  if (!player_) return;
  if (abr_) {
    const std::uint32_t playhead = player_->frames_played();
    const std::uint32_t avail = abr_frames_contiguous();
    player_->on_abr_progress(avail, abr_bytes_ahead(playhead),
                             abr_playhead_bps(playhead));
    return;
  }
  player_->on_contiguous_bytes(contiguous_bytes());
}

MediaClient::AbrSummary MediaClient::abr_summary() const {
  AbrSummary s;
  if (!abr_) return s;
  s.decisions = abr_->decisions();
  s.switches = abr_->switches();
  s.switch_magnitude = abr_->switch_magnitude();
  s.bitrate_utility =
      top_bitrate_frames_ > 0
          ? static_cast<double>(chosen_bitrate_frames_) /
                static_cast<double>(top_bitrate_frames_)
          : 0.0;
  return s;
}

std::vector<double> MediaClient::completion_times_seconds() const {
  std::vector<double> out;
  for (const auto& m : metrics_) {
    if (const auto t = m.completion_time())
      out.push_back(sim::to_seconds(*t));
  }
  return out;
}

}  // namespace xlink::http
