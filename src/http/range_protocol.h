// Minimal HTTP-style range request protocol carried over QUIC streams.
//
// The Taobao client's MediaCacheService issues HTTP range requests for
// video chunks; one request/response pair maps to one bidirectional QUIC
// stream. The wire format is a single text line:
//     GET <resource> <begin> <end>\n
// followed (server->client) by the raw bytes of [begin, end).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace xlink::http {

struct RangeRequest {
  std::string resource;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;  // half-open

  bool operator==(const RangeRequest&) const = default;
};

/// Serializes a request line (including the terminating newline).
std::vector<std::uint8_t> encode_request(const RangeRequest& req);

/// Parses a complete request line; nullopt if `data` holds no full line or
/// the line is malformed.
std::optional<RangeRequest> parse_request(
    const std::vector<std::uint8_t>& data);

}  // namespace xlink::http
