#include "http/media_server.h"

#include <algorithm>

namespace xlink::http {

MediaServer::MediaServer(quic::Connection& conn, Config config)
    : conn_(conn), config_(config) {
  conn_.on_stream_readable = [this](quic::StreamId id) { on_readable(id); };
}

void MediaServer::add_video(
    const std::string& name,
    std::shared_ptr<const video::VideoModel> model) {
  videos_[name] = std::move(model);
}

void MediaServer::on_readable(quic::StreamId id) {
  if (served_[id]) return;
  auto chunk = conn_.consume_stream(id, 4096);
  auto& buf = partial_requests_[id];
  buf.insert(buf.end(), chunk.begin(), chunk.end());
  const auto req = parse_request(buf);
  if (!req) return;
  served_[id] = true;
  partial_requests_.erase(id);
  serve(id, *req);
}

void MediaServer::serve(quic::StreamId id, const RangeRequest& req) {
  auto vit = videos_.find(req.resource);
  if (vit == videos_.end()) {
    conn_.stream_send(id, {}, /*fin=*/true);  // empty body: not found
    return;
  }
  const video::VideoModel& model = *vit->second;
  const std::uint64_t begin = std::min(req.begin, model.total_bytes());
  const std::uint64_t end = std::min(req.end, model.total_bytes());

  std::vector<std::uint8_t> body(end - begin);
  for (std::uint64_t i = 0; i < body.size(); ++i)
    body[i] = model.byte_at(begin + i);

  ++requests_served_;
  bytes_served_ += body.size();

  // Earlier chunks (smaller stream ids) outrank later ones: the paper's
  // stream-priority rule for sequentially-played video portions.
  conn_.set_stream_priority(id, -static_cast<int>(id / 4));

  // First-video-frame acceleration: elevate the bytes of frame 0 if this
  // range covers any of them. Positions are stream offsets of the body.
  const std::uint64_t ff_end = model.first_frame_bytes();
  if (config_.first_frame_acceleration && begin < ff_end) {
    const std::uint64_t prioritized = std::min(end, ff_end) - begin;
    conn_.stream_send_prioritized(id, std::move(body), /*fin=*/true,
                                  config_.first_frame_priority,
                                  /*position=*/0, /*size=*/prioritized);
  } else {
    conn_.stream_send(id, std::move(body), /*fin=*/true);
  }
}

}  // namespace xlink::http
