// Media client: the MediaCacheService role of Fig. 5.
//
// Downloads a video as a sequence of HTTP range requests, one QUIC stream
// per chunk, keeping a configurable number of chunk requests in flight
// (the paper: "the video player may simultaneously request multiple
// streams, with each downloading a small portion of the video"). Reports
// contiguous progress to the VideoPlayer and records per-chunk request
// completion times -- the paper's headline RCT metric.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "quic/connection.h"
#include "video/player.h"
#include "video/video_model.h"

namespace xlink::http {

class MediaClient {
 public:
  struct Config {
    std::string resource = "video";
    std::uint64_t chunk_bytes = 512 * 1024;
    int max_concurrent = 2;  // concurrent chunk streams (pre-fetch)
    bool verify_content = false;
  };

  struct ChunkMetrics {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    sim::Time issued_at = 0;
    std::optional<sim::Time> completed_at;

    std::optional<sim::Duration> completion_time() const {
      if (!completed_at) return std::nullopt;
      return *completed_at - issued_at;
    }
  };

  MediaClient(quic::Connection& conn, const video::VideoModel& model,
              Config config);

  /// Attaches a player fed with contiguous download progress.
  void set_player(video::VideoPlayer* player) { player_ = player; }

  /// Issues the first window of chunk requests (call once established).
  void start();

  bool all_done() const {
    return started_ && completed_ == plan_.chunks.size();
  }
  std::function<void()> on_all_done;

  /// Time the last chunk completed (wall clock of the whole download).
  std::optional<sim::Time> all_done_at() const { return all_done_at_; }

  const std::vector<ChunkMetrics>& chunk_metrics() const { return metrics_; }
  /// Completion times of finished chunks, in seconds.
  std::vector<double> completion_times_seconds() const;
  /// Total contiguous bytes downloaded from the start of the video.
  std::uint64_t contiguous_bytes() const;
  std::uint64_t content_mismatches() const { return content_mismatches_; }

 private:
  void issue_next();
  void on_readable(quic::StreamId id);
  void on_finished_stream(quic::StreamId id);
  void publish_progress();
  std::optional<std::size_t> chunk_of_stream(quic::StreamId id) const;

  quic::Connection& conn_;
  const video::VideoModel& model_;
  Config config_;
  video::VideoPlayer* player_ = nullptr;

  video::ChunkPlan plan_;
  std::vector<quic::StreamId> chunk_streams_;  // stream id per chunk
  std::vector<ChunkMetrics> metrics_;
  std::size_t next_chunk_ = 0;
  std::size_t completed_ = 0;
  std::optional<sim::Time> all_done_at_;
  std::uint64_t content_mismatches_ = 0;
  bool started_ = false;
};

}  // namespace xlink::http
