// Media client: the MediaCacheService role of Fig. 5.
//
// Downloads a video as a sequence of HTTP range requests, one QUIC stream
// per chunk, keeping a configurable number of chunk requests in flight
// (the paper: "the video player may simultaneously request multiple
// streams, with each downloading a small portion of the video"). Reports
// contiguous progress to the VideoPlayer and records per-chunk request
// completion times -- the paper's headline RCT metric.
//
// With an ABR algorithm configured, chunks are frame-aligned and each
// chunk's rendition is chosen by an AbrController at issue time: the
// range request targets that rendition's resource and byte range, and
// progress is published to the player as whole frames (the only unit that
// is comparable across renditions).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "quic/connection.h"
#include "telemetry/trace_sink.h"
#include "video/abr.h"
#include "video/player.h"
#include "video/video_model.h"

namespace xlink::http {

class MediaClient {
 public:
  struct Config {
    std::string resource = "video";
    std::uint64_t chunk_bytes = 512 * 1024;
    int max_concurrent = 2;  // concurrent chunk streams (pre-fetch)
    bool verify_content = false;
    /// abr.algorithm != kFixed switches the client to frame-aligned
    /// chunks with per-chunk rendition selection.
    video::AbrConfig abr;
  };

  struct ChunkMetrics {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    sim::Time issued_at = 0;
    std::optional<sim::Time> completed_at;

    std::optional<sim::Duration> completion_time() const {
      if (!completed_at) return std::nullopt;
      return *completed_at - issued_at;
    }
  };

  /// Aggregate ABR behaviour of this download (zeros when ABR is off).
  struct AbrSummary {
    std::uint64_t decisions = 0;
    std::uint64_t switches = 0;
    std::uint64_t switch_magnitude = 0;  // sum |rung delta|
    /// Frame-weighted chosen bitrate over the top-rung bitrate, in [0,1];
    /// counts issued chunks only.
    double bitrate_utility = 0.0;
  };

  /// `renditions` must outlive the client and is required when ABR is on;
  /// the top rung must match `model`'s spec. The fixed-bitrate path
  /// ignores it.
  MediaClient(quic::Connection& conn, const video::VideoModel& model,
              Config config,
              std::shared_ptr<const video::RenditionSet> renditions = nullptr);

  /// Attaches a player fed with contiguous download progress.
  void set_player(video::VideoPlayer* player) { player_ = player; }

  /// Latest QoE feedback signal for the hybrid controller (the same
  /// conduit the XLINK scheduler reads).
  void set_qoe_source(
      std::function<std::optional<quic::QoeSignal>()> source) {
    qoe_source_ = std::move(source);
  }
  /// Transport bottleneck-bandwidth estimate in bits/s (delivery-rate
  /// btlbw); 0 = none yet.
  void set_btlbw_source(std::function<std::uint64_t()> source) {
    btlbw_source_ = std::move(source);
  }

  /// Session telemetry sink (abr:decision events, Origin::kSession).
  void set_trace(telemetry::TraceSink* sink) { trace_ = sink; }

  /// Issues the first window of chunk requests (call once established).
  void start();

  bool all_done() const {
    return started_ && completed_ == chunk_count();
  }
  std::function<void()> on_all_done;

  /// Time the last chunk completed (wall clock of the whole download).
  std::optional<sim::Time> all_done_at() const { return all_done_at_; }

  std::size_t chunk_count() const {
    return abr_ ? abr_chunks_.size() : plan_.chunks.size();
  }
  const std::vector<ChunkMetrics>& chunk_metrics() const { return metrics_; }
  /// Completion times of finished chunks, in seconds.
  std::vector<double> completion_times_seconds() const;
  /// Total contiguous bytes downloaded from the start of the video.
  std::uint64_t contiguous_bytes() const;
  std::uint64_t content_mismatches() const { return content_mismatches_; }

  bool abr_enabled() const { return abr_ != nullptr; }
  AbrSummary abr_summary() const;
  /// Rung chosen for an issued chunk (conformance tests / benches).
  std::size_t chunk_rung(std::size_t chunk) const {
    return abr_chunks_[chunk].rung;
  }

 private:
  struct AbrChunk {
    std::uint32_t begin_frame = 0;
    std::uint32_t end_frame = 0;  // half-open
    std::size_t rung = 0;         // filled at issue time
  };

  void issue_next();
  void issue_abr_chunk(std::size_t index);
  void on_readable(quic::StreamId id);
  void on_finished_stream(quic::StreamId id);
  void publish_progress();
  std::optional<std::size_t> chunk_of_stream(quic::StreamId id) const;
  std::uint64_t chunk_have_bytes(std::size_t chunk) const;
  /// Whole frames contiguously playable from the start (ABR mode).
  std::uint32_t abr_frames_contiguous() const;
  /// Buffered bytes past `playhead_frame` (actual mixed-rendition bytes).
  std::uint64_t abr_bytes_ahead(std::uint32_t playhead_frame) const;
  /// Bitrate of the rendition under the playhead (QoE snapshot bps).
  std::uint64_t abr_playhead_bps(std::uint32_t playhead_frame) const;

  quic::Connection& conn_;
  const video::VideoModel& model_;
  Config config_;
  video::VideoPlayer* player_ = nullptr;
  std::function<std::optional<quic::QoeSignal>()> qoe_source_;
  std::function<std::uint64_t()> btlbw_source_;
  telemetry::TraceSink* trace_ = nullptr;

  video::ChunkPlan plan_;  // fixed-bitrate mode only
  // ABR mode.
  std::shared_ptr<const video::RenditionSet> renditions_;
  std::unique_ptr<video::AbrController> abr_;
  std::vector<AbrChunk> abr_chunks_;
  std::uint64_t chosen_bitrate_frames_ = 0;  // sum bitrate(rung) * frames
  std::uint64_t top_bitrate_frames_ = 0;     // sum bitrate(top)  * frames

  std::vector<quic::StreamId> chunk_streams_;  // stream id per chunk
  std::vector<ChunkMetrics> metrics_;
  std::size_t next_chunk_ = 0;
  std::size_t completed_ = 0;
  std::optional<sim::Time> all_done_at_;
  std::uint64_t content_mismatches_ = 0;
  bool started_ = false;
};

}  // namespace xlink::http
