// Media server: serves video byte ranges over QUIC streams.
//
// The edge-server role of Fig. 2. Understands the videos it hosts well
// enough to express first-video-frame priority to the transport through
// the stream_send API (paper §5.1): if a requested range overlaps the
// first video frame, those bytes are marked with elevated video-frame
// priority so XLINK's re-injection can accelerate them.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "quic/connection.h"
#include "http/range_protocol.h"
#include "video/video_model.h"

namespace xlink::http {

class MediaServer {
 public:
  struct Config {
    /// Express first-video-frame priority to the transport (Fig. 12's
    /// toggle: off reproduces "XLINK w/o first-frame acceleration").
    bool first_frame_acceleration = true;
    int first_frame_priority = 1;
  };

  MediaServer(quic::Connection& conn, Config config);

  void add_video(const std::string& name,
                 std::shared_ptr<const video::VideoModel> model);

  std::uint64_t requests_served() const { return requests_served_; }
  std::uint64_t bytes_served() const { return bytes_served_; }

 private:
  void on_readable(quic::StreamId id);
  void serve(quic::StreamId id, const RangeRequest& req);

  quic::Connection& conn_;
  Config config_;
  std::map<std::string, std::shared_ptr<const video::VideoModel>> videos_;
  std::map<quic::StreamId, std::vector<std::uint8_t>> partial_requests_;
  std::map<quic::StreamId, bool> served_;
  std::uint64_t requests_served_ = 0;
  std::uint64_t bytes_served_ = 0;
};

}  // namespace xlink::http
