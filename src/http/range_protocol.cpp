#include "http/range_protocol.h"

#include <algorithm>
#include <charconv>

namespace xlink::http {

std::vector<std::uint8_t> encode_request(const RangeRequest& req) {
  std::string line = "GET " + req.resource + " " +
                     std::to_string(req.begin) + " " +
                     std::to_string(req.end) + "\n";
  return {line.begin(), line.end()};
}

std::optional<RangeRequest> parse_request(
    const std::vector<std::uint8_t>& data) {
  const auto nl = std::find(data.begin(), data.end(), std::uint8_t{'\n'});
  if (nl == data.end()) return std::nullopt;
  const std::string line(data.begin(), nl);

  // Tokenize: "GET <resource> <begin> <end>".
  std::vector<std::string> tokens;
  std::size_t pos = 0;
  while (pos < line.size()) {
    const std::size_t space = line.find(' ', pos);
    if (space == std::string::npos) {
      tokens.push_back(line.substr(pos));
      break;
    }
    tokens.push_back(line.substr(pos, space - pos));
    pos = space + 1;
  }
  if (tokens.size() != 4 || tokens[0] != "GET") return std::nullopt;

  RangeRequest req;
  req.resource = tokens[1];
  auto parse_u64 = [](const std::string& s, std::uint64_t& out) {
    const auto [ptr, ec] =
        std::from_chars(s.data(), s.data() + s.size(), out);
    return ec == std::errc() && ptr == s.data() + s.size();
  };
  if (!parse_u64(tokens[2], req.begin) || !parse_u64(tokens[3], req.end))
    return std::nullopt;
  if (req.end < req.begin) return std::nullopt;
  return req;
}

}  // namespace xlink::http
