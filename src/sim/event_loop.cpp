#include "sim/event_loop.h"

#include <algorithm>

namespace xlink::sim {

EventId EventLoop::schedule_at(Time at, Callback cb) {
  std::uint32_t slot;
  if (free_head_ != kNilSlot) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  s.live = true;
  ++live_;
  const EventId id = make_id(slot, s.generation);
  heap_.push_back(Entry{std::max(at, now_), next_seq_++, id});
  std::push_heap(heap_.begin(), heap_.end(), FiresAfter{});
  return id;
}

bool EventLoop::cancel(EventId id) {
  if (!is_live(id)) return false;
  release(slot_of(id));
  ++dead_in_heap_;  // the heap entry stays behind until popped or compacted
  maybe_compact();
  return true;
}

void EventLoop::release(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb.reset();
  s.live = false;
  if (++s.generation == 0) s.generation = 1;  // keep ids nonzero on wrap
  s.next_free = free_head_;
  free_head_ = slot;
  --live_;
}

bool EventLoop::pop_next(Entry& out) {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), FiresAfter{});
    const Entry e = heap_.back();
    heap_.pop_back();
    if (!is_live(e.id)) {  // cancelled: skip lazily-deleted entry
      --dead_in_heap_;
      continue;
    }
    out = e;
    return true;
  }
  return false;
}

void EventLoop::run() {
  stopped_ = false;
  Entry e;
  while (!stopped_ && pop_next(e)) {
    now_ = e.at;
    fire(e.id);
  }
}

void EventLoop::run_until(Time deadline) {
  stopped_ = false;
  while (!stopped_) {
    Entry e;
    if (!pop_next(e)) break;
    if (e.at > deadline) {
      // Not due yet: re-queue with the original sequence number so that the
      // FIFO order among same-timestamp events is preserved.
      heap_.push_back(e);
      std::push_heap(heap_.begin(), heap_.end(), FiresAfter{});
      break;
    }
    now_ = e.at;
    fire(e.id);
  }
  now_ = std::max(now_, deadline);
}

void EventLoop::fire(EventId id) {
  const std::uint32_t slot = slot_of(id);
  // Move the callback out and free the slot first, so the callback can
  // schedule new events (possibly reusing this very slot) and cancelling
  // the fired id from inside the callback is a no-op.
  EventCallback cb = std::move(slots_[slot].cb);
  release(slot);
  ++fired_;
  cb();
}

void EventLoop::compact() {
  std::erase_if(heap_, [this](const Entry& e) { return !is_live(e.id); });
  std::make_heap(heap_.begin(), heap_.end(), FiresAfter{});
  dead_in_heap_ = 0;
}

void EventLoop::maybe_compact() {
  if (dead_in_heap_ >= 64 && dead_in_heap_ * 2 >= heap_.size()) compact();
}

}  // namespace xlink::sim
