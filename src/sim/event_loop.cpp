#include "sim/event_loop.h"

#include <algorithm>

namespace xlink::sim {

EventId EventLoop::schedule_at(Time at, Callback cb) {
  const EventId id = next_id_++;
  queue_.push(Entry{std::max(at, now_), next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

bool EventLoop::cancel(EventId id) { return callbacks_.erase(id) > 0; }

bool EventLoop::pop_next(Entry& out) {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    if (!callbacks_.contains(e.id)) continue;  // cancelled
    out = e;
    return true;
  }
  return false;
}

void EventLoop::run() {
  stopped_ = false;
  Entry e;
  while (!stopped_ && pop_next(e)) {
    now_ = e.at;
    fire(e.id);
  }
}

void EventLoop::run_until(Time deadline) {
  stopped_ = false;
  while (!stopped_) {
    Entry e;
    if (!pop_next(e)) break;
    if (e.at > deadline) {
      // Not due yet: re-queue with the original sequence number so that the
      // FIFO order among same-timestamp events is preserved.
      queue_.push(e);
      break;
    }
    now_ = e.at;
    fire(e.id);
  }
  now_ = std::max(now_, deadline);
}

void EventLoop::fire(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return;  // cancelled between pop and fire
  Callback cb = std::move(it->second);
  callbacks_.erase(it);
  ++fired_;
  cb();
}

}  // namespace xlink::sim
