// Fixed-size worker pool for embarrassingly-parallel experiment batches.
//
// Every session simulation is an independent, seed-deterministic EventLoop
// run, so populations parallelize trivially: workers pull item indices
// from a shared counter and write results into pre-sized slots. The pool
// itself knows nothing about sessions — it runs plain closures.
//
// Thread count selection (default_jobs): the XLINK_JOBS environment
// variable when set to a positive integer, otherwise
// std::thread::hardware_concurrency(). jobs == 1 is the serial fallback:
// parallel_for_each then runs inline on the calling thread with no worker
// threads involved.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace xlink::sim {

class ThreadPool {
 public:
  /// Spawns `jobs` workers; 0 means default_jobs().
  explicit ThreadPool(unsigned jobs = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned jobs() const { return jobs_; }

  /// Enqueues a task; workers execute tasks in FIFO submission order.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Runs body(0) .. body(count-1) across the pool's workers and blocks
  /// until all are done. Indices are claimed dynamically, so uneven item
  /// costs balance out. The first exception thrown by any invocation is
  /// rethrown here (remaining indices are abandoned). Must not be called
  /// from inside one of this pool's own tasks.
  void parallel_for_each(std::size_t count,
                         const std::function<void(std::size_t)>& body);

  /// XLINK_JOBS env var (positive integer) if set, otherwise
  /// hardware_concurrency(); always >= 1.
  static unsigned default_jobs();

 private:
  void worker_main();

  unsigned jobs_;
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::size_t outstanding_ = 0;  // queued + currently running
  bool shutdown_ = false;
};

/// Convenience wrapper: serial inline loop when `jobs` resolves to 1,
/// otherwise a transient ThreadPool. jobs == 0 means default_jobs().
void parallel_for_each(std::size_t count,
                       const std::function<void(std::size_t)>& body,
                       unsigned jobs = 0);

}  // namespace xlink::sim
