// Deterministic random number generation for the simulator.
//
// Every stochastic component takes an explicit Rng (or a seed) so that whole
// experiments are reproducible from a single top-level seed. The generator is
// splitmix64-based: tiny state, excellent statistical quality for simulation
// purposes, and cheap to fork into independent streams.
#pragma once

#include <cstdint>

namespace xlink::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value (splitmix64).
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform_double();

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponentially distributed double with the given mean.
  double exponential(double mean);

  /// Normally distributed double (Box-Muller).
  double normal(double mean, double stddev);

  /// Log-normally distributed double parameterized by the underlying
  /// normal's mu/sigma.
  double lognormal(double mu, double sigma);

  /// Forks an independent generator; forks of the same Rng are decorrelated.
  Rng fork();

 private:
  std::uint64_t state_;
};

}  // namespace xlink::sim
