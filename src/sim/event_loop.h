// Discrete-event loop: the heart of the simulator.
//
// Events are (time, callback) pairs kept in a priority queue. Events that
// share a timestamp fire in FIFO order of scheduling, which makes runs
// deterministic given deterministic inputs. Scheduled events can be
// cancelled through the returned handle.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace xlink::sim {

/// Identifies a scheduled event so it can be cancelled. Zero is never used.
using EventId = std::uint64_t;

class EventLoop {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `cb` to run at absolute time `at` (clamped to >= now).
  EventId schedule_at(Time at, Callback cb);

  /// Schedules `cb` to run `delay` after the current time.
  EventId schedule_in(Duration delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancels a pending event. Cancelling an already-fired or unknown id is a
  /// harmless no-op (returns false).
  bool cancel(EventId id);

  /// Runs events until the queue is empty or `stop()` is called.
  void run();

  /// Runs events with time <= `deadline`, then sets now() to `deadline`.
  void run_until(Time deadline);

  /// Requests `run()`/`run_until()` to return after the current event.
  void stop() { stopped_ = true; }

  /// Number of events that have fired so far (useful in tests).
  std::uint64_t events_fired() const { return fired_; }

  /// Number of events still pending (scheduled and not cancelled).
  std::size_t pending() const { return callbacks_.size(); }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;  // tie-break: FIFO for equal timestamps
    EventId id;
    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  // Pops the next live (non-cancelled) entry; returns false if none remain.
  bool pop_next(Entry& out);
  void fire(EventId id);

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t fired_ = 0;
  bool stopped_ = false;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  // Callback presence in this map is what makes a queue entry "live";
  // cancel() simply erases the callback.
  std::unordered_map<EventId, Callback> callbacks_;
};

}  // namespace xlink::sim
