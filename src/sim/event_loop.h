// Discrete-event loop: the heart of the simulator.
//
// Events are (time, callback) pairs kept in a binary min-heap. Events that
// share a timestamp fire in FIFO order of scheduling, which makes runs
// deterministic given deterministic inputs. Scheduled events can be
// cancelled through the returned handle.
//
// Hot-path layout: callbacks live in a slab of generation-tagged slots
// reached directly by index (no hash lookup), an EventId encodes
// (generation << 32 | slot) so stale handles are rejected for free, and
// small callables are stored inline in the slot (no per-event heap
// allocation). Cancellation is lazy — the heap entry stays behind and is
// skipped when popped — with periodic compaction once dead entries
// dominate, so schedule/cancel churn cannot grow the heap without bound.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace xlink::sim {

/// Identifies a scheduled event so it can be cancelled. Zero is never used.
using EventId = std::uint64_t;

/// Move-only type-erased callable with inline storage for small captures.
/// Callables larger than kInlineBytes fall back to a single heap cell.
class EventCallback {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  EventCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback>>>
  EventCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  EventCallback(EventCallback&& other) noexcept { move_from(other); }
  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;
  ~EventCallback() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }
  void operator()() { ops_->invoke(&storage_); }

  void reset() {
    if (ops_) {
      ops_->destroy(&storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-constructs dst from src's storage, then destroys src's value.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename F>
  struct InlineOps {
    static void invoke(void* p) { (*static_cast<F*>(p))(); }
    static void relocate(void* dst, void* src) {
      ::new (dst) F(std::move(*static_cast<F*>(src)));
      static_cast<F*>(src)->~F();
    }
    static void destroy(void* p) { static_cast<F*>(p)->~F(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename F>
  struct HeapOps {
    static F*& ptr(void* p) { return *static_cast<F**>(p); }
    static void invoke(void* p) { (*ptr(p))(); }
    static void relocate(void* dst, void* src) { ::new (dst) F*(ptr(src)); }
    static void destroy(void* p) { delete ptr(p); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (&storage_) D(std::forward<F>(f));
      ops_ = &InlineOps<D>::ops;
    } else {
      ::new (&storage_) D*(new D(std::forward<F>(f)));
      ops_ = &HeapOps<D>::ops;
    }
  }

  void move_from(EventCallback& other) {
    ops_ = other.ops_;
    if (ops_) {
      ops_->relocate(&storage_, &other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

class EventLoop {
 public:
  using Callback = EventCallback;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedules `cb` to run at absolute time `at` (clamped to >= now).
  EventId schedule_at(Time at, Callback cb);

  /// Schedules `cb` to run `delay` after the current time.
  EventId schedule_in(Duration delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancels a pending event. Cancelling an already-fired or unknown id is a
  /// harmless no-op (returns false).
  bool cancel(EventId id);

  /// Runs events until the queue is empty or `stop()` is called.
  void run();

  /// Runs events with time <= `deadline`, then sets now() to `deadline`.
  void run_until(Time deadline);

  /// Requests `run()`/`run_until()` to return after the current event.
  void stop() { stopped_ = true; }

  /// Number of events that have fired so far (useful in tests).
  std::uint64_t events_fired() const { return fired_; }

  /// Number of events still pending (scheduled and not cancelled).
  std::size_t pending() const { return live_; }

  /// Heap entries including lazily-cancelled ones awaiting compaction
  /// (exposed so tests can assert churn stays bounded).
  std::size_t queue_entries() const { return heap_.size(); }

  /// Drops cancelled entries from the heap immediately. Called
  /// automatically once dead entries dominate; public for tests and for
  /// callers that know they just cancelled en masse.
  void compact();

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;  // tie-break: FIFO for equal timestamps
    EventId id;
  };
  // std::push_heap keeps the "largest" element first; we want the
  // earliest (time, seq), so "a < b" means "a fires after b".
  struct FiresAfter {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  struct Slot {
    EventCallback cb;
    std::uint32_t generation = 1;  // bumped on release; never 0
    std::uint32_t next_free = kNilSlot;
    bool live = false;
  };
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  static EventId make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) | slot;
  }
  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id);
  }
  static std::uint32_t generation_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  bool is_live(EventId id) const {
    const std::uint32_t slot = slot_of(id);
    return slot < slots_.size() && slots_[slot].live &&
           slots_[slot].generation == generation_of(id);
  }

  // Returns the slot to the free list and invalidates outstanding ids.
  void release(std::uint32_t slot);

  // Pops the next live (non-cancelled) entry; returns false if none remain.
  bool pop_next(Entry& out);
  void fire(EventId id);
  void maybe_compact();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  bool stopped_ = false;
  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNilSlot;
  std::size_t live_ = 0;
  std::size_t dead_in_heap_ = 0;
};

}  // namespace xlink::sim
