#include "sim/rng.h"

#include <algorithm>
#include <cmath>

namespace xlink::sim {

std::uint64_t Rng::next_u64() {
  // splitmix64 (Sebastiano Vigna, public domain).
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  // Rejection-free multiply-shift mapping; the bias is negligible for the
  // bounds used in simulation (<< 2^32).
  const std::uint64_t x = next_u64();
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(x) * bound) >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_double(double lo, double hi) {
  return lo + (hi - lo) * uniform_double();
}

bool Rng::chance(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return uniform_double() < p;
}

double Rng::exponential(double mean) {
  double u = uniform_double();
  // Avoid log(0).
  u = std::max(u, 1e-300);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = std::max(uniform_double(), 1e-300);
  double u2 = uniform_double();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + stddev * z;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

Rng Rng::fork() {
  // Derive a decorrelated seed by advancing and scrambling.
  return Rng(next_u64() ^ 0xa0761d6478bd642fULL);
}

}  // namespace xlink::sim
