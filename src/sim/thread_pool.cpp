#include "sim/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>

namespace xlink::sim {

ThreadPool::ThreadPool(unsigned jobs) : jobs_(jobs ? jobs : default_jobs()) {
  workers_.reserve(jobs_);
  for (unsigned i = 0; i < jobs_; ++i)
    workers_.emplace_back([this] { worker_main(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lk(mu_);
    tasks_.push(std::move(task));
    ++outstanding_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  idle_.wait(lk, [this] { return outstanding_ == 0; });
}

void ThreadPool::worker_main() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      task_ready_.wait(lk, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown with a drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lk(mu_);
      --outstanding_;
    }
    idle_.notify_all();
  }
}

void ThreadPool::parallel_for_each(
    std::size_t count, const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (jobs_ <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;
  const std::size_t lanes = std::min<std::size_t>(jobs_, count);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    submit([&] {
      for (;;) {
        if (failed.load(std::memory_order_relaxed)) return;
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          body(i);
        } catch (...) {
          std::lock_guard lk(error_mu);
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

unsigned ThreadPool::default_jobs() {
  if (const char* env = std::getenv("XLINK_JOBS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 4096)
      return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

void parallel_for_each(std::size_t count,
                       const std::function<void(std::size_t)>& body,
                       unsigned jobs) {
  const unsigned resolved = jobs ? jobs : ThreadPool::default_jobs();
  if (resolved <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  ThreadPool pool(resolved);
  pool.parallel_for_each(count, body);
}

}  // namespace xlink::sim
