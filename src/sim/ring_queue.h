// FIFO over a power-of-two circular buffer.
//
// Unlike std::deque -- whose steady-state push/pop churns 512-byte map
// nodes through the allocator -- a RingQueue grows geometrically and then
// reuses its storage forever, so hot-path queues (link transmit queues) are
// allocation free once warm. pop_front() resets the vacated slot so any
// resource the element held (a pooled packet buffer) is returned
// immediately rather than when the slot is next overwritten.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace xlink::sim {

template <typename T>
class RingQueue {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  T& front() { return slots_[head_]; }
  const T& front() const { return slots_[head_]; }

  void push_back(T value) {
    if (count_ == slots_.size()) grow();
    slots_[(head_ + count_) & mask_] = std::move(value);
    ++count_;
  }

  void pop_front() {
    slots_[head_] = T{};
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  void clear() {
    while (!empty()) pop_front();
  }

 private:
  static constexpr std::size_t kInitialCapacity = 16;

  void grow() {
    const std::size_t next =
        slots_.empty() ? kInitialCapacity : slots_.size() * 2;
    std::vector<T> bigger(next);
    for (std::size_t i = 0; i < count_; ++i)
      bigger[i] = std::move(slots_[(head_ + i) & mask_]);
    slots_ = std::move(bigger);
    head_ = 0;
    mask_ = slots_.size() - 1;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace xlink::sim
