// Simulated time for the discrete-event simulator.
//
// All timestamps in the simulator are expressed as microseconds since the
// start of the simulation. A strong-ish alias plus helper constructors keep
// unit mistakes (ms vs us) out of call sites.
#pragma once

#include <cstdint>

namespace xlink::sim {

/// Absolute simulated time in microseconds since simulation start.
using Time = std::uint64_t;

/// Relative duration in microseconds.
using Duration = std::uint64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000;
constexpr Duration kSecond = 1000 * kMillisecond;

constexpr Duration micros(std::uint64_t n) { return n; }
constexpr Duration millis(std::uint64_t n) { return n * kMillisecond; }
constexpr Duration seconds(std::uint64_t n) { return n * kSecond; }

/// Converts a simulated duration to fractional seconds (for reporting).
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Converts a simulated duration to fractional milliseconds (for reporting).
constexpr double to_millis(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

}  // namespace xlink::sim
