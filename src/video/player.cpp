#include "video/player.h"

namespace xlink::video {

VideoPlayer::VideoPlayer(sim::EventLoop& loop, const VideoModel& model,
                         std::uint32_t startup_buffer_frames)
    : loop_(loop),
      model_(model),
      startup_buffer_frames_(startup_buffer_frames),
      start_time_(loop.now()) {}

void VideoPlayer::on_contiguous_bytes(std::uint64_t bytes) {
  contiguous_bytes_ = std::max(contiguous_bytes_, bytes);
  on_progress();
}

void VideoPlayer::on_abr_progress(std::uint32_t frames_available,
                                  std::uint64_t bytes_ahead,
                                  std::uint64_t playhead_bps) {
  abr_mode_ = true;
  abr_frames_ = std::max(abr_frames_, frames_available);
  abr_bytes_ahead_ = bytes_ahead;
  if (playhead_bps != 0) abr_playhead_bps_ = playhead_bps;
  on_progress();
}

std::uint32_t VideoPlayer::available_frames() const {
  return abr_mode_ ? abr_frames_ : model_.frames_in_prefix(contiguous_bytes_);
}

void VideoPlayer::on_progress() {
  // First-frame latency is a delivery metric: it is recorded the moment
  // frame 0 is render-ready even when a larger startup buffer delays the
  // actual playback start (startup_delay covers that).
  if (!first_frame_time_ && available_frames() >= 1) {
    first_frame_time_ = loop_.now() - start_time_;
    XLINK_TRACE(trace_, telemetry::Event::player_first_frame(
                            loop_.now(), *first_frame_time_));
  }
  if (state_ == State::kStartup) {
    try_start();
  } else if (state_ == State::kRebuffering) {
    // Resume once the stalled frame has fully arrived.
    if (available_frames() > next_frame_) {
      if (loop_.now() == rebuffer_started_at_) {
        // Resolved within the same instant: not a user-visible stall.
        --rebuffer_count_;
      }
      rebuffer_accum_ += loop_.now() - rebuffer_started_at_;
      XLINK_TRACE(trace_, telemetry::Event::player_resume(
                              loop_.now(), loop_.now() - rebuffer_started_at_,
                              next_frame_));
      state_ = State::kPlaying;
      play_started_at_ = loop_.now();
      on_frame_due();
    }
  }
}

void VideoPlayer::try_start() {
  const std::uint32_t have = available_frames();
  if (have < startup_buffer_frames_) return;
  startup_delay_ = loop_.now() - start_time_;
  state_ = State::kPlaying;
  play_started_at_ = loop_.now();
  on_frame_due();  // renders frame 0 immediately
}

void VideoPlayer::schedule_frame_deadline() {
  frame_timer_ = loop_.schedule_in(model_.frame_interval(), [this] {
    frame_timer_ = 0;
    on_frame_due();
  });
}

void VideoPlayer::on_frame_due() {
  if (state_ != State::kPlaying) return;
  if (next_frame_ >= model_.frame_count()) {
    state_ = State::kFinished;
    XLINK_TRACE(trace_,
                telemetry::Event::player_finished(loop_.now(), next_frame_));
    play_time_accum_ += loop_.now() - play_started_at_;
    if (frame_timer_) {
      loop_.cancel(frame_timer_);
      frame_timer_ = 0;
    }
    if (on_finished) on_finished();
    return;
  }
  const std::uint32_t available = available_frames();
  if (available > next_frame_) {
    ++next_frame_;
    schedule_frame_deadline();
    return;
  }
  // Stall: the due frame has not fully arrived.
  state_ = State::kRebuffering;
  ++rebuffer_count_;
  XLINK_TRACE(trace_,
              telemetry::Event::player_stall(loop_.now(), next_frame_));
  rebuffer_started_at_ = loop_.now();
  play_time_accum_ += loop_.now() - play_started_at_;
}

quic::QoeSignal VideoPlayer::qoe_snapshot() const {
  quic::QoeSignal q;
  const std::uint32_t available = available_frames();
  q.cached_frames = available > next_frame_ ? available - next_frame_ : 0;
  q.cached_bytes = buffered_bytes_ahead();
  q.bps = abr_mode_ && abr_playhead_bps_ != 0 ? abr_playhead_bps_
                                              : model_.spec().bitrate_bps;
  q.fps = model_.spec().fps;
  return q;
}

std::uint64_t VideoPlayer::buffered_bytes_ahead() const {
  if (abr_mode_) return abr_bytes_ahead_;
  const std::uint64_t playhead = model_.frame_offset(
      std::min(next_frame_, model_.frame_count()));
  return contiguous_bytes_ > playhead ? contiguous_bytes_ - playhead : 0;
}

sim::Duration VideoPlayer::buffer_level() const {
  const std::uint32_t available = available_frames();
  const std::uint32_t ahead =
      available > next_frame_ ? available - next_frame_ : 0;
  return static_cast<sim::Duration>(ahead) * model_.frame_interval();
}

sim::Duration VideoPlayer::total_rebuffer_time() const {
  sim::Duration total = rebuffer_accum_;
  if (state_ == State::kRebuffering)
    total += loop_.now() - rebuffer_started_at_;
  return total;
}

sim::Duration VideoPlayer::total_play_time() const {
  sim::Duration total = play_time_accum_;
  if (state_ == State::kPlaying) total += loop_.now() - play_started_at_;
  return total;
}

double VideoPlayer::rebuffer_rate() const {
  const double play = sim::to_seconds(total_play_time());
  if (play <= 0.0) return 0.0;
  return sim::to_seconds(total_rebuffer_time()) / play;
}

}  // namespace xlink::video
