// Deterministic short-video model.
//
// A video is a sequence of frames at a fixed fps. Frame 0 (the first video
// frame, an I-frame) is much larger than the rest; the paper's
// first-video-frame acceleration exists because delivering exactly these
// bytes gates start-up. Frame sizes vary deterministically around the
// target bitrate so the byte<->frame mapping is reproducible everywhere
// (server, client, tests) without shipping content.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace xlink::video {

struct VideoSpec {
  sim::Duration duration = sim::seconds(15);
  std::uint32_t fps = 30;
  std::uint64_t bitrate_bps = 2'000'000;
  /// Size of the first video frame (I-frame). 0 = derive as 12x average.
  std::uint64_t first_frame_bytes = 0;
  /// Seed for the deterministic frame-size variation.
  std::uint64_t seed = 1;
};

class VideoModel {
 public:
  explicit VideoModel(VideoSpec spec);

  const VideoSpec& spec() const { return spec_; }
  std::uint32_t frame_count() const {
    return static_cast<std::uint32_t>(frame_offsets_.size() - 1);
  }
  std::uint64_t total_bytes() const { return frame_offsets_.back(); }
  std::uint64_t first_frame_bytes() const { return frame_offsets_[1]; }

  std::uint64_t frame_offset(std::uint32_t i) const {
    return frame_offsets_[i];
  }
  std::uint64_t frame_size(std::uint32_t i) const {
    return frame_offsets_[i + 1] - frame_offsets_[i];
  }

  /// Number of whole frames contained in the contiguous byte prefix.
  std::uint32_t frames_in_prefix(std::uint64_t bytes) const;

  /// Deterministic content byte at `offset` (server fill / client check).
  std::uint8_t byte_at(std::uint64_t offset) const;

  /// Play duration of one frame.
  sim::Duration frame_interval() const {
    return sim::kSecond / spec_.fps;
  }

 private:
  VideoSpec spec_;
  std::vector<std::uint64_t> frame_offsets_;  // size frame_count()+1
};

/// Splits [0, total) into fixed-size chunks (last one short). The media
/// client requests one chunk per QUIC stream.
struct ChunkPlan {
  struct Chunk {
    std::uint64_t begin;
    std::uint64_t end;  // half-open
  };
  std::vector<Chunk> chunks;

  static ChunkPlan fixed_size(std::uint64_t total_bytes,
                              std::uint64_t chunk_bytes);
};

}  // namespace xlink::video
