// Deterministic short-video model.
//
// A video is a sequence of frames at a fixed fps. Frame 0 (the first video
// frame, an I-frame) is much larger than the rest; the paper's
// first-video-frame acceleration exists because delivering exactly these
// bytes gates start-up. Frame sizes vary deterministically around the
// target bitrate so the byte<->frame mapping is reproducible everywhere
// (server, client, tests) without shipping content.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/time.h"

namespace xlink::video {

struct VideoSpec {
  sim::Duration duration = sim::seconds(15);
  std::uint32_t fps = 30;
  std::uint64_t bitrate_bps = 2'000'000;
  /// Size of the first video frame (I-frame). 0 = derive as 12x average.
  std::uint64_t first_frame_bytes = 0;
  /// Seed for the deterministic frame-size variation.
  std::uint64_t seed = 1;
};

class VideoModel {
 public:
  explicit VideoModel(VideoSpec spec);

  const VideoSpec& spec() const { return spec_; }
  std::uint32_t frame_count() const {
    return static_cast<std::uint32_t>(frame_offsets_.size() - 1);
  }
  std::uint64_t total_bytes() const { return frame_offsets_.back(); }
  std::uint64_t first_frame_bytes() const { return frame_offsets_[1]; }

  std::uint64_t frame_offset(std::uint32_t i) const {
    return frame_offsets_[i];
  }
  std::uint64_t frame_size(std::uint32_t i) const {
    return frame_offsets_[i + 1] - frame_offsets_[i];
  }

  /// Number of whole frames contained in the contiguous byte prefix.
  std::uint32_t frames_in_prefix(std::uint64_t bytes) const;

  /// Deterministic content byte at `offset` (server fill / client check).
  std::uint8_t byte_at(std::uint64_t offset) const;

  /// Play duration of one frame.
  sim::Duration frame_interval() const {
    return sim::kSecond / spec_.fps;
  }

 private:
  VideoSpec spec_;
  std::vector<std::uint64_t> frame_offsets_;  // size frame_count()+1
};

/// An ascending bitrate ladder. Rung 0 is the lowest rendition; the top
/// rung is the native (drawn) bitrate of the session's video.
struct BitrateLadder {
  std::vector<std::uint64_t> bitrates_bps;  // ascending

  /// The default four-rung ladder: 25/50/75/100% of the native bitrate.
  static BitrateLadder scaled(std::uint64_t top_bps);

  std::size_t rungs() const { return bitrates_bps.size(); }
  std::size_t top_rung() const {
    return bitrates_bps.empty() ? 0 : bitrates_bps.size() - 1;
  }
  std::uint64_t bitrate(std::size_t rung) const {
    return bitrates_bps.empty()
               ? 0
               : bitrates_bps[rung < bitrates_bps.size() ? rung
                                                         : top_rung()];
  }
  /// Highest rung whose bitrate fits within `budget_bps`; rung 0 when even
  /// the lowest rendition does not fit (the client has to fetch something).
  std::size_t rung_for_rate(double budget_bps) const;
};

/// The same video encoded at every rung of a ladder. All renditions share
/// the source's duration, fps, and seed, so they share one frame grid:
/// frame k of rung r covers the same play time as frame k of any other
/// rung, only the byte sizes differ. That is what lets an ABR client
/// splice chunks from different renditions into one playable timeline.
class RenditionSet {
 public:
  /// `top_spec` describes the native rendition (the ladder's top rung).
  RenditionSet(const VideoSpec& top_spec, BitrateLadder ladder);

  const BitrateLadder& ladder() const { return ladder_; }
  std::size_t rungs() const { return models_.size(); }
  std::size_t top_rung() const { return models_.size() - 1; }
  const std::shared_ptr<const VideoModel>& model(std::size_t rung) const {
    return models_[rung < models_.size() ? rung : top_rung()];
  }

 private:
  BitrateLadder ladder_;
  std::vector<std::shared_ptr<const VideoModel>> models_;
};

/// Resource name a rendition is served under ("video" -> "video@2" for
/// rung 2). The top rung keeps the base name so fixed-bitrate clients and
/// ABR clients fetching the native rendition hit the same resource.
std::string rendition_resource(const std::string& base, std::size_t rung,
                               std::size_t top_rung);

/// Splits [0, total) into fixed-size chunks (last one short). The media
/// client requests one chunk per QUIC stream.
struct ChunkPlan {
  struct Chunk {
    std::uint64_t begin;
    std::uint64_t end;  // half-open
  };
  std::vector<Chunk> chunks;

  static ChunkPlan fixed_size(std::uint64_t total_bytes,
                              std::uint64_t chunk_bytes);
};

}  // namespace xlink::video
