// Adaptive-bitrate controllers: the rate-adaptation loop XLINK's QoE
// signals ultimately serve.
//
// Three deterministic controllers pick a ladder rung per chunk request:
//
//   - rate-based: EWMA of per-chunk download throughput with a safety
//     factor (the classic throughput-rule family).
//   - buffer-based: BOLA/BBA-style linear map from buffer occupancy to a
//     rung between two thresholds; ignores throughput entirely.
//   - hybrid: takes the larger of the chunk EWMA and the transport's
//     delivery-rate btlbw (robust to burst loss), then gates switches on
//     the same play-time-left estimate the XLINK scheduler reads from the
//     QoE feedback conduit (core/qoe_signals): while the horizon grows it
//     follows the safety-scaled estimate, while it drains it holds, damps
//     climbs, or sheds a rung depending on how much play time is left.
//
// Determinism contract (DESIGN.md §12): controllers are pure functions of
// their config and the sequence of AbrInputs/samples they are fed.
// AbrInputs carries durations and counts only -- never absolute sim::Time
// -- so a controller shifted in time makes identical decisions, and
// "no sample yet" is an explicit flag, never a 0-valued sentinel (the PR 8
// congestion-control bug class).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "quic/frame.h"
#include "sim/time.h"
#include "video/video_model.h"

namespace xlink::video {

enum class AbrAlgorithm : std::uint8_t {
  kFixed = 0,  // no adaptation: always the native rendition (legacy path)
  kRateBased,
  kBufferBased,
  kHybrid,
};

const char* to_string(AbrAlgorithm a);
std::optional<AbrAlgorithm> abr_algorithm_from_string(const std::string& s);

struct AbrConfig {
  AbrAlgorithm algorithm = AbrAlgorithm::kFixed;
  /// Empty = BitrateLadder::scaled(native bitrate), resolved where the
  /// session's video spec is known.
  BitrateLadder ladder;
  /// Frames per chunk request: the adaptation granularity (30 = one second
  /// of video at 30 fps).
  std::uint32_t chunk_frames = 30;

  // rate-based
  double ewma_alpha = 0.5;   // weight of the newest chunk sample
  double rate_safety = 0.9;  // fraction of the estimate we dare to spend

  // buffer-based (linear map between the two thresholds)
  sim::Duration buffer_low = sim::seconds(2);
  sim::Duration buffer_high = sim::seconds(8);

  // hybrid (the thresholds gate only while the horizon is SHRINKING; a
  // growing horizon follows the safety-scaled estimate directly)
  double hybrid_safety = 0.85;
  sim::Duration hybrid_low = sim::seconds(3);   // shed when draining below
  sim::Duration hybrid_high = sim::seconds(6);  // hold when draining below
  std::size_t max_up_step = 1;  // climb cap per chunk while draining
};

/// Everything a controller may look at for one decision. Durations and
/// counts only; no absolute timestamps (see the determinism contract).
struct AbrInputs {
  std::size_t chunk_index = 0;
  /// Player buffer ahead of the playhead (0 before playback starts).
  sim::Duration buffer_level = 0;
  /// Latest QoE feedback signal, if the conduit has produced one.
  std::optional<quic::QoeSignal> qoe;
  /// Transport bottleneck-bandwidth estimate (delivery-rate sampler),
  /// 0 = no estimate yet.
  std::uint64_t btlbw_bps = 0;
};

struct AbrDecision {
  std::size_t rung = 0;
  /// Rate estimate the choice used, bits/s (0 = chose without one).
  std::uint64_t estimate_bps = 0;
};

class AbrController {
 public:
  AbrController(const AbrConfig& config, BitrateLadder ladder);
  virtual ~AbrController() = default;

  virtual const char* name() const = 0;

  /// Picks the rung for the next chunk and updates the switch statistics.
  AbrDecision choose(const AbrInputs& in);

  /// Feeds one completed chunk download as a throughput sample. Zero-byte
  /// or zero-duration samples carry no rate information and are ignored;
  /// a genuine low-rate sample (tiny bytes over a long elapsed) is not.
  void on_chunk_downloaded(std::uint64_t bytes, sim::Duration elapsed);

  // ---- statistics (fold into DayMetrics) ----
  std::uint64_t decisions() const { return decisions_; }
  std::uint64_t switches() const { return switches_; }
  /// Sum of |rung delta| over switches (switch magnitude).
  std::uint64_t switch_magnitude() const { return switch_magnitude_; }
  /// Rung of the most recent decision; nullopt before the first one.
  std::optional<std::size_t> last_rung() const {
    return decisions_ == 0 ? std::nullopt
                           : std::optional<std::size_t>(last_rung_);
  }

  const BitrateLadder& ladder() const { return ladder_; }

 protected:
  virtual AbrDecision decide(const AbrInputs& in) = 0;

  bool has_rate_sample() const { return has_sample_; }
  double ewma_bps() const { return ewma_bps_; }

  AbrConfig config_;
  BitrateLadder ladder_;
  std::uint64_t decisions_ = 0;
  std::size_t last_rung_ = 0;  // meaningful only when decisions_ > 0

 private:
  bool has_sample_ = false;  // explicit: 0 bps is a valid sample value
  double ewma_bps_ = 0.0;
  std::uint64_t switches_ = 0;
  std::uint64_t switch_magnitude_ = 0;
};

/// Builds the controller for `config.algorithm` (never kFixed -- the fixed
/// path does not construct a controller).
std::unique_ptr<AbrController> make_abr_controller(const AbrConfig& config,
                                                   BitrateLadder ladder);

}  // namespace xlink::video
