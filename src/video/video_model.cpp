#include "video/video_model.h"

#include <algorithm>

#include "sim/rng.h"

namespace xlink::video {

VideoModel::VideoModel(VideoSpec spec) : spec_(spec) {
  const std::uint64_t frames = std::max<std::uint64_t>(
      1, spec_.duration * spec_.fps / sim::kSecond);
  const double avg_frame_bytes =
      static_cast<double>(spec_.bitrate_bps) / 8.0 / spec_.fps;
  std::uint64_t first = spec_.first_frame_bytes;
  if (first == 0)
    first = static_cast<std::uint64_t>(avg_frame_bytes * 12.0);

  sim::Rng rng(spec_.seed);
  frame_offsets_.reserve(frames + 1);
  frame_offsets_.push_back(0);
  frame_offsets_.push_back(first);
  for (std::uint64_t i = 1; i < frames; ++i) {
    // P-frames: deterministic +-35% variation around the residual average
    // so the whole video still averages to bitrate_bps.
    const double scale = 0.65 + 0.7 * rng.uniform_double();
    const auto size = static_cast<std::uint64_t>(
        std::max(64.0, avg_frame_bytes * scale));
    frame_offsets_.push_back(frame_offsets_.back() + size);
  }
}

std::uint32_t VideoModel::frames_in_prefix(std::uint64_t bytes) const {
  // First index whose end-offset exceeds `bytes`.
  const auto it =
      std::upper_bound(frame_offsets_.begin() + 1, frame_offsets_.end(), bytes);
  return static_cast<std::uint32_t>(it - (frame_offsets_.begin() + 1));
}

std::uint8_t VideoModel::byte_at(std::uint64_t offset) const {
  std::uint64_t x = offset ^ (spec_.seed * 0x9e3779b97f4a7c15ULL);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return static_cast<std::uint8_t>(x);
}

BitrateLadder BitrateLadder::scaled(std::uint64_t top_bps) {
  BitrateLadder ladder;
  ladder.bitrates_bps = {top_bps / 4, top_bps / 2, top_bps * 3 / 4, top_bps};
  return ladder;
}

std::size_t BitrateLadder::rung_for_rate(double budget_bps) const {
  std::size_t best = 0;
  for (std::size_t r = 1; r < bitrates_bps.size(); ++r) {
    if (static_cast<double>(bitrates_bps[r]) <= budget_bps) best = r;
  }
  return best;
}

RenditionSet::RenditionSet(const VideoSpec& top_spec, BitrateLadder ladder)
    : ladder_(std::move(ladder)) {
  if (ladder_.bitrates_bps.empty())
    ladder_ = BitrateLadder::scaled(top_spec.bitrate_bps);
  const std::uint64_t top_bps = ladder_.bitrates_bps.back();
  models_.reserve(ladder_.rungs());
  for (std::uint64_t bps : ladder_.bitrates_bps) {
    VideoSpec spec = top_spec;
    spec.bitrate_bps = bps;
    // Scale an explicit I-frame size with the rung; 0 keeps the 12x-average
    // derivation, which already scales.
    if (top_spec.first_frame_bytes != 0 && top_bps != 0)
      spec.first_frame_bytes = top_spec.first_frame_bytes * bps / top_bps;
    models_.push_back(std::make_shared<const VideoModel>(spec));
  }
}

std::string rendition_resource(const std::string& base, std::size_t rung,
                               std::size_t top_rung) {
  if (rung >= top_rung) return base;
  return base + "@" + std::to_string(rung);
}

ChunkPlan ChunkPlan::fixed_size(std::uint64_t total_bytes,
                                std::uint64_t chunk_bytes) {
  ChunkPlan plan;
  for (std::uint64_t begin = 0; begin < total_bytes; begin += chunk_bytes) {
    plan.chunks.push_back({begin, std::min(begin + chunk_bytes, total_bytes)});
  }
  if (plan.chunks.empty()) plan.chunks.push_back({0, 0});
  return plan;
}

}  // namespace xlink::video
