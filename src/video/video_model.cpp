#include "video/video_model.h"

#include <algorithm>

#include "sim/rng.h"

namespace xlink::video {

VideoModel::VideoModel(VideoSpec spec) : spec_(spec) {
  const std::uint64_t frames = std::max<std::uint64_t>(
      1, spec_.duration * spec_.fps / sim::kSecond);
  const double avg_frame_bytes =
      static_cast<double>(spec_.bitrate_bps) / 8.0 / spec_.fps;
  std::uint64_t first = spec_.first_frame_bytes;
  if (first == 0)
    first = static_cast<std::uint64_t>(avg_frame_bytes * 12.0);

  sim::Rng rng(spec_.seed);
  frame_offsets_.reserve(frames + 1);
  frame_offsets_.push_back(0);
  frame_offsets_.push_back(first);
  for (std::uint64_t i = 1; i < frames; ++i) {
    // P-frames: deterministic +-35% variation around the residual average
    // so the whole video still averages to bitrate_bps.
    const double scale = 0.65 + 0.7 * rng.uniform_double();
    const auto size = static_cast<std::uint64_t>(
        std::max(64.0, avg_frame_bytes * scale));
    frame_offsets_.push_back(frame_offsets_.back() + size);
  }
}

std::uint32_t VideoModel::frames_in_prefix(std::uint64_t bytes) const {
  // First index whose end-offset exceeds `bytes`.
  const auto it =
      std::upper_bound(frame_offsets_.begin() + 1, frame_offsets_.end(), bytes);
  return static_cast<std::uint32_t>(it - (frame_offsets_.begin() + 1));
}

std::uint8_t VideoModel::byte_at(std::uint64_t offset) const {
  std::uint64_t x = offset ^ (spec_.seed * 0x9e3779b97f4a7c15ULL);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return static_cast<std::uint8_t>(x);
}

ChunkPlan ChunkPlan::fixed_size(std::uint64_t total_bytes,
                                std::uint64_t chunk_bytes) {
  ChunkPlan plan;
  for (std::uint64_t begin = 0; begin < total_bytes; begin += chunk_bytes) {
    plan.chunks.push_back({begin, std::min(begin + chunk_bytes, total_bytes)});
  }
  if (plan.chunks.empty()) plan.chunks.push_back({0, 0});
  return plan;
}

}  // namespace xlink::video
