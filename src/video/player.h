// Client-side video player simulation.
//
// Mirrors the paper's evaluation player (Appx. B): consumes the received
// byte stream at the video's frame rate and records the QoE metrics the
// paper reports -- first-video-frame latency, rebuffer events/time, and
// the rebuffer rate sum(rebuffer time)/sum(play time). Playback is
// event-driven: each frame has a due time; a frame whose bytes have not
// fully arrived by its due time stalls playback until they do.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "quic/frame.h"
#include "sim/event_loop.h"
#include "telemetry/trace_sink.h"
#include "video/video_model.h"

namespace xlink::video {

class VideoPlayer {
 public:
  /// `startup_buffer_frames`: frames that must be buffered before playback
  /// starts (1 = render as soon as the first frame lands, paper behaviour).
  VideoPlayer(sim::EventLoop& loop, const VideoModel& model,
              std::uint32_t startup_buffer_frames = 1);

  /// Reports download progress: total contiguous bytes available from the
  /// start of the video.
  void on_contiguous_bytes(std::uint64_t bytes);

  /// ABR-mode progress: the media client splices chunks from different
  /// renditions, so byte offsets in any single model are meaningless and
  /// progress arrives pre-resolved as whole frames. `bytes_ahead` is the
  /// actual (mixed-rendition) bytes buffered past the playhead and
  /// `playhead_bps` the bitrate of the rendition under the playhead; both
  /// feed the QoE snapshot.
  void on_abr_progress(std::uint32_t frames_available,
                       std::uint64_t bytes_ahead, std::uint64_t playhead_bps);

  /// Current QoE snapshot for the feedback channel (cached bytes/frames
  /// ahead of the playhead, bitrate, framerate).
  quic::QoeSignal qoe_snapshot() const;

  // ---- metrics ----
  /// Time from request start until the first video frame is fully
  /// delivered (render-ready) -- the paper's first-video-frame latency.
  std::optional<sim::Duration> first_frame_latency() const {
    return first_frame_time_;
  }
  /// Time from request start until playback actually starts, i.e. until
  /// `startup_buffer_frames` are buffered. Equals first_frame_latency()
  /// with a 1-frame startup buffer; larger buffers start later. Startup
  /// waiting is NOT a stall: it is excluded from rebuffer time and from
  /// play time (the denominator of rebuffer_rate()).
  std::optional<sim::Duration> startup_delay() const {
    return startup_delay_;
  }
  sim::Duration total_rebuffer_time() const;
  std::uint32_t rebuffer_count() const { return rebuffer_count_; }
  /// Wall time spent in the playing state so far.
  sim::Duration total_play_time() const;
  /// sum(rebuffer time) / sum(play time); 0 when nothing played.
  double rebuffer_rate() const;
  bool finished() const { return state_ == State::kFinished; }
  std::uint32_t frames_played() const { return next_frame_; }
  /// Buffered play-time ahead of the playhead right now.
  sim::Duration buffer_level() const;
  std::uint64_t buffered_bytes_ahead() const;

  std::function<void()> on_finished;

  /// Session telemetry sink (player events carry Origin::kSession).
  void set_trace(telemetry::TraceSink* sink) { trace_ = sink; }

 private:
  enum class State { kStartup, kPlaying, kRebuffering, kFinished };

  void on_progress();
  std::uint32_t available_frames() const;
  void try_start();
  void schedule_frame_deadline();
  void on_frame_due();

  sim::EventLoop& loop_;
  const VideoModel& model_;
  std::uint32_t startup_buffer_frames_;

  State state_ = State::kStartup;
  std::uint64_t contiguous_bytes_ = 0;
  // ABR mode: progress arrives as frames, not bytes (see on_abr_progress).
  bool abr_mode_ = false;
  std::uint32_t abr_frames_ = 0;
  std::uint64_t abr_bytes_ahead_ = 0;
  std::uint64_t abr_playhead_bps_ = 0;
  std::uint32_t next_frame_ = 0;      // next frame to render
  sim::Time start_time_;
  std::optional<sim::Duration> first_frame_time_;
  std::optional<sim::Duration> startup_delay_;
  sim::Time play_started_at_ = 0;     // current playing-state entry
  sim::Duration play_time_accum_ = 0;
  sim::Time rebuffer_started_at_ = 0;
  sim::Duration rebuffer_accum_ = 0;
  std::uint32_t rebuffer_count_ = 0;
  sim::EventId frame_timer_ = 0;
  telemetry::TraceSink* trace_ = nullptr;
};

}  // namespace xlink::video
