#include "video/qoe_capture.h"

namespace xlink::video {

QoeCapture::QoeCapture(sim::EventLoop& loop, const VideoPlayer& player,
                       sim::Duration period)
    : loop_(loop), player_(player), period_(period) {
  tick();
}

QoeCapture::~QoeCapture() {
  stopped_ = true;
  if (timer_) loop_.cancel(timer_);
}

void QoeCapture::tick() {
  if (stopped_) return;
  latest_ = player_.qoe_snapshot();
  ++samples_;
  timer_ = loop_.schedule_in(period_, [this] {
    timer_ = 0;
    tick();
  });
}

}  // namespace xlink::video
