#include "video/abr.h"

#include <algorithm>

#include "core/qoe_signals.h"

namespace xlink::video {

const char* to_string(AbrAlgorithm a) {
  switch (a) {
    case AbrAlgorithm::kFixed: return "fixed";
    case AbrAlgorithm::kRateBased: return "rate";
    case AbrAlgorithm::kBufferBased: return "buffer";
    case AbrAlgorithm::kHybrid: return "hybrid";
  }
  return "fixed";
}

std::optional<AbrAlgorithm> abr_algorithm_from_string(const std::string& s) {
  if (s == "fixed") return AbrAlgorithm::kFixed;
  if (s == "rate") return AbrAlgorithm::kRateBased;
  if (s == "buffer") return AbrAlgorithm::kBufferBased;
  if (s == "hybrid") return AbrAlgorithm::kHybrid;
  return std::nullopt;
}

AbrController::AbrController(const AbrConfig& config, BitrateLadder ladder)
    : config_(config), ladder_(std::move(ladder)) {
  if (ladder_.bitrates_bps.empty())
    ladder_.bitrates_bps.push_back(0);  // degenerate single-rung ladder
}

AbrDecision AbrController::choose(const AbrInputs& in) {
  AbrDecision d = decide(in);
  d.rung = std::min(d.rung, ladder_.top_rung());
  // A first decision establishes the rung; only changes after that count
  // as switches (no rung-0 initialisation sentinel in the statistics).
  if (decisions_ > 0 && d.rung != last_rung_) {
    ++switches_;
    switch_magnitude_ +=
        d.rung > last_rung_ ? d.rung - last_rung_ : last_rung_ - d.rung;
  }
  last_rung_ = d.rung;
  ++decisions_;
  return d;
}

void AbrController::on_chunk_downloaded(std::uint64_t bytes,
                                        sim::Duration elapsed) {
  if (elapsed == 0 || bytes == 0) return;  // carries no rate information
  const double bps =
      static_cast<double>(bytes) * 8.0 / sim::to_seconds(elapsed);
  ewma_bps_ = has_sample_
                  ? (1.0 - config_.ewma_alpha) * ewma_bps_ +
                        config_.ewma_alpha * bps
                  : bps;
  has_sample_ = true;
}

namespace {

class RateBasedController final : public AbrController {
 public:
  using AbrController::AbrController;
  const char* name() const override { return "rate"; }

 protected:
  AbrDecision decide(const AbrInputs&) override {
    if (!has_rate_sample()) return {0, 0};  // start at the bottom
    const double est = ewma_bps();
    return {ladder_.rung_for_rate(config_.rate_safety * est),
            static_cast<std::uint64_t>(est)};
  }
};

class BufferBasedController final : public AbrController {
 public:
  using AbrController::AbrController;
  const char* name() const override { return "buffer"; }

 protected:
  AbrDecision decide(const AbrInputs& in) override {
    const std::size_t top = ladder_.top_rung();
    if (top == 0) return {0, 0};
    if (in.buffer_level <= config_.buffer_low) return {0, 0};
    if (in.buffer_level >= config_.buffer_high) return {top, 0};
    // Linear map of (low, high) onto rungs 1..top, integer arithmetic so
    // the boundary rungs are exact.
    const sim::Duration span = config_.buffer_high - config_.buffer_low;
    const std::size_t step = static_cast<std::size_t>(
        (in.buffer_level - config_.buffer_low) *
        static_cast<sim::Duration>(top - 1) / span);
    return {1 + std::min(step, top - 1), 0};
  }
};

class HybridController final : public AbrController {
 public:
  using AbrController::AbrController;
  const char* name() const override { return "hybrid"; }

 protected:
  AbrDecision decide(const AbrInputs& in) override {
    // Rate estimate: the chunk EWMA dips on every loss burst, while the
    // delivery-rate btlbw is a windowed max that rides through short bad
    // states. Both are lower bounds on capacity, so take the larger.
    double est = has_rate_sample() ? ewma_bps() : 0.0;
    if (static_cast<double>(in.btlbw_bps) > est)
      est = static_cast<double>(in.btlbw_bps);
    const std::size_t cand =
        est > 0.0 ? ladder_.rung_for_rate(config_.hybrid_safety * est) : 0;

    // Risk horizon: the same conservative play-time-left the XLINK
    // scheduler derives from QoE feedback; the local buffer level is the
    // fallback before the conduit has produced a signal.
    sim::Duration horizon = in.buffer_level;
    if (in.qoe) {
      if (const auto ptl = core::play_time_left(*in.qoe)) horizon = *ptl;
    }

    // Risk = the horizon is SHRINKING. While it grows (startup fill, or a
    // steady buffer at its cap) the safety-scaled estimate is feasible by
    // construction, so follow it; throttling there only burns utility.
    const bool growing = horizon >= prev_horizon_;
    std::size_t rung;
    if (decisions_ == 0) {
      rung = cand;  // establishing decision: trust the estimate as-is
    } else if (growing) {
      rung = cand;
    } else if (horizon < config_.hybrid_low) {
      // Draining and thin: shed a rung even if the estimate says otherwise.
      rung = std::min(cand, last_rung_ > 0 ? last_rung_ - 1 : 0);
    } else if (horizon >= config_.hybrid_high) {
      // Draining but comfortable: climb, damped to max_up_step per chunk.
      rung = std::min(cand, last_rung_ + config_.max_up_step);
    } else {
      rung = std::min(cand, last_rung_);  // draining mid-band: hold
    }
    prev_horizon_ = horizon;
    return {rung, static_cast<std::uint64_t>(est)};
  }

 private:
  sim::Duration prev_horizon_ = 0;  // meaningful only when decisions_ > 0
};

}  // namespace

std::unique_ptr<AbrController> make_abr_controller(const AbrConfig& config,
                                                   BitrateLadder ladder) {
  switch (config.algorithm) {
    case AbrAlgorithm::kBufferBased:
      return std::make_unique<BufferBasedController>(config,
                                                     std::move(ladder));
    case AbrAlgorithm::kHybrid:
      return std::make_unique<HybridController>(config, std::move(ladder));
    case AbrAlgorithm::kFixed:
    case AbrAlgorithm::kRateBased:
      break;
  }
  return std::make_unique<RateBasedController>(config, std::move(ladder));
}

}  // namespace xlink::video
