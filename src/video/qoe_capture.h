// QoE signal capture pipeline (paper §5.2.1, Fig. 5).
//
// In the deployed system the Source Pipe and Decoder periodically push
// cached-frame/byte counts and rates to TNET (the Android network SDK),
// which XLINK queries when emitting ACK_MPs. QoeCapture reproduces that
// periodic, slightly-stale conduit: it samples the player every `period`
// and hands out the last sample -- the transport never reads the player's
// instantaneous state directly, matching the paper's footnote about
// feedback frequency (stale feedback is extrapolated by the controller
// being conservative).
#pragma once

#include <optional>

#include "quic/frame.h"
#include "sim/event_loop.h"
#include "video/player.h"

namespace xlink::video {

class QoeCapture {
 public:
  QoeCapture(sim::EventLoop& loop, const VideoPlayer& player,
             sim::Duration period = sim::millis(100));
  ~QoeCapture();

  QoeCapture(const QoeCapture&) = delete;
  QoeCapture& operator=(const QoeCapture&) = delete;

  /// Latest sampled signal; nullopt before the first sampling tick.
  std::optional<quic::QoeSignal> latest() const { return latest_; }

  std::uint64_t samples_taken() const { return samples_; }

 private:
  void tick();

  sim::EventLoop& loop_;
  const VideoPlayer& player_;
  sim::Duration period_;
  std::optional<quic::QoeSignal> latest_;
  std::uint64_t samples_ = 0;
  sim::EventId timer_ = 0;
  bool stopped_ = false;
};

}  // namespace xlink::video
