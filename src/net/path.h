// Bidirectional emulated network path (client <-> server).
//
// A path pairs an uplink and a downlink, each an independent Link, plus the
// wireless technology label used by wireless-aware primary path selection.
// An optional FaultPlan interposes a FaultInjector on both directions.
#pragma once

#include <memory>
#include <optional>

#include "net/fault.h"
#include "net/link.h"
#include "net/wireless.h"
#include "sim/event_loop.h"

namespace xlink::net {

/// Everything needed to build one emulated path.
struct PathSpec {
  Wireless tech = Wireless::kWifi;
  /// Downlink trace (server -> client); empty means use fixed_rate_mbps.
  std::optional<trace::LinkTrace> down_trace;
  /// Uplink trace (client -> server); empty means use fixed_rate_mbps.
  std::optional<trace::LinkTrace> up_trace;
  double fixed_rate_mbps = 20.0;
  sim::Duration one_way_delay = sim::millis(15);
  double loss_rate = 0.0;                       // residual Bernoulli loss
  /// Optional Gilbert-Elliott bursty loss (applied on both directions,
  /// composed with loss_rate when both are set). Burst loss is the regime
  /// where FEC windows see correlated erasures (FEC ablation benches).
  struct GeLoss {
    double p_good_to_bad = 0.0;
    double p_bad_to_good = 0.3;
    double loss_good = 0.0;
    double loss_bad = 0.5;
  };
  std::optional<GeLoss> ge_loss;
  std::size_t queue_capacity_bytes = 1024 * 1024;
  /// Scripted fault windows applied to this path (empty = no injector).
  FaultPlan fault_plan;
};

class EmulatedPath {
 public:
  EmulatedPath(sim::EventLoop& loop, PathSpec spec, sim::Rng rng,
               telemetry::TraceSink* trace = nullptr,
               std::uint8_t path_index = 0);

  /// Client -> server direction.
  void send_up(Datagram d) {
    if (faults_ && !faults_->admit(FaultInjector::Direction::kUp, d)) return;
    up_->send(std::move(d));
  }
  void set_up_receiver(Link::DeliverFn fn);

  /// Server -> client direction.
  void send_down(Datagram d) {
    if (faults_ && !faults_->admit(FaultInjector::Direction::kDown, d)) return;
    down_->send(std::move(d));
  }
  void set_down_receiver(Link::DeliverFn fn);

  Wireless tech() const { return spec_.tech; }
  const PathSpec& spec() const { return spec_; }
  const LinkStats& up_stats() const { return up_->stats(); }
  const LinkStats& down_stats() const { return down_->stats(); }
  std::size_t down_queued_bytes() const { return down_->queued_bytes(); }

  /// The path's fault injector; nullptr when the spec had no fault plan.
  FaultInjector* faults() { return faults_.get(); }
  const FaultInjector* faults() const { return faults_.get(); }

  /// Base two-way propagation delay (no queueing).
  sim::Duration base_rtt() const { return 2 * spec_.one_way_delay; }

 private:
  std::unique_ptr<Link> make_link(sim::EventLoop& loop,
                                  const std::optional<trace::LinkTrace>& t,
                                  sim::Rng rng) const;
  void deliver_faulted(FaultInjector::Direction dir, Datagram d);

  sim::EventLoop& loop_;
  PathSpec spec_;
  std::unique_ptr<Link> up_;
  std::unique_ptr<Link> down_;
  std::unique_ptr<FaultInjector> faults_;
  // Final receivers, stored once so the per-packet fault hop captures only
  // [this, dir, datagram] (stays within the event loop's inline storage)
  // instead of copying a std::function per delivered packet.
  Link::DeliverFn up_fn_;
  Link::DeliverFn down_fn_;
};

}  // namespace xlink::net
