// Bidirectional emulated network path (client <-> server).
//
// A path pairs an uplink and a downlink, each an independent Link, plus the
// wireless technology label used by wireless-aware primary path selection.
#pragma once

#include <memory>
#include <optional>

#include "net/link.h"
#include "net/wireless.h"
#include "sim/event_loop.h"

namespace xlink::net {

/// Everything needed to build one emulated path.
struct PathSpec {
  Wireless tech = Wireless::kWifi;
  /// Downlink trace (server -> client); empty means use fixed_rate_mbps.
  std::optional<trace::LinkTrace> down_trace;
  /// Uplink trace (client -> server); empty means use fixed_rate_mbps.
  std::optional<trace::LinkTrace> up_trace;
  double fixed_rate_mbps = 20.0;
  sim::Duration one_way_delay = sim::millis(15);
  double loss_rate = 0.0;                       // residual Bernoulli loss
  std::size_t queue_capacity_bytes = 1024 * 1024;
};

class EmulatedPath {
 public:
  EmulatedPath(sim::EventLoop& loop, PathSpec spec, sim::Rng rng);

  /// Client -> server direction.
  void send_up(Datagram d) { up_->send(std::move(d)); }
  void set_up_receiver(Link::DeliverFn fn) { up_->set_receiver(std::move(fn)); }

  /// Server -> client direction.
  void send_down(Datagram d) { down_->send(std::move(d)); }
  void set_down_receiver(Link::DeliverFn fn) {
    down_->set_receiver(std::move(fn));
  }

  Wireless tech() const { return spec_.tech; }
  const PathSpec& spec() const { return spec_; }
  const LinkStats& up_stats() const { return up_->stats(); }
  const LinkStats& down_stats() const { return down_->stats(); }
  std::size_t down_queued_bytes() const { return down_->queued_bytes(); }

  /// Base two-way propagation delay (no queueing).
  sim::Duration base_rtt() const { return 2 * spec_.one_way_delay; }

 private:
  std::unique_ptr<Link> make_link(sim::EventLoop& loop,
                                  const std::optional<trace::LinkTrace>& t,
                                  sim::Rng rng) const;

  PathSpec spec_;
  std::unique_ptr<Link> up_;
  std::unique_ptr<Link> down_;
};

}  // namespace xlink::net
