// Network fabric: the set of emulated paths between one client and one
// server endpoint pair.
//
// Endpoints address paths by index (the transport maps connection-ID
// sequence numbers onto these indices). The fabric also supports adding a
// path mid-run (a phone turning on cellular) which the mobility experiments
// use.
#pragma once

#include <memory>
#include <vector>

#include "net/path.h"

namespace xlink::net {

class Network {
 public:
  Network(sim::EventLoop& loop, sim::Rng rng) : loop_(loop), rng_(rng) {}

  /// Telemetry sink handed to fault injectors; set before add_path.
  void set_trace(telemetry::TraceSink* trace) { trace_ = trace; }

  /// Adds a path and returns its index.
  std::size_t add_path(PathSpec spec) {
    paths_.push_back(std::make_unique<EmulatedPath>(
        loop_, std::move(spec), rng_.fork(), trace_,
        static_cast<std::uint8_t>(paths_.size())));
    return paths_.size() - 1;
  }

  std::size_t path_count() const { return paths_.size(); }
  EmulatedPath& path(std::size_t i) { return *paths_.at(i); }
  const EmulatedPath& path(std::size_t i) const { return *paths_.at(i); }

  /// Total bytes the server pushed into downlinks (the CDN egress the cost
  /// metric is measured on).
  std::uint64_t total_down_enqueued_bytes() const {
    std::uint64_t sum = 0;
    for (const auto& p : paths_) {
      sum += p->down_stats().bytes_delivered;
    }
    return sum;
  }

 private:
  sim::EventLoop& loop_;
  sim::Rng rng_;
  telemetry::TraceSink* trace_ = nullptr;
  std::vector<std::unique_ptr<EmulatedPath>> paths_;
};

}  // namespace xlink::net
