// One-directional emulated links.
//
// A link models the Mahimahi pipeline: droptail queue -> capacity process
// (trace-driven delivery opportunities or a fixed rate) -> loss model ->
// propagation delay -> receiver callback.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "net/datagram.h"
#include "net/loss_model.h"
#include "sim/event_loop.h"
#include "sim/ring_queue.h"
#include "sim/rng.h"
#include "trace/trace.h"

namespace xlink::net {

struct LinkStats {
  std::uint64_t packets_enqueued = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_dropped_queue = 0;  // droptail overflow
  std::uint64_t packets_dropped_loss = 0;   // loss model
  std::uint64_t bytes_delivered = 0;
  std::uint64_t peak_queued_bytes = 0;  // droptail high-water mark
};

class Link {
 public:
  using DeliverFn = std::function<void(Datagram)>;

  virtual ~Link() = default;

  /// Enqueues a datagram for transmission. May drop (droptail).
  virtual void send(Datagram dgram) = 0;

  /// Sets the receiver; must be set before the first delivery fires.
  void set_receiver(DeliverFn fn) { deliver_ = std::move(fn); }

  const LinkStats& stats() const { return stats_; }

  /// Bytes currently queued (not yet transmitted).
  std::size_t queued_bytes() const { return queued_bytes_; }

 protected:
  DeliverFn deliver_;
  LinkStats stats_;
  std::size_t queued_bytes_ = 0;
};

/// Configuration shared by all link types.
struct LinkConfig {
  sim::Duration propagation_delay = sim::millis(10);  // one-way
  std::size_t queue_capacity_bytes = 1024 * 1024;     // droptail bound
  std::shared_ptr<LossModel> loss;                    // nullptr = no loss
};

/// Trace-driven link: one packet departs per delivery opportunity of the
/// trace (the trace loops past its end, with time offset by its period).
class TraceLink final : public Link {
 public:
  TraceLink(sim::EventLoop& loop, trace::LinkTrace trace, LinkConfig cfg,
            sim::Rng rng);

  void send(Datagram dgram) override;

  const trace::LinkTrace& trace() const { return trace_; }

 private:
  void arm_next_departure();
  void depart_one();

  sim::EventLoop& loop_;
  trace::LinkTrace trace_;
  LinkConfig cfg_;
  sim::Rng rng_;
  sim::RingQueue<Datagram> queue_;
  std::uint64_t next_opportunity_ = 0;  // monotone cursor into the trace
  bool departure_armed_ = false;
};

/// Fixed-rate link: serializes packets at `rate_bps` (store-and-forward).
class FixedRateLink final : public Link {
 public:
  FixedRateLink(sim::EventLoop& loop, double rate_bps, LinkConfig cfg,
                sim::Rng rng);

  void send(Datagram dgram) override;

 private:
  void arm_next_departure();
  void depart_one();

  sim::EventLoop& loop_;
  double rate_bps_;
  LinkConfig cfg_;
  sim::Rng rng_;
  sim::RingQueue<Datagram> queue_;
  sim::Time link_free_at_ = 0;  // when the serializer is next idle
  bool departure_armed_ = false;
};

}  // namespace xlink::net
