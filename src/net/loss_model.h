// Packet loss models applied at the egress of emulated links.
//
// Trace-driven links already model capacity-induced queueing and outage
// behaviour; these models add the random residual loss of wireless channels
// plus configurable deterministic outage windows used by controlled
// experiments.
#pragma once

#include <memory>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"

namespace xlink::net {

class LossModel {
 public:
  virtual ~LossModel() = default;
  /// Returns true if the packet leaving at `now` should be dropped.
  virtual bool should_drop(sim::Time now, sim::Rng& rng) = 0;
};

/// Never drops.
class NoLoss final : public LossModel {
 public:
  bool should_drop(sim::Time, sim::Rng&) override { return false; }
};

/// Independent (Bernoulli) loss with fixed probability.
class BernoulliLoss final : public LossModel {
 public:
  explicit BernoulliLoss(double p) : p_(p) {}
  bool should_drop(sim::Time, sim::Rng& rng) override { return rng.chance(p_); }

 private:
  double p_;
};

/// Two-state Gilbert-Elliott bursty loss: a good state with low loss and a
/// bad state with high loss; state transition sampled per packet.
class GilbertElliottLoss final : public LossModel {
 public:
  GilbertElliottLoss(double p_good_to_bad, double p_bad_to_good,
                     double loss_good, double loss_bad)
      : p_gb_(p_good_to_bad),
        p_bg_(p_bad_to_good),
        loss_good_(loss_good),
        loss_bad_(loss_bad) {}

  bool should_drop(sim::Time now, sim::Rng& rng) override;
  bool in_bad_state() const { return bad_; }

 private:
  double p_gb_, p_bg_, loss_good_, loss_bad_;
  bool bad_ = false;
};

/// Drops every packet inside the configured absolute time windows; models
/// hard link outages (e.g. a Wi-Fi AP handoff) deterministically.
class OutageWindows final : public LossModel {
 public:
  struct Window {
    sim::Time begin;
    sim::Time end;
  };
  explicit OutageWindows(std::vector<Window> windows)
      : windows_(std::move(windows)) {}

  bool should_drop(sim::Time now, sim::Rng&) override;

 private:
  std::vector<Window> windows_;
};

/// Applies the union of several models (drop if any model drops).
class CompositeLoss final : public LossModel {
 public:
  explicit CompositeLoss(std::vector<std::unique_ptr<LossModel>> models)
      : models_(std::move(models)) {}

  bool should_drop(sim::Time now, sim::Rng& rng) override;

 private:
  std::vector<std::unique_ptr<LossModel>> models_;
};

}  // namespace xlink::net
