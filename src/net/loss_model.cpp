#include "net/loss_model.h"

namespace xlink::net {

bool GilbertElliottLoss::should_drop(sim::Time /*now*/, sim::Rng& rng) {
  if (bad_) {
    if (rng.chance(p_bg_)) bad_ = false;
  } else {
    if (rng.chance(p_gb_)) bad_ = true;
  }
  return rng.chance(bad_ ? loss_bad_ : loss_good_);
}

bool OutageWindows::should_drop(sim::Time now, sim::Rng&) {
  for (const auto& w : windows_)
    if (now >= w.begin && now < w.end) return true;
  return false;
}

bool CompositeLoss::should_drop(sim::Time now, sim::Rng& rng) {
  bool drop = false;
  // Evaluate every model so stateful models (Gilbert-Elliott) advance.
  for (auto& m : models_)
    if (m->should_drop(now, rng)) drop = true;
  return drop;
}

}  // namespace xlink::net
