#include "net/path.h"

namespace xlink::net {

EmulatedPath::EmulatedPath(sim::EventLoop& loop, PathSpec spec, sim::Rng rng)
    : spec_(std::move(spec)) {
  up_ = make_link(loop, spec_.up_trace, rng.fork());
  down_ = make_link(loop, spec_.down_trace, rng.fork());
}

std::unique_ptr<Link> EmulatedPath::make_link(
    sim::EventLoop& loop, const std::optional<trace::LinkTrace>& t,
    sim::Rng rng) const {
  LinkConfig cfg;
  cfg.propagation_delay = spec_.one_way_delay;
  cfg.queue_capacity_bytes = spec_.queue_capacity_bytes;
  if (spec_.loss_rate > 0.0)
    cfg.loss = std::make_shared<BernoulliLoss>(spec_.loss_rate);
  if (t.has_value())
    return std::make_unique<TraceLink>(loop, *t, std::move(cfg), rng);
  return std::make_unique<FixedRateLink>(loop, spec_.fixed_rate_mbps * 1e6,
                                         std::move(cfg), rng);
}

}  // namespace xlink::net
