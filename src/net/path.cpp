#include "net/path.h"

namespace xlink::net {

EmulatedPath::EmulatedPath(sim::EventLoop& loop, PathSpec spec, sim::Rng rng,
                           telemetry::TraceSink* trace,
                           std::uint8_t path_index)
    : loop_(loop), spec_(std::move(spec)) {
  up_ = make_link(loop, spec_.up_trace, rng.fork());
  down_ = make_link(loop, spec_.down_trace, rng.fork());
  if (!spec_.fault_plan.empty()) {
    faults_ = std::make_unique<FaultInjector>(loop, spec_.fault_plan,
                                              rng.fork(), trace, path_index);
  }
}

void EmulatedPath::set_up_receiver(Link::DeliverFn fn) {
  if (!faults_) {
    up_->set_receiver(std::move(fn));
    return;
  }
  up_fn_ = std::move(fn);
  up_->set_receiver([this](Datagram d) {
    deliver_faulted(FaultInjector::Direction::kUp, std::move(d));
  });
}

void EmulatedPath::set_down_receiver(Link::DeliverFn fn) {
  if (!faults_) {
    down_->set_receiver(std::move(fn));
    return;
  }
  down_fn_ = std::move(fn);
  down_->set_receiver([this](Datagram d) {
    deliver_faulted(FaultInjector::Direction::kDown, std::move(d));
  });
}

void EmulatedPath::deliver_faulted(FaultInjector::Direction dir, Datagram d) {
  // Reorder/delay-spike windows hold datagrams past the link's own
  // propagation delay; undelayed successors overtake them.
  const sim::Duration extra = faults_->delivery_delay(dir);
  auto& fn = dir == FaultInjector::Direction::kUp ? up_fn_ : down_fn_;
  if (extra == 0) {
    fn(std::move(d));
    return;
  }
  loop_.schedule_in(extra, [this, dir, d = std::move(d)]() mutable {
    (dir == FaultInjector::Direction::kUp ? up_fn_ : down_fn_)(std::move(d));
  });
}

std::unique_ptr<Link> EmulatedPath::make_link(
    sim::EventLoop& loop, const std::optional<trace::LinkTrace>& t,
    sim::Rng rng) const {
  LinkConfig cfg;
  cfg.propagation_delay = spec_.one_way_delay;
  cfg.queue_capacity_bytes = spec_.queue_capacity_bytes;
  if (spec_.loss_rate > 0.0 && spec_.ge_loss) {
    std::vector<std::unique_ptr<LossModel>> models;
    models.push_back(std::make_unique<BernoulliLoss>(spec_.loss_rate));
    models.push_back(std::make_unique<GilbertElliottLoss>(
        spec_.ge_loss->p_good_to_bad, spec_.ge_loss->p_bad_to_good,
        spec_.ge_loss->loss_good, spec_.ge_loss->loss_bad));
    cfg.loss = std::make_shared<CompositeLoss>(std::move(models));
  } else if (spec_.ge_loss) {
    cfg.loss = std::make_shared<GilbertElliottLoss>(
        spec_.ge_loss->p_good_to_bad, spec_.ge_loss->p_bad_to_good,
        spec_.ge_loss->loss_good, spec_.ge_loss->loss_bad);
  } else if (spec_.loss_rate > 0.0) {
    cfg.loss = std::make_shared<BernoulliLoss>(spec_.loss_rate);
  }
  if (t.has_value())
    return std::make_unique<TraceLink>(loop, *t, std::move(cfg), rng);
  return std::make_unique<FixedRateLink>(loop, spec_.fixed_rate_mbps * 1e6,
                                         std::move(cfg), rng);
}

}  // namespace xlink::net
