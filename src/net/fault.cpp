#include "net/fault.h"

#include <algorithm>

#include "telemetry/event.h"

namespace xlink::net {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBlackout: return "blackout";
    case FaultKind::kUplinkDrop: return "uplink_drop";
    case FaultKind::kDownlinkDrop: return "downlink_drop";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kDelaySpike: return "delay_spike";
    case FaultKind::kNatRebind: return "nat_rebind";
  }
  return "?";
}

sim::Time FaultPlan::last_fault_end() const {
  sim::Time last = 0;
  for (const FaultWindow& w : windows)
    last = std::max(last, std::max(w.start, w.end));
  return last;
}

namespace {
FaultWindow window(FaultKind kind, sim::Time start, sim::Duration duration) {
  FaultWindow w;
  w.kind = kind;
  w.start = start;
  w.end = start + duration;
  return w;
}
}  // namespace

FaultPlan& FaultPlan::blackout(sim::Time start, sim::Duration duration) {
  windows.push_back(window(FaultKind::kBlackout, start, duration));
  return *this;
}

FaultPlan& FaultPlan::uplink_drop(sim::Time start, sim::Duration duration) {
  windows.push_back(window(FaultKind::kUplinkDrop, start, duration));
  return *this;
}

FaultPlan& FaultPlan::downlink_drop(sim::Time start, sim::Duration duration) {
  windows.push_back(window(FaultKind::kDownlinkDrop, start, duration));
  return *this;
}

FaultPlan& FaultPlan::corrupt(sim::Time start, sim::Duration duration,
                              double probability) {
  FaultWindow w = window(FaultKind::kCorrupt, start, duration);
  w.probability = probability;
  windows.push_back(w);
  return *this;
}

FaultPlan& FaultPlan::reorder(sim::Time start, sim::Duration duration,
                              double probability, sim::Duration hold) {
  FaultWindow w = window(FaultKind::kReorder, start, duration);
  w.probability = probability;
  w.extra_delay = hold;
  windows.push_back(w);
  return *this;
}

FaultPlan& FaultPlan::delay_spike(sim::Time start, sim::Duration duration,
                                  sim::Duration extra) {
  FaultWindow w = window(FaultKind::kDelaySpike, start, duration);
  w.extra_delay = extra;
  windows.push_back(w);
  return *this;
}

FaultPlan& FaultPlan::nat_rebind(sim::Time at) {
  FaultWindow w;
  w.kind = FaultKind::kNatRebind;
  w.start = at;
  w.end = at;
  windows.push_back(w);
  return *this;
}

FaultInjector::FaultInjector(sim::EventLoop& loop, FaultPlan plan,
                             sim::Rng rng, telemetry::TraceSink* trace,
                             std::uint8_t path_index)
    : loop_(loop),
      plan_(std::move(plan)),
      rng_(rng),
      trace_(trace),
      path_index_(path_index) {
  arm_window_events();
}

void FaultInjector::arm_window_events() {
  for (std::size_t i = 0; i < plan_.windows.size(); ++i) {
    const FaultWindow& w = plan_.windows[i];
    const auto kind = static_cast<std::uint64_t>(w.kind);
    loop_.schedule_at(w.start, [this, i, kind] {
      ++stats_.windows_fired;
      XLINK_TRACE(trace_, telemetry::Event::fault(loop_.now(), path_index_,
                                                  kind, /*active=*/true, i));
      if (plan_.windows[i].kind == FaultKind::kNatRebind) {
        ++stats_.nat_rebinds;
        if (on_nat_rebind) on_nat_rebind();
      }
    });
    if (w.kind != FaultKind::kNatRebind && w.end > w.start) {
      loop_.schedule_at(w.end, [this, i, kind] {
        XLINK_TRACE(trace_,
                    telemetry::Event::fault(loop_.now(), path_index_, kind,
                                            /*active=*/false, i));
      });
    }
  }
}

bool FaultInjector::window_applies(const FaultWindow& w, sim::Time now) const {
  return now >= w.start && now < w.end;
}

bool FaultInjector::admit(Direction dir, Datagram& d) {
  const sim::Time now = loop_.now();
  for (const FaultWindow& w : plan_.windows) {
    if (!window_applies(w, now)) continue;
    switch (w.kind) {
      case FaultKind::kBlackout:
        ++stats_.packets_dropped;
        return false;
      case FaultKind::kUplinkDrop:
        if (dir == Direction::kUp) {
          ++stats_.packets_dropped;
          return false;
        }
        break;
      case FaultKind::kDownlinkDrop:
        if (dir == Direction::kDown) {
          ++stats_.packets_dropped;
          return false;
        }
        break;
      case FaultKind::kCorrupt:
        if (!d.empty() && rng_.chance(w.probability)) {
          // Flip one bit anywhere in the datagram; whether it lands in the
          // header, the payload, or the tag, AEAD open must fail.
          const std::size_t byte = rng_.uniform(d.size());
          d[byte] ^= static_cast<std::uint8_t>(1u << rng_.uniform(8));
          ++stats_.packets_corrupted;
        }
        break;
      case FaultKind::kReorder:
      case FaultKind::kDelaySpike:
      case FaultKind::kNatRebind:
        break;  // handled at delivery / window start
    }
  }
  return true;
}

sim::Duration FaultInjector::delivery_delay(Direction /*dir*/) {
  const sim::Time now = loop_.now();
  sim::Duration extra = 0;
  for (const FaultWindow& w : plan_.windows) {
    if (!window_applies(w, now)) continue;
    if (w.kind == FaultKind::kDelaySpike) {
      extra = std::max(extra, w.extra_delay);
    } else if (w.kind == FaultKind::kReorder && rng_.chance(w.probability)) {
      // Held-back datagrams let their successors overtake them.
      extra = std::max(extra, w.extra_delay);
    }
  }
  if (extra > 0) ++stats_.packets_delayed;
  return extra;
}

}  // namespace xlink::net
