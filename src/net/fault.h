// Deterministic fault injection for emulated paths.
//
// A FaultPlan is a script of timed fault windows attached to one
// EmulatedPath. The FaultInjector sits between the transport and the
// path's two links: it may drop a datagram at ingress (blackout,
// directional drop), flip bits in it (corruption the AEAD must reject),
// hold it back (reorder burst, delay spike), or fire a point event (NAT
// rebind, which the harness wires to the connection's path re-validation).
// All probabilistic decisions draw from the session's forked sim::Rng, so
// every chaos run replays bit-identically at any XLINK_JOBS.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/datagram.h"
#include "sim/event_loop.h"
#include "sim/rng.h"
#include "telemetry/trace_sink.h"

namespace xlink::net {

enum class FaultKind : std::uint8_t {
  kBlackout = 0,   // drop every datagram, both directions
  kUplinkDrop,     // drop client->server only (kills requests + client acks)
  kDownlinkDrop,   // drop server->client only (kills data + server acks)
  kCorrupt,        // flip bits; AEAD must reject the datagram
  kReorder,        // hold back random datagrams so later ones overtake
  kDelaySpike,     // add extra one-way latency to every datagram
  kNatRebind,      // point event: the path's 4-tuple changed; re-validate
};

const char* fault_kind_name(FaultKind kind);

/// One timed fault. For kNatRebind only `start` matters; the window kinds
/// apply within [start, end).
struct FaultWindow {
  FaultKind kind = FaultKind::kBlackout;
  sim::Time start = 0;
  sim::Time end = 0;
  /// Per-datagram probability for kCorrupt / kReorder (window kinds that
  /// affect every datagram ignore it).
  double probability = 1.0;
  /// kReorder: how long a held-back datagram waits; kDelaySpike: the added
  /// one-way latency.
  sim::Duration extra_delay = sim::millis(50);
};

/// A script of fault windows for one path. Builder methods return *this so
/// plans read as a sentence in tests and benches.
struct FaultPlan {
  std::vector<FaultWindow> windows;

  bool empty() const { return windows.empty(); }
  /// End of the last window (the "all faults cleared" horizon).
  sim::Time last_fault_end() const;

  FaultPlan& blackout(sim::Time start, sim::Duration duration);
  FaultPlan& uplink_drop(sim::Time start, sim::Duration duration);
  FaultPlan& downlink_drop(sim::Time start, sim::Duration duration);
  FaultPlan& corrupt(sim::Time start, sim::Duration duration,
                     double probability = 1.0);
  FaultPlan& reorder(sim::Time start, sim::Duration duration,
                     double probability = 0.5,
                     sim::Duration hold = sim::millis(50));
  FaultPlan& delay_spike(sim::Time start, sim::Duration duration,
                         sim::Duration extra);
  FaultPlan& nat_rebind(sim::Time at);
};

struct FaultStats {
  std::uint64_t windows_fired = 0;   // windows whose start time was reached
  std::uint64_t packets_dropped = 0;
  std::uint64_t packets_corrupted = 0;
  std::uint64_t packets_delayed = 0;
  std::uint64_t nat_rebinds = 0;
};

/// Applies one path's FaultPlan. Owned by the EmulatedPath; schedules one
/// event per window boundary at construction so faults fire (and are
/// traced) even on an otherwise idle path.
class FaultInjector {
 public:
  enum class Direction { kUp, kDown };

  FaultInjector(sim::EventLoop& loop, FaultPlan plan, sim::Rng rng,
                telemetry::TraceSink* trace, std::uint8_t path_index);

  /// Ingress filter: returns false when the datagram must be dropped; may
  /// corrupt `d` in place (the AEAD rejects it at the receiver).
  bool admit(Direction dir, Datagram& d);

  /// Extra hold applied at the delivery end of the link (reorder bursts,
  /// delay spikes). 0 outside any matching window.
  sim::Duration delivery_delay(Direction dir);

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }

  /// Fired at each kNatRebind window's start; the harness points this at
  /// Connection::rebind_path so the path re-validates via PATH_CHALLENGE.
  std::function<void()> on_nat_rebind;

 private:
  void arm_window_events();
  bool window_applies(const FaultWindow& w, sim::Time now) const;

  sim::EventLoop& loop_;
  FaultPlan plan_;
  sim::Rng rng_;
  telemetry::TraceSink* trace_;
  std::uint8_t path_index_;
  FaultStats stats_;
};

}  // namespace xlink::net
