// Pooled packet buffers: the zero-allocation datagram backbone.
//
// A PacketBuffer is a move-only RAII handle to one slab slot drawn from a
// thread-local free-list pool. The handle is a single pointer (the slot
// header carries owner/size/capacity), so closures that capture a buffer
// plus a couple of scalars still fit the event loop's inline callback
// storage. Steady-state traffic recycles slots: once a session's working
// set is warm, sealing, queueing, delivering and opening packets touch the
// allocator zero times. Requests beyond the fixed slot capacity fall back
// to an exact-size standalone heap block (rare: jumbo control bursts).
//
// Ownership rules (see DESIGN.md §8): buffers return themselves to their
// pool on destruction, from the thread that owns the pool. Sessions are
// confined to one worker thread, so handles never migrate threads, and a
// buffer must not outlive the thread that acquired it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>

namespace xlink::net {

class PacketBufferPool;

namespace detail {

/// Header preceding each slot's data bytes.
struct PacketSlot {
  PacketBufferPool* owner = nullptr;  // nullptr: standalone heap block
  PacketSlot* next_free = nullptr;    // free-list link while recycled
  std::uint32_t size = 0;
  std::uint32_t capacity = 0;

  std::uint8_t* bytes() { return reinterpret_cast<std::uint8_t*>(this + 1); }
  const std::uint8_t* bytes() const {
    return reinterpret_cast<const std::uint8_t*>(this + 1);
  }
};

}  // namespace detail

/// Thread-local slab/free-list pool behind PacketBuffer.
class PacketBufferPool {
 public:
  /// Fixed slot capacity: covers kMaxDatagramSize plus AEAD tag with slack,
  /// so every wire packet fits one slot.
  static constexpr std::size_t kSlotCapacity = 2048;

  struct Counters {
    std::uint64_t acquires = 0;         // total buffer requests
    std::uint64_t pool_hits = 0;        // served from the free list
    std::uint64_t slab_allocs = 0;      // new slots minted (cold pool)
    std::uint64_t oversize_allocs = 0;  // > kSlotCapacity, standalone block
    std::uint64_t releases = 0;         // buffers returned (pooled + oversize)

    /// Buffers currently held by live handles. Buffers are thread-confined
    /// (DESIGN.md §8), so at any quiescent point acquires == releases and
    /// this is zero; the invariant auditor bounds it while traffic flows.
    std::uint64_t outstanding() const { return acquires - releases; }
  };

  PacketBufferPool() = default;
  PacketBufferPool(const PacketBufferPool&) = delete;
  PacketBufferPool& operator=(const PacketBufferPool&) = delete;
  ~PacketBufferPool();

  /// The calling thread's pool.
  static PacketBufferPool& local();

  /// Returns a slot with capacity >= `capacity` and size == 0.
  detail::PacketSlot* acquire(std::size_t capacity);

  /// Returns `slot` to its owning pool, or frees a standalone block.
  static void release(detail::PacketSlot* slot) noexcept;

  const Counters& counters() const { return counters_; }
  void reset_counters() { counters_ = {}; }

  /// Slots currently parked on the free list.
  std::size_t free_slots() const;

 private:
  detail::PacketSlot* free_head_ = nullptr;
  Counters counters_;
};

/// Move-only owning handle to pooled packet bytes. Used as net::Datagram.
class PacketBuffer {
 public:
  PacketBuffer() = default;
  /// Zero-filled buffer of `size` bytes.
  explicit PacketBuffer(std::size_t size);
  PacketBuffer(std::size_t size, std::uint8_t fill);
  PacketBuffer(std::initializer_list<std::uint8_t> bytes);

  /// An empty buffer whose storage already spans `capacity` bytes.
  static PacketBuffer with_capacity(std::size_t capacity);
  static PacketBuffer copy_of(std::span<const std::uint8_t> bytes);

  PacketBuffer(PacketBuffer&& other) noexcept : slot_(other.slot_) {
    other.slot_ = nullptr;
  }
  PacketBuffer& operator=(PacketBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      slot_ = other.slot_;
      other.slot_ = nullptr;
    }
    return *this;
  }
  PacketBuffer(const PacketBuffer&) = delete;
  PacketBuffer& operator=(const PacketBuffer&) = delete;
  ~PacketBuffer() { reset(); }

  /// Explicit deep copy (datagrams move on the hot path by design).
  PacketBuffer clone() const { return copy_of(cspan()); }

  void reset() noexcept {
    if (slot_) {
      PacketBufferPool::release(slot_);
      slot_ = nullptr;
    }
  }

  std::uint8_t* data() { return slot_ ? slot_->bytes() : nullptr; }
  const std::uint8_t* data() const { return slot_ ? slot_->bytes() : nullptr; }
  std::size_t size() const { return slot_ ? slot_->size : 0; }
  std::size_t capacity() const { return slot_ ? slot_->capacity : 0; }
  bool empty() const { return size() == 0; }

  /// Sets the size; grows storage when `n` exceeds capacity (bytes beyond
  /// the old size are unspecified -- callers write before they read).
  void resize(std::size_t n);

  std::uint8_t& operator[](std::size_t i) { return data()[i]; }
  const std::uint8_t& operator[](std::size_t i) const { return data()[i]; }

  std::uint8_t* begin() { return data(); }
  std::uint8_t* end() { return data() + size(); }
  const std::uint8_t* begin() const { return data(); }
  const std::uint8_t* end() const { return data() + size(); }

  std::span<std::uint8_t> span() { return {data(), size()}; }
  std::span<const std::uint8_t> cspan() const { return {data(), size()}; }
  operator std::span<const std::uint8_t>() const {  // NOLINT: by design
    return cspan();
  }

  bool operator==(const PacketBuffer& other) const;

 private:
  explicit PacketBuffer(detail::PacketSlot* slot) : slot_(slot) {}

  detail::PacketSlot* slot_ = nullptr;
};

}  // namespace xlink::net
