// Wireless technology model: per-technology path delay distributions and
// the cross-ISP delay penalty matrix (paper §3.2, Table 4).
//
// The paper measured (to Taobao CDN servers): median LTE delay 2.7x Wi-Fi
// and 5.5x 5G SA; 90th-percentile LTE delay 3.3x Wi-Fi. We encode lognormal
// RTT distributions whose medians/tails match those ratios.
#pragma once

#include <array>
#include <cmath>
#include <string>

#include "sim/rng.h"
#include "sim/time.h"

namespace xlink::net {

enum class Wireless { kWifi, kLte, k5gSa, k5gNsa };

inline std::string to_string(Wireless w) {
  switch (w) {
    case Wireless::kWifi: return "WiFi";
    case Wireless::kLte: return "LTE";
    case Wireless::k5gSa: return "5G-SA";
    case Wireless::k5gNsa: return "5G-NSA";
  }
  return "?";
}

/// Lognormal parameters of the one-connection RTT (in milliseconds).
struct RttDistribution {
  double median_ms;
  double sigma;  // of the underlying normal
};

/// Per-technology RTT distribution. Medians follow the paper's ratios:
/// LTE = 2.7 x WiFi, LTE = 5.5 x 5G-SA; LTE's sigma is chosen so its p90 is
/// ~3.3x WiFi's p90. 5G NSA rides the LTE core network, so it sits between.
inline RttDistribution rtt_distribution(Wireless w) {
  switch (w) {
    case Wireless::kWifi: return {20.0, 0.45};
    case Wireless::kLte: return {54.0, 0.61};
    case Wireless::k5gSa: return {9.8, 0.35};
    case Wireless::k5gNsa: return {30.0, 0.50};
  }
  return {20.0, 0.45};
}

/// Samples a full-path RTT for the technology.
inline sim::Duration sample_rtt(Wireless w, sim::Rng& rng) {
  const RttDistribution d = rtt_distribution(w);
  const double ms = rng.lognormal(std::log(d.median_ms), d.sigma);
  return static_cast<sim::Duration>(ms * sim::kMillisecond);
}

/// Wireless-aware primary path preference rank; lower is preferred.
/// Paper order: 5G SA > 5G NSA > WiFi > LTE.
inline int primary_path_rank(Wireless w) {
  switch (w) {
    case Wireless::k5gSa: return 0;
    case Wireless::k5gNsa: return 1;
    case Wireless::kWifi: return 2;
    case Wireless::kLte: return 3;
  }
  return 4;
}

/// Cross-ISP LTE delay increase matrix from Table 4 (row = client ISP,
/// column = server ISP), as a fraction (0.21 == +21%).
constexpr std::array<std::array<double, 3>, 3> kCrossIspIncrease{{
    {0.00, 0.21, 0.17},  // from ISP A
    {0.42, 0.00, 0.54},  // from ISP B
    {0.39, 0.34, 0.00},  // from ISP C
}};

enum class Isp { kA = 0, kB = 1, kC = 2 };

inline double cross_isp_increase(Isp from, Isp to) {
  return kCrossIspIncrease[static_cast<int>(from)][static_cast<int>(to)];
}

}  // namespace xlink::net
