#include "net/link.h"

#include <algorithm>
#include <utility>

namespace xlink::net {

// ---------------------------------------------------------------- TraceLink

TraceLink::TraceLink(sim::EventLoop& loop, trace::LinkTrace trace,
                     LinkConfig cfg, sim::Rng rng)
    : loop_(loop), trace_(std::move(trace)), cfg_(std::move(cfg)), rng_(rng) {}

void TraceLink::send(Datagram dgram) {
  ++stats_.packets_enqueued;
  if (queued_bytes_ + dgram.size() > cfg_.queue_capacity_bytes) {
    ++stats_.packets_dropped_queue;
    return;
  }
  queued_bytes_ += dgram.size();
  stats_.peak_queued_bytes =
      std::max<std::uint64_t>(stats_.peak_queued_bytes, queued_bytes_);
  queue_.push_back(std::move(dgram));
  arm_next_departure();
}

void TraceLink::arm_next_departure() {
  if (departure_armed_ || queue_.empty()) return;
  const std::uint64_t opp = std::max(
      next_opportunity_, trace_.first_opportunity_at_or_after(loop_.now()));
  next_opportunity_ = opp;
  departure_armed_ = true;
  loop_.schedule_at(trace_.opportunity_time(opp), [this] {
    departure_armed_ = false;
    depart_one();
  });
}

void TraceLink::depart_one() {
  if (queue_.empty()) return;
  ++next_opportunity_;  // this opportunity is consumed either way
  Datagram dgram = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= dgram.size();
  const bool lost = cfg_.loss && cfg_.loss->should_drop(loop_.now(), rng_);
  if (lost) {
    ++stats_.packets_dropped_loss;
  } else {
    loop_.schedule_in(cfg_.propagation_delay,
                      [this, d = std::move(dgram)]() mutable {
                        ++stats_.packets_delivered;
                        stats_.bytes_delivered += d.size();
                        if (deliver_) deliver_(std::move(d));
                      });
  }
  arm_next_departure();
}

// ------------------------------------------------------------ FixedRateLink

FixedRateLink::FixedRateLink(sim::EventLoop& loop, double rate_bps,
                             LinkConfig cfg, sim::Rng rng)
    : loop_(loop), rate_bps_(rate_bps), cfg_(std::move(cfg)), rng_(rng) {}

void FixedRateLink::send(Datagram dgram) {
  ++stats_.packets_enqueued;
  if (queued_bytes_ + dgram.size() > cfg_.queue_capacity_bytes) {
    ++stats_.packets_dropped_queue;
    return;
  }
  queued_bytes_ += dgram.size();
  stats_.peak_queued_bytes =
      std::max<std::uint64_t>(stats_.peak_queued_bytes, queued_bytes_);
  queue_.push_back(std::move(dgram));
  arm_next_departure();
}

void FixedRateLink::arm_next_departure() {
  if (departure_armed_ || queue_.empty()) return;
  const double bits = static_cast<double>(queue_.front().size()) * 8.0;
  const auto tx_time =
      static_cast<sim::Duration>(bits / rate_bps_ * sim::kSecond);
  const sim::Time start = std::max(link_free_at_, loop_.now());
  link_free_at_ = start + tx_time;
  departure_armed_ = true;
  loop_.schedule_at(link_free_at_, [this] {
    departure_armed_ = false;
    depart_one();
  });
}

void FixedRateLink::depart_one() {
  if (queue_.empty()) return;
  Datagram dgram = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= dgram.size();
  const bool lost = cfg_.loss && cfg_.loss->should_drop(loop_.now(), rng_);
  if (lost) {
    ++stats_.packets_dropped_loss;
  } else {
    loop_.schedule_in(cfg_.propagation_delay,
                      [this, d = std::move(dgram)]() mutable {
                        ++stats_.packets_delivered;
                        stats_.bytes_delivered += d.size();
                        if (deliver_) deliver_(std::move(d));
                      });
  }
  arm_next_departure();
}

}  // namespace xlink::net
