#include "net/packet_buffer.h"

#include <algorithm>
#include <cstring>
#include <new>

namespace xlink::net {
namespace {

detail::PacketSlot* new_slot(PacketBufferPool* owner, std::size_t capacity) {
  void* mem = ::operator new(sizeof(detail::PacketSlot) + capacity);
  auto* slot = ::new (mem) detail::PacketSlot();
  slot->owner = owner;
  slot->capacity = static_cast<std::uint32_t>(capacity);
  return slot;
}

void free_slot(detail::PacketSlot* slot) noexcept {
  slot->~PacketSlot();
  ::operator delete(static_cast<void*>(slot));
}

}  // namespace

PacketBufferPool::~PacketBufferPool() {
  // Outstanding buffers must not survive their pool (DESIGN.md §8); only
  // the parked free list is reclaimed here.
  while (free_head_) {
    detail::PacketSlot* next = free_head_->next_free;
    free_slot(free_head_);
    free_head_ = next;
  }
}

PacketBufferPool& PacketBufferPool::local() {
  thread_local PacketBufferPool pool;
  return pool;
}

detail::PacketSlot* PacketBufferPool::acquire(std::size_t capacity) {
  ++counters_.acquires;
  if (capacity > kSlotCapacity) {
    ++counters_.oversize_allocs;
    return new_slot(nullptr, capacity);
  }
  if (free_head_) {
    ++counters_.pool_hits;
    detail::PacketSlot* slot = free_head_;
    free_head_ = slot->next_free;
    slot->next_free = nullptr;
    slot->size = 0;
    return slot;
  }
  ++counters_.slab_allocs;
  return new_slot(this, kSlotCapacity);
}

void PacketBufferPool::release(detail::PacketSlot* slot) noexcept {
  if (!slot) return;
  if (!slot->owner) {
    // Oversize blocks have no owning pool; charge the release to the
    // calling thread's pool, which is where the acquire was counted
    // (buffers are thread-confined by design).
    ++local().counters_.releases;
    free_slot(slot);
    return;
  }
  PacketBufferPool& pool = *slot->owner;
  ++pool.counters_.releases;
  slot->next_free = pool.free_head_;
  pool.free_head_ = slot;
}

std::size_t PacketBufferPool::free_slots() const {
  std::size_t n = 0;
  for (const detail::PacketSlot* s = free_head_; s; s = s->next_free) ++n;
  return n;
}

PacketBuffer::PacketBuffer(std::size_t size)
    : PacketBuffer(PacketBufferPool::local().acquire(size)) {
  slot_->size = static_cast<std::uint32_t>(size);
  std::memset(data(), 0, size);
}

PacketBuffer::PacketBuffer(std::size_t size, std::uint8_t fill)
    : PacketBuffer(PacketBufferPool::local().acquire(size)) {
  slot_->size = static_cast<std::uint32_t>(size);
  std::memset(data(), fill, size);
}

PacketBuffer::PacketBuffer(std::initializer_list<std::uint8_t> bytes)
    : PacketBuffer(copy_of({bytes.begin(), bytes.size()})) {}

PacketBuffer PacketBuffer::with_capacity(std::size_t capacity) {
  return PacketBuffer(PacketBufferPool::local().acquire(capacity));
}

PacketBuffer PacketBuffer::copy_of(std::span<const std::uint8_t> bytes) {
  PacketBuffer buf = with_capacity(bytes.size());
  buf.slot_->size = static_cast<std::uint32_t>(bytes.size());
  if (!bytes.empty()) std::memcpy(buf.data(), bytes.data(), bytes.size());
  return buf;
}

void PacketBuffer::resize(std::size_t n) {
  if (!slot_) {
    slot_ = PacketBufferPool::local().acquire(n);
  } else if (n > slot_->capacity) {
    detail::PacketSlot* bigger = PacketBufferPool::local().acquire(n);
    std::memcpy(bigger->bytes(), slot_->bytes(), slot_->size);
    PacketBufferPool::release(slot_);
    slot_ = bigger;
  }
  slot_->size = static_cast<std::uint32_t>(n);
}

bool PacketBuffer::operator==(const PacketBuffer& other) const {
  return size() == other.size() &&
         std::equal(begin(), end(), other.begin());
}

}  // namespace xlink::net
