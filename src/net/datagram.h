// UDP-datagram abstraction carried by emulated links.
#pragma once

#include "net/packet_buffer.h"

namespace xlink::net {

/// Raw datagram payload: in this simulator a datagram carries exactly one
/// QUIC packet (the common case for video transport; coalescing is a wire
/// optimization that does not affect scheduling behaviour).
///
/// A Datagram is a move-only handle to a pooled buffer: links, paths and
/// the fault injector move it hop to hop, and the slot returns to its
/// thread-local pool when the last holder drops it. Call clone() where a
/// genuine copy is required (tests, capture-and-replay harnesses).
using Datagram = PacketBuffer;

}  // namespace xlink::net
