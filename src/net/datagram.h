// UDP-datagram abstraction carried by emulated links.
#pragma once

#include <cstdint>
#include <vector>

namespace xlink::net {

/// Raw datagram payload: in this simulator a datagram carries exactly one
/// QUIC packet (the common case for video transport; coalescing is a wire
/// optimization that does not affect scheduling behaviour).
using Datagram = std::vector<std::uint8_t>;

}  // namespace xlink::net
