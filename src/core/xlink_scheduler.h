// The XLINK scheduler: QoE-driven multipath scheduling (paper §5).
//
// Combines:
//  - min-RTT path selection for first transmissions;
//  - stream- and video-frame-priority re-injection (ReinjectionEngine);
//  - double-thresholding QoE control gating re-injection on the client's
//    buffer occupancy feedback (DoubleThresholdController);
//  - re-injections always travel on a different path than the original.
#pragma once

#include <memory>

#include "core/double_threshold.h"
#include "core/reinjection.h"
#include "quic/scheduler.h"

namespace xlink::core {

struct XlinkSchedulerConfig {
  DoubleThresholdConfig control;
  /// Fig. 4 insertion behaviour; kPriority is XLINK, kAppend the
  /// traditional baseline.
  quic::InsertMode insert_mode = quic::InsertMode::kPriority;
};

class XlinkScheduler final : public quic::Scheduler {
 public:
  explicit XlinkScheduler(XlinkSchedulerConfig config)
      : config_(config), controller_(config.control),
        engine_(config.insert_mode) {}

  std::optional<quic::PathId> select_path(quic::Connection& conn) override;
  void maybe_reinject(quic::Connection& conn) override;

  std::string name() const override { return "xlink"; }

  const ReinjectionStats& reinjection_stats() const { return engine_.stats(); }
  const DoubleThresholdController& controller() const { return controller_; }

  /// Last re-injection gating decision (for instrumentation/benches).
  bool last_decision() const { return last_decision_; }

 private:
  XlinkSchedulerConfig config_;
  DoubleThresholdController controller_;
  ReinjectionEngine engine_;
  bool last_decision_ = false;
  bool gate_traced_ = false;  // first decision traced yet?
};

std::shared_ptr<XlinkScheduler> make_xlink_scheduler(
    XlinkSchedulerConfig config = {});

}  // namespace xlink::core
