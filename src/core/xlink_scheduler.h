// The XLINK scheduler: QoE-driven multipath scheduling (paper §5).
//
// Combines:
//  - min-RTT path selection for first transmissions;
//  - stream- and video-frame-priority re-injection (ReinjectionEngine);
//  - double-thresholding QoE control gating re-injection on the client's
//    buffer occupancy feedback (DoubleThresholdController);
//  - re-injections always travel on a different path than the original.
#pragma once

#include <memory>

#include "core/double_threshold.h"
#include "core/reinjection.h"
#include "quic/scheduler.h"

namespace xlink::core {

/// Which redundancy mechanisms the scheduler drives. Both are gated by the
/// same double-threshold QoE rule; the FEC arm additionally requires the
/// connection to have been configured with `Config::fec.enabled`.
enum class XlinkRedundancy : std::uint8_t {
  kNone,            // neither (ablation baseline)
  kReinject,        // reactive duplication only (paper default)
  kFec,             // proactive repair symbols only
  kReinjectPlusFec, // both, mutually aware (FEC-covered pns not re-injected)
};

constexpr bool redundancy_has_reinject(XlinkRedundancy r) {
  return r == XlinkRedundancy::kReinject ||
         r == XlinkRedundancy::kReinjectPlusFec;
}
constexpr bool redundancy_has_fec(XlinkRedundancy r) {
  return r == XlinkRedundancy::kFec || r == XlinkRedundancy::kReinjectPlusFec;
}

struct XlinkSchedulerConfig {
  DoubleThresholdConfig control;
  /// Fig. 4 insertion behaviour; kPriority is XLINK, kAppend the
  /// traditional baseline.
  quic::InsertMode insert_mode = quic::InsertMode::kPriority;
  XlinkRedundancy redundancy = XlinkRedundancy::kReinject;
};

class XlinkScheduler final : public quic::Scheduler {
 public:
  explicit XlinkScheduler(XlinkSchedulerConfig config)
      : config_(config), controller_(config.control),
        engine_(config.insert_mode) {}

  std::optional<quic::PathId> select_path(quic::Connection& conn) override;
  void maybe_reinject(quic::Connection& conn) override;

  std::string name() const override { return "xlink"; }

  const ReinjectionStats& reinjection_stats() const { return engine_.stats(); }
  const DoubleThresholdController& controller() const { return controller_; }

  /// Last re-injection gating decision (for instrumentation/benches).
  bool last_decision() const { return last_decision_; }

  XlinkRedundancy redundancy() const { return config_.redundancy; }

 private:
  XlinkSchedulerConfig config_;
  DoubleThresholdController controller_;
  ReinjectionEngine engine_;
  bool last_decision_ = false;
  bool gate_traced_ = false;  // first decision traced yet?
};

std::shared_ptr<XlinkScheduler> make_xlink_scheduler(
    XlinkSchedulerConfig config = {});

}  // namespace xlink::core
