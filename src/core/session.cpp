#include "core/session.h"

#include "mpquic/schedulers.h"

namespace xlink::core {

std::string to_string(Scheme scheme) {
  switch (scheme) {
    case Scheme::kSinglePath: return "SP";
    case Scheme::kConnMigration: return "CM";
    case Scheme::kVanillaMp: return "Vanilla-MP";
    case Scheme::kMptcpLike: return "MPTCP";
    case Scheme::kRedundant: return "Redundant";
    case Scheme::kReinjectNoQoe: return "Reinj-noQoE";
    case Scheme::kXlink: return "XLINK";
  }
  return "?";
}

bool is_multipath(Scheme scheme) {
  return scheme != Scheme::kSinglePath && scheme != Scheme::kConnMigration;
}

quic::Connection::Config make_scheme_config(Scheme scheme, quic::Role role,
                                            const SchemeOptions& opts) {
  quic::Connection::Config config;
  config.role = role;
  config.cc = opts.cc;
  config.aead_key = opts.aead_key;
  config.pacing.enabled = opts.pacing;
  config.params.enable_multipath = is_multipath(scheme);

  // Schedulers act on the data sender; in the video workload that is the
  // server, but both sides get the same scheduler so uploads behave too.
  switch (scheme) {
    case Scheme::kSinglePath:
    case Scheme::kConnMigration:
      config.scheduler = nullptr;
      config.ack_policy = quic::AckPathPolicy::kOriginalPath;
      break;
    case Scheme::kVanillaMp:
      config.scheduler = mpquic::make_min_rtt_scheduler();
      config.ack_policy = quic::AckPathPolicy::kOriginalPath;
      break;
    case Scheme::kMptcpLike:
      config.scheduler = mpquic::make_min_rtt_scheduler();
      config.ack_policy = quic::AckPathPolicy::kOriginalPath;
      config.tcp_style_rto = true;
      break;
    case Scheme::kRedundant:
      config.scheduler = mpquic::make_redundant_scheduler();
      config.ack_policy = quic::AckPathPolicy::kOriginalPath;
      break;
    case Scheme::kReinjectNoQoe: {
      XlinkSchedulerConfig xc;
      xc.control.mode = ControlMode::kAlwaysOn;
      xc.insert_mode = quic::InsertMode::kAppend;  // Fig. 4a behaviour
      config.scheduler = make_xlink_scheduler(xc);
      config.ack_policy = quic::AckPathPolicy::kOriginalPath;
      break;
    }
    case Scheme::kXlink: {
      XlinkSchedulerConfig xc;
      xc.control = opts.control;
      xc.insert_mode = opts.xlink_insert_mode;
      xc.redundancy = opts.xlink_redundancy;
      config.scheduler = make_xlink_scheduler(xc);
      config.ack_policy = opts.xlink_ack_policy;
      if (redundancy_has_fec(opts.xlink_redundancy)) {
        // The video server is the protecting sender; the client only
        // recovers. Both need fec.enabled so the receiver side exists.
        config.fec = opts.fec;
        config.fec.enabled = true;
        config.fec.protect = (role == quic::Role::kServer);
      }
      break;
    }
  }
  return config;
}

}  // namespace xlink::core
