#include "core/primary_path.h"

#include <algorithm>
#include <numeric>

namespace xlink::core {

std::vector<std::size_t> rank_paths(
    const std::vector<net::Wireless>& interfaces) {
  std::vector<std::size_t> order(interfaces.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return net::primary_path_rank(interfaces[a]) <
                            net::primary_path_rank(interfaces[b]);
                   });
  return order;
}

std::size_t select_primary_path(
    const std::vector<net::Wireless>& interfaces) {
  return rank_paths(interfaces).front();
}

}  // namespace xlink::core
