// QoE signal interpretation: estimating video play-time left.
//
// Alg. 1 step 1: estimate the play-time remaining in the client's buffer
// from the QoE feedback. The paper recommends looking at BOTH
// cached_bytes/bps and cached_frames/fps and taking the conservative
// (smaller) value, since bps fluctuates for VBR content and fps can be
// too coarse at low frame rates.
#pragma once

#include <optional>

#include "quic/frame.h"
#include "sim/time.h"

namespace xlink::core {

/// Conservative play-time-left estimate; nullopt only when the signal
/// carries neither a usable rate nor frame information.
std::optional<sim::Duration> play_time_left(const quic::QoeSignal& qoe);

}  // namespace xlink::core
