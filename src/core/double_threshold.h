// Double thresholding control (paper Alg. 1).
//
// Decides whether packet re-injection should be enabled from the client's
// QoE feedback:
//   step 1: estimate play-time left dt (core/qoe_signals.h);
//   step 2: dt < Tth1 -> ON (responsiveness);  dt > Tth2 -> OFF (cost);
//   step 3: in between, ON iff dt < deliverTime_max, the largest RTT+var
//           among paths with unacknowledged packets (Eq. 1).
#pragma once

#include <optional>

#include "quic/frame.h"
#include "sim/time.h"

namespace xlink::core {

/// Ablation switch: full Alg. 1, always-on (re-injection without QoE
/// control, §5.2's 15%-overhead strawman), or always-off (vanilla-MP).
enum class ControlMode { kDoubleThreshold, kAlwaysOn, kAlwaysOff };

struct DoubleThresholdConfig {
  sim::Duration tth1 = sim::millis(700);   // responsiveness threshold
  sim::Duration tth2 = sim::millis(2500);  // cost threshold; tth1 < tth2
  ControlMode mode = ControlMode::kDoubleThreshold;
};

/// A gating decision plus which Alg. 1 branch produced it (telemetry:
/// "xlink:double_threshold_gate" events carry the rule so a trace explains
/// WHY re-injection was on or off, not just that it was).
struct GateDecision {
  enum class Rule : std::uint8_t {
    kAlwaysOn = 0,        // ablation mode
    kAlwaysOff,           // ablation mode
    kNoFeedback,          // start-up: no QoE signal yet -> ON
    kUninterpretable,     // signal present but dt not computable -> ON
    kAboveTth2,           // dt > Tth2 -> OFF (cost)
    kBelowTth1,           // dt < Tth1 -> ON (responsiveness)
    kCompareDeliverTime,  // Tth1 <= dt <= Tth2: ON iff dt < deliverTime_max
    kNothingInFlight,     // middle band but no unacked packets -> OFF
  };

  bool allowed = false;
  Rule rule = Rule::kNoFeedback;
  std::optional<sim::Duration> dt;                // play-time left, if known
  std::optional<sim::Duration> deliver_time_max;  // Eq. 1, if evaluated
};

class DoubleThresholdController {
 public:
  explicit DoubleThresholdController(DoubleThresholdConfig config)
      : config_(config) {}

  /// Alg. 1. `qoe` is the latest feedback (nullopt before any feedback:
  /// treated as an empty buffer, i.e. re-injection allowed -- video
  /// start-up is exactly when acceleration matters). `deliver_time_max`
  /// is Eq. 1 evaluated by the caller over paths with unacked packets;
  /// nullopt when no path has unacked packets (then step 3 returns false:
  /// nothing in flight can be late).
  bool decide(const std::optional<quic::QoeSignal>& qoe,
              std::optional<sim::Duration> deliver_time_max) const {
    return decide_explained(qoe, deliver_time_max).allowed;
  }

  /// Same decision procedure, with the branch taken and its inputs.
  GateDecision decide_explained(
      const std::optional<quic::QoeSignal>& qoe,
      std::optional<sim::Duration> deliver_time_max) const;

  const DoubleThresholdConfig& config() const { return config_; }

 private:
  DoubleThresholdConfig config_;
};

}  // namespace xlink::core
