// Double thresholding control (paper Alg. 1).
//
// Decides whether packet re-injection should be enabled from the client's
// QoE feedback:
//   step 1: estimate play-time left dt (core/qoe_signals.h);
//   step 2: dt < Tth1 -> ON (responsiveness);  dt > Tth2 -> OFF (cost);
//   step 3: in between, ON iff dt < deliverTime_max, the largest RTT+var
//           among paths with unacknowledged packets (Eq. 1).
#pragma once

#include <optional>

#include "quic/frame.h"
#include "sim/time.h"

namespace xlink::core {

/// Ablation switch: full Alg. 1, always-on (re-injection without QoE
/// control, §5.2's 15%-overhead strawman), or always-off (vanilla-MP).
enum class ControlMode { kDoubleThreshold, kAlwaysOn, kAlwaysOff };

struct DoubleThresholdConfig {
  sim::Duration tth1 = sim::millis(700);   // responsiveness threshold
  sim::Duration tth2 = sim::millis(2500);  // cost threshold; tth1 < tth2
  ControlMode mode = ControlMode::kDoubleThreshold;
};

class DoubleThresholdController {
 public:
  explicit DoubleThresholdController(DoubleThresholdConfig config)
      : config_(config) {}

  /// Alg. 1. `qoe` is the latest feedback (nullopt before any feedback:
  /// treated as an empty buffer, i.e. re-injection allowed -- video
  /// start-up is exactly when acceleration matters). `deliver_time_max`
  /// is Eq. 1 evaluated by the caller over paths with unacked packets;
  /// nullopt when no path has unacked packets (then step 3 returns false:
  /// nothing in flight can be late).
  bool decide(const std::optional<quic::QoeSignal>& qoe,
              std::optional<sim::Duration> deliver_time_max) const;

  const DoubleThresholdConfig& config() const { return config_; }

 private:
  DoubleThresholdConfig config_;
};

}  // namespace xlink::core
