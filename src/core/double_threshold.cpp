#include "core/double_threshold.h"

#include "core/qoe_signals.h"

namespace xlink::core {

GateDecision DoubleThresholdController::decide_explained(
    const std::optional<quic::QoeSignal>& qoe,
    std::optional<sim::Duration> deliver_time_max) const {
  using Rule = GateDecision::Rule;
  GateDecision d;
  d.deliver_time_max = deliver_time_max;
  switch (config_.mode) {
    case ControlMode::kAlwaysOn:
      d.allowed = true;
      d.rule = Rule::kAlwaysOn;
      return d;
    case ControlMode::kAlwaysOff:
      d.allowed = false;
      d.rule = Rule::kAlwaysOff;
      return d;
    case ControlMode::kDoubleThreshold:
      break;
  }
  // No feedback yet: the buffer is empty (start-up), urgency is maximal.
  if (!qoe) {
    d.allowed = true;
    d.rule = Rule::kNoFeedback;
    return d;
  }
  d.dt = play_time_left(*qoe);
  if (!d.dt) {  // uninterpretable signal: stay safe
    d.allowed = true;
    d.rule = Rule::kUninterpretable;
    return d;
  }
  if (*d.dt > config_.tth2) {  // plenty cached: save cost
    d.allowed = false;
    d.rule = Rule::kAboveTth2;
    return d;
  }
  if (*d.dt < config_.tth1) {  // nearly dry: respond now
    d.allowed = true;
    d.rule = Rule::kBelowTth1;
    return d;
  }
  // Medium buffer: compare with the worst-case in-flight delivery time.
  if (!deliver_time_max) {
    d.allowed = false;
    d.rule = Rule::kNothingInFlight;
    return d;
  }
  d.allowed = *d.dt < *deliver_time_max;
  d.rule = Rule::kCompareDeliverTime;
  return d;
}

}  // namespace xlink::core
