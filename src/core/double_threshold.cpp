#include "core/double_threshold.h"

#include "core/qoe_signals.h"

namespace xlink::core {

bool DoubleThresholdController::decide(
    const std::optional<quic::QoeSignal>& qoe,
    std::optional<sim::Duration> deliver_time_max) const {
  switch (config_.mode) {
    case ControlMode::kAlwaysOn:
      return true;
    case ControlMode::kAlwaysOff:
      return false;
    case ControlMode::kDoubleThreshold:
      break;
  }
  // No feedback yet: the buffer is empty (start-up), urgency is maximal.
  if (!qoe) return true;
  const auto dt = play_time_left(*qoe);
  if (!dt) return true;  // uninterpretable signal: stay safe
  if (*dt > config_.tth2) return false;  // plenty cached: save cost
  if (*dt < config_.tth1) return true;   // nearly dry: respond now
  // Medium buffer: compare with the worst-case in-flight delivery time.
  if (!deliver_time_max) return false;
  return *dt < *deliver_time_max;
}

}  // namespace xlink::core
