#include "core/qoe_feedback.h"

#include <cmath>

#include "core/qoe_signals.h"

namespace xlink::core {

QoeFeedbackSender::QoeFeedbackSender(
    quic::Connection& conn,
    std::function<std::optional<quic::QoeSignal>()> provider, Config config)
    : conn_(conn), provider_(std::move(provider)), config_(config) {
  tick();
}

QoeFeedbackSender::~QoeFeedbackSender() {
  stopped_ = true;
  if (timer_) conn_.loop().cancel(timer_);
}

bool QoeFeedbackSender::material_change(const quic::QoeSignal& next) const {
  if (!last_sent_) return true;
  const auto before = play_time_left(*last_sent_);
  const auto after = play_time_left(next);
  if (before.has_value() != after.has_value()) return true;
  if (!before) return *last_sent_ != next;
  const double a = sim::to_seconds(*before);
  const double b = sim::to_seconds(*after);
  const double base = std::max(a, 0.05);  // 50ms floor avoids 0-division
  return std::abs(b - a) / base >= config_.change_fraction;
}

void QoeFeedbackSender::tick() {
  if (stopped_) return;
  if (conn_.is_established() && !conn_.is_closed()) {
    if (const auto signal = provider_()) {
      const bool heartbeat_due =
          conn_.loop().now() - last_sent_at_ >= config_.heartbeat;
      if (material_change(*signal) || heartbeat_due) {
        conn_.send_qoe_signal(*signal);
        last_sent_ = *signal;
        last_sent_at_ = conn_.loop().now();
        ++frames_sent_;
      }
    }
  }
  timer_ = conn_.loop().schedule_in(config_.period, [this] {
    timer_ = 0;
    tick();
  });
}

}  // namespace xlink::core
