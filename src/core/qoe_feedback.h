// Standalone QoE feedback sender (draft QOE_CONTROL_SIGNALS usage).
//
// The deployed XLINK piggybacked QoE on ACK_MP frames (paper §4), which
// ties feedback frequency to ack frequency; the multipath draft's
// QOE_CONTROL_SIGNALS frame lifts that restriction. This sender emits the
// player's snapshot on its own clock, with change-detection so an idle
// player does not generate traffic: a frame goes out when the signal
// moved materially or a heartbeat interval elapsed.
#pragma once

#include <optional>

#include "quic/connection.h"
#include "sim/event_loop.h"

namespace xlink::core {

class QoeFeedbackSender {
 public:
  struct Config {
    sim::Duration period = sim::millis(50);      // sampling cadence
    sim::Duration heartbeat = sim::millis(500);  // max silence
    /// Minimum relative change of play-time-left that counts as material.
    double change_fraction = 0.2;
  };

  /// `provider` supplies the latest snapshot (same source the ack path
  /// uses); the sender owns its timer for the connection's lifetime.
  QoeFeedbackSender(quic::Connection& conn,
                    std::function<std::optional<quic::QoeSignal>()> provider,
                    Config config);
  ~QoeFeedbackSender();

  QoeFeedbackSender(const QoeFeedbackSender&) = delete;
  QoeFeedbackSender& operator=(const QoeFeedbackSender&) = delete;

  std::uint64_t frames_sent() const { return frames_sent_; }

 private:
  void tick();
  bool material_change(const quic::QoeSignal& next) const;

  quic::Connection& conn_;
  std::function<std::optional<quic::QoeSignal>()> provider_;
  Config config_;
  std::optional<quic::QoeSignal> last_sent_;
  sim::Time last_sent_at_ = 0;
  std::uint64_t frames_sent_ = 0;
  sim::EventId timer_ = 0;
  bool stopped_ = false;
};

}  // namespace xlink::core
