#include "core/xlink_scheduler.h"

#include "mpquic/scheduler_util.h"

namespace xlink::core {

std::optional<quic::PathId> XlinkScheduler::select_path(
    quic::Connection& conn) {
  // Staleness-aware: stop trusting a path whose acks have gone silent
  // (the QoE-driven "swiftly adapt packet distribution" behaviour).
  return mpquic::pick_for_queue_head(conn, /*staleness_aware=*/true);
}

void XlinkScheduler::maybe_reinject(quic::Connection& conn) {
  const GateDecision d =
      controller_.decide_explained(conn.latest_peer_qoe(),
                                   max_deliver_time(conn));
  // Gate decisions are re-evaluated on every pump iteration; trace only the
  // edges (and the very first decision) to keep traces readable.
  if (!gate_traced_ || d.allowed != last_decision_) {
    XLINK_TRACE(conn.trace(),
                telemetry::Event::double_threshold_gate(
                    conn.loop().now(), conn.trace_origin(), d.allowed,
                    static_cast<std::uint32_t>(d.rule),
                    d.dt ? *d.dt : telemetry::kNoValue,
                    d.deliver_time_max ? *d.deliver_time_max
                                       : telemetry::kNoValue));
    gate_traced_ = true;
  }
  last_decision_ = d.allowed;
  // The FEC framer obeys the same QoE gate as re-injection: when the
  // client's buffer is healthy (or the dip is hopeless), proactive
  // redundancy is suppressed too.
  conn.set_fec_gate(redundancy_has_fec(config_.redundancy) && d.allowed);
  if (!last_decision_) return;
  if (redundancy_has_reinject(config_.redundancy)) engine_.run(conn);
}

std::shared_ptr<XlinkScheduler> make_xlink_scheduler(
    XlinkSchedulerConfig config) {
  return std::make_shared<XlinkScheduler>(config);
}

}  // namespace xlink::core
