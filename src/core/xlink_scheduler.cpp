#include "core/xlink_scheduler.h"

#include "mpquic/scheduler_util.h"

namespace xlink::core {

std::optional<quic::PathId> XlinkScheduler::select_path(
    quic::Connection& conn) {
  // Staleness-aware: stop trusting a path whose acks have gone silent
  // (the QoE-driven "swiftly adapt packet distribution" behaviour).
  return mpquic::pick_for_queue_head(conn, /*staleness_aware=*/true);
}

void XlinkScheduler::maybe_reinject(quic::Connection& conn) {
  last_decision_ =
      controller_.decide(conn.latest_peer_qoe(), max_deliver_time(conn));
  if (!last_decision_) return;
  engine_.run(conn);
}

std::shared_ptr<XlinkScheduler> make_xlink_scheduler(
    XlinkSchedulerConfig config) {
  return std::make_shared<XlinkScheduler>(config);
}

}  // namespace xlink::core
