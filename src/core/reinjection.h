// Priority-based re-injection engine (paper §5.1, Fig. 3/4).
//
// Re-injection duplicates still-unacknowledged stream ranges onto another
// path to decouple paths and defeat multi-path head-of-line blocking. The
// trigger follows the paper: a sent packet becomes re-injectable once the
// send queue holds no first-transmission data of an equal-or-higher
// priority class -- i.e. "the sender has sent out the last packet of
// Stream 1" (stream level) or "of the first video frame" (frame level).
// The insertion mode then distinguishes the paper's Fig. 4 variants:
//   kAppend   -> traditional appending re-injection (Fig. 4a)
//   kPriority -> stream/frame priority re-injection (Fig. 4b/4c)
#pragma once

#include "quic/connection.h"
#include "quic/scheduler.h"

namespace xlink::core {

struct ReinjectionStats {
  std::uint64_t records_reinjected = 0;
  std::uint64_t bytes_reinjected = 0;
};

class ReinjectionEngine {
 public:
  explicit ReinjectionEngine(quic::InsertMode mode) : mode_(mode) {}

  /// Scans unacked queues and re-injects eligible records. Call only when
  /// re-injection is currently allowed (the QoE controller's decision).
  void run(quic::Connection& conn);

  const ReinjectionStats& stats() const { return stats_; }

 private:
  quic::InsertMode mode_;
  ReinjectionStats stats_;
};

/// Eq. 1: max over paths with unacked packets of RTT + RTT variation.
std::optional<sim::Duration> max_deliver_time(const quic::Connection& conn);

}  // namespace xlink::core
