#include "core/reinjection.h"

#include "mpquic/scheduler_util.h"

#include <algorithm>
#include <optional>
#include <utility>

namespace xlink::core {
namespace {

std::pair<int, int> item_class(const quic::SendItem& it) {
  return {it.frame_priority, it.stream_priority};
}

std::pair<int, int> record_class(const quic::SentRecord& rec) {
  std::pair<int, int> best{INT_MIN, INT_MIN};
  for (const auto& it : rec.items) best = std::max(best, item_class(it));
  return best;
}

}  // namespace

void ReinjectionEngine::run(quic::Connection& conn) {
  if (conn.schedulable_path_ids().size() < 2) return;
  const sim::Time now = conn.loop().now();

  // Re-arm interval: a record whose duplicate has not produced an ack
  // within the fast path's delivery time is still blocked -- duplicate it
  // again (the QoE gate continues to bound the cost).
  sim::Duration rearm = sim::millis(200);
  for (quic::PathId id : conn.schedulable_path_ids()) {
    const auto& p = conn.path_state(id);
    rearm = std::max(rearm, p.rtt.rtt_plus_var());
  }

  // Highest priority class still waiting for FIRST transmission; re-injected
  // duplicates queued earlier do not hold back further re-injection.
  std::optional<std::pair<int, int>> frontier;
  for (const auto& item : conn.send_queue()) {
    if (item.is_reinjection) continue;
    const auto c = item_class(item);
    if (!frontier || c > *frontier) frontier = c;
  }

  // Duplicates travel "into the fast path" (Fig. 3): only packets NOT on
  // the current fastest path are candidates -- the fast path's own packets
  // are what everything else is being protected against waiting for. The
  // metric is staleness-aware: a path whose acks went silent mid-dip is
  // not "fast" no matter what its stale RTT estimator claims.
  std::optional<quic::PathId> fastest;
  sim::Duration fastest_rtt = 0;
  for (quic::PathId id : conn.schedulable_path_ids()) {
    const auto& p = conn.path_state(id);
    const sim::Duration rtt = mpquic::effective_rtt(conn, p);
    if (!fastest || rtt < fastest_rtt) {
      fastest = id;
      fastest_rtt = rtt;
    }
  }

  for (quic::PathId id : conn.path_ids()) {
    if (fastest && id == *fastest) continue;
    auto& p = conn.path_state(id);
    if (p.state == quic::PathState::State::kAbandoned) continue;
    // A failed-over path holds only dead-path probes (its stream data was
    // rescued at failover) -- nothing worth duplicating.
    if (p.health == quic::PathState::Health::kProbing) continue;
    const sim::Duration overdue_after =
        std::max<sim::Duration>(p.rtt.rtt_plus_var(), sim::millis(200));
    for (auto& [pn, rec] : p.unacked) {
      if (rec.items.empty() || rec.is_reinjection) continue;
      if (rec.reinjected) {
        // Re-arm only when the earlier duplicate did not resolve the block:
        // the record is overdue on its own path and the duplicate has had a
        // full fast-path round trip to land.
        if (now - rec.reinjected_at < rearm) continue;
        if (now - rec.sent_time < overdue_after) continue;
      }
      // Eligible once every queued first transmission is of a strictly
      // lower class ("the last packet of this class has been sent").
      if (frontier && record_class(rec) <= *frontier) continue;
      // Mutual awareness with FEC: a packet a recent repair window covers
      // can be rebuilt from the repair symbol -- duplicating it too would
      // pay the redundancy cost twice.
      if (conn.fec_covers(id, pn)) continue;
      const std::uint64_t bytes = conn.reinject_record(rec, mode_);
      if (bytes > 0) {
        ++stats_.records_reinjected;
        stats_.bytes_reinjected += bytes;
        XLINK_TRACE(conn.trace(),
                    telemetry::Event::reinjection(
                        now, conn.trace_origin(),
                        static_cast<std::uint8_t>(id), bytes, pn));
      }
    }
  }
}

std::optional<sim::Duration> max_deliver_time(const quic::Connection& conn) {
  std::optional<sim::Duration> max;
  for (quic::PathId id : conn.path_ids()) {
    const auto& p = conn.path_state(id);
    if (p.state == quic::PathState::State::kAbandoned) continue;
    if (p.health == quic::PathState::Health::kProbing) continue;
    if (!p.loss.has_ack_eliciting_in_flight()) continue;
    const sim::Duration t = p.rtt.rtt_plus_var();
    if (!max || t > *max) max = t;
  }
  return max;
}

}  // namespace xlink::core
