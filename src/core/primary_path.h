// Wireless-aware primary path selection (paper §5.3).
//
// The primary path starts the connection, so its delay dominates handshake
// and first-video-frame latency. XLINK ranks candidate interfaces by
// technology: 5G SA > 5G NSA > WiFi > LTE (the ranking "should follow
// local statistics"; this is the paper's default for its deployment).
#pragma once

#include <cstddef>
#include <vector>

#include "net/wireless.h"

namespace xlink::core {

/// Index of the interface that should become the primary path (path 0).
/// Ties break toward the earlier index. Precondition: non-empty input.
std::size_t select_primary_path(const std::vector<net::Wireless>& interfaces);

/// Full preference order (best first) over the given interfaces.
std::vector<std::size_t> rank_paths(
    const std::vector<net::Wireless>& interfaces);

}  // namespace xlink::core
