// Transport scheme catalogue: one place that wires up every transport
// configuration the paper evaluates, so benches, tests, and examples agree
// on what "vanilla-MP" or "XLINK" means.
#pragma once

#include <string>

#include "core/xlink_scheduler.h"
#include "quic/connection.h"

namespace xlink::core {

enum class Scheme {
  kSinglePath,       // SP: single-path QUIC
  kConnMigration,    // CM: single-path QUIC + connection migration
  kVanillaMp,        // min-RTT multipath, no re-injection (MPQUIC default)
  kMptcpLike,        // min-RTT + original-path acks + TCP-style RTO
  kRedundant,        // full duplication (cost upper bound)
  kReinjectNoQoe,    // re-injection always on, appending mode (§5.2 strawman)
  kXlink,            // full XLINK
};

std::string to_string(Scheme scheme);

/// Tunables that differ per experiment.
struct SchemeOptions {
  quic::CcAlgorithm cc = quic::CcAlgorithm::kCubic;
  DoubleThresholdConfig control;  // XLINK double thresholds
  /// Overrides XLINK's ack path policy (Fig. 8 compares both).
  quic::AckPathPolicy xlink_ack_policy = quic::AckPathPolicy::kFastestPath;
  /// Overrides XLINK's re-injection insertion mode (Fig. 4 ablation).
  quic::InsertMode xlink_insert_mode = quic::InsertMode::kPriority;
  /// Which loss-protection mechanisms XLINK runs (FEC ablation arms).
  XlinkRedundancy xlink_redundancy = XlinkRedundancy::kReinject;
  /// FEC tunables (window size, repair budget, payload cap). `enabled` and
  /// `protect` are derived from `xlink_redundancy` and the role.
  fec::FecConfig fec;
  std::uint64_t aead_key = 0x5eed;
  /// Token-bucket pacing of data sends (off by default so existing arms
  /// stay byte-identical; the BBR ablation arms switch it on).
  bool pacing = false;
};

/// Builds the connection config for one side of a connection running the
/// given scheme. Multipath schemes negotiate enable_multipath; single-path
/// schemes do not offer it.
quic::Connection::Config make_scheme_config(Scheme scheme, quic::Role role,
                                            const SchemeOptions& opts = {});

/// True if the scheme uses more than one concurrent path.
bool is_multipath(Scheme scheme);

}  // namespace xlink::core
