#include "core/qoe_signals.h"

#include <algorithm>

namespace xlink::core {

std::optional<sim::Duration> play_time_left(const quic::QoeSignal& qoe) {
  std::optional<double> by_bytes;
  std::optional<double> by_frames;
  if (qoe.bps > 0)
    by_bytes = static_cast<double>(qoe.cached_bytes) * 8.0 /
               static_cast<double>(qoe.bps);
  if (qoe.fps > 0)
    by_frames = static_cast<double>(qoe.cached_frames) /
                static_cast<double>(qoe.fps);
  std::optional<double> seconds;
  if (by_bytes && by_frames)
    seconds = std::min(*by_bytes, *by_frames);  // conservative estimate
  else if (by_bytes)
    seconds = by_bytes;
  else if (by_frames)
    seconds = by_frames;
  if (!seconds) return std::nullopt;
  return static_cast<sim::Duration>(*seconds * sim::kSecond);
}

}  // namespace xlink::core
