// Coupled multipath congestion control: LIA (Linked Increases Algorithm,
// RFC 6356).
//
// The paper deploys DECOUPLED per-path Cubic because Wi-Fi and cellular
// rarely share a bottleneck, but §9 notes that 5G SA can move the
// bottleneck toward the CDN where paths do share it and a coupled variant
// is preferred for fairness. This implements that variant: all paths of a
// connection register in one LiaGroup; congestion-avoidance growth on each
// path is capped so the connection as a whole is no more aggressive than a
// single TCP flow on the best path.
#pragma once

#include <memory>
#include <vector>

#include "quic/cc.h"

namespace xlink::quic {

class LiaGroup;

/// Creates one path's controller, coupled through `group`.
std::unique_ptr<CongestionController> make_lia_controller(
    std::shared_ptr<LiaGroup> group, std::size_t mss = kDefaultMss);

/// Shared state of one connection's coupled controllers.
class LiaGroup {
 public:
  /// RFC 6356 alpha: cwnd_total * max_i(cwnd_i / rtt_i^2) /
  ///                 (sum_i(cwnd_i / rtt_i))^2.
  /// Computed over registered controllers with an RTT sample.
  double alpha() const;

  /// Sum of registered controllers' windows (bytes).
  std::size_t total_cwnd() const;

  /// One registered path's published state (controllers own their slot).
  struct Member {
    std::size_t cwnd = 0;
    double srtt_seconds = 0.0;
  };

  std::vector<Member*>& members() { return members_; }
  const std::vector<Member*>& members() const { return members_; }

 private:
  std::vector<Member*> members_;
};

}  // namespace xlink::quic
