// Token-bucket pacer: spreads a cwnd's worth of packets across the RTT
// instead of blasting them back to back, so shallow bottleneck queues (the
// cellular paths XLINK cares about) don't absorb the whole burst at once.
// Plain integer arithmetic on the event-loop clock -- no allocations, no
// floating-point time, fully deterministic.
//
// Operation: tokens (bytes) refill at the pacing rate and cap at a burst
// ceiling. A path may send while its token balance is non-negative; each
// send debits its size, so the balance can go one packet negative and the
// release time for the next packet is when the balance refills to zero.
// The quantum floor keeps per-packet timer churn bounded: refills are
// rounded so at least `quantum` bytes of credit mature per release.
#pragma once

#include <cstdint>

#include "quic/cc.h"
#include "sim/time.h"

namespace xlink::quic {

struct PacerConfig {
  bool enabled = false;
  /// Minimum credit matured per timer release (bytes). Two full packets by
  /// default: halves timer churn versus per-packet release at a cost of
  /// 2-packet micro-bursts.
  std::size_t quantum_bytes = 2 * kDefaultMss;
  /// Token ceiling: an idle path accumulates at most this much credit, so
  /// the first flight after idle is still a bounded burst.
  std::size_t burst_bytes = kInitialWindowPackets * kDefaultMss;
};

class Pacer {
 public:
  Pacer() = default;
  explicit Pacer(const PacerConfig& config) : config_(config) {}

  void configure(const PacerConfig& config) { config_ = config; }
  bool enabled() const { return config_.enabled && rate_ > 0; }

  /// Sets the release rate in bytes/sec; 0 disables pacing (unlimited).
  void set_rate(std::uint64_t bytes_per_sec);
  std::uint64_t rate_bytes_per_sec() const { return rate_; }

  /// True when a packet may leave now.
  bool can_send(sim::Time now);

  /// Charges `bytes` of credit for a departure at `now`.
  void on_sent(sim::Time now, std::size_t bytes);

  /// Earliest time at which can_send will next be true; `now` when the
  /// path is already clear to send. Fed into the connection timer wheel.
  sim::Time next_release_time(sim::Time now) const;

  /// Current token balance in bytes (negative = in debt). Telemetry only.
  std::int64_t tokens_bytes() const { return tokens_; }

  void reset();

 private:
  void refill(sim::Time now);

  PacerConfig config_;
  std::uint64_t rate_ = 0;        // bytes/sec; 0 = unlimited
  std::int64_t tokens_ = 0;       // byte balance; may run negative
  sim::Time last_refill_ = 0;
  bool primed_ = false;           // bucket starts full on first use
};

}  // namespace xlink::quic
