// Core QUIC identifier types and protocol constants.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace xlink::quic {

/// Packet number within one path's number space (multipath QUIC keeps a
/// separate space per path, identified by CID sequence number).
using PacketNumber = std::uint64_t;

/// Stream identifier per RFC 9000 (bits 0-1 encode initiator/direction).
using StreamId = std::uint64_t;

/// Path identifier == sequence number of the destination connection ID used
/// on that path (draft-liu-multipath-quic).
using PathId = std::uint32_t;

/// Byte of every issued CID that carries the issuing server's id for
/// QUIC-LB routing (paper §6: "a real server encodes a server ID in the
/// CID issued to the client"). See lb/quic_lb.h.
constexpr std::size_t kCidServerIdOffset = 1;

/// 8-byte connection ID with its sequence number.
struct ConnectionId {
  std::array<std::uint8_t, 8> bytes{};
  std::uint32_t sequence = 0;

  bool operator==(const ConnectionId&) const = default;
  std::string hex() const;
};

/// Maximum QUIC packet payload we place in one datagram (post-header).
constexpr std::size_t kMaxPacketPayload = 1400;

/// Full datagram size bound.
constexpr std::size_t kMaxDatagramSize = 1452;

/// Client-initiated bidirectional stream ids: 0, 4, 8, ...
inline constexpr StreamId client_bidi_stream(std::uint64_t n) { return n * 4; }

/// True if a stream id was initiated by the client.
inline constexpr bool is_client_initiated(StreamId id) { return (id & 1) == 0; }

/// Transport parameters exchanged during the (simplified) handshake.
struct TransportParams {
  bool enable_multipath = false;
  std::uint64_t initial_max_data = 16 * 1024 * 1024;
  std::uint64_t initial_max_stream_data = 8 * 1024 * 1024;
  std::uint64_t active_connection_id_limit = 8;
  std::uint64_t max_ack_delay_ms = 25;
};

}  // namespace xlink::quic
