#include "quic/guard.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "net/packet_buffer.h"
#include "quic/connection.h"
#include "telemetry/qlog.h"

namespace xlink::quic {

const char* transport_error_name(std::uint64_t code) {
  switch (static_cast<TransportError>(code)) {
    case TransportError::kNoError: return "NO_ERROR";
    case TransportError::kInternalError: return "INTERNAL_ERROR";
    case TransportError::kFlowControlError: return "FLOW_CONTROL_ERROR";
    case TransportError::kStreamLimitError: return "STREAM_LIMIT_ERROR";
    case TransportError::kStreamStateError: return "STREAM_STATE_ERROR";
    case TransportError::kFinalSizeError: return "FINAL_SIZE_ERROR";
    case TransportError::kFrameEncodingError: return "FRAME_ENCODING_ERROR";
    case TransportError::kConnectionIdLimitError:
      return "CONNECTION_ID_LIMIT_ERROR";
    case TransportError::kProtocolViolation: return "PROTOCOL_VIOLATION";
    case TransportError::kCryptoBufferExceeded:
      return "CRYPTO_BUFFER_EXCEEDED";
  }
  return "UNKNOWN";
}

const char* violation_kind_name(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kConnectionFlowControl:
      return "connection_flow_control";
    case ViolationKind::kStreamFlowControl: return "stream_flow_control";
    case ViolationKind::kStreamLimit: return "stream_limit";
    case ViolationKind::kStreamIdInvalid: return "stream_id_invalid";
    case ViolationKind::kFinalSizeChanged: return "final_size_changed";
    case ViolationKind::kLyingAck: return "lying_ack";
    case ViolationKind::kAckFlood: return "ack_flood";
    case ViolationKind::kReplayFlood: return "replay_flood";
    case ViolationKind::kFrameIllegalInState:
      return "frame_illegal_in_state";
    case ViolationKind::kCidLimit: return "cid_limit";
    case ViolationKind::kRepairOversized: return "repair_oversized";
    case ViolationKind::kRepairFlood: return "repair_flood";
  }
  return "unknown";
}

bool audit_enabled_by_env() {
  const char* v = std::getenv("XLINK_AUDIT");
  if (!v) return true;
  const std::string s(v);
  return !(s == "0" || s == "off" || s == "OFF" || s == "false");
}

namespace {

/// Default terminal handler: structured dump (the qlog of the trace ring,
/// when the connection has one, plus the failed check) then abort.
void dump_and_abort(const Connection& conn, const AuditFailure& f) {
  std::ostringstream os;
  os << "\n==== XLINK invariant audit failure ====\n"
     << "check:    " << f.check << "\n"
     << "detail:   " << f.detail << "\n"
     << "expected: " << f.expected << "\n"
     << "actual:   " << f.actual << "\n"
     << "role:     "
     << (conn.role() == Role::kServer ? "server" : "client") << "\n"
     << "time:     " << conn.loop().now() << " us\n";
  if (conn.trace() && conn.trace()->enabled()) {
    telemetry::QlogMeta meta;
    meta.title = "invariant audit failure";
    meta.scenario = f.check;
    os << "---- qlog dump ----\n";
    telemetry::write_qlog(os, *conn.trace(), meta);
  }
  std::cerr << os.str() << std::flush;
  std::abort();
}

}  // namespace

void InvariantAuditor::fail(const Connection& conn, AuditFailure f) {
  ++failures_;
  if (cfg_.on_failure) {
    cfg_.on_failure(conn, f);
    return;
  }
  dump_and_abort(conn, f);
}

std::size_t InvariantAuditor::tick(const Connection& conn) {
  ++ticks_;
  std::size_t ran = 0;

  // 1. Per-path: bytes_in_flight must equal the sum of the ack-eliciting
  //    sent records still tracked in unacked_q. Abandoned paths are skipped:
  //    abandon rescues the records without clearing the loss ledger (the
  //    path is never scheduled again, so the stale counter is inert).
  for (const auto& [id, p] : conn.paths_) {
    if (p->state == PathState::State::kAbandoned) continue;
    std::uint64_t ledger = 0;
    for (const auto& [pn, rec] : p->unacked)
      if (rec.ack_eliciting) ledger += rec.bytes;
    ++ran;
    if (ledger != p->loss.bytes_in_flight()) {
      AuditFailure f;
      f.check = "bytes_in_flight_ledger";
      f.detail = "path " + std::to_string(id) +
                 ": unacked-record sum diverged from loss detection";
      f.expected = ledger;
      f.actual = p->loss.bytes_in_flight();
      fail(conn, std::move(f));
      return ran;
    }
  }

  // 2. Pooled-buffer balance on this thread, bracketed around a running
  //    floor. The counters are process-global: other components hold
  //    buffers across this auditor's lifetime and embedders reset the
  //    counters at quiescent points (bench_perf, the leak tests), so
  //    neither `releases <= acquires` nor any fixed baseline holds in
  //    general. What must hold is that the signed outstanding count
  //    (acquires - releases) stays within the debt budget of the lowest
  //    value this auditor has seen: sustained growth above the floor is a
  //    leak, and a collapse far below it is systematic double release.
  //    Legitimate dips (releases of pre-baseline buffers) just lower the
  //    floor. A counter reset (either counter moving backwards)
  //    re-baselines the window.
  {
    const auto& c = net::PacketBufferPool::local().counters();
    const std::int64_t signed_outstanding =
        static_cast<std::int64_t>(c.acquires) -
        static_cast<std::int64_t>(c.releases);
    const std::int64_t budget =
        static_cast<std::int64_t>(cfg_.max_pool_debt_slots);
    const bool counters_reset =
        c.acquires < pool_last_acquires_ || c.releases < pool_last_releases_;
    pool_last_acquires_ = c.acquires;
    pool_last_releases_ = c.releases;
    if (!pool_baselined_ || counters_reset) {
      pool_baselined_ = true;
      pool_floor_ = signed_outstanding;
    }
    ++ran;
    if (signed_outstanding < pool_floor_ - budget) {
      AuditFailure f;
      f.check = "pool_balance";
      f.detail = "releases outrun acquires beyond the budget (double release)";
      f.expected = static_cast<std::uint64_t>(pool_floor_);
      f.actual = static_cast<std::uint64_t>(signed_outstanding);
      fail(conn, std::move(f));
      return ran;
    }
    if (signed_outstanding < pool_floor_) pool_floor_ = signed_outstanding;
    ++ran;
    if (signed_outstanding - pool_floor_ > budget) {
      AuditFailure f;
      f.check = "pool_debt";
      f.detail = "outstanding pooled buffers exceed the debt budget";
      f.expected = cfg_.max_pool_debt_slots;
      f.actual = static_cast<std::uint64_t>(signed_outstanding - pool_floor_);
      fail(conn, std::move(f));
      return ran;
    }
  }

  // 3. Flow-control monotonicity: limits only grow, consumption never
  //    exceeds receipt, and our own sender honors the peer's limit.
  {
    ++ran;
    const bool monotone = conn.local_max_data_ >= last_local_max_data_ &&
                          conn.peer_max_data_ >= last_peer_max_data_ &&
                          conn.data_received_ >= last_data_received_ &&
                          conn.data_consumed_ >= last_data_consumed_;
    if (!monotone) {
      AuditFailure f;
      f.check = "flow_control_monotonicity";
      f.detail = "a flow-control counter moved backwards";
      f.expected = last_local_max_data_;
      f.actual = conn.local_max_data_;
      fail(conn, std::move(f));
      return ran;
    }
    last_local_max_data_ = conn.local_max_data_;
    last_peer_max_data_ = conn.peer_max_data_;
    last_data_received_ = conn.data_received_;
    last_data_consumed_ = conn.data_consumed_;

    ++ran;
    if (conn.data_consumed_ > conn.data_received_) {
      AuditFailure f;
      f.check = "flow_control_consumed";
      f.detail = "application consumed more than was ever received";
      f.expected = conn.data_received_;
      f.actual = conn.data_consumed_;
      fail(conn, std::move(f));
      return ran;
    }
    ++ran;
    if (conn.data_sent_ > conn.peer_max_data_) {
      AuditFailure f;
      f.check = "flow_control_sender";
      f.detail = "first-transmission bytes exceed the peer's MAX_DATA";
      f.expected = conn.peer_max_data_;
      f.actual = conn.data_sent_;
      fail(conn, std::move(f));
      return ran;
    }
  }

  // 4. FEC recovery-stash accounting: the incrementally maintained byte
  //    counter must match a from-scratch walk of the stash rings.
  if (conn.fec_recovery_) {
    ++ran;
    const std::size_t tracked = conn.fec_recovery_->stash_bytes_tracked();
    const std::size_t actual =
        conn.fec_recovery_->audit_recompute_stash_bytes();
    if (tracked != actual) {
      AuditFailure f;
      f.check = "fec_stash_accounting";
      f.detail = "stash byte counter diverged from ring contents";
      f.expected = actual;
      f.actual = tracked;
      fail(conn, std::move(f));
      return ran;
    }
  }

  checks_ += ran;
  XLINK_TRACE(conn.trace(),
              telemetry::Event::audit_check(
                  conn.loop().now(), conn.trace_origin(),
                  static_cast<std::uint64_t>(ran), failures_,
                  net::PacketBufferPool::local().counters().acquires -
                      net::PacketBufferPool::local().counters().releases));
  return ran;
}

void InvariantAuditor::check_scheduled_path(const Connection& conn,
                                            PathId path) {
  ++checks_;
  if (!conn.has_path(path)) {
    AuditFailure f;
    f.check = "scheduler_unknown_path";
    f.detail = "scheduler selected a path id the connection does not have";
    f.actual = path;
    fail(conn, std::move(f));
    return;
  }
  const PathState& p = conn.path_state(path);
  if (!p.schedulable()) {
    AuditFailure f;
    f.check = "scheduler_unschedulable_path";
    f.detail = "scheduler selected a non-schedulable path (state " +
               std::to_string(static_cast<int>(p.state)) + ", health " +
               std::to_string(static_cast<int>(p.health)) + ")";
    f.actual = path;
    fail(conn, std::move(f));
  }
}

}  // namespace xlink::quic
