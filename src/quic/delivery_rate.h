// Per-path delivery-rate estimation
// (draft-cheng-iccrg-delivery-rate-estimation, the algorithm Linux TCP and
// BBR use). Every ack-eliciting packet is stamped at send time with the
// path's delivery totals; when the packet is acked the sampler reconstructs
// the rate the network actually sustained over that packet's flight:
//
//     rate = (delivered_now - delivered_at_send) / max(send_gap, ack_gap)
//
// Samples taken while the sender was application-limited (it had cwnd
// headroom but nothing to send) underestimate the path and are marked so
// downstream filters only let them raise -- never lower -- the bandwidth
// estimate. The sampler also owns the two windowed filters every consumer
// shares: a windowed-max bottleneck bandwidth (btlbw, ~10 delivery rounds)
// read by BBR and the ECF/BLEST schedulers, and a windowed-min RTT (10 s)
// read by BBR's ProbeRTT logic.
#pragma once

#include <cstdint>

#include "quic/cc.h"
#include "sim/time.h"

namespace xlink::quic {

/// Send-time stamp carried in the connection's SentRecord ledger. POD so
/// the zero-allocation datapath stays allocation-free.
struct RateStamp {
  std::uint64_t delivered = 0;      ///< path delivered total at send time
  sim::Time delivered_time = 0;     ///< when `delivered` was last advanced
  sim::Time first_sent_time = 0;    ///< send time of the flight's first pkt
  bool is_app_limited = false;      ///< sent during an app-limited phase
  bool valid = false;               ///< stamped at all (ack-eliciting sends)
};

class DeliveryRateSampler {
 public:
  /// Number of delivery rounds the btlbw max-filter remembers.
  static constexpr std::uint64_t kBwFilterRounds = 10;
  /// How long a min-RTT observation stays valid.
  static constexpr sim::Duration kMinRttWindow = sim::seconds(10);

  /// Stamps an outgoing ack-eliciting packet. `inflight_before` is the
  /// path's bytes in flight BEFORE this packet is added: when it is zero
  /// the flight restarts and the send/delivered clocks re-anchor at `now`.
  void on_packet_sent(RateStamp& stamp, sim::Time now,
                      std::size_t inflight_before);

  /// Marks the path application-limited: the send loop drained with cwnd
  /// headroom left. Packets stamped until the marker drains (everything
  /// currently in flight is delivered) carry is_app_limited.
  void on_app_limited(std::size_t inflight_bytes);

  /// Produces the rate sample for an acked packet and folds it into the
  /// btlbw / min-RTT filters. `rtt` is this ack's RTT sample (0 = none);
  /// `inflight_after` is bytes in flight after the ack was processed.
  RateSample on_ack(const RateStamp& stamp, std::size_t bytes,
                    sim::Time sent_time, sim::Time now, sim::Duration rtt,
                    std::size_t inflight_after);

  /// Losses advance nothing but must be visible so app-limited markers
  /// drain even when the tail of a flight is lost instead of acked.
  void on_loss(std::size_t bytes);

  std::uint64_t delivered_bytes() const { return delivered_; }
  bool is_app_limited() const { return app_limited_until_ != 0; }
  std::uint64_t round_count() const { return round_count_; }

  /// Windowed-max delivery rate in bytes/sec; 0 until the first sample.
  double btlbw_bytes_per_sec() const;
  /// Windowed-min RTT; 0 until the first RTT-bearing sample.
  sim::Duration min_rtt() const { return min_rtt_; }
  sim::Time min_rtt_timestamp() const { return min_rtt_at_; }

  void reset();

 private:
  void update_btlbw(double rate, bool app_limited);
  void update_min_rtt(sim::Duration rtt, sim::Time now);

  // Delivery ledger.
  std::uint64_t delivered_ = 0;
  sim::Time delivered_time_ = 0;
  sim::Time first_sent_time_ = 0;
  bool anchored_ = false;  ///< clocks re-anchor on the next send when false

  // App-limited marker: delivered total at which the limited phase drains
  // (delivered + inflight at the moment the sender went idle); 0 = not
  // limited. Mirrors tp->app_limited in the Linux implementation.
  std::uint64_t app_limited_until_ = 0;

  // Round counting: a round ends when a packet sent after the previous
  // round's `delivered_` mark is acked.
  std::uint64_t round_count_ = 0;
  std::uint64_t next_round_delivered_ = 0;

  // Windowed-max btlbw filter (Kathleen Nichols' 3-estimate scheme keyed
  // by round count): best, second-best, third-best with the rounds they
  // were taken in.
  struct BwEstimate {
    double rate = 0.0;
    std::uint64_t round = 0;
  };
  BwEstimate bw_[3];

  // Windowed-min RTT.
  sim::Duration min_rtt_ = 0;
  sim::Time min_rtt_at_ = 0;
};

}  // namespace xlink::quic
