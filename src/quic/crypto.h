// Packet protection with the multipath nonce construction.
//
// Real QUIC uses AES-GCM/ChaCha20-Poly1305; the cryptography itself is
// irrelevant to transport behaviour, so we use a toy AEAD (a 64-bit PRF
// keystream plus an 8-byte MAC over header and ciphertext). What we keep
// EXACTLY as the draft specifies is the nonce: a 96-bit
// path-and-packet-number -- the 32-bit CID sequence number, two zero bits,
// and the 62-bit packet number -- left-padded to IV size and XORed with the
// IV. Using the wrong path id or packet number fails authentication, which
// is what gives each path an independent nonce space.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "quic/types.h"

namespace xlink::quic {

constexpr std::size_t kAeadTagSize = 8;
constexpr std::size_t kIvSize = 12;  // 96 bits

/// 96-bit AEAD nonce bytes.
using Nonce = std::array<std::uint8_t, kIvSize>;

/// Builds the draft's path-and-packet-number nonce:
/// [CID sequence number (32b)] [2 zero bits | packet number (62b)].
Nonce build_multipath_nonce(std::uint32_t cid_sequence, PacketNumber pn);

/// Connection-wide AEAD context; both endpoints of a connection share the
/// same key across every path (the draft's design).
class PacketProtection {
 public:
  explicit PacketProtection(std::uint64_t key) : key_(key) {}

  /// Encrypts `plaintext` in place semantics: returns ciphertext || tag.
  /// `aad` is the packet header (authenticated, not encrypted).
  std::vector<std::uint8_t> seal(std::uint32_t cid_sequence, PacketNumber pn,
                                 std::span<const std::uint8_t> aad,
                                 std::span<const std::uint8_t> plaintext) const;

  /// Reverses seal(); nullopt when the tag does not verify (wrong key, path
  /// id, packet number, or corrupted bytes).
  std::optional<std::vector<std::uint8_t>> open(
      std::uint32_t cid_sequence, PacketNumber pn,
      std::span<const std::uint8_t> aad,
      std::span<const std::uint8_t> ciphertext_and_tag) const;

  std::uint64_t key() const { return key_; }

 private:
  std::uint64_t keystream_block(const Nonce& nonce, std::uint64_t counter) const;
  std::uint64_t mac(const Nonce& nonce, std::span<const std::uint8_t> aad,
                    std::span<const std::uint8_t> ciphertext) const;

  std::uint64_t key_;
  // Per-connection IV derived from the key (fixed derivation).
  Nonce iv() const;
};

}  // namespace xlink::quic
