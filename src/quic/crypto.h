// Packet protection with the multipath nonce construction.
//
// Real QUIC uses AES-GCM/ChaCha20-Poly1305; the cryptography itself is
// irrelevant to transport behaviour, so we use a toy AEAD (a 64-bit PRF
// keystream plus an 8-byte MAC over header and ciphertext). What we keep
// EXACTLY as the draft specifies is the nonce: a 96-bit
// path-and-packet-number -- the 32-bit CID sequence number, two zero bits,
// and the 62-bit packet number -- left-padded to IV size and XORed with the
// IV. Using the wrong path id or packet number fails authentication, which
// is what gives each path an independent nonce space.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "quic/types.h"

namespace xlink::quic {

constexpr std::size_t kAeadTagSize = 8;
constexpr std::size_t kIvSize = 12;  // 96 bits

/// 96-bit AEAD nonce bytes.
using Nonce = std::array<std::uint8_t, kIvSize>;

/// Builds the draft's path-and-packet-number nonce:
/// [CID sequence number (32b)] [2 zero bits | packet number (62b)].
Nonce build_multipath_nonce(std::uint32_t cid_sequence, PacketNumber pn);

/// Connection-wide AEAD context; both endpoints of a connection share the
/// same key across every path (the draft's design).
class PacketProtection {
 public:
  explicit PacketProtection(std::uint64_t key);

  /// Encrypts `payload_len` bytes at `payload` in place and writes the
  /// kAeadTagSize-byte tag directly after them (the caller guarantees
  /// room). `aad` is the packet header (authenticated, not encrypted).
  /// This is the hot path: no allocation, no copy.
  void seal_in_place(std::uint32_t cid_sequence, PacketNumber pn,
                     std::span<const std::uint8_t> aad, std::uint8_t* payload,
                     std::size_t payload_len) const;

  /// Verifies and decrypts `ciphertext_and_tag` in place; returns the
  /// plaintext length (tag stripped, plaintext at the span's start) or
  /// nullopt when the tag does not verify (wrong key, path id, packet
  /// number, or corrupted bytes).
  std::optional<std::size_t> open_in_place(
      std::uint32_t cid_sequence, PacketNumber pn,
      std::span<const std::uint8_t> aad,
      std::span<std::uint8_t> ciphertext_and_tag) const;

  /// Copying convenience over seal_in_place: returns ciphertext || tag.
  std::vector<std::uint8_t> seal(std::uint32_t cid_sequence, PacketNumber pn,
                                 std::span<const std::uint8_t> aad,
                                 std::span<const std::uint8_t> plaintext) const;

  /// Copying convenience over open_in_place.
  std::optional<std::vector<std::uint8_t>> open(
      std::uint32_t cid_sequence, PacketNumber pn,
      std::span<const std::uint8_t> aad,
      std::span<const std::uint8_t> ciphertext_and_tag) const;

  std::uint64_t key() const { return key_; }

 private:
  Nonce effective_nonce(std::uint32_t cid_sequence, PacketNumber pn) const;
  void apply_keystream(const Nonce& nonce, std::uint8_t* data,
                       std::size_t len) const;
  std::uint64_t mac(const Nonce& nonce, std::span<const std::uint8_t> aad,
                    std::span<const std::uint8_t> ciphertext) const;

  std::uint64_t key_;
  // Per-connection IV derived from the key once (fixed derivation).
  Nonce iv_;
};

}  // namespace xlink::quic
