// NewReno congestion control per RFC 9002 §7.
#include <algorithm>

#include "quic/cc.h"

namespace xlink::quic {

namespace {

class NewReno final : public CongestionController {
 public:
  explicit NewReno(std::size_t mss)
      : mss_(mss), cwnd_(kInitialWindowPackets * mss) {}

  void on_packet_sent(std::size_t, sim::Time) override {}

  void on_ack(std::size_t bytes, sim::Time sent_time, sim::Time /*now*/,
              sim::Duration /*srtt*/, bool app_limited) override {
    // Sim time 0 is valid, so "no recovery yet" is a flag, not time 0.
    if (recovery_started_ && sent_time <= recovery_start_)
      return;  // in recovery: no growth
    if (app_limited) return;  // RFC 9002 §7.8: not cwnd-limited, no credit
    if (in_slow_start()) {
      cwnd_ += bytes;
      // Exit slow start AT ssthresh: overshooting past it would start the
      // first congestion-avoidance epoch above the estimated safe point.
      if (cwnd_ > ssthresh_) cwnd_ = ssthresh_;
    } else {
      // Congestion avoidance: +MSS per cwnd of acked bytes.
      avoidance_credit_ += bytes;
      while (avoidance_credit_ >= cwnd_) {
        avoidance_credit_ -= cwnd_;
        cwnd_ += mss_;
      }
    }
  }

  void on_loss_event(sim::Time sent_time, sim::Time now) override {
    if (recovery_started_ && sent_time <= recovery_start_)
      return;  // already reacted this burst
    recovery_started_ = true;
    recovery_start_ = now;
    ssthresh_ = std::max(cwnd_ / 2, kMinWindowPackets * mss_);
    cwnd_ = ssthresh_;
    avoidance_credit_ = 0;
  }

  void on_persistent_congestion(sim::Time now) override {
    recovery_started_ = true;
    recovery_start_ = now;
    cwnd_ = kMinWindowPackets * mss_;
    avoidance_credit_ = 0;
  }

  std::size_t cwnd_bytes() const override { return cwnd_; }
  bool in_slow_start() const override { return cwnd_ < ssthresh_; }
  std::size_t ssthresh_bytes() const override { return ssthresh_; }
  std::string name() const override { return "newreno"; }

  void reset() override {
    cwnd_ = kInitialWindowPackets * mss_;
    ssthresh_ = SIZE_MAX;
    avoidance_credit_ = 0;
    recovery_start_ = 0;
    recovery_started_ = false;
  }

 private:
  std::size_t mss_;
  std::size_t cwnd_;
  std::size_t ssthresh_ = SIZE_MAX;
  std::size_t avoidance_credit_ = 0;
  sim::Time recovery_start_ = 0;
  bool recovery_started_ = false;
};

}  // namespace

std::unique_ptr<CongestionController> make_newreno(std::size_t mss) {
  return std::make_unique<NewReno>(mss);
}

}  // namespace xlink::quic
