// Per-path RTT estimation per RFC 9002 §5.
#pragma once

#include "sim/time.h"

namespace xlink::quic {

class RttEstimator {
 public:
  /// Bounds the peer-reported ack delay that on_sample may subtract
  /// (RFC 9002 §5.3: "MUST use the lesser of the acknowledged delay and
  /// the peer's max_ack_delay"). Set from the peer's transport parameter
  /// when the path is created; defaults to the protocol default of 25ms.
  void set_max_ack_delay(sim::Duration d) { max_ack_delay_ = d; }
  sim::Duration max_ack_delay() const { return max_ack_delay_; }

  /// Feeds one RTT sample. `ack_delay` is the peer-reported delay; it is
  /// clamped to max_ack_delay() and then subtracted when doing so does not
  /// go below min_rtt (RFC 9002 §5.3). A misbehaving or emulated peer can
  /// therefore no longer inflate rttvar (and with it every PTO) by
  /// advertising an absurd delay.
  void on_sample(sim::Duration latest, sim::Duration ack_delay);

  bool has_sample() const { return has_sample_; }

  /// Smoothed RTT; before any sample, the RFC's initial 333ms guess.
  sim::Duration smoothed() const { return srtt_; }
  sim::Duration variation() const { return rttvar_; }
  sim::Duration min() const { return min_rtt_; }
  sim::Duration latest() const { return latest_; }

  /// deliverTime contribution of the paper's Alg. 1: RTT + its variation.
  sim::Duration rtt_plus_var() const { return srtt_ + rttvar_; }

  /// PTO interval: srtt + max(4*rttvar, 1ms) + max_ack_delay.
  sim::Duration pto(sim::Duration max_ack_delay) const;

 private:
  bool has_sample_ = false;
  sim::Duration latest_ = 0;
  sim::Duration min_rtt_ = 0;
  sim::Duration srtt_ = sim::millis(333);
  sim::Duration rttvar_ = sim::millis(166);
  sim::Duration max_ack_delay_ = sim::millis(25);
};

}  // namespace xlink::quic
