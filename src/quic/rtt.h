// Per-path RTT estimation per RFC 9002 §5.
#pragma once

#include "sim/time.h"

namespace xlink::quic {

class RttEstimator {
 public:
  /// Feeds one RTT sample. `ack_delay` is the peer-reported delay, which is
  /// subtracted when doing so does not go below min_rtt (RFC 9002 §5.3).
  void on_sample(sim::Duration latest, sim::Duration ack_delay);

  bool has_sample() const { return has_sample_; }

  /// Smoothed RTT; before any sample, the RFC's initial 333ms guess.
  sim::Duration smoothed() const { return srtt_; }
  sim::Duration variation() const { return rttvar_; }
  sim::Duration min() const { return min_rtt_; }
  sim::Duration latest() const { return latest_; }

  /// deliverTime contribution of the paper's Alg. 1: RTT + its variation.
  sim::Duration rtt_plus_var() const { return srtt_ + rttvar_; }

  /// PTO interval: srtt + max(4*rttvar, 1ms) + max_ack_delay.
  sim::Duration pto(sim::Duration max_ack_delay) const;

 private:
  bool has_sample_ = false;
  sim::Duration latest_ = 0;
  sim::Duration min_rtt_ = 0;
  sim::Duration srtt_ = sim::millis(333);
  sim::Duration rttvar_ = sim::millis(166);
};

}  // namespace xlink::quic
