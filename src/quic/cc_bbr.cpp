// BBR congestion control (Cardwell et al., "BBR: Congestion-Based
// Congestion Control", v1 state machine). Model-based: instead of reacting
// to loss, BBR estimates the bottleneck bandwidth (btlbw, windowed max of
// delivery-rate samples) and the round-trip propagation delay (min RTT) and
// paces at pacing_gain * btlbw with inflight capped at cwnd_gain * BDP.
//
//   STARTUP   -> gain 2.885 (2/ln 2): doubles the rate per RTT until btlbw
//                stops growing >= 25% across three rounds ("pipe full").
//   DRAIN     -> inverse gain until inflight <= 1 BDP drains the queue the
//                startup overshoot built.
//   PROBE_BW  -> 8-phase pacing-gain cycle [1.25, 0.75, 1 x6], one phase
//                per min-RTT, probing for more bandwidth then draining.
//   PROBE_RTT -> when the min-RTT sample is >10s old: cwnd to 4 MSS for
//                max(200ms, 1 round) to re-measure the floor.
//
// Model state (btlbw / min_rtt filters) comes from the per-path
// DeliveryRateSampler via on_rate_sample; this class holds only the state
// machine. Loss events deliberately do NOT cut cwnd (the sampler still sees
// them); persistent congestion collapses per RFC 9002 like everyone else.
#include <algorithm>
#include <cmath>

#include "quic/cc.h"

namespace xlink::quic {

namespace {

constexpr double kHighGain = 2.885;        // 2 / ln(2), STARTUP
constexpr double kDrainGain = 1.0 / kHighGain;
constexpr double kCwndGain = 2.0;          // PROBE_BW inflight cap
constexpr int kGainCycleLen = 8;
constexpr double kGainCycle[kGainCycleLen] = {1.25, 0.75, 1.0, 1.0,
                                              1.0,  1.0,  1.0, 1.0};
constexpr int kFullBwRounds = 3;           // STARTUP exit patience
constexpr double kFullBwThresh = 1.25;     // growth that resets patience
constexpr sim::Duration kProbeRttDuration = sim::millis(200);
constexpr sim::Duration kMinRttExpiry = sim::seconds(10);
constexpr std::size_t kProbeRttCwndPackets = 4;

class Bbr final : public CongestionController {
 public:
  explicit Bbr(std::size_t mss)
      : mss_(mss), cwnd_(kInitialWindowPackets * mss) {}

  void on_packet_sent(std::size_t, sim::Time) override {}

  void on_ack(std::size_t bytes, sim::Time /*sent_time*/, sim::Time /*now*/,
              sim::Duration /*srtt*/, bool /*app_limited*/) override {
    // cwnd growth toward the BDP target happens here; the model update and
    // the state machine run in on_rate_sample, which follows immediately.
    acked_since_sample_ += bytes;
  }

  void on_rate_sample(const RateSample& rs, sim::Time now) override {
    const std::size_t acked = acked_since_sample_;
    acked_since_sample_ = 0;

    // Round edge: the acked packet was sent at or after the delivered mark
    // that opened the current round.
    round_start_ = rs.prior_delivered >= next_round_delivered_;
    if (round_start_) next_round_delivered_ = rs.delivered;

    btlbw_ = rs.btlbw;
    min_rtt_ = rs.min_rtt;

    check_full_pipe(rs);
    advance_state(rs, now);
    update_pacing_rate();
    update_cwnd(rs, acked);
  }

  void on_loss_event(sim::Time /*sent_time*/, sim::Time /*now*/) override {
    // BBR v1: losses inform the sampler (delivered bytes stop growing) but
    // do not cut cwnd; only persistent congestion collapses the window.
  }

  void on_persistent_congestion(sim::Time /*now*/) override {
    cwnd_ = kMinWindowPackets * mss_;
    // The network changed under us badly enough to blow every PTO; restart
    // discovery rather than trusting the stale model.
    mode_ = Mode::kStartup;
    full_bw_ = 0.0;
    full_bw_rounds_ = 0;
    filled_pipe_ = false;
  }

  std::size_t cwnd_bytes() const override { return cwnd_; }
  bool in_slow_start() const override { return mode_ == Mode::kStartup; }
  std::size_t ssthresh_bytes() const override {
    return static_cast<std::size_t>(-1);  // BBR has no ssthresh
  }
  std::string name() const override { return "bbr"; }

  std::uint64_t pacing_rate_bytes_per_sec() const override {
    return pacing_rate_;
  }

  void reset() override {
    cwnd_ = kInitialWindowPackets * mss_;
    mode_ = Mode::kStartup;
    pacing_gain_ = kHighGain;
    cwnd_gain_ = kHighGain;
    btlbw_ = 0.0;
    min_rtt_ = 0;
    pacing_rate_ = 0;
    full_bw_ = 0.0;
    full_bw_rounds_ = 0;
    filled_pipe_ = false;
    round_start_ = false;
    next_round_delivered_ = 0;
    cycle_index_ = 0;
    cycle_start_ = 0;
    probe_rtt_done_at_ = 0;
    probe_rtt_started_ = false;
    cwnd_before_probe_rtt_ = 0;
    acked_since_sample_ = 0;
  }

 private:
  enum class Mode { kStartup, kDrain, kProbeBw, kProbeRtt };

  std::size_t bdp_bytes(double gain) const {
    if (btlbw_ <= 0.0 || min_rtt_ == 0)
      return kInitialWindowPackets * mss_;  // no model yet: initial window
    const double bdp = btlbw_ * sim::to_seconds(min_rtt_);
    return static_cast<std::size_t>(gain * bdp);
  }

  void check_full_pipe(const RateSample& rs) {
    if (filled_pipe_ || !round_start_ || rs.is_app_limited) return;
    if (btlbw_ >= full_bw_ * kFullBwThresh || full_bw_ == 0.0) {
      full_bw_ = btlbw_;
      full_bw_rounds_ = 0;
      return;
    }
    if (++full_bw_rounds_ >= kFullBwRounds) filled_pipe_ = true;
  }

  void advance_state(const RateSample& rs, sim::Time now) {
    switch (mode_) {
      case Mode::kStartup:
        if (filled_pipe_) {
          mode_ = Mode::kDrain;
          pacing_gain_ = kDrainGain;
          cwnd_gain_ = kHighGain;  // keep headroom while draining
        }
        break;
      case Mode::kDrain:
        if (rs.bytes_in_flight <= bdp_bytes(1.0)) enter_probe_bw(now);
        break;
      case Mode::kProbeBw: {
        // One gain phase per min-RTT. The 0.75 phase additionally ends as
        // soon as the probe queue is drained (inflight back to 1 BDP).
        const sim::Duration phase = min_rtt_ > 0 ? min_rtt_ : sim::millis(10);
        bool advance = now - cycle_start_ >= phase;
        if (kGainCycle[cycle_index_] < 1.0 &&
            rs.bytes_in_flight <= bdp_bytes(1.0))
          advance = true;
        if (advance) {
          cycle_index_ = (cycle_index_ + 1) % kGainCycleLen;
          cycle_start_ = now;
          pacing_gain_ = kGainCycle[cycle_index_];
        }
        break;
      }
      case Mode::kProbeRtt:
        maybe_exit_probe_rtt(rs, now);
        break;
    }
    // ProbeRTT entry: min-RTT observation expired and we are not already
    // probing (or fresh out of one -- min_rtt_at advances on re-measure).
    if (mode_ != Mode::kProbeRtt && min_rtt_ != 0 &&
        now > rs.min_rtt_at + kMinRttExpiry) {
      enter_probe_rtt(now);
    }
  }

  void enter_probe_bw(sim::Time now) {
    mode_ = Mode::kProbeBw;
    cwnd_gain_ = kCwndGain;
    // Start on a neutral phase (index 2..7) per BBR v1; fixed at 2 here so
    // identical inputs give identical cycles (determinism contract).
    cycle_index_ = 2;
    cycle_start_ = now;
    pacing_gain_ = kGainCycle[cycle_index_];
  }

  void enter_probe_rtt(sim::Time now) {
    mode_ = Mode::kProbeRtt;
    pacing_gain_ = 1.0;
    cwnd_gain_ = 1.0;
    cwnd_before_probe_rtt_ = cwnd_;
    cwnd_ = kProbeRttCwndPackets * mss_;
    probe_rtt_started_ = false;
    probe_rtt_done_at_ = now + kProbeRttDuration;
  }

  void maybe_exit_probe_rtt(const RateSample& rs, sim::Time now) {
    // Dwell starts once inflight has actually shrunk to the probe window.
    if (!probe_rtt_started_) {
      if (rs.bytes_in_flight <= kProbeRttCwndPackets * mss_) {
        probe_rtt_started_ = true;
        probe_rtt_done_at_ = now + kProbeRttDuration;
      }
      return;
    }
    if (now < probe_rtt_done_at_) return;
    cwnd_ = std::max(cwnd_before_probe_rtt_, kMinWindowPackets * mss_);
    if (filled_pipe_) {
      enter_probe_bw(now);
    } else {
      mode_ = Mode::kStartup;
      pacing_gain_ = kHighGain;
      cwnd_gain_ = kHighGain;
    }
  }

  void update_pacing_rate() {
    if (btlbw_ > 0.0) {
      pacing_rate_ = static_cast<std::uint64_t>(pacing_gain_ * btlbw_);
    } else {
      // No bandwidth sample yet: pace the initial window over the default
      // RTT assumption so the very first flight is still spread out.
      const double init_bw = static_cast<double>(kInitialWindowPackets * mss_) /
                             sim::to_seconds(sim::millis(333));
      pacing_rate_ = static_cast<std::uint64_t>(kHighGain * init_bw);
    }
    if (pacing_rate_ == 0) pacing_rate_ = 1;
  }

  void update_cwnd(const RateSample& rs, std::size_t acked) {
    if (mode_ == Mode::kProbeRtt) {
      cwnd_ = std::min(cwnd_, kProbeRttCwndPackets * mss_);
      return;
    }
    const std::size_t target = bdp_bytes(cwnd_gain_);
    if (filled_pipe_) {
      cwnd_ = std::min(cwnd_ + acked, target);
    } else {
      // Startup: grow by acked bytes without the target cap -- the model is
      // still discovering the pipe, so the cap would be a stale underread.
      cwnd_ += acked;
    }
    cwnd_ = std::max(cwnd_, kMinWindowPackets * mss_);
    (void)rs;
  }

  std::size_t mss_;
  std::size_t cwnd_;
  Mode mode_ = Mode::kStartup;
  double pacing_gain_ = kHighGain;
  double cwnd_gain_ = kHighGain;
  double btlbw_ = 0.0;               // bytes/sec, from the sampler
  sim::Duration min_rtt_ = 0;        // from the sampler
  std::uint64_t pacing_rate_ = 0;    // bytes/sec

  // STARTUP exit.
  double full_bw_ = 0.0;
  int full_bw_rounds_ = 0;
  bool filled_pipe_ = false;

  // Round tracking (mirrors the sampler's, but BBR keys gains off it).
  bool round_start_ = false;
  std::uint64_t next_round_delivered_ = 0;

  // PROBE_BW cycle.
  int cycle_index_ = 0;
  sim::Time cycle_start_ = 0;

  // PROBE_RTT.
  sim::Time probe_rtt_done_at_ = 0;
  bool probe_rtt_started_ = false;
  std::size_t cwnd_before_probe_rtt_ = 0;

  std::size_t acked_since_sample_ = 0;
};

}  // namespace

std::unique_ptr<CongestionController> make_bbr(std::size_t mss) {
  return std::make_unique<Bbr>(mss);
}

}  // namespace xlink::quic
