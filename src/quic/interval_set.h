// Half-open interval set over byte offsets, the bookkeeping primitive for
// stream send/ack tracking and receive-side reassembly.
#pragma once

#include <cstdint>
#include <iterator>
#include <map>

namespace xlink::quic {

/// Maintains a set of disjoint half-open intervals [begin, end).
class IntervalSet {
 public:
  /// Adds [begin, end), merging with neighbours.
  void add(std::uint64_t begin, std::uint64_t end);

  /// True if [begin, end) is fully covered.
  bool contains(std::uint64_t begin, std::uint64_t end) const;

  /// True if any byte of [begin, end) is covered.
  bool intersects(std::uint64_t begin, std::uint64_t end) const;

  /// Lowest offset >= `from` that is NOT covered.
  std::uint64_t next_gap(std::uint64_t from) const;

  /// Total covered bytes.
  std::uint64_t covered_bytes() const;

  /// Merges adjacent intervals -- smallest separating gap first -- until at
  /// most `max_intervals` remain; each swallowed gap becomes covered.
  /// Returns the phantom bytes synthesized. Bounds the memory an adversary
  /// can pin with a fragmentation spray (every interval is a map node).
  std::uint64_t collapse_to(std::size_t max_intervals);

  bool empty() const { return intervals_.empty(); }
  std::size_t interval_count() const { return intervals_.size(); }

  const std::map<std::uint64_t, std::uint64_t>& intervals() const {
    return intervals_;  // begin -> end
  }

 private:
  std::map<std::uint64_t, std::uint64_t> intervals_;
};

inline void IntervalSet::add(std::uint64_t begin, std::uint64_t end) {
  if (begin >= end) return;
  // Find the first interval that could overlap or touch [begin, end).
  auto it = intervals_.upper_bound(begin);
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= begin) {
      begin = prev->first;
      end = std::max(end, prev->second);
      it = intervals_.erase(prev);
    }
  }
  while (it != intervals_.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = intervals_.erase(it);
  }
  intervals_.emplace(begin, end);
}

inline bool IntervalSet::contains(std::uint64_t begin, std::uint64_t end) const {
  if (begin >= end) return true;
  auto it = intervals_.upper_bound(begin);
  if (it == intervals_.begin()) return false;
  --it;
  return it->first <= begin && it->second >= end;
}

inline bool IntervalSet::intersects(std::uint64_t begin,
                                    std::uint64_t end) const {
  if (begin >= end) return false;
  auto it = intervals_.upper_bound(begin);
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > begin) return true;
  }
  return it != intervals_.end() && it->first < end;
}

inline std::uint64_t IntervalSet::next_gap(std::uint64_t from) const {
  auto it = intervals_.upper_bound(from);
  if (it == intervals_.begin()) return from;
  --it;
  return it->second > from ? it->second : from;
}

inline std::uint64_t IntervalSet::covered_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [b, e] : intervals_) total += e - b;
  return total;
}

inline std::uint64_t IntervalSet::collapse_to(std::size_t max_intervals) {
  if (max_intervals == 0) max_intervals = 1;
  std::uint64_t phantom = 0;
  while (intervals_.size() > max_intervals) {
    auto best = intervals_.begin();
    std::uint64_t best_gap = ~std::uint64_t{0};
    for (auto it = intervals_.begin(); std::next(it) != intervals_.end();
         ++it) {
      const std::uint64_t gap = std::next(it)->first - it->second;
      if (gap < best_gap) {
        best_gap = gap;
        best = it;
      }
    }
    auto nx = std::next(best);
    phantom += nx->first - best->second;
    best->second = nx->second;
    intervals_.erase(nx);
  }
  return phantom;
}

}  // namespace xlink::quic
