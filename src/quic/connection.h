// Multipath QUIC connection.
//
// Implements the transport described in the paper's §6 / draft-liu-
// multipath-quic on top of the simulator:
//  - simplified 1-RTT handshake exchanging transport parameters, including
//    enable_multipath with single-path fallback;
//  - connection IDs issued with NEW_CONNECTION_ID; the CID sequence number
//    doubles as the path identifier and selects the per-path packet number
//    space and AEAD nonce;
//  - path initialization via PATH_CHALLENGE / PATH_RESPONSE, path close via
//    PATH_STATUS(abandon);
//  - ACK_MP per path with QoE signal piggybacking, with a pluggable return
//    path policy (fastest-path vs original-path);
//  - per-path RTT estimation, RFC 9002-style loss detection and PTO, and
//    decoupled congestion control (Cubic default);
//  - a priority-ordered packet send queue (the paper's pkt_send_q) driven
//    by a pluggable multipath Scheduler, with re-injection support;
//  - streams with connection- and stream-level flow control, and the
//    paper's stream_send API for video-frame priority ranges.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "fec/framer.h"
#include "net/datagram.h"
#include "quic/cc.h"
#include "quic/cc_coupled.h"
#include "quic/crypto.h"
#include "quic/delivery_rate.h"
#include "quic/pacer.h"
#include "quic/frame.h"
#include "quic/guard.h"
#include "quic/loss_detection.h"
#include "quic/packet.h"
#include "quic/rtt.h"
#include "quic/scheduler.h"
#include "quic/stream.h"
#include "quic/types.h"
#include "sim/event_loop.h"
#include "telemetry/trace_sink.h"

namespace xlink::quic {

enum class Role { kClient, kServer };

/// Metadata of one sent packet kept until it is acked or lost; the per-path
/// collection of these is the paper's unacked_q.
struct SentRecord {
  PacketNumber pn = 0;
  PathId path = 0;
  sim::Time sent_time = 0;
  std::size_t bytes = 0;
  bool ack_eliciting = false;
  std::vector<SendItem> items;   // stream ranges carried
  std::vector<Frame> control;    // retransmittable control frames carried
  bool is_reinjection = false;   // this packet was itself a re-injection
  bool reinjected = false;       // a duplicate of this packet was queued
  sim::Time reinjected_at = 0;   // when that duplicate was queued
  /// Delivery-rate stamp (draft-cheng): the path's delivered totals frozen
  /// at send time, so the ack can reconstruct the rate over this flight.
  RateStamp rate_stamp;
};

/// Per-path transport state (public so schedulers can inspect and, for
/// baselines like MPTCP-style penalization, adjust).
struct PathState {
  enum class State { kValidating, kActive, kStandby, kAbandoned };

  /// Local liveness verdict, orthogonal to the peer-visible State:
  ///   kGood     - acks arriving, schedule freely;
  ///   kDegraded - consecutive PTOs accumulating, still schedulable;
  ///   kProbing  - declared dead after the consecutive-PTO budget; data is
  ///               steered off, only capped exponential-backoff probes go
  ///               out until one is acked (resurrection) or the path is
  ///               abandoned.
  enum class Health : std::uint8_t { kGood = 0, kDegraded, kProbing };

  PathId id = 0;
  State state = State::kValidating;
  Health health = Health::kGood;
  RttEstimator rtt;
  std::unique_ptr<CongestionController> cc;
  /// Shared per-path delivery-rate estimation: stamps outgoing packets,
  /// extracts rate samples on ack. BBR consumes the samples; ECF/BLEST
  /// read the windowed-max bandwidth; loss-based CC uses the app-limited
  /// marker (RFC 9002 §7.8).
  DeliveryRateSampler sampler;
  /// Token-bucket pacer (inactive unless Config::pacing.enabled).
  Pacer pacer;
  LossDetection loss;
  std::map<PacketNumber, SentRecord> unacked;
  PacketNumber next_pn = 0;
  sim::Time last_ack_eliciting_sent = 0;
  sim::Time last_ack_received = 0;  // last time this path's data was acked
  std::uint32_t pto_count = 0;

  // Dead-path probing state (health == kProbing).
  sim::Time next_probe_at = 0;
  sim::Duration probe_interval = 0;
  std::uint32_t probes_sent = 0;

  // Receive side of this path's packet number space.
  std::vector<AckRange> recv_ranges;  // sorted descending, capped
  sim::Time largest_recv_time = 0;
  bool ack_pending = false;
  int ack_eliciting_unacked = 0;
  sim::Time ack_deadline = 0;

  // PATH_STATUS bookkeeping.
  std::uint64_t status_seq_out = 0;
  std::uint64_t status_seq_in = 0;

  std::array<std::uint8_t, 8> challenge_data{};

  // Stats.
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_received = 0;
  std::uint64_t packets_lost = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;

  bool usable() const {
    return state == State::kActive || state == State::kValidating;
  }
  /// Eligible for scheduler-driven data: active AND not declared dead.
  bool schedulable() const {
    return state == State::kActive && health != Health::kProbing;
  }
  std::size_t cwnd_available() const {
    if (pacer_deferred) return 0;  // no budget until the next token release
    const std::size_t cwnd = cc->cwnd_bytes();
    const std::size_t inflight = loss.bytes_in_flight();
    return inflight >= cwnd ? 0 : cwnd - inflight;
  }
  /// Transient, pump-scoped: the pacer refused this path mid-pump, so it
  /// reports no cwnd headroom and the scheduler falls through to the other
  /// paths instead of the whole pump stalling behind one token bucket.
  /// Cleared before arm_timers so the pacer wake still gets scheduled.
  bool pacer_deferred = false;
  /// Bytes/sec estimate for schedulers. Both the sampler's windowed-max
  /// btlbw and cwnd/srtt are lower bounds on path capacity -- btlbw lags
  /// when recent flights were app-limited (e.g. right after the
  /// handshake), cwnd/srtt lags when the window has not opened yet -- so
  /// take whichever currently bounds tighter.
  double bandwidth_estimate_bytes_per_sec() const {
    const double btlbw = sampler.btlbw_bytes_per_sec();
    const double srtt = sim::to_seconds(rtt.smoothed());
    const double from_cwnd =
        srtt > 0.0 ? static_cast<double>(cc->cwnd_bytes()) / srtt : 0.0;
    return btlbw > from_cwnd ? btlbw : from_cwnd;
  }
};

class Connection {
 public:
  struct Config {
    Role role = Role::kClient;
    TransportParams params;
    CcAlgorithm cc = CcAlgorithm::kCubic;
    std::uint64_t aead_key = 0x5eed;  // both endpoints must agree
    AckPathPolicy ack_policy = AckPathPolicy::kFastestPath;
    std::shared_ptr<Scheduler> scheduler;  // nullptr -> single path only
    /// TCP-style RTO: collapse cwnd on probe timeout (MPTCP baseline).
    bool tcp_style_rto = false;
    /// Attach the QoE signal to every ACK_MP (client side).
    bool qoe_in_acks = true;
    /// Server id embedded in locally issued CIDs for QUIC-LB routing; the
    /// peer's value must be mirrored (in a real handshake CIDs arrive on
    /// the wire; the simulator derives them on both sides).
    std::uint8_t cid_server_id = 0;
    std::uint8_t peer_cid_server_id = 0;
    /// Telemetry sink shared by the session (nullptr or disabled = no
    /// tracing; the hooks then cost one predictable branch each).
    telemetry::TraceSink* trace = nullptr;

    /// Path-health failover machinery (PathState::Health). Disabled it
    /// reproduces the pre-failover transport: PTOs keep probing in place
    /// and the scheduler alone steers around dead paths.
    struct PathHealth {
      bool enabled = true;
      /// Consecutive PTOs before a path is marked kDegraded.
      std::uint32_t degraded_after_ptos = 1;
      /// Consecutive-PTO budget: at this count the path fails over to
      /// kProbing -- if (and only if) another schedulable path survives.
      std::uint32_t failover_pto_budget = 3;
      /// Dead-path probe backoff bounds (doubles per probe, capped).
      sim::Duration probe_interval_min = sim::millis(200);
      sim::Duration probe_interval_max = sim::seconds(3);
    };
    PathHealth health;

    /// Forward erasure correction (src/fec/): sender-side REPAIR framing
    /// over sealed packets plus receiver-side recovery. `fec.enabled`
    /// instantiates the RecoveryBuffer; `fec.protect` additionally runs
    /// the FecFramer on this endpoint's outgoing packets.
    fec::FecConfig fec;

    /// Hostile-peer hardening: per-connection resource budgets consulted
    /// at every peer-driven allocation point (guard.h). `budgets.enforce =
    /// false` reproduces the pre-guard permissive transport.
    ResourceBudgets budgets;

    /// Invariant auditor; `audit.enabled` is additionally ANDed with
    /// audit_enabled_by_env() at construction, so XLINK_AUDIT=0 silences
    /// it without a rebuild.
    InvariantAuditor::Config audit;

    /// Token-bucket pacing of scheduler-driven data sends. Off by default:
    /// enabling it changes packet departure times, so existing experiment
    /// arms stay byte-identical unless they opt in.
    PacerConfig pacing;
  };

  struct Stats {
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_received = 0;
    std::uint64_t packets_lost = 0;
    std::uint64_t ptos = 0;
    std::uint64_t bytes_sent = 0;            // wire bytes out
    std::uint64_t bytes_received = 0;        // wire bytes in
    std::uint64_t stream_bytes_sent = 0;     // first transmissions
    std::uint64_t retransmitted_bytes = 0;   // loss-triggered resends
    std::uint64_t reinjected_bytes = 0;      // scheduler duplicates
    std::uint64_t auth_failures = 0;         // AEAD open failures
    std::uint64_t acks_sent = 0;
    std::uint64_t failovers = 0;             // paths declared dead (kProbing)
    std::uint64_t path_resurrections = 0;    // probe acked, path back in use
    std::uint64_t dead_path_probes = 0;      // backoff probes while kProbing

    // Forward erasure correction (src/fec/).
    std::uint64_t fec_repair_packets_sent = 0;  // REPAIR packets emitted
    std::uint64_t fec_repair_bytes_sent = 0;    // repair SYMBOL bytes
    std::uint64_t fec_windows_protected = 0;    // windows with >=1 repair
    std::uint64_t fec_recovered_packets = 0;    // erasures reconstructed
    std::uint64_t fec_wasted_symbols = 0;       // repairs that bought nothing
    std::uint64_t fec_erased_seen = 0;          // erasures observed in windows

    /// Redundancy ratio: duplicated bytes (re-injection egress plus FEC
    /// repair symbols) / first-transmission stream bytes.
    double redundancy_ratio() const {
      return stream_bytes_sent == 0
                 ? 0.0
                 : static_cast<double>(reinjected_bytes +
                                       fec_repair_bytes_sent) /
                       static_cast<double>(stream_bytes_sent);
    }
  };

  using SendFn = std::function<void(PathId, net::Datagram)>;

  Connection(sim::EventLoop& loop, Config config);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // ---- wiring -------------------------------------------------------
  /// Binds the datagram output (the harness routes to emulated paths).
  void set_send_callback(SendFn fn) { send_fn_ = std::move(fn); }

  /// Feeds a datagram that arrived on `path` (network-path index == path
  /// id; the harness guarantees the mapping). Takes ownership: the packet
  /// is decrypted in place inside the buffer, and stream payloads are
  /// borrowed from it for the duration of the call.
  void on_datagram(PathId path, net::Datagram datagram);

  // ---- lifecycle ----------------------------------------------------
  /// Client: starts the handshake on the primary path (path 0).
  void connect();
  bool is_established() const { return established_; }
  bool multipath_enabled() const { return multipath_enabled_; }
  bool is_closed() const { return closed_; }
  void close(std::uint64_t error_code, const std::string& reason);

  /// RFC 9000 §10.2 termination states: kClosing after this endpoint sends
  /// CONNECTION_CLOSE (the close is re-sent, rate-limited, while peer
  /// packets keep arriving); kDraining after receiving one (nothing more
  /// is ever sent).
  enum class CloseState : std::uint8_t { kOpen, kClosing, kDraining };
  CloseState close_state() const { return close_state_; }
  /// How and why the connection ended (valid once is_closed()).
  const CloseInfo& close_info() const { return close_info_; }

  /// Violation and budget-pressure accounting (guard.h).
  const GuardCounters& guard_counters() const { return guard_; }
  /// The connection's invariant auditor (tests install capture handlers).
  InvariantAuditor& auditor() { return auditor_; }
  /// Forces one audit walk now regardless of sampling; returns checks run.
  std::size_t audit_now() { return auditor_.tick(*this); }

  std::function<void()> on_established;

  // ---- paths --------------------------------------------------------
  /// Client: initiates a new path; returns its id, or nullopt if multipath
  /// is off, the handshake is pending, or no connection IDs are available.
  std::optional<PathId> open_path();

  /// Marks a path abandoned, tells the peer, and requeues its in-flight
  /// data onto the remaining paths.
  void abandon_path(PathId id);

  /// Sends PATH_STATUS(standby/available) for a path.
  void set_path_status(PathId id, std::uint64_t status);

  /// Connection-migration baseline: abandons all current paths and moves
  /// to `id` with congestion state reset (RFC 9000 §9.5 behaviour).
  void migrate_to_path(PathId id);

  /// NAT rebind on a path: the peer will see a new 4-tuple, so the path
  /// must re-validate before carrying data again (PATH_CHALLENGE /
  /// PATH_RESPONSE). The harness wires FaultInjector::on_nat_rebind here.
  void rebind_path(PathId id);

  std::vector<PathId> path_ids() const;
  std::vector<PathId> active_path_ids() const;
  /// Active paths that are also healthy enough to schedule data on
  /// (excludes kProbing paths); what schedulers and the re-injector use.
  std::vector<PathId> schedulable_path_ids() const;
  bool has_path(PathId id) const { return paths_.contains(id); }
  PathState& path_state(PathId id) { return *paths_.at(id); }
  const PathState& path_state(PathId id) const { return *paths_.at(id); }

  std::function<void(PathId)> on_path_validated;

  // ---- streams ------------------------------------------------------
  /// Opens the next client-initiated bidirectional stream.
  StreamId open_stream();

  /// Writes data (optionally final) to a send stream with default priority.
  void stream_send(StreamId id, std::vector<std::uint8_t> data, bool fin);

  /// The paper's extended stream_send: marks [position, position+size) of
  /// this write's data with a video-frame priority.
  void stream_send_prioritized(StreamId id, std::vector<std::uint8_t> data,
                               bool fin, int frame_priority,
                               std::uint64_t position, std::uint64_t size);

  /// Sets the stream-level priority used by priority re-injection.
  void set_stream_priority(StreamId id, int priority);

  SendStream* send_stream(StreamId id);
  RecvStream* recv_stream(StreamId id);
  const RecvStream* recv_stream(StreamId id) const;

  /// Reads up to `max` bytes from a receive stream, updating flow-control
  /// grants (the application-facing read API).
  std::vector<std::uint8_t> consume_stream(StreamId id, std::size_t max);

  std::function<void(StreamId)> on_stream_readable;
  std::function<void(StreamId)> on_stream_data_finished;

  // ---- QoE feedback ---------------------------------------------------
  /// Client side: supplies the latest player QoE snapshot for ACK_MP.
  void set_qoe_provider(std::function<std::optional<QoeSignal>()> fn) {
    qoe_provider_ = std::move(fn);
  }
  /// Server side: observers of received QoE signals.
  std::function<void(const QoeSignal&)> on_qoe_feedback;
  const std::optional<QoeSignal>& latest_peer_qoe() const {
    return latest_peer_qoe_;
  }

  /// Sends a standalone QOE_CONTROL_SIGNALS frame (decoupled from acks).
  void send_qoe_signal(const QoeSignal& qoe);

  // ---- scheduler services --------------------------------------------
  std::deque<SendItem>& send_queue() { return pkt_send_q_; }
  const std::deque<SendItem>& send_queue() const { return pkt_send_q_; }

  /// Inserts an item into pkt_send_q per the insertion mode.
  void enqueue_item(SendItem item, InsertMode mode);

  /// Duplicates the still-unacked stream ranges of `record` into the send
  /// queue (marked re-injection, carrying origin path) with the given
  /// insertion mode. Returns the number of bytes queued.
  std::uint64_t reinject_record(SentRecord& record, InsertMode mode);

  /// Kicks the send loop (harness calls after app writes).
  void pump();

  // ---- forward erasure correction ------------------------------------
  bool fec_enabled() const { return fec_recovery_ != nullptr; }
  bool fec_protecting() const { return fec_framer_ != nullptr; }
  /// Double-threshold gate push-down: the XLINK scheduler forwards its
  /// re-injection gate decision so FEC obeys the same cost control.
  void set_fec_gate(bool allowed) {
    if (fec_framer_) fec_framer_->set_gate(allowed);
  }
  /// True if a recently emitted repair window covers `pn` on `path`; the
  /// ReinjectionEngine skips such records (mutual awareness).
  bool fec_covers(PathId path, PacketNumber pn) const {
    return fec_framer_ && fec_framer_->covers(path, pn, loop_.now());
  }

  sim::EventLoop& loop() { return loop_; }
  const sim::EventLoop& loop() const { return loop_; }
  const Config& config() const { return config_; }
  const Stats& stats() const { return stats_; }
  Role role() const { return config_.role; }

  /// Session telemetry sink (may be nullptr); schedulers trace through it.
  telemetry::TraceSink* trace() const { return config_.trace; }
  telemetry::Origin trace_origin() const {
    return config_.role == Role::kServer ? telemetry::Origin::kServer
                                         : telemetry::Origin::kClient;
  }

  /// Peer's flow-control limit headroom at connection level.
  std::uint64_t connection_send_window() const;

 private:
  friend class InvariantAuditor;  // re-derives private cross-layer state

  // Guard machinery.
  /// Records the violation (trace + counters) and escalates to a graceful
  /// CONNECTION_CLOSE with the given transport error code. No-op when
  /// budgets.enforce is off or the connection is already terminating.
  void close_with_error(TransportError code, ViolationKind kind,
                        std::uint64_t observed, PathId path);
  /// True if `frame` may legally arrive in the current connection state
  /// (pre-handshake only CRYPTO/PING/PADDING/ACK/CLOSE are accepted).
  bool frame_legal_in_state(const Frame& frame) const;
  /// Emits the recorded CONNECTION_CLOSE on the given path.
  void send_close_frame(PathId path);

  // Send-side machinery.
  void pump_send();
  bool send_one_packet(PathId path, bool ignore_cwnd = false);
  bool send_control_packet(PathId path, std::vector<Frame> frames,
                           bool count_inflight);
  void send_pending_acks();
  /// Seals `frames` into a pooled buffer and hands it to send_fn_. The
  /// frame list is an lvalue ref so callers can reuse scratch storage.
  /// Returns false when nothing went on the wire (unknown path, or the
  /// send was suppressed by the anti-amplification cap -- suppressed
  /// stream/control content is re-queued, never dropped).
  bool build_and_send(PathId path, std::vector<Frame>& frames,
                      std::vector<SendItem> items, bool ack_eliciting,
                      bool is_probe);
  std::optional<PathId> ack_carrier_path(PathId acked_path) const;
  PathId fastest_active_path() const;

  // Receive-side machinery.
  void handle_frames(PathId path, PacketNumber pn,
                     const std::vector<Frame>& frames);
  void handle_repair_frame(PathId path, const RepairFrame& f);
  double path_loss_estimate(const PathState& p) const;
  void handle_ack_info(PathId acked_path, const AckInfo& info);
  void handle_stream_frame(const StreamFrame& f);
  void handle_crypto(PathId path, const CryptoFrame& f);
  void note_received(PathState& p, PacketNumber pn, bool ack_eliciting);
  bool already_received(const PathState& p, PacketNumber pn) const;

  // Loss/timer machinery.
  /// Re-derives the path's pacing rate from its controller (or cwnd/srtt
  /// for controllers with no opinion) after CC state changes.
  void update_pacing(PathState& p);
  void trace_cc_state(const PathState& p);
  void on_packets_lost(PathState& p, const std::vector<LostPacket>& pns);
  void requeue_record(SentRecord record);
  void on_pto(PathState& p);
  void arm_timers();
  void on_timer();

  // Path health machinery.
  sim::Duration path_pto_interval(const PathState& p) const;
  void set_path_health(PathState& p, PathState::Health health);
  bool has_other_schedulable(PathId id) const;
  void fail_over_path(PathState& p);
  void resurrect_path(PathState& p);
  void probe_dead_path(PathState& p);

  // Path/CID helpers.
  void trace_path_state(const PathState& p);
  PathState& create_path(PathId id, PathState::State state);
  void issue_connection_ids();
  void queue_control(PathId path, Frame frame);
  void maybe_send_flow_updates();

  // Handshake helpers.
  void send_handshake_initial();

  sim::EventLoop& loop_;
  Config config_;
  PacketProtection aead_;
  SendFn send_fn_;

  bool established_ = false;
  bool multipath_enabled_ = false;
  bool closed_ = false;  // true whenever close_state_ != kOpen
  bool handshake_sent_ = false;

  CloseState close_state_ = CloseState::kOpen;
  CloseInfo close_info_;
  GuardCounters guard_;
  InvariantAuditor auditor_;
  std::uint64_t audit_pump_calls_ = 0;       // subsampled tick counter
  std::uint64_t close_recv_since_send_ = 0;  // packets since last close sent
  std::uint64_t close_resend_threshold_ = 1; // doubles per re-send

  std::map<PathId, std::unique_ptr<PathState>> paths_;
  std::deque<SendItem> pkt_send_q_;
  /// Control frames waiting per path (acks excluded; built on demand).
  std::map<PathId, std::deque<Frame>> pending_control_;

  std::map<StreamId, SendStream> send_streams_;
  std::map<StreamId, RecvStream> recv_streams_;
  StreamId next_stream_ = 0;

  // Flow control: peer's limits on us / our grants to the peer.
  std::uint64_t peer_max_data_ = 0;
  std::map<StreamId, std::uint64_t> peer_max_stream_data_;
  std::uint64_t local_max_data_ = 0;
  std::uint64_t data_sent_ = 0;       // stream bytes charged to peer_max_data_
  std::uint64_t data_received_ = 0;   // stream bytes charged to local grant
  std::uint64_t data_consumed_ = 0;   // stream bytes read by the application
  std::map<StreamId, std::uint64_t> local_max_stream_data_;
  std::map<StreamId, std::uint64_t> received_high_;  // per-stream max offset
  std::set<StreamId> finished_notified_;

  // Connection IDs: ours issued to the peer, and the peer's issued to us.
  std::map<std::uint32_t, ConnectionId> local_cids_;
  std::map<std::uint32_t, ConnectionId> peer_cids_;
  std::uint32_t next_local_cid_seq_ = 0;
  bool cids_issued_ = false;

  std::optional<TransportParams> peer_params_;
  std::function<std::optional<QoeSignal>()> qoe_provider_;
  std::optional<QoeSignal> latest_peer_qoe_;

  sim::EventId timer_id_ = 0;
  bool in_pump_ = false;
  std::shared_ptr<LiaGroup> lia_group_;  // only for kCoupledLia

  // Reusable frame-list storage for the receive and send hot paths; moved
  // out while in use (re-entrancy safe) and moved back with capacity kept.
  std::vector<Frame> recv_frames_scratch_;
  std::vector<Frame> send_frames_scratch_;

  // Forward erasure correction (both null unless config_.fec.enabled).
  std::unique_ptr<fec::FecFramer> fec_framer_;
  std::unique_ptr<fec::RecoveryBuffer> fec_recovery_;
  std::vector<Frame> fec_frames_scratch_;   // repair frames from the framer
  std::vector<Frame> fec_emit_scratch_;     // one-frame list per repair pkt
  std::vector<fec::RecoveryBuffer::Recovered> fec_recovered_scratch_;

  Stats stats_;
};

}  // namespace xlink::quic
